//! Watch the translation pipeline work on one basic block: the verified
//! x86→TCG mapping inserts trailing/leading fences (Fig. 7a), the
//! optimizer merges the adjacent `Frm·Fww` pair into one full fence
//! (§6.1) and folds constants, and the backend lowers the result to
//! MiniArm with the minimal DMB mapping (Fig. 7b).
//!
//! ```sh
//! cargo run --release --example fence_optimizer
//! ```

use risotto::guest::{AluOp, Assembler, Gpr};
use risotto::host::{lower_block, BackendConfig, RmwStyle};
use risotto::tcg::{optimize, translate_block, FrontendConfig, OptPolicy, TcgOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §6.1 example, embedded in a little arithmetic: a = X; Y = 1.
    let mut a = Assembler::new(0x1000);
    a.load(Gpr::RAX, Gpr::RDI, 0); //   a = X
    a.mov_ri(Gpr::RCX, 21);
    a.alu_ri(AluOp::Mul, Gpr::RCX, 2); // dead constant work (folds away)
    a.store(Gpr::RSI, 0, Gpr::RCX); //  Y = 42
    a.hlt();
    let (bytes, _) = a.finish()?;
    let fetch = |addr: u64| {
        let mut w = [0u8; 16];
        let off = (addr - 0x1000) as usize;
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = bytes.get(off + i).copied().unwrap_or(0);
        }
        w
    };

    let mut block = translate_block(0x1000, FrontendConfig::risotto(), fetch)?;
    println!("=== after the verified x86→TCG frontend (Fig. 7a) ===");
    print_fences(&block);
    println!("{block}");

    let stats = optimize(&mut block, OptPolicy::Verified);
    println!("=== after the optimizer ===");
    println!(
        "folded: {}, loads forwarded: {}, fences merged: {}, dce removed: {}",
        stats.folded, stats.loads_forwarded, stats.fences_merged, stats.dce_removed
    );
    print_fences(&block);
    println!("{block}");

    let host = lower_block(&block, BackendConfig::dbt(RmwStyle::Casal))?;
    println!("=== after the TCG→Arm backend (Fig. 7b) ===");
    for insn in &host {
        println!("  {insn:?}");
    }
    Ok(())
}

fn print_fences(block: &risotto::tcg::TcgBlock) {
    let fences: Vec<String> = block
        .ops
        .iter()
        .filter_map(|o| match o {
            TcgOp::Fence(k) => Some(format!("{k:?}")),
            _ => None,
        })
        .collect();
    println!("fences in block: [{}]", fences.join(", "));
}
