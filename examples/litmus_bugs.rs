//! Reproduces the paper's translation bugs at the formal level (§3):
//! QEMU's MPQ/SBQ mistranslations, the FMR/RAW optimizer unsoundness, and
//! the Arm-Cats `casal` weakness that SBAL exposes — each decided by
//! exhaustive candidate-execution enumeration.
//!
//! ```sh
//! cargo run --release --example litmus_bugs
//! ```

use risotto::litmus::{allows, corpus, Behavior};
use risotto::memmodel::{Arm, MemoryModel, TcgIr, X86Tso};

fn verdict<M: MemoryModel>(
    model: &M,
    p: &risotto::litmus::Program,
    outcome: impl Fn(&Behavior) -> bool,
) {
    let v = if allows(p, model, &outcome) { "ALLOWED" } else { "forbidden" };
    println!("  {:<28} under {:<30} {v}", p.name, model.name());
}

fn main() {
    println!("=== §3.2: MPQ — QEMU's RMW1_AL translation is wrong ===");
    println!("outcome: a = 1 ∧ X = 1 (the RMW failed although the writer finished)\n");
    let mpq = |b: &Behavior| b.reg(1, corpus::A) == 1 && b.mem_at(corpus::X) == 1;
    verdict(&X86Tso::new(), &corpus::mpq_x86(), mpq);
    verdict(&Arm::corrected(), &corpus::mpq_arm_qemu(), mpq);
    verdict(&Arm::corrected(), &corpus::mpq_arm_verified(), mpq);
    println!("\n→ x86 forbids the outcome; QEMU's translation allows it (bug);");
    println!("  Risotto's verified mapping (trailing DMBLD) forbids it again.\n");

    println!("=== §3.2: SBQ — QEMU's RMW2_AL translation is wrong ===");
    println!("outcome: Z = U = 1 ∧ a = b = 0 (store-load order lost across the RMW)\n");
    let sbq = |b: &Behavior| {
        b.mem_at(corpus::Z) == 1
            && b.mem_at(corpus::U) == 1
            && b.reg(0, corpus::A) == 0
            && b.reg(1, corpus::B) == 0
    };
    verdict(&X86Tso::new(), &corpus::sbq_x86(), sbq);
    verdict(&Arm::corrected(), &corpus::sbq_arm_qemu(), sbq);
    verdict(&Arm::corrected(), &corpus::sbq_arm_verified_rmw2(), sbq);
    println!();

    println!("=== §3.2: FMR — the RAW elimination is unsound across Fmr ===");
    println!("outcome: a = 2 ∧ c = 3\n");
    let fmr = |b: &Behavior| b.reg(0, corpus::A) == 2 && b.reg(1, corpus::C) == 3;
    verdict(&TcgIr::new(), &corpus::fmr_source(), fmr);
    verdict(&TcgIr::new(), &corpus::fmr_raw_transformed(), fmr);
    println!("\n→ the transformed program exhibits a behavior the source cannot:");
    println!("  Theorem 1 fails, so QEMU's fence-oblivious RAW is incorrect.\n");

    println!("=== §3.3: SBAL — casal was too weak in the original Arm-Cats ===");
    println!("outcome: X = Y = 1 ∧ a = b = 0\n");
    let sbal = |b: &Behavior| {
        b.mem_at(corpus::X) == 1
            && b.mem_at(corpus::Y) == 1
            && b.reg(0, corpus::A) == 0
            && b.reg(1, corpus::B) == 0
    };
    verdict(&X86Tso::new(), &corpus::sbal_x86(), sbal);
    verdict(&Arm::original(), &corpus::sbal_arm_intended(), sbal);
    verdict(&Arm::corrected(), &corpus::sbal_arm_intended(), sbal);
    println!("\n→ under the original model the 'intended' mapping is erroneous;");
    println!("  the paper's strengthening (accepted upstream, herdtools PR #322)");
    println!("  makes a successful casal a full barrier and fixes it.");
}
