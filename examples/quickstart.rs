//! Quickstart: assemble a small multi-threaded x86 guest program, run it
//! under every emulation setup, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use risotto::core::{Emulator, Setup};
use risotto::guest::{syscalls, AluOp, Cond, GelfBuilder, Gpr, Interp};
use risotto::host::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-threaded producer/consumer: thread 0 spawns a worker; both
    // atomically add into a shared counter; main returns the total.
    let mut b = GelfBuilder::new("main");
    let counter = b.data_u64(&[0]);

    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
    b.asm.mov_label(Gpr::RDI, "worker");
    b.asm.mov_ri(Gpr::RSI, 0);
    b.asm.syscall();
    b.asm.mov_rr(Gpr::RBX, Gpr::RAX); // child tid
    b.asm.call_to("work");
    b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
    b.asm.mov_rr(Gpr::RDI, Gpr::RBX);
    b.asm.syscall();
    b.asm.mov_ri(Gpr::RDI, counter);
    b.asm.load(Gpr::RAX, Gpr::RDI, 0);
    b.asm.hlt();

    b.asm.label("worker");
    b.asm.call_to("work");
    b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
    b.asm.mov_ri(Gpr::RDI, 0);
    b.asm.syscall();

    // work(): 10,000 atomic increments via LOCK XADD.
    b.asm.label("work");
    b.asm.mov_ri(Gpr::RDI, counter);
    b.asm.mov_ri(Gpr::RCX, 10_000);
    b.asm.label("loop");
    b.asm.mov_ri(Gpr::RDX, 1);
    b.asm.xadd(Gpr::RDI, 0, Gpr::RDX);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::Ne, "loop");
    b.asm.ret();

    let bin = b.finish()?;

    // The reference interpreter is the functional oracle.
    let mut interp = Interp::new(&bin);
    interp.run(10_000_000)?;
    println!("reference interpreter: counter = {}", interp.exit_val(0));

    // Run under each setup; all must agree, and the cycle counts show the
    // fence-cost story of the paper's Fig. 12.
    println!("\n{:<10} {:>12} {:>10} {:>8}", "setup", "cycles", "vs qemu", "result");
    let mut qemu_cycles = 0;
    for setup in Setup::ALL {
        let mut emu = Emulator::new(&bin, setup, 2, CostModel::thunderx2_like());
        let report = emu.run(100_000_000)?;
        if setup == Setup::Qemu {
            qemu_cycles = report.cycles;
        }
        println!(
            "{:<10} {:>12} {:>9.1}% {:>8}",
            setup.name(),
            report.cycles,
            100.0 * report.cycles as f64 / qemu_cycles as f64,
            report.exit_vals[0].unwrap(),
        );
        assert_eq!(report.exit_vals[0], Some(interp.exit_val(0)));
    }
    println!("\nAll setups agree with the reference interpreter.");
    Ok(())
}
