//! The dynamic host library linker (§6.2) end to end: one guest binary
//! computing SHA-256 digests, run three ways —
//!
//! * `qemu`: the guest library implementation is translated and executed,
//! * `risotto`: the PLT entry is intercepted and the *native* host
//!   library runs instead (same digest, far fewer cycles),
//! * `native`: the native-oracle build calls the host library directly.
//!
//! ```sh
//! cargo run --release --example host_linker
//! ```

use risotto::core::{Emulator, Idl, Setup};
use risotto::host::CostModel;
use risotto::nativelib::{digest, hostlibs};
use risotto::workloads::libbench::{digest_bench, DigestAlgo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buf_len = 1024;
    let iters = 4;
    let bin = digest_bench(DigestAlgo::Sha256, buf_len, iters);
    println!(
        "guest binary: {} bytes of .text, imports {:?}\n",
        bin.text.len(),
        bin.dynsyms.iter().map(|d| d.name.as_str()).collect::<Vec<_>>()
    );

    // What the digest must be (reference implementation).
    let data: Vec<u8> = (0..buf_len).map(|i| (i as u8).wrapping_mul(131).wrapping_add(9)).collect();
    let expect = u64::from_le_bytes(digest::sha256(&data)[..8].try_into().unwrap());

    let idl = Idl::parse(hostlibs::IDL_TEXT)?;
    println!("{:<10} {:>12} {:>14} {:>8}", "setup", "cycles", "native calls", "digest ok");
    let mut qemu = 0u64;
    for setup in [Setup::Qemu, Setup::TcgVer, Setup::Risotto, Setup::Native] {
        let mut emu = Emulator::new(&bin, setup, 1, CostModel::thunderx2_like());
        let linked = emu.link_library(&bin, &idl, hostlibs::libcrypto())?;
        let report = emu.run(2_000_000_000)?;
        if setup == Setup::Qemu {
            qemu = report.cycles;
        }
        assert_eq!(report.exit_vals[0], Some(expect), "{} wrong digest", setup.name());
        println!(
            "{:<10} {:>12} {:>14} {:>8}   (linked: {:?}, {:.1}x vs qemu)",
            setup.name(),
            report.cycles,
            report.stats.native_calls,
            "yes",
            linked,
            qemu as f64 / report.cycles as f64,
        );
    }
    println!("\nSame digest everywhere; the linked setups replaced the translated");
    println!("guest SHA-256 with the native host library (§6.2, Fig. 13).");
    Ok(())
}
