#!/usr/bin/env sh
# Local CI gate: build, full test suite, and lint-clean clippy.
# Run from the repository root before sending a change.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
