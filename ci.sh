#!/usr/bin/env sh
# Local CI gate: build, full test suite, and lint-clean clippy.
# Run from the repository root before sending a change.
set -eu

cargo fmt --all --check
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: rustdoc must build warning-free (missing-docs are
# hard errors in core/tcg/host-arm/host-tso via #![deny(missing_docs)]).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Cross-backend gate (docs/BACKENDS.md): the MiniTSO backend's unit
# suite (lowering, dialect verifier, mutant kill), then the standing
# Arm-vs-TSO differential — kernels bit-identical at VerifyLevel::Full,
# litmus containment, seeded fuzz matrix, engine-level Pass-3 mutant
# kill, and the BACKENDS.md completeness test in both directions.
cargo test -q --release -p risotto-host-tso
cargo test -q --release --test backends

# Verifier gate: the translation-validator suite (mutation tests over
# the 16-kernel corpus + litmus at VerifyLevel::Full) in bounded smoke
# mode. Any clean-corpus violation or surviving mutant fails CI.
RISOTTO_VERIFY_SMOKE=1 cargo test -q --release --test verifier

# Determinism gate: the same IR must lower to bit-identical host bytes
# and allocation statistics twice, across the kernel/litmus/fuzz corpora
# and stitched tier-2 superblocks, under both RMW styles.
RISOTTO_VERIFY_SMOKE=1 cargo test -q --release --test determinism

# End-to-end pipeline bench in smoke mode: runs the 16-kernel suite at a
# CI-sized scale and emits BENCH_pipeline.json (per-kernel cycles +
# TB-chain hit rate + registry snapshot + tier-2 superblock delta).
cargo bench -q -p risotto-bench --bench pipeline -- smoke
test -s BENCH_pipeline.json

# Schema assert: every kernel entry must carry the tier-2 "superblock"
# key with its cycle delta and cross-boundary fence-merge count, the
# cross-backend "tso" key with its cycles and MFENCE count, the tier-0
# "tier0" key with its template counters, and the whole-program
# "analysis" key (docs/ANALYSIS.md) with its relaxed-fence count and
# cycle delta — the delta must never be negative (analysis-on can only
# remove ordering cost) and at least one kernel must actually relax
# fences, or the analysis subsystem went dead. The top-level
# "cold_start" object must show tier-0 template translation strictly
# cheaper per guest instruction than the tier-1 IR pipeline (the
# simulator's only wall-time gate; the measured gap is ≥ 5×, so a
# strict < holds with wide margin on any machine).
if command -v jq > /dev/null 2>&1; then
    jq -e '(.kernels | length) == 16
           and ([.kernels[] | select(.superblock
                 and (.superblock | has("cycle_delta"))
                 and (.superblock | has("fences_merged_cross"))
                 and .tso
                 and (.tso | has("cycles"))
                 and (.tso | has("mfences"))
                 and .tier0
                 and (.tier0 | has("cycles"))
                 and (.tier0.blocks > 0)
                 and (.tier0 | has("ns_per_insn"))
                 and .analysis
                 and (.analysis | has("relaxed"))
                 and (.analysis.cycle_delta_vs_off >= 0))] | length) == 16
           and ([.kernels[] | select(.analysis.relaxed > 0)] | length) >= 1
           and (.cold_start.tier0_insns > 0)
           and (.cold_start.tier0_ns_per_insn < .cold_start.tier1_ns_per_insn)' \
        BENCH_pipeline.json > /dev/null
else
    python3 - BENCH_pipeline.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert len(doc["kernels"]) == 16, len(doc["kernels"])
for k in doc["kernels"]:
    sb = k["superblock"]
    assert "cycle_delta" in sb and "fences_merged_cross" in sb, k["kernel"]
    tso = k["tso"]
    assert "cycles" in tso and "mfences" in tso, k["kernel"]
    t0 = k["tier0"]
    assert "cycles" in t0 and "ns_per_insn" in t0, k["kernel"]
    assert t0["blocks"] > 0, k["kernel"]
    an = k["analysis"]
    assert "relaxed" in an, k["kernel"]
    assert an["cycle_delta_vs_off"] >= 0, k["kernel"]
assert any(k["analysis"]["relaxed"] > 0 for k in doc["kernels"]), \
    "no kernel relaxed any fences"
cold = doc["cold_start"]
assert cold["tier0_insns"] > 0, cold
assert cold["tier0_ns_per_insn"] < cold["tier1_ns_per_insn"], cold
EOF
fi

# Codegen-performance gate: per-kernel simulated cycles must not exceed
# the checked-in ceilings (BENCH_baseline.json) on either tier. The
# simulator is deterministic, so any increase is a genuine codegen or
# engine regression, not noise.
python3 - BENCH_pipeline.json BENCH_baseline.json <<'EOF'
import json, sys
new = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))["kernels"]
bad = []
for k in new["kernels"]:
    b = base[k["kernel"]]
    if k["cycles"] > b["cycles"]:
        bad.append(f'{k["kernel"]}: tier-1 {k["cycles"]} > baseline {b["cycles"]}')
    if k["superblock"]["tier2_cycles"] > b["tier2_cycles"]:
        bad.append(
            f'{k["kernel"]}: tier-2 {k["superblock"]["tier2_cycles"]}'
            f' > baseline {b["tier2_cycles"]}'
        )
assert not bad, "cycle regression vs BENCH_baseline.json:\n  " + "\n  ".join(bad)
EOF

# Static-analysis gate (docs/ANALYSIS.md): the analyzer over the
# 16-kernel and litmus corpora must report zero lint findings (the
# corpora are known-clean; any finding is a false positive) and at
# least one kernel with relaxable accesses.
analysis_json="$(mktemp /tmp/analysis.XXXXXX.json)"
cargo run -q --release -p risotto-bench --bin analyze -- \
    --smoke --json "$analysis_json" > /dev/null
if command -v jq > /dev/null 2>&1; then
    jq -e '(.version == 1)
           and (.kernels | length) == 16
           and ([.kernels[], .litmus[] | select((.lints | length) > 0)]
                | length) == 0
           and ([.kernels[] | select(.relaxable > 0)] | length) >= 1' \
        "$analysis_json" > /dev/null
else
    python3 - "$analysis_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 1
assert len(doc["kernels"]) == 16, len(doc["kernels"])
for img in doc["kernels"] + doc["litmus"]:
    assert img["lints"] == [], f'{img["name"]}: false-positive lints {img["lints"]}'
assert any(k["relaxable"] > 0 for k in doc["kernels"]), "no relaxable kernel accesses"
EOF
fi
rm -f "$analysis_json"

# Metrics-artifact smoke: fig12 at CI scale must emit a parseable,
# versioned JSON artifact with one workload entry per kernel.
metrics_json="$(mktemp /tmp/fig12_metrics.XXXXXX.json)"
cargo run -q --release -p risotto-bench --bin fig12_parsec_phoenix -- \
    --smoke --metrics-json "$metrics_json" > /dev/null
if command -v jq > /dev/null 2>&1; then
    jq -e '.version == 1 and (.workloads | length) == 16
           and ([.workloads[]
                 | select(.metrics.metrics["verify.violations"].value == 0
                          and .metrics.metrics["verify.checked"].value > 0)]
                | length) == 16' "$metrics_json" > /dev/null
else
    python3 - "$metrics_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 1, doc["version"]
assert len(doc["workloads"]) == 16, len(doc["workloads"])
for w in doc["workloads"]:
    assert w["metrics"]["version"] == 1
    m = w["metrics"]["metrics"]
    # The harness runs at VerifyLevel::Install: every install must have
    # been read back, with zero violations.
    assert m["verify.violations"]["value"] == 0, w["name"]
    assert m["verify.checked"]["value"] > 0, w["name"]
EOF
fi
rm -f "$metrics_json"

# Differential-fuzz gate (docs/FUZZING.md): a seeded smoke run across
# the full oracle matrix. The binary exits nonzero on any divergence,
# validator violation, or fault-contract breach, and asserts the tier-2
# promotion-rate floor; the corpus replay itself runs inside
# `cargo test --test fuzz` above. Fixed seed: failures are replayable.
fuzz_json="$(mktemp /tmp/fuzz_metrics.XXXXXX.json)"
cargo run -q --release -p risotto-bench --bin fuzz -- \
    --smoke --seed 0xC1 --metrics-json "$fuzz_json" > /dev/null
if command -v jq > /dev/null 2>&1; then
    jq -e '.version == 1
           and (.workloads[0].metrics.metrics["fuzz.divergences"].value == 0)
           and (.workloads[0].metrics.metrics["fuzz.programs"].value >= 300)
           and (.workloads[0].metrics.metrics["fuzz.fault_runs"].value > 0)
           and (.workloads[0].metrics.metrics["fuzz.configs_run"].value
                == 7 * .workloads[0].metrics.metrics["fuzz.programs"].value)' \
        "$fuzz_json" > /dev/null
else
    python3 - "$fuzz_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
m = doc["workloads"][0]["metrics"]["metrics"]
assert m["fuzz.divergences"]["value"] == 0, m["fuzz.divergences"]
assert m["fuzz.programs"]["value"] >= 300, m["fuzz.programs"]
assert m["fuzz.fault_runs"]["value"] > 0, m["fuzz.fault_runs"]
# The full oracle matrix is interp + tier0 + tier1 + tier1-noopt +
# tier2 + tier1-tso + tier1-analysis: exactly seven configurations
# per program.
assert m["fuzz.configs_run"]["value"] == 7 * m["fuzz.programs"]["value"], m
EOF
fi
rm -f "$fuzz_json"

# Remaining figure binaries, CI-sized: every figure in the paper's
# evaluation gets exercised, not just fig12.
cargo run -q --release -p risotto-bench --bin fig13_openssl_sqlite -- --smoke > /dev/null
cargo run -q --release -p risotto-bench --bin fig14_mathlib -- --smoke > /dev/null
cargo run -q --release -p risotto-bench --bin fig15_cas -- --smoke > /dev/null

echo "ci: all green"
