#!/usr/bin/env sh
# Local CI gate: build, full test suite, and lint-clean clippy.
# Run from the repository root before sending a change.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: rustdoc must build warning-free (missing-docs are
# hard errors in core/tcg/host-arm via #![deny(missing_docs)]).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# End-to-end pipeline bench in smoke mode: runs the 16-kernel suite at a
# CI-sized scale and emits BENCH_pipeline.json (per-kernel cycles +
# TB-chain hit rate + registry snapshot).
cargo bench -q -p risotto-bench --bench pipeline -- smoke
test -s BENCH_pipeline.json

# Metrics-artifact smoke: fig12 at CI scale must emit a parseable,
# versioned JSON artifact with one workload entry per kernel.
metrics_json="$(mktemp /tmp/fig12_metrics.XXXXXX.json)"
cargo run -q --release -p risotto-bench --bin fig12_parsec_phoenix -- \
    --smoke --metrics-json "$metrics_json" > /dev/null
if command -v jq > /dev/null 2>&1; then
    jq -e '.version == 1 and (.workloads | length) == 16' "$metrics_json" > /dev/null
else
    python3 - "$metrics_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 1, doc["version"]
assert len(doc["workloads"]) == 16, len(doc["workloads"])
for w in doc["workloads"]:
    assert w["metrics"]["version"] == 1
EOF
fi
rm -f "$metrics_json"

echo "ci: all green"
