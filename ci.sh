#!/usr/bin/env sh
# Local CI gate: build, full test suite, and lint-clean clippy.
# Run from the repository root before sending a change.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# End-to-end pipeline bench in smoke mode: runs the 16-kernel suite at a
# CI-sized scale and emits BENCH_pipeline.json (per-kernel cycles +
# TB-chain hit rate).
cargo bench -q -p risotto-bench --bench pipeline -- smoke
test -s BENCH_pipeline.json

echo "ci: all green"
