//! # Risotto-rs
//!
//! A from-scratch Rust reproduction of **"Risotto: A Dynamic Binary
//! Translator for Weak Memory Model Architectures"** (ASPLOS 2023):
//! a complete DBT stack — guest ISA, TCG-style IR with a verified-mapping
//! frontend and concurrency-aware optimizer, an Arm-style weak-memory host
//! machine, a dynamic host library linker — together with the paper's
//! formal side: executable axiomatic memory models (x86-TSO, TCG IR,
//! Armed-Cats original & corrected), a litmus enumerator, and a Theorem-1
//! translation-correctness checker.
//!
//! This crate is the umbrella: it re-exports every subsystem. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ```
//! use risotto::core::{Emulator, Setup};
//! use risotto::guest::{AluOp, GelfBuilder, Gpr};
//! use risotto::host::CostModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GelfBuilder::new("main");
//! b.asm.label("main");
//! b.asm.mov_ri(Gpr::RAX, 21);
//! b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 2);
//! b.asm.hlt();
//! let bin = b.finish()?;
//! let report = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like())
//!     .run(1_000_000)?;
//! assert_eq!(report.exit_vals[0], Some(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// Whole-program static analysis: CFG recovery, dataflow, escape
/// analysis driving sound fence relaxation (docs/ANALYSIS.md).
pub use risotto_analysis as analysis;
/// The DBT engine and dynamic host linker.
pub use risotto_core as core;
/// Differential fuzzing: random programs, cross-tier oracles, minimizer.
pub use risotto_fuzz as fuzz;
/// The MiniX86 guest ISA, assembler and GELF format.
pub use risotto_guest_x86 as guest;
/// The MiniArm host ISA, backend and machine simulator.
pub use risotto_host_arm as host;
/// The MiniTSO (x86-TSO) host backend.
pub use risotto_host_tso as host_tso;
/// Litmus tests and exhaustive behavior enumeration.
pub use risotto_litmus as litmus;
/// Mapping schemes and Theorem-1 checking.
pub use risotto_mappings as mappings;
/// Axiomatic memory models (x86-TSO, TCG IR, Armed-Cats).
pub use risotto_memmodel as memmodel;
/// Native host libraries and their guest-assembly twins.
pub use risotto_nativelib as nativelib;
/// The TCG-style IR, frontend and optimizer.
pub use risotto_tcg as tcg;
/// Tier-0 IR-less template translator.
pub use risotto_template as template;
/// The evaluation workloads.
pub use risotto_workloads as workloads;
