//! Every Fig. 12 kernel must produce the same checksum under the
//! reference interpreter and under every emulator setup — each benchmark
//! run doubles as a whole-pipeline correctness check.

use risotto_core::{Emulator, Setup};
use risotto_guest_x86::Interp;
use risotto_host_arm::CostModel;
use risotto_workloads::kernels;

#[test]
fn all_kernels_agree_across_setups() {
    let threads = 2;
    for w in kernels::all() {
        let scale = if w.name == "matrixmultiply" { 8 } else { 64 };
        let bin = (w.build)(scale, threads);
        let mut interp = Interp::new(&bin);
        interp.run(200_000_000).unwrap_or_else(|e| panic!("{}: interp {e}", w.name));
        let expect = interp.exit_val(0);
        for setup in Setup::ALL {
            let mut emu = Emulator::new(&bin, setup, threads, CostModel::thunderx2_like());
            let r = emu
                .run(500_000_000)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, setup.name()));
            assert_eq!(
                r.exit_vals[0],
                Some(expect),
                "{} under {} disagrees with the interpreter",
                w.name,
                setup.name()
            );
        }
    }
}

#[test]
fn cas_bench_agrees_across_setups() {
    for (threads, vars) in [(1usize, 1usize), (4, 2), (4, 4)] {
        let bin = risotto_workloads::cas::cas_bench(100, threads, vars);
        for setup in Setup::ALL {
            let mut emu = Emulator::new(&bin, setup, threads, CostModel::thunderx2_like());
            let r = emu.run(500_000_000).unwrap();
            assert_eq!(
                r.exit_vals[0],
                Some(100 * threads as u64),
                "cas({threads},{vars}) under {}",
                setup.name()
            );
        }
    }
}

/// The simulator is fully deterministic: identical builds and setups give
/// bit-identical reports (the reproducibility claim of EXPERIMENTS.md).
#[test]
fn reports_are_bit_reproducible() {
    let w = &kernels::all()[5]; // freqmine
    let bin = (w.build)(128, 2);
    for setup in [Setup::Qemu, Setup::Risotto] {
        let mut a = Emulator::new(&bin, setup, 2, CostModel::thunderx2_like());
        let ra = a.run(100_000_000).unwrap();
        let mut b = Emulator::new(&bin, setup, 2, CostModel::thunderx2_like());
        let rb = b.run(100_000_000).unwrap();
        assert_eq!(ra.cycles, rb.cycles, "{}", setup.name());
        assert_eq!(ra.exit_vals, rb.exit_vals);
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.tb_count, rb.tb_count);
    }
}

/// Rebuilding the same workload gives an identical binary (the builders
/// are deterministic, so benchmarks are comparable across processes).
#[test]
fn workload_builders_are_deterministic() {
    for w in kernels::all() {
        let a = (w.build)(32, 2);
        let b = (w.build)(32, 2);
        assert_eq!(a, b, "{}", w.name);
    }
}
