//! Driver programs for the shared-library benchmarks (Figs. 13 and 14).
//!
//! Each driver is a guest binary that repeatedly calls an imported library
//! function through its PLT entry. Without host linking (qemu / tcg-ver
//! setups) the embedded guest implementation runs, translated; with it
//! (risotto / native) the PLT is intercepted and the native host library
//! runs — the exact comparison of §7.3.

use risotto_guest_x86::{AluOp, Cond, GelfBuilder, Gpr, GuestBinary};
use risotto_nativelib::bignum::BigU;
use risotto_nativelib::guest;

/// Digest algorithms of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestAlgo {
    /// MD5.
    Md5,
    /// SHA-1.
    Sha1,
    /// SHA-256.
    Sha256,
}

impl DigestAlgo {
    /// Import/IDL name.
    pub fn name(self) -> &'static str {
        match self {
            DigestAlgo::Md5 => "md5",
            DigestAlgo::Sha1 => "sha1",
            DigestAlgo::Sha256 => "sha256",
        }
    }

    fn emit_guest(self, b: &mut GelfBuilder) {
        match self {
            DigestAlgo::Md5 => guest::emit_md5(b),
            DigestAlgo::Sha1 => guest::emit_sha1(b),
            DigestAlgo::Sha256 => guest::emit_sha256(b),
        }
    }
}

/// Builds a digest-throughput driver: `iters` calls of `algo` over a
/// `buf_len`-byte buffer (the paper's 1024/8192 points). The exit value is
/// the first 8 bytes of the last digest — identical across all setups.
pub fn digest_bench(algo: DigestAlgo, buf_len: usize, iters: u64) -> GuestBinary {
    let name = algo.name();
    let data: Vec<u8> = (0..buf_len).map(|i| (i as u8).wrapping_mul(131).wrapping_add(9)).collect();
    let mut b = GelfBuilder::new("main");
    let buf = b.data_bytes(&data);
    let out = b.data_zeroed(64);
    b.asm.label("main");
    b.asm.mov_ri(Gpr::R12, iters);
    b.asm.label("dg_loop");
    b.asm.mov_ri(Gpr::RDI, buf);
    b.asm.mov_ri(Gpr::RSI, buf_len as u64);
    b.asm.mov_ri(Gpr::RDX, out);
    b.call_plt(name);
    b.asm.alu_ri(AluOp::Sub, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 0);
    b.asm.jcc_to(Cond::Ne, "dg_loop");
    b.asm.mov_ri(Gpr::RCX, out);
    b.asm.load(Gpr::RAX, Gpr::RCX, 0);
    b.asm.hlt();
    b.plt_stub(name, &format!("guest_{name}"));
    algo.emit_guest(&mut b);
    b.finish().unwrap()
}

/// Builds the RSA driver: `iters` modular exponentiations with an
/// `nlimbs`-limb modulus `2^(64·nlimbs) − c`. `sign` selects a full-width
/// exponent (sign) vs 65537 (verify). Exit value: first result limb.
pub fn rsa_bench(nlimbs: usize, sign: bool, iters: u64) -> GuestBinary {
    let c = 159u64; // 2^1024−159 and friends are plausible PM moduli
    let base = BigU::pseudo_random(nlimbs, 0xBA5E);
    let exp = if sign {
        BigU::pseudo_random(nlimbs, 0x5EC8E7)
    } else {
        let mut e = BigU::zero(nlimbs);
        e.limbs[0] = 65537;
        e
    };
    let mut b = GelfBuilder::new("main");
    let base_addr = b.data_u64(&base.limbs);
    let exp_addr = b.data_u64(&exp.limbs);
    let out = b.data_zeroed(nlimbs * 8);
    b.asm.label("main");
    b.asm.mov_ri(Gpr::R12, iters);
    b.asm.label("rs_loop");
    b.asm.mov_ri(Gpr::RDI, base_addr);
    b.asm.mov_ri(Gpr::RSI, exp_addr);
    b.asm.mov_ri(Gpr::RDX, out);
    b.asm.mov_ri(Gpr::RCX, nlimbs as u64);
    b.asm.mov_ri(Gpr::R8, c);
    b.call_plt("rsa_modpow");
    b.asm.alu_ri(AluOp::Sub, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 0);
    b.asm.jcc_to(Cond::Ne, "rs_loop");
    b.asm.mov_ri(Gpr::RCX, out);
    b.asm.load(Gpr::RAX, Gpr::RCX, 0);
    b.asm.hlt();
    b.plt_stub("rsa_modpow", "guest_rsa_modpow");
    guest::emit_modpow_pm(&mut b);
    b.finish().unwrap()
}

/// Builds the sqlite-style driver (the paper's `speedtest`): `rounds`
/// rounds of inserts, point queries and range scans against the KV
/// library. Exit value: running checksum of query results.
pub fn sqlite_bench(rounds: u64) -> GuestBinary {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::R12, rounds);
    b.asm.mov_ri(Gpr::R13, 1); // key cursor (keys must be non-zero)
    b.asm.mov_ri(Gpr::R14, 0); // checksum
    b.asm.label("sq_round");
    // 16 inserts.
    b.asm.mov_ri(Gpr::R15, 16);
    b.asm.label("sq_put");
    b.asm.mov_rr(Gpr::RDI, Gpr::R13);
    b.asm.alu_ri(AluOp::Mul, Gpr::RDI, 2654435761);
    b.asm.alu_ri(AluOp::And, Gpr::RDI, 0xFFF);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 1);
    b.asm.mov_rr(Gpr::RSI, Gpr::R13);
    b.call_plt("kv_put");
    b.asm.alu_ri(AluOp::Add, Gpr::R13, 1);
    b.asm.alu_ri(AluOp::Sub, Gpr::R15, 1);
    b.asm.cmp_ri(Gpr::R15, 0);
    b.asm.jcc_to(Cond::Ne, "sq_put");
    // 16 point queries.
    b.asm.mov_ri(Gpr::R15, 16);
    b.asm.label("sq_get");
    b.asm.mov_rr(Gpr::RDI, Gpr::R15);
    b.asm.alu_ri(AluOp::Mul, Gpr::RDI, 2654435761);
    b.asm.alu_ri(AluOp::And, Gpr::RDI, 0xFFF);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 1);
    b.call_plt("kv_get");
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Sub, Gpr::R15, 1);
    b.asm.cmp_ri(Gpr::R15, 0);
    b.asm.jcc_to(Cond::Ne, "sq_get");
    // A range scan every fourth round (speedtest1's query mix is
    // dominated by point operations).
    b.asm.mov_rr(Gpr::RCX, Gpr::R12);
    b.asm.alu_ri(AluOp::And, Gpr::RCX, 3);
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::Ne, "sq_norange");
    b.asm.mov_ri(Gpr::RDI, 100);
    b.asm.mov_ri(Gpr::RSI, 900);
    b.call_plt("kv_range_sum");
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.label("sq_norange");
    b.asm.alu_ri(AluOp::Sub, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 0);
    b.asm.jcc_to(Cond::Ne, "sq_round");
    b.asm.mov_rr(Gpr::RAX, Gpr::R14);
    b.asm.hlt();
    b.plt_stub("kv_put", "guest_kv_put");
    b.plt_stub("kv_get", "guest_kv_get");
    b.plt_stub("kv_range_sum", "guest_kv_range_sum");
    guest::emit_kv(&mut b);
    b.finish().unwrap()
}

/// Builds the math-library driver (Fig. 14): `iters` calls of one math
/// function on a fixed argument. Exit value: sum of truncated results ×
/// 1000 (note: translated-guest and native-library kernels are different
/// builds and may differ in the last ulps; the exit value is for
/// *within-setup* sanity, not cross-setup equality).
pub fn math_bench(fname: &str, x: f64, iters: u64) -> GuestBinary {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::R12, iters);
    b.asm.mov_ri(Gpr::R14, 0);
    b.asm.label("mt_loop");
    b.asm.mov_ri(Gpr::RDI, x.to_bits());
    b.call_plt(fname);
    // acc += trunc(result · 1000).
    b.asm.mov_ri(Gpr::RCX, 1000.0f64.to_bits());
    b.asm.fp(risotto_guest_x86::FpOp::Mul, Gpr::RAX, Gpr::RCX);
    b.asm.fp(risotto_guest_x86::FpOp::CvtFI, Gpr::RDX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RDX);
    b.asm.alu_ri(AluOp::Sub, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 0);
    b.asm.jcc_to(Cond::Ne, "mt_loop");
    b.asm.mov_rr(Gpr::RAX, Gpr::R14);
    b.asm.hlt();
    b.plt_stub(fname, &format!("guest_{fname}"));
    guest::emit_math(&mut b);
    b.finish().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::Interp;
    use risotto_nativelib::digest;

    #[test]
    fn digest_driver_produces_correct_digest() {
        let data: Vec<u8> =
            (0..256usize).map(|i| (i as u8).wrapping_mul(131).wrapping_add(9)).collect();
        let expect = u64::from_le_bytes(digest::md5(&data)[..8].try_into().unwrap());
        let bin = digest_bench(DigestAlgo::Md5, 256, 2);
        let mut i = Interp::new(&bin);
        i.run(50_000_000).unwrap();
        assert_eq!(i.exit_val(0), expect);
    }

    #[test]
    fn rsa_driver_matches_reference() {
        let nlimbs = 2;
        let base = BigU::pseudo_random(nlimbs, 0xBA5E);
        let mut e = BigU::zero(nlimbs);
        e.limbs[0] = 65537;
        let (expect, _) = risotto_nativelib::bignum::modpow_pm(&base.limbs, &e.limbs, 159);
        let bin = rsa_bench(nlimbs, false, 1);
        let mut i = Interp::new(&bin);
        i.run(100_000_000).unwrap();
        assert_eq!(i.exit_val(0), expect[0]);
    }

    #[test]
    fn sqlite_driver_runs() {
        let bin = sqlite_bench(3);
        let mut i = Interp::new(&bin);
        i.run(500_000_000).unwrap();
        // Deterministic, so just pin the checksum once computed.
        let first = i.exit_val(0);
        let mut j = Interp::new(&bin);
        j.run(500_000_000).unwrap();
        assert_eq!(first, j.exit_val(0));
    }

    #[test]
    fn math_driver_runs() {
        let bin = math_bench("sin", 0.5, 4);
        let mut i = Interp::new(&bin);
        i.run(10_000_000).unwrap();
        let expect = (0.5f64.sin() * 1000.0) as i64 as u64 * 4;
        assert_eq!(i.exit_val(0), expect);
    }
}
