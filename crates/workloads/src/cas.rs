//! The CAS contention micro-benchmark (Fig. 15).
//!
//! `threads` guest threads each perform `iters` successful compare-and-
//! swap increments; thread `t` hammers variable `t mod vars`, so the
//! `(threads, vars)` grid spans the contention spectrum: `threads == vars`
//! is contention-free, `vars == 1` is maximal contention.

use crate::parallel::emit_parallel_main;
use risotto_guest_x86::{AluOp, Cond, GelfBuilder, Gpr, GuestBinary};

/// The `(threads, vars)` configurations of Fig. 15, in plot order.
pub const FIG15_CONFIGS: [(usize, usize); 10] =
    [(1, 1), (4, 1), (4, 2), (4, 4), (8, 1), (8, 4), (8, 8), (16, 1), (16, 8), (16, 16)];

/// Builds the micro-benchmark: each thread runs `iters` CAS-increment
/// rounds (retrying on failure) against its variable, then atomically
/// publishes its contribution — the final result equals
/// `threads × iters`, the total successful CAS count.
pub fn cas_bench(iters: u64, threads: usize, vars: usize) -> GuestBinary {
    assert!(vars >= 1 && threads >= 1);
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let vars_base = b.data_zeroed(vars * 64);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    b.asm.push(Gpr::RDI);
    b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
    b.asm.mov_ri(Gpr::RCX, vars as u64);
    b.asm.div(Gpr::RCX);
    b.asm.alu_ri(AluOp::Mul, Gpr::RDX, 64);
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, vars_base);
    b.asm.mov_rr(Gpr::R8, Gpr::RDX);
    b.asm.mov_ri(Gpr::R11, iters);
    // The canonical x86 CAS-increment loop: load once, then retry on the
    // value CMPXCHG hands back in RAX on failure — no reload in the retry
    // path.
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.label("cas_iter");
    b.asm.mov_rr(Gpr::RSI, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 1);
    b.asm.cmpxchg(Gpr::R8, 0, Gpr::RSI);
    b.asm.jcc_to(Cond::Ne, "cas_iter"); // failed: RAX holds the fresh value
    b.asm.mov_rr(Gpr::RAX, Gpr::RSI); // succeeded: we know the new value
    b.asm.alu_ri(AluOp::Sub, Gpr::R11, 1);
    b.asm.cmp_ri(Gpr::R11, 0);
    b.asm.jcc_to(Cond::Ne, "cas_iter");
    // Atomically publish this thread's contribution so the result equals
    // the total number of successful CAS increments.
    b.asm.mov_ri(Gpr::R10, iters);
    b.asm.mov_ri(Gpr::R11, result);
    b.asm.xadd(Gpr::R11, 0, Gpr::R10);
    b.asm.pop(Gpr::RDI);
    b.asm.ret();
    b.finish().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::Interp;

    #[test]
    fn checked_bench_counts_every_increment() {
        for (threads, vars) in [(1, 1), (3, 1), (4, 2), (4, 4)] {
            let bin = cas_bench(50, threads, vars);
            let mut i = Interp::new(&bin);
            i.run(10_000_000).unwrap();
            assert_eq!(i.exit_val(0), 50 * threads as u64, "threads={threads} vars={vars}");
        }
    }
}
