//! The PARSEC 3.0 / Phoenix workload kernels (Fig. 12).
//!
//! Each kernel is a multi-threaded MiniX86 guest program modelled after
//! the corresponding benchmark's computational character — what matters
//! for the paper's Fig. 12 is the per-benchmark *memory-operation
//! density* (which determines fence sensitivity) and the FP/integer mix
//! (which determines soft-float exposure). The mapping is documented per
//! kernel; see DESIGN.md for the substitution rationale.
//!
//! All kernels are data-race-free (threads work on disjoint slices and
//! reduce through `LOCK XADD`), deterministic, and return a checksum as
//! thread 0's exit value — the correctness hook for differential tests.

use crate::parallel::{emit_atomic_accumulate, emit_parallel_main, CountedLoop};
use risotto_guest_x86::{AluOp, Cond, FpOp, GelfBuilder, Gpr, GuestBinary};

/// A named workload.
#[derive(Clone)]
pub struct Workload {
    /// Benchmark name as in Fig. 12.
    pub name: &'static str,
    /// Suite (`"parsec"` or `"phoenix"`).
    pub suite: &'static str,
    /// Builder: `(scale, threads) → binary`. `scale` is the per-thread
    /// element count (kernels document their own interpretation).
    pub build: fn(u64, usize) -> GuestBinary,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name)
    }
}

fn prng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

fn f64_arr(n: usize, seed: u64, lo: f64, hi: f64) -> Vec<u64> {
    let mut r = prng(seed);
    (0..n).map(|_| (lo + (hi - lo) * ((r() % 1000) as f64 / 1000.0)).to_bits()).collect()
}

fn u64_arr(n: usize, seed: u64, modulo: u64) -> Vec<u64> {
    let mut r = prng(seed);
    (0..n).map(|_| r() % modulo).collect()
}

/// Per-thread pointer into an array: `reg = base + tid·scale·stride`.
fn emit_thread_ptr(b: &mut GelfBuilder, reg: Gpr, base: u64, scale: u64, stride: u64) {
    b.asm.mov_rr(reg, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, reg, scale * stride);
    b.asm.alu_ri(AluOp::Add, reg, base);
}

// =====================================================================
// PARSEC
// =====================================================================

/// blackscholes — option pricing: FP-dominated, 2 loads + 1 store per
/// ~10 FP ops. Fence-light, soft-float-heavy.
pub fn blackscholes(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let spot = b.data_u64(&f64_arr(n, 11, 10.0, 100.0));
    let strike = b.data_u64(&f64_arr(n, 13, 10.0, 100.0));
    let out = b.data_zeroed(n * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, spot, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R9, strike, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R10, out, scale, 8);
    b.asm.mov_ri(Gpr::R14, 0); // checksum accumulator
    let l = CountedLoop::begin(&mut b, "bs", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0); // S
    b.asm.load(Gpr::RBX, Gpr::R9, 0); // K
    b.asm.fp(FpOp::Div, Gpr::RAX, Gpr::RBX); // S/K
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.fp(FpOp::Mul, Gpr::RCX, Gpr::RAX); // (S/K)²
    b.asm.fp(FpOp::Add, Gpr::RCX, Gpr::RBX);
    b.asm.fp(FpOp::Sqrt, Gpr::RDX, Gpr::RCX);
    b.asm.fp(FpOp::Mul, Gpr::RDX, Gpr::RAX);
    b.asm.fp(FpOp::Add, Gpr::RDX, Gpr::RCX);
    b.asm.fp(FpOp::Div, Gpr::RDX, Gpr::RBX);
    b.asm.store(Gpr::R10, 0, Gpr::RDX);
    b.asm.fp(FpOp::CvtFI, Gpr::R15, Gpr::RDX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R15);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 8);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// bodytrack — mixed integer/branchy per-particle update: 1 load, ~8 int
/// ops, 1 branch, 1 store per element.
pub fn bodytrack(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let input = b.data_u64(&u64_arr(n, 17, 1 << 40));
    let out = b.data_zeroed(n * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, input, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R10, out, scale, 8);
    b.asm.mov_ri(Gpr::R14, 0);
    let l = CountedLoop::begin(&mut b, "bt", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 2654435761);
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_ri(AluOp::Shr, Gpr::RCX, 13);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
    b.asm.test_rr(Gpr::RAX, Gpr::RAX);
    b.asm.jcc_to(Cond::S, "bt_neg");
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 7);
    b.asm.label("bt_neg");
    b.asm.store(Gpr::R10, 0, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 8);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// canneal — cache-hostile pointer chasing over a permutation, with a
/// store every 8 hops: load-dominated, serial dependences.
pub fn canneal(scale: u64, threads: usize) -> GuestBinary {
    let per = scale as usize;
    let n = per * threads;
    // A permutation with per-thread cycles (each thread chases its slice).
    let mut perm: Vec<u64> = (0..n as u64).collect();
    let mut r = prng(23);
    for t in 0..threads {
        let base = t * per;
        for i in (1..per).rev() {
            let j = (r() % (i as u64 + 1)) as usize;
            perm.swap(base + i, base + j);
        }
    }
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let table = b.data_u64(&perm);
    let marks = b.data_zeroed(n * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    // idx starts at tid*per; hop scale times.
    b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, scale);
    b.asm.mov_ri(Gpr::R14, 0);
    b.asm.mov_ri(Gpr::R13, 0); // hop counter for stores
    let l = CountedLoop::begin(&mut b, "cn", Gpr::R11, Some(scale));
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RCX, table);
    b.asm.load(Gpr::RAX, Gpr::RCX, 0); // idx = perm[idx]
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R13, 1);
    b.asm.mov_rr(Gpr::RDX, Gpr::R13);
    b.asm.alu_ri(AluOp::And, Gpr::RDX, 7);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "cn_nostore");
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RCX, marks);
    b.asm.store(Gpr::RCX, 0, Gpr::R13);
    b.asm.label("cn_nostore");
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// facesim — streaming FP: 2 loads, 4 FP ops, 1 store per element.
pub fn facesim(scale: u64, threads: usize) -> GuestBinary {
    streaming_fp_kernel("fs", scale, threads, 31)
}

/// Shared shape for facesim-like streaming FP kernels.
fn streaming_fp_kernel(tag: &'static str, scale: u64, threads: usize, seed: u64) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let xs = b.data_u64(&f64_arr(n, seed, 0.1, 4.0));
    let ys = b.data_u64(&f64_arr(n, seed + 1, 0.1, 4.0));
    let out = b.data_zeroed(n * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, xs, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R9, ys, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R10, out, scale, 8);
    b.asm.mov_ri(Gpr::R14, 0);
    let l = CountedLoop::begin(&mut b, tag, Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.load(Gpr::RBX, Gpr::R9, 0);
    b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX);
    b.asm.fp(FpOp::Add, Gpr::RAX, Gpr::RBX);
    b.asm.fp(FpOp::Sub, Gpr::RAX, Gpr::RBX);
    b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RAX);
    b.asm.store(Gpr::R10, 0, Gpr::RAX);
    b.asm.fp(FpOp::CvtFI, Gpr::R15, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R15);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 8);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// fluidanimate — neighbor stencil: 3 loads, 2 FP ops, 1 store.
pub fn fluidanimate(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads + 2;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let cells = b.data_u64(&f64_arr(n, 41, 0.0, 2.0));
    let out = b.data_zeroed(n * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, cells + 8, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R10, out + 8, scale, 8);
    b.asm.mov_ri(Gpr::R14, 0);
    let l = CountedLoop::begin(&mut b, "fa", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, -8);
    b.asm.load(Gpr::RBX, Gpr::R8, 0);
    b.asm.load(Gpr::RCX, Gpr::R8, 8);
    b.asm.fp(FpOp::Add, Gpr::RAX, Gpr::RBX);
    b.asm.fp(FpOp::Add, Gpr::RAX, Gpr::RCX);
    b.asm.store(Gpr::R10, 0, Gpr::RAX);
    b.asm.fp(FpOp::CvtFI, Gpr::R15, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R15);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 8);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// freqmine — itemset counting: byte load + count load + count store per
/// item with almost no compute. The most fence-sensitive kernel (the
/// paper's 75% case).
pub fn freqmine(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let text: Vec<u8> = {
        let mut r = prng(47);
        (0..n).map(|_| (r() % 256) as u8).collect()
    };
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let data = b.data_bytes(&text);
    let counts = b.data_zeroed(64 * 8 * threads);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, data, scale, 1);
    // Per-thread count table: counts + tid*512.
    b.asm.mov_rr(Gpr::R9, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, Gpr::R9, 512);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, counts);
    let l = CountedLoop::begin(&mut b, "fm", Gpr::R11, Some(scale));
    b.asm.load_b(Gpr::RAX, Gpr::R8, 0);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, 63);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R9);
    b.asm.load(Gpr::RCX, Gpr::RAX, 0);
    b.asm.alu_ri(AluOp::Add, Gpr::RCX, 1);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 1);
    l.end(&mut b);
    // Reduce: sum of squares of this thread's counts.
    b.asm.mov_ri(Gpr::R14, 0);
    b.asm.mov_ri(Gpr::R11, 64);
    b.asm.label("fm_red");
    b.asm.load(Gpr::RAX, Gpr::R9, 0);
    b.asm.alu_rr(AluOp::Mul, Gpr::RAX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::R11, 1);
    b.asm.cmp_ri(Gpr::R11, 0);
    b.asm.jcc_to(Cond::Ne, "fm_red");
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// streamcluster — distance evaluation: 4 loads + 4 FP ops per point,
/// register-resident accumulation.
pub fn streamcluster(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads * 2;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let pts = b.data_u64(&f64_arr(n, 53, -1.0, 1.0));
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, pts, scale, 16);
    b.asm.mov_ri(Gpr::R13, 0.0f64.to_bits()); // distance accum
    let l = CountedLoop::begin(&mut b, "sc", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.load(Gpr::RBX, Gpr::R8, 8);
    b.asm.fp(FpOp::Sub, Gpr::RAX, Gpr::RBX);
    b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RAX);
    b.asm.load(Gpr::RCX, Gpr::R8, 8);
    b.asm.load(Gpr::RDX, Gpr::R8, 0);
    b.asm.fp(FpOp::Mul, Gpr::RCX, Gpr::RDX);
    b.asm.fp(FpOp::Add, Gpr::RAX, Gpr::RCX);
    b.asm.fp(FpOp::Add, Gpr::R13, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 16);
    l.end(&mut b);
    b.asm.fp(FpOp::CvtFI, Gpr::R14, Gpr::R13);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// swaptions — Monte-Carlo-ish compute: ~20 register ops per element,
/// one load + one store per 4 elements. The least fence-sensitive kernel.
pub fn swaptions(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let seeds = b.data_u64(&u64_arr(n / 4 + 1, 59, u64::MAX));
    let out = b.data_zeroed(n * 2 + 16);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, seeds, scale / 4, 8);
    emit_thread_ptr(&mut b, Gpr::R10, out, scale / 4, 8);
    b.asm.mov_ri(Gpr::R14, 0);
    let l = CountedLoop::begin(&mut b, "sw", Gpr::R11, Some(scale / 4));
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    for _ in 0..5 {
        // xorshift round ×5: 15 register ops.
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 13);
        b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_ri(AluOp::Shr, Gpr::RCX, 7);
        b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 17);
        b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
    }
    b.asm.store(Gpr::R10, 0, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 8);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// vips — image pipeline: byte load, scale/offset/clamp, byte store.
pub fn vips(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let img: Vec<u8> = {
        let mut r = prng(61);
        (0..n).map(|_| (r() % 256) as u8).collect()
    };
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let input = b.data_bytes(&img);
    let out = b.data_zeroed(n + 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, input, scale, 1);
    emit_thread_ptr(&mut b, Gpr::R10, out, scale, 1);
    b.asm.mov_ri(Gpr::R14, 0);
    let l = CountedLoop::begin(&mut b, "vp", Gpr::R11, Some(scale));
    b.asm.load_b(Gpr::RAX, Gpr::R8, 0);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 180);
    b.asm.alu_ri(AluOp::Shr, Gpr::RAX, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 16);
    b.asm.cmp_ri(Gpr::RAX, 255);
    b.asm.jcc_to(Cond::Be, "vp_ok");
    b.asm.mov_ri(Gpr::RAX, 255);
    b.asm.label("vp_ok");
    b.asm.store_b(Gpr::R10, 0, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 1);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 1);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

// =====================================================================
// Phoenix
// =====================================================================

/// histogram — bucket increments: byte load + count load/store.
pub fn histogram(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let pixels: Vec<u8> = {
        let mut r = prng(67);
        (0..n).map(|_| (r() % 256) as u8).collect()
    };
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let data = b.data_bytes(&pixels);
    let buckets = b.data_zeroed(256 * 8 * threads);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, data, scale, 1);
    b.asm.mov_rr(Gpr::R9, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, Gpr::R9, 256 * 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, buckets);
    let l = CountedLoop::begin(&mut b, "hg", Gpr::R11, Some(scale));
    b.asm.load_b(Gpr::RAX, Gpr::R8, 0);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R9);
    b.asm.load(Gpr::RCX, Gpr::RAX, 0);
    b.asm.alu_ri(AluOp::Add, Gpr::RCX, 1);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 1);
    l.end(&mut b);
    // checksum: weighted sum of a few buckets.
    b.asm.mov_ri(Gpr::R14, 0);
    for i in [0i32, 37, 101, 255] {
        b.asm.load(Gpr::RAX, Gpr::R9, i * 8);
        b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    }
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// kmeans — nearest-of-4-centroids assignment: 1 point load, 4 unrolled
/// centroid loads + integer distance math, 1 assignment store.
pub fn kmeans(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let pts = b.data_u64(&u64_arr(n, 71, 1000));
    let centroids = b.data_u64(&[120, 370, 610, 880]);
    let assign = b.data_zeroed(n * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, pts, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R10, assign, scale, 8);
    b.asm.mov_ri(Gpr::R14, 0);
    let l = CountedLoop::begin(&mut b, "km", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0); // point
    b.asm.mov_ri(Gpr::R12, u64::MAX); // best distance
    b.asm.mov_ri(Gpr::R13, 0); // best index
    b.asm.mov_ri(Gpr::R9, centroids);
    for c in 0..4i32 {
        b.asm.load(Gpr::RBX, Gpr::R9, c * 8);
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_rr(AluOp::Sub, Gpr::RCX, Gpr::RBX);
        b.asm.alu_rr(AluOp::Mul, Gpr::RCX, Gpr::RCX); // squared distance
        b.asm.cmp_rr(Gpr::RCX, Gpr::R12);
        b.asm.jcc_to(Cond::Ae, &format!("km_skip{c}"));
        b.asm.mov_rr(Gpr::R12, Gpr::RCX);
        b.asm.mov_ri(Gpr::R13, c as u64);
        b.asm.label(&format!("km_skip{c}"));
    }
    b.asm.store(Gpr::R10, 0, Gpr::R13);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R13);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 8);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// linearregression — streaming reduction: 2 loads + 6 register ops, no
/// stores at all (register-resident accumulators).
pub fn linearregression(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let xs = b.data_u64(&u64_arr(n, 73, 1 << 20));
    let ys = b.data_u64(&u64_arr(n, 79, 1 << 20));
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, xs, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R9, ys, scale, 8);
    b.asm.mov_ri(Gpr::R12, 0); // sx
    b.asm.mov_ri(Gpr::R13, 0); // sxx
    b.asm.mov_ri(Gpr::R14, 0); // sxy
    let l = CountedLoop::begin(&mut b, "lr", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.load(Gpr::RBX, Gpr::R9, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::R12, Gpr::RAX);
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Mul, Gpr::RCX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R13, Gpr::RCX);
    b.asm.alu_rr(AluOp::Mul, Gpr::RAX, Gpr::RBX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, 8);
    l.end(&mut b);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R12);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R13);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// matrixmultiply — classic triple loop over `scale × scale` blocks (one
/// block row per thread): 2 loads + mul-add per inner step, one store per
/// output element.
pub fn matrixmultiply(scale: u64, threads: usize) -> GuestBinary {
    let m = scale as usize; // block dimension
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let a = b.data_u64(&u64_arr(m * m * threads, 83, 64));
    let bb = b.data_u64(&u64_arr(m * m, 89, 64));
    let c = b.data_zeroed(m * m * threads * 8);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    // A-block and C-block per thread.
    emit_thread_ptr(&mut b, Gpr::R8, a, (m * m) as u64, 8);
    emit_thread_ptr(&mut b, Gpr::R10, c, (m * m) as u64, 8);
    b.asm.mov_ri(Gpr::R14, 0);
    b.asm.mov_ri(Gpr::R12, 0); // i
    b.asm.label("mm_i");
    b.asm.mov_ri(Gpr::R13, 0); // j
    b.asm.label("mm_j");
    b.asm.mov_ri(Gpr::RBX, 0); // acc
    b.asm.mov_ri(Gpr::R15, 0); // k
    b.asm.label("mm_k");
    // A[i][k]: R8 + (i*m + k)*8.
    b.asm.mov_rr(Gpr::RAX, Gpr::R12);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, m as u64);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R15);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R8);
    b.asm.load(Gpr::RCX, Gpr::RAX, 0);
    // B[k][j]: bb + (k*m + j)*8.
    b.asm.mov_rr(Gpr::RAX, Gpr::R15);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, m as u64);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R13);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, bb);
    b.asm.load(Gpr::RDX, Gpr::RAX, 0);
    b.asm.alu_rr(AluOp::Mul, Gpr::RCX, Gpr::RDX);
    b.asm.alu_rr(AluOp::Add, Gpr::RBX, Gpr::RCX);
    b.asm.alu_ri(AluOp::Add, Gpr::R15, 1);
    b.asm.cmp_ri(Gpr::R15, m as u64);
    b.asm.jcc_to(Cond::Ne, "mm_k");
    // C[i][j] = acc.
    b.asm.mov_rr(Gpr::RAX, Gpr::R12);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, m as u64);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R13);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::R10);
    b.asm.store(Gpr::RAX, 0, Gpr::RBX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RBX);
    b.asm.alu_ri(AluOp::Add, Gpr::R13, 1);
    b.asm.cmp_ri(Gpr::R13, m as u64);
    b.asm.jcc_to(Cond::Ne, "mm_j");
    b.asm.alu_ri(AluOp::Add, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, m as u64);
    b.asm.jcc_to(Cond::Ne, "mm_i");
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// pca — covariance accumulation: 2 loads + 8 register ops, no stores.
pub fn pca(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let xs = b.data_u64(&u64_arr(n, 97, 1 << 16));
    let ys = b.data_u64(&u64_arr(n, 101, 1 << 16));
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, xs, scale, 8);
    emit_thread_ptr(&mut b, Gpr::R9, ys, scale, 8);
    b.asm.mov_ri(Gpr::R12, 0);
    b.asm.mov_ri(Gpr::R13, 0);
    b.asm.mov_ri(Gpr::R14, 0);
    b.asm.mov_ri(Gpr::R15, 0);
    let l = CountedLoop::begin(&mut b, "pc", Gpr::R11, Some(scale));
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.load(Gpr::RBX, Gpr::R9, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::R12, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R13, Gpr::RBX);
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Mul, Gpr::RCX, Gpr::RBX);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::RCX);
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Mul, Gpr::RCX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R15, Gpr::RCX);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, 8);
    l.end(&mut b);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R12);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R13);
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R15);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// stringmatch — byte scanning with an 8-byte needle: 1–2 byte loads +
/// compare + branch per position.
pub fn stringmatch(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads + 8;
    let hay: Vec<u8> = {
        let mut r = prng(103);
        (0..n).map(|_| b'a' + (r() % 4) as u8).collect()
    };
    let needle = b"abca";
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let text = b.data_bytes(&hay);
    let nee = b.data_bytes(needle);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, text, scale, 1);
    b.asm.mov_ri(Gpr::R14, 0); // matches
    let l = CountedLoop::begin(&mut b, "sm", Gpr::R11, Some(scale));
    // Compare 4 needle bytes.
    b.asm.mov_ri(Gpr::R9, nee);
    b.asm.mov_ri(Gpr::R13, 1); // assume match
    for i in 0..4 {
        b.asm.load_b(Gpr::RAX, Gpr::R8, i);
        b.asm.load_b(Gpr::RCX, Gpr::R9, i);
        b.asm.cmp_rr(Gpr::RAX, Gpr::RCX);
        b.asm.jcc_to(Cond::E, &format!("sm_ok{i}"));
        b.asm.mov_ri(Gpr::R13, 0);
        b.asm.label(&format!("sm_ok{i}"));
    }
    b.asm.alu_rr(AluOp::Add, Gpr::R14, Gpr::R13);
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 1);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// wordcount — tokenizing hash: byte load + branch per char, a bucket
/// store per word boundary.
pub fn wordcount(scale: u64, threads: usize) -> GuestBinary {
    let n = (scale as usize) * threads;
    let text: Vec<u8> = {
        let mut r = prng(107);
        (0..n).map(|_| if r().is_multiple_of(6) { b' ' } else { b'a' + (r() % 26) as u8 }).collect()
    };
    let mut b = GelfBuilder::new("main");
    let result = b.data_u64(&[0]);
    let data = b.data_bytes(&text);
    let buckets = b.data_zeroed(128 * 8 * threads);
    emit_parallel_main(&mut b, threads, result);
    b.asm.label("body");
    emit_thread_ptr(&mut b, Gpr::R8, data, scale, 1);
    b.asm.mov_rr(Gpr::R9, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, Gpr::R9, 128 * 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R9, buckets);
    b.asm.mov_ri(Gpr::R13, 5381); // running hash
    b.asm.mov_ri(Gpr::R14, 0); // words
    let l = CountedLoop::begin(&mut b, "wc", Gpr::R11, Some(scale));
    b.asm.load_b(Gpr::RAX, Gpr::R8, 0);
    b.asm.cmp_ri(Gpr::RAX, b' ' as u64);
    b.asm.jcc_to(Cond::Ne, "wc_char");
    // Word boundary: bump bucket[hash & 127], reset hash.
    b.asm.mov_rr(Gpr::RCX, Gpr::R13);
    b.asm.alu_ri(AluOp::And, Gpr::RCX, 127);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RCX, Gpr::R9);
    b.asm.load(Gpr::RDX, Gpr::RCX, 0);
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
    b.asm.store(Gpr::RCX, 0, Gpr::RDX);
    b.asm.mov_ri(Gpr::R13, 5381);
    b.asm.alu_ri(AluOp::Add, Gpr::R14, 1);
    b.asm.jmp_to("wc_next");
    b.asm.label("wc_char");
    b.asm.alu_ri(AluOp::Mul, Gpr::R13, 31);
    b.asm.alu_rr(AluOp::Add, Gpr::R13, Gpr::RAX);
    b.asm.label("wc_next");
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 1);
    l.end(&mut b);
    emit_atomic_accumulate(&mut b, result, Gpr::R14);
    b.asm.ret();
    b.finish().unwrap()
}

/// All Fig. 12 workloads, in the paper's plot order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload { name: "blackscholes", suite: "parsec", build: blackscholes },
        Workload { name: "bodytrack", suite: "parsec", build: bodytrack },
        Workload { name: "canneal", suite: "parsec", build: canneal },
        Workload { name: "facesim", suite: "parsec", build: facesim },
        Workload { name: "fluidanimate", suite: "parsec", build: fluidanimate },
        Workload { name: "freqmine", suite: "parsec", build: freqmine },
        Workload { name: "streamcluster", suite: "parsec", build: streamcluster },
        Workload { name: "swaptions", suite: "parsec", build: swaptions },
        Workload { name: "vips", suite: "parsec", build: vips },
        Workload { name: "histogram", suite: "phoenix", build: histogram },
        Workload { name: "kmeans", suite: "phoenix", build: kmeans },
        Workload { name: "linearregression", suite: "phoenix", build: linearregression },
        Workload { name: "matrixmultiply", suite: "phoenix", build: matrixmultiply },
        Workload { name: "pca", suite: "phoenix", build: pca },
        Workload { name: "stringmatch", suite: "phoenix", build: stringmatch },
        Workload { name: "wordcount", suite: "phoenix", build: wordcount },
    ]
}
