//! # risotto-workloads
//!
//! The evaluation's guest programs: the 16 PARSEC 3.0 / Phoenix workload
//! kernels of Fig. 12 ([`kernels`]), the CAS contention micro-benchmark
//! of Fig. 15 ([`cas`]), the shared fork-join harness ([`parallel`]), the
//! library-call driver programs for Figs. 13/14 ([`libbench`]), and the
//! litmus→guest compiler bridging the formal and systems layers
//! ([`litmus_compile`]).
//!
//! All workloads are deterministic, data-race-free MiniX86 programs whose
//! final result is a checksum — every benchmark run doubles as a
//! correctness check against the reference interpreter.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cas;
pub mod kernels;
pub mod libbench;
pub mod litmus_compile;
pub mod parallel;
