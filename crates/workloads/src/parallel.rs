//! The fork-join harness shared by all multi-threaded workloads.
//!
//! `emit_parallel_main` builds a `main` that spawns `threads − 1` workers
//! running the kernel body, runs the body itself as thread 0, joins
//! everyone, then loads a result word and halts. The kernel must define a
//! `body` label taking the thread index in `RDI`.

use risotto_guest_x86::{syscalls, AluOp, Cond, GelfBuilder, Gpr};

/// Emits `main` for a `threads`-way parallel kernel.
///
/// After the join, the value at `result_addr` is loaded into `RAX` and the
/// program halts (so the result shows up as thread 0's exit value).
pub fn emit_parallel_main(b: &mut GelfBuilder, threads: usize, result_addr: u64) {
    assert!(threads >= 1);
    let tid_slots = b.data_zeroed(threads * 8);
    b.asm.label("main");
    // Spawn workers 1..threads, stashing their core ids.
    for i in 1..threads {
        b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
        b.asm.mov_label(Gpr::RDI, "worker");
        b.asm.mov_ri(Gpr::RSI, i as u64);
        b.asm.syscall();
        b.asm.mov_ri(Gpr::RCX, tid_slots + (i as u64) * 8);
        b.asm.store(Gpr::RCX, 0, Gpr::RAX);
    }
    // Thread 0 runs the body too.
    b.asm.mov_ri(Gpr::RDI, 0);
    b.asm.call_to("body");
    // Join the workers.
    for i in 1..threads {
        b.asm.mov_ri(Gpr::RCX, tid_slots + (i as u64) * 8);
        b.asm.load(Gpr::RDI, Gpr::RCX, 0);
        b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
        b.asm.syscall();
    }
    b.asm.mov_ri(Gpr::RCX, result_addr);
    b.asm.load(Gpr::RAX, Gpr::RCX, 0);
    b.asm.hlt();
    // Worker wrapper: body(tid), then exit(0).
    b.asm.label("worker");
    b.asm.call_to("body");
    b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
    b.asm.mov_ri(Gpr::RDI, 0);
    b.asm.syscall();
}

/// Emits the per-thread slice computation: given `tid` in `RDI`, leaves
/// `start = tid · (total/threads)` in `RSI` and `end = start +
/// total/threads` in `RDX` (both as element indices).
pub fn emit_slice(b: &mut GelfBuilder, total: u64, threads: usize) {
    let chunk = total / threads as u64;
    b.asm.mov_rr(Gpr::RSI, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, Gpr::RSI, chunk);
    b.asm.mov_rr(Gpr::RDX, Gpr::RSI);
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, chunk);
}

/// Emits an atomic accumulate of `src` into the u64 at `addr` via
/// `LOCK XADD` (the standard end-of-kernel reduction).
pub fn emit_atomic_accumulate(b: &mut GelfBuilder, addr: u64, src: Gpr) {
    b.asm.mov_ri(Gpr::R11, addr);
    b.asm.mov_rr(Gpr::R10, src);
    b.asm.xadd(Gpr::R11, 0, Gpr::R10);
}

/// Emits a bounded counted loop skeleton: label `"{name}_loop"`, decrement
/// of the counter register, and the back-branch. The caller emits the loop
/// body between `begin` and `end`.
#[derive(Debug)]
pub struct CountedLoop {
    label: String,
    counter: Gpr,
}

impl CountedLoop {
    /// Starts a loop running `count` times with `counter` as the register.
    pub fn begin(b: &mut GelfBuilder, name: &str, counter: Gpr, count_from: Option<u64>) -> Self {
        if let Some(c) = count_from {
            b.asm.mov_ri(counter, c);
        }
        let label = format!("{name}_loop");
        b.asm.label(&label);
        CountedLoop { label, counter }
    }

    /// Closes the loop.
    pub fn end(self, b: &mut GelfBuilder) {
        b.asm.alu_ri(AluOp::Sub, self.counter, 1);
        b.asm.cmp_ri(self.counter, 0);
        b.asm.jcc_to(Cond::Ne, &self.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::Interp;

    #[test]
    fn parallel_harness_runs_body_on_every_thread() {
        // Each body atomically adds (tid + 1) to the result.
        let threads = 4;
        let mut b = GelfBuilder::new("main");
        let result = b.data_u64(&[0]);
        emit_parallel_main(&mut b, threads, result);
        b.asm.label("body");
        b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
        b.asm.alu_ri(AluOp::Add, Gpr::RAX, 1);
        emit_atomic_accumulate(&mut b, result, Gpr::RAX);
        b.asm.ret();
        let bin = b.finish().unwrap();
        let mut i = Interp::new(&bin);
        i.run(1_000_000).unwrap();
        assert_eq!(i.exit_val(0), 1 + 2 + 3 + 4);
    }

    #[test]
    fn counted_loop_iterates_exactly() {
        let mut b = GelfBuilder::new("main");
        let result = b.data_u64(&[0]);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, 0);
        let l = CountedLoop::begin(&mut b, "k", Gpr::RCX, Some(37));
        b.asm.alu_ri(AluOp::Add, Gpr::RAX, 2);
        l.end(&mut b);
        b.asm.mov_ri(Gpr::RDX, result);
        b.asm.store(Gpr::RDX, 0, Gpr::RAX);
        b.asm.hlt();
        let bin = b.finish().unwrap();
        let mut i = Interp::new(&bin);
        i.run(100_000).unwrap();
        assert_eq!(i.exit_val(0), 74);
    }
}
