//! Compiles litmus programs into runnable guest binaries — the bridge
//! between the formal layer and the DBT.
//!
//! An x86-flavoured [`Program`] becomes a MiniX86 binary whose threads run
//! the litmus bodies (with optional per-thread delay staggers to explore
//! interleavings) and record their final registers plus the final shared
//! memory into an observation area. The integration suite then checks
//! that every outcome *observed* through the full DBT pipeline is
//! *allowed* by the axiomatic x86 model — operational ⊆ axiomatic, the
//! soundness direction a correct translator must preserve.

use risotto_guest_x86::{syscalls, AluOp, Cond, GelfBuilder, Gpr, GuestBinary};
use risotto_litmus::{Behavior, Expr, Instr, Program, Reg};
use risotto_memmodel::{AccessMode, FenceKind, Loc};
use std::collections::BTreeMap;

/// Where compiled observations live: per thread, 8 register slots.
const REGS_PER_THREAD: u32 = 8;

/// The observation layout of a compiled litmus binary.
#[derive(Debug, Clone)]
pub struct CompiledLitmus {
    /// The binary.
    pub binary: GuestBinary,
    /// Guest address of each litmus location.
    pub loc_addrs: BTreeMap<Loc, u64>,
    /// Guest address of the register observation area
    /// (`[tid × 8 + reg] × u64`).
    pub regs_addr: u64,
    /// Number of threads.
    pub threads: usize,
}

impl CompiledLitmus {
    /// Extracts the observed [`Behavior`] from a memory reader after a run.
    pub fn observe(&self, mem: &risotto_guest_x86::SparseMem) -> Behavior {
        let mem_vals: BTreeMap<Loc, u64> =
            self.loc_addrs.iter().map(|(&l, &a)| (l, mem.read_u64(a))).collect();
        let mut regs = Vec::new();
        for tid in 0..self.threads {
            let mut r = BTreeMap::new();
            for k in 0..REGS_PER_THREAD {
                let v = mem.read_u64(self.regs_addr + (tid as u64 * 8 + k as u64) * 8);
                if v != u64::MAX {
                    r.insert(Reg(k), v);
                }
            }
            regs.push(r);
        }
        Behavior { mem: mem_vals, regs }
    }
}

/// Guest register hosting litmus register `Reg(k)` (k < 8).
fn greg(r: Reg) -> Gpr {
    assert!(r.0 < REGS_PER_THREAD, "litmus register {r:?} out of compile range");
    Gpr(8 + r.0 as u8) // R8..R15
}

/// Compiles an x86-flavoured litmus program. `delays[t]` inserts a spin of
/// that many iterations before thread `t`'s body (interleaving explorer).
///
/// # Panics
///
/// Panics on non-x86 instructions (Arm/TCG-flavoured programs are not
/// runnable guests) or on expressions beyond `Const`/`Reg`.
pub fn compile_litmus(prog: &Program, delays: &[u64]) -> CompiledLitmus {
    let threads = prog.threads.len();
    let mut b = GelfBuilder::new("main");
    // Locations: one u64 each, 64 bytes apart.
    let locs = prog.locations();
    let loc_area = b.data_zeroed(locs.len().max(1) * 64);
    let mut loc_addrs = BTreeMap::new();
    for (i, &l) in locs.iter().enumerate() {
        loc_addrs.insert(l, loc_area + i as u64 * 64);
    }
    // Observation area, initialized to MAX ("unset").
    let regs_addr = b.data_u64(&vec![u64::MAX; threads * REGS_PER_THREAD as usize]);
    // Initial values.
    let init_words: Vec<(u64, u64)> =
        locs.iter().map(|&l| (loc_addrs[&l], prog.init_val(l).0)).collect();

    // main: write init values, spawn workers, run thread 0, join, halt.
    b.asm.label("main");
    for (addr, val) in &init_words {
        b.asm.mov_ri(Gpr::RDI, *addr);
        b.asm.mov_ri(Gpr::RAX, *val);
        b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    }
    b.asm.mfence();
    let tid_slots = b.data_zeroed(threads * 8);
    for t in 1..threads {
        b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
        b.asm.mov_label(Gpr::RDI, &format!("thread{t}"));
        b.asm.mov_ri(Gpr::RSI, 0);
        b.asm.syscall();
        b.asm.mov_ri(Gpr::RCX, tid_slots + t as u64 * 8);
        b.asm.store(Gpr::RCX, 0, Gpr::RAX);
    }
    b.asm.call_to("thread0_body");
    for t in 1..threads {
        b.asm.mov_ri(Gpr::RCX, tid_slots + t as u64 * 8);
        b.asm.load(Gpr::RDI, Gpr::RCX, 0);
        b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
        b.asm.syscall();
    }
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.hlt();

    // Worker wrappers.
    for t in 1..threads {
        b.asm.label(&format!("thread{t}"));
        b.asm.call_to(&format!("thread{t}_body"));
        b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
        b.asm.mov_ri(Gpr::RDI, 0);
        b.asm.syscall();
    }

    // Thread bodies.
    for (t, thread) in prog.threads.iter().enumerate() {
        b.asm.label(&format!("thread{t}_body"));
        // Delay stagger.
        let delay = delays.get(t).copied().unwrap_or(0);
        if delay > 0 {
            b.asm.mov_ri(Gpr::RCX, delay);
            b.asm.label(&format!("t{t}_delay"));
            b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
            b.asm.cmp_ri(Gpr::RCX, 0);
            b.asm.jcc_to(Cond::Ne, &format!("t{t}_delay"));
        }
        let mut ctx = Ctx { b: &mut b, t, label_seq: 0, loc_addrs: &loc_addrs, used: Vec::new() };
        ctx.emit_instrs(&thread.instrs);
        let used = ctx.used.clone();
        // A jump here ends the translation block: otherwise the §6.1
        // fence-merging pass (faithfully) merges the litmus body's trailing
        // `Frm` with the observation stores' leading `Fww` into a full
        // fence right after the last litmus access, draining the store
        // buffer and shrinking the weak-behavior window to nothing.
        b.asm.jmp_to(&format!("t{t}_observe"));
        b.asm.label(&format!("t{t}_observe"));
        // Record used registers into the observation area. No fence needed:
        // thread exit (HLT / EXIT) drains the store buffer, and observation
        // happens after every core halted.
        for r in used {
            b.asm.mov_ri(Gpr::RDI, regs_addr + (t as u64 * 8 + r.0 as u64) * 8);
            b.asm.store(Gpr::RDI, 0, greg(r));
        }
        b.asm.ret();
    }

    CompiledLitmus { binary: b.finish().unwrap(), loc_addrs, regs_addr, threads }
}

struct Ctx<'a> {
    b: &'a mut GelfBuilder,
    t: usize,
    label_seq: u32,
    loc_addrs: &'a BTreeMap<Loc, u64>,
    used: Vec<Reg>,
}

impl Ctx<'_> {
    fn fresh(&mut self, tag: &str) -> String {
        self.label_seq += 1;
        format!("t{}_{}_{}", self.t, tag, self.label_seq)
    }

    fn mark_used(&mut self, r: Reg) {
        if !self.used.contains(&r) {
            self.used.push(r);
        }
    }

    /// Materializes an expression into `dst` (Const/Reg only).
    fn eval(&mut self, e: &Expr, dst: Gpr) {
        match e {
            Expr::Const(c) => {
                self.b.asm.mov_ri(dst, *c);
            }
            Expr::Reg(r) => {
                self.b.asm.mov_rr(dst, greg(*r));
            }
            other => panic!("compile_litmus: unsupported expression {other:?}"),
        }
    }

    fn emit_instrs(&mut self, instrs: &[Instr]) {
        for i in instrs {
            match i {
                Instr::Load { dst, loc, mode: AccessMode::Plain } => {
                    let addr = self.loc_addrs[&loc.loc()];
                    self.b.asm.mov_ri(Gpr::RSI, addr);
                    self.b.asm.load(greg(*dst), Gpr::RSI, 0);
                    self.mark_used(*dst);
                }
                Instr::Store { loc, val, mode: AccessMode::Plain } => {
                    let addr = self.loc_addrs[&loc.loc()];
                    self.eval(val, Gpr::RDX);
                    self.b.asm.mov_ri(Gpr::RSI, addr);
                    self.b.asm.store(Gpr::RSI, 0, Gpr::RDX);
                }
                Instr::Rmw { dst, loc, expected, desired, kind } => {
                    assert!(
                        matches!(kind, risotto_litmus::RmwKind::X86Lock),
                        "compile_litmus: only x86 RMWs are runnable"
                    );
                    let addr = self.loc_addrs[&loc.loc()];
                    self.eval(expected, Gpr::RAX);
                    self.eval(desired, Gpr::RCX);
                    self.b.asm.mov_ri(Gpr::RSI, addr);
                    self.b.asm.cmpxchg(Gpr::RSI, 0, Gpr::RCX);
                    if let Some(d) = dst {
                        self.b.asm.mov_rr(greg(*d), Gpr::RAX);
                        self.mark_used(*d);
                    }
                }
                Instr::Fence(FenceKind::MFence) => {
                    self.b.asm.mfence();
                }
                Instr::Fence(other) => panic!("compile_litmus: non-x86 fence {other:?}"),
                Instr::Let { dst, val } => {
                    self.eval(val, Gpr::RDX);
                    self.b.asm.mov_rr(greg(*dst), Gpr::RDX);
                    self.mark_used(*dst);
                }
                Instr::If { reg, eq, then, els } => {
                    let l_else = self.fresh("else");
                    let l_end = self.fresh("end");
                    self.b.asm.cmp_ri(greg(*reg), *eq);
                    self.b.asm.jcc_to(Cond::Ne, &l_else);
                    self.emit_instrs(then);
                    self.b.asm.jmp_to(&l_end);
                    self.b.asm.label(&l_else);
                    self.emit_instrs(els);
                    self.b.asm.label(&l_end);
                }
                other => panic!("compile_litmus: unsupported instruction {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::Interp;
    use risotto_litmus::corpus;

    #[test]
    fn compiled_mp_observes_a_valid_outcome() {
        let p = corpus::mp();
        let c = compile_litmus(&p, &[0, 0]);
        let mut i = Interp::new(&c.binary);
        i.run(10_000_000).unwrap();
        let obs = c.observe(&i.mem);
        // The interpreter is SC; its outcome must be x86-allowed.
        let allowed = risotto_litmus::behaviors(&p, &risotto_memmodel::X86Tso::new());
        assert!(
            allowed.iter().any(|b| b.mem == obs.mem && b.regs == obs.regs),
            "observed {obs:?} not in the allowed set"
        );
    }

    #[test]
    fn compiled_rmw_and_conditionals_work() {
        let p = corpus::mpq_x86();
        let c = compile_litmus(&p, &[0, 3]);
        let mut i = Interp::new(&c.binary);
        i.run(10_000_000).unwrap();
        let obs = c.observe(&i.mem);
        let allowed = risotto_litmus::behaviors(&p, &risotto_memmodel::X86Tso::new());
        assert!(allowed.iter().any(|b| b.mem == obs.mem));
    }
}
