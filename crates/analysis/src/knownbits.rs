//! Known-bits / value-range analysis over a single TCG block.
//!
//! A forward abstract interpretation of the block's op list tracking,
//! per temp **and per guest env register**, an unsigned interval
//! `[lo, hi]` plus a known-zero-bits mask. Tracking env slots is the
//! point: the frontend materializes flags with `SetReg`/`GetReg`
//! round-trips, so deciding a conditional exit requires following
//! values through the env, which the peephole constant folder in
//! `risotto_tcg::opt` cannot do (it only sees `MovI` feeding `Bin`).
//!
//! The result is an [`IrHints`]: temps proven to hold a single value
//! (fed to `apply_hints` for stronger constant folding) and, when the
//! exit condition itself is decided, a dead-branch pruning hint.
//!
//! Soundness: every transfer over-approximates the concrete op
//! semantics in `BinOp::apply` / `CondOp::apply` (including the
//! divide-by-zero and shift-masking conventions), so a singleton means
//! the op *always* produces that value and replacing it with `MovI` is
//! behavior-preserving.

use risotto_tcg::{env, BinOp, CondOp, IrHints, TbExit, TcgBlock, TcgOp, Temp};

/// Known bits + unsigned range for one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kb {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
    /// Mask of bits known to be zero.
    pub zeros: u64,
}

impl Kb {
    /// Completely unknown.
    pub const TOP: Kb = Kb { lo: 0, hi: u64::MAX, zeros: 0 };

    /// Exactly `v`.
    pub fn constant(v: u64) -> Kb {
        Kb { lo: v, hi: v, zeros: !v }
    }

    /// An inclusive range `[lo, hi]`.
    pub fn range(lo: u64, hi: u64) -> Kb {
        Kb { lo, hi, zeros: 0 }.normalized()
    }

    /// The single possible value, if any.
    pub fn singleton(self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Tightens the two representations against each other: bits above
    /// the range's msb are zero, and the known-zero mask caps the range.
    fn normalized(mut self) -> Kb {
        if self.hi > 0 {
            let msb = 63 - self.hi.leading_zeros();
            if msb < 63 {
                self.zeros |= !((1u64 << (msb + 1)) - 1);
            }
        } else {
            self.zeros = u64::MAX;
        }
        self.hi = self.hi.min(!self.zeros);
        if self.lo > self.hi {
            // Inconsistent inputs collapse to the only safe answer.
            return Kb::TOP;
        }
        if self.lo == self.hi {
            self.zeros = !self.lo;
        }
        self
    }
}

/// Applies `op` to abstract operands.
fn bin(op: BinOp, a: Kb, b: Kb) -> Kb {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return Kb::constant(op.apply(x, y));
    }
    match op {
        BinOp::Add => match (a.hi.checked_add(b.hi), a.lo.checked_add(b.lo)) {
            (Some(hi), Some(lo)) => Kb::range(lo, hi),
            _ => Kb::TOP,
        },
        BinOp::Sub => match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
            (Some(lo), Some(hi)) => Kb::range(lo, hi),
            _ => Kb::TOP,
        },
        BinOp::And => Kb { lo: 0, hi: a.hi.min(b.hi), zeros: a.zeros | b.zeros }.normalized(),
        BinOp::Or => Kb { lo: a.lo.max(b.lo), hi: !(a.zeros & b.zeros), zeros: a.zeros & b.zeros }
            .normalized(),
        BinOp::Xor => Kb { lo: 0, hi: !(a.zeros & b.zeros), zeros: a.zeros & b.zeros }.normalized(),
        BinOp::Shl => match b.singleton() {
            Some(k) => {
                let k = (k & 63) as u32;
                match (a.lo.checked_shl(k), a.hi.checked_shl(k)) {
                    (Some(lo), Some(hi)) if (hi >> k) == a.hi => {
                        Kb { lo, hi, zeros: (a.zeros << k) | ((1u64 << k) - 1) }.normalized()
                    }
                    _ => Kb::TOP,
                }
            }
            None => Kb::TOP,
        },
        BinOp::Shr => match b.singleton() {
            Some(k) => {
                let k = (k & 63) as u32;
                Kb::range(a.lo >> k, a.hi >> k)
            }
            None => Kb::TOP,
        },
        BinOp::Sar => match b.singleton() {
            // Only the non-negative case is tractable.
            Some(k) if a.hi < 1 << 63 => {
                let k = (k & 63) as u32;
                Kb::range(a.lo >> k, a.hi >> k)
            }
            _ => Kb::TOP,
        },
        BinOp::Mul => {
            if (a.hi as u128) * (b.hi as u128) <= u64::MAX as u128 {
                Kb::range(a.lo.wrapping_mul(b.lo), a.hi.wrapping_mul(b.hi))
            } else {
                Kb::TOP
            }
        }
        BinOp::MulHi => {
            if (a.hi as u128) * (b.hi as u128) <= u64::MAX as u128 {
                Kb::constant(0)
            } else {
                Kb::TOP
            }
        }
        BinOp::Divu => match b.singleton() {
            // `apply` defines x/0 = 0.
            Some(0) => Kb::constant(0),
            Some(d) => Kb::range(a.lo / d, a.hi / d),
            None => Kb::TOP,
        },
        BinOp::Remu => match b.singleton() {
            // `apply` defines x%0 = x.
            Some(0) => a,
            Some(d) => Kb::range(0, (d - 1).min(a.hi)),
            None => Kb::TOP,
        },
    }
}

/// Decides `cond` over abstract operands, if possible.
fn setcond(cond: CondOp, a: Kb, b: Kb) -> Kb {
    let eq = if a.hi < b.lo || b.hi < a.lo {
        Some(false)
    } else if a.singleton().is_some() && a.singleton() == b.singleton() {
        Some(true)
    } else {
        None
    };
    let ltu = if a.hi < b.lo {
        Some(true)
    } else if a.lo >= b.hi {
        Some(false)
    } else {
        None
    };
    let no_straddle = (a.hi < 1 << 63 || a.lo >= 1 << 63) && (b.hi < 1 << 63 || b.lo >= 1 << 63);
    let lts = if no_straddle {
        let (al, ah, bl, bh) = (a.lo as i64, a.hi as i64, b.lo as i64, b.hi as i64);
        if ah < bl {
            Some(true)
        } else if al >= bh {
            Some(false)
        } else {
            None
        }
    } else {
        None
    };
    let decided = match cond {
        CondOp::Eq => eq,
        CondOp::Ne => eq.map(|v| !v),
        CondOp::LtU => ltu,
        CondOp::LtS => lts,
    };
    match decided {
        Some(v) => Kb::constant(v as u64),
        None => Kb::range(0, 1),
    }
}

/// Computes constant-folding and branch-pruning hints for one block.
///
/// Run this on the *frontend* output, before the optimizer: hints are
/// matched to ops by their pure def, which optimization may remove.
pub fn ir_hints(block: &TcgBlock) -> IrHints {
    let mut temps: Vec<Kb> = vec![Kb::TOP; block.n_temps as usize];
    let mut envs: [Kb; env::COUNT] = [Kb::TOP; env::COUNT];
    let mut hints = IrHints::default();
    let get = |temps: &Vec<Kb>, t: Temp| temps.get(t.0 as usize).copied().unwrap_or(Kb::TOP);
    let set = |temps: &mut Vec<Kb>, t: Temp, v: Kb| {
        if let Some(slot) = temps.get_mut(t.0 as usize) {
            *slot = v;
        }
    };
    for op in &block.ops {
        match op {
            TcgOp::MovI { dst, val } => set(&mut temps, *dst, Kb::constant(*val)),
            TcgOp::Mov { dst, src } => {
                let v = get(&temps, *src);
                set(&mut temps, *dst, v);
            }
            TcgOp::GetReg { dst, reg } => {
                let v = envs.get(*reg as usize).copied().unwrap_or(Kb::TOP);
                set(&mut temps, *dst, v);
            }
            TcgOp::SetReg { reg, src } => {
                if let Some(slot) = envs.get_mut(*reg as usize) {
                    *slot = get(&temps, *src);
                }
            }
            TcgOp::Ld { dst, .. } => set(&mut temps, *dst, Kb::TOP),
            TcgOp::Ld8 { dst, .. } => set(&mut temps, *dst, Kb::range(0, 255)),
            TcgOp::Bin { op: b, dst, a, b: rhs } => {
                let v = bin(*b, get(&temps, *a), get(&temps, *rhs));
                set(&mut temps, *dst, v);
                if let Some(c) = v.singleton() {
                    hints.const_temps.push((*dst, c));
                }
            }
            TcgOp::Setcond { cond, dst, a, b } => {
                let v = setcond(*cond, get(&temps, *a), get(&temps, *b));
                set(&mut temps, *dst, v);
                if let Some(c) = v.singleton() {
                    hints.const_temps.push((*dst, c));
                }
            }
            TcgOp::Cas { dst, .. } | TcgOp::AtomicAdd { dst, .. } => set(&mut temps, *dst, Kb::TOP),
            TcgOp::CallHelper { ret: Some(r), .. } => set(&mut temps, *r, Kb::TOP),
            TcgOp::St { .. } | TcgOp::St8 { .. } | TcgOp::Fence(_) => {}
            // Control seams: no value effects on the on-trace path.
            _ => {}
        }
    }
    if let TbExit::CondJump { flag, .. } = block.exit {
        if let Some(v) = get(&temps, flag).singleton() {
            hints.exit_flag = Some(v != 0);
        }
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_tcg::apply_hints;

    fn block(ops: Vec<TcgOp>, exit: TbExit, n_temps: u32) -> TcgBlock {
        TcgBlock { guest_pc: 0x1000, guest_len: 4, ops, exit, n_temps }
    }

    #[test]
    fn env_round_trip_keeps_constants() {
        // SetReg then GetReg must not lose the constant: the folded
        // comparison decides the exit.
        let b = block(
            vec![
                TcgOp::MovI { dst: Temp(0), val: 7 },
                TcgOp::SetReg { reg: 3, src: Temp(0) },
                TcgOp::GetReg { dst: Temp(1), reg: 3 },
                TcgOp::MovI { dst: Temp(2), val: 7 },
                TcgOp::Setcond { cond: CondOp::Eq, dst: Temp(3), a: Temp(1), b: Temp(2) },
            ],
            TbExit::CondJump { flag: Temp(3), taken: 0x2000, fallthrough: 0x1004 },
            4,
        );
        let h = ir_hints(&b);
        assert_eq!(h.exit_flag, Some(true));
        assert!(h.const_temps.contains(&(Temp(3), 1)));
    }

    #[test]
    fn byte_load_range_decides_comparison() {
        // Ld8 yields [0,255]; comparing < 256 is always true even
        // though the loaded value is unknown.
        let b = block(
            vec![
                TcgOp::MovI { dst: Temp(0), val: 0x4000 },
                TcgOp::Ld8 { dst: Temp(1), addr: Temp(0) },
                TcgOp::MovI { dst: Temp(2), val: 256 },
                TcgOp::Setcond { cond: CondOp::LtU, dst: Temp(3), a: Temp(1), b: Temp(2) },
            ],
            TbExit::Jump(0x1004),
            4,
        );
        let h = ir_hints(&b);
        assert!(h.const_temps.contains(&(Temp(3), 1)));
        assert_eq!(h.exit_flag, None);
    }

    #[test]
    fn masked_value_bounds_propagate() {
        // (⊤ & 0xff) + 1 ∈ [1, 256]: LtU 257 decides true.
        let b = block(
            vec![
                TcgOp::MovI { dst: Temp(0), val: 0x4000 },
                TcgOp::Ld { dst: Temp(1), addr: Temp(0) },
                TcgOp::MovI { dst: Temp(2), val: 0xff },
                TcgOp::Bin { op: BinOp::And, dst: Temp(3), a: Temp(1), b: Temp(2) },
                TcgOp::MovI { dst: Temp(4), val: 1 },
                TcgOp::Bin { op: BinOp::Add, dst: Temp(5), a: Temp(3), b: Temp(4) },
                TcgOp::MovI { dst: Temp(6), val: 257 },
                TcgOp::Setcond { cond: CondOp::LtU, dst: Temp(7), a: Temp(5), b: Temp(6) },
            ],
            TbExit::Jump(0x1004),
            8,
        );
        let h = ir_hints(&b);
        assert!(h.const_temps.contains(&(Temp(7), 1)));
    }

    #[test]
    fn undecidable_comparison_yields_no_hint() {
        let b = block(
            vec![
                TcgOp::MovI { dst: Temp(0), val: 0x4000 },
                TcgOp::Ld { dst: Temp(1), addr: Temp(0) },
                TcgOp::MovI { dst: Temp(2), val: 5 },
                TcgOp::Setcond { cond: CondOp::Eq, dst: Temp(3), a: Temp(1), b: Temp(2) },
            ],
            TbExit::CondJump { flag: Temp(3), taken: 0x2000, fallthrough: 0x1004 },
            4,
        );
        let h = ir_hints(&b);
        assert!(h.const_temps.is_empty());
        assert_eq!(h.exit_flag, None);
    }

    #[test]
    fn hints_apply_and_prune_the_exit() {
        let mut b = block(
            vec![
                TcgOp::MovI { dst: Temp(0), val: 3 },
                TcgOp::SetReg { reg: 0, src: Temp(0) },
                TcgOp::GetReg { dst: Temp(1), reg: 0 },
                TcgOp::MovI { dst: Temp(2), val: 3 },
                TcgOp::Setcond { cond: CondOp::Ne, dst: Temp(3), a: Temp(1), b: Temp(2) },
            ],
            TbExit::CondJump { flag: Temp(3), taken: 0x2000, fallthrough: 0x1004 },
            4,
        );
        let h = ir_hints(&b);
        assert_eq!(h.exit_flag, Some(false));
        let stats = apply_hints(&mut b, &h);
        assert_eq!(stats.branches_pruned, 1);
        assert_eq!(b.exit, TbExit::Jump(0x1004));
        assert!(stats.folded >= 1);
        assert!(b.ops.iter().any(|o| matches!(o, TcgOp::MovI { dst: Temp(3), val: 0 })));
    }

    #[test]
    fn division_follows_apply_conventions() {
        // x / 0 is defined as 0 by BinOp::apply; known-bits must agree.
        let b = block(
            vec![
                TcgOp::MovI { dst: Temp(0), val: 0x4000 },
                TcgOp::Ld { dst: Temp(1), addr: Temp(0) },
                TcgOp::MovI { dst: Temp(2), val: 0 },
                TcgOp::Bin { op: BinOp::Divu, dst: Temp(3), a: Temp(1), b: Temp(2) },
            ],
            TbExit::Jump(0x1004),
            4,
        );
        let h = ir_hints(&b);
        assert!(h.const_temps.contains(&(Temp(3), 0)));
    }
}
