//! Whole-program static analysis over loaded MiniX86 guest images.
//!
//! This crate recovers a control-flow graph from the guest text
//! ([`mod@cfg`]), runs dataflow analyses over it ([`dataflow`] is the
//! shared solver), and distils the results into [`ImageFacts`]: a
//! per-site classification of every static memory access plus lint
//! findings. The engine consumes the facts to *relax* fence/ordering
//! obligations on provably core-private or read-only accesses before
//! lowering; the translation verifier re-derives the relaxation mask
//! from the same facts, so an engine (or a mutant) claiming a wrong
//! "private" produces a structured verification error at install time.
//!
//! The three analysis clients:
//!
//! * [`escape`] — shared-memory escape analysis: classifies every
//!   static access as core-private / read-only-shared / shared /
//!   atomic across all spawned-core instances.
//! * [`knownbits`] — value-range / known-bits over translated TCG
//!   blocks, feeding the optimizer's constant folding and dead-branch
//!   pruning via `risotto_tcg::IrHints`.
//! * [`mod@lint`] — guest program smells (unreachable code, misaligned or
//!   mixed-size atomics, fences that order nothing before exit).

#![deny(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod escape;
pub mod knownbits;
pub mod lint;

pub use escape::{AccessKind, EscapeFacts, InstanceInfo, Poison, Site, SiteClass};
pub use knownbits::ir_hints;
pub use lint::{lint, Finding, LintKind};

use risotto_guest_x86::{GuestBinary, Insn};
use std::collections::BTreeMap;

/// 64-bit FNV-1a over the execution-relevant parts of a guest binary:
/// entry point, text, data and the dynamic-symbol table. Debug symbols
/// are excluded — they cannot change behaviour, so two binaries that
/// differ only in labels share one analysis cache entry.
pub fn content_hash(bin: &GuestBinary) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn eat(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        fn eat_u64(&mut self, v: u64) {
            self.eat(&v.to_le_bytes());
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    h.eat_u64(bin.entry);
    h.eat_u64(bin.text.len() as u64);
    h.eat(&bin.text);
    h.eat_u64(bin.data.len() as u64);
    h.eat(&bin.data);
    h.eat_u64(bin.dynsyms.len() as u64);
    for sym in &bin.dynsyms {
        h.eat(sym.name.as_bytes());
        h.eat(&[0]);
        h.eat_u64(sym.plt_vaddr);
    }
    h.0
}

/// Aggregate summary of an image's analysis (the `analyze` bench bin
/// serialises this; `analysis.*` metrics mirror the counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisSummary {
    /// Static memory-access sites discovered.
    pub sites: u64,
    /// Sites proven core-private.
    pub private: u64,
    /// Sites proven read-only-shared.
    pub readonly: u64,
    /// Sites that may be written by more than one core.
    pub shared: u64,
    /// Atomic RMW sites (never relaxable).
    pub atomics: u64,
    /// Sites whose ordering obligation may be relaxed
    /// (private + read-only, zero whenever the image is poisoned).
    pub relaxable: u64,
    /// Soundness poisons (unresolved indirection, solver limits, …).
    pub poisons: u64,
    /// Lint findings.
    pub lints: u64,
    /// Core instances analysed (root + spawned).
    pub instances: u64,
    /// Counted loops refined by the bounded-unrolling pass.
    pub refined_loops: u64,
}

/// Everything the whole-program analysis learned about one image.
///
/// Produced by [`analyze_image`]; cached by the engine keyed on
/// [`content_hash`]. The struct is immutable after construction — the
/// engine's relaxation mask and the verifier's re-derived mask both
/// come from the same pristine facts.
#[derive(Debug, Clone)]
pub struct ImageFacts {
    /// [`content_hash`] of the analysed binary (the cache key).
    pub hash: u64,
    /// Guest entry point.
    pub entry: u64,
    /// The CFG had unresolved indirect control flow (coverage facts are
    /// lower bounds; the unreachable-code lint is suppressed).
    pub unresolved_cfg: bool,
    /// Per-pc classification of every static memory access.
    pub sites: BTreeMap<u64, Site>,
    /// Soundness poisons; non-empty ⇒ nothing is relaxable.
    pub poisons: Vec<Poison>,
    /// Lint findings.
    pub lints: Vec<Finding>,
    /// Core instances analysed.
    pub instances: Vec<InstanceInfo>,
    /// Counted loops the escape analysis refined.
    pub refined_loops: u32,
}

impl ImageFacts {
    /// Whether any soundness poison forbids relaxation image-wide.
    pub fn poisoned(&self) -> bool {
        !self.poisons.is_empty()
    }

    /// Whether the access at guest `pc` may have its ordering
    /// obligation relaxed: the image is poison-free and the site is
    /// proven core-private or read-only-shared. Unknown pcs are never
    /// relaxable.
    pub fn relaxable(&self, pc: u64) -> bool {
        !self.poisoned() && self.sites.get(&pc).map(|s| s.class.relaxable()).unwrap_or(false)
    }

    /// Builds the per-memory-event relaxation mask for the translation
    /// block at `[pc, pc + guest_len)`, in the exact event order the
    /// frontend emits (and the verifier's `check_obligations_masked`
    /// consumes): one entry per `Ld`/`Ld8`/`St`/`St8`/`Cas`/
    /// `AtomicAdd`/`CallHelper` op. RMW and helper events always get
    /// `false` — their ordering lives inside the op. A decode failure
    /// yields an empty (all-conservative) mask.
    pub fn relax_mask(
        &self,
        pc: u64,
        guest_len: u64,
        fetch: impl Fn(u64) -> [u8; 16],
    ) -> Vec<bool> {
        event_sites(pc, guest_len, fetch)
            .into_iter()
            .map(|(p, plain)| plain && self.relaxable(p))
            .collect()
    }

    /// Aggregate counters for metrics and the bench JSON report.
    pub fn summary(&self) -> AnalysisSummary {
        let mut s = AnalysisSummary {
            sites: self.sites.len() as u64,
            poisons: self.poisons.len() as u64,
            lints: self.lints.len() as u64,
            instances: self.instances.len() as u64,
            refined_loops: self.refined_loops as u64,
            ..AnalysisSummary::default()
        };
        for site in self.sites.values() {
            match site.class {
                SiteClass::Private => s.private += 1,
                SiteClass::ReadOnly => s.readonly += 1,
                SiteClass::Shared => s.shared += 1,
                SiteClass::Atomic => s.atomics += 1,
            }
            if !self.poisoned() && site.class.relaxable() {
                s.relaxable += 1;
            }
        }
        s
    }
}

/// Guest pc and kind of every frontend memory event emitted for the
/// translation block at `[pc, pc + guest_len)`, in emission order —
/// index-parallel to the masks [`ImageFacts::relax_mask`] builds and
/// `relax_block`/`check_obligations_masked` consume. The flag is `true`
/// for plain load/store events (whose scheme fence can be relaxed) and
/// `false` for RMW/helper events (ordering intrinsic to the op). An
/// undecodable byte ends the walk with an empty vector: the frontend
/// would have rejected the block too, so there are no events to map.
pub fn event_sites(pc: u64, guest_len: u64, fetch: impl Fn(u64) -> [u8; 16]) -> Vec<(u64, bool)> {
    let mut events = Vec::new();
    let mut p = pc;
    let end = pc.saturating_add(guest_len);
    while p < end {
        let Ok((insn, len)) = Insn::decode(&fetch(p)) else {
            return Vec::new();
        };
        match insn {
            // One plain load/store event each (Call pushes the return
            // address; Ret pops it).
            Insn::Load { .. }
            | Insn::LoadB { .. }
            | Insn::Store { .. }
            | Insn::StoreB { .. }
            | Insn::Push { .. }
            | Insn::Pop { .. }
            | Insn::Ret
            | Insn::Call { .. }
            | Insn::CallReg { .. } => events.push((p, true)),
            // One event whose ordering is intrinsic to the op.
            Insn::Fp { .. } | Insn::LockCmpxchg { .. } | Insn::LockXadd { .. } => {
                events.push((p, false))
            }
            _ => {}
        }
        p += len as u64;
    }
    events
}

/// Runs the full whole-program pipeline over one image: CFG recovery,
/// multi-instance escape analysis, and the lint pass.
pub fn analyze_image(bin: &GuestBinary) -> ImageFacts {
    let cfg = cfg::recover(bin);
    let facts = escape::analyze(bin, &cfg);
    let lints = lint::lint(bin, &cfg, &facts);
    ImageFacts {
        hash: content_hash(bin),
        entry: bin.entry,
        unresolved_cfg: cfg.unresolved,
        sites: facts.sites,
        poisons: facts.poisons,
        lints,
        instances: facts.instances,
        refined_loops: facts.refined_loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::{syscalls, GelfBuilder, Gpr};

    fn image(build: impl FnOnce(&mut GelfBuilder, &mut Vec<u64>)) -> GuestBinary {
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        let mut addrs = Vec::new();
        build(&mut b, &mut addrs);
        b.finish().expect("image assembles")
    }

    /// Straight-line single-core program: one load, one store, exit.
    fn simple() -> GuestBinary {
        image(|b, addrs| {
            let cell = b.data_u64(&[7]);
            addrs.push(cell);
            b.asm.mov_ri(Gpr::RBX, cell);
            b.asm.load(Gpr::RCX, Gpr::RBX, 0);
            b.asm.store(Gpr::RBX, 0, Gpr::RCX);
            b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
            b.asm.syscall();
        })
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = simple();
        let b = simple();
        assert_eq!(content_hash(&a), content_hash(&b), "identical builds hash alike");
        let mut c = simple();
        c.data[0] ^= 1;
        assert_ne!(content_hash(&a), content_hash(&c), "data bytes are hashed");
        let mut d = simple();
        d.entry += 0; // no-op change keeps hash
        assert_eq!(content_hash(&a), content_hash(&d));
    }

    #[test]
    fn analyze_image_classifies_and_summarises() {
        let bin = image(|b, addrs| {
            let cell = b.data_u64(&[7]);
            addrs.push(cell);
            b.asm.mov_ri(Gpr::RBX, cell);
            b.asm.load(Gpr::RCX, Gpr::RBX, 0);
            b.asm.store(Gpr::RBX, 0, Gpr::RCX);
            b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
            b.asm.syscall();
        });
        let facts = analyze_image(&bin);
        assert!(!facts.poisoned());
        assert_eq!(facts.instances.len(), 1);
        let s = facts.summary();
        assert_eq!(s.sites, 2);
        assert_eq!(s.private, 2, "single-core accesses are all private");
        assert_eq!(s.relaxable, 2);
        assert_eq!(s.lints, 0);
        assert_eq!(facts.hash, content_hash(&bin));
    }

    #[test]
    fn relax_mask_follows_frontend_event_order() {
        let bin = image(|b, addrs| {
            let cell = b.data_u64(&[1]);
            addrs.push(cell);
            b.asm.mov_ri(Gpr::RBX, cell);
            b.asm.load(Gpr::RCX, Gpr::RBX, 0); // event 0: relaxable load
            b.asm.mov_ri(Gpr::RAX, 1);
            b.asm.insn(risotto_guest_x86::Insn::LockXadd {
                base: Gpr::RBX,
                disp: 0,
                src: Gpr::RAX,
            }); // event 1: atomic
            b.asm.store(Gpr::RBX, 0, Gpr::RCX); // event 2: relaxable store
            b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
            b.asm.syscall();
        });
        let facts = analyze_image(&bin);
        assert!(!facts.poisoned());
        let text = bin.text.clone();
        let fetch = |addr: u64| {
            let mut w = [0u8; 16];
            for (i, slot) in w.iter_mut().enumerate() {
                if let Some(&b) = addr
                    .checked_sub(risotto_guest_x86::TEXT_BASE)
                    .and_then(|o| text.get(o as usize + i))
                {
                    *slot = b;
                }
            }
            w
        };
        let mask = facts.relax_mask(risotto_guest_x86::TEXT_BASE, bin.text.len() as u64, fetch);
        // Atomic sites are classified Atomic (not relaxable); the two
        // plain accesses are private in a single-core program. But the
        // atomic makes the *cell* contended? No other core exists, so
        // both plain accesses stay private.
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn poisoned_image_relaxes_nothing() {
        let bin = image(|b, _| {
            b.asm.mov_ri(Gpr::RBX, 0x12345);
            b.asm.insn(risotto_guest_x86::Insn::JmpReg { reg: Gpr::RBX });
        });
        let facts = analyze_image(&bin);
        // Static recovery cannot resolve the register jump through an
        // arbitrary constant? The CFG const-tracker resolves MovRI, so
        // this may decode as a resolved jump to a bad pc instead; in
        // either case the image must end poisoned and unrelaxable.
        assert!(facts.poisoned());
        assert_eq!(facts.summary().relaxable, 0);
        assert!(!facts.relaxable(risotto_guest_x86::TEXT_BASE));
    }
}
