//! Static CFG recovery over a loaded MiniX86 image.
//!
//! A worklist decoder explores from the entry point, following direct
//! branches, calls and fallthroughs. Two kinds of statically-resolvable
//! indirection are chased with a block-local constant-register scan
//! (reset at every leader/terminator, so it needs no dataflow):
//!
//! * `SPAWN` syscalls under the repo's schedule-invariant spawn
//!   discipline (`mov rax, SPAWN; mov rdi, <target>; … syscall`) — the
//!   target becomes a new root (spawn-target identification);
//! * `jmp reg`/`call reg` where the register provably holds a constant
//!   at the terminator.
//!
//! The result is a partition of the reached text into [`Block`]s with
//! typed terminators, plus the spawn-site list and an `unresolved` flag
//! for indirection the scan could not chase (consumers must then treat
//! reachability as incomplete). Byte-precise coverage feeds the
//! unreachable-code lint; the escape analysis re-resolves all control
//! flow with its full abstract domain but uses these blocks as its node
//! universe.

use risotto_guest_x86::{syscalls, Gpr, GuestBinary, Insn, TEXT_BASE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One decoded instruction with its location.
#[derive(Debug, Clone, Copy)]
pub struct CfgInsn {
    /// Guest pc.
    pub pc: u64,
    /// Encoded length in bytes.
    pub len: usize,
    /// The instruction.
    pub insn: Insn,
}

/// How a recovered block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// Unconditional direct jump.
    Jump(u64),
    /// Conditional branch.
    Cond {
        /// Target when the condition holds.
        taken: u64,
        /// Fallthrough pc.
        fall: u64,
    },
    /// Direct call (target + return pc) or an indirect call whose target
    /// the constant scan resolved.
    Call {
        /// Callee entry.
        target: u64,
        /// Return pc (pushed on the guest stack).
        ret: u64,
    },
    /// `jmp reg` resolved to a constant target by the local scan.
    ResolvedJump(u64),
    /// `jmp reg` / `call reg` the scan could not resolve (register, and
    /// the return pc for calls).
    Indirect {
        /// The target register.
        reg: Gpr,
        /// `Some(return pc)` for `call reg`, `None` for `jmp reg`.
        ret: Option<u64>,
    },
    /// `ret` — the escape analysis resolves targets via its tracked
    /// stack; plain reachability uses the call-site return edges.
    Ret,
    /// `hlt`.
    Halt,
    /// `syscall`; execution resumes at `next` unless the syscall is
    /// `EXIT`.
    Syscall {
        /// Resume pc.
        next: u64,
    },
    /// Fallthrough into the next leader (the block was split).
    Fall(u64),
    /// Decoding failed at the end of this block (dead end).
    Bad,
}

/// A recovered basic block: straight-line instructions + terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Pc of the first instruction.
    pub start: u64,
    /// The instructions, including the terminator instruction (if the
    /// block ends in one rather than falling through).
    pub insns: Vec<CfgInsn>,
    /// Typed terminator.
    pub term: Term,
}

impl Block {
    /// One-past-the-end pc of the block's bytes.
    pub fn end(&self) -> u64 {
        self.insns.last().map(|i| i.pc + i.len as u64).unwrap_or(self.start)
    }
}

/// A statically discovered `SPAWN` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnSite {
    /// Pc of the `syscall` instruction.
    pub pc: u64,
    /// Spawn target (child entry pc).
    pub target: u64,
    /// `RSI` (the child's argument) if constant at the site.
    pub arg: Option<u64>,
}

/// The recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Image entry point.
    pub entry: u64,
    /// Blocks by start pc.
    pub blocks: BTreeMap<u64, Block>,
    /// Statically discovered spawn sites.
    pub spawns: Vec<SpawnSite>,
    /// `true` when some indirect jump/call target (or a syscall number)
    /// could not be resolved by the local constant scan: reachability
    /// and byte coverage are then lower bounds, not exact.
    pub unresolved: bool,
}

/// Result of the block-local constant-register scan at a terminator.
#[derive(Default, Clone, Copy)]
struct RegConsts {
    vals: [Option<u64>; 16],
}

impl RegConsts {
    fn get(&self, r: Gpr) -> Option<u64> {
        self.vals[r.index()]
    }
    fn step(&mut self, insn: &Insn) {
        // Only `mov reg, imm` produces a tracked constant; any other
        // write to a register kills it. This is exactly the discipline
        // `workloads::parallel` emits at spawn sites.
        match insn {
            Insn::MovRI { dst, imm } => self.vals[dst.index()] = Some(*imm),
            Insn::MovRR { dst, .. }
            | Insn::Load { dst, .. }
            | Insn::LoadB { dst, .. }
            | Insn::Lea { dst, .. }
            | Insn::Pop { dst } => self.vals[dst.index()] = None,
            Insn::Alu { dst, .. } | Insn::Fp { dst, .. } => self.vals[dst.index()] = None,
            Insn::MulWide { .. } | Insn::Div { .. } => {
                self.vals[Gpr::RAX.index()] = None;
                self.vals[Gpr::RDX.index()] = None;
            }
            Insn::LockCmpxchg { .. } => self.vals[Gpr::RAX.index()] = None,
            Insn::LockXadd { src, .. } => self.vals[src.index()] = None,
            Insn::Syscall => self.vals[Gpr::RAX.index()] = None,
            _ => {}
        }
    }
}

/// Recovers the CFG of a loaded image.
pub fn recover(bin: &GuestBinary) -> Cfg {
    let text_end = TEXT_BASE + bin.text.len() as u64;
    let in_text = |pc: u64| pc >= TEXT_BASE && pc < text_end;
    let decode_at = |pc: u64| -> Option<(Insn, usize)> {
        if !in_text(pc) {
            return None;
        }
        let off = (pc - TEXT_BASE) as usize;
        Insn::decode(&bin.text[off..]).ok()
    };

    // Pass 1: worklist decode from the entry, tracking leaders, spawn
    // sites and resolved indirect targets. `consts` is reset at every
    // root so runs never inherit stale constants.
    let mut decoded: BTreeMap<u64, (Insn, usize)> = BTreeMap::new();
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    let mut spawns: BTreeMap<u64, SpawnSite> = BTreeMap::new();
    let mut unresolved = false;
    let mut roots: VecDeque<u64> = VecDeque::from([bin.entry]);
    let mut seen_roots: BTreeSet<u64> = BTreeSet::new();
    while let Some(root) = roots.pop_front() {
        if !seen_roots.insert(root) {
            continue;
        }
        if !in_text(root) {
            unresolved = true;
            continue;
        }
        leaders.insert(root);
        let mut pc = root;
        let mut consts = RegConsts::default();
        loop {
            if decoded.contains_key(&pc) {
                // Converged with an already-decoded run.
                leaders.insert(pc);
                break;
            }
            let Some((insn, len)) = decode_at(pc) else {
                break;
            };
            decoded.insert(pc, (insn, len));
            let next = pc + len as u64;
            let mut push = |t: u64| roots.push_back(t);
            match insn {
                Insn::Jmp { rel } => {
                    push(next.wrapping_add_signed(rel as i64));
                    break;
                }
                Insn::Jcc { rel, .. } => {
                    push(next.wrapping_add_signed(rel as i64));
                    push(next);
                    break;
                }
                Insn::Call { rel } => {
                    push(next.wrapping_add_signed(rel as i64));
                    push(next);
                    break;
                }
                Insn::JmpReg { reg } => {
                    match consts.get(reg) {
                        Some(t) => push(t),
                        None => unresolved = true,
                    }
                    break;
                }
                Insn::CallReg { reg } => {
                    match consts.get(reg) {
                        Some(t) => push(t),
                        None => unresolved = true,
                    }
                    push(next);
                    break;
                }
                Insn::Ret | Insn::Hlt => break,
                Insn::Syscall => {
                    match consts.get(Gpr::RAX) {
                        Some(syscalls::EXIT) => {}
                        Some(syscalls::SPAWN) => {
                            match consts.get(Gpr::RDI) {
                                Some(target) => {
                                    spawns.insert(
                                        pc,
                                        SpawnSite { pc, target, arg: consts.get(Gpr::RSI) },
                                    );
                                    push(target);
                                }
                                None => unresolved = true,
                            }
                            push(next);
                        }
                        Some(_) => push(next),
                        None => {
                            unresolved = true;
                            push(next);
                        }
                    }
                    break;
                }
                other => {
                    consts.step(&other);
                    pc = next;
                }
            }
        }
    }

    // Pass 2: split the decoded runs at leaders into blocks.
    let mut blocks: BTreeMap<u64, Block> = BTreeMap::new();
    for &start in &leaders {
        if blocks.contains_key(&start) || !decoded.contains_key(&start) {
            continue;
        }
        let mut insns = Vec::new();
        let mut pc = start;
        let term = loop {
            let Some(&(insn, len)) = decoded.get(&pc) else {
                break Term::Bad;
            };
            insns.push(CfgInsn { pc, len, insn });
            let next = pc + len as u64;
            match insn {
                Insn::Jmp { rel } => break Term::Jump(next.wrapping_add_signed(rel as i64)),
                Insn::Jcc { rel, .. } => {
                    break Term::Cond { taken: next.wrapping_add_signed(rel as i64), fall: next }
                }
                Insn::Call { rel } => {
                    break Term::Call { target: next.wrapping_add_signed(rel as i64), ret: next }
                }
                Insn::JmpReg { reg } => {
                    // Re-derive the resolved target exactly as pass 1 did.
                    let mut consts = RegConsts::default();
                    for ci in &insns[..insns.len() - 1] {
                        consts.step(&ci.insn);
                    }
                    break match consts.get(reg) {
                        Some(t) => Term::ResolvedJump(t),
                        None => Term::Indirect { reg, ret: None },
                    };
                }
                Insn::CallReg { reg } => {
                    let mut consts = RegConsts::default();
                    for ci in &insns[..insns.len() - 1] {
                        consts.step(&ci.insn);
                    }
                    break match consts.get(reg) {
                        Some(t) => Term::Call { target: t, ret: next },
                        None => Term::Indirect { reg, ret: Some(next) },
                    };
                }
                Insn::Ret => break Term::Ret,
                Insn::Hlt => break Term::Halt,
                Insn::Syscall => break Term::Syscall { next },
                _ => {
                    if leaders.contains(&next) {
                        break Term::Fall(next);
                    }
                    pc = next;
                }
            }
        };
        blocks.insert(start, Block { start, insns, term });
    }

    // The per-block constant scans in pass 2 start at the *leader*, which
    // may sit mid-run (a jump into the middle of a spawn preamble would
    // lose the RAX constant). Pass 1's scan is per-root and strictly more
    // precise, so its spawn list stands; pass 2's terminator resolution is
    // only ever *less* resolved, which is the conservative direction.

    Cfg { entry: bin.entry, blocks, spawns: spawns.into_values().collect(), unresolved }
}

impl Cfg {
    /// The block containing `pc` as its start, if recovered.
    pub fn block(&self, start: u64) -> Option<&Block> {
        self.blocks.get(&start)
    }

    /// Direct intra-procedural successor edges (jump/cond/fall/syscall
    /// resume), for loop detection. Calls, returns and indirection are
    /// excluded on purpose.
    pub fn direct_succs(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut m: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&start, b) in &self.blocks {
            let succs = match b.term {
                Term::Jump(t) | Term::ResolvedJump(t) | Term::Fall(t) => vec![t],
                Term::Cond { taken, fall } => vec![taken, fall],
                Term::Syscall { next } => vec![next],
                _ => vec![],
            };
            m.insert(start, succs.into_iter().filter(|t| self.blocks.contains_key(t)).collect());
        }
        m
    }

    /// All reachability edges from the entry and spawn targets: direct
    /// edges plus call targets, call-site return edges and resolved
    /// indirect jumps. Used for byte coverage (unreachable-code lint).
    pub fn reach_succs(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut m = self.direct_succs();
        for (&start, b) in &self.blocks {
            if let Term::Call { target, ret } = b.term {
                let e = m.entry(start).or_default();
                for t in [target, ret] {
                    if self.blocks.contains_key(&t) {
                        e.push(t);
                    }
                }
            }
            if let Term::Indirect { ret: Some(ret), .. } = b.term {
                if self.blocks.contains_key(&ret) {
                    m.entry(start).or_default().push(ret);
                }
            }
        }
        m
    }

    /// Set of block-start pcs reachable from the entry (and spawn
    /// targets) over [`Cfg::reach_succs`].
    pub fn reachable(&self) -> BTreeSet<u64> {
        let succs = self.reach_succs();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut work: Vec<u64> = Vec::new();
        let seed = |pc: u64, work: &mut Vec<u64>, seen: &mut BTreeSet<u64>| {
            if self.blocks.contains_key(&pc) && seen.insert(pc) {
                work.push(pc);
            }
        };
        seed(self.entry, &mut work, &mut seen);
        for s in &self.spawns {
            seed(s.target, &mut work, &mut seen);
        }
        while let Some(pc) = work.pop() {
            for &s in succs.get(&pc).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(s) {
                    work.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::{Assembler, Cond, GelfBuilder};

    fn build(f: impl FnOnce(&mut Assembler)) -> GuestBinary {
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        f(&mut b.asm);
        b.finish().expect("valid image")
    }

    #[test]
    fn straight_line_recovers_one_block() {
        let bin = build(|a| {
            a.mov_ri(Gpr::RAX, 7);
            a.hlt();
        });
        let cfg = recover(&bin);
        assert_eq!(cfg.blocks.len(), 1);
        let b = cfg.block(cfg.entry).unwrap();
        assert_eq!(b.term, Term::Halt);
        assert!(!cfg.unresolved);
        assert!(cfg.spawns.is_empty());
    }

    #[test]
    fn branches_split_blocks_and_both_arms_are_found() {
        let bin = build(|a| {
            a.cmp_ri(Gpr::RDI, 0);
            a.jcc_to(Cond::E, "zero");
            a.mov_ri(Gpr::RAX, 1);
            a.hlt();
            a.label("zero");
            a.mov_ri(Gpr::RAX, 2);
            a.hlt();
        });
        let cfg = recover(&bin);
        assert_eq!(cfg.blocks.len(), 3);
        let entry = cfg.block(cfg.entry).unwrap();
        assert!(matches!(entry.term, Term::Cond { .. }));
        assert!(cfg.reachable().len() == 3);
    }

    #[test]
    fn spawn_discipline_is_identified() {
        let bin = build(|a| {
            a.mov_ri(Gpr::RAX, syscalls::SPAWN);
            a.mov_label(Gpr::RDI, "worker");
            a.mov_ri(Gpr::RSI, 1);
            a.syscall();
            a.hlt();
            a.label("worker");
            a.mov_ri(Gpr::RAX, syscalls::EXIT);
            a.mov_ri(Gpr::RDI, 0);
            a.syscall();
        });
        let cfg = recover(&bin);
        assert_eq!(cfg.spawns.len(), 1);
        let s = cfg.spawns[0];
        assert_eq!(s.arg, Some(1));
        assert!(cfg.blocks.contains_key(&s.target), "spawn target explored");
        assert!(!cfg.unresolved);
        // The worker body is reachable only through the spawn edge.
        assert!(cfg.reachable().contains(&s.target));
    }

    #[test]
    fn unresolvable_indirection_is_flagged() {
        let bin = build(|a| {
            a.insn(Insn::JmpReg { reg: Gpr::R11 });
        });
        let cfg = recover(&bin);
        assert!(cfg.unresolved);
    }

    #[test]
    fn resolved_indirect_jump_is_chased() {
        let bin = build(|a| {
            a.mov_label(Gpr::R11, "tgt");
            a.insn(Insn::JmpReg { reg: Gpr::R11 });
            a.label("tgt");
            a.hlt();
        });
        let cfg = recover(&bin);
        assert!(!cfg.unresolved);
        let entry = cfg.block(cfg.entry).unwrap();
        assert!(matches!(entry.term, Term::ResolvedJump(_)));
    }
}
