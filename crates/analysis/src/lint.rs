//! Guest lint pass: static smells over the recovered image.
//!
//! Four lint kinds, all engineered for **zero false positives** on
//! well-formed programs (the CI gate asserts a clean 16-kernel corpus):
//!
//! * [`LintKind::UnreachableCode`] — text bytes no reachable block
//!   covers. Suppressed entirely when the CFG has unresolved
//!   indirection (coverage is then a lower bound, not a fact).
//! * [`LintKind::MisalignedAtomic`] — an RMW whose address is a static
//!   singleton not 8-byte aligned. Only fires on singletons: hulls and
//!   wild addresses prove nothing.
//! * [`LintKind::MixedSizeAtomic`] — an RMW cell definitely overlapped
//!   by a byte-sized access elsewhere (both addresses singletons).
//!   Mixed-size concurrent access is the classic weak-memory trap the
//!   paper's fence schemes cannot paper over.
//! * [`LintKind::FenceBeforeExit`] — an `mfence` after which no memory
//!   access can execute before the core exits: the fence orders
//!   nothing. Detected with a backward may-access-after dataflow over
//!   the CFG ([`crate::dataflow::solve_on_graph`]); `ret`, unresolved
//!   indirection and undecodable terminators are conservatively "may
//!   access", so the lint never fires on uncertain continuations.

use crate::cfg::{Cfg, Term};
use crate::dataflow::{solve_on_graph, Direction, Lattice};
use crate::escape::{AccessKind, EscapeFacts, Region};
use risotto_guest_x86::{syscalls, Gpr, GuestBinary, Insn, TEXT_BASE};

/// What a lint finding complains about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// Bytes in the text section no reachable block covers.
    UnreachableCode,
    /// An RMW on a non-8-byte-aligned address.
    MisalignedAtomic,
    /// An RMW cell also touched by a byte-sized access.
    MixedSizeAtomic,
    /// An `mfence` with no later memory access to order.
    FenceBeforeExit,
}

impl LintKind {
    /// Stable lowercase tag (used in JSON reports).
    pub fn tag(&self) -> &'static str {
        match self {
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::MisalignedAtomic => "misaligned-atomic",
            LintKind::MixedSizeAtomic => "mixed-size-atomic",
            LintKind::FenceBeforeExit => "fence-before-exit",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint that fired.
    pub kind: LintKind,
    /// Guest pc the finding anchors to (gap start for unreachable code).
    pub pc: u64,
    /// Byte length of the region (gap size; instruction length
    /// otherwise is reported as 0 — the pc identifies the site).
    pub len: u64,
    /// Human-readable detail.
    pub detail: String,
}

/// May-access-after flag for the backward fence lint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct MayAccess(bool);

impl Lattice for MayAccess {
    fn join_from(&mut self, other: &Self) -> bool {
        let changed = other.0 && !self.0;
        self.0 |= other.0;
        changed
    }
}

/// Does this instruction touch guest memory (including the stack)?
fn touches_memory(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Load { .. }
            | Insn::LoadB { .. }
            | Insn::Store { .. }
            | Insn::StoreB { .. }
            | Insn::Push { .. }
            | Insn::Pop { .. }
            | Insn::LockCmpxchg { .. }
            | Insn::LockXadd { .. }
            | Insn::Call { .. }
            | Insn::CallReg { .. }
            | Insn::Ret
    )
}

/// Does this instruction clobber `RAX` (other than `mov rax, imm`)?
fn kills_rax(insn: &Insn) -> bool {
    match *insn {
        Insn::MovRR { dst, .. }
        | Insn::Load { dst, .. }
        | Insn::LoadB { dst, .. }
        | Insn::Lea { dst, .. }
        | Insn::Pop { dst }
        | Insn::Alu { dst, .. }
        | Insn::Fp { dst, .. } => dst == Gpr::RAX,
        Insn::MulWide { .. } | Insn::Div { .. } | Insn::LockCmpxchg { .. } => true,
        Insn::LockXadd { src, .. } => src == Gpr::RAX,
        _ => false,
    }
}

/// Block-local constant scan for the syscall number at a syscall
/// terminator (same discipline as CFG recovery).
fn syscall_nr(block: &crate::cfg::Block) -> Option<u64> {
    let mut rax: Option<u64> = None;
    for ci in &block.insns {
        match ci.insn {
            Insn::MovRI { dst, imm } if dst == Gpr::RAX => rax = Some(imm),
            Insn::Syscall => return rax,
            ref other => {
                if kills_rax(other) {
                    rax = None;
                }
            }
        }
    }
    rax
}

/// Runs all lints.
pub fn lint(bin: &GuestBinary, cfg: &Cfg, facts: &EscapeFacts) -> Vec<Finding> {
    let mut out = Vec::new();

    // --- Unreachable code: byte-coverage gaps. ---
    if !cfg.unresolved {
        let reachable = cfg.reachable();
        let mut covered: Vec<(u64, u64)> = reachable
            .iter()
            .filter_map(|pc| cfg.blocks.get(pc))
            .map(|b| (b.start, b.end()))
            .collect();
        covered.sort_unstable();
        let text_end = TEXT_BASE + bin.text.len() as u64;
        let mut cursor = TEXT_BASE;
        for (s, e) in covered {
            if s > cursor {
                out.push(Finding {
                    kind: LintKind::UnreachableCode,
                    pc: cursor,
                    len: s - cursor,
                    detail: format!("{} unreachable text bytes", s - cursor),
                });
            }
            cursor = cursor.max(e);
        }
        if cursor < text_end {
            out.push(Finding {
                kind: LintKind::UnreachableCode,
                pc: cursor,
                len: text_end - cursor,
                detail: format!("{} unreachable text bytes", text_end - cursor),
            });
        }
    }

    // --- Misaligned + mixed-size atomics (singleton evidence only). ---
    let singleton = |r: Region| match r {
        Region::Abs(lo, hi) => (lo == hi || hi == lo + 7).then_some(lo),
        _ => None,
    };
    for (&pc, site) in &facts.sites {
        if site.kind != AccessKind::Atomic {
            continue;
        }
        let Some(addr) = singleton(site.region) else { continue };
        if addr % 8 != 0 {
            out.push(Finding {
                kind: LintKind::MisalignedAtomic,
                pc,
                len: 0,
                detail: format!("atomic at {addr:#x} is not 8-byte aligned"),
            });
        }
        for (&other_pc, other) in &facts.sites {
            if other_pc == pc || other.width != 1 {
                continue;
            }
            if let Region::Abs(b_lo, b_hi) = other.region {
                if b_lo == b_hi && b_lo >= addr && b_lo < addr + 8 {
                    out.push(Finding {
                        kind: LintKind::MixedSizeAtomic,
                        pc,
                        len: 0,
                        detail: format!(
                            "atomic cell {addr:#x} overlapped by byte access at {other_pc:#x}"
                        ),
                    });
                }
            }
        }
    }

    // --- Fence-before-exit: backward may-access-after analysis. ---
    let succs = cfg.direct_succs();
    // Seed every block with its terminator's conservatism: unresolved
    // continuations and memory-touching terminators count as accesses.
    let seeds: Vec<(u64, MayAccess)> = cfg
        .blocks
        .iter()
        .map(|(&start, b)| {
            let term_access = match b.term {
                Term::Ret | Term::Indirect { .. } | Term::Bad => true,
                Term::Call { .. } => true, // pushes the return address
                Term::Syscall { .. } => match syscall_nr(b) {
                    Some(syscalls::EXIT) => false,
                    Some(syscalls::SPAWN) | Some(syscalls::JOIN) | Some(syscalls::GETTID) => false,
                    // WRITE reads its buffer; unknown numbers are
                    // conservatively accesses.
                    _ => true,
                },
                _ => false,
            };
            (start, MayAccess(term_access))
        })
        .collect();
    let sol = solve_on_graph(
        &succs,
        Direction::Backward,
        &seeds,
        |node, input: &MayAccess| {
            let has = cfg
                .blocks
                .get(&node)
                .map(|b| b.insns.iter().any(|ci| touches_memory(&ci.insn)))
                .unwrap_or(true);
            MayAccess(has || input.0)
        },
        100_000,
    );
    if !sol.hit_limit {
        let reachable = cfg.reachable();
        for &start in &reachable {
            let Some(b) = cfg.blocks.get(&start) else { continue };
            // Can any access still execute once this block's straight-
            // line part is done? The backward fixpoint input at the
            // block already joins the terminator seed with every
            // successor's at-or-after flag.
            let after_block = sol.inputs.get(&start).map(|m| m.0).unwrap_or(true);
            // Walk backwards through the block: a fence is dead iff no
            // access follows it inside the block and none after.
            let mut access_after = after_block;
            for ci in b.insns.iter().rev() {
                match ci.insn {
                    Insn::Mfence if !access_after => {
                        out.push(Finding {
                            kind: LintKind::FenceBeforeExit,
                            pc: ci.pc,
                            len: 0,
                            detail: "mfence with no later memory access before exit".into(),
                        });
                    }
                    ref i if touches_memory(i) => access_after = true,
                    _ => {}
                }
            }
        }
    }

    out.sort_by_key(|f| (f.pc, f.kind));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover;
    use crate::escape;
    use risotto_guest_x86::GelfBuilder;

    fn run(build: impl FnOnce(&mut GelfBuilder)) -> Vec<Finding> {
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        build(&mut b);
        let bin = b.finish().expect("valid image");
        let cfg = recover(&bin);
        let facts = escape::analyze(&bin, &cfg);
        lint(&bin, &cfg, &facts)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let findings = run(|b| {
            let cell = b.data_u64(&[0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell);
            a.mov_ri(Gpr::RAX, 1);
            a.store(Gpr::RBX, 0, Gpr::RAX);
            a.mfence();
            a.load(Gpr::RCX, Gpr::RBX, 0);
            a.mov_ri(Gpr::RAX, syscalls::EXIT);
            a.mov_ri(Gpr::RDI, 0);
            a.syscall();
        });
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn dead_code_after_exit_is_flagged() {
        let findings = run(|b| {
            let a = &mut b.asm;
            a.mov_ri(Gpr::RAX, syscalls::EXIT);
            a.mov_ri(Gpr::RDI, 0);
            a.syscall();
            // Never reached: nothing jumps here.
            a.mov_ri(Gpr::RBX, 1);
            a.hlt();
        });
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, LintKind::UnreachableCode);
        assert!(findings[0].len > 0);
    }

    #[test]
    fn misaligned_atomic_is_flagged() {
        let findings = run(|b| {
            let cell = b.data_u64(&[0, 0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell + 4); // straddles the cell boundary
            a.mov_ri(Gpr::RCX, 1);
            a.insn(Insn::LockXadd { base: Gpr::RBX, disp: 0, src: Gpr::RCX });
            a.hlt();
        });
        assert!(findings.iter().any(|f| f.kind == LintKind::MisalignedAtomic));
    }

    #[test]
    fn mixed_size_atomic_is_flagged() {
        let findings = run(|b| {
            let cell = b.data_u64(&[0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell);
            a.mov_ri(Gpr::RCX, 1);
            a.insn(Insn::LockXadd { base: Gpr::RBX, disp: 0, src: Gpr::RCX });
            a.load_b(Gpr::RDX, Gpr::RBX, 2); // byte poke inside the cell
            a.hlt();
        });
        assert!(findings.iter().any(|f| f.kind == LintKind::MixedSizeAtomic));
    }

    #[test]
    fn fence_before_exit_is_flagged() {
        let findings = run(|b| {
            let cell = b.data_u64(&[0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell);
            a.mov_ri(Gpr::RAX, 1);
            a.store(Gpr::RBX, 0, Gpr::RAX);
            a.mfence(); // nothing to order: only the exit follows
            a.mov_ri(Gpr::RAX, syscalls::EXIT);
            a.mov_ri(Gpr::RDI, 0);
            a.syscall();
        });
        assert!(findings.iter().any(|f| f.kind == LintKind::FenceBeforeExit));
    }

    #[test]
    fn fence_is_not_flagged_when_a_later_path_accesses() {
        let findings = run(|b| {
            let cell = b.data_u64(&[0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell);
            a.mfence();
            a.cmp_ri(Gpr::RDI, 0);
            a.jcc_to(risotto_guest_x86::Cond::E, "skip");
            a.load(Gpr::RCX, Gpr::RBX, 0); // one successor path accesses
            a.label("skip");
            a.mov_ri(Gpr::RAX, syscalls::EXIT);
            a.mov_ri(Gpr::RDI, 0);
            a.syscall();
        });
        assert!(
            !findings.iter().any(|f| f.kind == LintKind::FenceBeforeExit),
            "findings: {findings:?}"
        );
    }
}
