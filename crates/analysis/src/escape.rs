//! Shared-memory escape analysis: classifies every static memory access
//! in the image as core-private, read-only, shared, or atomic.
//!
//! The engine uses the classification to *relax ordering obligations*:
//! fences guarding provably-private or provably-read-only accesses are
//! dropped before lowering (see `risotto_tcg::verify::relax_block`), so
//! soundness is load-bearing. The analysis is a whole-program abstract
//! interpretation built on the [`crate::dataflow`] solver:
//!
//! * **Domain** — [`Val`] tracks each register as an absolute-value
//!   interval, an offset interval into the *executing core's own stack*,
//!   or ⊤. A tracked stack map gives call/return resolution and stack
//!   slot values. Widening collapses non-singleton intervals to ⊤
//!   ([`crate::dataflow::WIDEN_AFTER`] joins at one node).
//! * **Instances** — one abstract interpretation per *core*: the root
//!   (image entry) plus one instance per statically discovered spawn
//!   site, each with its own `RDI` argument and its own stack identity.
//!   A spawn site whose block can re-reach itself (a spawn in a loop),
//!   or whose parent is already replicated, produces a *replicated*
//!   instance: one static instance standing for several cores, which
//!   must additionally not conflict with itself.
//! * **Counted-loop refinement** — interval domains widen induction
//!   pointers to ⊤, which would make every in-loop access wild. Phase 2
//!   pattern-matches the workload generator's counted-loop shape
//!   (`sub c,1; cmp c,0; jne head` self-loop with a singleton trip
//!   count) and computes, per register, the *affine hull* over all
//!   iterations. Phase 3 re-solves with these hulls *forced* at the
//!   loop head. The pin is justified structurally (the loop body is
//!   straight-line and executes exactly `c₀` times), not inductively —
//!   an interval domain cannot re-verify an affine pin. As a safety
//!   net the refined solution is discarded unless it realizes a subset
//!   of phase 1's edges with no new poison.
//! * **Poison** — anything the analysis cannot bound (unresolved
//!   indirect target, unknown syscall number, instance cap, solver
//!   limit, …) poisons the *whole image*: no access is relaxable.
//!   Unknown addresses short of poison become [`Region::Wild`]
//!   accesses, which conservatively conflict with everything.
//!
//! Classification is per *static site* (pc): the translated code is
//! shared by every core that executes it, so a site is only relaxable
//! if the access is relaxable in **every** instance that reaches it.

use crate::cfg::{Block, Cfg, Term};
use crate::dataflow::{solve, Lattice, Solution, Transfer};
use risotto_guest_x86::{
    syscalls, AluOp, Cond, Gpr, GuestBinary, Insn, Operand, HEAP_BASE, STACK_SIZE, STACK_TOP,
    TEXT_BASE,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Cap on abstract core instances; exceeding it poisons the image.
pub const MAX_INSTANCES: usize = 32;

/// Worklist step budget per instance solve.
const MAX_STEPS: u64 = 50_000;

/// An abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Absolute value in the inclusive interval `[lo, hi]`.
    Int(u64, u64),
    /// Offset into the executing core's own stack, relative to its stack
    /// top, in the inclusive interval `[lo, hi]` (offsets are ≤ 0 for
    /// live stack data).
    Stack(i64, i64),
    /// Unknown.
    Top,
}

impl Val {
    fn singleton(self) -> Option<u64> {
        match self {
            Val::Int(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    fn widened(self) -> Val {
        match self {
            Val::Int(lo, hi) if lo != hi => Val::Top,
            Val::Stack(lo, hi) if lo != hi => Val::Top,
            v => v,
        }
    }

    fn join(self, other: Val) -> Val {
        match (self, other) {
            (Val::Int(a, b), Val::Int(c, d)) => Val::Int(a.min(c), b.max(d)),
            (Val::Stack(a, b), Val::Stack(c, d)) => Val::Stack(a.min(c), b.max(d)),
            _ => Val::Top,
        }
    }

    /// `self + disp` with overflow collapsing to ⊤.
    fn add_disp(self, disp: i64) -> Val {
        match self {
            Val::Int(lo, hi) => match (lo.checked_add_signed(disp), hi.checked_add_signed(disp)) {
                (Some(l), Some(h)) => Val::Int(l, h),
                _ => Val::Top,
            },
            Val::Stack(lo, hi) => match (lo.checked_add(disp), hi.checked_add(disp)) {
                (Some(l), Some(h)) => Val::Stack(l, h),
                _ => Val::Top,
            },
            Val::Top => Val::Top,
        }
    }
}

/// Abstract flags: the last flag-setting comparison, if tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlagsAbs {
    /// `cmp a, b`.
    Cmp(Val, Val),
    /// `test a, b`.
    Test(Val, Val),
    /// Anything else.
    Unknown,
}

/// Per-program-point abstract state: registers, flags, and the tracked
/// own-stack slot map (keyed by byte offset from the core's stack top;
/// each slot holds 8 bytes). A missing slot means ⊤.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    regs: [Val; 16],
    flags: FlagsAbs,
    stack: BTreeMap<i64, Val>,
}

impl State {
    /// Core entry state: all registers zero, `RDI` = the spawn argument,
    /// `RSP` = the core's own stack top.
    fn entry(arg: Val) -> State {
        let mut regs = [Val::Int(0, 0); 16];
        regs[Gpr::RDI.index()] = arg;
        regs[Gpr::RSP.index()] = Val::Stack(0, 0);
        State { regs, flags: FlagsAbs::Unknown, stack: BTreeMap::new() }
    }

    fn get(&self, r: Gpr) -> Val {
        self.regs[r.index()]
    }

    fn set(&mut self, r: Gpr, v: Val) {
        self.regs[r.index()] = v;
    }

    fn operand(&self, op: Operand) -> Val {
        match op {
            Operand::Reg(r) => self.get(r),
            Operand::Imm(k) => Val::Int(k, k),
        }
    }
}

impl Lattice for State {
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for i in 0..16 {
            let j = self.regs[i].join(other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        if self.flags != other.flags && self.flags != FlagsAbs::Unknown {
            self.flags = FlagsAbs::Unknown;
            changed = true;
        }
        // Stack slots: keep the intersection of keys, joining values.
        let keys: Vec<i64> = self.stack.keys().copied().collect();
        for k in keys {
            match other.stack.get(&k) {
                Some(ov) => {
                    let cur = self.stack[&k];
                    let j = cur.join(*ov);
                    if j != cur {
                        self.stack.insert(k, j);
                        changed = true;
                    }
                }
                None => {
                    self.stack.remove(&k);
                    changed = true;
                }
            }
        }
        changed
    }

    fn widen(&mut self) {
        for v in &mut self.regs {
            *v = v.widened();
        }
        for v in self.stack.values_mut() {
            *v = v.widened();
        }
        self.flags = FlagsAbs::Unknown;
    }
}

/// Where an access may land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Absolute byte range `[lo, hi]` (inclusive).
    Abs(u64, u64),
    /// Byte range `[lo, hi]` of offsets into the executing core's own
    /// stack (both ≤ −1, ≥ −`STACK_SIZE`).
    OwnStack(i64, i64),
    /// Could be anywhere.
    Wild,
}

impl Region {
    /// `true` for absolute ranges that may alias *some* core's stack
    /// (anything reaching past `HEAP_BASE` and below the stack top).
    pub fn stack_suspect(&self) -> bool {
        match *self {
            Region::Abs(lo, hi) => hi >= HEAP_BASE && lo < STACK_TOP,
            Region::OwnStack(..) => false,
            Region::Wild => true,
        }
    }
}

/// The dynamic kind of a static access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// RMW (`lock cmpxchg` / `lock xadd`) — never relaxed.
    Atomic,
}

/// One access recorded during the final collection walk.
#[derive(Debug, Clone, Copy)]
struct Access {
    inst: usize,
    pc: u64,
    kind: AccessKind,
    width: u8,
    region: Region,
}

/// Why the image was poisoned (no relaxation anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Poison {
    /// An indirect jump/call target was not a singleton text address.
    UnresolvedIndirect,
    /// A `ret` popped a value that was not a singleton text address.
    UnresolvedRet,
    /// A syscall executed with a non-singleton `RAX`.
    UnknownSyscall,
    /// A `SPAWN` whose target was not a singleton text address.
    UnresolvedSpawnTarget,
    /// More than [`MAX_INSTANCES`] abstract cores were discovered.
    InstanceCap,
    /// The worklist solver hit its step budget.
    SolverLimit,
    /// Control flowed to a pc with no recovered block.
    MissingBlock,
    /// A block decodes past the end of the recovered run ([`Term::Bad`]).
    BadBlock,
}

impl Poison {
    /// Stable human-readable tag (used in JSON reports).
    pub fn tag(&self) -> &'static str {
        match self {
            Poison::UnresolvedIndirect => "unresolved-indirect",
            Poison::UnresolvedRet => "unresolved-ret",
            Poison::UnknownSyscall => "unknown-syscall",
            Poison::UnresolvedSpawnTarget => "unresolved-spawn-target",
            Poison::InstanceCap => "instance-cap",
            Poison::SolverLimit => "solver-limit",
            Poison::MissingBlock => "missing-block",
            Poison::BadBlock => "bad-block",
        }
    }
}

/// Final classification of a static access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Only the executing core can conflict with this access.
    Private,
    /// A read from memory no instance ever writes.
    ReadOnly,
    /// May participate in cross-core communication.
    Shared,
    /// RMW — ordering is the point; never relaxed.
    Atomic,
}

impl SiteClass {
    /// `true` if ordering obligations on this site may be dropped.
    pub fn relaxable(&self) -> bool {
        matches!(self, SiteClass::Private | SiteClass::ReadOnly)
    }

    /// Stable lowercase tag (used in JSON reports).
    pub fn tag(&self) -> &'static str {
        match self {
            SiteClass::Private => "private",
            SiteClass::ReadOnly => "readonly",
            SiteClass::Shared => "shared",
            SiteClass::Atomic => "atomic",
        }
    }
}

/// Classified static access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Access kind at this pc (identical in every instance: one insn).
    pub kind: AccessKind,
    /// Access width in bytes (1 or 8; syscall buffer reads report 1).
    pub width: u8,
    /// The meet of the per-instance classifications.
    pub class: SiteClass,
    /// Hull of the access regions across instances (for lints).
    pub region: Region,
}

/// Hull of two regions (used to summarize a site across instances).
fn region_join(a: Region, b: Region) -> Region {
    match (a, b) {
        (Region::Abs(al, ah), Region::Abs(bl, bh)) => Region::Abs(al.min(bl), ah.max(bh)),
        (Region::OwnStack(al, ah), Region::OwnStack(bl, bh)) => {
            Region::OwnStack(al.min(bl), ah.max(bh))
        }
        _ => Region::Wild,
    }
}

/// One abstract core.
#[derive(Debug, Clone)]
pub struct InstanceInfo {
    /// Entry pc.
    pub entry: u64,
    /// Pc of the spawn site that created it (`None` for the root).
    pub spawned_at: Option<u64>,
    /// `true` if this static instance may stand for several cores.
    pub replicated: bool,
}

/// Result of the whole-image escape analysis.
#[derive(Debug, Clone)]
pub struct EscapeFacts {
    /// Classification per static access pc.
    pub sites: BTreeMap<u64, Site>,
    /// Poison reasons, deduplicated and ordered. Non-empty means **no**
    /// site is relaxable regardless of its recorded class.
    pub poisons: Vec<Poison>,
    /// The analyzed abstract cores.
    pub instances: Vec<InstanceInfo>,
    /// Number of counted loops refined by the affine-pin phase.
    pub refined_loops: u32,
}

impl EscapeFacts {
    /// `true` when any poison condition fired.
    pub fn poisoned(&self) -> bool {
        !self.poisons.is_empty()
    }

    /// Whether the access at `pc` (if any) may have its ordering
    /// obligation dropped.
    pub fn relaxable(&self, pc: u64) -> bool {
        !self.poisoned() && self.sites.get(&pc).map(|s| s.class.relaxable()).unwrap_or(false)
    }
}

/// Everything `exec_block` reports besides successor states.
#[derive(Default)]
struct BlockEffects {
    accesses: Vec<Access>,
    spawns: Vec<(u64, u64, Val)>, // (site pc, target, arg)
    poisons: BTreeSet<Poison>,
}

/// Turns an abstract address + width into a region, demoting own-stack
/// ranges that leak outside the core's stack slice to [`Region::Wild`]
/// (they could land in a neighbouring core's stack).
fn region_of(addr: Val, width: u8) -> Region {
    let w = width as u64 - 1;
    match addr {
        Val::Int(lo, hi) => match hi.checked_add(w) {
            Some(h) => Region::Abs(lo, h),
            None => Region::Wild,
        },
        Val::Stack(lo, hi) => {
            let h = hi.saturating_add(w as i64);
            if lo >= -(STACK_SIZE as i64) && h <= -1 {
                Region::OwnStack(lo, h)
            } else {
                Region::Wild
            }
        }
        Val::Top => Region::Wild,
    }
}

fn alu(op: AluOp, a: Val, b: Val) -> Val {
    use Val::*;
    // Exact on singletons, interval-checked on the pointer-arithmetic
    // shapes the workloads use, ⊤ otherwise.
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        if !matches!(a, Stack(..)) && !matches!(b, Stack(..)) {
            return Int(op.apply(x, y), op.apply(x, y));
        }
    }
    match op {
        AluOp::Add => match (a, b) {
            (Int(al, ah), Int(bl, bh)) => match (al.checked_add(bl), ah.checked_add(bh)) {
                (Some(l), Some(h)) => Int(l, h),
                _ => Top,
            },
            (Stack(al, ah), Int(bl, bh)) | (Int(bl, bh), Stack(al, ah)) => {
                if bh <= i64::MAX as u64 {
                    match (al.checked_add(bl as i64), ah.checked_add(bh as i64)) {
                        (Some(l), Some(h)) => Stack(l, h),
                        _ => Top,
                    }
                } else {
                    Top
                }
            }
            _ => Top,
        },
        AluOp::Sub => match (a, b) {
            (Int(al, ah), Int(bl, bh)) => {
                // [al,ah] − [bl,bh] = [al−bh, ah−bl] when it stays ≥ 0.
                match (al.checked_sub(bh), ah.checked_sub(bl)) {
                    (Some(l), Some(h)) => Int(l, h),
                    _ => Top,
                }
            }
            (Stack(al, ah), Int(bl, bh)) => {
                if bh <= i64::MAX as u64 {
                    match (al.checked_sub(bh as i64), ah.checked_sub(bl as i64)) {
                        (Some(l), Some(h)) => Stack(l, h),
                        _ => Top,
                    }
                } else {
                    Top
                }
            }
            _ => Top,
        },
        AluOp::Mul => match (a, b) {
            (Int(al, ah), Int(bl, bh)) | (Int(bl, bh), Int(al, ah)) if bl == bh => {
                let p_lo = (al as u128) * (bl as u128);
                let p_hi = (ah as u128) * (bl as u128);
                if p_hi <= u64::MAX as u128 {
                    Int(p_lo as u64, p_hi as u64)
                } else {
                    Top
                }
            }
            _ => Top,
        },
        AluOp::Shl => match (a, b) {
            (Int(al, ah), Int(bl, bh)) if bl == bh && bl < 64 => {
                match (al.checked_shl(bl as u32), ah.checked_shl(bl as u32)) {
                    (Some(l), Some(h)) if (h >> bl) == ah && (l >> bl) == al => Int(l, h),
                    _ => Top,
                }
            }
            _ => Top,
        },
        AluOp::Shr => match (a, b) {
            (Int(al, ah), Int(bl, bh)) if bl == bh && bl < 64 => Int(al >> bl, ah >> bl),
            _ => Top,
        },
        AluOp::And => match (a, b) {
            // Masking an interval by a constant bounds it by the mask.
            (Int(_, _), Int(m, m2)) | (Int(m, m2), Int(_, _)) if m == m2 => Int(0, m),
            _ => Top,
        },
        _ => Top,
    }
}

/// Decides `cond` against the abstract flags; `None` if both outcomes
/// are possible.
fn decide(cond: Cond, flags: FlagsAbs) -> Option<bool> {
    let (a, b, is_test) = match flags {
        FlagsAbs::Cmp(a, b) => (a, b, false),
        FlagsAbs::Test(a, b) => (a, b, true),
        FlagsAbs::Unknown => return None,
    };
    if is_test {
        // Only the zero-test shapes matter (`test r, r; jcc`).
        if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
            let z = (x & y) == 0;
            return match cond {
                Cond::E => Some(z),
                Cond::Ne => Some(!z),
                _ => None,
            };
        }
        return None;
    }
    let (al, ah, bl, bh) = match (a, b) {
        (Val::Int(al, ah), Val::Int(bl, bh)) => (al, ah, bl, bh),
        // Same-stack offsets compare like their offsets (common base).
        (Val::Stack(al, ah), Val::Stack(bl, bh)) => {
            // Offsets are small signed; rebase to unsigned order-preserving.
            let r = |v: i64| (v as i128 - i64::MIN as i128) as u64;
            (r(al), r(ah), r(bl), r(bh))
        }
        _ => return None,
    };
    let eq = match () {
        _ if ah < bl || bh < al => Some(false),
        _ if al == ah && bl == bh && al == bl => Some(true),
        _ => None,
    };
    let ult = match () {
        _ if ah < bl => Some(true),
        _ if al >= bh => Some(false),
        _ => None,
    };
    // Signed comparisons: only decide when neither interval straddles
    // the sign boundary.
    let signed_ok = (ah < 1 << 63 || al >= 1 << 63) && (bh < 1 << 63 || bl >= 1 << 63);
    let slt = if signed_ok {
        let (sal, sah, sbl, sbh) = (al as i64, ah as i64, bl as i64, bh as i64);
        match () {
            _ if sah < sbl => Some(true),
            _ if sal >= sbh => Some(false),
            _ => None,
        }
    } else {
        None
    };
    match cond {
        Cond::E => eq,
        Cond::Ne => eq.map(|v| !v),
        Cond::B => ult,
        Cond::Ae => ult.map(|v| !v),
        Cond::A => match (ult, eq) {
            (Some(false), Some(false)) => Some(true),
            (Some(true), _) | (_, Some(true)) => Some(false),
            _ => None,
        },
        Cond::Be => match (ult, eq) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Cond::L => slt,
        Cond::Ge => slt.map(|v| !v),
        Cond::G => match (slt, eq) {
            (Some(false), Some(false)) => Some(true),
            (Some(true), _) | (_, Some(true)) => Some(false),
            _ => None,
        },
        Cond::Le => match (slt, eq) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Cond::S | Cond::Ns => None,
    }
}

/// Records one access and invalidates any tracked stack slots a write
/// may touch; returns the computed region.
fn record(
    st: &mut State,
    fx: &mut BlockEffects,
    inst: usize,
    pc: u64,
    kind: AccessKind,
    width: u8,
    addr: Val,
) -> Region {
    let region = region_of(addr, width);
    fx.accesses.push(Access { inst, pc, kind, width, region });
    if matches!(kind, AccessKind::Write | AccessKind::Atomic) {
        smash_stack(st, region);
    }
    region
}

/// Invalidate tracked stack slots a write to `region` may touch.
fn smash_stack(state: &mut State, region: Region) {
    match region {
        Region::OwnStack(lo, hi) => {
            // A slot at offset s covers bytes [s, s+7].
            let keys: Vec<i64> = state.stack.range(lo - 7..=hi).map(|(&k, _)| k).collect();
            for k in keys {
                state.stack.remove(&k);
            }
        }
        Region::Wild => state.stack.clear(),
        Region::Abs(..) => {
            if region.stack_suspect() {
                state.stack.clear();
            }
        }
    }
}

/// Interprets one recovered block: applies every non-terminator
/// instruction to `state`, records effects, and returns the successor
/// edge states implied by the terminator.
fn exec_block(
    bin: &GuestBinary,
    block: &Block,
    input: &State,
    inst: usize,
    fx: &mut BlockEffects,
) -> Vec<(u64, State)> {
    let text_end = TEXT_BASE + bin.text.len() as u64;
    let is_text = |pc: u64| pc >= TEXT_BASE && pc < text_end;
    let mut st = input.clone();
    for ci in &block.insns {
        let insn = ci.insn;
        if insn.is_terminator() {
            break;
        }
        match insn {
            Insn::MovRI { dst, imm } => st.set(dst, Val::Int(imm, imm)),
            Insn::MovRR { dst, src } => {
                let v = st.get(src);
                st.set(dst, v);
            }
            Insn::Lea { dst, base, disp } => {
                let v = st.get(base).add_disp(disp as i64);
                st.set(dst, v);
            }
            Insn::Load { dst, base, disp } => {
                let addr = st.get(base).add_disp(disp as i64);
                let region = record(&mut st, fx, inst, ci.pc, AccessKind::Read, 8, addr);
                let v = match (region, addr) {
                    (Region::OwnStack(..), Val::Stack(o, o2)) if o == o2 => {
                        st.stack.get(&o).copied().unwrap_or(Val::Top)
                    }
                    _ => Val::Top,
                };
                st.set(dst, v);
            }
            Insn::LoadB { dst, base, disp } => {
                let addr = st.get(base).add_disp(disp as i64);
                record(&mut st, fx, inst, ci.pc, AccessKind::Read, 1, addr);
                st.set(dst, Val::Int(0, 255));
            }
            Insn::Store { base, disp, src } => {
                let addr = st.get(base).add_disp(disp as i64);
                let region = record(&mut st, fx, inst, ci.pc, AccessKind::Write, 8, addr);
                if let (Region::OwnStack(..), Val::Stack(o, o2)) = (region, addr) {
                    if o == o2 {
                        st.stack.insert(o, st.get(src));
                    }
                }
            }
            Insn::StoreB { base, disp, src } => {
                let addr = st.get(base).add_disp(disp as i64);
                record(&mut st, fx, inst, ci.pc, AccessKind::Write, 1, addr);
                let _ = src;
            }
            Insn::Push { src } => {
                let v = st.get(src);
                let rsp = st.get(Gpr::RSP).add_disp(-8);
                let region = record(&mut st, fx, inst, ci.pc, AccessKind::Write, 8, rsp);
                if let (Region::OwnStack(..), Val::Stack(o, o2)) = (region, rsp) {
                    if o == o2 {
                        st.stack.insert(o, v);
                    }
                }
                st.set(Gpr::RSP, rsp);
            }
            Insn::Pop { dst } => {
                let rsp = st.get(Gpr::RSP);
                let region = record(&mut st, fx, inst, ci.pc, AccessKind::Read, 8, rsp);
                let v = match (region, rsp) {
                    (Region::OwnStack(..), Val::Stack(o, o2)) if o == o2 => {
                        st.stack.get(&o).copied().unwrap_or(Val::Top)
                    }
                    _ => Val::Top,
                };
                st.set(dst, v);
                let up = rsp.add_disp(8);
                st.set(Gpr::RSP, up);
            }
            Insn::Alu { op, dst, src } => {
                let v = alu(op, st.get(dst), st.operand(src));
                st.set(dst, v);
                st.flags = FlagsAbs::Unknown;
            }
            Insn::MulWide { src } => {
                let a = st.get(Gpr::RAX);
                let b = st.get(src);
                st.set(Gpr::RAX, alu(AluOp::Mul, a, b));
                let high_zero = match (a, b) {
                    (Val::Int(_, ah), Val::Int(_, bh)) => {
                        (ah as u128) * (bh as u128) <= u64::MAX as u128
                    }
                    _ => false,
                };
                st.set(Gpr::RDX, if high_zero { Val::Int(0, 0) } else { Val::Top });
                st.flags = FlagsAbs::Unknown;
            }
            Insn::Div { src } => {
                let (q, r) = match (st.get(Gpr::RAX), st.get(src)) {
                    (Val::Int(al, ah), Val::Int(d, d2)) if d == d2 && d != 0 => {
                        (Val::Int(al / d, ah / d), Val::Int(0, d - 1))
                    }
                    _ => (Val::Top, Val::Top),
                };
                st.set(Gpr::RAX, q);
                st.set(Gpr::RDX, r);
                st.flags = FlagsAbs::Unknown;
            }
            Insn::Fp { dst, .. } => {
                st.set(dst, Val::Top);
                st.flags = FlagsAbs::Unknown;
            }
            Insn::Cmp { a, b } => st.flags = FlagsAbs::Cmp(st.get(a), st.operand(b)),
            Insn::Test { a, b } => st.flags = FlagsAbs::Test(st.get(a), st.operand(b)),
            Insn::LockCmpxchg { base, disp, .. } => {
                let addr = st.get(base).add_disp(disp as i64);
                record(&mut st, fx, inst, ci.pc, AccessKind::Atomic, 8, addr);
                st.set(Gpr::RAX, Val::Top);
                st.flags = FlagsAbs::Unknown;
            }
            Insn::LockXadd { base, disp, src } => {
                let addr = st.get(base).add_disp(disp as i64);
                record(&mut st, fx, inst, ci.pc, AccessKind::Atomic, 8, addr);
                st.set(src, Val::Top);
                st.flags = FlagsAbs::Unknown;
            }
            Insn::Mfence | Insn::Nop => {}
            // Terminators were skipped above.
            _ => {}
        }
    }

    // Terminator.
    let last = block.insns.last().map(|ci| ci.insn);
    match block.term {
        Term::Jump(t) | Term::ResolvedJump(t) | Term::Fall(t) => vec![(t, st)],
        Term::Cond { taken, fall } => {
            let cond = match last {
                Some(Insn::Jcc { cond, .. }) => Some(cond),
                _ => None,
            };
            match cond.and_then(|c| decide(c, st.flags)) {
                Some(true) => vec![(taken, st)],
                Some(false) => vec![(fall, st)],
                None => vec![(taken, st.clone()), (fall, st)],
            }
        }
        Term::Call { target, ret } => {
            let pc = block.insns.last().map(|ci| ci.pc).unwrap_or(block.start);
            push_ret(&mut st, pc, ret, inst, fx);
            vec![(target, st)]
        }
        Term::Indirect { reg, ret } => {
            let target = st.get(reg).singleton().filter(|&t| is_text(t));
            match target {
                Some(t) => {
                    if let Some(r) = ret {
                        let pc = block.insns.last().map(|ci| ci.pc).unwrap_or(block.start);
                        push_ret(&mut st, pc, r, inst, fx);
                    }
                    vec![(t, st)]
                }
                None => {
                    fx.poisons.insert(Poison::UnresolvedIndirect);
                    vec![]
                }
            }
        }
        Term::Ret => {
            let pc = block.insns.last().map(|ci| ci.pc).unwrap_or(block.start);
            let rsp = st.get(Gpr::RSP);
            let region = record(&mut st, fx, inst, pc, AccessKind::Read, 8, rsp);
            let target = match (region, rsp) {
                (Region::OwnStack(..), Val::Stack(o, o2)) if o == o2 => {
                    st.stack.get(&o).copied().unwrap_or(Val::Top).singleton()
                }
                _ => None,
            };
            match target.filter(|&t| is_text(t)) {
                Some(t) => {
                    let up = rsp.add_disp(8);
                    st.set(Gpr::RSP, up);
                    vec![(t, st)]
                }
                None => {
                    fx.poisons.insert(Poison::UnresolvedRet);
                    vec![]
                }
            }
        }
        Term::Halt => vec![],
        Term::Syscall { next } => {
            let pc = block.insns.last().map(|ci| ci.pc).unwrap_or(block.start);
            let nr = st.get(Gpr::RAX).singleton();
            st.set(Gpr::RAX, Val::Top);
            match nr {
                None => {
                    fx.poisons.insert(Poison::UnknownSyscall);
                    vec![(next, st)]
                }
                Some(syscalls::EXIT) => vec![],
                Some(syscalls::SPAWN) => {
                    let target = st.get(Gpr::RDI).singleton().filter(|&t| is_text(t));
                    match target {
                        Some(t) => {
                            let arg = match st.get(Gpr::RSI) {
                                v @ Val::Int(..) => v,
                                // A non-integer argument (e.g. a pointer
                                // into the parent's stack) makes the
                                // child's view of it wild, which the
                                // child's ⊤-based accesses already
                                // over-approximate.
                                _ => Val::Top,
                            };
                            fx.spawns.push((pc, t, arg));
                        }
                        None => {
                            fx.poisons.insert(Poison::UnresolvedSpawnTarget);
                        }
                    }
                    vec![(next, st)]
                }
                Some(syscalls::WRITE) => {
                    // WRITE reads the guest buffer [RSI, RSI+RDX).
                    let buf = st.get(Gpr::RSI);
                    let len = st.get(Gpr::RDX);
                    let addr = match (buf, len) {
                        (_, Val::Int(0, 0)) => None,
                        (Val::Int(bl, bh), Val::Int(_, lh)) => Some(
                            bh.checked_add(lh - 1).map(|h| Val::Int(bl, h)).unwrap_or(Val::Top),
                        ),
                        (Val::Stack(bl, bh), Val::Int(_, lh)) if lh <= i64::MAX as u64 => Some(
                            bh.checked_add(lh as i64 - 1)
                                .map(|h| Val::Stack(bl, h))
                                .unwrap_or(Val::Top),
                        ),
                        _ => Some(Val::Top),
                    };
                    if let Some(a) = addr {
                        record(&mut st, fx, inst, pc, AccessKind::Read, 1, a);
                    }
                    vec![(next, st)]
                }
                Some(_) => vec![(next, st)],
            }
        }
        Term::Bad => {
            fx.poisons.insert(Poison::BadBlock);
            vec![]
        }
    }
}

/// Pushes the return address for a call terminator (a real store).
fn push_ret(st: &mut State, pc: u64, ret: u64, inst: usize, fx: &mut BlockEffects) {
    let rsp = st.get(Gpr::RSP).add_disp(-8);
    let region = region_of(rsp, 8);
    fx.accesses.push(Access { inst, pc, kind: AccessKind::Write, width: 8, region });
    if matches!(region, Region::Wild | Region::Abs(..)) {
        smash_stack(st, region);
    }
    if let (Region::OwnStack(..), Val::Stack(o, o2)) = (region, rsp) {
        if o == o2 {
            st.stack.insert(o, Val::Int(ret, ret));
        }
    }
    st.set(Gpr::RSP, rsp);
}

/// [`Transfer`] impl driving [`exec_block`] over the recovered CFG, with
/// optional forced pins at refined loop heads.
struct Interp<'a> {
    bin: &'a GuestBinary,
    cfg: &'a Cfg,
    inst: usize,
    pins: BTreeMap<u64, State>,
    fx: BlockEffects,
}

impl Transfer for Interp<'_> {
    type State = State;
    fn flow(&mut self, node: u64, input: &State) -> Vec<(u64, State)> {
        let Some(block) = self.cfg.blocks.get(&node) else {
            self.fx.poisons.insert(Poison::MissingBlock);
            return vec![];
        };
        let mut out = exec_block(self.bin, block, input, self.inst, &mut self.fx);
        // Accesses recorded while *solving* are discarded; only the
        // final collection walk's records are kept.
        self.fx.accesses.clear();
        for (succ, st) in &mut out {
            if let Some(pin) = self.pins.get(succ) {
                *st = pin.clone();
            }
        }
        out
    }
}

/// A detected counted self-loop and its affine head pin.
struct LoopPin {
    head: u64,
    pin: State,
}

/// All sixteen registers in index order.
const GPRS: [Gpr; 16] = [
    Gpr::RAX,
    Gpr::RCX,
    Gpr::RDX,
    Gpr::RBX,
    Gpr::RSP,
    Gpr::RBP,
    Gpr::RSI,
    Gpr::RDI,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
    Gpr::R14,
    Gpr::R15,
];

/// Writes of an instruction to a register (including `RSP` updates).
fn writes_reg(insn: &Insn, r: Gpr) -> bool {
    match *insn {
        Insn::MovRI { dst, .. }
        | Insn::MovRR { dst, .. }
        | Insn::Load { dst, .. }
        | Insn::LoadB { dst, .. }
        | Insn::Lea { dst, .. }
        | Insn::Alu { dst, .. }
        | Insn::Fp { dst, .. } => dst == r,
        Insn::Pop { dst } => dst == r || r == Gpr::RSP,
        Insn::MulWide { .. } | Insn::Div { .. } => r == Gpr::RAX || r == Gpr::RDX,
        Insn::LockCmpxchg { .. } => r == Gpr::RAX,
        Insn::LockXadd { src, .. } => src == r,
        Insn::Syscall => r == Gpr::RAX,
        Insn::Push { .. } | Insn::Call { .. } | Insn::CallReg { .. } | Insn::Ret => r == Gpr::RSP,
        _ => false,
    }
}

/// Detects counted self-loops in `sol` and computes their forced pins.
///
/// Shape (the workload generator's `CountedLoop`): a single block `B`
/// whose conditional terminator targets its own start, ending
/// `sub c, 1; cmp c, 0; jne B`, where `c` is written nowhere else in
/// the block and enters the loop as a singleton `c₀ ≥ 1`. The loop body
/// is straight-line and runs exactly `c₀` times, so at head entry of
/// iteration `i ∈ [0, c₀)` every register whose per-iteration delta is
/// a syntactic constant `s` holds `entry + i·s`; the pin is the hull of
/// that family. Registers written any other way pin to ⊤.
fn detect_pins(cfg: &Cfg, entry: u64, entry_state: &State, sol: &Solution<State>) -> Vec<LoopPin> {
    let mut pins = Vec::new();
    for (&start, b) in &cfg.blocks {
        if !sol.inputs.contains_key(&start) {
            continue;
        }
        let Term::Cond { taken, fall } = b.term else { continue };
        if taken != start || fall == start {
            continue;
        }
        let n = b.insns.len();
        if n < 3 {
            continue;
        }
        let counter = match (b.insns[n - 3].insn, b.insns[n - 2].insn, b.insns[n - 1].insn) {
            (
                Insn::Alu { op: AluOp::Sub, dst: c, src: Operand::Imm(1) },
                Insn::Cmp { a, b: Operand::Imm(0) },
                Insn::Jcc { cond: Cond::Ne, .. },
            ) if a == c => c,
            _ => continue,
        };
        if b.insns[..n - 3].iter().any(|ci| writes_reg(&ci.insn, counter)) {
            continue;
        }
        // Entry state: join of edges into the head from outside the loop
        // (plus the instance entry state if the head is the entry).
        let mut ext: Option<State> = if start == entry { Some(entry_state.clone()) } else { None };
        for ((from, to), st) in &sol.edges {
            if *to == start && *from != start {
                match &mut ext {
                    Some(e) => {
                        e.join_from(st);
                    }
                    None => ext = Some(st.clone()),
                }
            }
        }
        let Some(ext) = ext else { continue };
        let Some(c0) = ext.get(counter).singleton() else { continue };
        if c0 == 0 || c0 > i64::MAX as u64 {
            continue;
        }
        // Per-register syntactic deltas over one iteration.
        let mut delta: [Option<i64>; 16] = [Some(0); 16];
        for ci in &b.insns[..n - 1] {
            match ci.insn {
                Insn::Alu { op: AluOp::Add, dst, src: Operand::Imm(k) } => {
                    if let Some(d) = delta[dst.index()] {
                        delta[dst.index()] = d.checked_add(k as i64);
                    }
                }
                Insn::Alu { op: AluOp::Sub, dst, src: Operand::Imm(k) } => {
                    if let Some(d) = delta[dst.index()] {
                        delta[dst.index()] = d.checked_sub(k as i64);
                    }
                }
                Insn::Lea { dst, base, disp } if dst == base => {
                    if let Some(d) = delta[dst.index()] {
                        delta[dst.index()] = d.checked_add(disp as i64);
                    }
                }
                ref other => {
                    for (i, slot) in delta.iter_mut().enumerate() {
                        if writes_reg(other, GPRS[i]) {
                            *slot = None;
                        }
                    }
                }
            }
        }
        let span = |s: i64| (s as i128) * (c0 as i128 - 1);
        let mut pin =
            State { regs: [Val::Top; 16], flags: FlagsAbs::Unknown, stack: BTreeMap::new() };
        for (slot, (&d, &e)) in pin.regs.iter_mut().zip(delta.iter().zip(&ext.regs)) {
            *slot = match (d, e) {
                (Some(0), v) => v,
                (Some(s), Val::Int(lo, hi)) => {
                    let l = lo as i128 + span(s).min(0);
                    let h = hi as i128 + span(s).max(0);
                    if l >= 0 && h <= u64::MAX as i128 {
                        Val::Int(l as u64, h as u64)
                    } else {
                        Val::Top
                    }
                }
                (Some(s), Val::Stack(lo, hi)) => {
                    let l = lo as i128 + span(s).min(0);
                    let h = hi as i128 + span(s).max(0);
                    if l >= i64::MIN as i128 && h <= i64::MAX as i128 {
                        Val::Stack(l as i64, h as i64)
                    } else {
                        Val::Top
                    }
                }
                _ => Val::Top,
            };
        }
        // Tracked stack slots survive the pin only if the loop body
        // provably never writes memory.
        let writes_mem = b.insns.iter().any(|ci| {
            matches!(
                ci.insn,
                Insn::Store { .. }
                    | Insn::StoreB { .. }
                    | Insn::Push { .. }
                    | Insn::Pop { .. }
                    | Insn::LockCmpxchg { .. }
                    | Insn::LockXadd { .. }
            )
        });
        if !writes_mem {
            pin.stack = ext.stack.clone();
        }
        pins.push(LoopPin { head: start, pin });
    }
    pins
}

/// Result of analyzing one instance.
struct InstanceResult {
    accesses: Vec<Access>,
    spawns: Vec<(u64, u64, Val)>,
    poisons: BTreeSet<Poison>,
    edges: BTreeSet<(u64, u64)>,
    refined: u32,
}

fn analyze_instance(bin: &GuestBinary, cfg: &Cfg, inst: usize, arg: Val) -> InstanceResult {
    let entry_state = State::entry(arg);

    // Phase 1: plain widening solve.
    let mut interp = Interp { bin, cfg, inst, pins: BTreeMap::new(), fx: BlockEffects::default() };
    let sol1 = solve(&mut interp, &[(cfg.entry, entry_state.clone())], MAX_STEPS);
    let mut poisons = std::mem::take(&mut interp.fx.poisons);
    if sol1.hit_limit {
        poisons.insert(Poison::SolverLimit);
    }

    // Phases 2+3: counted-loop refinement, only on a clean phase 1.
    let entry = cfg.entry;
    let mut refined = 0u32;
    let mut sol = sol1;
    if poisons.is_empty() {
        let pins = detect_pins(cfg, entry, &entry_state, &sol);
        if !pins.is_empty() {
            let n = pins.len() as u32;
            let mut interp3 = Interp {
                bin,
                cfg,
                inst,
                pins: pins.into_iter().map(|p| (p.head, p.pin)).collect(),
                fx: BlockEffects::default(),
            };
            let sol3 = solve(&mut interp3, &[(entry, entry_state.clone())], MAX_STEPS);
            let p1_edges: BTreeSet<(u64, u64)> = sol.edges.keys().copied().collect();
            let clean = interp3.fx.poisons.is_empty()
                && !sol3.hit_limit
                && sol3.edges.keys().all(|e| p1_edges.contains(e));
            if clean {
                sol = sol3;
                refined = n;
            }
        }
    }

    // Phase 4: deterministic collection walk over the fixpoint inputs.
    let mut fx = BlockEffects::default();
    for (&node, input) in &sol.inputs {
        if let Some(block) = cfg.blocks.get(&node) {
            exec_block(bin, block, input, inst, &mut fx);
        }
    }
    poisons.extend(fx.poisons.iter().copied());

    // Deduplicate spawn sites (a site interpreted in several walks still
    // spawns once per realized site).
    let mut seen = BTreeSet::new();
    let spawns: Vec<(u64, u64, Val)> =
        fx.spawns.into_iter().filter(|s| seen.insert((s.0, s.1))).collect();

    InstanceResult {
        accesses: fx.accesses,
        spawns,
        poisons,
        edges: sol.edges.keys().copied().collect(),
        refined,
    }
}

/// `true` when access ranges may refer to the same bytes. `same_core`
/// tells whether the two accesses can execute on the same core (own-
/// stack ranges only alias within one core).
fn ranges_meet(a: Region, b: Region, same_core: bool) -> bool {
    match (a, b) {
        (Region::Wild, _) | (_, Region::Wild) => true,
        (Region::Abs(al, ah), Region::Abs(bl, bh)) => al <= bh && bl <= ah,
        (Region::Abs(..), Region::OwnStack(..)) => a.stack_suspect(),
        (Region::OwnStack(..), Region::Abs(..)) => b.stack_suspect(),
        (Region::OwnStack(al, ah), Region::OwnStack(bl, bh)) => same_core && al <= bh && bl <= ah,
    }
}

/// Runs the whole-image escape analysis over a recovered CFG.
pub fn analyze(bin: &GuestBinary, cfg: &Cfg) -> EscapeFacts {
    let mut poisons: BTreeSet<Poison> = BTreeSet::new();
    if cfg.unresolved {
        poisons.insert(Poison::UnresolvedIndirect);
    }

    // Instance discovery worklist. Entries are (entry pc, arg,
    // replicated, spawned_at); the root core has arg 0.
    struct Pending {
        entry: u64,
        arg: Val,
        replicated: bool,
        spawned_at: Option<u64>,
    }
    let mut queue: VecDeque<Pending> = VecDeque::from([Pending {
        entry: bin.entry,
        arg: Val::Int(0, 0),
        replicated: false,
        spawned_at: None,
    }]);
    let mut instances: Vec<InstanceInfo> = Vec::new();
    let mut all_accesses: Vec<(bool, Access)> = Vec::new(); // (replicated, access)
    let mut refined_loops = 0u32;

    while let Some(p) = queue.pop_front() {
        if instances.len() >= MAX_INSTANCES {
            poisons.insert(Poison::InstanceCap);
            break;
        }
        let inst = instances.len();
        instances.push(InstanceInfo {
            entry: p.entry,
            spawned_at: p.spawned_at,
            replicated: p.replicated,
        });
        // Per-instance entries are realized by swapping the cfg's entry
        // in a clone; block structure is shared by construction.
        let mut icfg = cfg.clone();
        icfg.entry = p.entry;
        let r = analyze_instance(bin, &icfg, inst, p.arg);
        poisons.extend(r.poisons.iter().copied());
        refined_loops += r.refined;
        for a in &r.accesses {
            all_accesses.push((p.replicated, *a));
        }
        for &(site_pc, target, arg) in &r.spawns {
            // A spawn site whose block can re-reach itself spawns an
            // unbounded family of cores: the child is replicated.
            let site_block =
                cfg.blocks.range(..=site_pc).next_back().map(|(&s, _)| s).unwrap_or(site_pc);
            let loops = reaches_itself(site_block, &r.edges);
            queue.push_back(Pending {
                entry: target,
                arg,
                replicated: p.replicated || loops,
                spawned_at: Some(site_pc),
            });
        }
    }

    // Classification: per (instance, pc) access, then meet across
    // instances at each pc.
    let mut sites: BTreeMap<u64, Site> = BTreeMap::new();
    for &(replicated_a, a) in all_accesses.iter() {
        let class = if a.kind == AccessKind::Atomic {
            SiteClass::Atomic
        } else {
            let conflicts = |other_core_only: bool| {
                all_accesses.iter().any(|&(_, b)| {
                    if other_core_only {
                        // Another core: a different instance, or this
                        // instance again if it stands for several cores.
                        let other = b.inst != a.inst || replicated_a;
                        if !other {
                            return false;
                        }
                        // Across cores, own stacks never alias. Any
                        // other-core access (even a read) defeats
                        // *exclusivity*; read-read sharing degrades to
                        // ReadOnly below, which is still relaxable.
                        ranges_meet(a.region, b.region, false)
                    } else {
                        // Any write anywhere (for read-only), including
                        // this access itself if it is a write.
                        if !matches!(b.kind, AccessKind::Write | AccessKind::Atomic) {
                            return false;
                        }
                        ranges_meet(a.region, b.region, b.inst == a.inst)
                    }
                })
            };
            if !conflicts(true) {
                SiteClass::Private
            } else if a.kind == AccessKind::Read && !conflicts(false) {
                SiteClass::ReadOnly
            } else {
                SiteClass::Shared
            }
        };
        let entry = sites.entry(a.pc).or_insert(Site {
            kind: a.kind,
            width: a.width,
            class,
            region: a.region,
        });
        // Meet across instances: any non-relaxable occurrence wins; a
        // Private/ReadOnly disagreement degrades to the weaker ReadOnly
        // only if both are relaxable, else Shared.
        entry.class = meet(entry.class, class);
        entry.width = entry.width.min(a.width);
        entry.region = region_join(entry.region, a.region);
    }

    EscapeFacts { sites, poisons: poisons.into_iter().collect(), instances, refined_loops }
}

/// Meet of two per-instance classes at one site.
fn meet(a: SiteClass, b: SiteClass) -> SiteClass {
    use SiteClass::*;
    match (a, b) {
        (Atomic, _) | (_, Atomic) => Atomic,
        (Shared, _) | (_, Shared) => Shared,
        (Private, Private) => Private,
        // Private in one instance, ReadOnly in another: both relaxable,
        // keep the weaker claim.
        _ => ReadOnly,
    }
}

/// Can `block` reach itself over the realized edge set?
fn reaches_itself(block: u64, edges: &BTreeSet<(u64, u64)>) -> bool {
    let mut seen = BTreeSet::new();
    let mut work = vec![block];
    while let Some(n) = work.pop() {
        for &(f, t) in edges.range((n, 0)..=(n, u64::MAX)) {
            debug_assert_eq!(f, n);
            if t == block {
                return true;
            }
            if seen.insert(t) {
                work.push(t);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover;
    use risotto_guest_x86::{Assembler, GelfBuilder};

    fn facts(build: impl FnOnce(&mut GelfBuilder, &mut Vec<u64>)) -> (EscapeFacts, Vec<u64>) {
        let mut b = GelfBuilder::new("main");
        let mut addrs = Vec::new();
        b.asm.label("main");
        build(&mut b, &mut addrs);
        let bin = b.finish().expect("valid image");
        let cfg = recover(&bin);
        (analyze(&bin, &cfg), addrs)
    }

    /// Helper: asm-only image.
    fn facts_asm(f: impl FnOnce(&mut Assembler)) -> EscapeFacts {
        facts(|b, _| f(&mut b.asm)).0
    }

    #[test]
    fn single_core_private_store_and_load() {
        let (fx, addrs) = facts(|b, addrs| {
            let v = b.data_u64(&[7]);
            addrs.push(v);
            b.asm.mov_ri(Gpr::RBX, v);
            b.asm.mov_ri(Gpr::RAX, 1);
            b.asm.store(Gpr::RBX, 0, Gpr::RAX);
            b.asm.load(Gpr::RCX, Gpr::RBX, 0);
            b.asm.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        let _ = addrs;
        let classes: Vec<SiteClass> = fx.sites.values().map(|s| s.class).collect();
        assert_eq!(classes, vec![SiteClass::Private, SiteClass::Private]);
        for &pc in fx.sites.keys() {
            assert!(fx.relaxable(pc));
        }
    }

    #[test]
    fn disjoint_worker_slices_are_private_but_flag_is_shared() {
        // main spawns two workers with args 0 and 1; each stores to
        // out[arg] (disjoint 8-byte slots) and then xadds a shared flag.
        let (fx, addrs) = facts(|b, addrs| {
            let out = b.data_zeroed(16);
            let flag = b.data_u64(&[0]);
            addrs.push(out);
            addrs.push(flag);
            let a = &mut b.asm;
            for i in 0..2u64 {
                a.mov_ri(Gpr::RAX, syscalls::SPAWN);
                a.mov_label(Gpr::RDI, "worker");
                a.mov_ri(Gpr::RSI, i);
                a.syscall();
            }
            a.hlt();
            a.label("worker");
            // addr = out + rdi*8
            a.mov_rr(Gpr::RBX, Gpr::RDI);
            a.alu_ri(AluOp::Mul, Gpr::RBX, 8);
            a.alu_ri(AluOp::Add, Gpr::RBX, out);
            a.mov_ri(Gpr::RCX, 42);
            a.store(Gpr::RBX, 0, Gpr::RCX);
            a.mov_ri(Gpr::RDX, flag);
            a.mov_ri(Gpr::RCX, 1);
            a.insn(Insn::LockXadd { base: Gpr::RDX, disp: 0, src: Gpr::RCX });
            a.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        assert_eq!(fx.instances.len(), 3);
        let _ = addrs;
        let mut store_class = None;
        let mut atomic_class = None;
        for s in fx.sites.values() {
            match s.kind {
                AccessKind::Write => store_class = Some(s.class),
                AccessKind::Atomic => atomic_class = Some(s.class),
                _ => {}
            }
        }
        assert_eq!(store_class, Some(SiteClass::Private), "disjoint slices are private");
        assert_eq!(atomic_class, Some(SiteClass::Atomic));
    }

    #[test]
    fn read_only_input_is_relaxable_shared_output_is_not() {
        // Both workers read in[0] (never written) and store to the SAME
        // output slot.
        let (fx, _) = facts(|b, _| {
            let inp = b.data_u64(&[5]);
            let out = b.data_u64(&[0]);
            let a = &mut b.asm;
            for i in 0..2u64 {
                a.mov_ri(Gpr::RAX, syscalls::SPAWN);
                a.mov_label(Gpr::RDI, "worker");
                a.mov_ri(Gpr::RSI, i);
                a.syscall();
            }
            a.hlt();
            a.label("worker");
            a.mov_ri(Gpr::RBX, inp);
            a.load(Gpr::RCX, Gpr::RBX, 0);
            a.mov_ri(Gpr::RBX, out);
            a.store(Gpr::RBX, 0, Gpr::RCX);
            a.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        let mut saw_ro = false;
        let mut saw_shared = false;
        for s in fx.sites.values() {
            match s.kind {
                AccessKind::Read => {
                    assert_eq!(s.class, SiteClass::ReadOnly);
                    saw_ro = true;
                }
                AccessKind::Write => {
                    assert_eq!(s.class, SiteClass::Shared);
                    saw_shared = true;
                }
                _ => {}
            }
        }
        assert!(saw_ro && saw_shared);
    }

    #[test]
    fn counted_loop_pointer_walk_is_refined_and_private() {
        // A single-core counted loop striding an 80-byte private array:
        // without refinement the pointer widens to ⊤ (wild).
        let (fx, _) = facts(|b, _| {
            let arr = b.data_zeroed(80);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, arr);
            a.mov_ri(Gpr::RCX, 10);
            a.label("loop");
            a.mov_ri(Gpr::RAX, 3);
            a.store(Gpr::RBX, 0, Gpr::RAX);
            a.alu_ri(AluOp::Add, Gpr::RBX, 8);
            a.alu_ri(AluOp::Sub, Gpr::RCX, 1);
            a.cmp_ri(Gpr::RCX, 0);
            a.jcc_to(Cond::Ne, "loop");
            a.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        assert_eq!(fx.refined_loops, 1);
        let store = fx.sites.values().find(|s| s.kind == AccessKind::Write).unwrap();
        assert_eq!(store.class, SiteClass::Private);
    }

    #[test]
    fn own_stack_traffic_is_private_and_calls_resolve() {
        let fx = facts_asm(|a| {
            a.mov_ri(Gpr::RAX, 11);
            a.push(Gpr::RAX);
            a.call_to("f");
            a.pop(Gpr::RBX);
            a.hlt();
            a.label("f");
            a.mov_ri(Gpr::RDX, 1);
            a.ret();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        for s in fx.sites.values() {
            assert_eq!(s.class, SiteClass::Private, "stack access must be private: {s:?}");
        }
        // push + call-push + ret-pop + pop = 4 sites.
        assert_eq!(fx.sites.len(), 4);
    }

    #[test]
    fn wild_store_poisons_nothing_but_shares_everything() {
        // A worker stores through a ⊤ pointer (loaded from memory): it
        // conflicts with every access of every other core, including
        // main's otherwise-private store.
        let (fx, _) = facts(|b, _| {
            let cell = b.data_u64(&[0x1234]);
            let other = b.data_u64(&[0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RAX, syscalls::SPAWN);
            a.mov_label(Gpr::RDI, "worker");
            a.mov_ri(Gpr::RSI, 0);
            a.syscall();
            a.mov_ri(Gpr::RDX, other);
            a.mov_ri(Gpr::RAX, 9);
            a.store(Gpr::RDX, 0, Gpr::RAX);
            a.hlt();
            a.label("worker");
            a.mov_ri(Gpr::RBX, cell);
            a.load(Gpr::RCX, Gpr::RBX, 0); // RCX = ⊤
            a.mov_ri(Gpr::RAX, 9);
            a.store(Gpr::RCX, 0, Gpr::RAX); // wild write
            a.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        for s in fx.sites.values() {
            if s.kind == AccessKind::Write {
                assert_eq!(s.class, SiteClass::Shared);
            }
        }
    }

    #[test]
    fn single_core_wild_store_stays_private() {
        // With no spawn sites there is no other core to conflict with:
        // even a ⊤-pointer store is core-private.
        let (fx, _) = facts(|b, _| {
            let cell = b.data_u64(&[0x1234]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell);
            a.load(Gpr::RCX, Gpr::RBX, 0); // RCX = ⊤
            a.mov_ri(Gpr::RAX, 9);
            a.store(Gpr::RCX, 0, Gpr::RAX);
            a.hlt();
        });
        assert!(!fx.poisoned());
        let store = fx.sites.values().find(|s| s.kind == AccessKind::Write).unwrap();
        assert_eq!(store.class, SiteClass::Private);
    }

    #[test]
    fn unresolved_ret_poisons_image() {
        let fx = facts_asm(|a| {
            a.ret(); // pops from an empty tracked stack
        });
        assert!(fx.poisons.contains(&Poison::UnresolvedRet));
        assert!(!fx.relaxable(TEXT_BASE));
    }

    #[test]
    fn unknown_syscall_number_poisons_image() {
        let (fx, _) = facts(|b, _| {
            let cell = b.data_u64(&[3]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RBX, cell);
            a.load(Gpr::RAX, Gpr::RBX, 0); // RAX = ⊤
            a.syscall();
            a.hlt();
        });
        assert!(fx.poisons.contains(&Poison::UnknownSyscall));
    }

    #[test]
    fn replicated_spawn_in_loop_defeats_privacy() {
        // One spawn site inside a counted loop: the child instance is
        // replicated, so its core-indexed-looking (but here constant)
        // store conflicts with its sibling copies.
        let (fx, _) = facts(|b, _| {
            let out = b.data_u64(&[0]);
            let a = &mut b.asm;
            a.mov_ri(Gpr::RCX, 2);
            a.label("spawnloop");
            a.mov_ri(Gpr::RAX, syscalls::SPAWN);
            a.mov_label(Gpr::RDI, "worker");
            a.mov_rr(Gpr::RSI, Gpr::RCX);
            a.syscall();
            a.alu_ri(AluOp::Sub, Gpr::RCX, 1);
            a.cmp_ri(Gpr::RCX, 0);
            a.jcc_to(Cond::Ne, "spawnloop");
            a.hlt();
            a.label("worker");
            a.mov_ri(Gpr::RBX, out);
            a.mov_ri(Gpr::RAX, 1);
            a.store(Gpr::RBX, 0, Gpr::RAX);
            a.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        let worker = fx.instances.iter().find(|i| i.spawned_at.is_some()).unwrap();
        assert!(worker.replicated);
        let store = fx.sites.values().find(|s| s.kind == AccessKind::Write).unwrap();
        assert_eq!(store.class, SiteClass::Shared);
    }

    #[test]
    fn write_syscall_buffer_counts_as_a_read() {
        // Worker 0 WRITEs a buffer that worker 1 stores into: the store
        // must not be private.
        let (fx, _) = facts(|b, _| {
            let buf = b.data_u64(&[0]);
            let a = &mut b.asm;
            for i in 0..2u64 {
                a.mov_ri(Gpr::RAX, syscalls::SPAWN);
                a.mov_label(Gpr::RDI, if i == 0 { "writer" } else { "storer" });
                a.mov_ri(Gpr::RSI, i);
                a.syscall();
            }
            a.hlt();
            a.label("writer");
            a.mov_ri(Gpr::RAX, syscalls::WRITE);
            a.mov_ri(Gpr::RDI, 1);
            a.mov_ri(Gpr::RSI, buf);
            a.mov_ri(Gpr::RDX, 8);
            a.syscall();
            a.hlt();
            a.label("storer");
            a.mov_ri(Gpr::RBX, buf);
            a.mov_ri(Gpr::RAX, 1);
            a.store(Gpr::RBX, 0, Gpr::RAX);
            a.hlt();
        });
        assert!(!fx.poisoned(), "poisons: {:?}", fx.poisons);
        let store = fx.sites.values().find(|s| s.kind == AccessKind::Write).unwrap();
        assert_eq!(store.class, SiteClass::Shared);
    }
}
