//! The reusable dataflow framework: a generic lattice trait and a
//! deterministic worklist solver.
//!
//! Two entry points cover the two shapes of client in this crate:
//!
//! * [`solve`] — the general solver over a [`Transfer`] whose successor
//!   set is *dynamic* (returned by the transfer function itself). The
//!   escape analysis needs this: which syscall/indirect edges are
//!   realized depends on the abstract state flowing into them.
//! * [`solve_on_graph`] — the classic fixed-graph solver, forward or
//!   backward, for clients whose CFG is known up front (reachability,
//!   the backward fence-before-exit lint).
//!
//! Determinism is load-bearing: the engine's translation output must be
//! bit-identical run to run (`tests/determinism.rs`), and analysis facts
//! feed translation. The worklist is a `BTreeSet` (nodes always process
//! in ascending order) and all per-node storage is `BTreeMap`, so
//! iteration order never depends on hash seeds.

use std::collections::{BTreeMap, BTreeSet};

/// A join-semilattice of abstract states.
pub trait Lattice: Clone {
    /// In-place join; returns `true` if `self` changed (i.e. `other` was
    /// not already below `self`).
    fn join_from(&mut self, other: &Self) -> bool;

    /// Widening hook, applied by the solver after a node's input has
    /// been updated [`WIDEN_AFTER`] times: jump up the lattice far
    /// enough to guarantee termination on infinite-height domains.
    /// Defaults to a no-op (correct for finite-height lattices).
    fn widen(&mut self) {}
}

/// After how many joins at one node the solver invokes [`Lattice::widen`].
pub const WIDEN_AFTER: u32 = 8;

/// A transfer function with dynamic successors: flowing `input` through
/// `node` yields the out-state per realized successor edge.
pub trait Transfer {
    /// The abstract state.
    type State: Lattice;

    /// Flow `input` through `node`. An empty result means the node has
    /// no realized successors (exit, halt, abstract dead end).
    fn flow(&mut self, node: u64, input: &Self::State) -> Vec<(u64, Self::State)>;
}

/// A solved dataflow instance.
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Fixpoint input state per reached node.
    pub inputs: BTreeMap<u64, S>,
    /// Fixpoint out-state per realized edge `(from, to)`.
    pub edges: BTreeMap<(u64, u64), S>,
    /// Worklist steps taken (for tests and the step-limit safety valve).
    pub steps: u64,
    /// `true` if the solver hit `max_steps` before reaching a fixpoint.
    /// The partial solution is *not* a sound over-approximation; callers
    /// must treat the analysis as failed.
    pub hit_limit: bool,
}

/// Runs the worklist solver from the given entry states to a fixpoint
/// (or until `max_steps`). Deterministic: nodes process in ascending
/// order; the transfer function is re-run whenever a node's input grows.
pub fn solve<T: Transfer>(
    transfer: &mut T,
    entries: &[(u64, T::State)],
    max_steps: u64,
) -> Solution<T::State> {
    let mut inputs: BTreeMap<u64, T::State> = BTreeMap::new();
    let mut edges: BTreeMap<(u64, u64), T::State> = BTreeMap::new();
    let mut joins: BTreeMap<u64, u32> = BTreeMap::new();
    let mut work: BTreeSet<u64> = BTreeSet::new();
    for (node, state) in entries {
        match inputs.get_mut(node) {
            Some(cur) => {
                cur.join_from(state);
            }
            None => {
                inputs.insert(*node, state.clone());
            }
        }
        work.insert(*node);
    }
    let mut steps = 0u64;
    let mut hit_limit = false;
    while let Some(&node) = work.iter().next() {
        work.remove(&node);
        steps += 1;
        if steps > max_steps {
            hit_limit = true;
            break;
        }
        let input = inputs.get(&node).expect("worklist node has an input").clone();
        for (succ, out) in transfer.flow(node, &input) {
            edges.insert((node, succ), out.clone());
            let changed = match inputs.get_mut(&succ) {
                Some(cur) => cur.join_from(&out),
                None => {
                    inputs.insert(succ, out);
                    true
                }
            };
            if changed {
                let count = joins.entry(succ).or_insert(0);
                *count += 1;
                if *count > WIDEN_AFTER {
                    inputs.get_mut(&succ).expect("just joined").widen();
                    *count = 0;
                }
                work.insert(succ);
            }
        }
    }
    Solution { inputs, edges, steps, hit_limit }
}

/// Flow direction for [`solve_on_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// States flow along edges.
    Forward,
    /// States flow against edges (the graph is reversed before solving).
    Backward,
}

struct GraphTransfer<'a, S, F> {
    succs: BTreeMap<u64, &'a [u64]>,
    transfer: F,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Lattice, F: FnMut(u64, &S) -> S> Transfer for GraphTransfer<'_, S, F> {
    type State = S;
    fn flow(&mut self, node: u64, input: &S) -> Vec<(u64, S)> {
        let out = (self.transfer)(node, input);
        match self.succs.get(&node) {
            Some(ss) => ss.iter().map(|&s| (s, out.clone())).collect(),
            None => Vec::new(),
        }
    }
}

/// Fixed-graph solver: `succs` gives each node's successor list, `seeds`
/// the boundary states, and `transfer` the per-node out-state. For
/// [`Direction::Backward`] the edge set is reversed (seeds are then the
/// exits, and each node's fixpoint input joins over its successors'
/// out-states).
pub fn solve_on_graph<S: Lattice, F: FnMut(u64, &S) -> S>(
    succs: &BTreeMap<u64, Vec<u64>>,
    dir: Direction,
    seeds: &[(u64, S)],
    transfer: F,
    max_steps: u64,
) -> Solution<S> {
    let oriented: BTreeMap<u64, Vec<u64>> = match dir {
        Direction::Forward => succs.clone(),
        Direction::Backward => {
            let mut rev: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for (&from, tos) in succs {
                rev.entry(from).or_default();
                for &to in tos {
                    rev.entry(to).or_default().push(from);
                }
            }
            for tos in rev.values_mut() {
                tos.sort_unstable();
                tos.dedup();
            }
            rev
        }
    };
    let mut gt = GraphTransfer {
        succs: oriented.iter().map(|(&k, v)| (k, v.as_slice())).collect(),
        transfer,
        _marker: std::marker::PhantomData,
    };
    solve(&mut gt, seeds, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain powerset-of-u64 lattice for tests.
    #[derive(Debug, Clone, PartialEq, Default)]
    struct Set(BTreeSet<u64>);

    impl Lattice for Set {
        fn join_from(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().copied());
            self.0.len() != before
        }
    }

    #[test]
    fn forward_reachability_on_a_diamond() {
        // 1 -> {2,3} -> 4
        let succs: BTreeMap<u64, Vec<u64>> =
            [(1, vec![2, 3]), (2, vec![4]), (3, vec![4]), (4, vec![])].into();
        let sol = solve_on_graph(
            &succs,
            Direction::Forward,
            &[(1, Set([1].into()))],
            |node, s: &Set| {
                let mut out = s.clone();
                out.0.insert(node);
                out
            },
            1000,
        );
        assert!(!sol.hit_limit);
        assert_eq!(sol.inputs[&4].0, [1, 2, 3].into());
        // Join happened: node 4's input saw both branch paths.
        assert_eq!(sol.edges[&(2, 4)].0, [1, 2].into());
        assert_eq!(sol.edges[&(3, 4)].0, [1, 3].into());
    }

    #[test]
    fn backward_direction_reverses_edges() {
        let succs: BTreeMap<u64, Vec<u64>> = [(1, vec![2]), (2, vec![3]), (3, vec![])].into();
        let sol = solve_on_graph(
            &succs,
            Direction::Backward,
            &[(3, Set([3].into()))],
            |_, s: &Set| s.clone(),
            1000,
        );
        assert_eq!(sol.inputs[&1].0, [3].into());
    }

    /// An infinite-height counter domain exercising the widening hook.
    #[derive(Debug, Clone, PartialEq)]
    struct Hull(u64, u64);

    impl Lattice for Hull {
        fn join_from(&mut self, other: &Self) -> bool {
            let next = (self.0.min(other.0), self.1.max(other.1));
            let changed = next != (self.0, self.1);
            (self.0, self.1) = next;
            changed
        }
        fn widen(&mut self) {
            self.1 = u64::MAX;
        }
    }

    struct Loop;
    impl Transfer for Loop {
        type State = Hull;
        fn flow(&mut self, node: u64, input: &Hull) -> Vec<(u64, Hull)> {
            // Node 0 loops to itself adding 1 forever; widening must
            // terminate the climb.
            assert_eq!(node, 0);
            vec![(0, Hull(input.0, input.1.saturating_add(1)))]
        }
    }

    #[test]
    fn widening_terminates_an_unbounded_climb() {
        let sol = solve(&mut Loop, &[(0, Hull(0, 0))], 100_000);
        assert!(!sol.hit_limit, "widening should terminate well before the step limit");
        assert_eq!(sol.inputs[&0].1, u64::MAX);
        assert!(sol.steps < 100);
    }

    #[test]
    fn step_limit_reports_failure() {
        struct NoWiden;
        #[derive(Debug, Clone, PartialEq)]
        struct Count(u64);
        impl Lattice for Count {
            fn join_from(&mut self, other: &Self) -> bool {
                let changed = other.0 > self.0;
                self.0 = self.0.max(other.0);
                changed
            }
            // No widen override: the climb never terminates.
        }
        impl Transfer for NoWiden {
            type State = Count;
            fn flow(&mut self, _: u64, input: &Count) -> Vec<(u64, Count)> {
                vec![(0, Count(input.0 + 1))]
            }
        }
        let sol = solve(&mut NoWiden, &[(0, Count(0))], 50);
        assert!(sol.hit_limit);
    }
}
