//! Micro-benchmarks of the formal layer: candidate-execution
//! enumeration and Theorem-1 checking throughput.
//!
//! Self-contained timing harness (`harness = false`): best-of-three
//! mean wall time per iteration, no external crates required.

use std::hint::black_box;
use std::time::Instant;

use risotto_litmus::{behaviors, corpus};
use risotto_mappings::check::check_mapping;
use risotto_mappings::scheme::{verified_x86_to_arm, RmwLowering};
use risotto_memmodel::{Arm, X86Tso};

fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters / 4 + 1 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = t0.elapsed().as_secs_f64() / f64::from(iters);
        if per < best {
            best = per;
        }
    }
    println!("{name:32} {:>12.1} ns/iter", best * 1e9);
}

fn main() {
    let p = corpus::mp();
    bench("enumerate_mp_x86", 200, || behaviors(&p, &X86Tso::new()));
    let p = corpus::sbq_arm_qemu();
    bench("enumerate_sbq_arm", 200, || behaviors(&p, &Arm::corrected()));
    let p = corpus::sbal_x86();
    let s = verified_x86_to_arm(RmwLowering::Casal);
    bench("theorem1_check_sbal", 50, || {
        check_mapping(&s, &p, &X86Tso::new(), &Arm::corrected()).expect("theorem 1 holds")
    });
}
