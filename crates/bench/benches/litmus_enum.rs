//! Criterion micro-benchmarks of the formal layer: candidate-execution
//! enumeration and Theorem-1 checking throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use risotto_litmus::{behaviors, corpus};
use risotto_mappings::check::check_mapping;
use risotto_mappings::scheme::{verified_x86_to_arm, RmwLowering};
use risotto_memmodel::{Arm, X86Tso};

fn bench_enumeration(c: &mut Criterion) {
    c.bench_function("enumerate_mp_x86", |b| {
        let p = corpus::mp();
        b.iter(|| behaviors(&p, &X86Tso::new()))
    });
    c.bench_function("enumerate_sbq_arm", |b| {
        let p = corpus::sbq_arm_qemu();
        b.iter(|| behaviors(&p, &Arm::corrected()))
    });
    c.bench_function("theorem1_check_sbal", |b| {
        let p = corpus::sbal_x86();
        let s = verified_x86_to_arm(RmwLowering::Casal);
        b.iter(|| check_mapping(&s, &p, &X86Tso::new(), &Arm::corrected()).unwrap())
    });
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
