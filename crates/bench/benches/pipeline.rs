//! Criterion micro-benchmarks of the DBT pipeline itself: frontend
//! decode+translate, optimizer, backend lowering, and machine execution
//! throughput. These measure the *simulator's* speed (not guest
//! performance — that's the fig12–fig15 binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use risotto_guest_x86::{AluOp, Assembler, Cond, Gpr};
use risotto_host_arm::{lower_block, BackendConfig, CostModel, Event, Machine, RmwStyle};
use risotto_tcg::{optimize, translate_block, FrontendConfig, OptPolicy};

fn hot_block_bytes() -> Vec<u8> {
    let mut a = Assembler::new(0x1000);
    a.load(Gpr::RAX, Gpr::RDI, 0);
    a.alu_ri(AluOp::Add, Gpr::RAX, 5);
    a.alu_ri(AluOp::Mul, Gpr::RAX, 3);
    a.store(Gpr::RDI, 8, Gpr::RAX);
    a.load(Gpr::RBX, Gpr::RDI, 16);
    a.alu_rr(AluOp::Xor, Gpr::RBX, Gpr::RAX);
    a.store(Gpr::RDI, 24, Gpr::RBX);
    a.cmp_ri(Gpr::RAX, 100);
    a.jcc_to(Cond::L, "out");
    a.label("out");
    a.hlt();
    a.finish().unwrap().0
}

fn fetcher(bytes: Vec<u8>) -> impl Fn(u64) -> [u8; 16] {
    move |addr| {
        let mut w = [0u8; 16];
        let off = (addr - 0x1000) as usize;
        for i in 0..16 {
            w[i] = bytes.get(off + i).copied().unwrap_or(0);
        }
        w
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let bytes = hot_block_bytes();
    let fetch = fetcher(bytes);
    c.bench_function("frontend_translate_block", |b| {
        b.iter(|| translate_block(0x1000, FrontendConfig::risotto(), &fetch).unwrap())
    });
    let block = translate_block(0x1000, FrontendConfig::risotto(), &fetch).unwrap();
    c.bench_function("optimizer_full_pipeline", |b| {
        b.iter(|| {
            let mut blk = block.clone();
            optimize(&mut blk, OptPolicy::Verified)
        })
    });
    let mut opt = block.clone();
    optimize(&mut opt, OptPolicy::Verified);
    c.bench_function("backend_lower_block", |b| {
        b.iter(|| lower_block(&opt, BackendConfig::dbt(RmwStyle::Casal)))
    });
}

fn bench_machine(c: &mut Criterion) {
    // A tight host loop: measure simulated instructions per second.
    use risotto_host_arm::{AOp, ACond, HostInsn, Xreg};
    c.bench_function("machine_100k_steps", |b| {
        b.iter(|| {
            let mut m = Machine::new(1, CostModel::uniform());
            let code = m.install_code(&[
                HostInsn::MovImm { dst: Xreg(0), imm: 100_000 },
                HostInsn::AluImm { op: AOp::Sub, dst: Xreg(0), a: Xreg(0), imm: 1 },
                HostInsn::CmpImm { a: Xreg(0), imm: 0 },
                HostInsn::BCond { cond: ACond::Ne, rel: -28 },
                HostInsn::Hlt,
            ]);
            m.start_core(0, code);
            assert_eq!(m.run(1_000_000), Event::AllHalted);
        })
    });
}

criterion_group!(benches, bench_pipeline, bench_machine);
criterion_main!(benches);
