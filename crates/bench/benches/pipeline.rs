//! Micro-benchmarks of the DBT pipeline itself: frontend
//! decode+translate, optimizer, backend lowering, and machine execution
//! throughput. These measure the *simulator's* speed (not guest
//! performance — that's the fig12–fig15 binaries).
//!
//! Self-contained timing harness (`harness = false`): each benchmark
//! runs a warmup pass then reports the best-of-N mean wall time, so the
//! binary works in offline environments without external crates.
//!
//! Besides the console table, the kernel-suite section writes
//! `BENCH_pipeline.json` (per-kernel simulated cycles and TB-chain hit
//! rate) for machine consumption. Pass `smoke` (or set
//! `PIPELINE_BENCH=smoke`) to run a fast CI-sized configuration:
//!
//! ```sh
//! cargo bench -p risotto-bench --bench pipeline -- smoke
//! ```

use std::hint::black_box;
use std::time::Instant;

use risotto_core::{BackendKind, Emulator, Setup, TierConfig};
use risotto_guest_x86::{AluOp, Assembler, Cond, Gpr};
use risotto_host_arm::{lower_block, BackendConfig, CostModel, Event, Machine, RmwStyle};
use risotto_tcg::{optimize, translate_block, FrontendConfig, OptPolicy};
use risotto_workloads::kernels;

/// Run `f` repeatedly for roughly `iters` iterations, three rounds, and
/// print the best mean-per-iteration time.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..iters / 4 + 1 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = t0.elapsed().as_secs_f64() / f64::from(iters);
        if per < best {
            best = per;
        }
    }
    println!("{name:32} {:>12.1} ns/iter", best * 1e9);
}

fn hot_block_bytes() -> Vec<u8> {
    let mut a = Assembler::new(0x1000);
    a.load(Gpr::RAX, Gpr::RDI, 0);
    a.alu_ri(AluOp::Add, Gpr::RAX, 5);
    a.alu_ri(AluOp::Mul, Gpr::RAX, 3);
    a.store(Gpr::RDI, 8, Gpr::RAX);
    a.load(Gpr::RBX, Gpr::RDI, 16);
    a.alu_rr(AluOp::Xor, Gpr::RBX, Gpr::RAX);
    a.store(Gpr::RDI, 24, Gpr::RBX);
    a.cmp_ri(Gpr::RAX, 100);
    a.jcc_to(Cond::L, "out");
    a.label("out");
    a.hlt();
    a.finish().expect("assembling the hot block").0
}

fn fetcher(bytes: Vec<u8>) -> impl Fn(u64) -> [u8; 16] {
    move |addr| {
        let mut w = [0u8; 16];
        let off = (addr - 0x1000) as usize;
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = bytes.get(off + i).copied().unwrap_or(0);
        }
        w
    }
}

fn bench_pipeline() {
    let bytes = hot_block_bytes();
    let fetch = fetcher(bytes);
    bench("template_translate_block", 10_000, || {
        risotto_template::translate_block_template(
            0x1000,
            FrontendConfig::risotto(),
            BackendConfig::dbt(RmwStyle::Casal),
            BackendKind::Arm.ordering(),
            &fetch,
        )
        .expect("template translate")
    });
    bench("frontend_translate_block", 10_000, || {
        translate_block(0x1000, FrontendConfig::risotto(), &fetch).expect("translate")
    });
    let block = translate_block(0x1000, FrontendConfig::risotto(), &fetch).expect("translate");
    bench("optimizer_full_pipeline", 10_000, || {
        let mut blk = block.clone();
        optimize(&mut blk, OptPolicy::Verified)
    });
    let mut opt = block.clone();
    optimize(&mut opt, OptPolicy::Verified);
    bench("backend_lower_block", 10_000, || {
        lower_block(&opt, BackendConfig::dbt(RmwStyle::Casal)).expect("lower")
    });
}

fn bench_machine() {
    // A tight host loop: measure simulated instructions per second.
    use risotto_host_arm::{ACond, AOp, HostInsn, Xreg};
    bench("machine_100k_steps", 20, || {
        let mut m = Machine::new(1, CostModel::uniform());
        let code = m.install_code(&[
            HostInsn::MovImm { dst: Xreg(0), imm: 100_000 },
            HostInsn::AluImm { op: AOp::Sub, dst: Xreg(0), a: Xreg(0), imm: 1 },
            HostInsn::CmpImm { a: Xreg(0), imm: 0 },
            HostInsn::BCond { cond: ACond::Ne, rel: -28 },
            HostInsn::Hlt,
        ]);
        m.start_core(0, code);
        assert_eq!(m.run(1_000_000), Event::AllHalted);
    });
}

/// Runs the 16 Fig. 12 kernels end-to-end under the risotto setup and
/// writes per-kernel simulated cycles + chain-hit rate to
/// `BENCH_pipeline.json`, plus a tier-2 leg per kernel (superblock
/// promotion enabled) whose cycle delta and cross-boundary fence merges
/// land under the `"superblock"` key, a MiniTSO-backend leg whose
/// cycles and MFENCE count land under the `"tso"` key (results asserted
/// bit-identical to the Arm run), and a tier-0 cold-start leg whose
/// template counters and translation wall time land under the `"tier0"`
/// key. The cold-start comparison — every block translated exactly
/// once, run once, per tier — is aggregated over all kernels into the
/// top-level `"cold_start"` object (ns per guest instruction, tier-0 vs
/// tier-1; ci.sh gates tier-0 strictly cheaper). `smoke` shrinks the
/// scale for CI.
fn bench_kernels(smoke: bool) {
    let (scale, threads) = if smoke { (4, 2) } else { (64, 2) };
    let mode = if smoke { "smoke" } else { "full" };
    println!("\nkernel suite ({mode}, scale {scale}, {threads} threads):");
    let mut entries = Vec::new();
    // Cold-start aggregates: translation wall-ns and guest instructions
    // covered, per tier, summed over every kernel.
    let (mut cold_t0_ns, mut cold_t0_insns) = (0u64, 0u64);
    let (mut cold_t1_ns, mut cold_t1_insns) = (0u64, 0u64);
    for w in kernels::all() {
        let bin = (w.build)(scale, threads);
        let t0 = Instant::now();
        let mut emu = Emulator::new(&bin, Setup::Risotto, threads, CostModel::thunderx2_like());
        let r = emu.run(20_000_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let wall = t0.elapsed().as_secs_f64();
        let rate = r.chain_hit_rate();

        // Tier-2 leg: same kernel with superblock promotion on. The
        // architectural results must be bit-identical; only the cycle
        // count may move.
        let mut t2 = Emulator::new(&bin, Setup::Risotto, threads, CostModel::thunderx2_like());
        t2.set_tiering(Some(TierConfig { hot_threshold: 16, ..TierConfig::default() }));
        let r2 = t2.run(20_000_000_000).unwrap_or_else(|e| panic!("{} (tier-2): {e}", w.name));
        assert_eq!(r2.exit_vals, r.exit_vals, "{}: tier-2 exit values diverge", w.name);
        assert_eq!(r2.output, r.output, "{}: tier-2 output diverges", w.name);
        let delta = r.cycles as i64 - r2.cycles as i64;

        // MiniTSO leg: the same kernel lowered through the x86-TSO host
        // backend. Guest-visible results must be bit-identical to the Arm
        // tier-1 run; cycles and fence counts differ per backend (most
        // TCG fences are no-ops under TSO, only W→R orderings cost an
        // MFENCE, which executes as a full barrier: `fence.exec.dmb_ff`).
        let mut tso = Emulator::new(&bin, Setup::Risotto, threads, BackendKind::Tso.cost_model());
        tso.set_backend(BackendKind::Tso);
        let rt = tso.run(20_000_000_000).unwrap_or_else(|e| panic!("{} (tso): {e}", w.name));
        assert_eq!(rt.exit_vals, r.exit_vals, "{}: tso exit values diverge", w.name);
        assert_eq!(rt.output, r.output, "{}: tso output diverges", w.name);
        let tso_mfences = tso.metrics().counter("fence.exec.dmb_ff");
        let arm_full = emu.metrics().counter("fence.exec.dmb_ff");

        // Analysis leg: the same kernel with whole-program fence
        // relaxation on (docs/ANALYSIS.md). Results must be
        // bit-identical — the analysis only removes ordering that no
        // other core can observe — and cycles must never regress; the
        // delta and the `analysis.*` counters land under the
        // `"analysis"` key.
        let mut an = Emulator::new(&bin, Setup::Risotto, threads, CostModel::thunderx2_like());
        an.set_analysis(true);
        let ra = an.run(20_000_000_000).unwrap_or_else(|e| panic!("{} (analysis): {e}", w.name));
        assert_eq!(ra.exit_vals, r.exit_vals, "{}: analysis exit values diverge", w.name);
        assert_eq!(ra.output, r.output, "{}: analysis output diverges", w.name);
        assert!(
            ra.cycles <= r.cycles,
            "{}: analysis-on run regressed cycles ({} > {})",
            w.name,
            ra.cycles,
            r.cycles
        );
        let anm = an.metrics();
        let an_relaxed = anm.counter("analysis.relaxed");
        let an_relaxable = anm.counter("analysis.relaxable");
        let an_sites = anm.counter("analysis.sites");
        let an_private = anm.counter("analysis.private");
        let an_poisons = anm.counter("analysis.poisons");
        let an_folded = anm.counter("analysis.hint_folded");
        let an_pruned = anm.counter("analysis.branches_pruned");

        // Tier-0 cold-start leg: every block pinned to the template
        // translator (both thresholds at MAX so nothing re-translates),
        // stage timing on so `stage.template_ns` fills. Wall-time
        // histograms never touch simulated state, so results must stay
        // bit-identical to the tier-1 run.
        let mut t0 = Emulator::new(&bin, Setup::Risotto, threads, CostModel::thunderx2_like());
        t0.set_tiering(Some(TierConfig {
            hot_threshold: u64::MAX,
            warm_threshold: Some(u64::MAX),
            ..TierConfig::default()
        }));
        t0.set_stage_timing(true);
        let r0 = t0.run(20_000_000_000).unwrap_or_else(|e| panic!("{} (tier-0): {e}", w.name));
        assert_eq!(r0.exit_vals, r.exit_vals, "{}: tier-0 exit values diverge", w.name);
        assert_eq!(r0.output, r.output, "{}: tier-0 output diverges", w.name);
        let t0m = t0.metrics();
        let t0_ns = t0m.histogram("stage.template_ns").sum;
        let t0_insns = t0m.counter("template.insns");
        assert!(t0m.counter("template.blocks") > 0, "{}: tier-0 leg translated nothing", w.name);
        assert_eq!(t0m.counter("translate.insns"), 0, "{}: tier-1 ran in the tier-0 leg", w.name);

        // Tier-1 cold-start reference: the same translate-once/run-once
        // workload through the IR pipeline, stage-timed. (The baseline
        // `emu` run above deliberately keeps observability off so its
        // cycle numbers stay bit-identical to an uninstrumented build.)
        let mut t1c = Emulator::new(&bin, Setup::Risotto, threads, CostModel::thunderx2_like());
        t1c.set_stage_timing(true);
        let r1c = t1c.run(20_000_000_000).unwrap_or_else(|e| panic!("{} (tier-1): {e}", w.name));
        assert_eq!(r1c.exit_vals, r.exit_vals, "{}: stage-timed tier-1 diverges", w.name);
        let t1m = t1c.metrics();
        let t1_ns = t1m.histogram("stage.decode_ns").sum
            + t1m.histogram("stage.opt_ns").sum
            + t1m.histogram("stage.encode_ns").sum;
        let t1_insns = t1m.counter("translate.insns");
        cold_t0_ns += t0_ns;
        cold_t0_insns += t0_insns;
        cold_t1_ns += t1_ns;
        cold_t1_insns += t1_insns;
        let per = |ns: u64, insns: u64| if insns == 0 { 0.0 } else { ns as f64 / insns as f64 };

        println!(
            "{:32} {:>12} cycles   chain {:>5.1}%   sb {:+6} cy ({} prom, {} xfence)   an {:+6} cy ({} relax)   tso {:>12} cy ({} mfence)   t0 {:>6.1} vs t1 {:>6.1} ns/insn   {:>8.1} ms wall",
            w.name,
            r.cycles,
            100.0 * rate,
            delta,
            r2.sb.promotions,
            r2.sb.fences_merged_cross,
            r.cycles as i64 - ra.cycles as i64,
            an_relaxed,
            rt.cycles,
            tso_mfences,
            per(t0_ns, t0_insns),
            per(t1_ns, t1_insns),
            wall * 1e3
        );
        // The registry snapshot is read out after the run with every
        // observability feature still disabled, so the cycle numbers
        // above stay bit-identical to an uninstrumented build.
        entries.push(format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"cycles\": {}, \"chain_hit_rate\": {:.4}, ",
                "\"chain_hits\": {}, \"chain_links\": {}, \"dispatch_hits\": {}, ",
                "\"dispatch_misses\": {}, \"wall_seconds\": {:.6},\n     ",
                "\"superblock\": {{\"tier1_cycles\": {}, \"tier2_cycles\": {}, ",
                "\"cycle_delta\": {}, \"promotions\": {}, \"tbs_merged\": {}, ",
                "\"side_exits\": {}, \"fences_merged_cross\": {}}},\n     ",
                "\"tso\": {{\"cycles\": {}, \"mfences\": {}, \"arm_dmb_ff\": {}, ",
                "\"cycle_delta_vs_arm\": {}}},\n     ",
                "\"analysis\": {{\"cycles\": {}, \"cycle_delta_vs_off\": {}, ",
                "\"relaxed\": {}, \"relaxable\": {}, \"sites\": {}, ",
                "\"private\": {}, \"poisons\": {}, \"hint_folded\": {}, ",
                "\"branches_pruned\": {}}},\n     ",
                "\"tier0\": {{\"cycles\": {}, \"blocks\": {}, \"insns\": {}, ",
                "\"translate_ns\": {}, \"ns_per_insn\": {:.2}, ",
                "\"tier1_translate_ns\": {}, \"tier1_insns\": {}, ",
                "\"tier1_ns_per_insn\": {:.2}}},\n     \"metrics\": {}}}"
            ),
            w.name,
            r.cycles,
            rate,
            r.chain.chain_hits,
            r.chain.chain_links,
            r.chain.dispatch_hits,
            r.chain.dispatch_misses,
            wall,
            r.cycles,
            r2.cycles,
            delta,
            r2.sb.promotions,
            r2.sb.tbs_merged,
            r2.sb.side_exits,
            r2.sb.fences_merged_cross,
            rt.cycles,
            tso_mfences,
            arm_full,
            r.cycles as i64 - rt.cycles as i64,
            ra.cycles,
            r.cycles as i64 - ra.cycles as i64,
            an_relaxed,
            an_relaxable,
            an_sites,
            an_private,
            an_poisons,
            an_folded,
            an_pruned,
            r0.cycles,
            r0.template.blocks,
            t0_insns,
            t0_ns,
            per(t0_ns, t0_insns),
            t1_ns,
            t1_insns,
            per(t1_ns, t1_insns),
            emu.metrics().to_json()
        ));
    }
    // The cold-start headline: wall-ns of translation per guest
    // instruction, aggregated over the whole suite. Template
    // instantiation skips IR building, optimization and register
    // allocation, so it must come out far cheaper than the tier-1
    // pipeline (ci.sh gates `tier0 < tier1`; the paper-style target is
    // ≥ 5×).
    let t0_per = if cold_t0_insns == 0 { 0.0 } else { cold_t0_ns as f64 / cold_t0_insns as f64 };
    let t1_per = if cold_t1_insns == 0 { 0.0 } else { cold_t1_ns as f64 / cold_t1_insns as f64 };
    let ratio = if t0_per == 0.0 { 0.0 } else { t1_per / t0_per };
    println!(
        "\ncold start: tier-0 {t0_per:.1} ns/insn ({cold_t0_insns} insns) vs tier-1 {t1_per:.1} ns/insn ({cold_t1_insns} insns) — {ratio:.1}x cheaper"
    );
    let json = format!(
        concat!(
            "{{\n  \"mode\": \"{mode}\",\n  \"scale\": {scale},\n  \"threads\": {threads},\n",
            "  \"cold_start\": {{\"tier0_ns_per_insn\": {t0:.2}, \"tier0_insns\": {t0i}, ",
            "\"tier1_ns_per_insn\": {t1:.2}, \"tier1_insns\": {t1i}, \"speedup\": {sp:.2}}},\n",
            "  \"kernels\": [\n{kernels}\n  ]\n}}\n"
        ),
        mode = mode,
        scale = scale,
        threads = threads,
        t0 = t0_per,
        t0i = cold_t0_insns,
        t1 = t1_per,
        t1i = cold_t1_insns,
        sp = ratio,
        kernels = entries.join(",\n")
    );
    // Cargo runs benches with the package dir as CWD; anchor the artifact
    // at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke")
        || std::env::var("PIPELINE_BENCH").is_ok_and(|v| v == "smoke");
    if smoke {
        // CI-sized: skip the slow wall-time microbenches, keep the
        // end-to-end suite that produces the JSON artifact.
        bench_kernels(true);
        return;
    }
    bench_pipeline();
    bench_machine();
    bench_kernels(false);
}
