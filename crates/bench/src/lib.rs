//! # risotto-bench
//!
//! The evaluation harness: shared runners and table formatting for the
//! figure-regenerating binaries (`fig12_parsec_phoenix`,
//! `fig13_openssl_sqlite`, `fig14_mathlib`, `fig15_cas`,
//! `verify_mappings`) and the Criterion micro-benchmarks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use risotto_core::{Emulator, HostLibrary, Idl, Report, Setup};
use risotto_guest_x86::GuestBinary;
use risotto_host_arm::CostModel;

/// Simulated host clock (the paper's testbed runs at 2.0 GHz).
pub const CLOCK_HZ: f64 = 2.0e9;

/// Runs a binary under a setup, optionally linking the standard host
/// libraries (libm + libcrypto + libkv).
///
/// # Panics
///
/// Panics on any emulation error — benchmarks must run clean.
pub fn run(bin: &GuestBinary, setup: Setup, cores: usize, link: bool) -> Report {
    let mut emu = Emulator::new(bin, setup, cores, CostModel::thunderx2_like());
    if link {
        let idl = Idl::parse(risotto_nativelib::hostlibs::IDL_TEXT).expect("IDL parses");
        for lib in [
            risotto_nativelib::hostlibs::libm(),
            risotto_nativelib::hostlibs::libcrypto(),
            risotto_nativelib::hostlibs::libkv(),
        ] {
            let lib: HostLibrary = lib;
            emu.link_library(bin, &idl, lib).expect("standard libraries match the IDL");
        }
    }
    emu.run(20_000_000_000).unwrap_or_else(|e| panic!("{}: {e}", setup.name()))
}

/// Converts simulated cycles to operations per second for `ops`
/// operations.
pub fn ops_per_sec(ops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    ops as f64 * CLOCK_HZ / cycles as f64
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(part: u64, whole: u64) -> String {
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}

/// Formats a speedup.
pub fn speedup(base: u64, new: u64) -> String {
    format!("{:.2}x", base as f64 / new as f64)
}
