//! # risotto-bench
//!
//! The evaluation harness: shared runners and table formatting for the
//! figure-regenerating binaries (`fig12_parsec_phoenix`,
//! `fig13_openssl_sqlite`, `fig14_mathlib`, `fig15_cas`,
//! `verify_mappings`) and the Criterion micro-benchmarks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::OnceLock;

use risotto_core::obs::{HotTb, MetricsSnapshot};
use risotto_core::{
    BackendKind, Emulator, HostLibrary, Idl, Report, Setup, TierConfig, VerifyLevel,
};
use risotto_guest_x86::GuestBinary;

/// Simulated host clock (the paper's testbed runs at 2.0 GHz).
pub const CLOCK_HZ: f64 = 2.0e9;

/// How many hot TBs each workload records in the metrics artifact.
pub const HOT_TB_TOP_N: usize = 10;

/// The tier pin selected by `--tiers` for this process, applied by the
/// shared runners to every DBT emulator they construct. Set once by
/// [`BenchCli::parse_with`]; `None` (flag absent, or `--tiers 1`) keeps
/// today's tier-1-only default.
static TIER_POLICY: OnceLock<Option<TierConfig>> = OnceLock::new();

/// The process-wide tier pin from `--tiers`, if one was selected.
pub fn tier_policy() -> Option<TierConfig> {
    TIER_POLICY.get().copied().flatten()
}

/// The analysis toggle selected by `--analysis` for this process,
/// applied by the shared runners to every DBT emulator they construct.
/// Set once by [`BenchCli::parse_with`]; benchmarks default to **on**
/// (the flag exists to measure the unrelaxed baseline).
static ANALYSIS_POLICY: OnceLock<bool> = OnceLock::new();

/// The process-wide analysis toggle from `--analysis` (default `true`).
pub fn analysis_policy() -> bool {
    ANALYSIS_POLICY.get().copied().unwrap_or(true)
}

/// Runs a binary under a setup, optionally linking the standard host
/// libraries (libm + libcrypto + libkv).
///
/// # Panics
///
/// Panics on any emulation error — benchmarks must run clean.
pub fn run(bin: &GuestBinary, setup: Setup, cores: usize, link: bool) -> Report {
    run_on(bin, setup, cores, link, BackendKind::Arm)
}

/// The backend actually used for a setup: the native oracle models
/// Arm-compiled binaries and stays on Arm whatever `--backend` says;
/// every DBT setup honours the requested backend.
pub fn effective_backend(setup: Setup, requested: BackendKind) -> BackendKind {
    if setup == Setup::Native {
        BackendKind::Arm
    } else {
        requested
    }
}

/// Like [`run`], but on an explicit host backend (docs/BACKENDS.md).
/// The machine is priced with that backend's cost model, so cycle
/// numbers are comparable only within one backend.
///
/// # Panics
///
/// Panics on any emulation error — benchmarks must run clean.
pub fn run_on(
    bin: &GuestBinary,
    setup: Setup,
    cores: usize,
    link: bool,
    backend: BackendKind,
) -> Report {
    let backend = effective_backend(setup, backend);
    let mut emu = Emulator::new(bin, setup, cores, backend.cost_model());
    emu.set_backend(backend);
    // Install-time read-back is free (no simulated cycles), so every
    // benchmark run keeps it on: `verify.violations` must be zero in
    // any artifact the harness produces.
    emu.set_verify(VerifyLevel::Install);
    // A `--tiers` pin and the `--analysis` toggle apply to every DBT
    // setup; the native oracle runs precompiled host code and has
    // neither translation tiers nor fence obligations to relax.
    if setup != Setup::Native {
        if let Some(cfg) = tier_policy() {
            emu.set_tiering(Some(cfg));
        }
        emu.set_analysis(analysis_policy());
    }
    if link {
        let idl = Idl::parse(risotto_nativelib::hostlibs::IDL_TEXT).expect("IDL parses");
        for lib in [
            risotto_nativelib::hostlibs::libm(),
            risotto_nativelib::hostlibs::libcrypto(),
            risotto_nativelib::hostlibs::libkv(),
        ] {
            let lib: HostLibrary = lib;
            emu.link_library(bin, &idl, lib).expect("standard libraries match the IDL");
        }
    }
    emu.run(20_000_000_000).unwrap_or_else(|e| panic!("{}: {e}", setup.name()))
}

/// Like [`run`], but with full observability enabled (stage timing +
/// hot-TB profiling): returns the legacy [`Report`] alongside a
/// [`MetricsSnapshot`] and the hottest TBs.
///
/// The snapshot is cross-checked against the report before returning —
/// every fence / chain / fallback counter in the registry must equal its
/// legacy `Report` source, so a `--metrics-json` run is self-verifying.
///
/// # Panics
///
/// Panics on any emulation error or on a registry/`Report` mismatch.
pub fn run_with_metrics(
    bin: &GuestBinary,
    setup: Setup,
    cores: usize,
    link: bool,
) -> (Report, MetricsSnapshot, Vec<HotTb>) {
    run_with_metrics_on(bin, setup, cores, link, BackendKind::Arm)
}

/// Like [`run_with_metrics`], but on an explicit host backend. On the
/// TSO backend the `fence.exec.dmb_ff` counter counts executed
/// `MFENCE`s (the only barrier MiniTSO emits); `dmb_ld`/`dmb_st` stay 0.
///
/// # Panics
///
/// Panics on any emulation error or on a registry/`Report` mismatch.
pub fn run_with_metrics_on(
    bin: &GuestBinary,
    setup: Setup,
    cores: usize,
    link: bool,
    backend: BackendKind,
) -> (Report, MetricsSnapshot, Vec<HotTb>) {
    let backend = effective_backend(setup, backend);
    let mut emu = Emulator::new(bin, setup, cores, backend.cost_model());
    emu.set_backend(backend);
    emu.set_verify(VerifyLevel::Install);
    emu.set_stage_timing(true);
    emu.set_profiling(true);
    if setup != Setup::Native {
        if let Some(cfg) = tier_policy() {
            emu.set_tiering(Some(cfg));
        }
        emu.set_analysis(analysis_policy());
    }
    if link {
        let idl = Idl::parse(risotto_nativelib::hostlibs::IDL_TEXT).expect("IDL parses");
        for lib in [
            risotto_nativelib::hostlibs::libm(),
            risotto_nativelib::hostlibs::libcrypto(),
            risotto_nativelib::hostlibs::libkv(),
        ] {
            let lib: HostLibrary = lib;
            emu.link_library(bin, &idl, lib).expect("standard libraries match the IDL");
        }
    }
    let report = emu.run(20_000_000_000).unwrap_or_else(|e| panic!("{}: {e}", setup.name()));
    let snap = emu.metrics();
    let hot = emu.hot_tbs(HOT_TB_TOP_N);
    for (metric, legacy) in [
        ("translate.blocks", report.tb_count as u64),
        ("translate.retranslations", report.retranslations as u64),
        ("translate.fallback_blocks", report.fallback_blocks as u64),
        ("opt.fences_merged", report.opt.fences_merged as u64),
        ("opt.loads_forwarded", report.opt.loads_forwarded as u64),
        ("opt.stores_eliminated", report.opt.stores_eliminated as u64),
        ("chain.hits", report.chain.chain_hits),
        ("chain.links", report.chain.chain_links),
        ("chain.flushes", report.chain.chain_flushes),
        ("jcache.hits", report.chain.dispatch_hits),
        ("jcache.misses", report.chain.dispatch_misses),
        ("fence.exec.dmb_ld", report.stats.dmb[0]),
        ("fence.exec.dmb_st", report.stats.dmb[1]),
        ("fence.exec.dmb_ff", report.stats.dmb[2]),
        ("fence.exec.cycles", report.stats.fence_cycles),
        ("exec.insns", report.stats.insns),
    ] {
        assert_eq!(
            snap.counter(metric),
            legacy,
            "metric `{metric}` diverged from its legacy Report source"
        );
    }
    assert_eq!(snap.gauge("exec.cycles"), report.cycles, "exec.cycles gauge diverged");
    (report, snap, hot)
}

/// Runs `bin` under [`Setup::Risotto`] on `backend`, collecting a
/// [`MetricsEntry`] into `metrics` when it is `Some` (i.e. when
/// `--metrics-json` was requested) and falling back to a plain
/// [`run_on`] otherwise.
pub fn run_risotto_collecting(
    bin: &GuestBinary,
    name: &str,
    cores: usize,
    link: bool,
    metrics: &mut Option<Vec<MetricsEntry>>,
    backend: BackendKind,
) -> Report {
    match metrics {
        Some(entries) => {
            let (report, snapshot, hot_tbs) =
                run_with_metrics_on(bin, Setup::Risotto, cores, link, backend);
            entries.push(MetricsEntry {
                name: name.to_string(),
                setup: Setup::Risotto.name(),
                snapshot,
                hot_tbs,
            });
            report
        }
        None => run_on(bin, Setup::Risotto, cores, link, backend),
    }
}

/// One workload's entry in a `--metrics-json` artifact.
#[derive(Debug)]
pub struct MetricsEntry {
    /// Workload name.
    pub name: String,
    /// Setup the metrics were collected under.
    pub setup: &'static str,
    /// The registry snapshot.
    pub snapshot: MetricsSnapshot,
    /// The hottest TBs ([`HOT_TB_TOP_N`]), hottest first.
    pub hot_tbs: Vec<HotTb>,
}

/// The common command line every `risotto-bench` binary accepts: the
/// shared flags (`--smoke`, `--metrics-json <path>` /
/// `--metrics-json=<path>`, `--backend arm|tso`, `--tiers 0|1|2`), any
/// value-carrying flags the binary declares up front (e.g. the fuzzer's
/// `--seed` / `--iters`), plus whatever positional arguments the binary
/// itself defines. Unknown `--flags` are rejected uniformly.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BenchCli {
    /// `--smoke` was passed (bounded quick mode).
    pub smoke: bool,
    /// Path from `--metrics-json`, when requested.
    pub metrics_json: Option<String>,
    /// Host backend from `--backend` (docs/BACKENDS.md); Arm when the
    /// flag is absent. The native-oracle setup always stays on Arm
    /// (see [`effective_backend`]).
    pub backend: BackendKind,
    /// Tier ceiling from `--tiers` (docs/ARCHITECTURE.md): `0` pins
    /// every block to the tier-0 template translator, `1` is today's
    /// tier-1-only default, `2` enables the full three-tier ladder
    /// (templates → IR pipeline → superblocks). `None` when absent.
    pub tiers: Option<u8>,
    /// Whole-program analysis toggle from `--analysis on|off`
    /// (docs/ANALYSIS.md). `None` when absent — the shared runners
    /// default to on.
    pub analysis: Option<bool>,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
    /// Values of the declared extra flags, in the order given
    /// (last occurrence wins via [`BenchCli::value`]).
    pub values: Vec<(String, String)>,
}

impl BenchCli {
    /// Parses the process arguments; prints an error naming `tool` and
    /// exits with status 2 on an unknown flag or a missing flag value.
    pub fn parse(tool: &str) -> BenchCli {
        Self::parse_with(tool, &[])
    }

    /// Like [`BenchCli::parse`], but additionally accepting the declared
    /// value-carrying flags (each named with its leading `--`, accepted
    /// as `--flag v` or `--flag=v`).
    pub fn parse_with(tool: &str, declared: &[&str]) -> BenchCli {
        match Self::try_parse_with(std::env::args().skip(1), declared) {
            Ok(cli) => {
                // Publish the tier pin and analysis toggle for the
                // shared runners; first parse in the process wins
                // (binaries parse once).
                let _ = TIER_POLICY.set(cli.tier_config());
                let _ = ANALYSIS_POLICY.set(cli.analysis.unwrap_or(true));
                cli
            }
            Err(msg) => {
                eprintln!("{tool}: {msg}");
                let extra: String = declared.iter().map(|f| format!(", {f} <value>")).collect();
                eprintln!(
                    "{tool}: supported flags: --smoke, --metrics-json <path>, --backend arm|tso, --tiers 0|1|2, --analysis on|off{extra}"
                );
                std::process::exit(2);
            }
        }
    }

    /// Flag parsing behind [`BenchCli::parse`], separated for testing.
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<BenchCli, String> {
        Self::try_parse_with(args, &[])
    }

    /// Flag parsing behind [`BenchCli::parse_with`], separated for
    /// testing.
    pub fn try_parse_with(
        args: impl Iterator<Item = String>,
        declared: &[&str],
    ) -> Result<BenchCli, String> {
        let mut cli = BenchCli::default();
        let mut args = args;
        'arg: while let Some(a) = args.next() {
            if a == "--smoke" {
                cli.smoke = true;
            } else if a == "--metrics-json" {
                cli.metrics_json =
                    Some(args.next().ok_or("--metrics-json requires a path".to_owned())?);
            } else if let Some(p) = a.strip_prefix("--metrics-json=") {
                cli.metrics_json = Some(p.to_owned());
            } else if a == "--backend" {
                let v = args.next().ok_or("--backend requires `arm` or `tso`".to_owned())?;
                cli.backend = BackendKind::parse(&v)
                    .ok_or(format!("--backend `{v}`: expected `arm` or `tso`"))?;
            } else if let Some(v) = a.strip_prefix("--backend=") {
                cli.backend = BackendKind::parse(v)
                    .ok_or(format!("--backend `{v}`: expected `arm` or `tso`"))?;
            } else if a == "--tiers" {
                let v = args.next().ok_or("--tiers requires `0`, `1` or `2`".to_owned())?;
                cli.tiers = Some(Self::parse_tiers(&v)?);
            } else if let Some(v) = a.strip_prefix("--tiers=") {
                cli.tiers = Some(Self::parse_tiers(v)?);
            } else if a == "--analysis" {
                let v = args.next().ok_or("--analysis requires `on` or `off`".to_owned())?;
                cli.analysis = Some(Self::parse_analysis(&v)?);
            } else if let Some(v) = a.strip_prefix("--analysis=") {
                cli.analysis = Some(Self::parse_analysis(v)?);
            } else if a.starts_with("--") {
                for f in declared {
                    if a == *f {
                        let v = args.next().ok_or(format!("{f} requires a value"))?;
                        cli.values.push((f.to_string(), v));
                        continue 'arg;
                    }
                    if let Some(v) = a.strip_prefix(&format!("{f}=")) {
                        cli.values.push((f.to_string(), v.to_owned()));
                        continue 'arg;
                    }
                }
                return Err(format!("unknown flag `{a}`"));
            } else {
                cli.positional.push(a);
            }
        }
        Ok(cli)
    }

    fn parse_tiers(v: &str) -> Result<u8, String> {
        match v {
            "0" => Ok(0),
            "1" => Ok(1),
            "2" => Ok(2),
            _ => Err(format!("--tiers `{v}`: expected `0`, `1` or `2`")),
        }
    }

    fn parse_analysis(v: &str) -> Result<bool, String> {
        match v {
            "on" => Ok(true),
            "off" => Ok(false),
            _ => Err(format!("--analysis `{v}`: expected `on` or `off`")),
        }
    }

    /// The tier policy the `--tiers` selection pins on every DBT
    /// emulator the shared runners build:
    ///
    /// * `--tiers 0` — templates only: every block stays tier-0 forever
    ///   (both thresholds at `u64::MAX` never fire, so nothing is ever
    ///   re-translated through the IR pipeline or promoted).
    /// * `--tiers 1` (or no flag) — today's default: the IR pipeline
    ///   translates everything, no tiering at all (`None`).
    /// * `--tiers 2` — the full ladder: cold blocks via templates, warm
    ///   blocks re-translated at 32 entries, hot traces promoted to
    ///   superblocks at the default threshold.
    pub fn tier_config(&self) -> Option<TierConfig> {
        match self.tiers {
            Some(0) => Some(TierConfig {
                hot_threshold: u64::MAX,
                warm_threshold: Some(u64::MAX),
                ..TierConfig::default()
            }),
            Some(2) => Some(TierConfig { warm_threshold: Some(32), ..TierConfig::default() }),
            _ => None,
        }
    }

    /// The value of a declared flag (last occurrence wins).
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.iter().rev().find(|(f, _)| f == flag).map(|(_, v)| v.as_str())
    }

    /// Parses a declared flag's value as an integer, with a default when
    /// the flag was not passed.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn u64_value(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => {
                let (src, radix) = match v.strip_prefix("0x") {
                    Some(hex) => (hex, 16),
                    None => (v, 10),
                };
                u64::from_str_radix(src, radix).map_err(|e| format!("{flag} `{v}`: {e}"))
            }
        }
    }
}

/// Writes the versioned metrics artifact shared by every `fig*` binary
/// and `fault_sweep`:
/// `{"version":1,"tool":…,"workloads":[{name,setup,hot_tbs,metrics},…]}`.
///
/// # Panics
///
/// Panics if the file cannot be written — a requested artifact that
/// silently fails to appear would be worse.
pub fn write_metrics_json(path: &str, tool: &str, entries: &[MetricsEntry]) {
    let mut workloads = Vec::with_capacity(entries.len());
    for e in entries {
        let hot: Vec<String> = e
            .hot_tbs
            .iter()
            .map(|t| {
                format!(
                    "{{\"tb_id\": {}, \"guest_pc\": {}, \"execs\": {}, \"chain_misses\": {}}}",
                    t.tb_id, t.guest_pc, t.execs, t.chain_misses
                )
            })
            .collect();
        workloads.push(format!(
            "    {{\"name\": \"{}\", \"setup\": \"{}\", \"hot_tbs\": [{}],\n     \"metrics\": {}}}",
            e.name,
            e.setup,
            hot.join(", "),
            e.snapshot.to_json()
        ));
    }
    let json = format!(
        "{{\n  \"version\": 1,\n  \"tool\": \"{tool}\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        workloads.join(",\n")
    );
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote metrics artifact: {path}");
}

/// Converts simulated cycles to operations per second for `ops`
/// operations.
pub fn ops_per_sec(ops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    ops as f64 * CLOCK_HZ / cycles as f64
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(part: u64, whole: u64) -> String {
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}

/// Formats a speedup.
pub fn speedup(base: u64, new: u64) -> String {
    format!("{:.2}x", base as f64 / new as f64)
}

#[cfg(test)]
mod tests {
    use super::BenchCli;

    fn parse(args: &[&str]) -> Result<BenchCli, String> {
        BenchCli::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn shared_flags_and_positionals_parse_in_any_order() {
        let cli = parse(&["120", "--smoke", "--metrics-json", "out.json", "extra"]).unwrap();
        assert!(cli.smoke);
        assert_eq!(cli.metrics_json.as_deref(), Some("out.json"));
        assert_eq!(cli.positional, vec!["120", "extra"]);
        let cli = parse(&["--metrics-json=m.json"]).unwrap();
        assert_eq!(cli.metrics_json.as_deref(), Some("m.json"));
        assert_eq!(parse(&[]).unwrap(), BenchCli::default());
    }

    #[test]
    fn unknown_flags_and_missing_values_are_rejected() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--smokey"]).is_err());
        assert!(parse(&["--metrics-json"]).is_err());
    }

    #[test]
    fn backend_flag_parses_and_rejects_unknown_hosts() {
        use risotto_core::BackendKind;
        assert_eq!(parse(&[]).unwrap().backend, BackendKind::Arm);
        assert_eq!(parse(&["--backend", "tso"]).unwrap().backend, BackendKind::Tso);
        assert_eq!(parse(&["--backend=arm"]).unwrap().backend, BackendKind::Arm);
        assert!(parse(&["--backend"]).is_err());
        assert!(parse(&["--backend", "riscv"]).is_err());
        assert!(parse(&["--backend=x86"]).is_err());
    }

    #[test]
    fn tiers_flag_parses_and_rejects_invalid_combinations() {
        use risotto_core::TierConfig;
        assert_eq!(parse(&[]).unwrap().tiers, None);
        assert_eq!(parse(&["--tiers", "0"]).unwrap().tiers, Some(0));
        assert_eq!(parse(&["--tiers=2"]).unwrap().tiers, Some(2));
        assert!(parse(&["--tiers"]).is_err(), "missing value");
        assert!(parse(&["--tiers", "3"]).is_err(), "out-of-range tier");
        assert!(parse(&["--tiers=templates"]).is_err(), "non-numeric tier");
        assert!(parse(&["--tiers=01"]).is_err(), "non-canonical spelling");

        // Tier 1 (and the flag's absence) keep the engine default; 0
        // pins templates forever; 2 opens the whole ladder.
        assert_eq!(parse(&[]).unwrap().tier_config(), None);
        assert_eq!(parse(&["--tiers", "1"]).unwrap().tier_config(), None);
        let t0 = parse(&["--tiers", "0"]).unwrap().tier_config().unwrap();
        assert_eq!(t0.hot_threshold, u64::MAX);
        assert_eq!(t0.warm_threshold, Some(u64::MAX));
        let t2 = parse(&["--tiers", "2"]).unwrap().tier_config().unwrap();
        assert_eq!(t2.hot_threshold, TierConfig::default().hot_threshold);
        assert_eq!(t2.warm_threshold, Some(32));
    }

    #[test]
    fn analysis_flag_parses_and_rejects_invalid_values() {
        assert_eq!(parse(&[]).unwrap().analysis, None);
        assert_eq!(parse(&["--analysis", "on"]).unwrap().analysis, Some(true));
        assert_eq!(parse(&["--analysis=off"]).unwrap().analysis, Some(false));
        assert!(parse(&["--analysis"]).is_err(), "missing value");
        assert!(parse(&["--analysis", "maybe"]).is_err(), "invalid value");
        assert!(parse(&["--analysis=1"]).is_err(), "numeric spelling rejected");
    }

    #[test]
    fn declared_flags_parse_in_both_spellings_and_last_wins() {
        let parse_with = |args: &[&str]| {
            BenchCli::try_parse_with(args.iter().map(|s| s.to_string()), &["--seed", "--iters"])
        };
        let cli =
            parse_with(&["--seed", "7", "--iters=100", "--smoke", "--seed=0x2a", "pos"]).unwrap();
        assert!(cli.smoke);
        assert_eq!(cli.value("--seed"), Some("0x2a"));
        assert_eq!(cli.u64_value("--seed", 1).unwrap(), 0x2a);
        assert_eq!(cli.u64_value("--iters", 1).unwrap(), 100);
        assert_eq!(cli.u64_value("--unset", 9).unwrap(), 9);
        assert_eq!(cli.positional, vec!["pos"]);
        assert!(parse_with(&["--seed"]).is_err(), "declared flag with no value");
        assert!(parse_with(&["--seeds=1"]).is_err(), "near-miss flag still unknown");
        assert!(parse_with(&["--seed=zz"]).unwrap().u64_value("--seed", 0).is_err());
    }
}
