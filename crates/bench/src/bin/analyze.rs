//! Whole-program static analysis over the benchmark corpora
//! (docs/ANALYSIS.md): runs `risotto_analysis::analyze_image` on the 16
//! Fig. 12 kernels and the x86 litmus corpus and reports per-image site
//! classifications, poisons and lint findings.
//!
//! ```sh
//! cargo run --release -p risotto-bench --bin analyze -- \
//!     [--smoke] [kernels|litmus|all] [--json <path>]
//! ```
//!
//! `--json <path>` writes a machine-readable artifact; ci.sh gates it:
//! both corpora must be lint-free (no false positives on known-clean
//! images) and at least one kernel must have relaxable accesses, or the
//! analysis subsystem has gone dead.

use risotto_analysis::{analyze_image, AnalysisSummary, ImageFacts};
use risotto_bench::BenchCli;
use risotto_guest_x86::GuestBinary;
use risotto_litmus::corpus;
use risotto_workloads::{kernels, litmus_compile::compile_litmus};

/// One analyzed image, ready for both the console table and the JSON
/// artifact.
struct Row {
    name: String,
    facts: ImageFacts,
    summary: AnalysisSummary,
}

fn analyze_named(name: &str, bin: &GuestBinary) -> Row {
    let facts = analyze_image(bin);
    let summary = facts.summary();
    Row { name: name.to_owned(), facts, summary }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Row {
    fn to_json(&self) -> String {
        let s = &self.summary;
        let poisons: Vec<String> =
            self.facts.poisons.iter().map(|p| format!("\"{}\"", json_escape(p.tag()))).collect();
        let lints: Vec<String> = self
            .facts
            .lints
            .iter()
            .map(|f| {
                format!(
                    "{{\"kind\": \"{}\", \"pc\": {}, \"detail\": \"{}\"}}",
                    f.kind.tag(),
                    f.pc,
                    json_escape(&f.detail)
                )
            })
            .collect();
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"hash\": \"{:#018x}\", \"sites\": {}, ",
                "\"private\": {}, \"readonly\": {}, \"shared\": {}, \"atomics\": {}, ",
                "\"relaxable\": {}, \"instances\": {}, \"refined_loops\": {}, ",
                "\"poisons\": [{}], \"lints\": [{}]}}"
            ),
            json_escape(&self.name),
            self.facts.hash,
            s.sites,
            s.private,
            s.readonly,
            s.shared,
            s.atomics,
            s.relaxable,
            s.instances,
            s.refined_loops,
            poisons.join(", "),
            lints.join(", ")
        )
    }

    fn print(&self) {
        let s = &self.summary;
        println!(
            "{:28} {:>4} sites  {:>3} priv  {:>3} ro  {:>3} shared  {:>3} atomic  {:>4} relaxable  {:>2} cores  {:>2} poisons  {:>2} lints",
            self.name,
            s.sites,
            s.private,
            s.readonly,
            s.shared,
            s.atomics,
            s.relaxable,
            s.instances,
            s.poisons,
            s.lints
        );
        for p in &self.facts.poisons {
            println!("{:28}   poison: {}", "", p.tag());
        }
        for f in &self.facts.lints {
            println!("{:28}   lint {:#x}: [{}] {}", "", f.pc, f.kind.tag(), f.detail);
        }
    }
}

fn main() {
    let cli = BenchCli::parse_with("analyze", &["--json"]);
    let which = cli.positional.first().map(String::as_str).unwrap_or("all");
    let (scale, threads) = if cli.smoke { (4, 2) } else { (64, 2) };

    let mut kernel_rows = Vec::new();
    if which == "kernels" || which == "all" {
        println!("=== kernel corpus (scale {scale}, {threads} threads) ===");
        for w in kernels::all() {
            let row = analyze_named(w.name, &(w.build)(scale, threads));
            row.print();
            kernel_rows.push(row);
        }
    }

    let mut litmus_rows = Vec::new();
    if which == "litmus" || which == "all" {
        println!("\n=== litmus corpus (x86-flavoured) ===");
        for prog in [corpus::mp(), corpus::sb(), corpus::sb_fenced(), corpus::lb(), corpus::iriw()]
        {
            let compiled = compile_litmus(&prog, &vec![0; prog.threads.len()]);
            let row = analyze_named(&prog.name, &compiled.binary);
            row.print();
            litmus_rows.push(row);
        }
    }

    if !(which == "kernels" || which == "litmus" || which == "all") {
        eprintln!("analyze: unknown corpus `{which}` (try kernels/litmus/all)");
        std::process::exit(2);
    }

    let lints: u64 = kernel_rows.iter().chain(&litmus_rows).map(|r| r.summary.lints).sum();
    let relaxable: u64 = kernel_rows.iter().map(|r| r.summary.relaxable).sum();
    println!(
        "\ntotal: {} images, {} lint findings, {} relaxable kernel accesses",
        kernel_rows.len() + litmus_rows.len(),
        lints,
        relaxable
    );

    if let Some(path) = cli.value("--json") {
        let section = |rows: &[Row]| rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",\n");
        let json = format!(
            "{{\n  \"version\": 1,\n  \"kernels\": [\n{}\n  ],\n  \"litmus\": [\n{}\n  ]\n}}\n",
            section(&kernel_rows),
            section(&litmus_rows)
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
