//! Ablation of the §6.3 CAS translation choices on the Fig. 15 workload:
//!
//! * `helper`  — QEMU's scheme: jump out to a runtime helper (Fig. 2),
//! * `rmw2+ff` — direct translation to `DMBFF; LDXR/STXR; DMBFF`
//!   (the Fig. 7b lowering that is correct under the *original* Arm model),
//! * `casal`   — Risotto's single-instruction translation (needs the
//!   corrected Arm model of §3.3).

use risotto_bench::{ops_per_sec, print_table, run, BenchCli};
use risotto_core::{BackendKind, Emulator, RmwStyle, Setup};
use risotto_host_arm::CostModel;
use risotto_workloads::cas::{cas_bench, FIG15_CONFIGS};

fn main() {
    let cli = BenchCli::parse("ablation_cas");
    if cli.backend != BackendKind::Arm {
        // The rmw2+ff column is an exclusive-pair lowering; the MiniTSO
        // dialect has no exclusives, so this ablation is Arm-only.
        eprintln!(
            "ablation_cas compares Arm CAS lowerings; --backend {} is not applicable",
            cli.backend.name()
        );
        std::process::exit(2);
    }
    println!("CAS-translation ablation (Mops/s; §6.3)\n");
    let iters = if cli.smoke { 200u64 } else { 2000u64 };
    let mut rows = Vec::new();
    for (threads, vars) in FIG15_CONFIGS {
        let bin = cas_bench(iters, threads, vars);
        let total = iters * threads as u64;
        // helper: the qemu setup (helper-call CAS).
        let helper = run(&bin, Setup::Qemu, threads, false);
        // direct, rmw2-fenced.
        let mut emu = Emulator::new(&bin, Setup::Risotto, threads, CostModel::thunderx2_like());
        emu.set_rmw_style(RmwStyle::Rmw2Fenced);
        let rmw2 = emu.run(20_000_000_000).unwrap();
        // direct, casal.
        let casal = run(&bin, Setup::Risotto, threads, false);
        for r in [&helper, &rmw2, &casal] {
            assert_eq!(r.exit_vals[0], Some(total));
        }
        rows.push(vec![
            format!("{threads}-{vars}"),
            format!("{:.1}", ops_per_sec(total, helper.cycles) / 1e6),
            format!("{:.1}", ops_per_sec(total, rmw2.cycles) / 1e6),
            format!("{:.1}", ops_per_sec(total, casal.cycles) / 1e6),
        ]);
    }
    print_table(&["config", "helper", "rmw2+ff", "casal"], &rows);
    println!("\ncasal wins uncontended (no helper round-trip, no fence bracket);");
    println!("under contention all three converge on the line transfer cost.");
}
