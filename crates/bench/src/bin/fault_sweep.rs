//! Fault-injection sweep over the Fig. 12 workloads: seeded fault plans
//! hammer every pipeline layer while the run is checked against the
//! fault-free reference interpreter (DESIGN.md §11).
//!
//! ```sh
//! cargo run --release -p risotto-bench --bin fault_sweep -- \
//!     [seeds] [--metrics-json <path>]
//! ```
//!
//! With `--metrics-json`, each workload additionally runs once under the
//! risotto setup with a fault plan covering every site, and the registry
//! snapshot + hot-TB profile of that faulted-but-recovered run (nonzero
//! `translate.fallback_blocks` / `fault.injected`) land in the artifact.

use risotto_bench::{print_table, BenchCli, MetricsEntry, HOT_TB_TOP_N};
use risotto_core::{Emulator, FaultPlan, FaultSite, Setup};
use risotto_guest_x86::Interp;
use risotto_host_arm::CostModel;
use risotto_workloads::kernels;

const FUEL: u64 = 2_000_000_000;

fn plan_for(seed: u64) -> FaultPlan {
    let mut p = FaultPlan::seeded(seed);
    match seed % 4 {
        0 => p = p.rate(FaultSite::Translate, 2000),
        1 => p = p.rate(FaultSite::Lower, 2000),
        2 => p = p.rate(FaultSite::TbCache, 4000),
        _ => {
            p = p
                .rate(FaultSite::Translate, 900)
                .rate(FaultSite::Lower, 900)
                .rate(FaultSite::TbCache, 2000);
        }
    }
    if seed % 10 == 9 {
        p = p.fail_syscall_at(seed % 7);
    }
    p
}

fn main() {
    let cli = BenchCli::parse("fault_sweep");
    let seeds: u64 = cli.positional.first().and_then(|a| a.parse().ok()).unwrap_or(200);
    let metrics_path = cli.metrics_json;
    let mut metrics: Vec<MetricsEntry> = Vec::new();
    let setups = [Setup::Qemu, Setup::TcgVer, Setup::Risotto, Setup::Native];
    println!("Fault sweep: {seeds} seeded plans per workload, rotating setups\n");
    let mut rows = Vec::new();
    let mut divergences = 0u64;
    for w in kernels::all() {
        let bin = (w.build)(8, 2);
        let mut interp = Interp::new(&bin);
        interp.run(FUEL).expect("reference interpreter");
        let (ref_exit, ref_out) = (interp.exit_val(0), interp.output.clone());

        let (mut ok, mut errs, mut fallbacks, mut retrans) = (0u64, 0u64, 0usize, 0usize);
        let (mut links, mut flushes) = (0u64, 0u64);
        for seed in 0..seeds {
            let setup = setups[(seed % setups.len() as u64) as usize];
            let mut emu = Emulator::new(&bin, setup, 2, CostModel::thunderx2_like());
            if setup != Setup::Native {
                if let Some(tiers) = risotto_bench::tier_policy() {
                    emu.set_tiering(Some(tiers));
                }
            }
            emu.set_fault_plan(plan_for(seed));
            match emu.run(FUEL) {
                Ok(r) => {
                    if r.exit_vals[0] != Some(ref_exit) || r.output != ref_out {
                        divergences += 1;
                    }
                    ok += 1;
                    fallbacks += r.fallback_blocks;
                    retrans += r.retranslations;
                    links += r.chain.chain_links;
                    flushes += r.chain.chain_flushes;
                }
                Err(_) => errs += 1,
            }
        }
        if metrics_path.is_some() {
            // One extra instrumented risotto run under an aggressive
            // all-sites plan (~12% per decision — the sweep's background
            // rates rarely fire on these small blocks), so the artifact
            // shows the recovery counters moving.
            let plan = FaultPlan::seeded(3)
                .rate(FaultSite::Translate, 8000)
                .rate(FaultSite::Lower, 8000)
                .rate(FaultSite::TbCache, 8000);
            let mut emu = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
            if let Some(tiers) = risotto_bench::tier_policy() {
                emu.set_tiering(Some(tiers));
            }
            emu.set_fault_plan(plan);
            emu.set_stage_timing(true);
            emu.set_profiling(true);
            let r = emu.run(FUEL).expect("instrumented risotto run completes");
            assert_eq!(r.exit_vals[0], Some(ref_exit), "{} instrumented run diverged", w.name);
            metrics.push(MetricsEntry {
                name: w.name.to_string(),
                setup: Setup::Risotto.name(),
                snapshot: emu.metrics(),
                hot_tbs: emu.hot_tbs(HOT_TB_TOP_N),
            });
        }
        rows.push(vec![
            w.name.to_string(),
            ok.to_string(),
            errs.to_string(),
            fallbacks.to_string(),
            retrans.to_string(),
            links.to_string(),
            flushes.to_string(),
        ]);
    }
    print_table(
        &[
            "workload",
            "completed",
            "typed errors",
            "fallback TBs",
            "retranslations",
            "chain links",
            "chain flushes",
        ],
        &rows,
    );
    if let Some(path) = metrics_path {
        risotto_bench::write_metrics_json(&path, "fault_sweep", &metrics);
    }
    println!();
    if divergences == 0 {
        println!("zero silent divergences: every completed run matched the reference.");
    } else {
        println!("!! {divergences} run(s) diverged from the fault-free reference");
        std::process::exit(1);
    }
}
