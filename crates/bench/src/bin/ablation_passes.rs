//! Ablation study: how much each optimizer pass contributes to the
//! `tcg-ver` setup's performance (the design choices DESIGN.md calls out —
//! notably the §6.1 fence-merging pass that the verified trailing/leading
//! fence placement makes possible).

use risotto_bench::{print_table, BenchCli};
use risotto_core::{Emulator, Setup};
use risotto_host_arm::CostModel;
use risotto_tcg::PassConfig;
use risotto_workloads::kernels;

fn main() {
    let cli = BenchCli::parse("ablation_passes");
    let threads = 2;
    let scale = if cli.smoke { 256 } else { 1024 };
    println!("Optimizer-pass ablation (tcg-ver, % slowdown when the pass is disabled)\n");
    let variants: [(&str, PassConfig); 5] = [
        ("all", PassConfig::all()),
        ("-merge_fences", PassConfig::all_except("merge_fences")),
        ("-forward_memory", PassConfig::all_except("forward_memory")),
        ("-constant_fold", PassConfig::all_except("constant_fold")),
        ("-dce", PassConfig::all_except("dce")),
    ];
    let mut rows = Vec::new();
    for w in kernels::all() {
        let s = if w.name == "matrixmultiply" { 16 } else { scale };
        let bin = (w.build)(s, threads);
        let mut cells = vec![w.name.to_string()];
        let mut base = 0u64;
        let mut expect = None;
        for (i, (_, passes)) in variants.iter().enumerate() {
            let mut emu = Emulator::new(&bin, Setup::TcgVer, threads, CostModel::thunderx2_like());
            emu.set_passes(*passes);
            if let Some(tiers) = risotto_bench::tier_policy() {
                emu.set_tiering(Some(tiers));
            }
            let r = emu.run(10_000_000_000).unwrap();
            match expect {
                None => expect = Some(r.exit_vals[0]),
                Some(e) => {
                    assert_eq!(r.exit_vals[0], e, "{}: ablation changed the result!", w.name)
                }
            }
            if i == 0 {
                base = r.cycles;
                cells.push(format!("{}", r.cycles));
            } else {
                cells.push(format!("+{:.1}%", 100.0 * (r.cycles as f64 / base as f64 - 1.0)));
            }
        }
        rows.push(cells);
    }
    print_table(&["benchmark", "all (cycles)", "-merge", "-forward", "-fold", "-dce"], &rows);
    println!("\nDisabling any pass must never change program results (asserted).");
}
