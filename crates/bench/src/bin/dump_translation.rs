//! Developer tool: dump the full translation pipeline for a guest snippet
//! — guest disassembly, TCG IR before and after optimization, and the
//! lowered host code — under each setup.
//!
//! ```sh
//! cargo run --release -p risotto-bench --bin dump_translation [setup]
//! ```
//!
//! With `--analysis on` the tool instead dumps the whole-program
//! analysis of a representative two-core image: per-access
//! classification (private / read-only / shared / atomic), the
//! relaxation mask for the entry block, and the TCG IR before and
//! after analysis-driven fence relaxation (docs/ANALYSIS.md).

use risotto_analysis::{analyze_image, event_sites, SiteClass};
use risotto_bench::BenchCli;
use risotto_core::Setup;
use risotto_guest_x86::{
    disassemble, syscalls, AluOp, Assembler, FpOp, GelfBuilder, Gpr, Insn, TEXT_BASE,
};
use risotto_host_arm::{lower_block, BackendConfig, RmwStyle};
use risotto_tcg::{optimize, translate_block, verify, FrontendConfig, OptPolicy};

/// The `--analysis on` mode: a two-worker image with disjoint private
/// slices, a read-only input, a shared atomic counter — every
/// classification the escape analysis produces, on one page.
fn dump_analysis() {
    let mut b = GelfBuilder::new("main");
    let out = b.data_zeroed(16);
    let input = b.data_u64(&[123]);
    let counter = b.data_u64(&[0]);
    let a = &mut b.asm;
    a.label("main");
    for i in 0..2u64 {
        a.mov_ri(Gpr::RAX, syscalls::SPAWN);
        a.mov_label(Gpr::RDI, "worker");
        a.mov_ri(Gpr::RSI, i);
        a.syscall();
    }
    a.hlt();
    a.label("worker");
    // slice = out + arg*8: disjoint per worker → private.
    a.mov_rr(Gpr::RBX, Gpr::RDI);
    a.alu_ri(AluOp::Mul, Gpr::RBX, 8);
    a.alu_ri(AluOp::Add, Gpr::RBX, out);
    a.mov_ri(Gpr::RDX, input);
    a.load(Gpr::RCX, Gpr::RDX, 0); // both workers read → read-only
    a.store(Gpr::RBX, 0, Gpr::RCX); // disjoint slices → private
    a.mov_ri(Gpr::RDX, counter);
    a.mov_ri(Gpr::RCX, 1);
    a.insn(Insn::LockXadd { base: Gpr::RDX, disp: 0, src: Gpr::RCX }); // atomic
    a.hlt();
    let bin = b.finish().expect("analysis demo image assembles");

    let facts = analyze_image(&bin);
    println!("=== whole-program analysis (docs/ANALYSIS.md) ===");
    println!("  image hash:    {:#018x}", facts.hash);
    println!(
        "  instances:     {} (root + {} spawned)",
        facts.instances.len(),
        facts.instances.len().saturating_sub(1)
    );
    println!("  poisons:       {:?}", facts.poisons);
    println!("  refined loops: {}", facts.refined_loops);
    println!("\n--- per-access classification ---");
    for (pc, site) in &facts.sites {
        let relaxed = facts.relaxable(*pc);
        println!(
            "  {pc:#07x}  {:<6} w{}  {:<9} {:<28} obligation {}",
            format!("{:?}", site.kind).to_lowercase(),
            site.width,
            site.class.tag(),
            format!("{:?}", site.region),
            if relaxed { "RELAXED" } else { "kept" },
        );
    }
    for finding in &facts.lints {
        println!("  lint {:#07x}: {}", finding.pc, finding.detail);
    }

    // The worker block is where relaxation bites: show the frontend IR
    // before and after `relax_block` removes the scheme fences of the
    // private/read-only events.
    let text = bin.text.clone();
    let fetch = move |addr: u64| {
        let mut w = [0u8; 16];
        for (i, slot) in w.iter_mut().enumerate() {
            if let Some(&byte) = addr.checked_sub(TEXT_BASE).and_then(|o| text.get(o as usize + i))
            {
                *slot = byte;
            }
        }
        w
    };
    let worker = bin.symbols["worker"];
    let fe = FrontendConfig::risotto();
    let mut block = translate_block(worker, fe, &fetch).expect("worker translates");
    let mask = facts.relax_mask(worker, block.guest_len as u64, &fetch);
    println!("\n--- relaxation mask for tb@{worker:#x} (event order) ---");
    for ((pc, plain), m) in event_sites(worker, block.guest_len as u64, &fetch).iter().zip(&mask) {
        let class = facts.sites.get(pc).map(|s| s.class).unwrap_or(SiteClass::Shared);
        println!(
            "  event @{pc:#07x}  {}  {:<9} -> {}",
            if *plain { "plain " } else { "atomic" },
            class.tag(),
            if *m { "relax" } else { "keep" }
        );
    }
    println!("\n--- TCG IR (frontend output: {} ops) ---", block.ops.len());
    for op in &block.ops {
        println!("  {op:?}");
    }
    let removed = verify::relax_block(&mut block, fe.fences, &mask);
    let stats = optimize(&mut block, OptPolicy::Verified);
    println!(
        "--- TCG IR (relaxed {removed} fences, optimized: {} ops; merged {}) ---",
        block.ops.len(),
        stats.fences_merged
    );
    for op in &block.ops {
        println!("  {op:?}");
    }
}

fn main() {
    let cli = BenchCli::parse("dump_translation");
    if cli.analysis == Some(true) {
        dump_analysis();
        return;
    }
    let which = cli.positional.first().cloned().unwrap_or_else(|| "risotto".into());
    let setups: Vec<Setup> = match which.as_str() {
        "all" => Setup::ALL.to_vec(),
        name => vec![*Setup::ALL.iter().find(|s| s.name() == name).unwrap_or_else(|| {
            panic!("unknown setup `{name}` (try qemu/no-fences/tcg-ver/risotto/native/all)")
        })],
    };

    // A representative block: load, FP work, CAS, store.
    let mut a = Assembler::new(0x1000);
    a.load(Gpr::RAX, Gpr::RDI, 0);
    a.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX);
    a.alu_ri(AluOp::Add, Gpr::RAX, 1);
    a.cmpxchg(Gpr::RSI, 0, Gpr::RAX);
    a.store(Gpr::RDI, 8, Gpr::RAX);
    a.hlt();
    let (bytes, _) = a.finish().unwrap();

    println!("=== guest (MiniX86) ===");
    for (addr, insn, _) in disassemble(&bytes, 0x1000) {
        println!("  {addr:#06x}:  {insn}");
    }

    let fetch = |addr: u64| {
        let mut w = [0u8; 16];
        let off = (addr - 0x1000) as usize;
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = bytes.get(off + i).copied().unwrap_or(0);
        }
        w
    };

    for setup in setups {
        let (fe, be, policy) = match setup {
            Setup::Qemu => (
                FrontendConfig::qemu(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::QemuUnsound,
            ),
            Setup::NoFences => (
                FrontendConfig::no_fences(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::QemuUnsound,
            ),
            Setup::TcgVer => (
                FrontendConfig::tcg_ver(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::Verified,
            ),
            Setup::Risotto => (
                FrontendConfig::risotto(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::Verified,
            ),
            Setup::Native => {
                (FrontendConfig::no_fences(), BackendConfig::native(), OptPolicy::Verified)
            }
        };
        println!("\n################ setup: {} ################", setup.name());
        // `--tiers 0`: show what the tier-0 template translator emits
        // for the same block — straight from guest bytes to host code,
        // no IR stage to print (the native oracle has no tiers).
        if cli.tiers == Some(0) && setup != Setup::Native {
            let ord = cli.backend.ordering();
            let tpl = risotto_template::translate_block_template(0x1000, fe, be, ord, fetch)
                .expect("template translation");
            println!(
                "--- tier-0 template host ({}, {} insns from {} guest insns) ---",
                cli.backend.name(),
                tpl.code.len(),
                tpl.insns
            );
            for insn in &tpl.code {
                println!("  {insn:?}");
            }
            continue;
        }
        let mut block = translate_block(0x1000, fe, fetch).unwrap();
        println!("--- TCG IR (frontend output: {} ops) ---", block.ops.len());
        for op in &block.ops {
            println!("  {op:?}");
        }
        let stats = optimize(&mut block, policy);
        println!(
            "--- TCG IR (optimized: {} ops; folded {}, merged {}, dce {}) ---",
            block.ops.len(),
            stats.folded,
            stats.fences_merged,
            stats.dce_removed
        );
        for op in &block.ops {
            println!("  {op:?}");
        }
        println!("  exit: {:?}", block.exit);
        let host = lower_block(&block, be).expect("lowering");
        println!("--- host (MiniArm, {} insns) ---", host.len());
        for insn in &host {
            println!("  {insn:?}");
        }
    }
}
