//! Developer tool: dump the full translation pipeline for a guest snippet
//! — guest disassembly, TCG IR before and after optimization, and the
//! lowered host code — under each setup.
//!
//! ```sh
//! cargo run --release -p risotto-bench --bin dump_translation [setup]
//! ```

use risotto_bench::BenchCli;
use risotto_core::Setup;
use risotto_guest_x86::{disassemble, AluOp, Assembler, FpOp, Gpr};
use risotto_host_arm::{lower_block, BackendConfig, RmwStyle};
use risotto_tcg::{optimize, translate_block, FrontendConfig, OptPolicy};

fn main() {
    let cli = BenchCli::parse("dump_translation");
    let which = cli.positional.first().cloned().unwrap_or_else(|| "risotto".into());
    let setups: Vec<Setup> = match which.as_str() {
        "all" => Setup::ALL.to_vec(),
        name => vec![*Setup::ALL.iter().find(|s| s.name() == name).unwrap_or_else(|| {
            panic!("unknown setup `{name}` (try qemu/no-fences/tcg-ver/risotto/native/all)")
        })],
    };

    // A representative block: load, FP work, CAS, store.
    let mut a = Assembler::new(0x1000);
    a.load(Gpr::RAX, Gpr::RDI, 0);
    a.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX);
    a.alu_ri(AluOp::Add, Gpr::RAX, 1);
    a.cmpxchg(Gpr::RSI, 0, Gpr::RAX);
    a.store(Gpr::RDI, 8, Gpr::RAX);
    a.hlt();
    let (bytes, _) = a.finish().unwrap();

    println!("=== guest (MiniX86) ===");
    for (addr, insn, _) in disassemble(&bytes, 0x1000) {
        println!("  {addr:#06x}:  {insn}");
    }

    let fetch = |addr: u64| {
        let mut w = [0u8; 16];
        let off = (addr - 0x1000) as usize;
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = bytes.get(off + i).copied().unwrap_or(0);
        }
        w
    };

    for setup in setups {
        let (fe, be, policy) = match setup {
            Setup::Qemu => (
                FrontendConfig::qemu(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::QemuUnsound,
            ),
            Setup::NoFences => (
                FrontendConfig::no_fences(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::QemuUnsound,
            ),
            Setup::TcgVer => (
                FrontendConfig::tcg_ver(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::Verified,
            ),
            Setup::Risotto => (
                FrontendConfig::risotto(),
                BackendConfig::dbt(RmwStyle::Casal),
                OptPolicy::Verified,
            ),
            Setup::Native => {
                (FrontendConfig::no_fences(), BackendConfig::native(), OptPolicy::Verified)
            }
        };
        println!("\n################ setup: {} ################", setup.name());
        // `--tiers 0`: show what the tier-0 template translator emits
        // for the same block — straight from guest bytes to host code,
        // no IR stage to print (the native oracle has no tiers).
        if cli.tiers == Some(0) && setup != Setup::Native {
            let ord = cli.backend.ordering();
            let tpl = risotto_template::translate_block_template(0x1000, fe, be, ord, fetch)
                .expect("template translation");
            println!(
                "--- tier-0 template host ({}, {} insns from {} guest insns) ---",
                cli.backend.name(),
                tpl.code.len(),
                tpl.insns
            );
            for insn in &tpl.code {
                println!("  {insn:?}");
            }
            continue;
        }
        let mut block = translate_block(0x1000, fe, fetch).unwrap();
        println!("--- TCG IR (frontend output: {} ops) ---", block.ops.len());
        for op in &block.ops {
            println!("  {op:?}");
        }
        let stats = optimize(&mut block, policy);
        println!(
            "--- TCG IR (optimized: {} ops; folded {}, merged {}, dce {}) ---",
            block.ops.len(),
            stats.folded,
            stats.fences_merged,
            stats.dce_removed
        );
        for op in &block.ops {
            println!("  {op:?}");
        }
        println!("  exit: {:?}", block.exit);
        let host = lower_block(&block, be).expect("lowering");
        println!("--- host (MiniArm, {} insns) ---", host.len());
        for insn in &host {
            println!("  {insn:?}");
        }
    }
}
