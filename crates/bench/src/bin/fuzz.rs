//! Differential fuzzing driver: seeded random MiniX86 programs through
//! the full oracle matrix (interpreter, tier-1, tier-1 without the
//! optimizer, tier-2 with a lowered promotion threshold), with the
//! translation verifier as a second oracle on every DBT run
//! (DESIGN.md §13, docs/FUZZING.md).
//!
//! ```sh
//! cargo run --release -p risotto-bench --bin fuzz -- \
//!     [--seed <n>] [--iters <n>] [--smoke] [--metrics-json <path>]
//! ```
//!
//! Every iteration is reproducible from the run seed alone; a single
//! iteration replays as `--seed <run_seed> --iters <i+1>` (the driver
//! derives per-iteration program seeds, it does not consume the RNG
//! stream incrementally). Any divergent program is delta-debugged to a
//! minimal reproducer: the `.risotto` corpus file and a ready-to-paste
//! regression test land under `fuzz-failures/`, and the process exits 1.

use risotto_bench::{print_table, BenchCli, MetricsEntry};
use risotto_core::obs::MetricsRegistry;
use risotto_fuzz::{
    differential, diverges, fault_check, generate, minimize, program_seed, random_fault_plan,
    regression_test_skeleton, to_corpus_string, GenConfig,
};

/// Default iteration counts: the full run satisfies the "≥10k seeded
/// iterations" acceptance bar; smoke is the CI gate.
const FULL_ITERS: u64 = 10_000;
const SMOKE_ITERS: u64 = 300;

/// Every Nth iteration also runs the fault-composed check.
const FAULT_EVERY: u64 = 8;

/// Minimizer budget per divergent program.
const MINIMIZE_STEPS: u64 = 20_000;

/// Lower bound on the fraction of iterations whose tier-2 configuration
/// actually promoted (percent). The generator guarantees a hot loop per
/// program, so a collapse here means the tiering hook went dead.
const MIN_PROMOTED_PCT: u64 = 20;

/// Default run seed (arbitrary fixed constant — reruns are comparable).
const DEFAULT_SEED: u64 = 0xD1FF_F022_2026_0808;

fn main() {
    let cli = BenchCli::parse_with("fuzz", &["--seed", "--iters"]);
    if cli.tiers.is_some() {
        eprintln!(
            "fuzz: --tiers cannot be combined with the differential driver: \
             the oracle matrix already runs every tier (interp, tier-0, tier-1, tier-2)"
        );
        std::process::exit(2);
    }
    let seed = cli.u64_value("--seed", DEFAULT_SEED).unwrap_or_else(die);
    let default_iters = if cli.smoke { SMOKE_ITERS } else { FULL_ITERS };
    let iters = cli.u64_value("--iters", default_iters).unwrap_or_else(die);
    let cfg = GenConfig::default();

    println!("Differential fuzz: seed {seed:#x}, {iters} iterations\n");

    let mut reg = MetricsRegistry::new();
    let mut divergent: Vec<(u64, risotto_fuzz::ProgSpec, Vec<String>)> = Vec::new();
    let (mut promoted, mut fault_completed, mut fault_degraded) = (0u64, 0u64, 0u64);
    let mut multicore = 0u64;

    for i in 0..iters {
        let pseed = program_seed(seed, i);
        let spec = generate(&cfg, pseed);
        if !spec.threads.is_empty() {
            multicore += 1;
        }
        let result = differential(&spec);
        reg.add("fuzz.programs", 1);
        reg.add("fuzz.configs_run", result.configs_run);
        if result.promoted {
            promoted += 1;
            reg.add("fuzz.promoted", 1);
        }
        if !result.divergences.is_empty() {
            reg.add("fuzz.divergences", 1);
            let msgs = result.divergences.iter().map(|d| d.to_string()).collect();
            divergent.push((pseed, spec.clone(), msgs));
        }

        if i % FAULT_EVERY == 0 {
            reg.add("fuzz.fault_runs", 1);
            match fault_check(&spec, random_fault_plan(pseed ^ 0xFA)) {
                Ok(true) => fault_completed += 1,
                Ok(false) => fault_degraded += 1,
                Err(d) => {
                    reg.add("fuzz.divergences", 1);
                    divergent.push((pseed, spec, vec![d.to_string()]));
                }
            }
        }

        if (i + 1) % 1000 == 0 {
            println!("  {}/{iters} programs, {} divergent", i + 1, divergent.len());
        }
    }

    print_table(
        &["programs", "multicore", "promoted", "fault runs", "fault degraded", "divergent"],
        &[vec![
            iters.to_string(),
            multicore.to_string(),
            promoted.to_string(),
            (fault_completed + fault_degraded).to_string(),
            fault_degraded.to_string(),
            divergent.len().to_string(),
        ]],
    );

    // Delta-debug every divergent program to a minimal reproducer and
    // write the corpus file + regression-test skeleton.
    for (pseed, spec, msgs) in &divergent {
        println!("\n!! seed {pseed:#x} diverged:");
        for m in msgs {
            println!("   {m}");
        }
        let min = minimize(spec, &diverges, MINIMIZE_STEPS);
        reg.add("fuzz.minimizer_steps", min.steps);
        let name = format!("divergent_{pseed:016x}");
        let dir = std::path::Path::new("fuzz-failures");
        std::fs::create_dir_all(dir).expect("create fuzz-failures/");
        let corpus_path = dir.join(format!("{name}.risotto"));
        std::fs::write(&corpus_path, to_corpus_string(&min.spec))
            .unwrap_or_else(|e| panic!("writing {}: {e}", corpus_path.display()));
        let test_path = dir.join(format!("{name}.rs"));
        std::fs::write(&test_path, regression_test_skeleton(&min.spec, &name))
            .unwrap_or_else(|e| panic!("writing {}: {e}", test_path.display()));
        println!(
            "   minimized in {} steps ({} reductions) -> {}",
            min.steps,
            min.accepted,
            corpus_path.display()
        );
        println!("   regression test skeleton -> {}", test_path.display());
    }

    if let Some(path) = &cli.metrics_json {
        let entries = [MetricsEntry {
            name: "fuzz".to_string(),
            setup: "differential",
            snapshot: reg.snapshot(),
            hot_tbs: Vec::new(),
        }];
        risotto_bench::write_metrics_json(path, "fuzz", &entries);
    }

    // Tier-2 liveness gate: the harness exists to exercise promotion.
    let promoted_pct = promoted * 100 / iters.max(1);
    assert!(
        promoted_pct >= MIN_PROMOTED_PCT,
        "only {promoted_pct}% of iterations promoted a superblock (floor {MIN_PROMOTED_PCT}%)"
    );

    println!();
    if divergent.is_empty() {
        println!("zero divergences: all configurations agreed on every program.");
    } else {
        println!("!! {} divergent program(s); reproducers in fuzz-failures/", divergent.len());
        std::process::exit(1);
    }
}

fn die(msg: String) -> u64 {
    eprintln!("fuzz: {msg}");
    std::process::exit(2);
}
