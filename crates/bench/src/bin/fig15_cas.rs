//! Regenerates Figure 15: compare-and-swap throughput across contention
//! levels — QEMU's helper-call CAS vs Risotto's direct casal translation
//! (§6.3) vs native execution. `--smoke` shrinks the per-thread CAS
//! count to a CI-sized configuration.

use risotto_bench::{ops_per_sec, print_table, run_on, run_risotto_collecting, BenchCli};
use risotto_core::Setup;
use risotto_workloads::cas::{cas_bench, FIG15_CONFIGS};

fn main() {
    println!("Figure 15 — CAS throughput (Mops/s) by (threads-vars) configuration\n");
    let cli = BenchCli::parse("fig15_cas");
    let backend = cli.backend;
    let metrics_path = cli.metrics_json;
    let mut metrics = metrics_path.as_ref().map(|_| Vec::new());
    let iters = if cli.smoke { 200u64 } else { 2000u64 };
    let mut rows = Vec::new();
    for (threads, vars) in FIG15_CONFIGS {
        let bin = cas_bench(iters, threads, vars);
        let total_ops = iters * threads as u64;
        let mut cells = vec![format!("{threads}-{vars}")];
        let mut chain = String::new();
        for setup in [Setup::Qemu, Setup::Risotto, Setup::Native] {
            let r = if setup == Setup::Risotto {
                run_risotto_collecting(
                    &bin,
                    &format!("cas-{threads}-{vars}"),
                    threads,
                    false,
                    &mut metrics,
                    backend,
                )
            } else {
                run_on(&bin, setup, threads, false, backend)
            };
            assert_eq!(r.exit_vals[0], Some(total_ops), "{setup:?} lost CAS increments");
            cells.push(format!("{:.1}", ops_per_sec(total_ops, r.cycles) / 1e6));
            if setup == Setup::Risotto {
                chain = format!("{:.1}%", 100.0 * r.chain_hit_rate());
            }
        }
        cells.push(chain);
        // risotto-vs-qemu gain for the summary.
        rows.push(cells);
    }
    print_table(&["config", "qemu", "risotto", "native", "ris chain"], &rows);
    println!("\n(expected shape: risotto > qemu when threads == vars — no contention —");
    println!(" and parity under contention, where the casal itself dominates; §7.4)");
    if let (Some(path), Some(entries)) = (metrics_path, metrics) {
        risotto_bench::write_metrics_json(&path, "fig15_cas", &entries);
    }
}
