//! Regenerates Figure 13: OpenSSL digests, RSA sign/verify, and the
//! sqlite speedtest — speedup of risotto (host-linked native libraries)
//! and native execution over QEMU (translated guest libraries).
//!
//! Pass `--metrics-json <path>` to also write the observability artifact
//! (one registry snapshot + hot-TB profile per workload, risotto setup);
//! `--smoke` shrinks buffers/iterations to a CI-sized configuration.

use risotto_bench::{ops_per_sec, print_table, run_on, run_risotto_collecting, speedup, BenchCli};
use risotto_core::Setup;
use risotto_workloads::libbench::{digest_bench, rsa_bench, sqlite_bench, DigestAlgo};

fn main() {
    println!("Figure 13 — OpenSSL & sqlite speedup over QEMU (higher is better)\n");
    let cli = BenchCli::parse("fig13_openssl_sqlite");
    let smoke = cli.smoke;
    let backend = cli.backend;
    let metrics_path = cli.metrics_json;
    let mut metrics = metrics_path.as_ref().map(|_| Vec::new());
    let mut rows = Vec::new();

    // Digests: md5/sha1/sha256 × {1024, 8192}-byte buffers (smoke: just
    // the small buffer, one iteration).
    let lens: &[usize] = if smoke { &[1024] } else { &[1024, 8192] };
    for (algo, name) in
        [(DigestAlgo::Md5, "md5"), (DigestAlgo::Sha1, "sha1"), (DigestAlgo::Sha256, "sha256")]
    {
        for &len in lens {
            let iters = if smoke {
                1
            } else if len == 1024 {
                6
            } else {
                2
            };
            let bin = digest_bench(algo, len, iters);
            let qemu = run_on(&bin, Setup::Qemu, 1, false, backend);
            let ris = run_risotto_collecting(
                &bin,
                &format!("{name}-{len}"),
                1,
                true,
                &mut metrics,
                backend,
            );
            let nat = run_on(&bin, Setup::Native, 1, true, backend);
            assert_eq!(qemu.exit_vals[0], ris.exit_vals[0], "{name}-{len} digest mismatch");
            assert_eq!(qemu.exit_vals[0], nat.exit_vals[0]);
            rows.push(vec![
                format!("{name}-{len}"),
                speedup(qemu.cycles, ris.cycles),
                speedup(qemu.cycles, nat.cycles),
                format!("{:.0} ops/s", ops_per_sec(iters, qemu.cycles)),
                format!("{:.1}%", 100.0 * ris.chain_hit_rate()),
            ]);
        }
    }

    // RSA 1024/2048 sign/verify (modulus 2^(64·n) − 159; smoke: 1024
    // only).
    let rsa: &[(usize, &str)] =
        if smoke { &[(16, "rsa1024")] } else { &[(16, "rsa1024"), (32, "rsa2048")] };
    for &(nlimbs, label) in rsa {
        for (sign, op) in [(true, "sign"), (false, "verify")] {
            let bin = rsa_bench(nlimbs, sign, 1);
            let qemu = run_on(&bin, Setup::Qemu, 1, false, backend);
            let ris = run_risotto_collecting(
                &bin,
                &format!("{label}-{op}"),
                1,
                true,
                &mut metrics,
                backend,
            );
            let nat = run_on(&bin, Setup::Native, 1, true, backend);
            assert_eq!(qemu.exit_vals[0], ris.exit_vals[0], "{label}-{op} result mismatch");
            rows.push(vec![
                format!("{label}-{op}"),
                speedup(qemu.cycles, ris.cycles),
                speedup(qemu.cycles, nat.cycles),
                format!("{:.0} ops/s", ops_per_sec(1, qemu.cycles)),
                format!("{:.1}%", 100.0 * ris.chain_hit_rate()),
            ]);
        }
    }

    // sqlite speedtest.
    {
        let rows_n: u64 = if smoke { 4 } else { 20 };
        let bin = sqlite_bench(rows_n);
        let qemu = run_on(&bin, Setup::Qemu, 1, false, backend);
        let ris = run_risotto_collecting(&bin, "sqlite", 1, true, &mut metrics, backend);
        let nat = run_on(&bin, Setup::Native, 1, true, backend);
        assert_eq!(qemu.exit_vals[0], ris.exit_vals[0], "sqlite checksum mismatch");
        rows.push(vec![
            "sqlite".into(),
            speedup(qemu.cycles, ris.cycles),
            speedup(qemu.cycles, nat.cycles),
            format!("{:.0} ops/s", ops_per_sec(rows_n, qemu.cycles)),
            format!("{:.1}%", 100.0 * ris.chain_hit_rate()),
        ]);
    }

    print_table(&["benchmark", "risotto", "native", "qemu raw", "ris chain"], &rows);
    if let (Some(path), Some(entries)) = (metrics_path, metrics) {
        risotto_bench::write_metrics_json(&path, "fig13_openssl_sqlite", &entries);
    }
}
