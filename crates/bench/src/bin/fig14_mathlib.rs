//! Regenerates Figure 14: math-library function throughput — speedup of
//! risotto (host-linked libm) and native execution over QEMU (translated
//! guest polynomial kernels). The marshaling overhead of §6.2 is why
//! risotto trails native here. `--smoke` shrinks the iteration count to
//! a CI-sized configuration.

use risotto_bench::{ops_per_sec, print_table, run_on, run_risotto_collecting, speedup, BenchCli};
use risotto_core::Setup;
use risotto_nativelib::mathfn::MathFn;
use risotto_workloads::libbench::math_bench;

fn main() {
    println!("Figure 14 — math library speedup over QEMU (higher is better)\n");
    let cli = BenchCli::parse("fig14_mathlib");
    let backend = cli.backend;
    let metrics_path = cli.metrics_json;
    let mut metrics = metrics_path.as_ref().map(|_| Vec::new());
    let iters = if cli.smoke { 8 } else { 60 };
    let mut rows = Vec::new();
    for f in MathFn::ALL {
        let x = match f {
            MathFn::Log => 1.5,
            MathFn::Exp => 1.2,
            MathFn::Asin | MathFn::Acos | MathFn::Atan => 0.4,
            _ => 0.8,
        };
        let bin = math_bench(f.name(), x, iters);
        let qemu = run_on(&bin, Setup::Qemu, 1, false, backend);
        let ris = run_risotto_collecting(&bin, f.name(), 1, true, &mut metrics, backend);
        let nat = run_on(&bin, Setup::Native, 1, true, backend);
        rows.push(vec![
            f.name().to_string(),
            speedup(qemu.cycles, ris.cycles),
            speedup(qemu.cycles, nat.cycles),
            format!("{:.1} ops/ms", ops_per_sec(iters, qemu.cycles) / 1000.0),
            format!("{:.1}%", 100.0 * ris.chain_hit_rate()),
        ]);
    }
    print_table(&["function", "risotto", "native", "qemu raw", "ris chain"], &rows);
    if let (Some(path), Some(entries)) = (metrics_path, metrics) {
        risotto_bench::write_metrics_json(&path, "fig14_mathlib", &entries);
    }
}
