//! Regenerates Figure 12: PARSEC + Phoenix run time under each setup,
//! relative to QEMU (lower is better), plus the fence share of QEMU's
//! execution time (the §7.2 "cost of memory ordering" analysis).
//!
//! ```sh
//! cargo run --release -p risotto-bench --bin fig12_parsec_phoenix -- \
//!     [--smoke] [--metrics-json <path>]
//! ```
//!
//! `--smoke` shrinks every workload to a CI-sized scale; `--metrics-json`
//! writes the versioned observability artifact (one registry snapshot +
//! hot-TB profile per kernel, collected under the risotto setup and
//! cross-checked against the legacy `Report` counters).

use risotto_bench::{print_table, run_on, run_with_metrics_on, BenchCli, MetricsEntry};
use risotto_core::Setup;
use risotto_workloads::kernels;

fn main() {
    let cli = BenchCli::parse("fig12_parsec_phoenix");
    let smoke = cli.smoke;
    let backend = cli.backend;
    let metrics_path = cli.metrics_json;
    let threads = if smoke { 2 } else { 4 };
    println!("Figure 12 — PARSEC & Phoenix run time relative to QEMU ({threads} threads)");
    println!("(columns are % of qemu's runtime; lower is better)\n");
    let mut rows = Vec::new();
    let mut avgs = [0f64; 4]; // no-fences, tcg-ver, risotto, native
    let mut fence_shares: Vec<(String, f64)> = Vec::new();
    let mut chain_rows: Vec<Vec<String>> = Vec::new();
    let mut metrics: Vec<MetricsEntry> = Vec::new();
    let (mut tot_hits, mut tot_links) = (0u64, 0u64);
    let workloads = kernels::all();
    for w in &workloads {
        let scale: u64 = if smoke {
            8
        } else {
            match w.name {
                "matrixmultiply" => 24,
                "canneal" | "freqmine" | "histogram" | "vips" | "wordcount" | "stringmatch" => 4096,
                _ => 2048,
            }
        };
        let bin = (w.build)(scale, threads);
        let qemu = run_on(&bin, Setup::Qemu, threads, false, backend);
        let mut cells = vec![w.name.to_string()];
        for (i, s) in
            [Setup::NoFences, Setup::TcgVer, Setup::Risotto, Setup::Native].iter().enumerate()
        {
            let r = if *s == Setup::Risotto {
                // The risotto run carries the observability payload: the
                // registry snapshot is verified against the legacy Report
                // counters inside run_with_metrics.
                let (r, snap, hot) = run_with_metrics_on(&bin, *s, threads, false, backend);
                metrics.push(MetricsEntry {
                    name: w.name.to_string(),
                    setup: s.name(),
                    snapshot: snap,
                    hot_tbs: hot,
                });
                r
            } else {
                run_on(&bin, *s, threads, false, backend)
            };
            assert_eq!(r.exit_vals[0], qemu.exit_vals[0], "{} checksum mismatch", w.name);
            let rel = 100.0 * r.cycles as f64 / qemu.cycles as f64;
            avgs[i] += rel;
            cells.push(format!("{rel:.1}%"));
            if *s == Setup::Risotto {
                tot_hits += r.chain.chain_hits;
                tot_links += r.chain.chain_links;
                chain_rows.push(vec![
                    w.name.to_string(),
                    r.chain.chain_hits.to_string(),
                    r.chain.chain_links.to_string(),
                    r.chain.dispatch_hits.to_string(),
                    r.chain.dispatch_misses.to_string(),
                    format!("{:.1}%", 100.0 * r.chain_hit_rate()),
                ]);
            }
        }
        let fence_share =
            qemu.stats.fence_cycles as f64 / (qemu.cycles.max(1) * threads as u64) as f64;
        fence_shares.push((w.name.to_string(), fence_share));
        cells.push(format!("{}", qemu.cycles));
        rows.push(cells);
    }
    let n = workloads.len() as f64;
    rows.push(vec![
        "AVERAGE".into(),
        format!("{:.1}%", avgs[0] / n),
        format!("{:.1}%", avgs[1] / n),
        format!("{:.1}%", avgs[2] / n),
        format!("{:.1}%", avgs[3] / n),
        String::new(),
    ]);
    print_table(&["benchmark", "no-fences", "tcg-ver", "risotto", "native", "qemu cycles"], &rows);
    println!("\nFence share of qemu execution time (per core, §7.2):");
    let mut fr: Vec<Vec<String>> =
        fence_shares.iter().map(|(n, f)| vec![n.clone(), format!("{:.1}%", f * 100.0)]).collect();
    let avg = fence_shares.iter().map(|(_, f)| f).sum::<f64>() / fence_shares.len() as f64;
    let max =
        fence_shares
            .iter()
            .cloned()
            .fold(("".to_string(), 0.0), |a, b| if b.1 > a.1 { b } else { a });
    fr.push(vec!["AVERAGE".into(), format!("{:.1}%", avg * 100.0)]);
    fr.push(vec![format!("MAX ({})", max.0), format!("{:.1}%", max.1 * 100.0)]);
    print_table(&["benchmark", "fence share"], &fr);

    println!("\nTB chaining under the risotto setup (direct exits: patched-chain");
    println!("hits vs one-time links; indirect exits: jump-cache hits vs misses):");
    let agg = 100.0 * tot_hits as f64 / (tot_hits + tot_links).max(1) as f64;
    chain_rows.push(vec![
        "AGGREGATE".into(),
        tot_hits.to_string(),
        tot_links.to_string(),
        String::new(),
        String::new(),
        format!("{agg:.1}%"),
    ]);
    print_table(
        &["benchmark", "chain hits", "links", "jcache hits", "jcache miss", "hit rate"],
        &chain_rows,
    );

    if let Some(path) = metrics_path {
        risotto_bench::write_metrics_json(&path, "fig12_parsec_phoenix", &metrics);
    }
}
