//! The full Theorem-1 verification sweep — the systems counterpart of
//! checking the paper's 14k-line Agda development.
//!
//! Verifies the x86→TCG, TCG→Arm and end-to-end mapping schemes over the
//! litmus corpus and the exhaustively generated two-thread program family,
//! and confirms that the erroneous schemes (QEMU's, and the Fig. 3
//! mapping under the original Arm model) fail exactly where the paper
//! says they do.

use risotto_bench::{print_table, BenchCli};
use risotto_litmus::corpus;
use risotto_mappings::check::verify_suite;
use risotto_mappings::gen::{generate_two_thread, x86_alphabet};
use risotto_mappings::scheme::*;
use risotto_memmodel::{Arm, TcgIr, X86Tso};

fn main() {
    // No binary-specific flags; parsing still rejects unknown ones.
    let _ = BenchCli::parse("verify_mappings");
    let x86 = X86Tso::new();
    let tcg = TcgIr::new();
    let arm = Arm::corrected();
    let arm_orig = Arm::original();

    let corpus_progs = vec![
        corpus::mp(),
        corpus::sb(),
        corpus::sb_fenced(),
        corpus::lb(),
        corpus::iriw(),
        corpus::two_plus_two_w(),
        corpus::s_test(),
        corpus::r_test(),
        corpus::mpq_x86(),
        corpus::sbq_x86(),
        corpus::sbal_x86(),
    ];
    println!("Generating the exhaustive two-thread family (len-2 over the full alphabet)…");
    let family = generate_two_thread(&x86_alphabet(), 2, 1);
    println!("  {} corpus programs + {} generated programs\n", corpus_progs.len(), family.len());

    let mut rows = Vec::new();
    let mut check = |name: &str, fails_corpus: usize, fails_family: usize, expect_sound: bool| {
        let verdict = if fails_corpus == 0 && fails_family == 0 {
            "SOUND (no counterexample)"
        } else {
            "UNSOUND (counterexamples found)"
        };
        let expected = if expect_sound { "sound" } else { "unsound" };
        assert_eq!(
            (fails_corpus + fails_family == 0),
            expect_sound,
            "{name}: verdict does not match the paper"
        );
        rows.push(vec![
            name.to_string(),
            fails_corpus.to_string(),
            fails_family.to_string(),
            format!("{verdict} — paper says {expected}"),
        ]);
    };

    // Verified schemes: must pass everywhere.
    let v1 = VerifiedX86ToTcg;
    check(
        "verified x86->tcg",
        verify_suite(&v1, &corpus_progs, &x86, &tcg).len(),
        verify_suite(&v1, &family, &x86, &tcg).len(),
        true,
    );
    for rmw in [RmwLowering::Rmw2Fenced, RmwLowering::Casal] {
        let s = verified_x86_to_arm(rmw);
        check(
            &format!("verified x86->arm ({rmw:?})"),
            verify_suite(&s, &corpus_progs, &x86, &arm).len(),
            verify_suite(&s, &family, &x86, &arm).len(),
            true,
        );
    }
    // Qemu schemes: must fail (on RMW programs).
    for helper in [HelperStyle::Gcc9Lxsx, HelperStyle::Gcc10Casal] {
        let s = qemu_x86_to_arm(helper);
        check(
            &format!("qemu x86->arm ({helper:?})"),
            verify_suite(&s, &corpus_progs, &x86, &arm).len(),
            verify_suite(&s, &family, &x86, &arm).len(),
            false,
        );
    }
    // Fig. 3 intended mapping: fails under the original model, passes
    // under the corrected one.
    check(
        "intended x86->arm (original Arm)",
        verify_suite(&ArmCatsIntended, &corpus_progs, &x86, &arm_orig).len(),
        verify_suite(&ArmCatsIntended, &family, &x86, &arm_orig).len(),
        false,
    );
    check(
        "intended x86->arm (corrected Arm)",
        verify_suite(&ArmCatsIntended, &corpus_progs, &x86, &arm).len(),
        verify_suite(&ArmCatsIntended, &family, &x86, &arm).len(),
        true,
    );
    // The no-fences oracle: knowingly incorrect.
    check(
        "no-fences x86->arm",
        verify_suite(&NoFencesX86ToArm, &corpus_progs, &x86, &arm).len(),
        verify_suite(&NoFencesX86ToArm, &family, &x86, &arm).len(),
        false,
    );

    print_table(&["scheme", "corpus fails", "family fails", "verdict"], &rows);
    println!("\nAll verdicts match the paper (§3.2, §3.3, §5.4).");
}
