//! MiniX86 instructions and their binary encoding.
//!
//! MiniX86 is the strongly-ordered guest ISA of this reproduction: a
//! compact x86-64 stand-in with the same memory-model-relevant primitive
//! set as the paper's Fig. 1 — plain loads/stores (`RMOV`/`WMOV`),
//! `LOCK CMPXCHG` / `LOCK XADD` RMWs, and `MFENCE` — plus the ALU, branch,
//! call/stack and (bit-pattern) floating-point operations the evaluation
//! workloads need. Instructions encode to a variable-length byte stream
//! (opcode byte + operand bytes); the DBT's frontend decodes this stream,
//! never the `Insn` enum directly.

use crate::regs::{Cond, Gpr};
use std::fmt;

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Bitwise and.
    And = 2,
    /// Bitwise or.
    Or = 3,
    /// Bitwise xor.
    Xor = 4,
    /// Logical shift left (count masked to 63).
    Shl = 5,
    /// Logical shift right.
    Shr = 6,
    /// Arithmetic shift right.
    Sar = 7,
    /// Low 64 bits of the product.
    Mul = 8,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }

    fn from_u8(v: u8) -> Option<AluOp> {
        Some(match v {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::And,
            3 => AluOp::Or,
            4 => AluOp::Xor,
            5 => AluOp::Shl,
            6 => AluOp::Shr,
            7 => AluOp::Sar,
            8 => AluOp::Mul,
            _ => return None,
        })
    }
}

/// Floating-point operations on f64 bit patterns held in GPRs.
///
/// Real x86 uses SSE registers; MiniX86 keeps f64 values as bit patterns
/// in the integer file (a documented ABI simplification). Like QEMU, the
/// DBT lowers these to soft-float helper calls on the host; native runs
/// use hardware FP — reproducing the paper's §7.3 floating-point story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FpOp {
    /// f64 addition.
    Add = 0,
    /// f64 subtraction.
    Sub = 1,
    /// f64 multiplication.
    Mul = 2,
    /// f64 division.
    Div = 3,
    /// f64 square root of the source operand (unary).
    Sqrt = 4,
    /// Convert signed integer to f64.
    CvtIF = 5,
    /// Convert f64 to signed integer (truncating).
    CvtFI = 6,
}

impl FpOp {
    /// Applies the operation to bit-pattern operands, with the
    /// deterministic NaN discipline of [`crate::softfloat`] — every
    /// layer of the pipeline (interpreter, TCG evaluator, host helpers,
    /// hardware FP) must produce these exact bits.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        use crate::softfloat as sf;
        match self {
            FpOp::Add => sf::add(a, b),
            FpOp::Sub => sf::sub(a, b),
            FpOp::Mul => sf::mul(a, b),
            FpOp::Div => sf::div(a, b),
            FpOp::Sqrt => sf::sqrt(b),
            FpOp::CvtIF => sf::cvt_if(b),
            FpOp::CvtFI => sf::cvt_fi(b),
        }
    }

    fn from_u8(v: u8) -> Option<FpOp> {
        Some(match v {
            0 => FpOp::Add,
            1 => FpOp::Sub,
            2 => FpOp::Mul,
            3 => FpOp::Div,
            4 => FpOp::Sqrt,
            5 => FpOp::CvtIF,
            6 => FpOp::CvtFI,
            _ => return None,
        })
    }
}

/// A register-or-immediate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Gpr),
    /// 64-bit immediate.
    Imm(u64),
}

/// A MiniX86 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `mov dst, imm64`.
    MovRI {
        /// Destination.
        dst: Gpr,
        /// Immediate.
        imm: u64,
    },
    /// `mov dst, src`.
    MovRR {
        /// Destination.
        dst: Gpr,
        /// Source.
        src: Gpr,
    },
    /// `mov dst, [base + disp]` — the paper's `RMOV`.
    Load {
        /// Destination.
        dst: Gpr,
        /// Base address register.
        base: Gpr,
        /// Signed displacement.
        disp: i32,
    },
    /// `movzx dst, byte [base + disp]` — byte load, zero-extended.
    LoadB {
        /// Destination.
        dst: Gpr,
        /// Base address register.
        base: Gpr,
        /// Signed displacement.
        disp: i32,
    },
    /// `mov byte [base + disp], src` — byte store (low 8 bits of `src`).
    StoreB {
        /// Base address register.
        base: Gpr,
        /// Signed displacement.
        disp: i32,
        /// Source.
        src: Gpr,
    },
    /// Widening multiply (x86 `MUL src`): `RDX:RAX = RAX × src`.
    MulWide {
        /// Multiplier.
        src: Gpr,
    },
    /// `mov [base + disp], src` — the paper's `WMOV`.
    Store {
        /// Base address register.
        base: Gpr,
        /// Signed displacement.
        disp: i32,
        /// Source.
        src: Gpr,
    },
    /// `lea dst, [base + disp]`.
    Lea {
        /// Destination.
        dst: Gpr,
        /// Base.
        base: Gpr,
        /// Displacement.
        disp: i32,
    },
    /// `op dst, src` (dst = dst op src); sets flags.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination and left operand.
        dst: Gpr,
        /// Right operand.
        src: Operand,
    },
    /// Unsigned division: `RAX = RAX / src`, `RDX = RAX % src`.
    Div {
        /// Divisor.
        src: Gpr,
    },
    /// Floating point: `dst = dst op src` (f64 bit patterns).
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination (and left operand for binary ops).
        dst: Gpr,
        /// Right operand.
        src: Gpr,
    },
    /// `cmp a, b`: sets flags from `a - b`.
    Cmp {
        /// Left operand.
        a: Gpr,
        /// Right operand.
        b: Operand,
    },
    /// `test a, b`: sets flags from `a & b`.
    Test {
        /// Left operand.
        a: Gpr,
        /// Right operand.
        b: Operand,
    },
    /// Conditional branch; `rel` is relative to the *next* instruction.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Relative target.
        rel: i32,
    },
    /// Unconditional branch.
    Jmp {
        /// Relative target.
        rel: i32,
    },
    /// Indirect branch through a register.
    JmpReg {
        /// Target address register.
        reg: Gpr,
    },
    /// Call; pushes the return address.
    Call {
        /// Relative target.
        rel: i32,
    },
    /// Indirect call through a register.
    CallReg {
        /// Target address register.
        reg: Gpr,
    },
    /// Return (pops the return address).
    Ret,
    /// `push src`.
    Push {
        /// Source.
        src: Gpr,
    },
    /// `pop dst`.
    Pop {
        /// Destination.
        dst: Gpr,
    },
    /// `lock cmpxchg [base + disp], src`: if `RAX == [m]` then `[m] = src`,
    /// `ZF = 1`; else `RAX = [m]`, `ZF = 0`. A full fence either way.
    LockCmpxchg {
        /// Base address register.
        base: Gpr,
        /// Displacement.
        disp: i32,
        /// Value to swap in.
        src: Gpr,
    },
    /// `lock xadd [base + disp], src`: atomically `tmp = [m]; [m] += src;
    /// src = tmp`. A full fence.
    LockXadd {
        /// Base address register.
        base: Gpr,
        /// Displacement.
        disp: i32,
        /// Addend in, old value out.
        src: Gpr,
    },
    /// `mfence`.
    Mfence,
    /// No operation.
    Nop,
    /// Stops the executing thread.
    Hlt,
    /// Virtual system call: number in `RAX`, args in `RDI`/`RSI`/`RDX`,
    /// result in `RAX`. Executed natively by the DBT (user mode, §2.2).
    Syscall,
}

/// Errors from [`Insn::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended inside an instruction.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Invalid operand field.
    BadOperand {
        /// The opcode whose operand was invalid.
        opcode: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadOperand { opcode } => {
                write!(f, "invalid operand for opcode {opcode:#04x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space.
const OP_MOV_RI: u8 = 0x01;
const OP_MOV_RR: u8 = 0x02;
const OP_LOAD: u8 = 0x03;
const OP_STORE: u8 = 0x04;
const OP_LEA: u8 = 0x05;
const OP_ALU_RR: u8 = 0x06;
const OP_ALU_RI: u8 = 0x07;
const OP_DIV: u8 = 0x08;
const OP_FP: u8 = 0x09;
const OP_CMP_RR: u8 = 0x0a;
const OP_CMP_RI: u8 = 0x0b;
const OP_TEST_RR: u8 = 0x0c;
const OP_TEST_RI: u8 = 0x0d;
const OP_JCC: u8 = 0x0e;
const OP_JMP: u8 = 0x0f;
const OP_JMP_REG: u8 = 0x10;
const OP_CALL: u8 = 0x11;
const OP_CALL_REG: u8 = 0x12;
const OP_RET: u8 = 0x13;
const OP_PUSH: u8 = 0x14;
const OP_POP: u8 = 0x15;
const OP_CMPXCHG: u8 = 0x16;
const OP_XADD: u8 = 0x17;
const OP_MFENCE: u8 = 0x18;
const OP_NOP: u8 = 0x19;
const OP_HLT: u8 = 0x1a;
const OP_SYSCALL: u8 = 0x1b;
const OP_LOADB: u8 = 0x1c;
const OP_STOREB: u8 = 0x1d;
const OP_MULWIDE: u8 = 0x1e;

impl Insn {
    /// Appends the encoding of `self` to `out`; returns the encoded length.
    pub fn encode(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match *self {
            Insn::MovRI { dst, imm } => {
                out.push(OP_MOV_RI);
                out.push(dst.0);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Insn::MovRR { dst, src } => {
                out.extend_from_slice(&[OP_MOV_RR, dst.0, src.0]);
            }
            Insn::Load { dst, base, disp } => {
                out.extend_from_slice(&[OP_LOAD, dst.0, base.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::Store { base, disp, src } => {
                out.extend_from_slice(&[OP_STORE, base.0, src.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::LoadB { dst, base, disp } => {
                out.extend_from_slice(&[OP_LOADB, dst.0, base.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::StoreB { base, disp, src } => {
                out.extend_from_slice(&[OP_STOREB, base.0, src.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::MulWide { src } => out.extend_from_slice(&[OP_MULWIDE, src.0]),
            Insn::Lea { dst, base, disp } => {
                out.extend_from_slice(&[OP_LEA, dst.0, base.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::Alu { op, dst, src: Operand::Reg(s) } => {
                out.extend_from_slice(&[OP_ALU_RR, op as u8, dst.0, s.0]);
            }
            Insn::Alu { op, dst, src: Operand::Imm(i) } => {
                out.extend_from_slice(&[OP_ALU_RI, op as u8, dst.0]);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Insn::Div { src } => out.extend_from_slice(&[OP_DIV, src.0]),
            Insn::Fp { op, dst, src } => {
                out.extend_from_slice(&[OP_FP, op as u8, dst.0, src.0]);
            }
            Insn::Cmp { a, b: Operand::Reg(r) } => {
                out.extend_from_slice(&[OP_CMP_RR, a.0, r.0]);
            }
            Insn::Cmp { a, b: Operand::Imm(i) } => {
                out.extend_from_slice(&[OP_CMP_RI, a.0]);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Insn::Test { a, b: Operand::Reg(r) } => {
                out.extend_from_slice(&[OP_TEST_RR, a.0, r.0]);
            }
            Insn::Test { a, b: Operand::Imm(i) } => {
                out.extend_from_slice(&[OP_TEST_RI, a.0]);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Insn::Jcc { cond, rel } => {
                out.extend_from_slice(&[OP_JCC, cond as u8]);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Insn::Jmp { rel } => {
                out.push(OP_JMP);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Insn::JmpReg { reg } => out.extend_from_slice(&[OP_JMP_REG, reg.0]),
            Insn::Call { rel } => {
                out.push(OP_CALL);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Insn::CallReg { reg } => out.extend_from_slice(&[OP_CALL_REG, reg.0]),
            Insn::Ret => out.push(OP_RET),
            Insn::Push { src } => out.extend_from_slice(&[OP_PUSH, src.0]),
            Insn::Pop { dst } => out.extend_from_slice(&[OP_POP, dst.0]),
            Insn::LockCmpxchg { base, disp, src } => {
                out.extend_from_slice(&[OP_CMPXCHG, base.0, src.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::LockXadd { base, disp, src } => {
                out.extend_from_slice(&[OP_XADD, base.0, src.0]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Insn::Mfence => out.push(OP_MFENCE),
            Insn::Nop => out.push(OP_NOP),
            Insn::Hlt => out.push(OP_HLT),
            Insn::Syscall => out.push(OP_SYSCALL),
        }
        out.len() - start
    }

    /// The encoded length without encoding.
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::with_capacity(16);
        self.encode(&mut buf)
    }

    /// Decodes one instruction from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, unknown opcodes, or invalid
    /// operand fields.
    pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
        fn reg(bytes: &[u8], i: usize, opcode: u8) -> Result<Gpr, DecodeError> {
            let b = *bytes.get(i).ok_or(DecodeError::Truncated)?;
            if (b as usize) < Gpr::COUNT {
                Ok(Gpr(b))
            } else {
                Err(DecodeError::BadOperand { opcode })
            }
        }
        fn imm64(bytes: &[u8], i: usize) -> Result<u64, DecodeError> {
            let s = bytes.get(i..i + 8).ok_or(DecodeError::Truncated)?;
            Ok(u64::from_le_bytes(s.try_into().unwrap()))
        }
        fn imm32(bytes: &[u8], i: usize) -> Result<i32, DecodeError> {
            let s = bytes.get(i..i + 4).ok_or(DecodeError::Truncated)?;
            Ok(i32::from_le_bytes(s.try_into().unwrap()))
        }

        let op = *bytes.first().ok_or(DecodeError::Truncated)?;
        let insn = match op {
            OP_MOV_RI => (Insn::MovRI { dst: reg(bytes, 1, op)?, imm: imm64(bytes, 2)? }, 10),
            OP_MOV_RR => (Insn::MovRR { dst: reg(bytes, 1, op)?, src: reg(bytes, 2, op)? }, 3),
            OP_LOAD => (
                Insn::Load {
                    dst: reg(bytes, 1, op)?,
                    base: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_STORE => (
                Insn::Store {
                    base: reg(bytes, 1, op)?,
                    src: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_LEA => (
                Insn::Lea {
                    dst: reg(bytes, 1, op)?,
                    base: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_ALU_RR => {
                let o = AluOp::from_u8(*bytes.get(1).ok_or(DecodeError::Truncated)?)
                    .ok_or(DecodeError::BadOperand { opcode: op })?;
                (
                    Insn::Alu {
                        op: o,
                        dst: reg(bytes, 2, op)?,
                        src: Operand::Reg(reg(bytes, 3, op)?),
                    },
                    4,
                )
            }
            OP_ALU_RI => {
                let o = AluOp::from_u8(*bytes.get(1).ok_or(DecodeError::Truncated)?)
                    .ok_or(DecodeError::BadOperand { opcode: op })?;
                (
                    Insn::Alu {
                        op: o,
                        dst: reg(bytes, 2, op)?,
                        src: Operand::Imm(imm64(bytes, 3)?),
                    },
                    11,
                )
            }
            OP_DIV => (Insn::Div { src: reg(bytes, 1, op)? }, 2),
            OP_FP => {
                let o = FpOp::from_u8(*bytes.get(1).ok_or(DecodeError::Truncated)?)
                    .ok_or(DecodeError::BadOperand { opcode: op })?;
                (Insn::Fp { op: o, dst: reg(bytes, 2, op)?, src: reg(bytes, 3, op)? }, 4)
            }
            OP_CMP_RR => {
                (Insn::Cmp { a: reg(bytes, 1, op)?, b: Operand::Reg(reg(bytes, 2, op)?) }, 3)
            }
            OP_CMP_RI => {
                (Insn::Cmp { a: reg(bytes, 1, op)?, b: Operand::Imm(imm64(bytes, 2)?) }, 10)
            }
            OP_TEST_RR => {
                (Insn::Test { a: reg(bytes, 1, op)?, b: Operand::Reg(reg(bytes, 2, op)?) }, 3)
            }
            OP_TEST_RI => {
                (Insn::Test { a: reg(bytes, 1, op)?, b: Operand::Imm(imm64(bytes, 2)?) }, 10)
            }
            OP_JCC => {
                let c = Cond::from_u8(*bytes.get(1).ok_or(DecodeError::Truncated)?)
                    .ok_or(DecodeError::BadOperand { opcode: op })?;
                (Insn::Jcc { cond: c, rel: imm32(bytes, 2)? }, 6)
            }
            OP_JMP => (Insn::Jmp { rel: imm32(bytes, 1)? }, 5),
            OP_JMP_REG => (Insn::JmpReg { reg: reg(bytes, 1, op)? }, 2),
            OP_CALL => (Insn::Call { rel: imm32(bytes, 1)? }, 5),
            OP_CALL_REG => (Insn::CallReg { reg: reg(bytes, 1, op)? }, 2),
            OP_RET => (Insn::Ret, 1),
            OP_PUSH => (Insn::Push { src: reg(bytes, 1, op)? }, 2),
            OP_POP => (Insn::Pop { dst: reg(bytes, 1, op)? }, 2),
            OP_CMPXCHG => (
                Insn::LockCmpxchg {
                    base: reg(bytes, 1, op)?,
                    src: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_XADD => (
                Insn::LockXadd {
                    base: reg(bytes, 1, op)?,
                    src: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_LOADB => (
                Insn::LoadB {
                    dst: reg(bytes, 1, op)?,
                    base: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_STOREB => (
                Insn::StoreB {
                    base: reg(bytes, 1, op)?,
                    src: reg(bytes, 2, op)?,
                    disp: imm32(bytes, 3)?,
                },
                7,
            ),
            OP_MULWIDE => (Insn::MulWide { src: reg(bytes, 1, op)? }, 2),
            OP_MFENCE => (Insn::Mfence, 1),
            OP_NOP => (Insn::Nop, 1),
            OP_HLT => (Insn::Hlt, 1),
            OP_SYSCALL => (Insn::Syscall, 1),
            other => return Err(DecodeError::BadOpcode(other)),
        };
        if bytes.len() < insn.1 {
            return Err(DecodeError::Truncated);
        }
        Ok(insn)
    }

    /// `true` if the instruction ends a basic block (branch, call, return,
    /// halt or syscall).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Jcc { .. }
                | Insn::Jmp { .. }
                | Insn::JmpReg { .. }
                | Insn::Call { .. }
                | Insn::CallReg { .. }
                | Insn::Ret
                | Insn::Hlt
                | Insn::Syscall
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn op(o: &Operand) -> String {
            match o {
                Operand::Reg(r) => r.to_string(),
                Operand::Imm(i) => format!("{i:#x}"),
            }
        }
        match self {
            Insn::MovRI { dst, imm } => write!(f, "mov   {dst}, {imm:#x}"),
            Insn::MovRR { dst, src } => write!(f, "mov   {dst}, {src}"),
            Insn::Load { dst, base, disp } => write!(f, "mov   {dst}, [{base}{disp:+}]"),
            Insn::Store { base, disp, src } => write!(f, "mov   [{base}{disp:+}], {src}"),
            Insn::LoadB { dst, base, disp } => write!(f, "movzx {dst}, byte [{base}{disp:+}]"),
            Insn::StoreB { base, disp, src } => write!(f, "mov   byte [{base}{disp:+}], {src}"),
            Insn::MulWide { src } => write!(f, "mul   {src}"),
            Insn::Lea { dst, base, disp } => write!(f, "lea   {dst}, [{base}{disp:+}]"),
            Insn::Alu { op: o, dst, src } => {
                let name = format!("{o:?}").to_lowercase();
                write!(f, "{name:<5} {dst}, {}", op(src))
            }
            Insn::Div { src } => write!(f, "div   {src}"),
            Insn::Fp { op: o, dst, src } => {
                let name = format!("f{:?}", o).to_lowercase();
                write!(f, "{name:<5} {dst}, {src}")
            }
            Insn::Cmp { a, b } => write!(f, "cmp   {a}, {}", op(b)),
            Insn::Test { a, b } => write!(f, "test  {a}, {}", op(b)),
            Insn::Jcc { cond, rel } => {
                write!(f, "j{:<4} {rel:+}", format!("{cond:?}").to_lowercase())
            }
            Insn::Jmp { rel } => write!(f, "jmp   {rel:+}"),
            Insn::JmpReg { reg } => write!(f, "jmp   {reg}"),
            Insn::Call { rel } => write!(f, "call  {rel:+}"),
            Insn::CallReg { reg } => write!(f, "call  {reg}"),
            Insn::Ret => write!(f, "ret"),
            Insn::Push { src } => write!(f, "push  {src}"),
            Insn::Pop { dst } => write!(f, "pop   {dst}"),
            Insn::LockCmpxchg { base, disp, src } => {
                write!(f, "lock cmpxchg [{base}{disp:+}], {src}")
            }
            Insn::LockXadd { base, disp, src } => write!(f, "lock xadd [{base}{disp:+}], {src}"),
            Insn::Mfence => write!(f, "mfence"),
            Insn::Nop => write!(f, "nop"),
            Insn::Hlt => write!(f, "hlt"),
            Insn::Syscall => write!(f, "syscall"),
        }
    }
}

/// Disassembles a byte stream starting at virtual address `base`.
///
/// Stops at the first undecodable byte; returns `(vaddr, insn, len)`
/// triples.
pub fn disassemble(bytes: &[u8], base: u64) -> Vec<(u64, Insn, usize)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match Insn::decode(&bytes[off..]) {
            Ok((insn, len)) => {
                out.push((base + off as u64, insn, len));
                off += len;
            }
            Err(_) => break,
        }
    }
    out
}

/// Virtual syscall numbers (see [`Insn::Syscall`]).
pub mod syscalls {
    /// Terminate the calling thread; `RDI` = exit value.
    pub const EXIT: u64 = 0;
    /// Write bytes: `RDI` = fd, `RSI` = buffer vaddr, `RDX` = length.
    pub const WRITE: u64 = 1;
    /// Spawn a thread: `RDI` = entry vaddr, `RSI` = argument, returns tid.
    pub const SPAWN: u64 = 2;
    /// Join a thread: `RDI` = tid; returns its exit value.
    pub const JOIN: u64 = 3;
    /// Current thread id.
    pub const GETTID: u64 = 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Insn) {
        let mut buf = Vec::new();
        let n = i.encode(&mut buf);
        assert_eq!(n, buf.len());
        let (d, len) = Insn::decode(&buf).unwrap();
        assert_eq!(d, i);
        assert_eq!(len, n);
        assert_eq!(i.encoded_len(), n);
    }

    #[test]
    fn encode_decode_roundtrip_all_shapes() {
        use Gpr as G;
        for i in [
            Insn::MovRI { dst: G::RAX, imm: u64::MAX },
            Insn::MovRR { dst: G::R8, src: G::RSP },
            Insn::Load { dst: G::RBX, base: G::RDI, disp: -8 },
            Insn::Store { base: G::RSI, disp: 1 << 20, src: G::R15 },
            Insn::Lea { dst: G::RAX, base: G::RSP, disp: 16 },
            Insn::Alu { op: AluOp::Add, dst: G::RCX, src: Operand::Reg(G::RDX) },
            Insn::Alu { op: AluOp::Mul, dst: G::RCX, src: Operand::Imm(42) },
            Insn::Div { src: G::R9 },
            Insn::Fp { op: FpOp::Mul, dst: G::RAX, src: G::RBX },
            Insn::Cmp { a: G::RAX, b: Operand::Imm(7) },
            Insn::Cmp { a: G::RAX, b: Operand::Reg(G::RBX) },
            Insn::Test { a: G::RDI, b: Operand::Reg(G::RDI) },
            Insn::Test { a: G::RDI, b: Operand::Imm(1) },
            Insn::Jcc { cond: Cond::Ne, rel: -100 },
            Insn::Jmp { rel: 1234 },
            Insn::JmpReg { reg: G::R11 },
            Insn::Call { rel: -5 },
            Insn::CallReg { reg: G::RAX },
            Insn::Ret,
            Insn::Push { src: G::RBP },
            Insn::Pop { dst: G::RBP },
            Insn::LoadB { dst: G::RAX, base: G::RSI, disp: 3 },
            Insn::StoreB { base: G::RSI, disp: -1, src: G::RAX },
            Insn::MulWide { src: G::RBX },
            Insn::LockCmpxchg { base: G::RDI, disp: 0, src: G::RSI },
            Insn::LockXadd { base: G::RDI, disp: 8, src: G::RAX },
            Insn::Mfence,
            Insn::Nop,
            Insn::Hlt,
            Insn::Syscall,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Insn::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Insn::decode(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(Insn::decode(&[OP_MOV_RI, 0]), Err(DecodeError::Truncated));
        assert!(matches!(Insn::decode(&[OP_MOV_RR, 99, 0]), Err(DecodeError::BadOperand { .. })));
        assert!(matches!(
            Insn::decode(&[OP_ALU_RR, 200, 0, 0]),
            Err(DecodeError::BadOperand { .. })
        ));
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift count masked");
        assert_eq!(AluOp::Sar.apply(u64::MAX, 5), u64::MAX);
        assert_eq!(AluOp::Shr.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::Mul.apply(1 << 32, 1 << 32), 0);
    }

    #[test]
    fn fp_semantics_via_bit_patterns() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::Add.apply(a, b)), 3.5);
        assert_eq!(f64::from_bits(FpOp::Sqrt.apply(0, 16.0f64.to_bits())), 4.0);
        assert_eq!(FpOp::CvtFI.apply(0, 3.99f64.to_bits()), 3);
        assert_eq!(f64::from_bits(FpOp::CvtIF.apply(0, (-2i64) as u64)), -2.0);
    }

    #[test]
    fn terminators() {
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Hlt.is_terminator());
        assert!(Insn::Jcc { cond: Cond::E, rel: 0 }.is_terminator());
        assert!(!Insn::Mfence.is_terminator());
        assert!(!Insn::Nop.is_terminator());
    }
}
