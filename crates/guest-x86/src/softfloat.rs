//! Canonical deterministic f64 semantics, shared by every layer that
//! evaluates guest floating-point: the reference interpreter
//! ([`FpOp::apply`](crate::FpOp::apply)), the TCG constant evaluator,
//! the host machine's soft-float helpers, and the MiniArm hardware-FP
//! instruction.
//!
//! Why this module exists: IEEE 754 leaves the *payload* of a NaN
//! result implementation-defined, and `a * b` on two NaN operands
//! returns whichever operand the hardware propagates — which in turn
//! depends on the operand order the compiler happened to emit.
//! LLVM treats `fmul`/`fadd` as commutative, so two textually identical
//! `fa * fb` expressions at different call sites can compile to
//! opposite operand orders and return *different NaN bit patterns*.
//! The differential fuzzer found exactly that: the interpreter and the
//! DBT tiers disagreed on a program whose `fp mul` chain ran through
//! NaN values (`tests/corpus/fp_nan_chain.risotto`).
//!
//! The fix is to never let hardware NaN propagation reach an
//! architectural register. Every operation here applies an explicit,
//! deterministic NaN discipline *before* and *after* the native
//! computation:
//!
//! 1. If the first operand is NaN, return it quietened.
//! 2. Else if the second operand is NaN, return it quietened.
//! 3. Else compute; if the *result* is NaN (`0 * inf`, `inf - inf`,
//!    `0 / 0`, `sqrt(-x)`), return the canonical default NaN.
//!
//! Rule 1/2 mirrors x86 SSE (first-source NaN wins, quietened), which
//! suits a MiniX86 guest; rule 3 matches both x86 and Arm generated
//! NaNs. All three are pure bit-level decisions, so the result is
//! identical regardless of how the compiler schedules the FP ops.

/// The quiet bit of an f64 NaN (mantissa MSB).
pub const QUIET_BIT: u64 = 0x0008_0000_0000_0000;

/// The canonical default NaN both x86 and Arm generate for invalid
/// operations (negative quiet NaN on x86; same payload, sign clear, on
/// Arm — we pick the x86 one, matching the guest ISA).
pub const DEFAULT_NAN: u64 = 0xFFF8_0000_0000_0000;

/// Returns the deterministic NaN propagation for a binary op, if any
/// operand is NaN.
#[inline]
fn propagate2(a: u64, b: u64) -> Option<u64> {
    if f64::from_bits(a).is_nan() {
        Some(a | QUIET_BIT)
    } else if f64::from_bits(b).is_nan() {
        Some(b | QUIET_BIT)
    } else {
        None
    }
}

/// Canonicalizes a freshly computed (non-propagated) result.
#[inline]
fn canon(r: f64) -> u64 {
    if r.is_nan() {
        DEFAULT_NAN
    } else {
        r.to_bits()
    }
}

/// f64 addition on bit patterns.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    propagate2(a, b).unwrap_or_else(|| canon(f64::from_bits(a) + f64::from_bits(b)))
}

/// f64 subtraction on bit patterns.
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    propagate2(a, b).unwrap_or_else(|| canon(f64::from_bits(a) - f64::from_bits(b)))
}

/// f64 multiplication on bit patterns.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    propagate2(a, b).unwrap_or_else(|| canon(f64::from_bits(a) * f64::from_bits(b)))
}

/// f64 division on bit patterns.
#[inline]
pub fn div(a: u64, b: u64) -> u64 {
    propagate2(a, b).unwrap_or_else(|| canon(f64::from_bits(a) / f64::from_bits(b)))
}

/// f64 square root of `b` (unary; the first operand is ignored, as in
/// the `FpOp::Sqrt` encoding).
#[inline]
pub fn sqrt(b: u64) -> u64 {
    let fb = f64::from_bits(b);
    if fb.is_nan() {
        b | QUIET_BIT
    } else {
        canon(fb.sqrt())
    }
}

/// Signed integer → f64 of `b`.
#[inline]
pub fn cvt_if(b: u64) -> u64 {
    ((b as i64) as f64).to_bits()
}

/// f64 → signed integer of `b`, truncating. Rust's `as` cast is already
/// deterministic (saturating, NaN → 0).
#[inline]
pub fn cvt_fi(b: u64) -> u64 {
    (f64::from_bits(b) as i64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_propagation_is_first_operand_and_quietened() {
        // Two distinct signalling-ish NaN payloads (quiet bit clear).
        let nan_a = 0x7FF0_0000_0000_0001u64;
        let nan_b = 0x7FF0_0000_0000_0002u64;
        assert_eq!(mul(nan_a, nan_b), nan_a | QUIET_BIT);
        assert_eq!(mul(nan_b, nan_a), nan_b | QUIET_BIT);
        assert_eq!(add(1.0f64.to_bits(), nan_b), nan_b | QUIET_BIT);
        // The fuzzer's original shape: small negative integers are NaN
        // bit patterns; the chain must keep the *first* NaN seen.
        let nan1 = (-0xACi64) as u64;
        let nan2 = (-0x158i64) as u64;
        let r = mul(mul(0, nan1), nan2);
        assert_eq!(r, nan1 | QUIET_BIT);
    }

    #[test]
    fn generated_nans_are_canonical() {
        assert_eq!(mul(0, f64::INFINITY.to_bits()), DEFAULT_NAN);
        assert_eq!(div(0, 0), DEFAULT_NAN);
        assert_eq!(sub(f64::INFINITY.to_bits(), f64::INFINITY.to_bits()), DEFAULT_NAN);
        assert_eq!(sqrt((-4.0f64).to_bits()), DEFAULT_NAN);
    }

    #[test]
    fn non_nan_arithmetic_is_plain_ieee() {
        assert_eq!(f64::from_bits(add(1.5f64.to_bits(), 2.0f64.to_bits())), 3.5);
        assert_eq!(f64::from_bits(mul(3.0f64.to_bits(), 7.0f64.to_bits())), 21.0);
        assert_eq!(f64::from_bits(sqrt(16.0f64.to_bits())), 4.0);
        assert_eq!(cvt_fi(3.99f64.to_bits()), 3);
        assert_eq!(f64::from_bits(cvt_if((-2i64) as u64)), -2.0);
        assert_eq!(cvt_fi(f64::NAN.to_bits()), 0);
    }
}
