//! GELF — the guest executable format.
//!
//! GELF is a deliberately small stand-in for ELF that keeps exactly the
//! mechanics Risotto's dynamic host linker needs (§6.2): a `.text`
//! section, a `.data` section, and a `.dynsym`-like import table whose
//! entries point at PLT stubs inside `.text`. When the program is run
//! without host linking, each PLT stub simply jumps to the guest library
//! implementation (which the DBT translates); with host linking, the DBT
//! intercepts translation at the PLT address and calls the native host
//! function instead.

use crate::asm::{AsmError, Assembler};
use crate::regs::Gpr;
use std::collections::HashMap;
use std::fmt;

/// Load address of `.text`.
pub const TEXT_BASE: u64 = 0x0001_0000;
/// Load address of `.data`.
pub const DATA_BASE: u64 = 0x0040_0000;
/// Start of the guest heap.
pub const HEAP_BASE: u64 = 0x0080_0000;
/// Top of thread 0's stack; thread `i` gets `STACK_TOP - i * STACK_SIZE`.
pub const STACK_TOP: u64 = 0x07F0_0000;
/// Per-thread stack size.
pub const STACK_SIZE: u64 = 0x0002_0000;

/// An imported dynamic symbol: the name the IDL refers to, and the virtual
/// address of its PLT stub in `.text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynSym {
    /// Function name (e.g. `"sin"`).
    pub name: String,
    /// Address of the PLT entry.
    pub plt_vaddr: u64,
}

/// A loaded (or built) guest binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestBinary {
    /// Entry point virtual address.
    pub entry: u64,
    /// `.text` bytes, loaded at [`TEXT_BASE`].
    pub text: Vec<u8>,
    /// `.data` bytes, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Imported symbols.
    pub dynsyms: Vec<DynSym>,
    /// Defined symbols (label → vaddr), for debugging and tests.
    pub symbols: HashMap<String, u64>,
}

const MAGIC: &[u8; 5] = b"GELF1";

/// Errors from [`GuestBinary::from_bytes`] / [`GuestBinary::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GelfError {
    /// Bad magic number.
    BadMagic,
    /// The byte stream ended early or a length field is inconsistent.
    Truncated,
    /// A symbol name is not valid UTF-8.
    BadString,
    /// A section is too large for its address-space slot and would
    /// overlap the next region (`.text` reaching into [`DATA_BASE`], or
    /// `.data` reaching into [`HEAP_BASE`]).
    SectionOverlap {
        /// The offending section (`".text"` or `".data"`).
        section: &'static str,
        /// The section's end virtual address (exclusive).
        end: u64,
        /// The start of the region it collides with.
        limit: u64,
    },
    /// The entry point lies outside `.text`.
    EntryOutOfRange {
        /// The declared entry vaddr.
        entry: u64,
    },
    /// A `.dynsym` entry's PLT address lies outside `.text`.
    SymbolOutOfRange {
        /// The symbol's name.
        name: String,
        /// Its declared PLT vaddr.
        plt_vaddr: u64,
    },
}

impl fmt::Display for GelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GelfError::BadMagic => write!(f, "not a GELF binary"),
            GelfError::Truncated => write!(f, "truncated GELF binary"),
            GelfError::BadString => write!(f, "invalid symbol name encoding"),
            GelfError::SectionOverlap { section, end, limit } => {
                write!(f, "{section} ends at {end:#x}, overlapping the region at {limit:#x}")
            }
            GelfError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry:#x} is outside .text")
            }
            GelfError::SymbolOutOfRange { name, plt_vaddr } => {
                write!(f, "dynsym `{name}` points at {plt_vaddr:#x}, outside .text")
            }
        }
    }
}

impl std::error::Error for GelfError {}

impl GuestBinary {
    /// Serializes to the on-disk GELF format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.entry.to_le_bytes());
        let put_bytes = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u64).to_le_bytes());
            out.extend_from_slice(b);
        };
        put_bytes(&mut out, &self.text);
        put_bytes(&mut out, &self.data);
        out.extend_from_slice(&(self.dynsyms.len() as u64).to_le_bytes());
        for s in &self.dynsyms {
            put_bytes(&mut out, s.name.as_bytes());
            out.extend_from_slice(&s.plt_vaddr.to_le_bytes());
        }
        // Symbol table (informational).
        let mut syms: Vec<_> = self.symbols.iter().collect();
        syms.sort();
        out.extend_from_slice(&(syms.len() as u64).to_le_bytes());
        for (name, &addr) in syms {
            put_bytes(&mut out, name.as_bytes());
            out.extend_from_slice(&addr.to_le_bytes());
        }
        out
    }

    /// Parses the on-disk GELF format.
    ///
    /// # Errors
    ///
    /// Returns [`GelfError`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<GuestBinary, GelfError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], GelfError> {
            let s = bytes.get(*pos..*pos + n).ok_or(GelfError::Truncated)?;
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 5)? != MAGIC {
            return Err(GelfError::BadMagic);
        }
        let u64_at = |pos: &mut usize| -> Result<u64, GelfError> {
            let arr: [u8; 8] = take(pos, 8)?.try_into().map_err(|_| GelfError::Truncated)?;
            Ok(u64::from_le_bytes(arr))
        };
        let entry = u64_at(&mut pos)?;
        // Length fields claiming more bytes than the stream holds are
        // rejected up front: `usize` casts of huge u64s must not be
        // allowed to wrap or trigger giant allocations.
        let len_field = |pos: &mut usize| -> Result<usize, GelfError> {
            let n = u64_at(pos)?;
            let n = usize::try_from(n).map_err(|_| GelfError::Truncated)?;
            if n > bytes.len() {
                return Err(GelfError::Truncated);
            }
            Ok(n)
        };
        let tlen = len_field(&mut pos)?;
        let text = take(&mut pos, tlen)?.to_vec();
        let dlen = len_field(&mut pos)?;
        let data = take(&mut pos, dlen)?.to_vec();
        let nsyms = len_field(&mut pos)?;
        let mut dynsyms = Vec::with_capacity(nsyms.min(1024));
        for _ in 0..nsyms {
            let nlen = u64_at(&mut pos)? as usize;
            let name = std::str::from_utf8(take(&mut pos, nlen)?)
                .map_err(|_| GelfError::BadString)?
                .to_owned();
            let plt_vaddr = u64_at(&mut pos)?;
            dynsyms.push(DynSym { name, plt_vaddr });
        }
        let nlocal = len_field(&mut pos)?;
        let mut symbols = HashMap::with_capacity(nlocal.min(4096));
        for _ in 0..nlocal {
            let nlen = u64_at(&mut pos)? as usize;
            let name = std::str::from_utf8(take(&mut pos, nlen)?)
                .map_err(|_| GelfError::BadString)?
                .to_owned();
            let addr = u64_at(&mut pos)?;
            symbols.insert(name, addr);
        }
        let bin = GuestBinary { entry, text, data, dynsyms, symbols };
        bin.validate()?;
        Ok(bin)
    }

    /// Checks the layout invariants every loaded binary must satisfy:
    /// sections fit their address-space slots, the entry point and every
    /// `.dynsym` PLT address lie inside `.text`.
    /// [`from_bytes`](Self::from_bytes) applies this automatically; loaders with other
    /// sources (e.g. a builder bypass) can call it directly.
    pub fn validate(&self) -> Result<(), GelfError> {
        let text_end = TEXT_BASE + self.text.len() as u64;
        if text_end > DATA_BASE {
            return Err(GelfError::SectionOverlap {
                section: ".text",
                end: text_end,
                limit: DATA_BASE,
            });
        }
        let data_end = DATA_BASE + self.data.len() as u64;
        if data_end > HEAP_BASE {
            return Err(GelfError::SectionOverlap {
                section: ".data",
                end: data_end,
                limit: HEAP_BASE,
            });
        }
        if self.entry < TEXT_BASE || self.entry >= text_end {
            return Err(GelfError::EntryOutOfRange { entry: self.entry });
        }
        for s in &self.dynsyms {
            if s.plt_vaddr < TEXT_BASE || s.plt_vaddr >= text_end {
                return Err(GelfError::SymbolOutOfRange {
                    name: s.name.clone(),
                    plt_vaddr: s.plt_vaddr,
                });
            }
        }
        Ok(())
    }

    /// Looks up a defined symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }
}

/// Builds a [`GuestBinary`] from assembly plus data and imports.
///
/// PLT stubs are emitted through [`GelfBuilder::plt_stub`]: a stub is a
/// plain `jmp` to the guest implementation, and its address is recorded in
/// `.dynsym` so the host linker can intercept it.
#[derive(Debug)]
pub struct GelfBuilder {
    /// The text assembler (exposed for direct emission).
    pub asm: Assembler,
    data: Vec<u8>,
    imports: Vec<String>,
    entry_label: String,
}

impl GelfBuilder {
    /// Creates a builder; execution starts at `entry_label`.
    pub fn new(entry_label: &str) -> GelfBuilder {
        GelfBuilder {
            asm: Assembler::new(TEXT_BASE),
            data: Vec::new(),
            imports: Vec::new(),
            entry_label: entry_label.to_owned(),
        }
    }

    /// Emits the PLT stub for imported function `name`, jumping to the
    /// guest implementation label `guest_impl` (which must be defined
    /// elsewhere in the text). Call sites use `call_plt(name)`.
    pub fn plt_stub(&mut self, name: &str, guest_impl: &str) -> &mut Self {
        self.asm.label(&plt_label(name));
        self.asm.jmp_to(guest_impl);
        self.imports.push(name.to_owned());
        self
    }

    /// Calls an imported function through its PLT entry.
    pub fn call_plt(&mut self, name: &str) -> &mut Self {
        self.asm.call_to(&plt_label(name));
        self
    }

    /// Appends little-endian `u64` words to `.data`; returns their vaddr.
    pub fn data_u64(&mut self, words: &[u64]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends raw bytes to `.data` (8-byte aligned); returns their vaddr.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        addr
    }

    /// Reserves `n` zero bytes in `.data`; returns their vaddr.
    pub fn data_zeroed(&mut self, n: usize) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.resize(self.data.len() + n, 0);
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        addr
    }

    /// Assembles everything into a [`GuestBinary`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for label problems (including an undefined
    /// entry label).
    pub fn finish(self) -> Result<GuestBinary, AsmError> {
        let entry_label = self.entry_label;
        let (text, symbols) = self.asm.finish()?;
        let entry = *symbols
            .get(&entry_label)
            .ok_or_else(|| AsmError::UndefinedLabel(entry_label.clone()))?;
        let dynsyms = self
            .imports
            .iter()
            .map(|name| {
                let plt_vaddr = symbols[&plt_label(name)];
                DynSym { name: clean_name(name), plt_vaddr }
            })
            .collect();
        Ok(GuestBinary { entry, text, data: self.data, dynsyms, symbols })
    }
}

fn plt_label(name: &str) -> String {
    format!("{name}@plt")
}

fn clean_name(name: &str) -> String {
    name.to_owned()
}

/// Convenience: the address register conventionally used to reach `.data`.
pub const DATA_REG: Gpr = Gpr::R15;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;

    #[test]
    fn build_serialize_parse_roundtrip() {
        let mut b = GelfBuilder::new("main");
        let buf = b.data_u64(&[1, 2, 3]);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RDI, buf);
        b.call_plt("sin");
        b.asm.hlt();
        b.plt_stub("sin", "guest_sin");
        b.asm.label("guest_sin");
        b.asm.ret();
        let bin = b.finish().expect("builder");
        assert_eq!(bin.entry, TEXT_BASE);
        assert_eq!(bin.dynsyms.len(), 1);
        assert_eq!(bin.dynsyms[0].name, "sin");
        assert_eq!(bin.symbols["sin@plt"], bin.dynsyms[0].plt_vaddr);
        assert_eq!(bin.data.len(), 24);

        let bytes = bin.to_bytes();
        let parsed = GuestBinary::from_bytes(&bytes).expect("parse");
        assert_eq!(parsed, bin);
    }

    #[test]
    fn plt_stub_is_a_jmp_to_the_guest_impl() {
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        b.asm.hlt();
        b.plt_stub("f", "impl_f");
        b.asm.label("impl_f");
        b.asm.ret();
        let bin = b.finish().expect("builder");
        let off = (bin.dynsyms[0].plt_vaddr - TEXT_BASE) as usize;
        let (insn, n) = Insn::decode(&bin.text[off..]).expect("decode stub");
        match insn {
            Insn::Jmp { rel } => {
                let target = bin.dynsyms[0].plt_vaddr + n as u64 + rel as i64 as u64;
                assert_eq!(target, bin.symbols["impl_f"]);
            }
            other => unreachable!("PLT stub is {other:?}, expected jmp"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(GuestBinary::from_bytes(b"nope"), Err(GelfError::Truncated));
        assert_eq!(GuestBinary::from_bytes(b"XXXXX____"), Err(GelfError::BadMagic));
        let mut b = GelfBuilder::new("m");
        b.asm.label("m");
        b.asm.hlt();
        let bytes = b.finish().expect("builder").to_bytes();
        assert_eq!(GuestBinary::from_bytes(&bytes[..bytes.len() - 1]), Err(GelfError::Truncated));
    }

    #[test]
    fn entry_label_must_exist() {
        let mut b = GelfBuilder::new("missing");
        b.asm.label("other");
        b.asm.hlt();
        assert!(matches!(b.finish(), Err(AsmError::UndefinedLabel(_))));
    }
}
