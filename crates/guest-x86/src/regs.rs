//! MiniX86 register file and condition flags.

use std::fmt;

/// A MiniX86 general-purpose register (64-bit).
///
/// The names follow x86-64; the numbering follows the classic encoding
/// (`RAX`=0 … `RDI`=7, `R8`…`R15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(pub u8);

impl Gpr {
    /// Accumulator; return value; implicit operand of `CMPXCHG`/`DIV`.
    pub const RAX: Gpr = Gpr(0);
    /// Counter; 4th argument.
    pub const RCX: Gpr = Gpr(1);
    /// Data; 3rd argument; remainder of `DIV`.
    pub const RDX: Gpr = Gpr(2);
    /// Callee-saved.
    pub const RBX: Gpr = Gpr(3);
    /// Stack pointer.
    pub const RSP: Gpr = Gpr(4);
    /// Frame pointer (callee-saved).
    pub const RBP: Gpr = Gpr(5);
    /// 2nd argument.
    pub const RSI: Gpr = Gpr(6);
    /// 1st argument.
    pub const RDI: Gpr = Gpr(7);
    /// 5th argument.
    pub const R8: Gpr = Gpr(8);
    /// 6th argument.
    pub const R9: Gpr = Gpr(9);
    /// Caller-saved scratch.
    pub const R10: Gpr = Gpr(10);
    /// Caller-saved scratch.
    pub const R11: Gpr = Gpr(11);
    /// Callee-saved.
    pub const R12: Gpr = Gpr(12);
    /// Callee-saved.
    pub const R13: Gpr = Gpr(13);
    /// Callee-saved.
    pub const R14: Gpr = Gpr(14);
    /// Callee-saved.
    pub const R15: Gpr = Gpr(15);

    /// Number of GPRs.
    pub const COUNT: usize = 16;

    /// The System-V-style integer argument registers, in order.
    pub const ARGS: [Gpr; 6] = [Gpr::RDI, Gpr::RSI, Gpr::RDX, Gpr::RCX, Gpr::R8, Gpr::R9];

    /// Index into a register file array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        match NAMES.get(self.0 as usize) {
            Some(n) => f.write_str(n),
            None => write!(f, "r?{}", self.0),
        }
    }
}

/// Condition flags produced by `CMP`/`TEST` and the ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag (bit 63 of the result).
    pub sf: bool,
    /// Carry flag (unsigned overflow / borrow).
    pub cf: bool,
    /// Overflow flag (signed overflow).
    pub of: bool,
}

impl Flags {
    /// Flags after computing `a - b` (the `CMP` semantics).
    pub fn from_sub(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let sa = a as i64;
        let sb = b as i64;
        let (sres, soverflow) = sa.overflowing_sub(sb);
        let _ = sres;
        Flags { zf: res == 0, sf: (res as i64) < 0, cf: borrow, of: soverflow }
    }

    /// Flags after a logical operation producing `res` (CF=OF=0).
    pub fn from_logic(res: u64) -> Flags {
        Flags { zf: res == 0, sf: (res as i64) < 0, cf: false, of: false }
    }

    /// Flags after computing `a + b`.
    pub fn from_add(a: u64, b: u64) -> Flags {
        let (res, carry) = a.overflowing_add(b);
        let (_, soverflow) = (a as i64).overflowing_add(b as i64);
        Flags { zf: res == 0, sf: (res as i64) < 0, cf: carry, of: soverflow }
    }
}

/// Branch conditions (the `Jcc` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// `JE` / `JZ`: ZF.
    E = 0,
    /// `JNE` / `JNZ`: !ZF.
    Ne = 1,
    /// `JL`: SF≠OF (signed less).
    L = 2,
    /// `JGE`: SF=OF.
    Ge = 3,
    /// `JLE`: ZF ∨ SF≠OF.
    Le = 4,
    /// `JG`: !ZF ∧ SF=OF.
    G = 5,
    /// `JB`: CF (unsigned below).
    B = 6,
    /// `JAE`: !CF.
    Ae = 7,
    /// `JBE`: CF ∨ ZF.
    Be = 8,
    /// `JA`: !CF ∧ !ZF.
    A = 9,
    /// `JS`: SF.
    S = 10,
    /// `JNS`: !SF.
    Ns = 11,
}

impl Cond {
    /// Evaluates the condition against `flags`.
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }

    /// Decodes from the byte produced by `self as u8`.
    pub fn from_u8(v: u8) -> Option<Cond> {
        Some(match v {
            0 => Cond::E,
            1 => Cond::Ne,
            2 => Cond::L,
            3 => Cond::Ge,
            4 => Cond::Le,
            5 => Cond::G,
            6 => Cond::B,
            7 => Cond::Ae,
            8 => Cond::Be,
            9 => Cond::A,
            10 => Cond::S,
            11 => Cond::Ns,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_flag_semantics() {
        let f = Flags::from_sub(5, 5);
        assert!(f.zf && !f.cf);
        assert!(Cond::E.eval(f));
        assert!(Cond::Ge.eval(f));
        assert!(Cond::Le.eval(f));
        assert!(!Cond::L.eval(f));

        let f = Flags::from_sub(3, 5);
        assert!(!f.zf && f.cf);
        assert!(Cond::L.eval(f));
        assert!(Cond::B.eval(f));
        assert!(!Cond::G.eval(f));

        // Signed vs unsigned disagreement: u64::MAX is -1 signed.
        let f = Flags::from_sub(u64::MAX, 1);
        assert!(Cond::A.eval(f), "u64::MAX > 1 unsigned");
        assert!(Cond::L.eval(f), "-1 < 1 signed");
        assert!(!Cond::G.eval(f));
    }

    #[test]
    fn signed_comparison_uses_of() {
        // i64::MIN - 1 overflows: signed less-than must still hold.
        let f = Flags::from_sub(i64::MIN as u64, 1);
        assert!(Cond::L.eval(f));
        assert!(!Cond::Ge.eval(f));
    }

    #[test]
    fn cond_negation_is_involutive() {
        for v in 0..12 {
            let c = Cond::from_u8(v).unwrap();
            assert_eq!(c.negate().negate(), c);
            // Negation flips evaluation on arbitrary flags.
            for f in [
                Flags::from_sub(1, 2),
                Flags::from_sub(2, 1),
                Flags::from_sub(1, 1),
                Flags::from_logic(0),
            ] {
                assert_ne!(c.eval(f), c.negate().eval(f));
            }
        }
    }

    #[test]
    fn gpr_display() {
        assert_eq!(Gpr::RAX.to_string(), "rax");
        assert_eq!(Gpr::R15.to_string(), "r15");
    }
}
