//! A reference interpreter for MiniX86.
//!
//! The interpreter executes guest binaries directly (no translation) under
//! sequentially consistent interleaving. It is the *functional oracle* of
//! the DBT test-suite: for data-race-free programs its results must match
//! the translated program running on the weak host simulator, whatever the
//! schedule. (Weak-memory behaviors are covered by the axiomatic layer,
//! not by this interpreter.)

use crate::gelf::{GuestBinary, DATA_BASE, STACK_SIZE, STACK_TOP, TEXT_BASE};
use crate::insn::{syscalls, Insn, Operand};
use crate::regs::{Flags, Gpr};
use std::collections::HashMap;
use std::fmt;

const PAGE: usize = 4096;

/// Sparse byte-addressed guest memory (zero-filled on first touch).
#[derive(Debug, Clone, Default)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8; PAGE]>>,
}

impl SparseMem {
    /// Creates empty memory.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE as u64)) {
            Some(p) => p[(addr % PAGE as u64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self.pages.entry(addr / PAGE as u64).or_insert_with(|| Box::new([0u8; PAGE]));
        page[(addr % PAGE as u64) as usize] = val;
    }

    /// Reads a little-endian u64 (unaligned allowed).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        for (i, byte) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *byte);
        }
    }

    /// Copies a byte slice in.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Copies `len` bytes out.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Loads a guest binary's sections.
    pub fn load_binary(&mut self, bin: &GuestBinary) {
        self.write_bytes(TEXT_BASE, &bin.text);
        self.write_bytes(DATA_BASE, &bin.data);
    }
}

/// One guest thread.
#[derive(Debug, Clone)]
struct ThreadState {
    regs: [u64; Gpr::COUNT],
    flags: Flags,
    pc: u64,
    halted: bool,
    exit_val: u64,
    /// Set while blocked in `join(tid)`.
    joining: Option<usize>,
}

impl ThreadState {
    fn new(entry: u64, stack_top: u64) -> ThreadState {
        let mut regs = [0u64; Gpr::COUNT];
        regs[Gpr::RSP.index()] = stack_top;
        ThreadState {
            regs,
            flags: Flags::default(),
            pc: entry,
            halted: false,
            exit_val: 0,
            joining: None,
        }
    }
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Instruction decoding failed at the given pc.
    Decode {
        /// Faulting program counter.
        pc: u64,
        /// Underlying decode error.
        cause: crate::insn::DecodeError,
    },
    /// The step budget was exhausted (runaway program).
    OutOfFuel,
    /// All live threads are blocked in `join`.
    Deadlock,
    /// Unknown syscall number.
    BadSyscall(u64),
    /// `join` on an invalid thread id.
    BadJoin(u64),
    /// `step` was asked to run a thread that is out of range or halted.
    NotRunnable {
        /// The offending thread id.
        tid: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Decode { pc, cause } => write!(f, "decode fault at {pc:#x}: {cause}"),
            InterpError::OutOfFuel => write!(f, "step budget exhausted"),
            InterpError::Deadlock => write!(f, "all threads blocked in join"),
            InterpError::BadSyscall(n) => write!(f, "unknown syscall {n}"),
            InterpError::BadJoin(t) => write!(f, "join on invalid thread {t}"),
            InterpError::NotRunnable { tid } => {
                write!(f, "thread {tid} is not runnable (halted or out of range)")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The reference interpreter.
#[derive(Debug)]
pub struct Interp {
    /// Guest memory (public so tests can inspect results).
    pub mem: SparseMem,
    threads: Vec<ThreadState>,
    /// Bytes written via the `WRITE` syscall.
    pub output: Vec<u8>,
    steps_executed: u64,
}

impl Interp {
    /// Loads a binary and prepares thread 0 at its entry point.
    pub fn new(bin: &GuestBinary) -> Interp {
        let mut mem = SparseMem::new();
        mem.load_binary(bin);
        Interp {
            mem,
            threads: vec![ThreadState::new(bin.entry, STACK_TOP)],
            output: Vec::new(),
            steps_executed: 0,
        }
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps_executed
    }

    /// Register of a thread (for assertions).
    pub fn reg(&self, tid: usize, r: Gpr) -> u64 {
        self.threads[tid].regs[r.index()]
    }

    /// Exit value of a halted thread.
    pub fn exit_val(&self, tid: usize) -> u64 {
        self.threads[tid].exit_val
    }

    /// `true` if every thread has halted.
    pub fn finished(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Runs round-robin (quantum 1) until all threads halt or `fuel`
    /// instructions have executed.
    ///
    /// # Errors
    ///
    /// Propagates decode faults, bad syscalls, deadlock, or fuel
    /// exhaustion.
    pub fn run(&mut self, fuel: u64) -> Result<(), InterpError> {
        self.run_with_schedule(fuel, |step, n| (step as usize) % n)
    }

    /// Runs with a seeded pseudo-random schedule (for interleaving
    /// robustness tests).
    ///
    /// # Errors
    ///
    /// Same as [`Interp::run`].
    pub fn run_seeded(&mut self, fuel: u64, seed: u64) -> Result<(), InterpError> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        self.run_with_schedule(fuel, move |_, n| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % n
        })
    }

    fn run_with_schedule<F>(&mut self, fuel: u64, mut pick: F) -> Result<(), InterpError>
    where
        F: FnMut(u64, usize) -> usize,
    {
        let mut budget = fuel;
        loop {
            if self.finished() {
                return Ok(());
            }
            if budget == 0 {
                return Err(InterpError::OutOfFuel);
            }
            let runnable: Vec<usize> =
                (0..self.threads.len()).filter(|&t| !self.threads[t].halted).collect();
            // Resolve joins (a join on a halted thread unblocks).
            let mut progressed = false;
            for &t in &runnable {
                if let Some(target) = self.threads[t].joining {
                    if self.threads[target].halted {
                        let val = self.threads[target].exit_val;
                        self.threads[t].joining = None;
                        self.threads[t].regs[Gpr::RAX.index()] = val;
                        progressed = true;
                    }
                }
            }
            let ready: Vec<usize> =
                runnable.iter().copied().filter(|&t| self.threads[t].joining.is_none()).collect();
            if ready.is_empty() {
                if progressed {
                    continue;
                }
                return Err(InterpError::Deadlock);
            }
            let choice = pick(self.steps_executed, ready.len()) % ready.len();
            let t = ready[choice];
            self.step(t)?;
            budget -= 1;
        }
    }

    /// Executes one instruction of thread `tid`.
    ///
    /// # Errors
    ///
    /// Decode faults, bad syscalls, and [`InterpError::NotRunnable`] if
    /// `tid` is out of range or the thread has already halted.
    pub fn step(&mut self, tid: usize) -> Result<(), InterpError> {
        match self.threads.get(tid) {
            Some(th) if !th.halted => {}
            _ => return Err(InterpError::NotRunnable { tid }),
        }
        let pc = self.threads[tid].pc;
        let window = self.mem.read_bytes(pc, 16);
        let (insn, len) =
            Insn::decode(&window).map_err(|cause| InterpError::Decode { pc, cause })?;
        let next = pc + len as u64;
        self.steps_executed += 1;

        let get = |t: &ThreadState, r: Gpr| t.regs[r.index()];
        let operand = |t: &ThreadState, o: Operand| match o {
            Operand::Reg(r) => t.regs[r.index()],
            Operand::Imm(i) => i,
        };

        let th = &mut self.threads[tid];
        th.pc = next;
        match insn {
            Insn::MovRI { dst, imm } => th.regs[dst.index()] = imm,
            Insn::MovRR { dst, src } => th.regs[dst.index()] = get(th, src),
            Insn::Load { dst, base, disp } => {
                let addr = get(th, base).wrapping_add(disp as i64 as u64);
                th.regs[dst.index()] = self.mem.read_u64(addr);
            }
            Insn::Store { base, disp, src } => {
                let addr = get(th, base).wrapping_add(disp as i64 as u64);
                let v = get(th, src);
                self.mem.write_u64(addr, v);
            }
            Insn::LoadB { dst, base, disp } => {
                let addr = get(th, base).wrapping_add(disp as i64 as u64);
                th.regs[dst.index()] = self.mem.read_u8(addr) as u64;
            }
            Insn::StoreB { base, disp, src } => {
                let addr = get(th, base).wrapping_add(disp as i64 as u64);
                let v = get(th, src) as u8;
                self.mem.write_u8(addr, v);
            }
            Insn::MulWide { src } => {
                let a = get(th, Gpr::RAX) as u128;
                let b = get(th, src) as u128;
                let p = a * b;
                th.regs[Gpr::RAX.index()] = p as u64;
                th.regs[Gpr::RDX.index()] = (p >> 64) as u64;
            }
            Insn::Lea { dst, base, disp } => {
                th.regs[dst.index()] = get(th, base).wrapping_add(disp as i64 as u64);
            }
            Insn::Alu { op, dst, src } => {
                let a = get(th, dst);
                let b = operand(th, src);
                let r = op.apply(a, b);
                th.regs[dst.index()] = r;
                th.flags = match op {
                    crate::insn::AluOp::Add => Flags::from_add(a, b),
                    crate::insn::AluOp::Sub => Flags::from_sub(a, b),
                    _ => Flags::from_logic(r),
                };
            }
            Insn::Div { src } => {
                let d = get(th, src);
                let a = get(th, Gpr::RAX);
                // Div-by-zero yields (0, a) uniformly across all layers of
                // this project (Arm-style), documented in DESIGN.md.
                let (q, r) = (a.checked_div(d).unwrap_or(0), a.checked_rem(d).unwrap_or(a));
                th.regs[Gpr::RAX.index()] = q;
                th.regs[Gpr::RDX.index()] = r;
            }
            Insn::Fp { op, dst, src } => {
                let a = get(th, dst);
                let b = get(th, src);
                th.regs[dst.index()] = op.apply(a, b);
            }
            Insn::Cmp { a, b } => {
                th.flags = Flags::from_sub(get(th, a), operand(th, b));
            }
            Insn::Test { a, b } => {
                th.flags = Flags::from_logic(get(th, a) & operand(th, b));
            }
            Insn::Jcc { cond, rel } => {
                if cond.eval(th.flags) {
                    th.pc = next.wrapping_add(rel as i64 as u64);
                }
            }
            Insn::Jmp { rel } => th.pc = next.wrapping_add(rel as i64 as u64),
            Insn::JmpReg { reg } => th.pc = get(th, reg),
            Insn::Call { rel } => {
                th.regs[Gpr::RSP.index()] = th.regs[Gpr::RSP.index()].wrapping_sub(8);
                let sp = th.regs[Gpr::RSP.index()];
                self.mem.write_u64(sp, next);
                self.threads[tid].pc = next.wrapping_add(rel as i64 as u64);
            }
            Insn::CallReg { reg } => {
                let target = get(th, reg);
                th.regs[Gpr::RSP.index()] = th.regs[Gpr::RSP.index()].wrapping_sub(8);
                let sp = th.regs[Gpr::RSP.index()];
                self.mem.write_u64(sp, next);
                self.threads[tid].pc = target;
            }
            Insn::Ret => {
                let sp = th.regs[Gpr::RSP.index()];
                th.regs[Gpr::RSP.index()] = sp.wrapping_add(8);
                let ra = self.mem.read_u64(sp);
                self.threads[tid].pc = ra;
            }
            Insn::Push { src } => {
                let v = get(th, src);
                th.regs[Gpr::RSP.index()] = th.regs[Gpr::RSP.index()].wrapping_sub(8);
                let sp = th.regs[Gpr::RSP.index()];
                self.mem.write_u64(sp, v);
            }
            Insn::Pop { dst } => {
                let sp = th.regs[Gpr::RSP.index()];
                th.regs[dst.index()] = self.mem.read_u64(sp);
                th.regs[Gpr::RSP.index()] = sp.wrapping_add(8);
            }
            Insn::LockCmpxchg { base, disp, src } => {
                let addr = get(th, base).wrapping_add(disp as i64 as u64);
                let expected = get(th, Gpr::RAX);
                let newval = get(th, src);
                let cur = self.mem.read_u64(addr);
                if cur == expected {
                    self.mem.write_u64(addr, newval);
                    self.threads[tid].flags = Flags::from_sub(0, 0); // ZF=1
                } else {
                    self.threads[tid].regs[Gpr::RAX.index()] = cur;
                    self.threads[tid].flags = Flags::from_sub(1, 0); // ZF=0
                }
            }
            Insn::LockXadd { base, disp, src } => {
                let addr = get(th, base).wrapping_add(disp as i64 as u64);
                let add = get(th, src);
                let cur = self.mem.read_u64(addr);
                self.mem.write_u64(addr, cur.wrapping_add(add));
                self.threads[tid].regs[src.index()] = cur;
            }
            Insn::Mfence | Insn::Nop => {}
            Insn::Hlt => {
                th.halted = true;
                th.exit_val = th.regs[Gpr::RAX.index()];
            }
            Insn::Syscall => {
                let n = get(th, Gpr::RAX);
                let a1 = get(th, Gpr::RDI);
                let a2 = get(th, Gpr::RSI);
                let a3 = get(th, Gpr::RDX);
                match n {
                    syscalls::EXIT => {
                        th.halted = true;
                        th.exit_val = a1;
                    }
                    syscalls::WRITE => {
                        let _fd = a1;
                        let buf = self.mem.read_bytes(a2, a3 as usize);
                        self.output.extend_from_slice(&buf);
                        self.threads[tid].regs[Gpr::RAX.index()] = a3;
                    }
                    syscalls::SPAWN => {
                        let new_tid = self.threads.len();
                        let stack_top = STACK_TOP - new_tid as u64 * STACK_SIZE;
                        let mut t = ThreadState::new(a1, stack_top);
                        t.regs[Gpr::RDI.index()] = a2;
                        self.threads.push(t);
                        self.threads[tid].regs[Gpr::RAX.index()] = new_tid as u64;
                    }
                    syscalls::JOIN => {
                        let target = a1 as usize;
                        if target >= self.threads.len() || target == tid {
                            return Err(InterpError::BadJoin(a1));
                        }
                        if self.threads[target].halted {
                            let v = self.threads[target].exit_val;
                            self.threads[tid].regs[Gpr::RAX.index()] = v;
                        } else {
                            self.threads[tid].joining = Some(target);
                            // Stay on the syscall… no: block at the *next*
                            // pc; the scheduler delivers the result.
                        }
                    }
                    syscalls::GETTID => {
                        self.threads[tid].regs[Gpr::RAX.index()] = tid as u64;
                    }
                    other => return Err(InterpError::BadSyscall(other)),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gelf::GelfBuilder;
    use crate::insn::AluOp;

    fn run(bin: &GuestBinary) -> Interp {
        let mut i = Interp::new(bin);
        i.run(1_000_000).unwrap();
        i
    }

    #[test]
    fn loop_and_arithmetic() {
        // Sum 1..=10 into RAX.
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, 0);
        b.asm.mov_ri(Gpr::RCX, 10);
        b.asm.label("loop");
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
        b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
        b.asm.cmp_ri(Gpr::RCX, 0);
        b.asm.jcc_to(crate::regs::Cond::Ne, "loop");
        b.asm.hlt();
        let i = run(&b.finish().unwrap());
        assert_eq!(i.exit_val(0), 55);
    }

    #[test]
    fn call_ret_and_stack() {
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RDI, 20);
        b.asm.call_to("double");
        b.asm.hlt();
        b.asm.label("double");
        b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDI);
        b.asm.ret();
        let i = run(&b.finish().unwrap());
        assert_eq!(i.exit_val(0), 40);
    }

    #[test]
    fn memory_and_data_section() {
        let mut b = GelfBuilder::new("main");
        let tbl = b.data_u64(&[7, 8, 9]);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RSI, tbl);
        b.asm.load(Gpr::RAX, Gpr::RSI, 8); // 8
        b.asm.load(Gpr::RBX, Gpr::RSI, 16); // 9
        b.asm.alu_rr(AluOp::Mul, Gpr::RAX, Gpr::RBX);
        b.asm.store(Gpr::RSI, 0, Gpr::RAX);
        b.asm.hlt();
        let i = run(&b.finish().unwrap());
        assert_eq!(i.exit_val(0), 72);
        assert_eq!(i.mem.read_u64(DATA_BASE), 72);
    }

    #[test]
    fn cmpxchg_success_and_failure() {
        let mut b = GelfBuilder::new("main");
        let cell = b.data_u64(&[5]);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RDI, cell);
        b.asm.mov_ri(Gpr::RAX, 5); // expected — matches
        b.asm.mov_ri(Gpr::RSI, 6);
        b.asm.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
        b.asm.jcc_to(crate::regs::Cond::Ne, "fail");
        b.asm.mov_ri(Gpr::RAX, 100); // success path
        b.asm.hlt();
        b.asm.label("fail");
        b.asm.mov_ri(Gpr::RAX, 200);
        b.asm.hlt();
        let i = run(&b.finish().unwrap());
        assert_eq!(i.exit_val(0), 100);
        assert_eq!(i.mem.read_u64(DATA_BASE), 6);
    }

    #[test]
    fn spawn_join_threads() {
        // Child doubles its argument; parent joins and returns it.
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
        b.asm.mov_label(Gpr::RDI, "child");
        b.asm.mov_ri(Gpr::RSI, 21);
        b.asm.syscall();
        b.asm.mov_rr(Gpr::RDI, Gpr::RAX); // tid
        b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
        b.asm.syscall();
        b.asm.hlt(); // RAX = child's exit value
        b.asm.label("child");
        b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDI);
        b.asm.mov_rr(Gpr::RDI, Gpr::RAX);
        b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
        b.asm.syscall();
        let i = run(&b.finish().unwrap());
        assert_eq!(i.exit_val(0), 42);
    }

    #[test]
    fn write_syscall_collects_output() {
        let mut b = GelfBuilder::new("main");
        let msg = b.data_bytes(b"hello");
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, syscalls::WRITE);
        b.asm.mov_ri(Gpr::RDI, 1);
        b.asm.mov_ri(Gpr::RSI, msg);
        b.asm.mov_ri(Gpr::RDX, 5);
        b.asm.syscall();
        b.asm.hlt();
        let i = run(&b.finish().unwrap());
        assert_eq!(i.output, b"hello");
    }

    #[test]
    fn seeded_schedules_agree_on_synchronized_counter() {
        // Two threads xadd a shared counter 100 times each; any schedule
        // must end with 200.
        let mut b = GelfBuilder::new("main");
        let counter = b.data_u64(&[0]);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
        b.asm.mov_label(Gpr::RDI, "worker");
        b.asm.mov_ri(Gpr::RSI, 0);
        b.asm.syscall();
        b.asm.mov_rr(Gpr::RBX, Gpr::RAX);
        b.asm.call_to("worker_body");
        b.asm.mov_rr(Gpr::RDI, Gpr::RBX);
        b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
        b.asm.syscall();
        b.asm.mov_ri(Gpr::RDI, counter);
        b.asm.load(Gpr::RAX, Gpr::RDI, 0);
        b.asm.hlt();
        b.asm.label("worker");
        b.asm.call_to("worker_body");
        b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
        b.asm.syscall();
        b.asm.label("worker_body");
        b.asm.mov_ri(Gpr::RDI, counter);
        b.asm.mov_ri(Gpr::RCX, 100);
        b.asm.label("loop");
        b.asm.mov_ri(Gpr::RDX, 1);
        b.asm.xadd(Gpr::RDI, 0, Gpr::RDX);
        b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
        b.asm.cmp_ri(Gpr::RCX, 0);
        b.asm.jcc_to(crate::regs::Cond::Ne, "loop");
        b.asm.ret();
        let bin = b.finish().unwrap();
        for seed in 0..5 {
            let mut i = Interp::new(&bin);
            i.run_seeded(1_000_000, seed).unwrap();
            assert_eq!(i.exit_val(0), 200, "seed {seed}");
        }
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut b = GelfBuilder::new("main");
        b.asm.label("main");
        b.asm.jmp_to("main");
        let bin = b.finish().unwrap();
        let mut i = Interp::new(&bin);
        assert_eq!(i.run(100), Err(InterpError::OutOfFuel));
    }
}
