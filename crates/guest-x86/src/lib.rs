//! # risotto-guest-x86
//!
//! MiniX86 — the strongly-ordered guest ISA of the Risotto reproduction.
//!
//! MiniX86 stands in for x86-64 (see DESIGN.md for the substitution
//! rationale): it has the same memory-model-relevant primitives as the
//! paper's Fig. 1 (`RMOV`/`WMOV` loads and stores, `LOCK CMPXCHG` /
//! `LOCK XADD` RMWs, `MFENCE`), an x86-TSO memory model, a variable-length
//! binary encoding, and the ALU/branch/call/FP repertoire the evaluation
//! workloads need.
//!
//! The crate provides:
//!
//! * [`Insn`] with byte-level [`Insn::encode`] / [`Insn::decode`] — what
//!   the DBT frontend consumes,
//! * [`Assembler`] — two-pass, label-resolving,
//! * [`GelfBuilder`] / [`GuestBinary`] — the GELF executable format with
//!   `.text` / `.data` / `.dynsym`+PLT sections for the host linker, and
//! * [`Interp`] — a reference interpreter used as the functional oracle in
//!   differential tests.
//!
//! ## Example
//!
//! ```
//! use risotto_guest_x86::{AluOp, GelfBuilder, Gpr, Interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GelfBuilder::new("main");
//! b.asm.label("main");
//! b.asm.mov_ri(Gpr::RAX, 6);
//! b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 7);
//! b.asm.hlt();
//! let bin = b.finish()?;
//! let mut interp = Interp::new(&bin);
//! interp.run(1000)?;
//! assert_eq!(interp.exit_val(0), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod gelf;
mod insn;
mod interp;
mod regs;
pub mod softfloat;

pub use asm::{AsmError, Assembler};
pub use gelf::{
    DynSym, GelfBuilder, GelfError, GuestBinary, DATA_BASE, DATA_REG, HEAP_BASE, STACK_SIZE,
    STACK_TOP, TEXT_BASE,
};
pub use insn::{disassemble, syscalls, AluOp, DecodeError, FpOp, Insn, Operand};
pub use interp::{Interp, InterpError, SparseMem};
pub use regs::{Cond, Flags, Gpr};
