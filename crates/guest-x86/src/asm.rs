//! A two-pass label-resolving assembler for MiniX86.
//!
//! The workloads and guest libraries of the evaluation are written against
//! this assembler; it produces the raw `.text` bytes plus a symbol table,
//! which [`crate::gelf`] packages into a guest binary.

use crate::insn::{AluOp, FpOp, Insn, Operand};
use crate::regs::{Cond, Gpr};
use std::collections::HashMap;
use std::fmt;

/// An assembler item: either a concrete instruction or a control-flow
/// instruction whose target is a named label.
#[derive(Debug, Clone)]
enum Item {
    Insn(Insn),
    JccTo(Cond, String),
    JmpTo(String),
    CallTo(String),
    /// `mov dst, &label` — materializes a label's virtual address.
    MovLabel(Gpr, String),
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// The MiniX86 assembler.
///
/// # Example
///
/// ```
/// use risotto_guest_x86::{Assembler, Gpr};
///
/// # fn main() -> Result<(), risotto_guest_x86::AsmError> {
/// let mut a = Assembler::new(0x10000);
/// a.label("loop");
/// a.alu_ri(risotto_guest_x86::AluOp::Sub, Gpr::RDI, 1);
/// a.cmp_ri(Gpr::RDI, 0);
/// a.jcc_to(risotto_guest_x86::Cond::Ne, "loop");
/// a.ret();
/// let (bytes, symbols) = a.finish()?;
/// assert_eq!(symbols["loop"], 0x10000);
/// assert!(!bytes.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Assembler {
    base: u64,
    items: Vec<Item>,
    /// label → item index
    labels: HashMap<String, usize>,
    errors: Vec<AsmError>,
}

impl Assembler {
    /// Creates an assembler whose output is loaded at virtual address
    /// `base`.
    pub fn new(base: u64) -> Assembler {
        Assembler { base, items: Vec::new(), labels: HashMap::new(), errors: Vec::new() }
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_owned(), self.items.len()).is_some() {
            self.errors.push(AsmError::DuplicateLabel(name.to_owned()));
        }
        self
    }

    /// Emits a raw instruction.
    pub fn insn(&mut self, i: Insn) -> &mut Self {
        self.items.push(Item::Insn(i));
        self
    }

    // --- ergonomic emitters ------------------------------------------

    /// `mov dst, imm`.
    pub fn mov_ri(&mut self, dst: Gpr, imm: u64) -> &mut Self {
        self.insn(Insn::MovRI { dst, imm })
    }

    /// `mov dst, src`.
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) -> &mut Self {
        self.insn(Insn::MovRR { dst, src })
    }

    /// `mov dst, &label`.
    pub fn mov_label(&mut self, dst: Gpr, label: &str) -> &mut Self {
        self.items.push(Item::MovLabel(dst, label.to_owned()));
        self
    }

    /// `mov dst, [base+disp]`.
    pub fn load(&mut self, dst: Gpr, base: Gpr, disp: i32) -> &mut Self {
        self.insn(Insn::Load { dst, base, disp })
    }

    /// `mov [base+disp], src`.
    pub fn store(&mut self, base: Gpr, disp: i32, src: Gpr) -> &mut Self {
        self.insn(Insn::Store { base, disp, src })
    }

    /// `movzx dst, byte [base+disp]`.
    pub fn load_b(&mut self, dst: Gpr, base: Gpr, disp: i32) -> &mut Self {
        self.insn(Insn::LoadB { dst, base, disp })
    }

    /// `mov byte [base+disp], src`.
    pub fn store_b(&mut self, base: Gpr, disp: i32, src: Gpr) -> &mut Self {
        self.insn(Insn::StoreB { base, disp, src })
    }

    /// `mul src` (RDX:RAX = RAX × src).
    pub fn mul_wide(&mut self, src: Gpr) -> &mut Self {
        self.insn(Insn::MulWide { src })
    }

    /// `lea dst, [base+disp]`.
    pub fn lea(&mut self, dst: Gpr, base: Gpr, disp: i32) -> &mut Self {
        self.insn(Insn::Lea { dst, base, disp })
    }

    /// `op dst, src`.
    pub fn alu_rr(&mut self, op: AluOp, dst: Gpr, src: Gpr) -> &mut Self {
        self.insn(Insn::Alu { op, dst, src: Operand::Reg(src) })
    }

    /// `op dst, imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Gpr, imm: u64) -> &mut Self {
        self.insn(Insn::Alu { op, dst, src: Operand::Imm(imm) })
    }

    /// `div src` (RAX ÷= src, RDX = remainder).
    pub fn div(&mut self, src: Gpr) -> &mut Self {
        self.insn(Insn::Div { src })
    }

    /// Floating-point `op dst, src`.
    pub fn fp(&mut self, op: FpOp, dst: Gpr, src: Gpr) -> &mut Self {
        self.insn(Insn::Fp { op, dst, src })
    }

    /// `cmp a, b`.
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) -> &mut Self {
        self.insn(Insn::Cmp { a, b: Operand::Reg(b) })
    }

    /// `cmp a, imm`.
    pub fn cmp_ri(&mut self, a: Gpr, imm: u64) -> &mut Self {
        self.insn(Insn::Cmp { a, b: Operand::Imm(imm) })
    }

    /// `test a, b`.
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) -> &mut Self {
        self.insn(Insn::Test { a, b: Operand::Reg(b) })
    }

    /// Conditional jump to a label.
    pub fn jcc_to(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.items.push(Item::JccTo(cond, label.to_owned()));
        self
    }

    /// Unconditional jump to a label.
    pub fn jmp_to(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::JmpTo(label.to_owned()));
        self
    }

    /// Call a label.
    pub fn call_to(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::CallTo(label.to_owned()));
        self
    }

    /// Indirect call.
    pub fn call_reg(&mut self, reg: Gpr) -> &mut Self {
        self.insn(Insn::CallReg { reg })
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.insn(Insn::Ret)
    }

    /// `push src`.
    pub fn push(&mut self, src: Gpr) -> &mut Self {
        self.insn(Insn::Push { src })
    }

    /// `pop dst`.
    pub fn pop(&mut self, dst: Gpr) -> &mut Self {
        self.insn(Insn::Pop { dst })
    }

    /// `lock cmpxchg [base+disp], src`.
    pub fn cmpxchg(&mut self, base: Gpr, disp: i32, src: Gpr) -> &mut Self {
        self.insn(Insn::LockCmpxchg { base, disp, src })
    }

    /// `lock xadd [base+disp], src`.
    pub fn xadd(&mut self, base: Gpr, disp: i32, src: Gpr) -> &mut Self {
        self.insn(Insn::LockXadd { base, disp, src })
    }

    /// `mfence`.
    pub fn mfence(&mut self) -> &mut Self {
        self.insn(Insn::Mfence)
    }

    /// `hlt`.
    pub fn hlt(&mut self) -> &mut Self {
        self.insn(Insn::Hlt)
    }

    /// `syscall`.
    pub fn syscall(&mut self) -> &mut Self {
        self.insn(Insn::Syscall)
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.insn(Insn::Nop)
    }

    /// Current number of items (for size heuristics in tests).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Assembles into `(text bytes, symbol table of label → vaddr)`.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered (duplicate or undefined
    /// labels).
    pub fn finish(self) -> Result<(Vec<u8>, HashMap<String, u64>), AsmError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        // Pass 1: item sizes (label-targeting items have fixed sizes).
        let sizes: Vec<usize> = self
            .items
            .iter()
            .map(|it| match it {
                Item::Insn(i) => i.encoded_len(),
                Item::JccTo(..) => Insn::Jcc { cond: Cond::E, rel: 0 }.encoded_len(),
                Item::JmpTo(_) => Insn::Jmp { rel: 0 }.encoded_len(),
                Item::CallTo(_) => Insn::Call { rel: 0 }.encoded_len(),
                Item::MovLabel(r, _) => Insn::MovRI { dst: *r, imm: 0 }.encoded_len(),
            })
            .collect();
        let mut offsets = Vec::with_capacity(self.items.len() + 1);
        let mut off = 0usize;
        for s in &sizes {
            offsets.push(off);
            off += s;
        }
        offsets.push(off);
        let label_vaddr = |name: &str| -> Result<u64, AsmError> {
            let idx =
                *self.labels.get(name).ok_or_else(|| AsmError::UndefinedLabel(name.to_owned()))?;
            Ok(self.base + offsets[idx] as u64)
        };
        // Pass 2: encode with resolved relatives.
        let mut out = Vec::with_capacity(off);
        for (idx, it) in self.items.iter().enumerate() {
            let next = self.base + offsets[idx + 1] as u64;
            match it {
                Item::Insn(i) => {
                    i.encode(&mut out);
                }
                Item::JccTo(c, l) => {
                    let rel = label_vaddr(l)? as i64 - next as i64;
                    Insn::Jcc { cond: *c, rel: rel as i32 }.encode(&mut out);
                }
                Item::JmpTo(l) => {
                    let rel = label_vaddr(l)? as i64 - next as i64;
                    Insn::Jmp { rel: rel as i32 }.encode(&mut out);
                }
                Item::CallTo(l) => {
                    let rel = label_vaddr(l)? as i64 - next as i64;
                    Insn::Call { rel: rel as i32 }.encode(&mut out);
                }
                Item::MovLabel(r, l) => {
                    Insn::MovRI { dst: *r, imm: label_vaddr(l)? }.encode(&mut out);
                }
            }
        }
        let symbols = self
            .labels
            .iter()
            .map(|(name, &idx)| (name.clone(), self.base + offsets[idx] as u64))
            .collect();
        Ok((out, symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new(0x1000);
        a.mov_ri(Gpr::RCX, 3);
        a.label("loop");
        a.alu_ri(AluOp::Sub, Gpr::RCX, 1);
        a.cmp_ri(Gpr::RCX, 0);
        a.jcc_to(Cond::Ne, "loop");
        a.jmp_to("end");
        a.nop(); // skipped
        a.label("end");
        a.ret();
        let (bytes, syms) = a.finish().unwrap();
        // Decode the whole stream and re-find the loop target.
        let mut pc = 0x1000u64;
        let mut i = 0usize;
        let mut decoded = Vec::new();
        while i < bytes.len() {
            let (insn, n) = Insn::decode(&bytes[i..]).unwrap();
            decoded.push((pc, insn, n));
            pc += n as u64;
            i += n;
        }
        let (jcc_pc, jcc, jcc_len) =
            decoded.iter().find(|(_, i, _)| matches!(i, Insn::Jcc { .. })).copied().unwrap();
        if let Insn::Jcc { rel, .. } = jcc {
            assert_eq!((jcc_pc + jcc_len as u64).wrapping_add(rel as i64 as u64), syms["loop"]);
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.jmp_to("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        a.ret();
        assert_eq!(a.finish().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn mov_label_materializes_vaddr() {
        let mut a = Assembler::new(0x2000);
        a.mov_label(Gpr::RAX, "target");
        a.ret();
        a.label("target");
        a.hlt();
        let (bytes, syms) = a.finish().unwrap();
        let (insn, _) = Insn::decode(&bytes).unwrap();
        assert_eq!(insn, Insn::MovRI { dst: Gpr::RAX, imm: syms["target"] });
    }
}
