//! Malformed-GELF corpus: the loader must reject every corrupted input
//! with a typed [`GelfError`] — never panic, never allocate absurdly,
//! never hand back a binary that violates the layout invariants.

use risotto_guest_x86::{
    GelfBuilder, GelfError, Gpr, GuestBinary, DATA_BASE, HEAP_BASE, TEXT_BASE,
};

/// A small well-formed binary with one import, used as the mutation base.
fn base_binary() -> GuestBinary {
    let mut b = GelfBuilder::new("main");
    let buf = b.data_u64(&[1, 2, 3]);
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RDI, buf);
    b.call_plt("sin");
    b.asm.hlt();
    b.plt_stub("sin", "guest_sin");
    b.asm.label("guest_sin");
    b.asm.ret();
    b.finish().expect("base binary assembles")
}

const MAGIC_LEN: usize = 5;
const ENTRY_OFF: usize = MAGIC_LEN;
const TLEN_OFF: usize = ENTRY_OFF + 8;

fn patch_u64(bytes: &mut [u8], off: usize, val: u64) {
    bytes[off..off + 8].copy_from_slice(&val.to_le_bytes());
}

#[test]
fn every_prefix_truncation_is_rejected() {
    // Cutting the stream at *any* point — including mid-section-table —
    // must yield a typed error, not a panic or a bogus binary.
    let bytes = base_binary().to_bytes();
    for len in 0..bytes.len() {
        let got = GuestBinary::from_bytes(&bytes[..len]);
        assert!(got.is_err(), "prefix of {len} bytes parsed as {got:?}");
    }
}

#[test]
fn truncated_section_table_is_rejected() {
    let bin = base_binary();
    let bytes = bin.to_bytes();
    // End of `.data` marks the start of the dynsym table; cut inside it.
    let dynsym_start = TLEN_OFF + 8 + bin.text.len() + 8 + bin.data.len();
    assert!(dynsym_start + 8 < bytes.len());
    let cut = dynsym_start + 12; // mid-way through the count + first entry
    assert_eq!(GuestBinary::from_bytes(&bytes[..cut]), Err(GelfError::Truncated));
}

#[test]
fn oversized_length_fields_are_rejected_without_allocating() {
    // A length field claiming more bytes than the stream holds must be
    // rejected up front (no multi-gigabyte Vec::with_capacity).
    for claimed in [u64::MAX, u64::MAX / 2, 1 << 40, 1 << 20] {
        let mut bytes = base_binary().to_bytes();
        patch_u64(&mut bytes, TLEN_OFF, claimed);
        assert_eq!(GuestBinary::from_bytes(&bytes), Err(GelfError::Truncated), "tlen={claimed:#x}");
    }
}

#[test]
fn out_of_range_dynsym_is_rejected() {
    // Re-point the import's PLT address outside `.text`.
    for bad in [0u64, TEXT_BASE - 1, DATA_BASE, u64::MAX] {
        let mut bin = base_binary();
        bin.dynsyms[0].plt_vaddr = bad;
        let got = GuestBinary::from_bytes(&bin.to_bytes());
        match got {
            Err(GelfError::SymbolOutOfRange { ref name, plt_vaddr }) => {
                assert_eq!(name, "sin");
                assert_eq!(plt_vaddr, bad);
            }
            other => unreachable!("plt_vaddr={bad:#x} parsed as {other:?}"),
        }
    }
}

#[test]
fn entry_outside_text_is_rejected() {
    for bad in [0u64, TEXT_BASE - 1, DATA_BASE + 4, u64::MAX] {
        let mut bytes = base_binary().to_bytes();
        patch_u64(&mut bytes, ENTRY_OFF, bad);
        assert_eq!(
            GuestBinary::from_bytes(&bytes),
            Err(GelfError::EntryOutOfRange { entry: bad }),
            "entry={bad:#x}"
        );
    }
}

#[test]
fn overlapping_text_section_is_rejected() {
    // A `.text` that genuinely extends past DATA_BASE (section overlap,
    // not mere truncation) is caught by the layout validator.
    let mut bin = base_binary();
    let limit = (DATA_BASE - TEXT_BASE) as usize;
    bin.text.resize(limit + 16, 0);
    match bin.validate() {
        Err(GelfError::SectionOverlap { section, end, limit }) => {
            assert_eq!(section, ".text");
            assert_eq!(end, TEXT_BASE + bin.text.len() as u64);
            assert_eq!(limit, DATA_BASE);
        }
        other => unreachable!("oversized .text validated as {other:?}"),
    }
    // The same binary round-tripped through the serializer is rejected
    // by the parser as well.
    assert!(matches!(
        GuestBinary::from_bytes(&bin.to_bytes()),
        Err(GelfError::SectionOverlap { section: ".text", .. })
    ));
}

#[test]
fn overlapping_data_section_is_rejected() {
    let mut bin = base_binary();
    let limit = (HEAP_BASE - DATA_BASE) as usize;
    bin.data.resize(limit + 8, 0);
    assert!(matches!(bin.validate(), Err(GelfError::SectionOverlap { section: ".data", .. })));
    assert!(matches!(
        GuestBinary::from_bytes(&bin.to_bytes()),
        Err(GelfError::SectionOverlap { section: ".data", .. })
    ));
}

#[test]
fn non_utf8_symbol_name_is_rejected() {
    let bin = base_binary();
    let mut bytes = bin.to_bytes();
    // The first dynsym name ("sin") starts 8 bytes after the table count.
    let name_off = TLEN_OFF + 8 + bin.text.len() + 8 + bin.data.len() + 8 + 8;
    assert_eq!(&bytes[name_off..name_off + 3], b"sin");
    bytes[name_off] = 0xFF; // invalid UTF-8 lead byte
    assert_eq!(GuestBinary::from_bytes(&bytes), Err(GelfError::BadString));
}

#[test]
fn random_bitflips_never_panic_or_break_invariants() {
    // Deterministic single-byte corruption sweep: every parse either
    // fails with a typed error or yields a binary that still satisfies
    // the layout invariants.
    let good = base_binary().to_bytes();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..600 {
        let mut bytes = good.clone();
        let idx = (next() % bytes.len() as u64) as usize;
        let val = (next() & 0xFF) as u8;
        bytes[idx] = val;
        if let Ok(bin) = GuestBinary::from_bytes(&bytes) {
            bin.validate().expect("parser returned an invalid binary");
        }
    }
}
