//! Cross-tier differential execution: one program, six observers.
//!
//! Every generated program runs through the reference interpreter and
//! five DBT configurations — tier-1, tier-1 with the optimizer off,
//! tier-2 with a lowered promotion threshold, the full three-tier
//! ladder with the tier-0 template translator enabled (cold blocks are
//! IR-less templates that promote through tier-1 to tier-2), and
//! tier-1 on the MiniTSO host backend (the cross-backend oracle) — all with
//! [`VerifyLevel::Full`] as a second oracle. The comparison covers exit
//! values, the `WRITE` byte stream, the final data-section image, final
//! register files and flags (single-core), atomic-access event orderings
//! (single-core) and per-cell successful-update counts (multi-core), and
//! the validator's violation counter. Any disagreement is a
//! [`Divergence`].
//!
//! A separate fault-composed mode layers a random [`FaultPlan`] over the
//! program and checks the graceful-degradation contract from PR 1:
//! either the run completes with exactly the fault-free results, or it
//! fails with a typed error — never a panic, never silent divergence.

use crate::spec::{ProgSpec, CELLS, SLOTS};
use risotto_core::{
    AtomicEvent, BackendKind, Emulator, FaultPlan, FaultSite, PassConfig, Report, Setup,
    SplitMix64, TierConfig, VerifyLevel,
};
use risotto_guest_x86::{Flags, Gpr, GuestBinary, Interp};
use risotto_host_arm::CostModel;

/// Promotion threshold the fuzz harness wires into its tier-2
/// configuration — low enough that the short generated loops actually
/// promote (satellite: exercise tier-2 promotion/demotion on every run).
pub const FUZZ_HOT_THRESHOLD: u64 = 8;

/// The DBT oracle configurations (the interpreter is always run too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Tier-1 translation, full optimizer (the production path).
    Tier1,
    /// Tier-1 with every optimization pass disabled.
    Tier1NoOpt,
    /// Tiered execution with a lowered promotion threshold.
    Tier2,
    /// The full three-tier ladder: cold blocks start as tier-0 IR-less
    /// templates, re-translate through tier-1 at a low warm threshold,
    /// and can still promote to tier-2 superblocks.
    Tier0,
    /// Tier-1 on the MiniTSO host backend (docs/BACKENDS.md): the
    /// standing cross-backend differential oracle — guest-visible
    /// state must be bit-identical to the Arm-backend runs.
    Tier1Tso,
    /// Tier-1 with whole-program analysis-driven fence relaxation
    /// enabled (docs/ANALYSIS.md): guest-visible state must be
    /// bit-identical to the unrelaxed tier-1 run, and the Full-level
    /// verifier must accept every relaxed translation.
    Tier1Analysis,
}

impl Config {
    /// All DBT configurations, in comparison order.
    pub const ALL: [Config; 6] = [
        Config::Tier1,
        Config::Tier1NoOpt,
        Config::Tier2,
        Config::Tier0,
        Config::Tier1Tso,
        Config::Tier1Analysis,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Config::Tier1 => "tier1",
            Config::Tier1NoOpt => "tier1-noopt",
            Config::Tier2 => "tier2",
            Config::Tier0 => "tier0",
            Config::Tier1Tso => "tier1-tso",
            Config::Tier1Analysis => "tier1-analysis",
        }
    }
}

/// Everything observable we collect from one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Per-core exit values.
    pub exit_vals: Vec<Option<u64>>,
    /// The `WRITE` byte stream.
    pub output: Vec<u8>,
    /// Final data-section words (shared cells + every private region).
    pub data: Vec<u64>,
    /// Final register file of every core (DBT runs only fill core 0 for
    /// multi-core programs; children end halted with squashed state).
    pub regs: Vec<[u64; 16]>,
    /// Final flags of core 0 (`None` for the interpreter, which does not
    /// expose its flags).
    pub flags0: Option<Flags>,
    /// Ordered atomic events on guest data addresses (DBT runs only).
    pub atomics: Vec<AtomicEvent>,
    /// Total atomic RMWs executed (DBT runs only).
    pub atomic_total: u64,
    /// Superblocks installed (tier-2 only).
    pub promotions: u64,
    /// Verifier violation count (the second oracle; must stay 0).
    pub verify_violations: u64,
}

/// One observed disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Configuration that disagreed (or errored).
    pub config: &'static str,
    /// What disagreed.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.config, self.what)
    }
}

/// Result of one full differential iteration.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// Divergences found (empty = the program agrees everywhere).
    pub divergences: Vec<Divergence>,
    /// Whether the tier-2 run installed at least one superblock.
    pub promoted: bool,
    /// Oracle executions performed (interpreter included).
    pub configs_run: u64,
}

/// Words of `.data` the lowered program owns (shared cells + private
/// regions; the lowering's tid scratch is excluded — it holds core
/// indices that are equal across schedules anyway, but it is an
/// implementation detail, not program state).
fn data_words(spec: &ProgSpec) -> usize {
    CELLS as usize + spec.cores() * SLOTS as usize
}

/// Fuel given to the interpreter (architectural steps).
fn interp_fuel(spec: &ProgSpec) -> u64 {
    spec.max_interp_steps() * 2 + 10_000
}

/// Host-instruction watchdog for DBT runs: generous multiple of the
/// architectural bound so real non-termination still trips it.
fn watchdog_steps(spec: &ProgSpec) -> u64 {
    interp_fuel(spec) * 64 + 1_000_000
}

/// Runs the reference interpreter.
pub fn run_interp(spec: &ProgSpec, bin: &GuestBinary) -> Result<Outcome, String> {
    let mut interp = Interp::new(bin);
    interp.run(interp_fuel(spec)).map_err(|e| format!("interp: {e:?}"))?;
    let n = spec.cores();
    let data_base = risotto_guest_x86::DATA_BASE;
    let data =
        (0..data_words(spec)).map(|i| interp.mem.read_u64(data_base + i as u64 * 8)).collect();
    let regs = (0..n)
        .map(|t| {
            let mut r = [0u64; 16];
            for (i, v) in r.iter_mut().enumerate() {
                *v = interp.reg(t, Gpr(i as u8));
            }
            r
        })
        .collect();
    Ok(Outcome {
        exit_vals: (0..n).map(|t| Some(interp.exit_val(t))).collect(),
        output: interp.output.clone(),
        data,
        regs,
        flags0: None,
        atomics: Vec::new(),
        atomic_total: 0,
        promotions: 0,
        verify_violations: 0,
    })
}

/// Builds the emulator for one oracle configuration.
fn build_emulator(bin: &GuestBinary, cores: usize, config: Config) -> Emulator {
    let cost = match config {
        Config::Tier1Tso => BackendKind::Tso.cost_model(),
        _ => CostModel::thunderx2_like(),
    };
    let mut emu = Emulator::new(bin, Setup::Risotto, cores, cost);
    emu.set_verify(VerifyLevel::Full);
    emu.set_atomic_log(true);
    match config {
        Config::Tier1 => {}
        Config::Tier1NoOpt => emu.set_passes(PassConfig::none()),
        Config::Tier2 => emu.set_tiering(Some(TierConfig {
            hot_threshold: FUZZ_HOT_THRESHOLD,
            max_tbs: 8,
            min_tbs: 2,
            warm_threshold: None,
        })),
        // The three-tier ladder: templates at birth, tier-1 at half the
        // (doubled) hot threshold, superblocks after that — every
        // generated hot loop crosses all three tiers.
        Config::Tier0 => emu.set_tiering(Some(TierConfig {
            hot_threshold: FUZZ_HOT_THRESHOLD * 2,
            max_tbs: 8,
            min_tbs: 2,
            warm_threshold: Some(FUZZ_HOT_THRESHOLD),
        })),
        Config::Tier1Tso => emu.set_backend(BackendKind::Tso),
        Config::Tier1Analysis => emu.set_analysis(true),
    }
    emu
}

/// Runs one DBT configuration and collects its outcome.
pub fn run_config(spec: &ProgSpec, bin: &GuestBinary, config: Config) -> Result<Outcome, String> {
    let cores = spec.cores();
    let mut emu = build_emulator(bin, cores, config);
    emu.set_watchdog(watchdog_steps(spec));
    let report: Report = emu.run(u64::MAX / 4).map_err(|e| format!("{}: {e}", config.name()))?;
    let data_base = risotto_guest_x86::DATA_BASE;
    let data =
        (0..data_words(spec)).map(|i| emu.mem().read_u64(data_base + i as u64 * 8)).collect();
    let regs = (0..cores).map(|c| emu.guest_regs(c)).collect();
    let flags0 = Some(emu.guest_flags(0));
    // Keep only events on the program's own data words; the runtime
    // itself never issues atomics, so this is belt-and-braces.
    let hi = data_base + data_words(spec) as u64 * 8;
    let atomics: Vec<AtomicEvent> =
        emu.take_atomic_log().into_iter().filter(|e| e.addr >= data_base && e.addr < hi).collect();
    let snap = emu.metrics();
    Ok(Outcome {
        exit_vals: report.exit_vals.clone(),
        output: report.output.clone(),
        data,
        regs,
        flags0,
        atomics,
        atomic_total: report.stats.atomics,
        promotions: report.sb.promotions,
        verify_violations: snap.counter("verify.violations"),
    })
}

/// Per-cell successful-update counts — the schedule-invariant projection
/// of the atomic event log used for multi-core comparison.
fn update_counts(events: &[AtomicEvent]) -> Vec<(u64, usize)> {
    let mut m: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for e in events.iter().filter(|e| e.old != e.new) {
        *m.entry(e.addr).or_default() += 1;
    }
    m.into_iter().collect()
}

/// Runs the full oracle matrix over `spec` and compares.
pub fn differential(spec: &ProgSpec) -> DiffResult {
    let mut divs = Vec::new();
    let mut promoted = false;
    let mut configs_run = 0u64;

    let bin = match spec.lower() {
        Ok(b) => b,
        Err(e) => {
            return DiffResult {
                divergences: vec![Divergence { config: "lower", what: e.to_string() }],
                promoted: false,
                configs_run: 0,
            }
        }
    };

    let reference = match run_interp(spec, &bin) {
        Ok(o) => {
            configs_run += 1;
            o
        }
        Err(e) => {
            return DiffResult {
                divergences: vec![Divergence { config: "interp", what: e }],
                promoted: false,
                configs_run: 1,
            }
        }
    };

    let single = spec.threads.is_empty();
    let mut dbt_outcomes: Vec<(Config, Outcome)> = Vec::new();
    for config in Config::ALL {
        configs_run += 1;
        match run_config(spec, &bin, config) {
            Ok(o) => dbt_outcomes.push((config, o)),
            Err(e) => divs.push(Divergence { config: config.name(), what: e }),
        }
    }

    for (config, o) in &dbt_outcomes {
        let name = config.name();
        if o.verify_violations != 0 {
            divs.push(Divergence {
                config: name,
                what: format!("validator flagged {} violations", o.verify_violations),
            });
        }
        if o.exit_vals != reference.exit_vals {
            divs.push(Divergence {
                config: name,
                what: format!("exit values {:?} != interp {:?}", o.exit_vals, reference.exit_vals),
            });
        }
        if o.output != reference.output {
            divs.push(Divergence {
                config: name,
                what: format!("output {:x?} != interp {:x?}", o.output, reference.output),
            });
        }
        if o.data != reference.data {
            let first = o.data.iter().zip(&reference.data).position(|(a, b)| a != b).unwrap_or(0);
            divs.push(Divergence {
                config: name,
                what: format!(
                    "data word {first}: {:#x} != interp {:#x}",
                    o.data[first], reference.data[first]
                ),
            });
        }
        if single && o.regs[0] != reference.regs[0] {
            let first = (0..16).find(|&i| o.regs[0][i] != reference.regs[0][i]).unwrap_or(0);
            divs.push(Divergence {
                config: name,
                what: format!(
                    "reg {}: {:#x} != interp {:#x}",
                    Gpr(first as u8),
                    o.regs[0][first],
                    reference.regs[0][first]
                ),
            });
        }
        if *config == Config::Tier2 && o.promotions > 0 {
            promoted = true;
        }
    }

    // Cross-config invariants among the DBT runs.
    if let Some((base_cfg, base)) = dbt_outcomes.first() {
        for (config, o) in dbt_outcomes.iter().skip(1) {
            let name = config.name();
            if single {
                if o.regs != base.regs {
                    divs.push(Divergence {
                        config: name,
                        what: format!("register file differs from {}", base_cfg.name()),
                    });
                }
                if o.flags0 != base.flags0 {
                    divs.push(Divergence {
                        config: name,
                        what: format!(
                            "flags {:?} != {} flags {:?}",
                            o.flags0,
                            base_cfg.name(),
                            base.flags0
                        ),
                    });
                }
                if o.atomics != base.atomics {
                    divs.push(Divergence {
                        config: name,
                        what: format!(
                            "atomic event order differs from {} ({} vs {} events)",
                            base_cfg.name(),
                            o.atomics.len(),
                            base.atomics.len()
                        ),
                    });
                }
                if o.atomic_total != base.atomic_total {
                    divs.push(Divergence {
                        config: name,
                        what: format!(
                            "atomic totals {} != {} {}",
                            o.atomic_total,
                            base_cfg.name(),
                            base.atomic_total
                        ),
                    });
                }
            } else if update_counts(&o.atomics) != update_counts(&base.atomics) {
                divs.push(Divergence {
                    config: name,
                    what: format!(
                        "per-cell successful-update counts differ from {}",
                        base_cfg.name()
                    ),
                });
            }
        }
    }

    DiffResult { divergences: divs, promoted, configs_run }
}

/// Returns true iff `spec` diverges (the minimizer's default predicate).
pub fn diverges(spec: &ProgSpec) -> bool {
    !differential(spec).divergences.is_empty()
}

/// A random fault plan for the fault-composed mode: background rates on
/// the recoverable layers, plus occasionally a syscall-layer fault (which
/// is allowed to surface as a typed error).
pub fn random_fault_plan(seed: u64) -> FaultPlan {
    let mut rng = SplitMix64::new(seed ^ 0xFA_017);
    let mut plan = FaultPlan::seeded(seed)
        .rate(FaultSite::Translate, 400 + rng.below(3000) as u16)
        .rate(FaultSite::Lower, 400 + rng.below(3000) as u16)
        .rate(FaultSite::TbCache, 200 + rng.below(1200) as u16);
    if rng.chance(1, 4) {
        plan = plan.rate(FaultSite::Syscall, 1 + rng.below(400) as u16);
    }
    if rng.chance(1, 3) {
        plan = plan.corrupt_install_at(rng.below(6));
    }
    plan
}

/// Fault-composed check: layers `plan` over the tier-1 configuration and
/// asserts graceful degradation. `Ok(completed)` reports whether the run
/// completed (vs. failing with an accepted typed error).
pub fn fault_check(spec: &ProgSpec, plan: FaultPlan) -> Result<bool, Divergence> {
    let bin =
        spec.lower().map_err(|e| Divergence { config: "fault", what: format!("lower: {e}") })?;
    let reference = run_interp(spec, &bin).map_err(|e| Divergence { config: "fault", what: e })?;
    let cores = spec.cores();
    let mut emu = build_emulator(&bin, cores, Config::Tier1);
    emu.set_fault_plan(plan);
    emu.set_watchdog(watchdog_steps(spec));
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| emu.run(u64::MAX / 4)));
    match run {
        Err(_) => Err(Divergence { config: "fault", what: "panicked under fault plan".into() }),
        // Any typed error is acceptable degradation — the PR 1 contract
        // (see tests/fault_sweep.rs) forbids only panics and silent
        // divergence.
        Ok(Err(_)) => Ok(false),
        Ok(Ok(report)) => {
            if report.exit_vals != reference.exit_vals {
                return Err(Divergence {
                    config: "fault",
                    what: format!(
                        "completed with exit values {:?} != interp {:?}",
                        report.exit_vals, reference.exit_vals
                    ),
                });
            }
            if report.output != reference.output {
                return Err(Divergence {
                    config: "fault",
                    what: "completed with diverging output".into(),
                });
            }
            Ok(true)
        }
    }
}
