//! Seeded random [`ProgSpec`] generation with weighted statement classes.
//!
//! All randomness flows through the workspace-shared
//! [`SplitMix64`] stream, so `generate(cfg, seed)` is a pure function of
//! its arguments: the same seed reproduces the same program on any
//! machine, which is what makes a one-line reproducer
//! (`fuzz <seed> <iters>`) possible.
//!
//! The default weights are tuned for path coverage rather than realism:
//! loops are common (TB chaining, superblock promotion), atomics and
//! fences are over-represented relative to real code (the paper's risk
//! surface), and multi-threaded programs appear in a fixed fraction of
//! draws. Every emitted spec satisfies [`ProgSpec::validate`] by
//! construction — the generator only ever picks from the legal space.

use crate::spec::{ProgSpec, Src, Stmt, CELLS, MAX_TRIPS, SLOTS, WORKING_REGS};
use risotto_core::SplitMix64;
use risotto_guest_x86::{AluOp, Cond, FpOp, Gpr};

/// Tunable statement-class weights (relative, not normalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Weights {
    /// Plain ALU / mov / div / soft-float arithmetic.
    pub alu: u32,
    /// Private-slot loads/stores, byte-granular accesses, stack spills.
    pub mem: u32,
    /// `LOCK XADD` / `CMPXCHG` statements (plus fences).
    pub atomic: u32,
    /// Forward `if`/`else` branches.
    pub branch: u32,
    /// Counted loops (backward edges).
    pub loops: u32,
    /// Calls into shared routines.
    pub call: u32,
    /// Syscall-flavoured statements (`write`, `gettid`).
    pub sys: u32,
}

impl Default for Weights {
    fn default() -> Weights {
        Weights { alu: 30, mem: 22, atomic: 14, branch: 10, loops: 9, call: 6, sys: 4 }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Statement-class weights.
    pub weights: Weights,
    /// Maximum statements per body (top level).
    pub max_body: usize,
    /// Probability (out of 100) that a program is multi-threaded.
    pub multicore_pct: u64,
    /// Maximum child threads of a multi-threaded program.
    pub max_children: usize,
    /// Guarantee at least one loop hot enough to cross the fuzz
    /// harness's lowered tier-2 promotion threshold.
    pub ensure_hot_loop: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            weights: Weights::default(),
            max_body: 12,
            multicore_pct: 35,
            max_children: 3,
            ensure_hot_loop: true,
        }
    }
}

/// Generates a random, valid, terminating [`ProgSpec`] from `seed`.
pub fn generate(cfg: &GenConfig, seed: u64) -> ProgSpec {
    let mut rng = SplitMix64::new(seed);
    let multi = rng.chance(cfg.multicore_pct, 100) && cfg.max_children > 0;
    let children = if multi { 1 + rng.usize_below(cfg.max_children) } else { 0 };

    let n_routines = rng.usize_below(3); // 0..=2
    let mut routines = Vec::new();
    for _ in 0..n_routines {
        let n = 2 + rng.usize_below(5);
        let mut g = BodyGen { cfg, multi, is_main: false, in_routine: true, n_routines };
        routines.push(g.body(&mut rng, n, 0));
    }

    let mut main_gen = BodyGen { cfg, multi, is_main: true, in_routine: false, n_routines };
    let main_len = 4 + rng.usize_below(cfg.max_body.saturating_sub(3).max(1));
    let mut main = main_gen.body(&mut rng, main_len, 0);
    if cfg.ensure_hot_loop && !has_loop(&main) {
        // A hot counted loop over private state: crosses the lowered
        // promotion threshold and gives the optimizer a real region.
        let n = 2 + rng.usize_below(3);
        let body = main_gen.body(&mut rng, n, 1);
        let trips = 24 + rng.below(u64::from(MAX_TRIPS) - 24 + 1) as u16;
        main.push(Stmt::Loop { trips, body });
    }

    let mut threads = Vec::new();
    for _ in 0..children {
        let mut g = BodyGen { cfg, multi, is_main: false, in_routine: false, n_routines };
        let n = 3 + rng.usize_below(cfg.max_body.saturating_sub(2).max(1));
        threads.push(g.body(&mut rng, n, 0));
    }

    let spec = ProgSpec { seed, main, threads, routines, note: String::new() };
    debug_assert!(spec.validate().is_ok(), "generator produced invalid spec for seed {seed}");
    spec
}

fn has_loop(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Loop { .. } => true,
        Stmt::If { then_body, else_body, .. } => has_loop(then_body) || has_loop(else_body),
        _ => false,
    })
}

struct BodyGen<'a> {
    cfg: &'a GenConfig,
    multi: bool,
    is_main: bool,
    in_routine: bool,
    n_routines: usize,
}

impl BodyGen<'_> {
    fn reg(&self, rng: &mut SplitMix64) -> Gpr {
        WORKING_REGS[rng.usize_below(WORKING_REGS.len())]
    }

    fn imm(&self, rng: &mut SplitMix64) -> u64 {
        // Mix of small constants, bit patterns, and full-width values —
        // shift counts, flag edges and wrap-around all get exercised.
        match rng.below(5) {
            0 => rng.below(16),
            1 => rng.below(256),
            2 => 1u64 << rng.below(64),
            3 => (1u64 << rng.below(63)).wrapping_sub(1),
            _ => rng.next_u64(),
        }
    }

    fn src(&self, rng: &mut SplitMix64) -> Src {
        if rng.chance(1, 2) {
            Src::Reg(self.reg(rng))
        } else {
            Src::Imm(self.imm(rng))
        }
    }

    fn body(&mut self, rng: &mut SplitMix64, len: usize, depth: usize) -> Vec<Stmt> {
        (0..len).map(|_| self.stmt(rng, depth)).collect()
    }

    fn stmt(&mut self, rng: &mut SplitMix64, depth: usize) -> Stmt {
        let w = &self.cfg.weights;
        // Structured statements are barred where the IR bars them.
        let loops = if self.in_routine || depth >= 2 { 0 } else { w.loops };
        let call = if self.in_routine || self.n_routines == 0 { 0 } else { w.call };
        let sys = if self.multi && !self.is_main { w.sys / 2 } else { w.sys };
        let class = rng.weighted(&[w.alu, w.mem, w.atomic, w.branch, loops, call, sys]);
        match class {
            0 => self.alu_stmt(rng),
            1 => self.mem_stmt(rng),
            2 => self.atomic_stmt(rng),
            3 => {
                let conds = [
                    Cond::E,
                    Cond::Ne,
                    Cond::L,
                    Cond::Ge,
                    Cond::Le,
                    Cond::G,
                    Cond::B,
                    Cond::Ae,
                    Cond::Be,
                    Cond::A,
                    Cond::S,
                    Cond::Ns,
                ];
                let n_then = 1 + rng.usize_below(3);
                let n_else = rng.usize_below(3);
                Stmt::If {
                    cond: conds[rng.usize_below(conds.len())],
                    a: self.reg(rng),
                    imm: self.imm(rng),
                    then_body: self.body(rng, n_then, depth),
                    else_body: self.body(rng, n_else, depth),
                }
            }
            4 => {
                // Biased toward trip counts that cross the fuzz tier-2
                // threshold so promotion paths run, with a short tail.
                let trips = if rng.chance(3, 5) {
                    12 + rng.below(u64::from(MAX_TRIPS) - 12 + 1) as u16
                } else {
                    1 + rng.below(8) as u16
                };
                let n = 1 + rng.usize_below(4);
                Stmt::Loop { trips, body: self.body(rng, n, depth + 1) }
            }
            5 => Stmt::Call { routine: rng.below(self.n_routines as u64) as u8 },
            _ => {
                if self.is_main || !self.multi {
                    if rng.chance(2, 3) {
                        Stmt::Write { slot: rng.below(u64::from(SLOTS)) as u16 }
                    } else {
                        Stmt::Gettid
                    }
                } else {
                    Stmt::Gettid
                }
            }
        }
    }

    fn alu_stmt(&mut self, rng: &mut SplitMix64) -> Stmt {
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
            AluOp::Mul,
        ];
        match rng.below(8) {
            0 => Stmt::MovImm { dst: self.reg(rng), imm: self.imm(rng) },
            1 => Stmt::MovReg { dst: self.reg(rng), src: self.reg(rng) },
            2 => Stmt::Div { src: self.reg(rng) },
            3 => {
                let fops = [
                    FpOp::Add,
                    FpOp::Sub,
                    FpOp::Mul,
                    FpOp::Div,
                    FpOp::Sqrt,
                    FpOp::CvtIF,
                    FpOp::CvtFI,
                ];
                Stmt::Fp {
                    op: fops[rng.usize_below(fops.len())],
                    dst: self.reg(rng),
                    src: self.reg(rng),
                }
            }
            4 => Stmt::Cmp { a: self.reg(rng), src: self.src(rng) },
            5 => Stmt::Test { a: self.reg(rng), b: self.reg(rng) },
            _ => Stmt::Alu {
                op: ops[rng.usize_below(ops.len())],
                dst: self.reg(rng),
                src: self.src(rng),
            },
        }
    }

    fn mem_stmt(&mut self, rng: &mut SplitMix64) -> Stmt {
        let slot = rng.below(u64::from(SLOTS)) as u16;
        match rng.below(7) {
            0 | 1 => Stmt::Store { slot, src: self.reg(rng) },
            2 | 3 => Stmt::Load { dst: self.reg(rng), slot },
            4 => Stmt::StoreB { slot, byte: rng.below(8) as u8, src: self.reg(rng) },
            5 => Stmt::LoadB { dst: self.reg(rng), slot, byte: rng.below(8) as u8 },
            _ => {
                if self.multi {
                    Stmt::Spill { reg: self.reg(rng), imm: self.imm(rng) }
                } else if rng.chance(1, 2) {
                    Stmt::LoadShared { dst: self.reg(rng), cell: rng.below(u64::from(CELLS)) as u8 }
                } else {
                    Stmt::Spill { reg: self.reg(rng), imm: self.imm(rng) }
                }
            }
        }
    }

    fn atomic_stmt(&mut self, rng: &mut SplitMix64) -> Stmt {
        let cell = rng.below(u64::from(CELLS)) as u8;
        let k = 1 + rng.below(255) as u32;
        match rng.below(5) {
            0 => Stmt::Fence,
            1 => Stmt::CasAdd { cell, k },
            2 => Stmt::Cmpxchg {
                slot: rng.below(u64::from(SLOTS)) as u16,
                expect: rng.below(16) as u32,
                newv: rng.below(1 << 16) as u32,
            },
            _ => Stmt::AtomicAdd { cell, k },
        }
    }
}
