//! The `.risotto` corpus format: a textual, versioned serialization of
//! [`ProgSpec`] that round-trips exactly.
//!
//! Minimized reproducers are checked in under `tests/corpus/` and
//! replayed as regression tests by `tests/fuzz.rs` and `ci.sh`. The
//! format is line-oriented and human-editable:
//!
//! ```text
//! risotto-fuzz v1
//! seed 0x2a
//! note minimized from run seed 0x2a
//! routine 0 {
//!   alu add rbx, 0x7
//!   fence
//! }
//! thread 1 {
//!   xadd s2 += 0x3
//! }
//! main {
//!   loop 12 {
//!     store p3 = rbx
//!     call 0
//!   }
//!   if ne rbx, 0x5 {
//!     casadd s1 += 0x2
//!   } else {
//!     write p2
//!   }
//! }
//! ```
//!
//! Registers use their x86 names; `pN` is a private slot (`pN.B` a byte
//! inside it), `sN` a shared cell. Numbers are decimal or `0x`-hex.
//! Parsing validates the result with [`ProgSpec::validate`], so a
//! hand-edited corpus file can never smuggle in a malformed program.

use crate::spec::{ProgSpec, Src, Stmt};
use risotto_guest_x86::{AluOp, Cond, FpOp, Gpr};
use std::fmt::Write as _;

/// Magic first line of every corpus file.
pub const HEADER: &str = "risotto-fuzz v1";

/// A corpus parse failure: line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError {
    /// 1-based line of the offending input (0 for structural errors).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CorpusError {}

fn err(line: usize, msg: impl Into<String>) -> CorpusError {
    CorpusError { line, msg: msg.into() }
}

const REG_NAMES: [(&str, Gpr); 16] = [
    ("rax", Gpr::RAX),
    ("rcx", Gpr::RCX),
    ("rdx", Gpr::RDX),
    ("rbx", Gpr::RBX),
    ("rsp", Gpr::RSP),
    ("rbp", Gpr::RBP),
    ("rsi", Gpr::RSI),
    ("rdi", Gpr::RDI),
    ("r8", Gpr::R8),
    ("r9", Gpr::R9),
    ("r10", Gpr::R10),
    ("r11", Gpr::R11),
    ("r12", Gpr::R12),
    ("r13", Gpr::R13),
    ("r14", Gpr::R14),
    ("r15", Gpr::R15),
];

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sar => "sar",
        AluOp::Mul => "mul",
    }
}

fn parse_alu(s: &str) -> Option<AluOp> {
    Some(match s {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "mul" => AluOp::Mul,
        _ => return None,
    })
}

fn fp_name(op: FpOp) -> &'static str {
    match op {
        FpOp::Add => "add",
        FpOp::Sub => "sub",
        FpOp::Mul => "mul",
        FpOp::Div => "div",
        FpOp::Sqrt => "sqrt",
        FpOp::CvtIF => "cvtif",
        FpOp::CvtFI => "cvtfi",
    }
}

fn parse_fp(s: &str) -> Option<FpOp> {
    Some(match s {
        "add" => FpOp::Add,
        "sub" => FpOp::Sub,
        "mul" => FpOp::Mul,
        "div" => FpOp::Div,
        "sqrt" => FpOp::Sqrt,
        "cvtif" => FpOp::CvtIF,
        "cvtfi" => FpOp::CvtFI,
        _ => return None,
    })
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::E => "e",
        Cond::Ne => "ne",
        Cond::L => "l",
        Cond::Ge => "ge",
        Cond::Le => "le",
        Cond::G => "g",
        Cond::B => "b",
        Cond::Ae => "ae",
        Cond::Be => "be",
        Cond::A => "a",
        Cond::S => "s",
        Cond::Ns => "ns",
    }
}

fn parse_cond(s: &str) -> Option<Cond> {
    Some(match s {
        "e" => Cond::E,
        "ne" => Cond::Ne,
        "l" => Cond::L,
        "ge" => Cond::Ge,
        "le" => Cond::Le,
        "g" => Cond::G,
        "b" => Cond::B,
        "ae" => Cond::Ae,
        "be" => Cond::Be,
        "a" => Cond::A,
        "s" => Cond::S,
        "ns" => Cond::Ns,
        _ => return None,
    })
}

fn reg_name(r: Gpr) -> &'static str {
    REG_NAMES.iter().find(|(_, g)| *g == r).map(|(n, _)| *n).unwrap_or("r?")
}

fn parse_reg(s: &str, line: usize) -> Result<Gpr, CorpusError> {
    REG_NAMES
        .iter()
        .find(|(n, _)| *n == s)
        .map(|(_, g)| *g)
        .ok_or_else(|| err(line, format!("unknown register `{s}`")))
}

fn parse_num(s: &str, line: usize) -> Result<u64, CorpusError> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    r.map_err(|_| err(line, format!("bad number `{s}`")))
}

fn parse_src(s: &str, line: usize) -> Result<Src, CorpusError> {
    if s.starts_with('r') && parse_reg(s, line).is_ok() {
        Ok(Src::Reg(parse_reg(s, line)?))
    } else {
        Ok(Src::Imm(parse_num(s, line)?))
    }
}

fn src_str(s: &Src) -> String {
    match s {
        Src::Reg(r) => reg_name(*r).to_string(),
        Src::Imm(i) => format!("{i:#x}"),
    }
}

/// Serializes `spec` into the `.risotto` text format.
pub fn to_corpus_string(spec: &ProgSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "seed {:#x}", spec.seed);
    if !spec.note.is_empty() {
        let _ = writeln!(out, "note {}", spec.note);
    }
    for (i, body) in spec.routines.iter().enumerate() {
        let _ = writeln!(out, "routine {i} {{");
        write_body(&mut out, body, 1);
        let _ = writeln!(out, "}}");
    }
    for (t, body) in spec.threads.iter().enumerate() {
        let _ = writeln!(out, "thread {} {{", t + 1);
        write_body(&mut out, body, 1);
        let _ = writeln!(out, "}}");
    }
    let _ = writeln!(out, "main {{");
    write_body(&mut out, &spec.main, 1);
    let _ = writeln!(out, "}}");
    out
}

fn write_body(out: &mut String, body: &[Stmt], depth: usize) {
    let pad = "  ".repeat(depth);
    for s in body {
        match s {
            Stmt::MovImm { dst, imm } => {
                let _ = writeln!(out, "{pad}mov {} = {imm:#x}", reg_name(*dst));
            }
            Stmt::MovReg { dst, src } => {
                let _ = writeln!(out, "{pad}movr {} = {}", reg_name(*dst), reg_name(*src));
            }
            Stmt::Alu { op, dst, src } => {
                let _ = writeln!(
                    out,
                    "{pad}alu {} {}, {}",
                    alu_name(*op),
                    reg_name(*dst),
                    src_str(src)
                );
            }
            Stmt::Div { src } => {
                let _ = writeln!(out, "{pad}div {}", reg_name(*src));
            }
            Stmt::Fp { op, dst, src } => {
                let _ = writeln!(
                    out,
                    "{pad}fp {} {}, {}",
                    fp_name(*op),
                    reg_name(*dst),
                    reg_name(*src)
                );
            }
            Stmt::Load { dst, slot } => {
                let _ = writeln!(out, "{pad}load {} = p{slot}", reg_name(*dst));
            }
            Stmt::Store { slot, src } => {
                let _ = writeln!(out, "{pad}store p{slot} = {}", reg_name(*src));
            }
            Stmt::LoadB { dst, slot, byte } => {
                let _ = writeln!(out, "{pad}loadb {} = p{slot}.{byte}", reg_name(*dst));
            }
            Stmt::StoreB { slot, byte, src } => {
                let _ = writeln!(out, "{pad}storeb p{slot}.{byte} = {}", reg_name(*src));
            }
            Stmt::LoadShared { dst, cell } => {
                let _ = writeln!(out, "{pad}loadsh {} = s{cell}", reg_name(*dst));
            }
            Stmt::Cmp { a, src } => {
                let _ = writeln!(out, "{pad}cmp {}, {}", reg_name(*a), src_str(src));
            }
            Stmt::Test { a, b } => {
                let _ = writeln!(out, "{pad}test {}, {}", reg_name(*a), reg_name(*b));
            }
            Stmt::Fence => {
                let _ = writeln!(out, "{pad}fence");
            }
            Stmt::Spill { reg, imm } => {
                let _ = writeln!(out, "{pad}spill {}, {imm:#x}", reg_name(*reg));
            }
            Stmt::If { cond, a, imm, then_body, else_body } => {
                let _ = writeln!(out, "{pad}if {} {}, {imm:#x} {{", cond_name(*cond), reg_name(*a));
                write_body(out, then_body, depth + 1);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    write_body(out, else_body, depth + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::Loop { trips, body } => {
                let _ = writeln!(out, "{pad}loop {trips} {{");
                write_body(out, body, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Call { routine } => {
                let _ = writeln!(out, "{pad}call {routine}");
            }
            Stmt::AtomicAdd { cell, k } => {
                let _ = writeln!(out, "{pad}xadd s{cell} += {k:#x}");
            }
            Stmt::CasAdd { cell, k } => {
                let _ = writeln!(out, "{pad}casadd s{cell} += {k:#x}");
            }
            Stmt::Cmpxchg { slot, expect, newv } => {
                let _ = writeln!(out, "{pad}cmpxchg p{slot} exp {expect:#x} new {newv:#x}");
            }
            Stmt::Write { slot } => {
                let _ = writeln!(out, "{pad}write p{slot}");
            }
            Stmt::Gettid => {
                let _ = writeln!(out, "{pad}gettid");
            }
        }
    }
}

/// Parses a `.risotto` corpus file back into a validated [`ProgSpec`].
pub fn parse_corpus(text: &str) -> Result<ProgSpec, CorpusError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut it = lines.into_iter().peekable();

    let (ln, first) = it.next().ok_or_else(|| err(0, "empty corpus file"))?;
    if first != HEADER {
        return Err(err(ln, format!("expected `{HEADER}`, got `{first}`")));
    }

    let mut spec = ProgSpec {
        seed: 0,
        main: Vec::new(),
        threads: Vec::new(),
        routines: Vec::new(),
        note: String::new(),
    };
    let mut seen_main = false;

    while let Some((ln, line)) = it.next() {
        let mut words = line.split_whitespace();
        match words.next() {
            Some("seed") => {
                let v = words.next().ok_or_else(|| err(ln, "seed needs a value"))?;
                spec.seed = parse_num(v, ln)?;
            }
            Some("note") => {
                spec.note = line["note".len()..].trim().to_string();
            }
            Some("routine") => {
                let idx: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(ln, "routine needs an index"))?;
                if idx != spec.routines.len() {
                    return Err(err(ln, format!("routine {idx} out of order")));
                }
                expect_open(line, ln)?;
                let (body, _) = parse_block(&mut it)?;
                spec.routines.push(body);
            }
            Some("thread") => {
                let idx: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err(ln, "thread needs an index"))?;
                if idx != spec.threads.len() + 1 {
                    return Err(err(
                        ln,
                        format!("thread {idx} out of order (expected {})", spec.threads.len() + 1),
                    ));
                }
                expect_open(line, ln)?;
                let (body, _) = parse_block(&mut it)?;
                spec.threads.push(body);
            }
            Some("main") => {
                expect_open(line, ln)?;
                let (body, _) = parse_block(&mut it)?;
                spec.main = body;
                seen_main = true;
            }
            Some(w) => return Err(err(ln, format!("unexpected section `{w}`"))),
            None => {}
        }
    }
    if !seen_main {
        return Err(err(0, "missing `main` section"));
    }
    spec.validate().map_err(|e| err(0, format!("invalid spec: {e}")))?;
    Ok(spec)
}

fn expect_open(line: &str, ln: usize) -> Result<(), CorpusError> {
    if line.ends_with('{') {
        Ok(())
    } else {
        Err(err(ln, "expected `{` at end of line"))
    }
}

/// How a block terminated: plain `}` or `} else {`.
enum BlockEnd {
    Close,
    Else,
}

type LineIter<'a> = std::iter::Peekable<std::vec::IntoIter<(usize, &'a str)>>;

fn parse_block(it: &mut LineIter<'_>) -> Result<(Vec<Stmt>, BlockEnd), CorpusError> {
    let mut body = Vec::new();
    loop {
        let (ln, line) = it.next().ok_or_else(|| err(0, "unterminated block"))?;
        if line == "}" {
            return Ok((body, BlockEnd::Close));
        }
        if line == "} else {" {
            return Ok((body, BlockEnd::Else));
        }
        body.push(parse_stmt(line, ln, it)?);
    }
}

fn parse_stmt(line: &str, ln: usize, it: &mut LineIter<'_>) -> Result<Stmt, CorpusError> {
    // Drop the cosmetic separators (`+=`, `=`, `,`) so every statement
    // is a flat token list.
    let cleaned = line.replace("+=", " ").replace(['=', ','], " ");
    let t: Vec<&str> = cleaned.split_whitespace().collect();
    let get = |i: usize| -> Result<&str, CorpusError> {
        t.get(i).copied().ok_or_else(|| err(ln, "truncated statement"))
    };
    let slot_of = |s: &str| -> Result<u16, CorpusError> {
        s.strip_prefix('p')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(ln, format!("expected private slot `pN`, got `{s}`")))
    };
    let cell_of = |s: &str| -> Result<u8, CorpusError> {
        s.strip_prefix('s')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(ln, format!("expected shared cell `sN`, got `{s}`")))
    };
    let slot_byte = |s: &str| -> Result<(u16, u8), CorpusError> {
        let rest =
            s.strip_prefix('p').ok_or_else(|| err(ln, format!("expected `pN.B`, got `{s}`")))?;
        let (a, b) =
            rest.split_once('.').ok_or_else(|| err(ln, format!("expected `pN.B`, got `{s}`")))?;
        match (a.parse(), b.parse()) {
            (Ok(slot), Ok(byte)) => Ok((slot, byte)),
            _ => Err(err(ln, format!("bad slot/byte `{s}`"))),
        }
    };

    Ok(match get(0)? {
        "mov" => Stmt::MovImm { dst: parse_reg(get(1)?, ln)?, imm: parse_num(get(2)?, ln)? },
        "movr" => Stmt::MovReg { dst: parse_reg(get(1)?, ln)?, src: parse_reg(get(2)?, ln)? },
        "alu" => Stmt::Alu {
            op: parse_alu(get(1)?).ok_or_else(|| err(ln, "unknown alu op"))?,
            dst: parse_reg(get(2)?, ln)?,
            src: parse_src(get(3)?, ln)?,
        },
        "div" => Stmt::Div { src: parse_reg(get(1)?, ln)? },
        "fp" => Stmt::Fp {
            op: parse_fp(get(1)?).ok_or_else(|| err(ln, "unknown fp op"))?,
            dst: parse_reg(get(2)?, ln)?,
            src: parse_reg(get(3)?, ln)?,
        },
        "load" => Stmt::Load { dst: parse_reg(get(1)?, ln)?, slot: slot_of(get(2)?)? },
        "store" => Stmt::Store { slot: slot_of(get(1)?)?, src: parse_reg(get(2)?, ln)? },
        "loadb" => {
            let (slot, byte) = slot_byte(get(2)?)?;
            Stmt::LoadB { dst: parse_reg(get(1)?, ln)?, slot, byte }
        }
        "storeb" => {
            let (slot, byte) = slot_byte(get(1)?)?;
            Stmt::StoreB { slot, byte, src: parse_reg(get(2)?, ln)? }
        }
        "loadsh" => Stmt::LoadShared { dst: parse_reg(get(1)?, ln)?, cell: cell_of(get(2)?)? },
        "cmp" => Stmt::Cmp { a: parse_reg(get(1)?, ln)?, src: parse_src(get(2)?, ln)? },
        "test" => Stmt::Test { a: parse_reg(get(1)?, ln)?, b: parse_reg(get(2)?, ln)? },
        "fence" => Stmt::Fence,
        "spill" => Stmt::Spill { reg: parse_reg(get(1)?, ln)?, imm: parse_num(get(2)?, ln)? },
        "if" => {
            let cond = parse_cond(get(1)?).ok_or_else(|| err(ln, "unknown condition"))?;
            let a = parse_reg(get(2)?, ln)?;
            let imm = parse_num(get(3)?, ln)?;
            if t.last() != Some(&"{") {
                return Err(err(ln, "expected `{` at end of if"));
            }
            let (then_body, end) = parse_block(it)?;
            let else_body = match end {
                BlockEnd::Else => {
                    let (eb, end2) = parse_block(it)?;
                    if matches!(end2, BlockEnd::Else) {
                        return Err(err(ln, "double else"));
                    }
                    eb
                }
                BlockEnd::Close => Vec::new(),
            };
            Stmt::If { cond, a, imm, then_body, else_body }
        }
        "loop" => {
            let trips = parse_num(get(1)?, ln)? as u16;
            if t.last() != Some(&"{") {
                return Err(err(ln, "expected `{` at end of loop"));
            }
            let (body, end) = parse_block(it)?;
            if matches!(end, BlockEnd::Else) {
                return Err(err(ln, "stray else after loop"));
            }
            Stmt::Loop { trips, body }
        }
        "call" => {
            Stmt::Call { routine: get(1)?.parse().map_err(|_| err(ln, "bad routine index"))? }
        }
        "xadd" => Stmt::AtomicAdd { cell: cell_of(get(1)?)?, k: parse_num(get(2)?, ln)? as u32 },
        "casadd" => Stmt::CasAdd { cell: cell_of(get(1)?)?, k: parse_num(get(2)?, ln)? as u32 },
        "cmpxchg" => Stmt::Cmpxchg {
            slot: slot_of(get(1)?)?,
            expect: parse_num(get(3)?, ln)? as u32,
            newv: parse_num(get(5)?, ln)? as u32,
        },
        "write" => Stmt::Write { slot: slot_of(get(1)?)? },
        "gettid" => Stmt::Gettid,
        w => return Err(err(ln, format!("unknown statement `{w}`"))),
    })
}
