//! Delta-debugging minimizer for divergent programs.
//!
//! Works directly on the [`ProgSpec`] IR rather than on bytes, so every
//! candidate it tries is still a well-formed, terminating program — the
//! usual fuzzer-minimizer problem of shrinking into garbage cannot
//! arise. The strategy is a greedy fixpoint over single structural
//! mutations, ordered biggest-cut-first:
//!
//! 1. drop a whole child thread,
//! 2. drop a whole routine (rewriting `call` sites),
//! 3. delete one statement (at any nesting depth),
//! 4. splice a branch arm or loop body in place of its `if`/`loop`,
//! 5. shrink scalars: trip counts toward 1, immediates toward 0,
//!    atomic increments toward 1.
//!
//! A candidate is adopted iff the caller's predicate (by default "the
//! program still diverges", [`crate::diff::diverges`]) holds for it.
//! The loop restarts from the first mutation after every adoption and
//! stops when no mutation is accepted, so the result is a local fixpoint:
//! running the minimizer on its own output changes nothing (idempotence,
//! covered by a property test).

use crate::corpus::to_corpus_string;
use crate::spec::{ProgSpec, Src, Stmt};

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The minimal spec still satisfying the predicate.
    pub spec: ProgSpec,
    /// Predicate evaluations performed (feeds `fuzz.minimizer_steps`).
    pub steps: u64,
    /// Mutations adopted on the way down.
    pub accepted: u64,
}

/// Minimizes `spec` under `keep` (the divergence predicate). `max_steps`
/// bounds predicate evaluations so a pathological predicate cannot spin
/// forever; the best spec found so far is returned when it trips.
pub fn minimize<F>(spec: &ProgSpec, keep: &F, max_steps: u64) -> Minimized
where
    F: Fn(&ProgSpec) -> bool,
{
    let mut cur = spec.clone();
    let mut steps = 0u64;
    let mut accepted = 0u64;
    'outer: loop {
        for cand in candidates(&cur) {
            if cand.validate().is_err() {
                continue;
            }
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if keep(&cand) {
                cur = cand;
                accepted += 1;
                continue 'outer; // restart from the biggest cuts
            }
        }
        break;
    }
    // Deterministic (no step count): minimizing a fixpoint again must
    // reproduce it exactly, note included.
    cur.note = format!("minimized from seed {:#x}", spec.seed);
    Minimized { spec: cur, steps, accepted }
}

/// All single-mutation shrink candidates of `spec`, biggest cuts first.
fn candidates(spec: &ProgSpec) -> Vec<ProgSpec> {
    let mut out = Vec::new();

    // 1. Drop a child thread.
    for t in 0..spec.threads.len() {
        let mut c = spec.clone();
        c.threads.remove(t);
        out.push(c);
    }

    // 2. Drop a routine, rewriting every call site.
    for r in 0..spec.routines.len() {
        let mut c = spec.clone();
        c.routines.remove(r);
        let fix = |body: &mut Vec<Stmt>| drop_routine_calls(body, r as u8);
        fix(&mut c.main);
        c.threads.iter_mut().for_each(fix);
        c.routines.iter_mut().for_each(fix);
        out.push(c);
    }

    // 3..5. Structural and scalar shrinks of every body.
    for (which, body) in bodies(spec) {
        for cand_body in body_candidates(body) {
            let mut c = spec.clone();
            *body_mut(&mut c, which) = cand_body;
            out.push(c);
        }
    }
    out
}

/// Body selector: main, thread index, or routine index.
#[derive(Clone, Copy)]
enum Which {
    Main,
    Thread(usize),
    Routine(usize),
}

fn bodies(spec: &ProgSpec) -> Vec<(Which, &Vec<Stmt>)> {
    let mut v = vec![(Which::Main, &spec.main)];
    v.extend(spec.threads.iter().enumerate().map(|(i, b)| (Which::Thread(i), b)));
    v.extend(spec.routines.iter().enumerate().map(|(i, b)| (Which::Routine(i), b)));
    v
}

fn body_mut(spec: &mut ProgSpec, which: Which) -> &mut Vec<Stmt> {
    match which {
        Which::Main => &mut spec.main,
        Which::Thread(i) => &mut spec.threads[i],
        Which::Routine(i) => &mut spec.routines[i],
    }
}

/// Removes calls to routine `r` and renumbers calls above it.
fn drop_routine_calls(body: &mut Vec<Stmt>, r: u8) {
    body.retain(|s| !matches!(s, Stmt::Call { routine } if *routine == r));
    for s in body.iter_mut() {
        match s {
            Stmt::Call { routine } if *routine > r => *routine -= 1,
            Stmt::If { then_body, else_body, .. } => {
                drop_routine_calls(then_body, r);
                drop_routine_calls(else_body, r);
            }
            Stmt::Loop { body, .. } => drop_routine_calls(body, r),
            _ => {}
        }
    }
}

/// All single-mutation variants of one body: per statement, deletion,
/// splices, scalar shrinks, and recursive variants of nested bodies.
fn body_candidates(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        // Deletion.
        let mut del = body.to_vec();
        del.remove(i);
        out.push(del);
        // Replacements (possibly splicing several statements in place).
        for repl in stmt_variants(&body[i]) {
            let mut v = body.to_vec();
            v.splice(i..=i, repl);
            out.push(v);
        }
    }
    out
}

/// Shrink variants of a single statement. Each entry replaces the
/// statement (an empty vec would be a deletion, which `body_candidates`
/// already covers, so none is emitted here).
fn stmt_variants(s: &Stmt) -> Vec<Vec<Stmt>> {
    let mut out: Vec<Vec<Stmt>> = Vec::new();
    let mut scalar = |t: Stmt| out.push(vec![t]);
    match s {
        Stmt::If { cond, a, imm, then_body, else_body } => {
            // Splice either arm in place of the branch.
            out.push(then_body.clone());
            if !else_body.is_empty() {
                out.push(else_body.clone());
            }
            if *imm != 0 {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a: *a,
                    imm: shrink_imm(*imm),
                    then_body: then_body.clone(),
                    else_body: else_body.clone(),
                }]);
            }
            // Recurse into the arms.
            for tb in body_candidates(then_body) {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    then_body: tb,
                    else_body: else_body.clone(),
                }]);
            }
            for eb in body_candidates(else_body) {
                out.push(vec![Stmt::If {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    then_body: then_body.clone(),
                    else_body: eb,
                }]);
            }
        }
        Stmt::Loop { trips, body } => {
            // Unroll once in place of the loop.
            out.push(body.clone());
            if *trips > 1 {
                out.push(vec![Stmt::Loop { trips: 1, body: body.clone() }]);
            }
            if *trips > 3 {
                out.push(vec![Stmt::Loop { trips: *trips / 2, body: body.clone() }]);
            }
            for b in body_candidates(body) {
                out.push(vec![Stmt::Loop { trips: *trips, body: b }]);
            }
        }
        Stmt::MovImm { dst, imm } if *imm != 0 => {
            scalar(Stmt::MovImm { dst: *dst, imm: shrink_imm(*imm) });
        }
        Stmt::Alu { op, dst, src: Src::Imm(imm) } if *imm != 0 => {
            scalar(Stmt::Alu { op: *op, dst: *dst, src: Src::Imm(shrink_imm(*imm)) });
        }
        Stmt::Cmp { a, src: Src::Imm(imm) } if *imm != 0 => {
            scalar(Stmt::Cmp { a: *a, src: Src::Imm(shrink_imm(*imm)) });
        }
        Stmt::Spill { reg, imm } if *imm != 0 => {
            scalar(Stmt::Spill { reg: *reg, imm: shrink_imm(*imm) });
        }
        Stmt::AtomicAdd { cell, k } if *k > 1 => {
            scalar(Stmt::AtomicAdd { cell: *cell, k: 1 });
        }
        Stmt::CasAdd { cell, k } if *k > 1 => {
            scalar(Stmt::CasAdd { cell: *cell, k: 1 });
        }
        Stmt::Cmpxchg { slot, expect, newv } if *expect != 0 || *newv != 0 => {
            scalar(Stmt::Cmpxchg { slot: *slot, expect: 0, newv: 0 });
        }
        _ => {}
    }
    out
}

/// One step toward zero: 0 for small values, halving for large ones —
/// converges in O(log imm) adoptions while keeping intermediate values
/// interesting (sign bit, byte edges survive a while).
fn shrink_imm(imm: u64) -> u64 {
    if imm <= 0xff {
        0
    } else {
        imm / 2
    }
}

/// Renders a regression-test skeleton for a minimized reproducer that
/// was saved as `tests/corpus/<name>.risotto`. The emitted test replays
/// the corpus file through the full oracle matrix.
pub fn regression_test_skeleton(spec: &ProgSpec, name: &str) -> String {
    format!(
        "/// Regression reproducer `{name}` (minimized from seed {seed:#x}).\n\
         /// Divergence note: {note}\n\
         #[test]\n\
         fn corpus_{fn_name}() {{\n\
         \x20   let text = include_str!(\"corpus/{name}.risotto\");\n\
         \x20   let spec = risotto::fuzz::parse_corpus(text).expect(\"corpus must parse\");\n\
         \x20   let result = risotto::fuzz::differential(&spec);\n\
         \x20   assert!(\n\
         \x20       result.divergences.is_empty(),\n\
         \x20       \"reproducer {name} diverged again: {{:?}}\",\n\
         \x20       result.divergences,\n\
         \x20   );\n\
         }}\n",
        seed = spec.seed,
        note = if spec.note.is_empty() { "(none)" } else { &spec.note },
        fn_name = name.replace(['-', '.'], "_"),
    )
}

/// Renders the corpus file for a minimized spec (convenience wrapper so
/// the bench bin and tests share one path).
pub fn corpus_file(spec: &ProgSpec) -> String {
    to_corpus_string(spec)
}
