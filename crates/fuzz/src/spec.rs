//! The generator IR: a structured program specification that lowers
//! deterministically to a MiniX86 [`GuestBinary`].
//!
//! The fuzzer never mutates raw instruction bytes. It generates, minimizes
//! and serializes [`ProgSpec`]s — a small structured IR whose invariants
//! (bounded loop trip counts, valid slot/cell indices, balanced
//! spawn/join, schedule-invariant multi-core results) make every lowered
//! program well-formed and terminating *by construction*. Delta-debugging
//! then operates on IR nodes, so every reduction candidate is again a
//! valid program.
//!
//! ## Memory layout
//!
//! The lowered `.data` section holds, in order: the shared atomic cells
//! (one u64 each), one private slot region per thread (u64 slots), and a
//! lowering-owned scratch area for spawned thread ids. Thread bodies
//! address their private region through `R15` and the shared cells
//! through `R14`, both loaded in a fixed prologue.
//!
//! ## Schedule invariance
//!
//! Multi-threaded specs must produce the same final state under *any*
//! fair schedule, because the reference interpreter (round-robin, SC) and
//! the host machine (discrete-event, weak memory) schedule differently.
//! The IR enforces the discipline that guarantees it: shared cells are
//! only touched by commutative atomic increments ([`Stmt::AtomicAdd`],
//! [`Stmt::CasAdd`]) whose fetched old values are squashed, plain
//! loads/stores stay inside the thread's private region, shared cells are
//! only read back in the main thread *after* all joins, and `WRITE`
//! output is emitted by the main thread only.

use risotto_guest_x86::{AluOp, AsmError, Cond, FpOp, GelfBuilder, Gpr, GuestBinary};
use std::fmt;

/// Registers the IR may use as working registers. Excluded: `RSP`
/// (stack), `R11` (atomic/checksum scratch), `R12`/`R13` (loop
/// counters), `R14` (shared base), `R15` (private base).
pub const WORKING_REGS: [Gpr; 10] = [
    Gpr::RAX,
    Gpr::RCX,
    Gpr::RDX,
    Gpr::RBX,
    Gpr::RBP,
    Gpr::RSI,
    Gpr::RDI,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
];

/// Checksum / atomic scratch register (never a working register).
pub const SCRATCH: Gpr = Gpr::R11;
/// Loop counter for nesting depth 0.
pub const CTR0: Gpr = Gpr::R13;
/// Loop counter for nesting depth 1.
pub const CTR1: Gpr = Gpr::R12;
/// Base register of the thread's private slot region.
pub const PRIV_BASE: Gpr = Gpr::R15;
/// Base register of the shared atomic cells.
pub const SHARED_BASE: Gpr = Gpr::R14;

/// Maximum loop trip count the IR accepts (termination bound).
pub const MAX_TRIPS: u16 = 64;
/// Maximum loop nesting depth (two reserved counter registers).
pub const MAX_LOOP_DEPTH: usize = 2;
/// Private u64 slots per thread.
pub const SLOTS: u16 = 8;
/// Shared atomic cells per program.
pub const CELLS: u8 = 4;
/// Maximum threads (main + children) a spec may declare.
pub const MAX_THREADS: usize = 4;

/// FNV-style fold prime used by the lowered checksum epilogue.
const FOLD_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A value operand: another working register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A working register.
    Reg(Gpr),
    /// A 64-bit immediate.
    Imm(u64),
}

/// One IR statement. See the module docs for the invariants each
/// variant carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `dst = imm`.
    MovImm {
        /// Destination working register.
        dst: Gpr,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = src` (register copy).
    MovReg {
        /// Destination working register.
        dst: Gpr,
        /// Source working register.
        src: Gpr,
    },
    /// `dst = dst op src` with MiniX86 flag semantics.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination working register.
        dst: Gpr,
        /// Second operand.
        src: Src,
    },
    /// `RAX = RAX / src`, `RDX = RAX % src` (div-by-zero → `(0, RAX)`).
    Div {
        /// Divisor working register.
        src: Gpr,
    },
    /// Soft-float `dst = dst op src` on f64 bit patterns.
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination working register.
        dst: Gpr,
        /// Source working register.
        src: Gpr,
    },
    /// `dst = [private slot]`.
    Load {
        /// Destination working register.
        dst: Gpr,
        /// Private slot index (`< SLOTS`).
        slot: u16,
    },
    /// `[private slot] = src`.
    Store {
        /// Private slot index (`< SLOTS`).
        slot: u16,
        /// Source working register.
        src: Gpr,
    },
    /// Byte load from inside a private slot (aliasing pressure on the
    /// u64-granular store-buffer model).
    LoadB {
        /// Destination working register (zero-extended byte).
        dst: Gpr,
        /// Private slot index (`< SLOTS`).
        slot: u16,
        /// Byte offset inside the slot (`< 8`).
        byte: u8,
    },
    /// Byte store into a private slot.
    StoreB {
        /// Private slot index (`< SLOTS`).
        slot: u16,
        /// Byte offset inside the slot (`< 8`).
        byte: u8,
        /// Source working register (low byte stored).
        src: Gpr,
    },
    /// `dst = [shared cell]`. Single-threaded specs only — in
    /// multi-threaded specs a mid-run read of a shared cell is
    /// schedule-dependent. (The lowered main-thread epilogue reads the
    /// final cells after all joins regardless.)
    LoadShared {
        /// Destination working register.
        dst: Gpr,
        /// Shared cell index (`< CELLS`).
        cell: u8,
    },
    /// `CMP a, src` (sets flags).
    Cmp {
        /// Left operand working register.
        a: Gpr,
        /// Right operand.
        src: Src,
    },
    /// `TEST a, b` (sets flags from `a & b`).
    Test {
        /// Left operand working register.
        a: Gpr,
        /// Right operand working register.
        b: Gpr,
    },
    /// `MFENCE`.
    Fence,
    /// `PUSH reg; reg = imm; POP reg` — balanced stack traffic that
    /// exercises spill-like load/store forwarding.
    Spill {
        /// Register saved and restored.
        reg: Gpr,
        /// Value held inside the window.
        imm: u64,
    },
    /// `if (a cond imm) { then } else { else }` via a forward branch.
    If {
        /// Condition evaluated against `CMP a, imm`.
        cond: Cond,
        /// Compared working register.
        a: Gpr,
        /// Compared immediate.
        imm: u64,
        /// Taken body.
        then_body: Vec<Stmt>,
        /// Fallthrough body (may be empty).
        else_body: Vec<Stmt>,
    },
    /// A counted loop with a backward conditional edge — the shape that
    /// drives TB chaining and tier-2 promotion.
    Loop {
        /// Trip count (`1..=MAX_TRIPS`).
        trips: u16,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Call a shared routine (routines are flat: no loops, no calls).
    Call {
        /// Routine index.
        routine: u8,
    },
    /// `LOCK XADD` of `k` into a shared cell; the fetched old value is
    /// squashed so multi-core results stay schedule-invariant.
    AtomicAdd {
        /// Shared cell index (`< CELLS`).
        cell: u8,
        /// Increment (`>= 1`).
        k: u32,
    },
    /// A `LOCK CMPXCHG` retry loop adding `k` to a shared cell; fetched
    /// values squashed as for [`Stmt::AtomicAdd`].
    CasAdd {
        /// Shared cell index (`< CELLS`).
        cell: u8,
        /// Increment (`>= 1`).
        k: u32,
    },
    /// A single raw `LOCK CMPXCHG` on a *private* slot: exercises the
    /// success and failure paths (ZF, RAX write-back) deterministically.
    Cmpxchg {
        /// Private slot index (`< SLOTS`).
        slot: u16,
        /// Value loaded into `RAX` as the expected value.
        expect: u32,
        /// Replacement value.
        newv: u32,
    },
    /// `WRITE(1, &slot, 8)` — main thread only (single writer keeps the
    /// output byte stream schedule-invariant).
    Write {
        /// Private slot index (`< SLOTS`).
        slot: u16,
    },
    /// `RAX = GETTID`.
    Gettid,
}

/// A complete program specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgSpec {
    /// Seed that generated the spec (informational; reproduces the
    /// program via the generator but is not needed to lower it).
    pub seed: u64,
    /// Main-thread body (runs on core 0 between the spawns and joins).
    pub main: Vec<Stmt>,
    /// Child-thread bodies; thread `i+1` runs `threads[i]`. The lowering
    /// spawns all children before `main` runs and joins them after.
    pub threads: Vec<Vec<Stmt>>,
    /// Shared flat routines callable from any body.
    pub routines: Vec<Vec<Stmt>>,
    /// Free-form note carried into the corpus file.
    pub note: String,
}

/// Why a [`ProgSpec`] is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A register outside [`WORKING_REGS`] was used.
    BadReg(Gpr),
    /// A private-slot index `>= SLOTS` (or byte offset `>= 8`).
    BadSlot(u16),
    /// A shared-cell index `>= CELLS`.
    BadCell(u8),
    /// A loop trip count outside `1..=MAX_TRIPS`.
    BadTrips(u16),
    /// Loop nesting deeper than [`MAX_LOOP_DEPTH`].
    TooDeep,
    /// A call to a routine index that does not exist.
    BadRoutine(u8),
    /// A routine contains a loop or a call (routines must be flat).
    RoutineNotFlat,
    /// An atomic increment of zero (would make "successful update"
    /// detection ambiguous).
    ZeroIncrement,
    /// More threads than [`MAX_THREADS`] allows.
    TooManyThreads(usize),
    /// A statement reserved to single-threaded specs or the main thread
    /// (`LoadShared` / `Write`) appeared elsewhere.
    ScheduleDependent(&'static str),
    /// The assembler rejected the lowered program (cannot happen for a
    /// validated spec; kept so the minimizer can skip rather than panic).
    Lower(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadReg(r) => write!(f, "non-working register {r}"),
            SpecError::BadSlot(s) => write!(f, "private slot {s} out of range"),
            SpecError::BadCell(c) => write!(f, "shared cell {c} out of range"),
            SpecError::BadTrips(t) => write!(f, "trip count {t} outside 1..={MAX_TRIPS}"),
            SpecError::TooDeep => write!(f, "loops nested deeper than {MAX_LOOP_DEPTH}"),
            SpecError::BadRoutine(r) => write!(f, "call to undefined routine {r}"),
            SpecError::RoutineNotFlat => write!(f, "routine contains a loop or call"),
            SpecError::ZeroIncrement => write!(f, "atomic increment of zero"),
            SpecError::TooManyThreads(n) => write!(f, "{n} threads exceeds {MAX_THREADS}"),
            SpecError::ScheduleDependent(w) => {
                write!(f, "{w} is schedule-dependent in this position")
            }
            SpecError::Lower(e) => write!(f, "lowering failed: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

fn check_reg(r: Gpr) -> Result<(), SpecError> {
    if WORKING_REGS.contains(&r) {
        Ok(())
    } else {
        Err(SpecError::BadReg(r))
    }
}

impl ProgSpec {
    /// Total cores (main + children) the lowered program needs.
    pub fn cores(&self) -> usize {
        1 + self.threads.len()
    }

    /// Validates every structural invariant. Lowering and the minimizer
    /// only accept specs that pass.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.cores() > MAX_THREADS {
            return Err(SpecError::TooManyThreads(self.cores()));
        }
        let multi = !self.threads.is_empty();
        for body in self.routines.iter() {
            Self::check_body(body, 0, self.routines.len(), true, multi, false)?;
        }
        Self::check_body(&self.main, 0, self.routines.len(), false, multi, true)?;
        for body in &self.threads {
            Self::check_body(body, 0, self.routines.len(), false, multi, false)?;
        }
        Ok(())
    }

    fn check_body(
        body: &[Stmt],
        depth: usize,
        n_routines: usize,
        in_routine: bool,
        multi: bool,
        is_main: bool,
    ) -> Result<(), SpecError> {
        let src_ok = |s: &Src| match s {
            Src::Reg(r) => check_reg(*r),
            Src::Imm(_) => Ok(()),
        };
        for s in body {
            match s {
                Stmt::MovImm { dst, .. } => check_reg(*dst)?,
                Stmt::MovReg { dst, src } => {
                    check_reg(*dst)?;
                    check_reg(*src)?;
                }
                Stmt::Alu { dst, src, .. } => {
                    check_reg(*dst)?;
                    src_ok(src)?;
                }
                Stmt::Div { src } => check_reg(*src)?,
                Stmt::Fp { dst, src, .. } => {
                    check_reg(*dst)?;
                    check_reg(*src)?;
                }
                Stmt::Load { dst, slot } => {
                    check_reg(*dst)?;
                    if *slot >= SLOTS {
                        return Err(SpecError::BadSlot(*slot));
                    }
                }
                Stmt::Store { slot, src } => {
                    check_reg(*src)?;
                    if *slot >= SLOTS {
                        return Err(SpecError::BadSlot(*slot));
                    }
                }
                Stmt::LoadB { dst, slot, byte } => {
                    check_reg(*dst)?;
                    if *slot >= SLOTS || *byte >= 8 {
                        return Err(SpecError::BadSlot(*slot));
                    }
                }
                Stmt::StoreB { slot, byte, src } => {
                    check_reg(*src)?;
                    if *slot >= SLOTS || *byte >= 8 {
                        return Err(SpecError::BadSlot(*slot));
                    }
                }
                Stmt::LoadShared { dst, cell } => {
                    check_reg(*dst)?;
                    if *cell >= CELLS {
                        return Err(SpecError::BadCell(*cell));
                    }
                    if multi {
                        return Err(SpecError::ScheduleDependent("loadsh"));
                    }
                }
                Stmt::Cmp { a, src } => {
                    check_reg(*a)?;
                    src_ok(src)?;
                }
                Stmt::Test { a, b } => {
                    check_reg(*a)?;
                    check_reg(*b)?;
                }
                Stmt::Fence | Stmt::Gettid => {}
                Stmt::Spill { reg, .. } => check_reg(*reg)?,
                Stmt::If { a, then_body, else_body, .. } => {
                    check_reg(*a)?;
                    Self::check_body(then_body, depth, n_routines, in_routine, multi, is_main)?;
                    Self::check_body(else_body, depth, n_routines, in_routine, multi, is_main)?;
                }
                Stmt::Loop { trips, body } => {
                    if in_routine {
                        return Err(SpecError::RoutineNotFlat);
                    }
                    if *trips == 0 || *trips > MAX_TRIPS {
                        return Err(SpecError::BadTrips(*trips));
                    }
                    if depth + 1 > MAX_LOOP_DEPTH {
                        return Err(SpecError::TooDeep);
                    }
                    Self::check_body(body, depth + 1, n_routines, in_routine, multi, is_main)?;
                }
                Stmt::Call { routine } => {
                    if in_routine {
                        return Err(SpecError::RoutineNotFlat);
                    }
                    if *routine as usize >= n_routines {
                        return Err(SpecError::BadRoutine(*routine));
                    }
                }
                Stmt::AtomicAdd { cell, k } | Stmt::CasAdd { cell, k } => {
                    if *cell >= CELLS {
                        return Err(SpecError::BadCell(*cell));
                    }
                    if *k == 0 {
                        return Err(SpecError::ZeroIncrement);
                    }
                }
                Stmt::Cmpxchg { slot, .. } => {
                    if *slot >= SLOTS {
                        return Err(SpecError::BadSlot(*slot));
                    }
                }
                Stmt::Write { slot } => {
                    if *slot >= SLOTS {
                        return Err(SpecError::BadSlot(*slot));
                    }
                    if multi && !is_main {
                        return Err(SpecError::ScheduleDependent("write"));
                    }
                }
            }
        }
        Ok(())
    }

    /// An upper bound on the guest instructions the *interpreter* retires
    /// executing the lowered program (all threads summed). Used to size
    /// fuel and as the termination bound checked by the well-formedness
    /// tests. CAS retry loops are bounded by total-update × thread-count
    /// (every failed attempt pairs with another thread's success).
    pub fn max_interp_steps(&self) -> u64 {
        let n_threads = self.cores() as u64;
        let mut updates = 0u64;
        let mut total = 0u64;
        for body in self.routines.iter().chain([&self.main]).chain(self.threads.iter()) {
            total += Self::body_cost(body, &self.routines, 1, &mut updates);
        }
        // Prologue/epilogue per thread (bases, flag materialization,
        // checksum folds, spawn/join/exit sequences): generous constant.
        let overhead = n_threads * 160 + self.threads.len() as u64 * 16;
        // Each dynamic CAS attempt is ≤ 7 instructions; retries are
        // bounded by updates × n_threads beyond the first attempts.
        total + overhead + updates * n_threads * 8 + 64
    }

    /// Worst-case dynamic instruction count of `body` executed `mult`
    /// times; `updates` accumulates dynamic shared-cell increments.
    fn body_cost(body: &[Stmt], routines: &[Vec<Stmt>], mult: u64, updates: &mut u64) -> u64 {
        let mut c = 0u64;
        for s in body {
            c += match s {
                Stmt::If { then_body, else_body, .. } => {
                    // Both arms count toward `updates` (upper bound).
                    3 * mult
                        + Self::body_cost(then_body, routines, mult, updates)
                        + Self::body_cost(else_body, routines, mult, updates)
                }
                Stmt::Loop { trips, body } => {
                    mult + Self::body_cost(body, routines, mult * *trips as u64, updates)
                        + 2 * mult * *trips as u64
                }
                Stmt::Call { routine } => {
                    2 * mult
                        + routines
                            .get(*routine as usize)
                            .map(|r| Self::body_cost(r, routines, mult, updates))
                            .unwrap_or(0)
                }
                Stmt::AtomicAdd { .. } => {
                    *updates += mult;
                    3 * mult
                }
                Stmt::CasAdd { .. } => {
                    *updates += mult;
                    8 * mult
                }
                Stmt::Cmpxchg { .. } => 3 * mult,
                Stmt::Spill { .. } => 3 * mult,
                Stmt::Write { .. } => 5 * mult,
                Stmt::Gettid => 2 * mult,
                _ => mult,
            };
        }
        c
    }

    /// Lowers the spec to a runnable [`GuestBinary`].
    ///
    /// The lowering is deterministic: equal specs produce byte-identical
    /// binaries. Returns an error only if the spec is invalid (the
    /// assembler cannot fail on a valid spec).
    pub fn lower(&self) -> Result<GuestBinary, SpecError> {
        self.validate()?;
        let mut b = GelfBuilder::new("main");
        // Data layout: shared cells, per-thread private regions, tid
        // scratch for the spawn/join bookkeeping.
        let shared_base = b.data_zeroed(CELLS as usize * 8);
        let mut priv_bases = Vec::new();
        for _ in 0..self.cores() {
            priv_bases.push(b.data_zeroed(SLOTS as usize * 8));
        }
        let tid_base = b.data_zeroed(self.threads.len().max(1) * 8);

        let mut ctx = Lower { next_label: 0 };

        // Routines first (they sit before `main`; entry is a label).
        // `Write` in a routine is main-only (validated), so the main
        // thread's private base is the right buffer address.
        for (i, body) in self.routines.iter().enumerate() {
            b.asm.label(&format!("routine_{i}"));
            ctx.body(&mut b, body, priv_bases[0]);
            b.asm.ret();
        }

        // Child thread bodies.
        for (t, body) in self.threads.iter().enumerate() {
            let core = t + 1;
            b.asm.label(&format!("thread_{core}"));
            b.asm.mov_ri(PRIV_BASE, priv_bases[core]);
            b.asm.mov_ri(SHARED_BASE, shared_base);
            ctx.body(&mut b, body, priv_bases[core]);
            ctx.epilogue(&mut b, priv_bases[core], shared_base, tid_base, self, false);
        }

        // Main.
        b.asm.label("main");
        b.asm.mov_ri(PRIV_BASE, priv_bases[0]);
        b.asm.mov_ri(SHARED_BASE, shared_base);
        for t in 0..self.threads.len() {
            let core = t + 1;
            b.asm.mov_ri(Gpr::RAX, risotto_guest_x86::syscalls::SPAWN);
            b.asm.mov_label(Gpr::RDI, &format!("thread_{core}"));
            b.asm.mov_ri(Gpr::RSI, 0x1000 + core as u64);
            b.asm.syscall();
            // Stash the returned tid for the join sequence.
            b.asm.mov_ri(SCRATCH, tid_base + t as u64 * 8);
            b.asm.store(SCRATCH, 0, Gpr::RAX);
        }
        ctx.body(&mut b, &self.main, priv_bases[0]);
        ctx.epilogue(&mut b, priv_bases[0], shared_base, tid_base, self, true);

        b.finish().map_err(|e: AsmError| SpecError::Lower(e.to_string()))
    }
}

/// Lowering context: fresh-label allocation and per-statement emission.
struct Lower {
    next_label: u32,
}

impl Lower {
    fn fresh(&mut self, kind: &str) -> String {
        self.next_label += 1;
        format!("L{}_{}", kind, self.next_label)
    }

    fn body(&mut self, b: &mut GelfBuilder, stmts: &[Stmt], privb: u64) {
        self.body_at(b, stmts, privb, 0)
    }

    fn body_at(&mut self, b: &mut GelfBuilder, stmts: &[Stmt], privb: u64, depth: usize) {
        for s in stmts {
            self.stmt(b, s, privb, depth);
        }
    }

    fn stmt(&mut self, b: &mut GelfBuilder, s: &Stmt, privb: u64, depth: usize) {
        match s {
            Stmt::MovImm { dst, imm } => {
                b.asm.mov_ri(*dst, *imm);
            }
            Stmt::MovReg { dst, src } => {
                b.asm.mov_rr(*dst, *src);
            }
            Stmt::Alu { op, dst, src } => {
                match src {
                    Src::Reg(r) => b.asm.alu_rr(*op, *dst, *r),
                    Src::Imm(i) => b.asm.alu_ri(*op, *dst, *i),
                };
            }
            Stmt::Div { src } => {
                b.asm.div(*src);
            }
            Stmt::Fp { op, dst, src } => {
                b.asm.fp(*op, *dst, *src);
            }
            Stmt::Load { dst, slot } => {
                b.asm.load(*dst, PRIV_BASE, *slot as i32 * 8);
            }
            Stmt::Store { slot, src } => {
                b.asm.store(PRIV_BASE, *slot as i32 * 8, *src);
            }
            Stmt::LoadB { dst, slot, byte } => {
                b.asm.load_b(*dst, PRIV_BASE, *slot as i32 * 8 + *byte as i32);
            }
            Stmt::StoreB { slot, byte, src } => {
                b.asm.store_b(PRIV_BASE, *slot as i32 * 8 + *byte as i32, *src);
            }
            Stmt::LoadShared { dst, cell } => {
                b.asm.load(*dst, SHARED_BASE, *cell as i32 * 8);
            }
            Stmt::Cmp { a, src } => {
                match src {
                    Src::Reg(r) => b.asm.cmp_rr(*a, *r),
                    Src::Imm(i) => b.asm.cmp_ri(*a, *i),
                };
            }
            Stmt::Test { a, b: rb } => {
                b.asm.test_rr(*a, *rb);
            }
            Stmt::Fence => {
                b.asm.mfence();
            }
            Stmt::Spill { reg, imm } => {
                b.asm.push(*reg);
                b.asm.mov_ri(*reg, *imm);
                b.asm.pop(*reg);
            }
            Stmt::If { cond, a, imm, then_body, else_body } => {
                let l_else = self.fresh("else");
                let l_end = self.fresh("end");
                b.asm.cmp_ri(*a, *imm);
                b.asm.jcc_to(cond.negate(), &l_else);
                self.body_at(b, then_body, privb, depth);
                b.asm.jmp_to(&l_end);
                b.asm.label(&l_else);
                self.body_at(b, else_body, privb, depth);
                b.asm.label(&l_end);
            }
            Stmt::Loop { trips, body } => {
                let ctr = if depth == 0 { CTR0 } else { CTR1 };
                let l_head = self.fresh("loop");
                b.asm.mov_ri(ctr, *trips as u64);
                b.asm.label(&l_head);
                self.body_at(b, body, privb, depth + 1);
                b.asm.alu_ri(AluOp::Sub, ctr, 1);
                b.asm.jcc_to(Cond::Ne, &l_head);
            }
            Stmt::Call { routine } => {
                b.asm.call_to(&format!("routine_{routine}"));
            }
            Stmt::AtomicAdd { cell, k } => {
                b.asm.mov_ri(SCRATCH, *k as u64);
                b.asm.xadd(SHARED_BASE, *cell as i32 * 8, SCRATCH);
                // Squash the fetched (schedule-dependent) old value.
                b.asm.mov_ri(SCRATCH, 0);
            }
            Stmt::CasAdd { cell, k } => {
                let l_retry = self.fresh("cas");
                b.asm.load(Gpr::RAX, SHARED_BASE, *cell as i32 * 8);
                b.asm.label(&l_retry);
                b.asm.mov_rr(SCRATCH, Gpr::RAX);
                b.asm.alu_ri(AluOp::Add, SCRATCH, *k as u64);
                b.asm.cmpxchg(SHARED_BASE, *cell as i32 * 8, SCRATCH);
                b.asm.jcc_to(Cond::Ne, &l_retry);
                // Squash RAX (winning expected value) and the scratch.
                b.asm.mov_ri(Gpr::RAX, 0);
                b.asm.mov_ri(SCRATCH, 0);
            }
            Stmt::Cmpxchg { slot, expect, newv } => {
                b.asm.mov_ri(Gpr::RAX, *expect as u64);
                b.asm.mov_ri(SCRATCH, *newv as u64);
                b.asm.cmpxchg(PRIV_BASE, *slot as i32 * 8, SCRATCH);
            }
            Stmt::Write { slot } => {
                b.asm.mov_ri(Gpr::RAX, risotto_guest_x86::syscalls::WRITE);
                b.asm.mov_ri(Gpr::RDI, 1);
                b.asm.mov_ri(Gpr::RSI, privb + *slot as u64 * 8);
                b.asm.mov_ri(Gpr::RDX, 8);
                b.asm.syscall();
            }
            Stmt::Gettid => {
                b.asm.mov_ri(Gpr::RAX, risotto_guest_x86::syscalls::GETTID);
                b.asm.syscall();
            }
        }
    }

    /// Shared end-of-thread sequence: materialize the body-final flags
    /// into registers (they survive only via control flow), join children
    /// (main only), fold everything observable into a checksum, and exit.
    fn epilogue(
        &mut self,
        b: &mut GelfBuilder,
        privb: u64,
        shared: u64,
        tid_base: u64,
        spec: &ProgSpec,
        is_main: bool,
    ) {
        // Flags → R8..=R10, RBX via mov/jcc only (neither touches flags).
        for (cond, reg) in
            [(Cond::E, Gpr::R8), (Cond::L, Gpr::R9), (Cond::B, Gpr::R10), (Cond::S, Gpr::RBX)]
        {
            let skip = self.fresh("flag");
            b.asm.mov_ri(reg, 0);
            b.asm.jcc_to(cond.negate(), &skip);
            b.asm.mov_ri(reg, 1);
            b.asm.label(&skip);
        }
        b.asm.mov_ri(SCRATCH, 0x9E37_79B9);
        if is_main {
            // Join every child; fold each (deterministic) exit value.
            for t in 0..spec.threads.len() {
                b.asm.mov_ri(Gpr::RAX, tid_base + t as u64 * 8);
                b.asm.load(Gpr::RDI, Gpr::RAX, 0);
                b.asm.mov_ri(Gpr::RAX, risotto_guest_x86::syscalls::JOIN);
                b.asm.syscall();
                b.asm.alu_ri(AluOp::Mul, SCRATCH, FOLD_PRIME);
                b.asm.alu_rr(AluOp::Xor, SCRATCH, Gpr::RAX);
            }
            // Shared cells are final once every child has joined.
            for c in 0..CELLS {
                b.asm.mov_ri(Gpr::RAX, shared + c as u64 * 8);
                b.asm.load(Gpr::RAX, Gpr::RAX, 0);
                b.asm.alu_ri(AluOp::Mul, SCRATCH, FOLD_PRIME);
                b.asm.alu_rr(AluOp::Xor, SCRATCH, Gpr::RAX);
            }
        }
        // Fold the private slots.
        for s in 0..SLOTS {
            b.asm.mov_ri(Gpr::RAX, privb + s as u64 * 8);
            b.asm.load(Gpr::RAX, Gpr::RAX, 0);
            b.asm.alu_ri(AluOp::Mul, SCRATCH, FOLD_PRIME);
            b.asm.alu_rr(AluOp::Xor, SCRATCH, Gpr::RAX);
        }
        // Fold the working registers (flag materialization included).
        for r in WORKING_REGS {
            if r == Gpr::RAX {
                continue; // clobbered by the folds above
            }
            b.asm.alu_ri(AluOp::Mul, SCRATCH, FOLD_PRIME);
            b.asm.alu_rr(AluOp::Xor, SCRATCH, r);
        }
        b.asm.mov_rr(Gpr::RAX, SCRATCH);
        if is_main {
            b.asm.hlt();
        } else {
            b.asm.mov_rr(Gpr::RDI, Gpr::RAX);
            b.asm.mov_ri(Gpr::RAX, risotto_guest_x86::syscalls::EXIT);
            b.asm.syscall();
        }
    }
}
