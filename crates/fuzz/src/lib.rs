//! Differential fuzzing for the Risotto-rs translation pipeline.
//!
//! The crate closes the loop the paper's formal story leaves open in a
//! reimplementation: the per-TB verifier (PR 5) checks each installed
//! translation against its fence obligations, but nothing was hunting
//! for inputs on which the tiers *disagree*. This subsystem generates
//! random well-formed MiniX86 programs ([`gen`]), runs each through the
//! reference interpreter and three DBT configurations with the verifier
//! as a second oracle ([`diff`]), and delta-debugs any divergent program
//! down to a minimal reproducer ([`mod@minimize`]) stored in the
//! human-readable `.risotto` corpus format ([`corpus`]).
//!
//! Everything is seeded: `generate(cfg, seed)` is a pure function, so a
//! failing iteration is reproduced by its seed alone.
//!
//! ```
//! use risotto_fuzz::{differential, generate, GenConfig};
//!
//! let spec = generate(&GenConfig::default(), 42);
//! let result = differential(&spec);
//! assert!(result.divergences.is_empty());
//! ```

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod minimize;
pub mod spec;

pub use corpus::{parse_corpus, to_corpus_string, CorpusError};
pub use diff::{
    differential, diverges, fault_check, random_fault_plan, Config, DiffResult, Divergence,
    Outcome, FUZZ_HOT_THRESHOLD,
};
pub use gen::{generate, GenConfig, Weights};
pub use minimize::{minimize, regression_test_skeleton, Minimized};
pub use spec::{ProgSpec, SpecError, Src, Stmt};

/// Derives the per-iteration program seed from a run seed, so one
/// `--seed` reproduces the whole run and any single iteration can be
/// replayed in isolation (`generate(cfg, program_seed(run_seed, i))`).
pub fn program_seed(run_seed: u64, iter: u64) -> u64 {
    let mut rng = risotto_core::SplitMix64::new(run_seed);
    // Decorrelate the per-iteration streams from the run stream itself:
    // one split then an iteration-indexed jump.
    rng.next_u64().wrapping_add(iter.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ iter.rotate_left(17)
}
