//! Replays a `.risotto` corpus file through the full oracle matrix and
//! prints every divergence. Usage:
//!
//! ```text
//! cargo run -p risotto-fuzz --example replay -- path/to/file.risotto
//! ```

use risotto_fuzz::diff::{run_config, run_interp, Config};

fn main() {
    let path = std::env::args().nth(1).expect("usage: replay <file.risotto>");
    let text = std::fs::read_to_string(&path).expect("read corpus file");
    let spec = risotto_fuzz::parse_corpus(&text).expect("parse corpus file");
    println!("spec:\n{}", risotto_fuzz::to_corpus_string(&spec));
    let bin = spec.lower().expect("lower");
    let interp = run_interp(&spec, &bin).expect("interp");
    let t1 = run_config(&spec, &bin, Config::Tier1).expect("tier1");
    for i in 0..16 {
        let (a, b) = (interp.regs[0][i], t1.regs[0][i]);
        let mark = if a == b { "  " } else { "!!" };
        println!("{mark} reg {i:2}: interp {a:#018x}  tier1 {b:#018x}");
    }
    println!("interp data {:x?}", interp.data);
    println!("tier1  data {:x?}", t1.data);
    println!("tier1 flags {:?}", t1.flags0);
    let result = risotto_fuzz::differential(&spec);
    for d in &result.divergences {
        println!("DIVERGENCE {d}");
    }
}
