//! [`HostLibrary`] factories: the native host shared libraries offered to
//! the dynamic linker (§6.2).
//!
//! Each function reads its arguments from guest memory / registers per
//! the IDL signature, computes with the real Rust implementation, and
//! reports a cycle cost derived from the work performed (bytes hashed,
//! limb operations, B-tree nodes visited, …).

use crate::bignum::modpow_pm;
use crate::digest::{md5, sha1, sha256};
use crate::kvstore::BTreeKv;
use crate::mathfn::MathFn;
use risotto_core::{HostExport, HostLibrary};
use risotto_host_arm::NativeResult;
use std::cell::RefCell;
use std::rc::Rc;

/// IDL text covering every function in these libraries. Feed to
/// [`risotto_core::Idl::parse`].
pub const IDL_TEXT: &str = "\
# libm
f64 sqrt(f64);
f64 exp(f64);
f64 log(f64);
f64 cos(f64);
f64 sin(f64);
f64 tan(f64);
f64 acos(f64);
f64 asin(f64);
f64 atan(f64);
# libcrypto
u64 md5(ptr, u64, ptr);
u64 sha1(ptr, u64, ptr);
u64 sha256(ptr, u64, ptr);
u64 rsa_modpow(ptr, ptr, ptr, u64, u64);
# libkv (sqlite stand-in)
u64 kv_put(u64, u64);
u64 kv_get(u64);
u64 kv_range_sum(u64, u64);
";

/// Native-vs-translated throughput asymmetries come from per-byte /
/// per-op native costs. The constants are anchored so the Fig. 13 *ratio
/// spread* reproduces: MD5 has no Arm hardware assist (small speedup over
/// the translated build), SHA-1/SHA-256 use the ARMv8 crypto extensions
/// (large speedups — the paper's 23× sha256 case), RSA and the B-tree are
/// plain C kernels whose speedup is translation overhead alone.
pub mod costs {
    /// MD5 cycles per byte (portable C, no hardware assist).
    pub const MD5_CPB: u64 = 100;
    /// SHA-1 cycles per byte (ARMv8 SHA1 instructions).
    pub const SHA1_CPB: u64 = 60;
    /// SHA-256 cycles per byte (ARMv8 SHA2 instructions).
    pub const SHA256_CPB: u64 = 35;
    /// Fixed digest setup cost.
    pub const DIGEST_BASE: u64 = 160;
    /// Cycles per big-number limb operation (mul-accumulate in portable C).
    pub const LIMB_OP: u64 = 30;
    /// Cycles per B-tree node visit (pointer chase + binary search).
    pub const KV_NODE: u64 = 40;
    /// Fixed KV call cost.
    pub const KV_BASE: u64 = 120;
}

/// The math library (`libm`).
pub fn libm() -> HostLibrary {
    let funcs = MathFn::ALL
        .iter()
        .map(|&f| {
            let name = f.name().to_owned();
            let func: risotto_host_arm::NativeFn = Box::new(move |_mem, args| {
                let x = f64::from_bits(args[0]);
                NativeResult { ret: f.eval(x).to_bits(), cost: f.native_cost() }
            });
            HostExport { name, arity: 1, func }
        })
        .collect();
    HostLibrary { name: "libm".into(), funcs }
}

/// The crypto library (`libcrypto`): digests + the RSA-style modpow.
///
/// * `md5/sha1/sha256(buf, len, out)` — hash guest bytes, write the
///   digest to `out`, return the digest length.
/// * `rsa_modpow(base, exp, out, nlimbs, c)` — all pointers to
///   little-endian limb arrays; modulus is `2^(64·nlimbs) − c`.
pub fn libcrypto() -> HostLibrary {
    let digest = |algo: u8| -> risotto_host_arm::NativeFn {
        Box::new(move |mem, args| {
            let data = mem.read_bytes(args[0], args[1] as usize);
            let (out, cpb): (Vec<u8>, u64) = match algo {
                0 => (md5(&data).to_vec(), costs::MD5_CPB),
                1 => (sha1(&data).to_vec(), costs::SHA1_CPB),
                _ => (sha256(&data).to_vec(), costs::SHA256_CPB),
            };
            mem.write_bytes(args[2], &out);
            NativeResult { ret: out.len() as u64, cost: costs::DIGEST_BASE + cpb * args[1] }
        })
    };
    let rsa: risotto_host_arm::NativeFn = Box::new(|mem, args| {
        let nlimbs = args[3] as usize;
        let c = args[4];
        let read_limbs = |mem: &risotto_guest_x86::SparseMem, addr: u64| -> Vec<u64> {
            (0..nlimbs).map(|i| mem.read_u64(addr + i as u64 * 8)).collect()
        };
        let base = read_limbs(mem, args[0]);
        let exp = read_limbs(mem, args[1]);
        let (result, work) = modpow_pm(&base, &exp, c);
        for (i, l) in result.iter().enumerate() {
            mem.write_u64(args[2] + i as u64 * 8, *l);
        }
        NativeResult { ret: 0, cost: 200 + work * costs::LIMB_OP }
    });
    HostLibrary::new("libcrypto")
        .export("md5", 3, digest(0))
        .export("sha1", 3, digest(1))
        .export("sha256", 3, digest(2))
        .export("rsa_modpow", 5, rsa)
}

/// The key-value library (`libkv`, the sqlite stand-in). All three
/// functions share one store.
pub fn libkv() -> HostLibrary {
    let store = Rc::new(RefCell::new(BTreeKv::new()));
    let mk = |op: u8, store: Rc<RefCell<BTreeKv>>| -> risotto_host_arm::NativeFn {
        Box::new(move |_mem, args| {
            let mut kv = store.borrow_mut();
            let before = kv.node_visits;
            let ret = match op {
                0 => kv.put(args[0], args[1]).unwrap_or(u64::MAX),
                1 => kv.get(args[0]).unwrap_or(u64::MAX),
                _ => kv.range_sum(args[0], args[1]),
            };
            let visits = kv.node_visits - before;
            NativeResult { ret, cost: costs::KV_BASE + visits * costs::KV_NODE }
        })
    };
    HostLibrary::new("libkv")
        .export("kv_put", 2, mk(0, store.clone()))
        .export("kv_get", 1, mk(1, store.clone()))
        .export("kv_range_sum", 2, mk(2, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_core::Idl;

    #[test]
    fn idl_text_parses_and_covers_all_libraries() {
        let idl = Idl::parse(IDL_TEXT).unwrap();
        for lib in [libm(), libcrypto(), libkv()] {
            for e in &lib.funcs {
                let decl = idl.lookup(&e.name);
                assert!(decl.is_some(), "{} missing from IDL", e.name);
                assert_eq!(
                    decl.map(|d| d.params.len()),
                    Some(e.arity),
                    "{} arity disagrees with IDL",
                    e.name
                );
            }
        }
        assert_eq!(idl.funcs.len(), 16);
    }

    #[test]
    fn libcrypto_digest_writes_to_guest_memory() {
        let mut lib = libcrypto();
        let mut mem = risotto_guest_x86::SparseMem::new();
        mem.write_bytes(0x1000, b"abc");
        let e = lib.funcs.iter_mut().find(|e| e.name == "sha256").unwrap();
        let res = (e.func)(&mut mem, &[0x1000, 3, 0x2000, 0, 0, 0]);
        assert_eq!(res.ret, 32);
        assert_eq!(
            crate::digest::to_hex(&mem.read_bytes(0x2000, 32)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert!(res.cost > costs::DIGEST_BASE);
    }

    #[test]
    fn libkv_functions_share_state() {
        let mut lib = libkv();
        let mut mem = risotto_guest_x86::SparseMem::new();
        let run = |lib: &mut HostLibrary, mem: &mut _, name: &str, args: [u64; 6]| {
            let e = lib.funcs.iter_mut().find(|e| e.name == name).unwrap();
            (e.func)(mem, &args)
        };
        assert_eq!(run(&mut lib, &mut mem, "kv_put", [7, 70, 0, 0, 0, 0]).ret, u64::MAX);
        assert_eq!(run(&mut lib, &mut mem, "kv_put", [9, 90, 0, 0, 0, 0]).ret, u64::MAX);
        assert_eq!(run(&mut lib, &mut mem, "kv_get", [7, 0, 0, 0, 0, 0]).ret, 70);
        assert_eq!(run(&mut lib, &mut mem, "kv_range_sum", [0, 100, 0, 0, 0, 0]).ret, 160);
    }
}
