//! Big-number modular exponentiation in MiniX86 assembly — the guest
//! `rsa_modpow`.
//!
//! Mirrors [`crate::bignum::modpow_pm`]: schoolbook multiply with
//! `MUL`-widened 64×64 products, pseudo-Mersenne folding reduction
//! (`m = 2^(64·n) − c`), LSB-first square-and-multiply. Carry chains are
//! built from `ADD` + `JAE` (MiniX86, like x86, sets CF but we spell the
//! `ADC` out). Static buffers support up to 32 limbs (2048 bits); not
//! reentrant.
//!
//! ABI: `guest_rsa_modpow(base=RDI, exp=RSI, out=RDX, nlimbs=RCX, c=R8)`.

use risotto_guest_x86::{AluOp, Cond, GelfBuilder, Gpr};

/// Maximum supported limbs (2048-bit).
pub const MAX_LIMBS: usize = 32;

/// Emits `guest_rsa_modpow` and its internal routines.
pub fn emit_modpow_pm(b: &mut GelfBuilder) {
    let n_slot = b.data_u64(&[0]);
    let c_slot = b.data_u64(&[0]);
    let exp_slot = b.data_u64(&[0]);
    let out_slot = b.data_u64(&[0]);
    let x_slot = b.data_u64(&[0]); // rsa_mul left operand pointer
    let y_slot = b.data_u64(&[0]); // rsa_mul right operand pointer
    let base_buf = b.data_zeroed(MAX_LIMBS * 8);
    let res_buf = b.data_zeroed(MAX_LIMBS * 8);
    let prod_buf = b.data_zeroed(2 * MAX_LIMBS * 8);
    let tmp_buf = b.data_zeroed(MAX_LIMBS * 8);

    // =================================================================
    // guest_rsa_modpow
    // =================================================================
    b.asm.label("guest_rsa_modpow");
    for r in [Gpr::RBX, Gpr::RBP, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
        b.asm.push(r);
    }
    // Stash parameters.
    b.asm.mov_ri(Gpr::RAX, n_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.mov_ri(Gpr::RAX, c_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::R8);
    b.asm.mov_ri(Gpr::RAX, exp_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RSI);
    b.asm.mov_ri(Gpr::RAX, out_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RDX);
    // base_buf = *base; res_buf = 1.
    b.asm.mov_rr(Gpr::RSI, Gpr::RDI);
    b.asm.mov_ri(Gpr::RDI, base_buf);
    b.asm.mov_rr(Gpr::RDX, Gpr::RCX);
    b.asm.label("rsa_copy_base");
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "rsa_copy_base");
    b.asm.mov_ri(Gpr::RDI, res_buf);
    b.asm.mov_ri(Gpr::RAX, 1);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.mov_rr(Gpr::RDX, Gpr::RCX);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.label("rsa_res_one");
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::E, "rsa_bits");
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.jmp_to("rsa_res_one");

    // Bit loop: R15 = bit index i, RBP = significant exponent bits
    // (scan limbs from the top; count bits of the highest non-zero limb).
    b.asm.label("rsa_bits");
    b.asm.mov_ri(Gpr::RAX, n_slot);
    b.asm.load(Gpr::RCX, Gpr::RAX, 0); // j = n
    b.asm.mov_ri(Gpr::RBP, 0);
    b.asm.label("rsa_scan_limb");
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::E, "rsa_scan_done");
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.mov_ri(Gpr::RAX, exp_slot);
    b.asm.load(Gpr::RSI, Gpr::RAX, 0);
    b.asm.mov_rr(Gpr::RDX, Gpr::RCX);
    b.asm.alu_ri(AluOp::Shl, Gpr::RDX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::RDX);
    b.asm.load(Gpr::RAX, Gpr::RSI, 0); // exp[j]
    b.asm.cmp_ri(Gpr::RAX, 0);
    b.asm.jcc_to(Cond::E, "rsa_scan_limb");
    // bits = j*64 + popcount-of-width: count bits of RAX.
    b.asm.mov_rr(Gpr::RBP, Gpr::RCX);
    b.asm.alu_ri(AluOp::Shl, Gpr::RBP, 6);
    b.asm.label("rsa_scan_bit");
    b.asm.cmp_ri(Gpr::RAX, 0);
    b.asm.jcc_to(Cond::E, "rsa_scan_done");
    b.asm.alu_ri(AluOp::Shr, Gpr::RAX, 1);
    b.asm.alu_ri(AluOp::Add, Gpr::RBP, 1);
    b.asm.jmp_to("rsa_scan_bit");
    b.asm.label("rsa_scan_done");
    b.asm.mov_ri(Gpr::R15, 0);
    b.asm.label("rsa_bit_loop");
    b.asm.cmp_rr(Gpr::R15, Gpr::RBP);
    b.asm.jcc_to(Cond::Ae, "rsa_done");
    // bit = exp[i/64] >> (i%64) & 1.
    b.asm.mov_ri(Gpr::RAX, exp_slot);
    b.asm.load(Gpr::RSI, Gpr::RAX, 0);
    b.asm.mov_rr(Gpr::RCX, Gpr::R15);
    b.asm.alu_ri(AluOp::Shr, Gpr::RCX, 6);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::RCX);
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    b.asm.mov_rr(Gpr::RCX, Gpr::R15);
    b.asm.alu_ri(AluOp::And, Gpr::RCX, 63);
    b.asm.alu_rr(AluOp::Shr, Gpr::RAX, Gpr::RCX);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, 1);
    b.asm.cmp_ri(Gpr::RAX, 0);
    b.asm.jcc_to(Cond::E, "rsa_square");
    // res = reduce(res * base).
    b.asm.mov_ri(Gpr::RAX, x_slot);
    b.asm.mov_ri(Gpr::RCX, res_buf);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.mov_ri(Gpr::RAX, y_slot);
    b.asm.mov_ri(Gpr::RCX, base_buf);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.call_to("rsa_mul");
    b.asm.call_to("rsa_reduce");
    b.asm.mov_ri(Gpr::RSI, prod_buf);
    b.asm.mov_ri(Gpr::RDI, res_buf);
    b.asm.call_to("rsa_copy_n");
    b.asm.label("rsa_square");
    // b = reduce(b * b) — skipped on the final bit.
    b.asm.mov_rr(Gpr::RAX, Gpr::R15);
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 1);
    b.asm.cmp_rr(Gpr::RAX, Gpr::RBP);
    b.asm.jcc_to(Cond::Ae, "rsa_next");
    b.asm.mov_ri(Gpr::RAX, x_slot);
    b.asm.mov_ri(Gpr::RCX, base_buf);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.mov_ri(Gpr::RAX, y_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RCX);
    b.asm.call_to("rsa_mul");
    b.asm.call_to("rsa_reduce");
    b.asm.mov_ri(Gpr::RSI, prod_buf);
    b.asm.mov_ri(Gpr::RDI, base_buf);
    b.asm.call_to("rsa_copy_n");
    b.asm.label("rsa_next");
    b.asm.alu_ri(AluOp::Add, Gpr::R15, 1);
    b.asm.jmp_to("rsa_bit_loop");

    b.asm.label("rsa_done");
    // *out = res.
    b.asm.mov_ri(Gpr::RSI, res_buf);
    b.asm.mov_ri(Gpr::RAX, out_slot);
    b.asm.load(Gpr::RDI, Gpr::RAX, 0);
    b.asm.call_to("rsa_copy_n");
    for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::RBP, Gpr::RBX] {
        b.asm.pop(r);
    }
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.ret();

    // =================================================================
    // rsa_copy_n: copy n limbs from RSI to RDI (clobbers RAX, RDX).
    // =================================================================
    b.asm.label("rsa_copy_n");
    b.asm.mov_ri(Gpr::RAX, n_slot);
    b.asm.load(Gpr::RDX, Gpr::RAX, 0);
    b.asm.label("rsa_copy_n_loop");
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "rsa_copy_n_loop");
    b.asm.ret();

    // =================================================================
    // rsa_mul: prod_buf[0..2n] = (*x_slot) × (*y_slot). Clobbers
    // RAX,RCX,RDX,RSI,RDI,R9..R14 (but preserves RBP,R15,RBX).
    // =================================================================
    b.asm.label("rsa_mul");
    b.asm.mov_ri(Gpr::RAX, n_slot);
    b.asm.load(Gpr::R9, Gpr::RAX, 0); // n
                                      // Zero prod[0..2n].
    b.asm.mov_ri(Gpr::RDI, prod_buf);
    b.asm.mov_rr(Gpr::RDX, Gpr::R9);
    b.asm.alu_ri(AluOp::Shl, Gpr::RDX, 1);
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.label("rsa_mul_zero");
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "rsa_mul_zero");
    // i loop: R10 = i.
    b.asm.mov_ri(Gpr::R10, 0);
    b.asm.label("rsa_mul_i");
    b.asm.cmp_rr(Gpr::R10, Gpr::R9);
    b.asm.jcc_to(Cond::Ae, "rsa_mul_done");
    // xi = x[i] → R14.
    b.asm.mov_ri(Gpr::RAX, x_slot);
    b.asm.load(Gpr::RSI, Gpr::RAX, 0);
    b.asm.mov_rr(Gpr::RCX, Gpr::R10);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::RCX);
    b.asm.load(Gpr::R14, Gpr::RSI, 0);
    // carry (R13) = 0; j (R11) = 0.
    b.asm.mov_ri(Gpr::R13, 0);
    b.asm.mov_ri(Gpr::R11, 0);
    b.asm.label("rsa_mul_j");
    b.asm.cmp_rr(Gpr::R11, Gpr::R9);
    b.asm.jcc_to(Cond::Ae, "rsa_mul_j_done");
    // RDX:RAX = xi * y[j].
    b.asm.mov_ri(Gpr::RAX, y_slot);
    b.asm.load(Gpr::RSI, Gpr::RAX, 0);
    b.asm.mov_rr(Gpr::RCX, Gpr::R11);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::RCX);
    b.asm.load(Gpr::RCX, Gpr::RSI, 0); // y[j]
    b.asm.mov_rr(Gpr::RAX, Gpr::R14);
    b.asm.mul_wide(Gpr::RCX); // RDX:RAX
                              // t = prod[i+j]; t += lo (carry→RDX); t += carry13 (carry→RDX).
    b.asm.mov_rr(Gpr::RSI, Gpr::R10);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::R11);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, prod_buf);
    b.asm.load(Gpr::RCX, Gpr::RSI, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::RCX, Gpr::RAX);
    b.asm.jcc_to(Cond::Ae, "rsa_mul_nc1");
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
    b.asm.label("rsa_mul_nc1");
    b.asm.alu_rr(AluOp::Add, Gpr::RCX, Gpr::R13);
    b.asm.jcc_to(Cond::Ae, "rsa_mul_nc2");
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
    b.asm.label("rsa_mul_nc2");
    b.asm.store(Gpr::RSI, 0, Gpr::RCX);
    b.asm.mov_rr(Gpr::R13, Gpr::RDX);
    b.asm.alu_ri(AluOp::Add, Gpr::R11, 1);
    b.asm.jmp_to("rsa_mul_j");
    b.asm.label("rsa_mul_j_done");
    // prod[i+n] = carry.
    b.asm.mov_rr(Gpr::RSI, Gpr::R10);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::R9);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, prod_buf);
    b.asm.store(Gpr::RSI, 0, Gpr::R13);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 1);
    b.asm.jmp_to("rsa_mul_i");
    b.asm.label("rsa_mul_done");
    b.asm.ret();

    // =================================================================
    // rsa_reduce: prod_buf[0..2n] mod (2^(64n) − c) → prod_buf[0..n].
    // Clobbers RAX,RCX,RDX,RSI,RDI,R9..R14.
    // =================================================================
    b.asm.label("rsa_reduce");
    b.asm.mov_ri(Gpr::RAX, n_slot);
    b.asm.load(Gpr::R9, Gpr::RAX, 0); // n
    b.asm.mov_ri(Gpr::RAX, c_slot);
    b.asm.load(Gpr::R12, Gpr::RAX, 0); // c
    b.asm.label("rsa_red_fold");
    // lo[i] += hi[i] * c, hi[i] = 0; carry in R13.
    b.asm.mov_ri(Gpr::R13, 0);
    b.asm.mov_ri(Gpr::R10, 0); // i
    b.asm.label("rsa_red_i");
    b.asm.cmp_rr(Gpr::R10, Gpr::R9);
    b.asm.jcc_to(Cond::Ae, "rsa_red_i_done");
    // hi[i] → RAX (and zero it).
    b.asm.mov_rr(Gpr::RSI, Gpr::R10);
    b.asm.alu_rr(AluOp::Add, Gpr::RSI, Gpr::R9);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, prod_buf);
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    b.asm.mov_ri(Gpr::RCX, 0);
    b.asm.store(Gpr::RSI, 0, Gpr::RCX);
    // RDX:RAX = hi_i * c.
    b.asm.mul_wide(Gpr::R12);
    // lo[i] += lo_part + carry.
    b.asm.mov_rr(Gpr::RSI, Gpr::R10);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, prod_buf);
    b.asm.load(Gpr::RCX, Gpr::RSI, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::RCX, Gpr::RAX);
    b.asm.jcc_to(Cond::Ae, "rsa_red_nc1");
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
    b.asm.label("rsa_red_nc1");
    b.asm.alu_rr(AluOp::Add, Gpr::RCX, Gpr::R13);
    b.asm.jcc_to(Cond::Ae, "rsa_red_nc2");
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
    b.asm.label("rsa_red_nc2");
    b.asm.store(Gpr::RSI, 0, Gpr::RCX);
    b.asm.mov_rr(Gpr::R13, Gpr::RDX);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 1);
    b.asm.jmp_to("rsa_red_i");
    b.asm.label("rsa_red_i_done");
    // hi[0] = carry; fold again if non-zero.
    b.asm.mov_rr(Gpr::RSI, Gpr::R9);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, prod_buf);
    b.asm.store(Gpr::RSI, 0, Gpr::R13);
    b.asm.cmp_ri(Gpr::R13, 0);
    b.asm.jcc_to(Cond::Ne, "rsa_red_fold");
    // Conditional subtraction: tmp = lo + c; if carry out, lo = tmp; loop.
    b.asm.label("rsa_red_sub");
    b.asm.mov_rr(Gpr::R13, Gpr::R12); // chain = c
    b.asm.mov_ri(Gpr::R10, 0);
    b.asm.label("rsa_red_sub_i");
    b.asm.cmp_rr(Gpr::R10, Gpr::R9);
    b.asm.jcc_to(Cond::Ae, "rsa_red_sub_done");
    b.asm.mov_rr(Gpr::RSI, Gpr::R10);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.mov_rr(Gpr::RDI, Gpr::RSI);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, prod_buf);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, tmp_buf);
    b.asm.load(Gpr::RCX, Gpr::RSI, 0);
    b.asm.mov_ri(Gpr::RDX, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::RCX, Gpr::R13);
    b.asm.jcc_to(Cond::Ae, "rsa_red_sub_nc");
    b.asm.mov_ri(Gpr::RDX, 1);
    b.asm.label("rsa_red_sub_nc");
    b.asm.store(Gpr::RDI, 0, Gpr::RCX);
    b.asm.mov_rr(Gpr::R13, Gpr::RDX);
    b.asm.alu_ri(AluOp::Add, Gpr::R10, 1);
    b.asm.jmp_to("rsa_red_sub_i");
    b.asm.label("rsa_red_sub_done");
    // If the chain carried out, lo ≥ m: commit tmp and try again.
    b.asm.cmp_ri(Gpr::R13, 0);
    b.asm.jcc_to(Cond::E, "rsa_red_ret");
    b.asm.mov_ri(Gpr::RSI, tmp_buf);
    b.asm.mov_ri(Gpr::RDI, prod_buf);
    b.asm.mov_rr(Gpr::RDX, Gpr::R9);
    b.asm.label("rsa_red_commit");
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "rsa_red_commit");
    b.asm.jmp_to("rsa_red_sub");
    b.asm.label("rsa_red_ret");
    b.asm.ret();
}
