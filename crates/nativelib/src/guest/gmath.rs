//! The guest math library in MiniX86 assembly — the "translated libm" of
//! Fig. 14.
//!
//! Each function evaluates a polynomial kernel with the guest's FP
//! instructions, which the DBT emulates through soft-float helpers — so
//! the translated versions are dramatically slower than the native
//! [`crate::mathfn`] ones, exactly the asymmetry the paper measures.
//!
//! Domain restrictions (documented, enforced by the benchmarks):
//! `sin`/`cos`/`tan` on `|x| ≤ 1.6`, `exp` on `|x| ≤ 2`, `log` on
//! `x ∈ [0.4, 2.5]`, `asin`/`acos`/`atan` on `|x| ≤ 0.6`. Within those
//! ranges the kernels agree with the native library to ~1e-9.
//!
//! ABI: argument f64 bit-pattern in `RDI`, result bit-pattern in `RAX`.

use risotto_guest_x86::{AluOp, Cond, FpOp, GelfBuilder, Gpr};

fn factorial(n: u64) -> f64 {
    (1..=n).map(|i| i as f64).product::<f64>().max(1.0)
}

/// Emits all nine `guest_<fn>` math routines plus the shared Horner
/// evaluator.
pub fn emit_math(b: &mut GelfBuilder) {
    // Coefficient tables (f64 bit patterns, lowest order first).
    let sin_coeffs: Vec<u64> = (0..10)
        .map(|k| {
            let c = if k % 2 == 0 { 1.0 } else { -1.0 } / factorial(2 * k as u64 + 1);
            c.to_bits()
        })
        .collect();
    let cos_coeffs: Vec<u64> = (0..10)
        .map(|k| {
            let c = if k % 2 == 0 { 1.0 } else { -1.0 } / factorial(2 * k as u64);
            c.to_bits()
        })
        .collect();
    let exp_coeffs: Vec<u64> = (0..18).map(|k| (1.0 / factorial(k as u64)).to_bits()).collect();
    let log_coeffs: Vec<u64> = (0..14).map(|k| (1.0 / (2.0 * k as f64 + 1.0)).to_bits()).collect();
    let atan_coeffs: Vec<u64> = (0..16)
        .map(|k| ((if k % 2 == 0 { 1.0 } else { -1.0 }) / (2.0 * k as f64 + 1.0)).to_bits())
        .collect();
    // asin: c_k = (2k)! / (4^k (k!)^2 (2k+1)).
    let asin_coeffs: Vec<u64> = (0..16)
        .map(|k| {
            let kk = k as u64;
            let c = factorial(2 * kk)
                / (4f64.powi(k) * factorial(kk) * factorial(kk) * (2.0 * k as f64 + 1.0));
            c.to_bits()
        })
        .collect();

    let sin_tab = b.data_u64(&sin_coeffs);
    let cos_tab = b.data_u64(&cos_coeffs);
    let exp_tab = b.data_u64(&exp_coeffs);
    let log_tab = b.data_u64(&log_coeffs);
    let atan_tab = b.data_u64(&atan_coeffs);
    let asin_tab = b.data_u64(&asin_coeffs);

    // ---- poly(x=RDI bits, table=RSI, count=RDX) → RAX -----------------
    // Horner: acc = c[n-1]; repeat: acc = acc*x + c[i].
    b.asm.label("gmath_poly");
    b.asm.mov_rr(Gpr::RCX, Gpr::RDX);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.mov_rr(Gpr::R8, Gpr::RCX);
    b.asm.alu_ri(AluOp::Shl, Gpr::R8, 3);
    b.asm.alu_rr(AluOp::Add, Gpr::R8, Gpr::RSI); // &c[n-1]
    b.asm.load(Gpr::RAX, Gpr::R8, 0); // acc
    b.asm.label("gmath_poly_loop");
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::E, "gmath_poly_done");
    b.asm.alu_ri(AluOp::Sub, Gpr::R8, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RDI);
    b.asm.load(Gpr::R9, Gpr::R8, 0);
    b.asm.fp(FpOp::Add, Gpr::RAX, Gpr::R9);
    b.asm.jmp_to("gmath_poly_loop");
    b.asm.label("gmath_poly_done");
    b.asm.ret();

    // Helper to emit "odd series" functions: f(x) = x · P(x²).
    let odd_series = |b: &mut GelfBuilder, name: &str, tab: u64, count: u64| {
        b.asm.label(&format!("guest_{name}"));
        b.asm.push(Gpr::RBX);
        b.asm.mov_rr(Gpr::RBX, Gpr::RDI); // x
        b.asm.fp(FpOp::Mul, Gpr::RDI, Gpr::RDI); // x²
        b.asm.mov_ri(Gpr::RSI, tab);
        b.asm.mov_ri(Gpr::RDX, count);
        b.asm.call_to("gmath_poly");
        b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX);
        b.asm.pop(Gpr::RBX);
        b.asm.ret();
    };
    odd_series(b, "sin", sin_tab, sin_coeffs.len() as u64);
    odd_series(b, "atan", atan_tab, atan_coeffs.len() as u64);
    odd_series(b, "asin", asin_tab, asin_coeffs.len() as u64);

    // cos(x) = P(x²).
    b.asm.label("guest_cos");
    b.asm.fp(FpOp::Mul, Gpr::RDI, Gpr::RDI);
    b.asm.mov_ri(Gpr::RSI, cos_tab);
    b.asm.mov_ri(Gpr::RDX, cos_coeffs.len() as u64);
    b.asm.call_to("gmath_poly");
    b.asm.ret();

    // exp(x) = P(x).
    b.asm.label("guest_exp");
    b.asm.mov_ri(Gpr::RSI, exp_tab);
    b.asm.mov_ri(Gpr::RDX, exp_coeffs.len() as u64);
    b.asm.call_to("gmath_poly");
    b.asm.ret();

    // log(x) = 2·z·P(z²), z = (x−1)/(x+1).
    b.asm.label("guest_log");
    b.asm.push(Gpr::RBX);
    b.asm.mov_ri(Gpr::RAX, 1.0f64.to_bits());
    b.asm.mov_rr(Gpr::RBX, Gpr::RDI);
    b.asm.fp(FpOp::Sub, Gpr::RBX, Gpr::RAX); // x − 1
    b.asm.fp(FpOp::Add, Gpr::RDI, Gpr::RAX); // x + 1
    b.asm.mov_rr(Gpr::RCX, Gpr::RBX);
    b.asm.fp(FpOp::Div, Gpr::RCX, Gpr::RDI); // z
    b.asm.mov_rr(Gpr::RBX, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDI, Gpr::RCX);
    b.asm.fp(FpOp::Mul, Gpr::RDI, Gpr::RDI); // z²
    b.asm.mov_ri(Gpr::RSI, log_tab);
    b.asm.mov_ri(Gpr::RDX, log_coeffs.len() as u64);
    b.asm.call_to("gmath_poly");
    b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX); // z·P
    b.asm.mov_ri(Gpr::RCX, 2.0f64.to_bits());
    b.asm.fp(FpOp::Mul, Gpr::RAX, Gpr::RCX);
    b.asm.pop(Gpr::RBX);
    b.asm.ret();

    // tan(x) = sin(x)/cos(x).
    b.asm.label("guest_tan");
    b.asm.push(Gpr::RBX);
    b.asm.push(Gpr::R12);
    b.asm.mov_rr(Gpr::R12, Gpr::RDI);
    b.asm.call_to("guest_sin");
    b.asm.mov_rr(Gpr::RBX, Gpr::RAX);
    b.asm.mov_rr(Gpr::RDI, Gpr::R12);
    b.asm.call_to("guest_cos");
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.mov_rr(Gpr::RAX, Gpr::RBX);
    b.asm.fp(FpOp::Div, Gpr::RAX, Gpr::RCX);
    b.asm.pop(Gpr::R12);
    b.asm.pop(Gpr::RBX);
    b.asm.ret();

    // acos(x) = π/2 − asin(x).
    b.asm.label("guest_acos");
    b.asm.call_to("guest_asin");
    b.asm.mov_ri(Gpr::RCX, std::f64::consts::FRAC_PI_2.to_bits());
    b.asm.mov_rr(Gpr::RDX, Gpr::RCX);
    b.asm.fp(FpOp::Sub, Gpr::RDX, Gpr::RAX);
    b.asm.mov_rr(Gpr::RAX, Gpr::RDX);
    b.asm.ret();

    // sqrt(x): a single hardware instruction on x86.
    b.asm.label("guest_sqrt");
    b.asm.fp(FpOp::Sqrt, Gpr::RAX, Gpr::RDI);
    b.asm.ret();
}
