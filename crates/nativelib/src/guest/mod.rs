//! Guest-side (MiniX86) implementations of the shared-library functions.
//!
//! These are the routines a guest binary would statically carry (or load
//! from a guest-ISA shared library): when host linking is disabled, the
//! DBT translates *this* code; when enabled, the PLT entries bypass it
//! for the native versions in [`crate::hostlibs`]. Each `emit_*` function
//! defines labels in a [`GelfBuilder`]; the conventional entry label is
//! `guest_<name>`.
//!
//! [`GelfBuilder`]: risotto_guest_x86::GelfBuilder

mod gdigest;
mod gkv;
mod gmath;
mod grsa;

pub use gdigest::{emit_md5, emit_sha1, emit_sha256};
pub use gkv::{emit_kv, KV_TABLE_SLOTS};
pub use gmath::emit_math;
pub use grsa::emit_modpow_pm;
