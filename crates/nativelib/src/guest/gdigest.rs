//! MD5 / SHA-1 / SHA-256 in MiniX86 assembly — the guest-library digests.
//!
//! These are the routines QEMU translates when the dynamic host linker is
//! off; they must produce byte-identical digests to [`crate::digest`]
//! (checked end-to-end by the integration suite). Like old C libraries,
//! they use static scratch buffers and are **not reentrant** — fine for
//! the single-threaded Fig. 13 benchmarks.
//!
//! Functions follow the guest ABI: `(RDI, RSI, RDX) = (data, len, out)`,
//! digest length returned in `RAX`. 32-bit arithmetic is emulated with
//! 64-bit registers masked to 32 bits.

use crate::digest::{SHA256_H0, SHA256_K};
use risotto_guest_x86::{AluOp, Cond, GelfBuilder, Gpr};

const M32: u64 = 0xFFFF_FFFF;

/// Common register roles across the three digests.
const A: Gpr = Gpr::R8;
const B: Gpr = Gpr::R9;
const C: Gpr = Gpr::R10;
const D: Gpr = Gpr::R11;

/// Emits `dst = rotr32(dst, imm)` (clobbers `tmp`). `imm` ∈ 1..=31.
fn rotr32_imm(b: &mut GelfBuilder, dst: Gpr, imm: u32, tmp: Gpr) {
    b.asm.mov_rr(tmp, dst);
    b.asm.alu_ri(AluOp::Shr, tmp, imm as u64);
    b.asm.alu_ri(AluOp::Shl, dst, (32 - imm) as u64);
    b.asm.alu_rr(AluOp::Or, dst, tmp);
    b.asm.alu_ri(AluOp::And, dst, M32);
}

/// Emits the shared tail-padding code: copies `len & 63` remaining bytes
/// from the data pointer in `RBX` into the scratch buffer, appends `0x80`,
/// zero-fills, writes the 64-bit bit length (little- or big-endian), and
/// leaves the number of tail blocks (1 or 2) in `R13`.
///
/// In: `RBX` = tail source, `[len_slot]` = total length. Clobbers
/// RAX, RCX, RDX, RSI, RDI.
fn emit_tail_padding(
    b: &mut GelfBuilder,
    fname: &str,
    scratch: u64,
    len_slot: u64,
    big_endian: bool,
) {
    let l = |s: &str| format!("{fname}_{s}");
    // rem = len & 63; src = RBX; dst = scratch.
    b.asm.mov_ri(Gpr::RCX, len_slot);
    b.asm.load(Gpr::RCX, Gpr::RCX, 0);
    b.asm.alu_ri(AluOp::And, Gpr::RCX, 63); // rem
    b.asm.mov_rr(Gpr::RSI, Gpr::RBX); // src
    b.asm.mov_ri(Gpr::RDI, scratch); // dst
    b.asm.label(&l("copy"));
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::E, &l("copied"));
    b.asm.load_b(Gpr::RAX, Gpr::RSI, 0);
    b.asm.store_b(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 1);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 1);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.jmp_to(&l("copy"));
    b.asm.label(&l("copied"));
    // Append 0x80.
    b.asm.mov_ri(Gpr::RAX, 0x80);
    b.asm.store_b(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 1);
    // Decide 1 or 2 tail blocks: rem' = RDI - scratch; if rem' > 56 → 2.
    b.asm.mov_rr(Gpr::RCX, Gpr::RDI);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, scratch);
    b.asm.mov_ri(Gpr::R13, 1);
    b.asm.mov_ri(Gpr::RDX, scratch + 56); // zero-fill target
    b.asm.cmp_ri(Gpr::RCX, 56);
    b.asm.jcc_to(Cond::Be, &l("zfill"));
    b.asm.mov_ri(Gpr::R13, 2);
    b.asm.mov_ri(Gpr::RDX, scratch + 120);
    b.asm.label(&l("zfill"));
    // Zero until RDI reaches RDX.
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.label(&l("zloop"));
    b.asm.cmp_rr(Gpr::RDI, Gpr::RDX);
    b.asm.jcc_to(Cond::Ae, &l("zdone"));
    b.asm.store_b(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 1);
    b.asm.jmp_to(&l("zloop"));
    b.asm.label(&l("zdone"));
    // Bit length at RDX (== RDI now).
    b.asm.mov_ri(Gpr::RCX, len_slot);
    b.asm.load(Gpr::RCX, Gpr::RCX, 0);
    b.asm.alu_ri(AluOp::Shl, Gpr::RCX, 3);
    if big_endian {
        // Byte-swap the u64: store bytes MSB-first.
        for i in 0..8 {
            b.asm.mov_rr(Gpr::RAX, Gpr::RCX);
            b.asm.alu_ri(AluOp::Shr, Gpr::RAX, (56 - 8 * i) as u64);
            b.asm.store_b(Gpr::RDI, i, Gpr::RAX);
        }
    } else {
        b.asm.store(Gpr::RDI, 0, Gpr::RCX);
    }
}

/// Emits `guest_md5` and its block routine. Returns nothing; defines
/// labels `guest_md5` / `md5_block`.
pub fn emit_md5(b: &mut GelfBuilder) {
    let k: Vec<u64> =
        (0..64).map(|i| (((i as f64 + 1.0).sin().abs() * 4294967296.0) as u32) as u64).collect();
    const S: [u64; 16] = [7, 12, 17, 22, 5, 9, 14, 20, 4, 11, 16, 23, 6, 10, 15, 21];
    let k_tab = b.data_u64(&k);
    let s_tab = b.data_u64(&S);
    let w_area = b.data_zeroed(16 * 8);
    let scratch = b.data_zeroed(128);
    let len_slot = b.data_u64(&[0]);

    // ---- guest_md5(data=RDI, len=RSI, out=RDX) -----------------------
    b.asm.label("guest_md5");
    for r in [Gpr::RBX, Gpr::RBP, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
        b.asm.push(r);
    }
    b.asm.mov_rr(Gpr::RBX, Gpr::RDI); // data
    b.asm.mov_rr(Gpr::R15, Gpr::RDX); // out
    b.asm.mov_ri(Gpr::RAX, len_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RSI);
    b.asm.mov_ri(A, 0x67452301);
    b.asm.mov_ri(B, 0xefcdab89);
    b.asm.mov_ri(C, 0x98badcfe);
    b.asm.mov_ri(D, 0x10325476);
    b.asm.mov_rr(Gpr::R14, Gpr::RSI);
    b.asm.alu_ri(AluOp::Shr, Gpr::R14, 6); // full blocks
    b.asm.label("md5_blocks");
    b.asm.cmp_ri(Gpr::R14, 0);
    b.asm.jcc_to(Cond::E, "md5_tail");
    b.asm.mov_rr(Gpr::RCX, Gpr::RBX);
    b.asm.call_to("md5_block");
    b.asm.alu_ri(AluOp::Add, Gpr::RBX, 64);
    b.asm.alu_ri(AluOp::Sub, Gpr::R14, 1);
    b.asm.jmp_to("md5_blocks");
    b.asm.label("md5_tail");
    emit_tail_padding(b, "md5", scratch, len_slot, false);
    b.asm.mov_ri(Gpr::RCX, scratch);
    b.asm.call_to("md5_block");
    b.asm.cmp_ri(Gpr::R13, 2);
    b.asm.jcc_to(Cond::Ne, "md5_out");
    b.asm.mov_ri(Gpr::RCX, scratch + 64);
    b.asm.call_to("md5_block");
    b.asm.label("md5_out");
    // out[0] = a | b<<32; out[1] = c | d<<32 (little-endian words).
    b.asm.mov_rr(Gpr::RAX, B);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 32);
    b.asm.alu_rr(AluOp::Or, Gpr::RAX, A);
    b.asm.store(Gpr::R15, 0, Gpr::RAX);
    b.asm.mov_rr(Gpr::RAX, D);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 32);
    b.asm.alu_rr(AluOp::Or, Gpr::RAX, C);
    b.asm.store(Gpr::R15, 8, Gpr::RAX);
    for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::RBP, Gpr::RBX] {
        b.asm.pop(r);
    }
    b.asm.mov_ri(Gpr::RAX, 16);
    b.asm.ret();

    // ---- md5_block(block=RCX): uses A–D, clobbers everything else ----
    b.asm.label("md5_block");
    // Unpack 16 LE u32 words into w_area u64 slots.
    b.asm.mov_ri(Gpr::RBP, w_area);
    b.asm.mov_rr(Gpr::RSI, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDI, Gpr::RBP);
    b.asm.mov_ri(Gpr::RDX, 8);
    b.asm.label("md5_unpack");
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_ri(AluOp::And, Gpr::RCX, M32);
    b.asm.store(Gpr::RDI, 0, Gpr::RCX);
    b.asm.alu_ri(AluOp::Shr, Gpr::RAX, 32);
    b.asm.store(Gpr::RDI, 8, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 16);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "md5_unpack");
    // Save entry state.
    b.asm.push(A);
    b.asm.push(B);
    b.asm.push(C);
    b.asm.push(D);
    b.asm.mov_ri(Gpr::R12, 0); // i
                               // Four quarters; each computes f into RAX and g into RDX.
    for (q, quarter) in ["q0", "q1", "q2", "q3"].iter().enumerate() {
        b.asm.label(&format!("md5_{quarter}"));
        match q {
            0 => {
                // f = (b & c) | (!b & d); g = i.
                b.asm.mov_rr(Gpr::RAX, B);
                b.asm.alu_rr(AluOp::And, Gpr::RAX, C);
                b.asm.mov_rr(Gpr::RCX, B);
                b.asm.alu_ri(AluOp::Xor, Gpr::RCX, M32);
                b.asm.alu_rr(AluOp::And, Gpr::RCX, D);
                b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX);
                b.asm.mov_rr(Gpr::RDX, Gpr::R12);
            }
            1 => {
                // f = (d & b) | (!d & c); g = (5i + 1) % 16.
                b.asm.mov_rr(Gpr::RAX, D);
                b.asm.alu_rr(AluOp::And, Gpr::RAX, B);
                b.asm.mov_rr(Gpr::RCX, D);
                b.asm.alu_ri(AluOp::Xor, Gpr::RCX, M32);
                b.asm.alu_rr(AluOp::And, Gpr::RCX, C);
                b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX);
                b.asm.mov_rr(Gpr::RDX, Gpr::R12);
                b.asm.alu_ri(AluOp::Mul, Gpr::RDX, 5);
                b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
                b.asm.alu_ri(AluOp::And, Gpr::RDX, 15);
            }
            2 => {
                // f = b ^ c ^ d; g = (3i + 5) % 16.
                b.asm.mov_rr(Gpr::RAX, B);
                b.asm.alu_rr(AluOp::Xor, Gpr::RAX, C);
                b.asm.alu_rr(AluOp::Xor, Gpr::RAX, D);
                b.asm.mov_rr(Gpr::RDX, Gpr::R12);
                b.asm.alu_ri(AluOp::Mul, Gpr::RDX, 3);
                b.asm.alu_ri(AluOp::Add, Gpr::RDX, 5);
                b.asm.alu_ri(AluOp::And, Gpr::RDX, 15);
            }
            _ => {
                // f = c ^ (b | !d); g = (7i) % 16.
                b.asm.mov_rr(Gpr::RAX, D);
                b.asm.alu_ri(AluOp::Xor, Gpr::RAX, M32);
                b.asm.alu_rr(AluOp::Or, Gpr::RAX, B);
                b.asm.alu_rr(AluOp::Xor, Gpr::RAX, C);
                b.asm.mov_rr(Gpr::RDX, Gpr::R12);
                b.asm.alu_ri(AluOp::Mul, Gpr::RDX, 7);
                b.asm.alu_ri(AluOp::And, Gpr::RDX, 15);
            }
        }
        // tmp = (a + f + K[i] + w[g]) & M32  (RAX carries the sum).
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, A);
        b.asm.alu_ri(AluOp::Shl, Gpr::RDX, 3);
        b.asm.alu_ri(AluOp::Add, Gpr::RDX, w_area);
        b.asm.load(Gpr::RCX, Gpr::RDX, 0); // w[g]
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
        b.asm.mov_rr(Gpr::RDX, Gpr::R12);
        b.asm.alu_ri(AluOp::Shl, Gpr::RDX, 3);
        b.asm.alu_ri(AluOp::Add, Gpr::RDX, k_tab);
        b.asm.load(Gpr::RCX, Gpr::RDX, 0); // K[i]
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
        b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
        // s = S[(q*4) + (i & 3)].
        b.asm.mov_rr(Gpr::RDX, Gpr::R12);
        b.asm.alu_ri(AluOp::And, Gpr::RDX, 3);
        b.asm.alu_ri(AluOp::Add, Gpr::RDX, (q * 4) as u64);
        b.asm.alu_ri(AluOp::Shl, Gpr::RDX, 3);
        b.asm.alu_ri(AluOp::Add, Gpr::RDX, s_tab);
        b.asm.load(Gpr::RCX, Gpr::RDX, 0); // s
                                           // rotate RAX left by RCX (32-bit); clobbers RDX, RDI.
        b.asm.mov_rr(Gpr::RSI, Gpr::RAX);
        rotl32_of_rsi_into_rax(b, q);
        // a,b,c,d = d, b + rot, b, c
        b.asm.mov_rr(Gpr::RDX, D);
        b.asm.mov_rr(D, C);
        b.asm.mov_rr(C, B);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, B);
        b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
        b.asm.mov_rr(B, Gpr::RAX);
        b.asm.mov_rr(A, Gpr::RDX);
        // next i; stay in this quarter for 16 rounds.
        b.asm.alu_ri(AluOp::Add, Gpr::R12, 1);
        b.asm.mov_rr(Gpr::RDX, Gpr::R12);
        b.asm.alu_ri(AluOp::And, Gpr::RDX, 15);
        b.asm.cmp_ri(Gpr::RDX, 0);
        b.asm.jcc_to(Cond::Ne, &format!("md5_{quarter}"));
    }
    // Add saved state (stack order: d, c, b, a from top).
    b.asm.pop(Gpr::RAX); // old d
    b.asm.alu_rr(AluOp::Add, D, Gpr::RAX);
    b.asm.alu_ri(AluOp::And, D, M32);
    b.asm.pop(Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, C, Gpr::RAX);
    b.asm.alu_ri(AluOp::And, C, M32);
    b.asm.pop(Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, B, Gpr::RAX);
    b.asm.alu_ri(AluOp::And, B, M32);
    b.asm.pop(Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, A, Gpr::RAX);
    b.asm.alu_ri(AluOp::And, A, M32);
    b.asm.ret();
}

/// `RAX = rotl32(RSI, RCX)` — clobbers RDX, RDI.
fn rotl32_of_rsi_into_rax(b: &mut GelfBuilder, uniq: usize) {
    let _ = uniq;
    b.asm.mov_ri(Gpr::RDX, 32);
    b.asm.alu_rr(AluOp::Sub, Gpr::RDX, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDI, Gpr::RSI);
    b.asm.alu_rr(AluOp::Shr, Gpr::RDI, Gpr::RDX);
    b.asm.mov_rr(Gpr::RAX, Gpr::RSI);
    b.asm.alu_rr(AluOp::Shl, Gpr::RAX, Gpr::RCX);
    b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RDI);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
}

/// Emits `guest_sha256` and its block routine.
pub fn emit_sha256(b: &mut GelfBuilder) {
    let k_tab = b.data_u64(&SHA256_K.iter().map(|&k| k as u64).collect::<Vec<_>>());
    let h0_tab = b.data_u64(&SHA256_H0.iter().map(|&h| h as u64).collect::<Vec<_>>());
    let w_area = b.data_zeroed(64 * 8);
    let state = b.data_zeroed(8 * 8);
    let scratch = b.data_zeroed(128);
    let len_slot = b.data_u64(&[0]);

    // ---- guest_sha256(data=RDI, len=RSI, out=RDX) --------------------
    b.asm.label("guest_sha256");
    for r in [Gpr::RBX, Gpr::RBP, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
        b.asm.push(r);
    }
    b.asm.mov_rr(Gpr::RBX, Gpr::RDI);
    b.asm.mov_rr(Gpr::R15, Gpr::RDX);
    b.asm.mov_ri(Gpr::RAX, len_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RSI);
    // state = H0 (copy 8 u64 slots).
    b.asm.mov_ri(Gpr::RSI, h0_tab);
    b.asm.mov_ri(Gpr::RDI, state);
    for i in 0..8 {
        b.asm.load(Gpr::RAX, Gpr::RSI, i * 8);
        b.asm.store(Gpr::RDI, i * 8, Gpr::RAX);
    }
    b.asm.mov_ri(Gpr::RCX, len_slot);
    b.asm.load(Gpr::R14, Gpr::RCX, 0);
    b.asm.alu_ri(AluOp::Shr, Gpr::R14, 6);
    b.asm.label("sha256_blocks");
    b.asm.cmp_ri(Gpr::R14, 0);
    b.asm.jcc_to(Cond::E, "sha256_tail");
    b.asm.mov_rr(Gpr::RCX, Gpr::RBX);
    b.asm.call_to("sha256_block");
    b.asm.alu_ri(AluOp::Add, Gpr::RBX, 64);
    b.asm.alu_ri(AluOp::Sub, Gpr::R14, 1);
    b.asm.jmp_to("sha256_blocks");
    b.asm.label("sha256_tail");
    emit_tail_padding(b, "sha256", scratch, len_slot, true);
    b.asm.mov_ri(Gpr::RCX, scratch);
    b.asm.call_to("sha256_block");
    b.asm.cmp_ri(Gpr::R13, 2);
    b.asm.jcc_to(Cond::Ne, "sha256_out");
    b.asm.mov_ri(Gpr::RCX, scratch + 64);
    b.asm.call_to("sha256_block");
    b.asm.label("sha256_out");
    // Write 8 big-endian u32 words to out (byte stores).
    b.asm.mov_ri(Gpr::RSI, state);
    b.asm.mov_rr(Gpr::RDI, Gpr::R15);
    b.asm.mov_ri(Gpr::RDX, 8);
    b.asm.label("sha256_emit");
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    for i in 0..4 {
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_ri(AluOp::Shr, Gpr::RCX, (24 - 8 * i) as u64);
        b.asm.store_b(Gpr::RDI, i, Gpr::RCX);
    }
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 4);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "sha256_emit");
    for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::RBP, Gpr::RBX] {
        b.asm.pop(r);
    }
    b.asm.mov_ri(Gpr::RAX, 32);
    b.asm.ret();

    // ---- sha256_block(block=RCX) -------------------------------------
    // Preserves RBX/R13/R14/R15 (pushed); state lives in memory.
    b.asm.label("sha256_block");
    // W[0..16]: big-endian unpack via byte loads.
    b.asm.mov_rr(Gpr::RSI, Gpr::RCX);
    b.asm.mov_ri(Gpr::RDI, w_area);
    b.asm.mov_ri(Gpr::RDX, 16);
    b.asm.label("sha256_unpack");
    b.asm.mov_ri(Gpr::RAX, 0);
    for i in 0..4 {
        b.asm.load_b(Gpr::RCX, Gpr::RSI, i);
        b.asm.alu_ri(AluOp::Shl, Gpr::RCX, (24 - 8 * i) as u64);
        b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX);
    }
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 4);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "sha256_unpack");
    // W[16..64]: schedule expansion; RDI walks W[i].
    b.asm.mov_ri(Gpr::R12, 16);
    b.asm.label("sha256_sched");
    b.asm.load(Gpr::RSI, Gpr::RDI, -15 * 8);
    b.asm.mov_rr(Gpr::RAX, Gpr::RSI);
    rotr32_imm(b, Gpr::RAX, 7, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDX, Gpr::RSI);
    rotr32_imm(b, Gpr::RDX, 18, Gpr::RCX);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RDX);
    b.asm.alu_ri(AluOp::Shr, Gpr::RSI, 3);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RSI);
    b.asm.mov_rr(Gpr::RBP, Gpr::RAX); // s0
    b.asm.load(Gpr::RSI, Gpr::RDI, -2 * 8);
    b.asm.mov_rr(Gpr::RAX, Gpr::RSI);
    rotr32_imm(b, Gpr::RAX, 17, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDX, Gpr::RSI);
    rotr32_imm(b, Gpr::RDX, 19, Gpr::RCX);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RDX);
    b.asm.alu_ri(AluOp::Shr, Gpr::RSI, 10);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RSI); // s1
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RBP);
    b.asm.load(Gpr::RCX, Gpr::RDI, -16 * 8);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
    b.asm.load(Gpr::RCX, Gpr::RDI, -7 * 8);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 64);
    b.asm.jcc_to(Cond::Ne, "sha256_sched");

    // Rounds. a..h = R8,R9,R10,R11,RBX,R13,R14,RBP (callee regs pushed).
    b.asm.push(Gpr::RBX);
    b.asm.push(Gpr::R13);
    b.asm.push(Gpr::R14);
    let (ra, rb, rc, rd) = (A, B, C, D);
    let (re, rf, rg, rh) = (Gpr::RBX, Gpr::R13, Gpr::R14, Gpr::RBP);
    b.asm.mov_ri(Gpr::RSI, state);
    b.asm.load(ra, Gpr::RSI, 0);
    b.asm.load(rb, Gpr::RSI, 8);
    b.asm.load(rc, Gpr::RSI, 16);
    b.asm.load(rd, Gpr::RSI, 24);
    b.asm.load(re, Gpr::RSI, 32);
    b.asm.load(rf, Gpr::RSI, 40);
    b.asm.load(rg, Gpr::RSI, 48);
    b.asm.load(rh, Gpr::RSI, 56);
    b.asm.mov_ri(Gpr::R12, 0);
    b.asm.label("sha256_round");
    // s1(e) into RAX.
    b.asm.mov_rr(Gpr::RAX, re);
    rotr32_imm(b, Gpr::RAX, 6, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDX, re);
    rotr32_imm(b, Gpr::RDX, 11, Gpr::RCX);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RDX);
    b.asm.mov_rr(Gpr::RDX, re);
    rotr32_imm(b, Gpr::RDX, 25, Gpr::RCX);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RDX);
    // ch(e,f,g) into RDX.
    b.asm.mov_rr(Gpr::RDX, re);
    b.asm.alu_rr(AluOp::And, Gpr::RDX, rf);
    b.asm.mov_rr(Gpr::RCX, re);
    b.asm.alu_ri(AluOp::Xor, Gpr::RCX, M32);
    b.asm.alu_rr(AluOp::And, Gpr::RCX, rg);
    b.asm.alu_rr(AluOp::Xor, Gpr::RDX, Gpr::RCX);
    // t1 = h + s1 + ch + K[i] + W[i] → RDI.
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDX);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, rh);
    b.asm.mov_rr(Gpr::RSI, Gpr::R12);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, k_tab);
    b.asm.load(Gpr::RCX, Gpr::RSI, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
    b.asm.mov_rr(Gpr::RSI, Gpr::R12);
    b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, w_area);
    b.asm.load(Gpr::RCX, Gpr::RSI, 0);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
    b.asm.mov_rr(Gpr::RDI, Gpr::RAX); // t1
                                      // s0(a) into RAX.
    b.asm.mov_rr(Gpr::RAX, ra);
    rotr32_imm(b, Gpr::RAX, 2, Gpr::RCX);
    b.asm.mov_rr(Gpr::RDX, ra);
    rotr32_imm(b, Gpr::RDX, 13, Gpr::RCX);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RDX);
    b.asm.mov_rr(Gpr::RDX, ra);
    rotr32_imm(b, Gpr::RDX, 22, Gpr::RCX);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RDX);
    // maj(a,b,c) into RDX.
    b.asm.mov_rr(Gpr::RDX, ra);
    b.asm.alu_rr(AluOp::And, Gpr::RDX, rb);
    b.asm.mov_rr(Gpr::RCX, ra);
    b.asm.alu_rr(AluOp::And, Gpr::RCX, rc);
    b.asm.alu_rr(AluOp::Xor, Gpr::RDX, Gpr::RCX);
    b.asm.mov_rr(Gpr::RCX, rb);
    b.asm.alu_rr(AluOp::And, Gpr::RCX, rc);
    b.asm.alu_rr(AluOp::Xor, Gpr::RDX, Gpr::RCX);
    // t2 = s0 + maj → RAX.
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDX);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
    // Rotate the eight working variables.
    b.asm.mov_rr(rh, rg);
    b.asm.mov_rr(rg, rf);
    b.asm.mov_rr(rf, re);
    b.asm.mov_rr(re, rd);
    b.asm.alu_rr(AluOp::Add, re, Gpr::RDI);
    b.asm.alu_ri(AluOp::And, re, M32);
    b.asm.mov_rr(rd, rc);
    b.asm.mov_rr(rc, rb);
    b.asm.mov_rr(rb, ra);
    b.asm.mov_rr(ra, Gpr::RDI);
    b.asm.alu_rr(AluOp::Add, ra, Gpr::RAX);
    b.asm.alu_ri(AluOp::And, ra, M32);
    b.asm.alu_ri(AluOp::Add, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 64);
    b.asm.jcc_to(Cond::Ne, "sha256_round");
    // state[j] = (state[j] + var) & M32.
    b.asm.mov_ri(Gpr::RSI, state);
    for (off, var) in [(0, ra), (8, rb), (16, rc), (24, rd), (32, re), (40, rf), (48, rg), (56, rh)]
    {
        b.asm.load(Gpr::RAX, Gpr::RSI, off);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, var);
        b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
        b.asm.store(Gpr::RSI, off, Gpr::RAX);
    }
    b.asm.pop(Gpr::R14);
    b.asm.pop(Gpr::R13);
    b.asm.pop(Gpr::RBX);
    b.asm.ret();
}

/// Emits `guest_sha1` and its block routine.
pub fn emit_sha1(b: &mut GelfBuilder) {
    let w_area = b.data_zeroed(80 * 8);
    let state = b.data_u64(&[0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]);
    let scratch = b.data_zeroed(128);
    let len_slot = b.data_u64(&[0]);

    // ---- guest_sha1(data=RDI, len=RSI, out=RDX) ----------------------
    b.asm.label("guest_sha1");
    for r in [Gpr::RBX, Gpr::RBP, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
        b.asm.push(r);
    }
    b.asm.mov_rr(Gpr::RBX, Gpr::RDI);
    b.asm.mov_rr(Gpr::R15, Gpr::RDX);
    b.asm.mov_ri(Gpr::RAX, len_slot);
    b.asm.store(Gpr::RAX, 0, Gpr::RSI);
    // Reset state (the data section holds H0 but a prior call mutated it).
    b.asm.mov_ri(Gpr::RDI, state);
    for (i, h) in [0x67452301u64, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0].iter().enumerate()
    {
        b.asm.mov_ri(Gpr::RAX, *h);
        b.asm.store(Gpr::RDI, (i * 8) as i32, Gpr::RAX);
    }
    b.asm.mov_rr(Gpr::R14, Gpr::RSI);
    b.asm.alu_ri(AluOp::Shr, Gpr::R14, 6);
    b.asm.label("sha1_blocks");
    b.asm.cmp_ri(Gpr::R14, 0);
    b.asm.jcc_to(Cond::E, "sha1_tail");
    b.asm.mov_rr(Gpr::RCX, Gpr::RBX);
    b.asm.call_to("sha1_block");
    b.asm.alu_ri(AluOp::Add, Gpr::RBX, 64);
    b.asm.alu_ri(AluOp::Sub, Gpr::R14, 1);
    b.asm.jmp_to("sha1_blocks");
    b.asm.label("sha1_tail");
    emit_tail_padding(b, "sha1", scratch, len_slot, true);
    b.asm.mov_ri(Gpr::RCX, scratch);
    b.asm.call_to("sha1_block");
    b.asm.cmp_ri(Gpr::R13, 2);
    b.asm.jcc_to(Cond::Ne, "sha1_out");
    b.asm.mov_ri(Gpr::RCX, scratch + 64);
    b.asm.call_to("sha1_block");
    b.asm.label("sha1_out");
    // Five big-endian u32 words to out.
    b.asm.mov_ri(Gpr::RSI, state);
    b.asm.mov_rr(Gpr::RDI, Gpr::R15);
    b.asm.mov_ri(Gpr::RDX, 5);
    b.asm.label("sha1_emit");
    b.asm.load(Gpr::RAX, Gpr::RSI, 0);
    for i in 0..4 {
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_ri(AluOp::Shr, Gpr::RCX, (24 - 8 * i) as u64);
        b.asm.store_b(Gpr::RDI, i, Gpr::RCX);
    }
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 4);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "sha1_emit");
    for r in [Gpr::R15, Gpr::R14, Gpr::R13, Gpr::R12, Gpr::RBP, Gpr::RBX] {
        b.asm.pop(r);
    }
    b.asm.mov_ri(Gpr::RAX, 20);
    b.asm.ret();

    // ---- sha1_block(block=RCX) ---------------------------------------
    b.asm.label("sha1_block");
    // Big-endian unpack W[0..16].
    b.asm.mov_rr(Gpr::RSI, Gpr::RCX);
    b.asm.mov_ri(Gpr::RDI, w_area);
    b.asm.mov_ri(Gpr::RDX, 16);
    b.asm.label("sha1_unpack");
    b.asm.mov_ri(Gpr::RAX, 0);
    for i in 0..4 {
        b.asm.load_b(Gpr::RCX, Gpr::RSI, i);
        b.asm.alu_ri(AluOp::Shl, Gpr::RCX, (24 - 8 * i) as u64);
        b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX);
    }
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RSI, 4);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDX, 1);
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::Ne, "sha1_unpack");
    // W[16..80]: w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]).
    b.asm.mov_ri(Gpr::R12, 16);
    b.asm.label("sha1_sched");
    b.asm.load(Gpr::RAX, Gpr::RDI, -3 * 8);
    b.asm.load(Gpr::RCX, Gpr::RDI, -8 * 8);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
    b.asm.load(Gpr::RCX, Gpr::RDI, -14 * 8);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
    b.asm.load(Gpr::RCX, Gpr::RDI, -16 * 8);
    b.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX);
    // rotl1.
    b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
    b.asm.alu_ri(AluOp::Shr, Gpr::RCX, 31);
    b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 1);
    b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX);
    b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Add, Gpr::R12, 1);
    b.asm.cmp_ri(Gpr::R12, 80);
    b.asm.jcc_to(Cond::Ne, "sha1_sched");
    // Rounds. a..e = R8..R11, RBX (pushed).
    b.asm.push(Gpr::RBX);
    let (ra, rb, rc, rd) = (A, B, C, D);
    let re = Gpr::RBX;
    b.asm.mov_ri(Gpr::RSI, state);
    b.asm.load(ra, Gpr::RSI, 0);
    b.asm.load(rb, Gpr::RSI, 8);
    b.asm.load(rc, Gpr::RSI, 16);
    b.asm.load(rd, Gpr::RSI, 24);
    b.asm.load(re, Gpr::RSI, 32);
    b.asm.mov_ri(Gpr::R12, 0);
    for (q, (kconst, quarter)) in
        [(0x5A827999u64, "sq0"), (0x6ED9EBA1, "sq1"), (0x8F1BBCDC, "sq2"), (0xCA62C1D6, "sq3")]
            .iter()
            .enumerate()
    {
        b.asm.label(&format!("sha1_{quarter}"));
        // f into RDX.
        match q {
            0 => {
                // (b & c) | (!b & d)
                b.asm.mov_rr(Gpr::RDX, rb);
                b.asm.alu_rr(AluOp::And, Gpr::RDX, rc);
                b.asm.mov_rr(Gpr::RCX, rb);
                b.asm.alu_ri(AluOp::Xor, Gpr::RCX, M32);
                b.asm.alu_rr(AluOp::And, Gpr::RCX, rd);
                b.asm.alu_rr(AluOp::Or, Gpr::RDX, Gpr::RCX);
            }
            2 => {
                // (b & c) | (b & d) | (c & d)
                b.asm.mov_rr(Gpr::RDX, rb);
                b.asm.alu_rr(AluOp::And, Gpr::RDX, rc);
                b.asm.mov_rr(Gpr::RCX, rb);
                b.asm.alu_rr(AluOp::And, Gpr::RCX, rd);
                b.asm.alu_rr(AluOp::Or, Gpr::RDX, Gpr::RCX);
                b.asm.mov_rr(Gpr::RCX, rc);
                b.asm.alu_rr(AluOp::And, Gpr::RCX, rd);
                b.asm.alu_rr(AluOp::Or, Gpr::RDX, Gpr::RCX);
            }
            _ => {
                // b ^ c ^ d
                b.asm.mov_rr(Gpr::RDX, rb);
                b.asm.alu_rr(AluOp::Xor, Gpr::RDX, rc);
                b.asm.alu_rr(AluOp::Xor, Gpr::RDX, rd);
            }
        }
        // tmp = rotl5(a) + f + e + K + W[i] → RAX.
        b.asm.mov_rr(Gpr::RAX, ra);
        b.asm.mov_rr(Gpr::RCX, Gpr::RAX);
        b.asm.alu_ri(AluOp::Shr, Gpr::RCX, 27);
        b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 5);
        b.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX);
        b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDX);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, re);
        b.asm.alu_ri(AluOp::Add, Gpr::RAX, *kconst);
        b.asm.mov_rr(Gpr::RSI, Gpr::R12);
        b.asm.alu_ri(AluOp::Shl, Gpr::RSI, 3);
        b.asm.alu_ri(AluOp::Add, Gpr::RSI, w_area);
        b.asm.load(Gpr::RCX, Gpr::RSI, 0);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
        b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
        // e = d; d = c; c = rotl30(b); b = a; a = tmp.
        b.asm.mov_rr(re, rd);
        b.asm.mov_rr(rd, rc);
        b.asm.mov_rr(rc, rb);
        b.asm.mov_rr(Gpr::RCX, rc);
        b.asm.alu_ri(AluOp::Shr, Gpr::RCX, 2);
        b.asm.alu_ri(AluOp::Shl, rc, 30);
        b.asm.alu_rr(AluOp::Or, rc, Gpr::RCX);
        b.asm.alu_ri(AluOp::And, rc, M32);
        b.asm.mov_rr(rb, ra);
        b.asm.mov_rr(ra, Gpr::RAX);
        // Stay in this quarter for 20 rounds.
        b.asm.alu_ri(AluOp::Add, Gpr::R12, 1);
        b.asm.mov_rr(Gpr::RCX, Gpr::R12);
        b.asm.mov_ri(Gpr::RDX, 20);
        b.asm.mov_rr(Gpr::RAX, Gpr::RCX);
        b.asm.insn(risotto_guest_x86::Insn::Div { src: Gpr::RDX });
        // RDX = i % 20; continue quarter while non-zero.
        b.asm.cmp_ri(Gpr::RDX, 0);
        b.asm.jcc_to(Cond::Ne, &format!("sha1_{quarter}"));
    }
    // state += vars.
    b.asm.mov_ri(Gpr::RSI, state);
    for (off, var) in [(0, ra), (8, rb), (16, rc), (24, rd), (32, re)] {
        b.asm.load(Gpr::RAX, Gpr::RSI, off);
        b.asm.alu_rr(AluOp::Add, Gpr::RAX, var);
        b.asm.alu_ri(AluOp::And, Gpr::RAX, M32);
        b.asm.store(Gpr::RSI, off, Gpr::RAX);
    }
    b.asm.pop(Gpr::RBX);
    b.asm.ret();
}
