//! The guest key-value store: a linear-probing hash table in MiniX86
//! assembly — the "translated sqlite" of Fig. 13.
//!
//! Same observable map semantics as the native [`crate::kvstore::BTreeKv`]
//! (`put` returns the previous value or `u64::MAX`; `get` returns
//! `u64::MAX` when missing; `range_sum` wrapping-sums values with keys in
//! `[lo, hi]`), different engine underneath — exactly the situation of a
//! guest-built library vs. the host's. Keys must be non-zero (0 marks an
//! empty slot). Static table; not reentrant.

use risotto_guest_x86::{AluOp, Cond, GelfBuilder, Gpr};

/// Hash-table slots (power of two). Each slot is 16 bytes: key, value.
pub const KV_TABLE_SLOTS: u64 = 4096;

const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Emits `guest_kv_put`, `guest_kv_get`, `guest_kv_range_sum`.
pub fn emit_kv(b: &mut GelfBuilder) {
    let table = b.data_zeroed((KV_TABLE_SLOTS * 16) as usize);
    let mask = KV_TABLE_SLOTS - 1;

    // Common probe-index computation: RDI = key → R8 = &table[h(key)],
    // R9 = probes remaining. Clobbers RAX, RDX.
    let emit_hash = |b: &mut GelfBuilder| {
        b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
        b.asm.mov_ri(Gpr::RDX, HASH_MULT);
        b.asm.alu_rr(AluOp::Mul, Gpr::RAX, Gpr::RDX);
        b.asm.alu_ri(AluOp::Shr, Gpr::RAX, 52); // 64 - log2(4096)
        b.asm.alu_ri(AluOp::And, Gpr::RAX, mask);
        b.asm.alu_ri(AluOp::Shl, Gpr::RAX, 4); // ×16 bytes
        b.asm.mov_rr(Gpr::R8, Gpr::RAX);
        b.asm.alu_ri(AluOp::Add, Gpr::R8, table);
        b.asm.mov_ri(Gpr::R9, KV_TABLE_SLOTS);
    };

    // ---- guest_kv_put(key=RDI, val=RSI) → old value or MAX ------------
    b.asm.label("guest_kv_put");
    emit_hash(b);
    b.asm.label("kvp_probe");
    b.asm.load(Gpr::RAX, Gpr::R8, 0); // slot key
    b.asm.cmp_rr(Gpr::RAX, Gpr::RDI);
    b.asm.jcc_to(Cond::E, "kvp_replace");
    b.asm.cmp_ri(Gpr::RAX, 0);
    b.asm.jcc_to(Cond::E, "kvp_insert");
    // Advance (wrapping at the end of the table).
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 16);
    b.asm.mov_ri(Gpr::RAX, table + KV_TABLE_SLOTS * 16);
    b.asm.cmp_rr(Gpr::R8, Gpr::RAX);
    b.asm.jcc_to(Cond::Ne, "kvp_cont");
    b.asm.mov_ri(Gpr::R8, table);
    b.asm.label("kvp_cont");
    b.asm.alu_ri(AluOp::Sub, Gpr::R9, 1);
    b.asm.cmp_ri(Gpr::R9, 0);
    b.asm.jcc_to(Cond::Ne, "kvp_probe");
    // Table full: report MAX (callers size workloads below capacity).
    b.asm.mov_ri(Gpr::RAX, u64::MAX);
    b.asm.ret();
    b.asm.label("kvp_replace");
    b.asm.load(Gpr::RAX, Gpr::R8, 8); // old value
    b.asm.store(Gpr::R8, 8, Gpr::RSI);
    b.asm.ret();
    b.asm.label("kvp_insert");
    b.asm.store(Gpr::R8, 0, Gpr::RDI);
    b.asm.store(Gpr::R8, 8, Gpr::RSI);
    b.asm.mov_ri(Gpr::RAX, u64::MAX);
    b.asm.ret();

    // ---- guest_kv_get(key=RDI) → value or MAX --------------------------
    b.asm.label("guest_kv_get");
    emit_hash(b);
    b.asm.label("kvg_probe");
    b.asm.load(Gpr::RAX, Gpr::R8, 0);
    b.asm.cmp_rr(Gpr::RAX, Gpr::RDI);
    b.asm.jcc_to(Cond::E, "kvg_hit");
    b.asm.cmp_ri(Gpr::RAX, 0);
    b.asm.jcc_to(Cond::E, "kvg_miss");
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 16);
    b.asm.mov_ri(Gpr::RAX, table + KV_TABLE_SLOTS * 16);
    b.asm.cmp_rr(Gpr::R8, Gpr::RAX);
    b.asm.jcc_to(Cond::Ne, "kvg_cont");
    b.asm.mov_ri(Gpr::R8, table);
    b.asm.label("kvg_cont");
    b.asm.alu_ri(AluOp::Sub, Gpr::R9, 1);
    b.asm.cmp_ri(Gpr::R9, 0);
    b.asm.jcc_to(Cond::Ne, "kvg_probe");
    b.asm.label("kvg_miss");
    b.asm.mov_ri(Gpr::RAX, u64::MAX);
    b.asm.ret();
    b.asm.label("kvg_hit");
    b.asm.load(Gpr::RAX, Gpr::R8, 8);
    b.asm.ret();

    // ---- guest_kv_range_sum(lo=RDI, hi=RSI) → wrapping sum -------------
    b.asm.label("guest_kv_range_sum");
    b.asm.mov_ri(Gpr::RAX, 0); // sum
    b.asm.cmp_rr(Gpr::RSI, Gpr::RDI);
    b.asm.jcc_to(Cond::B, "kvr_done"); // hi < lo → 0
    b.asm.mov_ri(Gpr::R8, table);
    b.asm.mov_ri(Gpr::R9, KV_TABLE_SLOTS);
    b.asm.label("kvr_scan");
    b.asm.load(Gpr::RDX, Gpr::R8, 0); // key
    b.asm.cmp_ri(Gpr::RDX, 0);
    b.asm.jcc_to(Cond::E, "kvr_next");
    b.asm.cmp_rr(Gpr::RDX, Gpr::RDI);
    b.asm.jcc_to(Cond::B, "kvr_next"); // key < lo
    b.asm.cmp_rr(Gpr::RDX, Gpr::RSI);
    b.asm.jcc_to(Cond::A, "kvr_next"); // key > hi
    b.asm.load(Gpr::RDX, Gpr::R8, 8);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDX);
    b.asm.label("kvr_next");
    b.asm.alu_ri(AluOp::Add, Gpr::R8, 16);
    b.asm.alu_ri(AluOp::Sub, Gpr::R9, 1);
    b.asm.cmp_ri(Gpr::R9, 0);
    b.asm.jcc_to(Cond::Ne, "kvr_scan");
    b.asm.label("kvr_done");
    b.asm.ret();
}
