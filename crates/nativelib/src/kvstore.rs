//! A B-tree key-value store — the sqlite stand-in.
//!
//! The paper's sqlite `speedtest1` exercises a B-tree storage engine
//! through inserts, point queries and range scans. This module is the
//! *native host library* version: a real order-16 B-tree with the same
//! operation mix; the node-visit counter feeds the native cost model.
//! The guest-side implementation (a linear-probing hash table in MiniX86
//! assembly, see [`crate::guest`]) provides the same map semantics for
//! the translated path.

const ORDER: usize = 16; // max keys per node

#[derive(Debug)]
struct Node {
    keys: Vec<u64>,
    vals: Vec<u64>,
    children: Vec<Node>, // empty for leaves
}

impl Node {
    fn leaf() -> Node {
        Node { keys: Vec::new(), vals: Vec::new(), children: Vec::new() }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() >= ORDER
    }
}

/// An ordered key-value store over `u64` keys and values.
#[derive(Debug)]
pub struct BTreeKv {
    root: Box<Node>,
    len: usize,
    /// Nodes visited since creation — the work counter for costing.
    pub node_visits: u64,
}

impl Default for BTreeKv {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeKv {
    /// Creates an empty store.
    pub fn new() -> BTreeKv {
        BTreeKv { root: Box::new(Node::leaf()), len: 0, node_visits: 0 }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or updates; returns the previous value if any.
    pub fn put(&mut self, key: u64, val: u64) -> Option<u64> {
        if self.root.is_full() {
            // Split the root.
            let mut old_root = std::mem::replace(&mut self.root, Box::new(Node::leaf()));
            let (mid_k, mid_v, right) = split(&mut old_root);
            self.root.keys.push(mid_k);
            self.root.vals.push(mid_v);
            self.root.children.push(*old_root);
            self.root.children.push(right);
        }
        let visits = &mut self.node_visits;
        let prev = insert_nonfull(&mut self.root, key, val, visits);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Point lookup.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let mut node: &Node = &self.root;
        loop {
            self.node_visits += 1;
            match node.keys.binary_search(&key) {
                Ok(i) => return Some(node.vals[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &node.children[i];
                }
            }
        }
    }

    /// Sum of the values of all keys in `[lo, hi]` (a scan aggregate, like
    /// speedtest1's range queries).
    pub fn range_sum(&mut self, lo: u64, hi: u64) -> u64 {
        if hi < lo {
            return 0;
        }
        fn walk(node: &Node, lo: u64, hi: u64, visits: &mut u64) -> u64 {
            *visits += 1;
            let mut sum = 0u64;
            // Child i holds keys strictly between keys[i-1] and keys[i]
            // (with virtual −∞ / +∞ at the ends); visit it iff that open
            // interval intersects [lo, hi].
            for (i, &k) in node.keys.iter().enumerate() {
                if !node.is_leaf() {
                    let prev_below_hi = i == 0 || node.keys[i - 1] < hi;
                    if lo < k && prev_below_hi {
                        sum = sum.wrapping_add(walk(&node.children[i], lo, hi, visits));
                    }
                }
                if k >= lo && k <= hi {
                    sum = sum.wrapping_add(node.vals[i]);
                }
            }
            if !node.is_leaf() {
                let last = *node.keys.last().unwrap();
                if hi > last {
                    sum = sum.wrapping_add(walk(node.children.last().unwrap(), lo, hi, visits));
                }
            }
            sum
        }
        walk(&self.root, lo, hi, &mut self.node_visits)
    }
}

/// Splits a full node; returns (median key, median value, right sibling).
fn split(node: &mut Node) -> (u64, u64, Node) {
    let mid = node.keys.len() / 2;
    let mid_k = node.keys[mid];
    let mid_v = node.vals[mid];
    let mut right = Node::leaf();
    right.keys = node.keys.split_off(mid + 1);
    right.vals = node.vals.split_off(mid + 1);
    node.keys.pop();
    node.vals.pop();
    if !node.is_leaf() {
        right.children = node.children.split_off(mid + 1);
    }
    (mid_k, mid_v, right)
}

fn insert_nonfull(node: &mut Node, key: u64, val: u64, visits: &mut u64) -> Option<u64> {
    *visits += 1;
    match node.keys.binary_search(&key) {
        Ok(i) => Some(std::mem::replace(&mut node.vals[i], val)),
        Err(i) => {
            if node.is_leaf() {
                node.keys.insert(i, key);
                node.vals.insert(i, val);
                None
            } else {
                let mut i = i;
                if node.children[i].is_full() {
                    let (mid_k, mid_v, right) = split(&mut node.children[i]);
                    node.keys.insert(i, mid_k);
                    node.vals.insert(i, mid_v);
                    node.children.insert(i + 1, right);
                    match key.cmp(&mid_k) {
                        std::cmp::Ordering::Greater => i += 1,
                        std::cmp::Ordering::Equal => {
                            return Some(std::mem::replace(&mut node.vals[i], val));
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                insert_nonfull(&mut node.children[i], key, val, visits)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn put_get_roundtrip() {
        // Differential against std BTreeMap with the same operations.
        let mut kv = BTreeKv::new();
        assert!(kv.is_empty());
        let mut reference = BTreeMap::new();
        for i in 0..5000u64 {
            let k = i.wrapping_mul(0x9E3779B97F4A7C15) % 10_000;
            assert_eq!(kv.put(k, i), reference.insert(k, i), "insert {k}");
        }
        for k in 0..10_000u64 {
            assert_eq!(kv.get(k), reference.get(&k).copied(), "get {k}");
        }
        assert_eq!(kv.len(), reference.len());
    }

    #[test]
    fn range_sum_matches_reference() {
        let mut kv = BTreeKv::new();
        let mut reference = BTreeMap::new();
        for i in 0..3000u64 {
            let k = i.wrapping_mul(48271) % 7000;
            kv.put(k, k * 2);
            reference.insert(k, k * 2);
        }
        for (lo, hi) in [(0u64, 7000u64), (100, 200), (3500, 3500), (6900, 9999), (5000, 100)] {
            let expect: u64 = reference
                .range(lo..=hi.max(lo))
                .map(|(_, &v)| v)
                .fold(0u64, |a, v| a.wrapping_add(v));
            let expect = if hi < lo { 0 } else { expect };
            assert_eq!(kv.range_sum(lo, hi), expect, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn deep_tree_structure_forms() {
        let mut kv = BTreeKv::new();
        for i in 0..100_000u64 {
            kv.put(i, i);
        }
        assert_eq!(kv.len(), 100_000);
        assert_eq!(kv.get(99_999), Some(99_999));
        assert_eq!(kv.get(100_000), None);
        assert!(kv.node_visits > 100_000, "work counter advances");
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut kv = BTreeKv::new();
        assert_eq!(kv.put(5, 10), None);
        assert_eq!(kv.put(5, 20), Some(10));
        assert_eq!(kv.get(5), Some(20));
        assert_eq!(kv.len(), 1);
    }
}
