//! A small big-unsigned-integer library — the RSA stand-in.
//!
//! The paper's `rsa1024`/`rsa2048` sign/verify benchmarks exercise
//! OpenSSL's modular exponentiation. We reproduce the computational
//! character with a schoolbook big-integer `modpow`: *sign* raises to a
//! full-width secret exponent, *verify* to 65537, so the sign/verify
//! throughput asymmetry of Fig. 13 appears naturally. The work counter
//! (`limb_ops`) feeds the native cost model.

/// A little-endian array of 64-bit limbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigU {
    /// Limbs, least significant first. Never empty; may carry leading
    /// zero limbs.
    pub limbs: Vec<u64>,
}

impl BigU {
    /// Zero with the given width.
    pub fn zero(limbs: usize) -> BigU {
        BigU { limbs: vec![0; limbs.max(1)] }
    }

    /// From a single u64.
    pub fn from_u64(v: u64) -> BigU {
        BigU { limbs: vec![v] }
    }

    /// From little-endian limbs.
    pub fn from_limbs(limbs: &[u64]) -> BigU {
        BigU { limbs: if limbs.is_empty() { vec![0] } else { limbs.to_vec() } }
    }

    /// Deterministic pseudo-random value of `limbs` limbs (xorshift from a
    /// seed) — used to build benchmark moduli/exponents reproducibly.
    pub fn pseudo_random(limbs: usize, mut seed: u64) -> BigU {
        let mut out = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            out.push(seed);
        }
        // Ensure the top limb is non-zero and the value is odd (a
        // plausible modulus).
        let last = out.len() - 1;
        out[last] |= 1 << 63;
        out[0] |= 1;
        BigU { limbs: out }
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return i * 64 + (64 - l.leading_zeros() as usize);
            }
        }
        0
    }

    /// Tests bit `i`.
    pub fn bit(&self, i: usize) -> bool {
        self.limbs.get(i / 64).is_some_and(|l| l >> (i % 64) & 1 == 1)
    }

    /// `true` if zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Three-way comparison.
    pub fn cmp_big(&self, other: &BigU) -> std::cmp::Ordering {
        let n = self.limbs.len().max(other.limbs.len());
        for i in (0..n).rev() {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            if a != b {
                return a.cmp(&b);
            }
        }
        std::cmp::Ordering::Equal
    }

    /// `self - other` (must not underflow). Counts limb ops into `work`.
    pub fn sub(&self, other: &BigU, work: &mut u64) -> BigU {
        debug_assert!(self.cmp_big(other) != std::cmp::Ordering::Less);
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            *work += 1;
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 || b2) as u64;
        }
        BigU { limbs: out }
    }

    /// Schoolbook product. Counts limb multiplications into `work`.
    pub fn mul(&self, other: &BigU, work: &mut u64) -> BigU {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                *work += 1;
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigU { limbs: out }
    }

    /// Left shift by one bit.
    fn shl1(&mut self) {
        let mut carry = 0u64;
        for l in self.limbs.iter_mut() {
            let new_carry = *l >> 63;
            *l = (*l << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            self.limbs.push(1);
        }
    }

    /// `self mod m` by binary long division. Counts limb ops.
    pub fn rem(&self, m: &BigU, work: &mut u64) -> BigU {
        assert!(!m.is_zero(), "modulo zero");
        if self.cmp_big(m) == std::cmp::Ordering::Less {
            return self.clone();
        }
        let mut r = BigU::zero(m.limbs.len());
        for i in (0..self.bit_len()).rev() {
            r.shl1();
            if self.bit(i) {
                r.limbs[0] |= 1;
            }
            *work += 1;
            if r.cmp_big(m) != std::cmp::Ordering::Less {
                r = r.sub(m, work);
            }
        }
        r.limbs.truncate(m.limbs.len().max(1));
        r
    }

    /// Modular exponentiation (square-and-multiply, left-to-right).
    /// Returns `(result, limb_ops)` — the work count drives the cost
    /// model.
    pub fn modpow(&self, exp: &BigU, m: &BigU) -> (BigU, u64) {
        let mut work = 0u64;
        let mut result = BigU::from_u64(1);
        let base = self.rem(m, &mut work);
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            result = result.mul(&result, &mut work).rem(m, &mut work);
            if exp.bit(i) {
                result = result.mul(&base, &mut work).rem(m, &mut work);
            }
        }
        (result, work)
    }
}

/// Modular exponentiation modulo the pseudo-Mersenne modulus
/// `m = 2^(64·n) − c` over fixed-width `n`-limb arrays.
///
/// Reduction is by folding (`x = hi·2^(64n) + lo ≡ hi·c + lo`), which is
/// the trick real crypto libraries use for special primes — and what makes
/// both the native benchmark and its MiniX86 guest twin tractable.
/// Returns `(result, limb_ops)`.
///
/// # Panics
///
/// Panics if `base` or `exp` are not `n` limbs, or `c` is 0.
pub fn modpow_pm(base: &[u64], exp: &[u64], c: u64) -> (Vec<u64>, u64) {
    assert!(c != 0, "c must be non-zero");
    assert_eq!(base.len(), exp.len());
    let n = base.len();
    let mut work = 0u64;

    // Multiply two n-limb values into 2n limbs.
    let mul = |a: &[u64], b: &[u64], work: &mut u64| -> Vec<u64> {
        let mut out = vec![0u64; 2 * n];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                *work += 1;
                let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + n;
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    };

    // Reduce a 2n-limb value modulo 2^(64n) − c into n limbs.
    let reduce = |x: &[u64], work: &mut u64| -> Vec<u64> {
        let mut lo: Vec<u64> = x[..n].to_vec();
        let mut hi: Vec<u64> = x[n..].to_vec();
        // Fold until hi is empty (at most a few iterations since c < 2^64).
        while hi.iter().any(|&l| l != 0) {
            // lo += hi * c  (hi shrinks by roughly n limbs per fold).
            let mut carry = 0u128;
            let mut new_hi = 0u64;
            for (i, slot) in lo.iter_mut().enumerate() {
                *work += 1;
                let h = hi.get(i).copied().unwrap_or(0);
                let cur = *slot as u128 + h as u128 * c as u128 + carry;
                *slot = cur as u64;
                carry = cur >> 64;
            }
            // Anything left in hi beyond n limbs (can't happen: hi ≤ n
            // limbs) plus the carry becomes the next hi.
            new_hi = new_hi.wrapping_add(carry as u64);
            hi = vec![new_hi];
            if new_hi == 0 {
                break;
            }
            // Loop folds the single-limb hi next round.
            hi.resize(1, 0);
        }
        // Final conditional subtractions: while lo ≥ m, lo −= m, i.e.
        // lo − (2^(64n) − c) = lo + c − 2^(64n). lo ≥ m iff lo+c carries
        // out of n limbs or lo == m exactly.
        loop {
            // Compare lo with m = 2^(64n) − c: lo ≥ m iff lo + c ≥ 2^(64n).
            let mut carry = c as u128;
            let mut tmp = lo.clone();
            for t in tmp.iter_mut() {
                *work += 1;
                let cur = *t as u128 + carry;
                *t = cur as u64;
                carry = cur >> 64;
            }
            if carry == 0 {
                break;
            }
            lo = tmp; // lo + c mod 2^(64n) == lo − m
        }
        lo
    };

    // Square-and-multiply, LSB-first, over the exponent's *significant*
    // bits only — this is what makes verify (e = 65537, 17 bits) an order
    // of magnitude cheaper than sign (full-width secret exponent).
    let mut result = vec![0u64; n];
    result[0] = 1;
    let mut b = base.to_vec();
    let total_bits = exp
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &l)| l != 0)
        .map(|(i, &l)| i * 64 + 64 - l.leading_zeros() as usize)
        .unwrap_or(0);
    for i in 0..total_bits {
        if exp[i / 64] >> (i % 64) & 1 == 1 {
            let p = mul(&result, &b, &mut work);
            result = reduce(&p, &mut work);
        }
        if i + 1 < total_bits {
            let s = mul(&b, &b, &mut work);
            b = reduce(&s, &mut work);
        }
    }
    (result, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_u128(v: u128) -> BigU {
        BigU::from_limbs(&[v as u64, (v >> 64) as u64])
    }

    #[test]
    fn small_arithmetic_matches_u128() {
        let mut w = 0;
        let a = from_u128(0xdead_beef_1234_5678_9abc_def0);
        let b = from_u128(0x1111_2222_3333_4444);
        let p = a.mul(&b, &mut w);
        // Check against u128 where it fits: (a*b) mod 2^128.
        let expect = 0xdead_beef_1234_5678_9abc_def0u128.wrapping_mul(0x1111_2222_3333_4444u128);
        assert_eq!(p.limbs[0], expect as u64);
        assert_eq!(p.limbs[1], (expect >> 64) as u64);
        assert!(w > 0);
    }

    #[test]
    fn rem_matches_u128() {
        let mut w = 0;
        let a = from_u128(987654321987654321987654321);
        let m = from_u128(1000000007);
        let r = a.rem(&m, &mut w);
        assert_eq!(r.limbs[0] as u128, 987654321987654321987654321u128 % 1000000007);
    }

    #[test]
    fn modpow_matches_u128_reference() {
        // 5^117 mod 1000000007 — computable by repeated squaring in u128.
        fn refpow(mut b: u128, mut e: u128, m: u128) -> u128 {
            let mut r = 1u128;
            b %= m;
            while e > 0 {
                if e & 1 == 1 {
                    r = r * b % m;
                }
                b = b * b % m;
                e >>= 1;
            }
            r
        }
        let (r, work) = BigU::from_u64(5).modpow(&BigU::from_u64(117), &BigU::from_u64(1000000007));
        assert_eq!(r.limbs[0] as u128, refpow(5, 117, 1000000007));
        assert!(work > 0);
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // p prime ⇒ a^(p-1) ≡ 1 (mod p).
        let p = BigU::from_u64(1000000007);
        let pm1 = BigU::from_u64(1000000006);
        for a in [2u64, 3, 65537] {
            let (r, _) = BigU::from_u64(a).modpow(&pm1, &p);
            assert_eq!(r.limbs[0], 1, "a = {a}");
        }
    }

    #[test]
    fn sign_is_much_more_work_than_verify() {
        // 1024-bit modulus: sign exponent full-width, verify 65537.
        let m = BigU::pseudo_random(16, 42);
        let d = BigU::pseudo_random(16, 43);
        let e = BigU::from_u64(65537);
        let msg = BigU::pseudo_random(16, 44);
        let (_, sign_work) = msg.modpow(&d, &m);
        let (_, verify_work) = msg.modpow(&e, &m);
        assert!(sign_work > 20 * verify_work, "sign {sign_work} vs verify {verify_work}");
    }

    #[test]
    fn modpow_pm_agrees_with_generic_modpow() {
        // m = 2^128 − c with small c: limbs [2^64 − c, 2^64 − 1].
        for (c, seed) in [(159u64, 1u64), (5, 2), (1017, 3)] {
            let m = BigU::from_limbs(&[c.wrapping_neg(), u64::MAX]);
            let base = BigU::pseudo_random(2, seed);
            let exp = BigU::from_limbs(&[0x1234_5678_9abc_def0, seed]);
            let (expect, _) = base.modpow(&exp, &m);
            let (got, work) = modpow_pm(&base.limbs, &exp.limbs, c);
            assert_eq!(got, expect.limbs, "c = {c}");
            assert!(work > 0);
        }
    }

    #[test]
    fn modpow_pm_fermat() {
        // 2^61 − 1 is prime (Mersenne): a^(m−1) ≡ 1 — but our width is a
        // multiple of 64, so use m = 2^64 − 59 (prime).
        let c = 59u64;
        let m_minus_1 = [u64::MAX - 59]; // 2^64 − 60
        for a in [2u64, 3, 65537] {
            let (r, _) = modpow_pm(&[a], &m_minus_1, c);
            assert_eq!(r, vec![1], "a = {a}");
        }
    }

    #[test]
    fn bit_len_and_bits() {
        let v = BigU::from_limbs(&[0, 0b1010]);
        assert_eq!(v.bit_len(), 64 + 4);
        assert!(v.bit(65));
        assert!(!v.bit(64));
        assert!(BigU::zero(4).is_zero());
        assert_eq!(BigU::zero(4).bit_len(), 0);
    }
}
