//! Reference digest implementations: MD5, SHA-1, SHA-256.
//!
//! These are the *native host library* versions of the OpenSSL functions
//! the paper benchmarks (§7.3) — real, test-vector-checked
//! implementations. The guest-side MiniX86 assembly versions in
//! [`crate::guest`] must produce identical digests, which the integration
//! suite checks end-to-end through the DBT.

/// MD5 (RFC 1321). Returns the 16-byte digest.
pub fn md5(data: &[u8]) -> [u8; 16] {
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5,
        9, 14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10,
        15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    let k: Vec<u32> =
        (0..64).map(|i| ((i as f64 + 1.0).sin().abs() * 4294967296.0) as u32).collect();

    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    let mut msg = data.to_vec();
    let bitlen = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bitlen.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let m: Vec<u32> =
            chunk.chunks_exact(4).map(|w| u32::from_le_bytes(w.try_into().unwrap())).collect();
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let f2 = f.wrapping_add(a).wrapping_add(k[i]).wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f2.rotate_left(S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// SHA-1 (FIPS 180-1). Returns the 20-byte digest.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    let mut msg = data.to_vec();
    let bitlen = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bitlen.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999u32),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 round constants (FIPS 180-4).
pub const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash values.
pub const SHA256_H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// SHA-256 (FIPS 180-4). Returns the 32-byte digest.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = SHA256_H0;
    let mut msg = data.to_vec();
    let bitlen = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bitlen.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 =
                hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Hex-string form of a digest (used by tests and examples).
pub fn to_hex(bytes: &[u8]) -> String {
    hex(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_rfc1321_vectors() {
        assert_eq!(hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(&md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(hex(&md5(b"message digest")), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(hex(&md5(b"abcdefghijklmnopqrstuvwxyz")), "c3fcd3d76192e4007dfb496cca67e13b");
    }

    #[test]
    fn sha1_fips_vectors() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn sha256_fips_vectors() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn multi_block_messages() {
        let long = vec![b'x'; 1000];
        // Known-good values computed with the same implementations are not
        // meaningful; instead check structural properties + a known vector.
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million_a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
        assert_eq!(hex(&sha1(&million_a)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
        assert_eq!(md5(&long).len(), 16);
    }
}
