//! Native math-library functions with per-function cycle costs.
//!
//! These stand in for the host's `libm` in the Fig. 14 benchmark. The
//! results use Rust's f64 intrinsics; the cycle costs are typical
//! hardware-library latencies (sqrt is a single instruction; the
//! transcendentals are short polynomial kernels).

/// The math functions the Fig. 14 benchmark sweeps, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// Square root.
    Sqrt,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Cosine.
    Cos,
    /// Sine.
    Sin,
    /// Tangent.
    Tan,
    /// Arc cosine.
    Acos,
    /// Arc sine.
    Asin,
    /// Arc tangent.
    Atan,
}

impl MathFn {
    /// All functions, in Fig. 14 order.
    pub const ALL: [MathFn; 9] = [
        MathFn::Sqrt,
        MathFn::Exp,
        MathFn::Log,
        MathFn::Cos,
        MathFn::Sin,
        MathFn::Tan,
        MathFn::Acos,
        MathFn::Asin,
        MathFn::Atan,
    ];

    /// Function name as used in the IDL and `.dynsym`.
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Sqrt => "sqrt",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Cos => "cos",
            MathFn::Sin => "sin",
            MathFn::Tan => "tan",
            MathFn::Acos => "acos",
            MathFn::Asin => "asin",
            MathFn::Atan => "atan",
        }
    }

    /// Evaluates the function.
    pub fn eval(self, x: f64) -> f64 {
        match self {
            MathFn::Sqrt => x.sqrt(),
            MathFn::Exp => x.exp(),
            MathFn::Log => x.ln(),
            MathFn::Cos => x.cos(),
            MathFn::Sin => x.sin(),
            MathFn::Tan => x.tan(),
            MathFn::Acos => x.acos(),
            MathFn::Asin => x.asin(),
            MathFn::Atan => x.atan(),
        }
    }

    /// Native per-call cycle cost (hardware FP + short kernels).
    pub fn native_cost(self) -> u64 {
        match self {
            MathFn::Sqrt => 12,
            MathFn::Exp => 40,
            MathFn::Log => 44,
            MathFn::Cos => 52,
            MathFn::Sin => 52,
            MathFn::Tan => 70,
            MathFn::Acos => 60,
            MathFn::Asin => 60,
            MathFn::Atan => 56,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_is_sane() {
        assert_eq!(MathFn::Sqrt.eval(16.0), 4.0);
        assert!((MathFn::Exp.eval(1.0) - std::f64::consts::E).abs() < 1e-12);
        assert!((MathFn::Log.eval(std::f64::consts::E) - 1.0).abs() < 1e-12);
        assert!(
            (MathFn::Sin.eval(0.5).powi(2) + MathFn::Cos.eval(0.5).powi(2) - 1.0).abs() < 1e-12
        );
        assert!(
            (MathFn::Tan.eval(0.3) - MathFn::Sin.eval(0.3) / MathFn::Cos.eval(0.3)).abs() < 1e-12
        );
        assert!((MathFn::Asin.eval(MathFn::Sin.eval(0.4)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn names_and_costs() {
        for f in MathFn::ALL {
            assert!(!f.name().is_empty());
            assert!(f.native_cost() >= 10);
        }
        assert!(MathFn::Sqrt.native_cost() < MathFn::Cos.native_cost());
    }
}
