//! # risotto-nativelib
//!
//! The "shared libraries" of the evaluation (§7.3): real Rust
//! implementations of the host-side libraries (digests, an RSA-style
//! modular-exponentiation kernel, a B-tree key-value store, libm-style
//! math functions), the [`HostLibrary`] factories that expose them to the
//! dynamic host linker, and MiniX86 *guest* implementations of the same
//! functions — the code QEMU would translate when host linking is off.
//!
//! [`HostLibrary`]: risotto_core::HostLibrary

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bignum;
pub mod digest;
pub mod guest;
pub mod hostlibs;
pub mod kvstore;
pub mod mathfn;
