//! Differential tests for the guest (MiniX86 assembly) library
//! implementations: each must agree with the native Rust implementation,
//! both under the reference interpreter and end-to-end through the DBT.

use risotto_core::{Emulator, Setup};
use risotto_guest_x86::{GelfBuilder, Gpr, GuestBinary, Interp};
use risotto_host_arm::CostModel;
use risotto_nativelib::guest;
use risotto_nativelib::{bignum, digest, kvstore::BTreeKv, mathfn::MathFn};

/// Builds a binary whose `main` sets up args and calls one guest routine.
fn harness(
    emit_lib: impl FnOnce(&mut GelfBuilder),
    setup_main: impl FnOnce(&mut GelfBuilder),
    callee: &str,
) -> GuestBinary {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    setup_main(&mut b);
    b.asm.call_to(callee);
    b.asm.hlt();
    emit_lib(&mut b);
    b.finish().unwrap()
}

/// Runs a binary in the interpreter; returns final memory reader.
fn run_interp(bin: &GuestBinary) -> Interp {
    let mut i = Interp::new(bin);
    i.run(500_000_000).unwrap();
    i
}

/// Runs a binary through the DBT (tcg-ver config: verified mappings,
/// translated guest library).
fn run_dbt(bin: &GuestBinary) -> Emulator {
    let mut emu = Emulator::new(bin, Setup::TcgVer, 1, CostModel::thunderx2_like());
    emu.run(2_000_000_000).unwrap();
    emu
}

fn digest_case(
    emit: fn(&mut GelfBuilder),
    callee: &str,
    reference: impl Fn(&[u8]) -> Vec<u8>,
    len: usize,
    digest_len: usize,
) {
    let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();
    let expect = reference(&data);
    let mut data_addr = 0;
    let mut out_addr = 0;
    let bin = harness(
        emit,
        |b| {
            data_addr = b.data_bytes(&data);
            out_addr = b.data_zeroed(64);
            if data.is_empty() {
                data_addr = out_addr; // any valid address
            }
            b.asm.mov_ri(Gpr::RDI, data_addr);
            b.asm.mov_ri(Gpr::RSI, len as u64);
            b.asm.mov_ri(Gpr::RDX, out_addr);
        },
        callee,
    );
    let interp = run_interp(&bin);
    assert_eq!(
        interp.mem.read_bytes(out_addr, digest_len),
        expect,
        "{callee}(len={len}) interpreter mismatch"
    );
    let dbt = run_dbt(&bin);
    assert_eq!(
        dbt.mem().read_bytes(out_addr, digest_len),
        expect,
        "{callee}(len={len}) DBT mismatch"
    );
}

#[test]
fn guest_md5_matches_native() {
    for len in [0usize, 3, 55, 56, 63, 64, 100, 1024] {
        digest_case(guest::emit_md5, "guest_md5", |d| digest::md5(d).to_vec(), len, 16);
    }
}

#[test]
fn guest_sha1_matches_native() {
    for len in [0usize, 3, 55, 56, 64, 129, 1024] {
        digest_case(guest::emit_sha1, "guest_sha1", |d| digest::sha1(d).to_vec(), len, 20);
    }
}

#[test]
fn guest_sha256_matches_native() {
    for len in [0usize, 3, 55, 56, 64, 129, 1024] {
        digest_case(guest::emit_sha256, "guest_sha256", |d| digest::sha256(d).to_vec(), len, 32);
    }
}

#[test]
fn guest_rsa_modpow_matches_native() {
    for (nlimbs, c, seed) in [(2usize, 159u64, 7u64), (4, 189, 9), (4, 159, 11)] {
        let base = bignum::BigU::pseudo_random(nlimbs, seed);
        let exp = bignum::BigU::pseudo_random(nlimbs, seed + 1);
        let (expect, _) = bignum::modpow_pm(&base.limbs, &exp.limbs, c);

        let mut out_addr = 0;
        let bin = harness(
            guest::emit_modpow_pm,
            |b| {
                let base_addr = b.data_u64(&base.limbs);
                let exp_addr = b.data_u64(&exp.limbs);
                out_addr = b.data_zeroed(nlimbs * 8);
                b.asm.mov_ri(Gpr::RDI, base_addr);
                b.asm.mov_ri(Gpr::RSI, exp_addr);
                b.asm.mov_ri(Gpr::RDX, out_addr);
                b.asm.mov_ri(Gpr::RCX, nlimbs as u64);
                b.asm.mov_ri(Gpr::R8, c);
            },
            "guest_rsa_modpow",
        );
        let interp = run_interp(&bin);
        let got: Vec<u64> =
            (0..nlimbs).map(|i| interp.mem.read_u64(out_addr + i as u64 * 8)).collect();
        assert_eq!(got, expect, "interpreter mismatch (n={nlimbs}, c={c})");
        let dbt = run_dbt(&bin);
        let got: Vec<u64> =
            (0..nlimbs).map(|i| dbt.mem().read_u64(out_addr + i as u64 * 8)).collect();
        assert_eq!(got, expect, "DBT mismatch (n={nlimbs}, c={c})");
    }
}

#[test]
fn guest_kv_matches_native_semantics() {
    // Script a mixed workload into guest code: puts, overwrite, gets,
    // range-sum; record each result to an output array.
    let keys: Vec<u64> = (1..=40u64).map(|i| i * 977 % 4093 + 1).collect();
    let mut reference = BTreeKv::new();
    let mut expected = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        expected.push(reference.put(k, i as u64 * 3).unwrap_or(u64::MAX));
    }
    expected.push(reference.put(keys[5], 999).unwrap_or(u64::MAX));
    for &k in &keys[..10] {
        expected.push(reference.get(k).unwrap_or(u64::MAX));
    }
    expected.push(reference.get(4094).unwrap_or(u64::MAX));
    expected.push(reference.range_sum(0, u64::MAX / 2));
    expected.push(reference.range_sum(500, 1500));

    let mut b = GelfBuilder::new("main");
    let out_addr = b.data_zeroed(expected.len() * 8);
    b.asm.label("main");
    let mut slot = 0i32;
    let record = |b: &mut GelfBuilder, slot: &mut i32| {
        b.asm.mov_ri(Gpr::R15, out_addr);
        b.asm.store(Gpr::R15, *slot, Gpr::RAX);
        *slot += 8;
    };
    for (i, &k) in keys.iter().enumerate() {
        b.asm.mov_ri(Gpr::RDI, k);
        b.asm.mov_ri(Gpr::RSI, i as u64 * 3);
        b.asm.call_to("guest_kv_put");
        record(&mut b, &mut slot);
    }
    b.asm.mov_ri(Gpr::RDI, keys[5]);
    b.asm.mov_ri(Gpr::RSI, 999);
    b.asm.call_to("guest_kv_put");
    record(&mut b, &mut slot);
    for &k in &keys[..10] {
        b.asm.mov_ri(Gpr::RDI, k);
        b.asm.call_to("guest_kv_get");
        record(&mut b, &mut slot);
    }
    b.asm.mov_ri(Gpr::RDI, 4094);
    b.asm.call_to("guest_kv_get");
    record(&mut b, &mut slot);
    b.asm.mov_ri(Gpr::RDI, 0);
    b.asm.mov_ri(Gpr::RSI, u64::MAX / 2);
    b.asm.call_to("guest_kv_range_sum");
    record(&mut b, &mut slot);
    b.asm.mov_ri(Gpr::RDI, 500);
    b.asm.mov_ri(Gpr::RSI, 1500);
    b.asm.call_to("guest_kv_range_sum");
    record(&mut b, &mut slot);
    b.asm.hlt();
    guest::emit_kv(&mut b);
    let bin = b.finish().unwrap();

    let interp = run_interp(&bin);
    let got: Vec<u64> =
        (0..expected.len()).map(|i| interp.mem.read_u64(out_addr + i as u64 * 8)).collect();
    assert_eq!(got, expected, "interpreter mismatch");
    let dbt = run_dbt(&bin);
    let got: Vec<u64> =
        (0..expected.len()).map(|i| dbt.mem().read_u64(out_addr + i as u64 * 8)).collect();
    assert_eq!(got, expected, "DBT mismatch");
}

#[test]
fn guest_math_agrees_with_native_on_domain() {
    // (function, test inputs) within the documented domains.
    let cases: Vec<(MathFn, Vec<f64>)> = vec![
        (MathFn::Sqrt, vec![0.25, 1.0, 2.0, 16.0, 1e6]),
        (MathFn::Sin, vec![0.0, 0.1, 0.5, 1.0, 1.5]),
        (MathFn::Cos, vec![0.0, 0.1, 0.5, 1.0, 1.5]),
        (MathFn::Tan, vec![0.0, 0.1, 0.5, 1.0]),
        (MathFn::Exp, vec![0.0, 0.5, 1.0, 2.0, -1.0]),
        (MathFn::Log, vec![0.5, 0.9, 1.0, 1.5, 2.5]),
        (MathFn::Asin, vec![0.0, 0.2, 0.5, 0.6]),
        (MathFn::Acos, vec![0.0, 0.2, 0.5, 0.6]),
        (MathFn::Atan, vec![0.0, 0.2, 0.5, 0.6]),
    ];
    for (f, inputs) in cases {
        for x in inputs {
            let mut b2 = GelfBuilder::new("main");
            let out2 = b2.data_zeroed(8);
            b2.asm.label("main");
            b2.asm.mov_ri(Gpr::RDI, x.to_bits());
            b2.asm.call_to(&format!("guest_{}", f.name()));
            b2.asm.mov_ri(Gpr::RCX, out2);
            b2.asm.store(Gpr::RCX, 0, Gpr::RAX);
            b2.asm.hlt();
            guest::emit_math(&mut b2);
            let bin2 = b2.finish().unwrap();

            let interp = run_interp(&bin2);
            let got = f64::from_bits(interp.mem.read_u64(out2));
            let expect = f.eval(x);
            let tol = expect.abs().max(1.0) * 1e-8;
            assert!(
                (got - expect).abs() <= tol,
                "{}({x}): guest {got} vs native {expect}",
                f.name()
            );
            // DBT path (soft-float helpers) must produce the same bits as
            // the interpreter path.
            let dbt = run_dbt(&bin2);
            assert_eq!(
                dbt.mem().read_u64(out2),
                interp.mem.read_u64(out2),
                "{}({x}): DBT/interp bit mismatch",
                f.name()
            );
        }
    }
}
