//! # Tier-0 IR-less template translation
//!
//! The tier-1 pipeline (`risotto-tcg` frontend → optimizer → regalloc →
//! backend) pays decode→IR→optimize→allocate→encode for every block,
//! even code executed once. Per Parker 2025 ("Boosting
//! Cross-Architectural Emulation Performance by Foregoing the
//! Intermediate Representation Model"), cold code does not need an IR:
//! this crate maps each MiniX86 instruction **directly** to a canned
//! host-instruction sequence — a *template* — with only operand patching
//! at translation time. No [`risotto_tcg::TcgOp`] is built, no optimizer
//! or register allocator runs, and no per-block verifier passes are
//! needed at runtime.
//!
//! ## Template ABI
//!
//! Templates are instantiated per instruction and concatenated. To make
//! every template independently correct regardless of context, the ABI
//! is "guest state lives in env memory":
//!
//! * every guest register and flag is read from / written to its env
//!   slot (`[ENV_BASE + 8*slot]`) within the template that uses it;
//! * scratch registers are fixed at `X9..X13` ([`T0`]..[`T4`]), inside
//!   the allocatable pool but clear of the helper-call argument
//!   registers (`X0..X3`), the ordering dialects' private RMW scratch
//!   (`X7`/`X8`), and the `ENV_BASE`/`SPILL_BASE` anchors (`X27`/`X28`);
//! * the env is therefore *always* flushed at helper calls, atomic
//!   sequences, and block exits — the flush obligations the tier-1
//!   verifier checks per block hold here by construction.
//!
//! ## Ordering and verification
//!
//! Memory-ordering decisions are **not** re-derived: guest fences are
//! placed exactly as the verified frontend mapping places them
//! ([`FencePlacement`]), then lowered through the same per-backend
//! [`OrderingLowering`] hooks tier-1 uses (`fence`/`cas`/`atomic_add`).
//! The template set is finite, so the memory-model argument is made
//! *once, statically*: the repository test-suite enumerates every
//! template per backend, projects it to litmus events, and runs the
//! Theorem-1 check against the axiomatic models — the same way the
//! Fig. 7/8 mapping schemes are verified. The per-block Pass 1/2
//! verifier passes are thereby unnecessary for tier-0 blocks; the
//! Pass 3 encoding read-back still applies at install time.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use risotto_guest_x86::{AluOp, Cond, Gpr, Insn, Operand};
use risotto_host_arm::{
    helper_index, BackendConfig, BackendError, HostAsm, HostInsn, OrderingLowering, TbExitKind,
    Xreg,
};
use risotto_memmodel::FenceKind;
use risotto_tcg::{
    env, CasStrategy, FencePlacement, FrontendConfig, Helper, TranslateError, MAX_TB_INSNS,
};

/// Template scratch register 0 (`X9`).
pub const T0: Xreg = Xreg(9);
/// Template scratch register 1 (`X10`).
pub const T1: Xreg = Xreg(10);
/// Template scratch register 2 (`X11`).
pub const T2: Xreg = Xreg(11);
/// Template scratch register 3 (`X12`).
pub const T3: Xreg = Xreg(12);
/// Template scratch register 4 (`X13`).
pub const T4: Xreg = Xreg(13);

/// A tier-0 translated block: concatenated instruction templates plus
/// the standard TB exit, ready for `install_code`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateBlock {
    /// Guest pc of the first instruction.
    pub guest_pc: u64,
    /// Number of guest bytes consumed.
    pub guest_len: usize,
    /// Number of guest instructions translated.
    pub insns: usize,
    /// The host code.
    pub code: Vec<HostInsn>,
}

/// Tier-0 translation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// Guest instruction decoding failed.
    Decode(TranslateError),
    /// Template assembly failed (structurally unreachable: templates
    /// bind every label they branch to).
    Lower(BackendError),
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::Decode(e) => write!(f, "tier-0 decode: {e}"),
            TemplateError::Lower(e) => write!(f, "tier-0 assembly: {e}"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// One template instantiation context: the output assembler plus the
/// frontend/backend configuration the templates are parameterized on.
struct Emit<'a, O: OrderingLowering + ?Sized> {
    asm: HostAsm,
    cfg: FrontendConfig,
    bcfg: BackendConfig,
    ord: &'a O,
}

fn env_off(slot: u8) -> i32 {
    i32::from(slot) * 8
}

fn aop_of(op: AluOp) -> risotto_host_arm::AOp {
    use risotto_host_arm::AOp;
    match op {
        AluOp::Add => AOp::Add,
        AluOp::Sub => AOp::Sub,
        AluOp::And => AOp::And,
        AluOp::Or => AOp::Orr,
        AluOp::Xor => AOp::Eor,
        AluOp::Shl => AOp::Lsl,
        AluOp::Shr => AOp::Lsr,
        AluOp::Sar => AOp::Asr,
        AluOp::Mul => AOp::Mul,
    }
}

fn fp_helper_of(op: risotto_guest_x86::FpOp) -> Helper {
    use risotto_guest_x86::FpOp;
    match op {
        FpOp::Add => Helper::FpAdd,
        FpOp::Sub => Helper::FpSub,
        FpOp::Mul => Helper::FpMul,
        FpOp::Div => Helper::FpDiv,
        FpOp::Sqrt => Helper::FpSqrt,
        FpOp::CvtIF => Helper::FpCvtIF,
        FpOp::CvtFI => Helper::FpCvtFI,
    }
}

impl<O: OrderingLowering + ?Sized> Emit<'_, O> {
    fn push(&mut self, i: HostInsn) {
        self.asm.push(i);
    }

    /// `dst ← env[slot]`.
    fn ld_env(&mut self, dst: Xreg, slot: u8) {
        self.push(HostInsn::Ldr {
            dst,
            base: risotto_host_arm::ENV_BASE,
            off: env_off(slot),
            order: risotto_host_arm::MemOrder::Plain,
        });
    }

    /// `env[slot] ← src`.
    fn st_env(&mut self, src: Xreg, slot: u8) {
        self.push(HostInsn::Str {
            src,
            base: risotto_host_arm::ENV_BASE,
            off: env_off(slot),
            order: risotto_host_arm::MemOrder::Plain,
        });
    }

    fn ld_gpr(&mut self, dst: Xreg, r: Gpr) {
        self.ld_env(dst, r.0);
    }

    fn st_gpr(&mut self, src: Xreg, r: Gpr) {
        self.st_env(src, r.0);
    }

    /// Lowers a TCG fence through the backend dialect (no-op fences
    /// vanish, exactly as in tier-1 lowering).
    fn fence(&mut self, k: FenceKind) {
        if let Some(i) = self.ord.fence(k) {
            self.push(i);
        }
    }

    /// The fence (if any) the frontend mapping emits *before* a guest
    /// load.
    fn load_lead_fence(&mut self) {
        if self.cfg.fences == FencePlacement::QemuLeading {
            self.fence(FenceKind::Frr);
        }
    }

    /// The fence (if any) the frontend mapping emits *after* a guest
    /// load.
    fn load_trail_fence(&mut self) {
        if self.cfg.fences == FencePlacement::VerifiedTrailing {
            self.fence(FenceKind::Frm);
        }
    }

    /// The fence (if any) the frontend mapping emits *before* a guest
    /// store.
    fn store_fence(&mut self) {
        match self.cfg.fences {
            FencePlacement::QemuLeading => self.fence(FenceKind::Fmw),
            FencePlacement::VerifiedTrailing => self.fence(FenceKind::Fww),
            FencePlacement::None => {}
        }
    }

    /// `t ← guest address (base + disp)`.
    fn addr(&mut self, t: Xreg, base: Gpr, disp: i32) {
        self.ld_gpr(t, base);
        if disp != 0 {
            self.push(HostInsn::AluImm {
                op: risotto_host_arm::AOp::Add,
                dst: t,
                a: t,
                imm: disp as i64 as u64,
            });
        }
    }

    /// `t ← operand` (env read or immediate).
    fn operand(&mut self, t: Xreg, op: Operand) {
        match op {
            Operand::Reg(r) => self.ld_gpr(t, r),
            Operand::Imm(i) => self.push(HostInsn::MovImm { dst: t, imm: i }),
        }
    }

    /// Guest 64-bit load: fences per the mapping scheme around a plain
    /// `Ldr` with the displacement folded into the addressing mode.
    fn guest_load(&mut self, dst: Xreg, base: Xreg, disp: i32) {
        self.load_lead_fence();
        self.push(HostInsn::Ldr { dst, base, off: disp, order: risotto_host_arm::MemOrder::Plain });
        self.load_trail_fence();
    }

    /// Guest 64-bit store: mapping-scheme fence, then a plain `Str`.
    fn guest_store(&mut self, src: Xreg, base: Xreg, disp: i32) {
        self.store_fence();
        self.push(HostInsn::Str { src, base, off: disp, order: risotto_host_arm::MemOrder::Plain });
    }

    /// `ZF ← (res == 0)`, `SF ← res >> 63` via `scratch`.
    fn flags_zs(&mut self, res: Xreg, scratch: Xreg) {
        self.push(HostInsn::CmpImm { a: res, imm: 0 });
        self.push(HostInsn::Cset { dst: scratch, cond: risotto_host_arm::ACond::Eq });
        self.st_env(scratch, env::ZF);
        self.push(HostInsn::AluImm {
            op: risotto_host_arm::AOp::Lsr,
            dst: scratch,
            a: res,
            imm: 63,
        });
        self.st_env(scratch, env::SF);
    }

    /// The frontend's `flags_sub(a, b, res)` formulas, bit-exact:
    /// `CF = a <u b`, `OF = ((a ^ b) & (a ^ res)) >> 63`.
    fn flags_sub(&mut self, a: Xreg, b: Xreg, res: Xreg, s1: Xreg, s2: Xreg) {
        use risotto_host_arm::{ACond, AOp};
        self.flags_zs(res, s1);
        self.push(HostInsn::Cmp { a, b });
        self.push(HostInsn::Cset { dst: s1, cond: ACond::Lo });
        self.st_env(s1, env::CF);
        self.push(HostInsn::Alu { op: AOp::Eor, dst: s1, a, b });
        self.push(HostInsn::Alu { op: AOp::Eor, dst: s2, a, b: res });
        self.push(HostInsn::Alu { op: AOp::And, dst: s1, a: s1, b: s2 });
        self.push(HostInsn::AluImm { op: AOp::Lsr, dst: s1, a: s1, imm: 63 });
        self.st_env(s1, env::OF);
    }

    /// The frontend's `flags_add(a, b, res)` formulas, bit-exact:
    /// `CF = res <u a`, `OF = (~(a ^ b) & (a ^ res)) >> 63`.
    fn flags_add(&mut self, a: Xreg, b: Xreg, res: Xreg, s1: Xreg, s2: Xreg) {
        use risotto_host_arm::{ACond, AOp};
        self.flags_zs(res, s1);
        self.push(HostInsn::Cmp { a: res, b: a });
        self.push(HostInsn::Cset { dst: s1, cond: ACond::Lo });
        self.st_env(s1, env::CF);
        self.push(HostInsn::Alu { op: AOp::Eor, dst: s1, a, b });
        self.push(HostInsn::AluImm { op: AOp::Eor, dst: s1, a: s1, imm: u64::MAX });
        self.push(HostInsn::Alu { op: AOp::Eor, dst: s2, a, b: res });
        self.push(HostInsn::Alu { op: AOp::And, dst: s1, a: s1, b: s2 });
        self.push(HostInsn::AluImm { op: AOp::Lsr, dst: s1, a: s1, imm: 63 });
        self.st_env(s1, env::OF);
    }

    /// The frontend's `flags_logic(res)`: `CF = OF = 0`.
    fn flags_logic(&mut self, res: Xreg, scratch: Xreg) {
        self.flags_zs(res, scratch);
        self.push(HostInsn::MovImm { dst: scratch, imm: 0 });
        self.st_env(scratch, env::CF);
        self.st_env(scratch, env::OF);
    }

    /// Computes the 0/1 branch condition from the flag env slots into
    /// `T0`, replicating the frontend's `cond_temp` formulas.
    fn cond_flag(&mut self, cond: Cond) {
        use risotto_host_arm::AOp;
        let not = |e: &mut Self, r: Xreg| {
            e.push(HostInsn::AluImm { op: AOp::Eor, dst: r, a: r, imm: 1 });
        };
        match cond {
            Cond::E => self.ld_env(T0, env::ZF),
            Cond::Ne => {
                self.ld_env(T0, env::ZF);
                not(self, T0);
            }
            Cond::L | Cond::Ge => {
                self.ld_env(T0, env::SF);
                self.ld_env(T1, env::OF);
                self.push(HostInsn::Alu { op: AOp::Eor, dst: T0, a: T0, b: T1 });
                if cond == Cond::Ge {
                    not(self, T0);
                }
            }
            Cond::Le | Cond::G => {
                self.ld_env(T0, env::SF);
                self.ld_env(T1, env::OF);
                self.push(HostInsn::Alu { op: AOp::Eor, dst: T0, a: T0, b: T1 });
                self.ld_env(T1, env::ZF);
                self.push(HostInsn::Alu { op: AOp::Orr, dst: T0, a: T1, b: T0 });
                if cond == Cond::G {
                    not(self, T0);
                }
            }
            Cond::B => self.ld_env(T0, env::CF),
            Cond::Ae => {
                self.ld_env(T0, env::CF);
                not(self, T0);
            }
            Cond::Be | Cond::A => {
                self.ld_env(T0, env::CF);
                self.ld_env(T1, env::ZF);
                self.push(HostInsn::Alu { op: AOp::Orr, dst: T0, a: T0, b: T1 });
                if cond == Cond::A {
                    not(self, T0);
                }
            }
            Cond::S => self.ld_env(T0, env::SF),
            Cond::Ns => {
                self.ld_env(T0, env::SF);
                not(self, T0);
            }
        }
    }

    /// The frontend's `push_ra(ra)`: `RSP -= 8; [RSP] ← ra` with the
    /// configured store ordering.
    fn push_ra(&mut self, ra: u64) {
        use risotto_host_arm::AOp;
        self.ld_gpr(T0, Gpr::RSP);
        self.push(HostInsn::AluImm { op: AOp::Sub, dst: T0, a: T0, imm: 8 });
        self.st_gpr(T0, Gpr::RSP);
        self.push(HostInsn::MovImm { dst: T1, imm: ra });
        self.guest_store(T1, T0, 0);
    }

    /// Marshals `args` (≤4) into `X0..`, calls helper `h`, moves the
    /// result from `X0` into `dst`.
    fn hcall(&mut self, h: Helper, args: &[Xreg], dst: Xreg) {
        for (i, &a) in args.iter().enumerate() {
            self.push(HostInsn::MovReg { dst: Xreg(i as u8), src: a });
        }
        self.push(HostInsn::Hcall { helper: helper_index(h) });
        self.push(HostInsn::MovReg { dst, src: Xreg(0) });
    }

    fn exit(&mut self, kind: TbExitKind) {
        self.push(HostInsn::ExitTb(kind));
    }

    /// Emits the template for `insn` (with `next` the fall-through pc).
    /// Returns `true` when the instruction ended the block.
    fn insn(&mut self, insn: &Insn, next: u64) -> bool {
        use risotto_host_arm::{ACond, AOp};
        match *insn {
            Insn::MovRI { dst, imm } => {
                self.push(HostInsn::MovImm { dst: T0, imm });
                self.st_gpr(T0, dst);
            }
            Insn::MovRR { dst, src } => {
                self.ld_gpr(T0, src);
                self.st_gpr(T0, dst);
            }
            Insn::Load { dst, base, disp } => {
                self.ld_gpr(T0, base);
                self.guest_load(T1, T0, disp);
                self.st_gpr(T1, dst);
            }
            Insn::Store { base, disp, src } => {
                self.ld_gpr(T1, src);
                self.ld_gpr(T0, base);
                self.guest_store(T1, T0, disp);
            }
            Insn::LoadB { dst, base, disp } => {
                self.ld_gpr(T0, base);
                self.load_lead_fence();
                self.push(HostInsn::LdrB { dst: T1, base: T0, off: disp });
                self.load_trail_fence();
                self.st_gpr(T1, dst);
            }
            Insn::StoreB { base, disp, src } => {
                self.ld_gpr(T1, src);
                self.ld_gpr(T0, base);
                self.store_fence();
                self.push(HostInsn::StrB { src: T1, base: T0, off: disp });
            }
            Insn::Lea { dst, base, disp } => {
                self.addr(T0, base, disp);
                self.st_gpr(T0, dst);
            }
            Insn::Alu { op, dst, src } => {
                self.ld_gpr(T0, dst);
                self.operand(T1, src);
                self.push(HostInsn::Alu { op: aop_of(op), dst: T2, a: T0, b: T1 });
                self.st_gpr(T2, dst);
                match op {
                    AluOp::Add => self.flags_add(T0, T1, T2, T3, T4),
                    AluOp::Sub => self.flags_sub(T0, T1, T2, T3, T4),
                    _ => self.flags_logic(T2, T3),
                }
            }
            Insn::MulWide { src } => {
                self.ld_gpr(T0, Gpr::RAX);
                self.ld_gpr(T1, src);
                self.push(HostInsn::Alu { op: AOp::Mul, dst: T2, a: T0, b: T1 });
                self.push(HostInsn::Alu { op: AOp::Umulh, dst: T3, a: T0, b: T1 });
                self.st_gpr(T2, Gpr::RAX);
                self.st_gpr(T3, Gpr::RDX);
            }
            Insn::Div { src } => {
                self.ld_gpr(T0, Gpr::RAX);
                self.ld_gpr(T1, src);
                self.push(HostInsn::Alu { op: AOp::Udiv, dst: T2, a: T0, b: T1 });
                self.push(HostInsn::Alu { op: AOp::Urem, dst: T3, a: T0, b: T1 });
                self.st_gpr(T2, Gpr::RAX);
                self.st_gpr(T3, Gpr::RDX);
            }
            Insn::Fp { op, dst, src } => {
                self.ld_gpr(T0, dst);
                self.ld_gpr(T1, src);
                self.hcall(fp_helper_of(op), &[T0, T1], T2);
                self.st_gpr(T2, dst);
            }
            Insn::Cmp { a, b } => {
                self.ld_gpr(T0, a);
                self.operand(T1, b);
                self.push(HostInsn::Alu { op: AOp::Sub, dst: T2, a: T0, b: T1 });
                self.flags_sub(T0, T1, T2, T3, T4);
            }
            Insn::Test { a, b } => {
                self.ld_gpr(T0, a);
                self.operand(T1, b);
                self.push(HostInsn::Alu { op: AOp::And, dst: T2, a: T0, b: T1 });
                self.flags_logic(T2, T3);
            }
            Insn::LockCmpxchg { base, disp, src } => {
                self.addr(T0, base, disp);
                self.ld_gpr(T1, Gpr::RAX);
                self.ld_gpr(T2, src);
                match self.cfg.cas {
                    CasStrategy::TcgOp => {
                        let (bcfg, ord) = (self.bcfg, self.ord);
                        ord.cas(&mut self.asm, T3, T0, T1, T2, bcfg);
                    }
                    CasStrategy::Helper => self.hcall(Helper::CmpxchgSc, &[T0, T1, T2], T3),
                }
                self.st_gpr(T3, Gpr::RAX);
                self.push(HostInsn::Cmp { a: T3, b: T1 });
                self.push(HostInsn::Cset { dst: T4, cond: ACond::Eq });
                self.st_env(T4, env::ZF);
                self.push(HostInsn::MovImm { dst: T4, imm: 0 });
                self.st_env(T4, env::SF);
                self.st_env(T4, env::CF);
                self.st_env(T4, env::OF);
            }
            Insn::LockXadd { base, disp, src } => {
                self.addr(T0, base, disp);
                self.ld_gpr(T1, src);
                match self.cfg.cas {
                    CasStrategy::TcgOp => {
                        let (bcfg, ord) = (self.bcfg, self.ord);
                        ord.atomic_add(&mut self.asm, T2, T0, T1, bcfg);
                    }
                    CasStrategy::Helper => self.hcall(Helper::XaddSc, &[T0, T1], T2),
                }
                self.st_gpr(T2, src);
            }
            Insn::Mfence => self.fence(FenceKind::Fsc),
            Insn::Nop => {}
            Insn::Jcc { cond, rel } => {
                self.cond_flag(cond);
                let l_taken = self.asm.fresh_label();
                self.push(HostInsn::CmpImm { a: T0, imm: 0 });
                self.asm.bcond_to(ACond::Ne, l_taken);
                self.exit(TbExitKind::Jump { guest_pc: next, chain: 0 });
                self.asm.bind(l_taken);
                self.exit(TbExitKind::Jump {
                    guest_pc: next.wrapping_add(rel as i64 as u64),
                    chain: 0,
                });
                return true;
            }
            Insn::Jmp { rel } => {
                self.exit(TbExitKind::Jump {
                    guest_pc: next.wrapping_add(rel as i64 as u64),
                    chain: 0,
                });
                return true;
            }
            Insn::JmpReg { reg } => {
                self.ld_gpr(T0, reg);
                self.exit(TbExitKind::JumpReg { reg: T0 });
                return true;
            }
            Insn::Call { rel } => {
                self.push_ra(next);
                self.exit(TbExitKind::Jump {
                    guest_pc: next.wrapping_add(rel as i64 as u64),
                    chain: 0,
                });
                return true;
            }
            Insn::CallReg { reg } => {
                // Target is read before the stack push so `call [rsp]`
                // uses the pre-push value, as in the frontend.
                self.ld_gpr(T2, reg);
                self.push_ra(next);
                self.exit(TbExitKind::JumpReg { reg: T2 });
                return true;
            }
            Insn::Ret => {
                self.ld_gpr(T0, Gpr::RSP);
                self.guest_load(T1, T0, 0);
                self.push(HostInsn::AluImm { op: AOp::Add, dst: T2, a: T0, imm: 8 });
                self.st_gpr(T2, Gpr::RSP);
                self.exit(TbExitKind::JumpReg { reg: T1 });
                return true;
            }
            Insn::Push { src } => {
                self.ld_gpr(T1, src);
                self.ld_gpr(T0, Gpr::RSP);
                self.push(HostInsn::AluImm { op: AOp::Sub, dst: T0, a: T0, imm: 8 });
                self.st_gpr(T0, Gpr::RSP);
                self.guest_store(T1, T0, 0);
            }
            Insn::Pop { dst } => {
                self.ld_gpr(T0, Gpr::RSP);
                self.guest_load(T1, T0, 0);
                self.push(HostInsn::AluImm { op: AOp::Add, dst: T2, a: T0, imm: 8 });
                self.st_gpr(T2, Gpr::RSP);
                self.st_gpr(T1, dst);
            }
            Insn::Hlt => {
                self.exit(TbExitKind::Halt);
                return true;
            }
            Insn::Syscall => {
                self.exit(TbExitKind::Syscall { next });
                return true;
            }
        }
        false
    }
}

/// Instantiates the template for a single instruction, for the static
/// verification suite (the per-template Theorem-1 projection) and the
/// template-table documentation. `pc` is the instruction's address
/// (used only by terminators to compute exit targets).
///
/// # Errors
///
/// Returns [`BackendError`] only on an internal label bug (templates
/// bind every label they emit).
pub fn insn_template<O: OrderingLowering + ?Sized>(
    insn: &Insn,
    pc: u64,
    cfg: FrontendConfig,
    bcfg: BackendConfig,
    ord: &O,
) -> Result<Vec<HostInsn>, BackendError> {
    let mut e = Emit { asm: HostAsm::new(), cfg, bcfg, ord };
    let next = pc + insn.encoded_len() as u64;
    e.insn(insn, next);
    e.asm.finish()
}

/// Translates one basic block starting at `pc` by template
/// instantiation: decode each instruction and append its canned host
/// sequence, with no IR, optimizer or register-allocator stage. The
/// block ends at the first terminator or after
/// [`MAX_TB_INSNS`] instructions (falling off with a `Jump` to the
/// next pc, like the tier-1 frontend).
///
/// # Errors
///
/// Returns [`TemplateError::Decode`] when instruction decoding fails at
/// some pc, [`TemplateError::Lower`] on an internal label bug.
pub fn translate_block_template<O, F>(
    pc: u64,
    cfg: FrontendConfig,
    bcfg: BackendConfig,
    ord: &O,
    fetch: F,
) -> Result<TemplateBlock, TemplateError>
where
    O: OrderingLowering + ?Sized,
    F: Fn(u64) -> [u8; 16],
{
    let mut e = Emit { asm: HostAsm::new(), cfg, bcfg, ord };
    // Typical templates expand to ~10 host insns per guest insn; one
    // up-front reservation keeps the emit loop reallocation-free.
    e.asm.reserve(MAX_TB_INSNS * 12);
    let mut cur = pc;
    let mut insns = 0usize;
    let mut ended = false;
    for _ in 0..MAX_TB_INSNS {
        let window = fetch(cur);
        let (insn, len) = Insn::decode(&window)
            .map_err(|cause| TemplateError::Decode(TranslateError { pc: cur, cause }))?;
        let next = cur + len as u64;
        insns += 1;
        if e.insn(&insn, next) {
            cur = next;
            ended = true;
            break;
        }
        cur = next;
    }
    if !ended {
        // Size cap reached: continue at the next pc, like the frontend.
        e.exit(TbExitKind::Jump { guest_pc: cur, chain: 0 });
    }
    let code = e.asm.finish().map_err(TemplateError::Lower)?;
    Ok(TemplateBlock { guest_pc: pc, guest_len: (cur - pc) as usize, insns, code })
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_host_arm::ArmOrdering;

    fn fetch_of(bytes: Vec<u8>, base: u64) -> impl Fn(u64) -> [u8; 16] {
        move |pc| {
            let mut w = [0u8; 16];
            let off = (pc - base) as usize;
            for (i, s) in w.iter_mut().enumerate() {
                if off + i < bytes.len() {
                    *s = bytes[off + i];
                }
            }
            w
        }
    }

    #[test]
    fn straight_line_block_translates() {
        let mut a = risotto_guest_x86::Assembler::new(0x1000);
        a.mov_ri(Gpr::RAX, 7);
        a.alu_ri(AluOp::Add, Gpr::RAX, 5);
        a.hlt();
        let (bytes, _) = a.finish().unwrap();
        let blk = translate_block_template(
            0x1000,
            FrontendConfig::risotto(),
            BackendConfig::dbt(risotto_host_arm::RmwStyle::Casal),
            &ArmOrdering,
            fetch_of(bytes.clone(), 0x1000),
        )
        .unwrap();
        assert_eq!(blk.guest_pc, 0x1000);
        assert_eq!(blk.guest_len, bytes.len());
        assert_eq!(blk.insns, 3);
        assert!(matches!(blk.code.last(), Some(HostInsn::ExitTb(TbExitKind::Halt))));
    }

    #[test]
    fn decode_error_surfaces_pc() {
        let err = translate_block_template(
            0x2000,
            FrontendConfig::risotto(),
            BackendConfig::dbt(risotto_host_arm::RmwStyle::Casal),
            &ArmOrdering,
            |_| [0xFFu8; 16],
        )
        .unwrap_err();
        match err {
            TemplateError::Decode(e) => assert_eq!(e.pc, 0x2000),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn size_cap_falls_through_with_jump() {
        // MAX_TB_INSNS straight-line instructions, no terminator.
        let mut a = risotto_guest_x86::Assembler::new(0x1000);
        for _ in 0..MAX_TB_INSNS + 4 {
            a.mov_ri(Gpr::RBX, 1);
        }
        let (bytes, _) = a.finish().unwrap();
        let blk = translate_block_template(
            0x1000,
            FrontendConfig::risotto(),
            BackendConfig::dbt(risotto_host_arm::RmwStyle::Casal),
            &ArmOrdering,
            fetch_of(bytes, 0x1000),
        )
        .unwrap();
        assert_eq!(blk.insns, MAX_TB_INSNS);
        let expect_pc = 0x1000 + (blk.guest_len as u64);
        assert!(matches!(
            blk.code.last(),
            Some(HostInsn::ExitTb(TbExitKind::Jump { guest_pc, .. })) if *guest_pc == expect_pc
        ));
    }

    #[test]
    fn fence_free_config_emits_no_barriers() {
        let mut a = risotto_guest_x86::Assembler::new(0x1000);
        a.load(Gpr::RAX, Gpr::RBX, 0);
        a.store(Gpr::RBX, 8, Gpr::RAX);
        a.hlt();
        let (bytes, _) = a.finish().unwrap();
        let blk = translate_block_template(
            0x1000,
            FrontendConfig::no_fences(),
            BackendConfig::dbt(risotto_host_arm::RmwStyle::Casal),
            &ArmOrdering,
            fetch_of(bytes, 0x1000),
        )
        .unwrap();
        assert!(!blk.code.iter().any(|i| matches!(i, HostInsn::Barrier(_))));
    }
}
