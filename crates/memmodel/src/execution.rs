//! Executions: event graphs with `po`, `rf`, `co` and dependency relations.
//!
//! An execution `X = ⟨E, po, rf, co⟩` (paper, §5.1) additionally carries the
//! `rmw` pairing and the syntactic dependency relations (`addr`, `data`,
//! `ctrl`) needed by the Arm model's `dob`. Derived relations (`fr`, the
//! external variants, `po|loc`, …) are computed on demand.

use crate::event::{AccessMode, Event, EventId, EventKind, FenceKind, Loc, RmwTag, Val};
use crate::relation::{EventSet, Relation};
use std::collections::BTreeMap;

/// An `rmw`-related read/write event pair, or a failed RMW's lone read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RmwPair {
    /// The read event (`dom(rmw)`).
    pub read: EventId,
    /// The write event (`codom(rmw)`); `None` if the RMW failed.
    pub write: Option<EventId>,
    /// Which primitive produced the pair.
    pub tag: RmwTag,
}

/// A complete candidate execution of a program.
#[derive(Debug, Clone)]
pub struct Execution {
    /// All events; `events[i].id == EventId(i)`. Initialization writes come
    /// first and belong to no thread.
    pub events: Vec<Event>,
    /// Program order: a strict partial order, total per thread, empty across
    /// threads and on init events.
    pub po: Relation,
    /// Reads-from: relates each write to the reads that take its value.
    /// Reads of the initial value read from the per-location init write.
    pub rf: Relation,
    /// Coherence order: strict total order on the writes of each location,
    /// with the init write first.
    pub co: Relation,
    /// RMW pairs (successful and failed).
    pub rmw_pairs: Vec<RmwPair>,
    /// Address dependencies (read → dependent access).
    pub addr: Relation,
    /// Data dependencies (read → dependent write).
    pub data: Relation,
    /// Control dependencies (read → events po-after a dependent branch).
    pub ctrl: Relation,
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The set of read events (`R`).
    pub fn reads(&self) -> EventSet {
        self.events_where(Event::is_read)
    }

    /// The set of write events (`W`), including init writes.
    pub fn writes(&self) -> EventSet {
        self.events_where(Event::is_write)
    }

    /// The set of all memory accesses (`R ∪ W`).
    pub fn accesses(&self) -> EventSet {
        self.reads().union(self.writes())
    }

    /// The set of fence events of the given kind.
    pub fn fences(&self, kind: FenceKind) -> EventSet {
        self.events_where(|e| e.fence_kind() == Some(kind))
    }

    /// Events satisfying an arbitrary predicate.
    pub fn events_where<F: Fn(&Event) -> bool>(&self, pred: F) -> EventSet {
        self.events.iter().filter(|e| pred(e)).map(|e| e.id).collect()
    }

    /// Reads with the given mode predicate.
    pub fn reads_with_mode<F: Fn(AccessMode) -> bool>(&self, pred: F) -> EventSet {
        self.events_where(|e| e.is_read() && e.mode().is_some_and(&pred))
    }

    /// Writes with the given mode predicate.
    pub fn writes_with_mode<F: Fn(AccessMode) -> bool>(&self, pred: F) -> EventSet {
        self.events_where(|e| e.is_write() && e.mode().is_some_and(&pred))
    }

    /// The `rmw` relation as a [`Relation`] (successful pairs only).
    pub fn rmw(&self) -> Relation {
        Relation::from_pairs(
            self.len(),
            self.rmw_pairs.iter().filter_map(|p| p.write.map(|w| (p.read, w))),
        )
    }

    /// Successful `rmw` pairs with the given tag.
    pub fn rmw_tagged(&self, tag: RmwTag) -> Relation {
        Relation::from_pairs(
            self.len(),
            self.rmw_pairs
                .iter()
                .filter(|p| p.tag == tag)
                .filter_map(|p| p.write.map(|w| (p.read, w))),
        )
    }

    /// Reads belonging to *any* RMW (successful or failed) with the tag.
    pub fn rmw_reads_tagged(&self, tag: RmwTag) -> EventSet {
        self.rmw_pairs.iter().filter(|p| p.tag == tag).map(|p| p.read).collect()
    }

    /// All RMW reads, successful or failed, regardless of tag.
    pub fn rmw_reads(&self) -> EventSet {
        self.rmw_pairs.iter().map(|p| p.read).collect()
    }

    /// Same-location restriction of `po` (`po|loc`).
    pub fn po_loc(&self) -> Relation {
        let mut r = Relation::empty(self.len());
        for (a, b) in self.po.iter_pairs() {
            if let (Some(la), Some(lb)) = (self.events[a.0].loc(), self.events[b.0].loc()) {
                if la == lb {
                    r.insert(a, b);
                }
            }
        }
        r
    }

    /// From-read: `fr ≜ rf⁻¹ ; co`.
    pub fn fr(&self) -> Relation {
        self.rf.inverse().compose(&self.co)
    }

    /// External reads-from: `rfe ≜ rf \ po`. Init writes are external to
    /// every thread, so init-rf edges stay in `rfe`.
    pub fn rfe(&self) -> Relation {
        self.rf.minus(&self.po)
    }

    /// Internal reads-from: `rfi ≜ rf ∩ po`.
    pub fn rfi(&self) -> Relation {
        self.rf.intersect(&self.po)
    }

    /// External coherence: `coe ≜ co \ po`.
    pub fn coe(&self) -> Relation {
        self.co.minus(&self.po)
    }

    /// External from-read: `fre ≜ fr \ po`.
    pub fn fre(&self) -> Relation {
        self.fr().minus(&self.po)
    }

    /// Checks structural well-formedness: every read has exactly one `rf`
    /// source writing the same location and value; `co` totally orders the
    /// writes of each location with the init write first; `po` is a strict
    /// order total per thread.
    pub fn is_well_formed(&self) -> bool {
        let n = self.len();
        // rf: one incoming edge per read, matching loc/val; sources are writes.
        let rf_inv = self.rf.inverse();
        for ev in &self.events {
            if ev.is_read() {
                let srcs: Vec<EventId> =
                    rf_inv.iter_pairs().filter(|(r, _)| *r == ev.id).map(|(_, w)| w).collect();
                if srcs.len() != 1 {
                    return false;
                }
                let w = &self.events[srcs[0].0];
                if !w.is_write() || w.loc() != ev.loc() || w.val() != ev.val() {
                    return false;
                }
            }
        }
        for (a, b) in self.rf.iter_pairs() {
            if !self.events[a.0].is_write() || !self.events[b.0].is_read() {
                return false;
            }
        }
        // co per location.
        let mut by_loc: BTreeMap<Loc, EventSet> = BTreeMap::new();
        for ev in &self.events {
            if ev.is_write() {
                by_loc.entry(ev.loc().unwrap()).or_default().insert(ev.id);
            }
        }
        for ws in by_loc.values() {
            if !self.co.is_strict_total_order_on(*ws) {
                return false;
            }
        }
        // co pairs only relate same-location writes.
        for (a, b) in self.co.iter_pairs() {
            let (ea, eb) = (&self.events[a.0], &self.events[b.0]);
            if !ea.is_write() || !eb.is_write() || ea.loc() != eb.loc() {
                return false;
            }
            // init writes are co-minimal.
            if eb.is_init() {
                return false;
            }
        }
        // po: irreflexive, transitive, relates only same-thread events.
        if !self.po.is_irreflexive() {
            return false;
        }
        for (a, b) in self.po.iter_pairs() {
            let (ea, eb) = (&self.events[a.0], &self.events[b.0]);
            if ea.tid.is_none() || ea.tid != eb.tid {
                return false;
            }
        }
        let _ = n;
        true
    }

    /// The behavior of the execution (paper, §5.1): the final value of every
    /// location — the value of each location's co-maximal write.
    pub fn behavior(&self) -> BTreeMap<Loc, Val> {
        let mut out = BTreeMap::new();
        for ev in &self.events {
            if ev.is_write() {
                let has_successor = self.co.iter_pairs().any(|(a, _)| a == ev.id);
                if !has_successor {
                    out.insert(ev.loc().unwrap(), ev.val().unwrap());
                }
            }
        }
        out
    }

    /// Renders the execution as a compact multi-line string, useful in test
    /// failure messages.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "  {e}");
        }
        let _ = writeln!(s, "  rf: {:?}", self.rf);
        let _ = writeln!(s, "  co: {:?}", self.co);
        s
    }
}

/// Builder used by enumeration code to assemble executions incrementally.
#[derive(Debug, Clone, Default)]
pub struct ExecutionBuilder {
    events: Vec<Event>,
    po_edges: Vec<(EventId, EventId)>,
    rmw_pairs: Vec<RmwPair>,
    addr_edges: Vec<(EventId, EventId)>,
    data_edges: Vec<(EventId, EventId)>,
    ctrl_edges: Vec<(EventId, EventId)>,
}

impl ExecutionBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event, returning its id.
    pub fn push_event(&mut self, tid: Option<crate::event::Tid>, kind: EventKind) -> EventId {
        let id = EventId(self.events.len());
        self.events.push(Event { id, tid, kind });
        id
    }

    /// Adds a `po` edge.
    pub fn push_po(&mut self, a: EventId, b: EventId) {
        self.po_edges.push((a, b));
    }

    /// Records an RMW pair.
    pub fn push_rmw(&mut self, pair: RmwPair) {
        self.rmw_pairs.push(pair);
    }

    /// Adds an address-dependency edge.
    pub fn push_addr(&mut self, a: EventId, b: EventId) {
        self.addr_edges.push((a, b));
    }

    /// Adds a data-dependency edge.
    pub fn push_data(&mut self, a: EventId, b: EventId) {
        self.data_edges.push((a, b));
    }

    /// Adds a control-dependency edge.
    pub fn push_ctrl(&mut self, a: EventId, b: EventId) {
        self.ctrl_edges.push((a, b));
    }

    /// Finishes the event/relation skeleton; `rf` and `co` start empty and
    /// are filled in by the enumerator.
    pub fn build(self) -> Execution {
        let n = self.events.len();
        Execution {
            events: self.events,
            po: Relation::from_pairs(n, self.po_edges).transitive_closure(),
            rf: Relation::empty(n),
            co: Relation::empty(n),
            rmw_pairs: self.rmw_pairs,
            addr: Relation::from_pairs(n, self.addr_edges),
            data: Relation::from_pairs(n, self.data_edges),
            ctrl: Relation::from_pairs(n, self.ctrl_edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tid;

    /// Builds the classic MP skeleton:
    /// init X=0, Y=0; T0: W X=1; W Y=1 ; T1: R Y=v1; R X=v2.
    fn mp(v1: u64, v2: u64) -> Execution {
        let mut b = ExecutionBuilder::new();
        let ix = b.push_event(
            None,
            EventKind::Write { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        let iy = b.push_event(
            None,
            EventKind::Write { loc: Loc(1), val: Val(0), mode: AccessMode::Plain },
        );
        let wx = b.push_event(
            Some(Tid(0)),
            EventKind::Write { loc: Loc(0), val: Val(1), mode: AccessMode::Plain },
        );
        let wy = b.push_event(
            Some(Tid(0)),
            EventKind::Write { loc: Loc(1), val: Val(1), mode: AccessMode::Plain },
        );
        let ry = b.push_event(
            Some(Tid(1)),
            EventKind::Read { loc: Loc(1), val: Val(v1), mode: AccessMode::Plain },
        );
        let rx = b.push_event(
            Some(Tid(1)),
            EventKind::Read { loc: Loc(0), val: Val(v2), mode: AccessMode::Plain },
        );
        b.push_po(wx, wy);
        b.push_po(ry, rx);
        let mut x = b.build();
        // rf
        x.rf.insert(if v1 == 1 { wy } else { iy }, ry);
        x.rf.insert(if v2 == 1 { wx } else { ix }, rx);
        // co: init first
        x.co.insert(ix, wx);
        x.co.insert(iy, wy);
        x
    }

    #[test]
    fn well_formedness() {
        let x = mp(1, 0);
        assert!(x.is_well_formed(), "{}", x.dump());
    }

    #[test]
    fn ill_formed_rf_value_mismatch() {
        let mut x = mp(1, 0);
        // Point the R Y=1 at the init write (value 0): mismatch.
        let ry = EventId(4);
        let wy = EventId(3);
        let iy = EventId(1);
        x.rf.remove(wy, ry);
        x.rf.insert(iy, ry);
        assert!(!x.is_well_formed());
    }

    #[test]
    fn derived_relations() {
        let x = mp(1, 0);
        // R X=0 reads init; the non-init write to X is co-after, so fr holds.
        let rx = EventId(5);
        let wx = EventId(2);
        assert!(x.fr().contains(rx, wx));
        assert!(x.fre().contains(rx, wx));
        // rf of Y is cross-thread: external.
        let wy = EventId(3);
        let ry = EventId(4);
        assert!(x.rfe().contains(wy, ry));
        assert!(x.rfi().is_empty());
        assert!(x.po_loc().is_empty()); // different locations within threads
    }

    #[test]
    fn behavior_takes_co_maxima() {
        let x = mp(1, 0);
        let b = x.behavior();
        assert_eq!(b[&Loc(0)], Val(1));
        assert_eq!(b[&Loc(1)], Val(1));
    }

    #[test]
    fn event_set_queries() {
        let x = mp(1, 1);
        assert_eq!(x.reads().len(), 2);
        assert_eq!(x.writes().len(), 4);
        assert_eq!(x.accesses().len(), 6);
        assert!(x.fences(FenceKind::MFence).is_empty());
    }
}
