//! Consistency models: SC, x86-TSO, the TCG IR model and Arm (Armed-Cats).
//!
//! Each model is a predicate on [`Execution`]s. An execution that satisfies
//! every axiom of a model `M` is *`M`-consistent*; the set of behaviors of a
//! program under `M` is the set of behaviors of its consistent executions
//! (paper, §5.1).
//!
//! All four models share the two common axioms (§5.2):
//!
//! * **sc-per-loc** (coherence): `(po|loc ∪ rf ∪ co ∪ fr)⁺` is irreflexive.
//! * **atomicity**: `rmw ∩ (fre ; coe) = ∅`.
//!
//! and add one model-specific global-ordering axiom each.

mod arm;
mod sc;
mod tcg;
mod x86;

pub use arm::{Arm, ArmVariant};
pub use sc::Sc;
pub use tcg::TcgIr;
pub use x86::X86Tso;

use crate::execution::Execution;
use crate::relation::Relation;

/// A memory consistency model: a named consistency predicate on executions.
pub trait MemoryModel {
    /// Human-readable model name (used in reports and error messages).
    fn name(&self) -> &str;

    /// `true` if the (well-formed) execution satisfies every axiom.
    fn is_consistent(&self, x: &Execution) -> bool;
}

/// The **sc-per-loc** axiom: `(po|loc ∪ rf ∪ co ∪ fr)⁺` irreflexive.
pub fn sc_per_loc(x: &Execution) -> bool {
    x.po_loc().union(&x.rf).union(&x.co).union(&x.fr()).is_acyclic()
}

/// The **atomicity** axiom: `rmw ∩ (fre ; coe) = ∅`.
///
/// For each successful RMW pair `(r, w)` there must be no write `w'` with
/// `fre(r, w')` and `coe(w', w)` — i.e. no foreign write slips between the
/// read and the write of the atomic update.
pub fn atomicity(x: &Execution) -> bool {
    let bad = x.fre().compose(&x.coe());
    x.rmw().intersect(&bad).is_empty()
}

/// Convenience: both common axioms.
pub fn common_axioms(x: &Execution) -> bool {
    sc_per_loc(x) && atomicity(x)
}

/// Helper shared by the models: `[a] ; po ; [f] ; po ; [b]` — events of
/// class `a` ordered before events of class `b` by an intermediate fence
/// event of set `f`.
pub(crate) fn fence_order(
    x: &Execution,
    a: crate::relation::EventSet,
    f: crate::relation::EventSet,
    b: crate::relation::EventSet,
) -> Relation {
    x.po.restrict_domain(a)
        .restrict_codomain(f)
        .compose(&x.po.restrict_domain(f).restrict_codomain(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessMode, EventKind, Loc, RmwTag, Tid, Val};
    use crate::execution::{ExecutionBuilder, RmwPair};

    /// init X=0; T0: RMW(X: 0→1); T1: W X=2. With co = init < W2 < Wrmw but
    /// rf(init, Rrmw): atomicity violated (W2 intervenes).
    #[test]
    fn atomicity_detects_intervening_write() {
        let mut b = ExecutionBuilder::new();
        let ix = b.push_event(
            None,
            EventKind::Write { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        let r = b.push_event(
            Some(Tid(0)),
            EventKind::Read { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        let w = b.push_event(
            Some(Tid(0)),
            EventKind::Write { loc: Loc(0), val: Val(1), mode: AccessMode::Plain },
        );
        let w2 = b.push_event(
            Some(Tid(1)),
            EventKind::Write { loc: Loc(0), val: Val(2), mode: AccessMode::Plain },
        );
        b.push_po(r, w);
        b.push_rmw(RmwPair { read: r, write: Some(w), tag: RmwTag::X86 });
        let mut x = b.build();
        x.rf.insert(ix, r);
        // co: ix < w2 < w
        x.co.insert(ix, w2);
        x.co.insert(ix, w);
        x.co.insert(w2, w);
        assert!(x.is_well_formed(), "{}", x.dump());
        assert!(!atomicity(&x));
        // Flipping co so the RMW's write immediately follows its read source
        // restores atomicity: co = ix < w < w2.
        let mut y = x.clone();
        y.co = crate::relation::Relation::from_pairs(y.len(), [(ix, w), (ix, w2), (w, w2)]);
        assert!(atomicity(&y));
    }

    /// Coherence: W X=1 po-before R X=0 reading init is a coherence cycle.
    #[test]
    fn sc_per_loc_detects_stale_read_after_own_write() {
        let mut b = ExecutionBuilder::new();
        let ix = b.push_event(
            None,
            EventKind::Write { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        let w = b.push_event(
            Some(Tid(0)),
            EventKind::Write { loc: Loc(0), val: Val(1), mode: AccessMode::Plain },
        );
        let r = b.push_event(
            Some(Tid(0)),
            EventKind::Read { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        b.push_po(w, r);
        let mut x = b.build();
        x.rf.insert(ix, r);
        x.co.insert(ix, w);
        assert!(x.is_well_formed());
        assert!(!sc_per_loc(&x)); // r fr w (reads init, w co-after), but w po r
    }
}
