//! The TCG IR concurrency model proposed by the paper (§5.3, Fig. 6).
//!
//! ```text
//! (GOrd)  ghb is irreflexive, where
//!         ghb ≜ (ord ∪ rfe ∪ coe ∪ fre)⁺
//!         ord ≜ [R];po;[Frr];po;[R]    ∪ [R];po;[Frw];po;[W]
//!             ∪ [R];po;[Frm];po;[R∪W]  ∪ [W];po;[Fwr];po;[R]
//!             ∪ [W];po;[Fww];po;[W]    ∪ [W];po;[Fwm];po;[R∪W]
//!             ∪ [R∪W];po;[Fmr];po;[R]  ∪ [R∪W];po;[Fmw];po;[W]
//!             ∪ [R∪W];po;[Fmm];po;[R∪W]
//!             ∪ po;[Wsc ∪ dom(rmw)] ∪ [Rsc ∪ codom(rmw)];po
//!             ∪ po;[Fsc] ∪ [Fsc];po
//! ```
//!
//! TCG RMWs follow SC semantics: a successful RMW generates an
//! `[Rsc];rmw;[Wsc]` pair, a failed RMW a lone `Rsc`. Plain `ld`/`st`
//! accesses are unordered unless a fence intervenes, which is what licenses
//! TCG's reordering and false-dependency-elimination optimizations (§5.4).

use super::{common_axioms, fence_order, MemoryModel};
use crate::event::{AccessMode, FenceKind};
use crate::execution::Execution;
use crate::relation::Relation;

/// The TCG IR consistency model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcgIr;

impl TcgIr {
    /// Creates the model.
    pub fn new() -> TcgIr {
        TcgIr
    }

    /// The `ord` relation of Fig. 6.
    pub fn ord(x: &Execution) -> Relation {
        let r = x.reads();
        let w = x.writes();
        let m = r.union(w);
        let mut ord = Relation::empty(x.len());
        for kind in FenceKind::TCG_ALL {
            if kind == FenceKind::Fsc {
                continue; // handled below: Fsc orders *all* events
            }
            if let Some((pre, post)) = kind.tcg_order() {
                let pre_set = class_set(x, pre);
                let post_set = class_set(x, post);
                ord = ord.union(&fence_order(x, pre_set, x.fences(kind), post_set));
            }
        }
        // RMW events: SC semantics. po;[Wsc ∪ dom(rmw)] ∪ [Rsc ∪ codom(rmw)];po.
        let rmw = x.rmw();
        let rsc = x.reads_with_mode(|mo| mo == AccessMode::Sc);
        let wsc = x.writes_with_mode(|mo| mo == AccessMode::Sc);
        ord = ord.union(&x.po.restrict_codomain(wsc.union(rmw.domain())));
        ord = ord.union(&x.po.restrict_domain(rsc.union(rmw.codomain())));
        // Fsc fences: ordered with everything.
        let fsc = x.fences(FenceKind::Fsc);
        ord = ord.union(&x.po.restrict_codomain(fsc));
        ord = ord.union(&x.po.restrict_domain(fsc));
        let _ = m;
        ord
    }
}

fn class_set(x: &Execution, class: crate::event::AccessClass) -> crate::relation::EventSet {
    let mut s = crate::relation::EventSet::EMPTY;
    if class.reads {
        s = s.union(x.reads());
    }
    if class.writes {
        s = s.union(x.writes());
    }
    s
}

impl MemoryModel for TcgIr {
    fn name(&self) -> &str {
        "TCG-IR"
    }

    fn is_consistent(&self, x: &Execution) -> bool {
        if !common_axioms(x) {
            return false;
        }
        let ghb = Self::ord(x).union(&x.rfe()).union(&x.coe()).union(&x.fre());
        ghb.is_acyclic()
    }
}
