//! The x86-TSO model, as summarized in the paper (§5.2).
//!
//! ```text
//! (GHB)  (implied ∪ ppo ∪ rfe ∪ fr ∪ co)⁺ is irreflexive, where
//!        ppo     ≜ ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
//!        implied ≜ po;[At ∪ F] ∪ [At ∪ F];po
//!        At      ≜ dom(rmw) ∪ codom(rmw)
//! ```
//!
//! `ppo` forbids every reordering except write→read; a successful RMW (or an
//! `MFENCE`) restores even that ordering via `implied`.

use super::{common_axioms, MemoryModel};
use crate::event::FenceKind;
use crate::execution::Execution;
use crate::relation::Relation;

/// The x86-TSO consistency model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct X86Tso;

impl X86Tso {
    /// Creates the model.
    pub fn new() -> X86Tso {
        X86Tso
    }

    /// Preserved program order: all po pairs except write→read.
    pub fn ppo(x: &Execution) -> Relation {
        let r = x.reads();
        let w = x.writes();
        let ww = x.po.restrict_domain(w).restrict_codomain(w);
        let rw = x.po.restrict_domain(r).restrict_codomain(w);
        let rr = x.po.restrict_domain(r).restrict_codomain(r);
        ww.union(&rw).union(&rr)
    }

    /// The `implied` relation: ordering induced by `MFENCE` events and by
    /// the read/write events of successful RMWs.
    pub fn implied(x: &Execution) -> Relation {
        let rmw = x.rmw();
        let at = rmw.domain().union(rmw.codomain());
        let f = x.fences(FenceKind::MFence);
        let atf = at.union(f);
        x.po.restrict_codomain(atf).union(&x.po.restrict_domain(atf))
    }
}

impl MemoryModel for X86Tso {
    fn name(&self) -> &str {
        "x86-TSO"
    }

    fn is_consistent(&self, x: &Execution) -> bool {
        if !common_axioms(x) {
            return false;
        }
        let ghb = Self::implied(x).union(&Self::ppo(x)).union(&x.rfe()).union(&x.fr()).union(&x.co);
        ghb.is_acyclic()
    }
}
