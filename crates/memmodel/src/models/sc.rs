//! Sequential consistency, used as a reference point in tests.

use super::{common_axioms, MemoryModel};
use crate::execution::Execution;

/// Lamport sequential consistency: `(po ∪ rf ∪ co ∪ fr)` acyclic.
///
/// Under SC every execution is an interleaving of the threads' operations;
/// weak behaviors like the `MP` outcome `a = 1, b = 0` are forbidden.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sc;

impl Sc {
    /// Creates the model.
    pub fn new() -> Sc {
        Sc
    }
}

impl MemoryModel for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn is_consistent(&self, x: &Execution) -> bool {
        common_axioms(x) && x.po.union(&x.rf).union(&x.co).union(&x.fr()).is_acyclic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessMode, EventKind, Loc, Tid, Val};
    use crate::execution::ExecutionBuilder;

    /// The MP weak outcome (a = 1, b = 0) must be SC-inconsistent.
    #[test]
    fn sc_forbids_mp_weak_outcome() {
        let mut b = ExecutionBuilder::new();
        let ix = b.push_event(
            None,
            EventKind::Write { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        let iy = b.push_event(
            None,
            EventKind::Write { loc: Loc(1), val: Val(0), mode: AccessMode::Plain },
        );
        let wx = b.push_event(
            Some(Tid(0)),
            EventKind::Write { loc: Loc(0), val: Val(1), mode: AccessMode::Plain },
        );
        let wy = b.push_event(
            Some(Tid(0)),
            EventKind::Write { loc: Loc(1), val: Val(1), mode: AccessMode::Plain },
        );
        let ry = b.push_event(
            Some(Tid(1)),
            EventKind::Read { loc: Loc(1), val: Val(1), mode: AccessMode::Plain },
        );
        let rx = b.push_event(
            Some(Tid(1)),
            EventKind::Read { loc: Loc(0), val: Val(0), mode: AccessMode::Plain },
        );
        b.push_po(wx, wy);
        b.push_po(ry, rx);
        let mut x = b.build();
        x.rf.insert(wy, ry);
        x.rf.insert(ix, rx);
        x.co.insert(ix, wx);
        x.co.insert(iy, wy);
        assert!(x.is_well_formed());
        assert!(!Sc.is_consistent(&x));
    }
}
