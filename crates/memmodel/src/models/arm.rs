//! The Arm (Armed-Cats) model, in the fragment covering the paper's
//! primitives (§5.2, Fig. 5) — in both the *original* form and the
//! *corrected* form proposed by the paper and adopted upstream.
//!
//! ```text
//! (external)  ob is irreflexive, where
//!             ob  ≜ (rfe ∪ coe ∪ fre ∪ lob)⁺
//!             lob ≜ (lws ∪ dob ∪ aob ∪ bob)⁺
//! ```
//!
//! The `bob` component differs between variants: the paper discovered (§3.3)
//! that the original model does not make a successful `CASAL`
//! (`[A];amo;[L]`) act as a full barrier — the SBAL litmus test exhibits a
//! store-buffering outcome that x86 forbids — and proposed replacing the
//! `po;[A];amo;[L];po` clause with
//! `po;[dom([A];amo;[L])] ∪ [codom([A];amo;[L])];po`, which was accepted
//! upstream (herdtools PR #322).

use super::{common_axioms, MemoryModel};
use crate::event::{FenceKind, RmwTag};
use crate::execution::Execution;
use crate::relation::{EventSet, Relation};

/// Which version of the Armed-Cats `bob` to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmVariant {
    /// The model as published before the paper's fix: `po;[A];amo;[L];po`.
    Original,
    /// The strengthened model: a successful `RMW1_AL` is a full barrier.
    Corrected,
}

/// The Arm consistency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arm {
    variant: ArmVariant,
}

impl Arm {
    /// The original (pre-fix) Armed-Cats model.
    pub fn original() -> Arm {
        Arm { variant: ArmVariant::Original }
    }

    /// The corrected model with the paper's `casal` strengthening.
    pub fn corrected() -> Arm {
        Arm { variant: ArmVariant::Corrected }
    }

    /// The variant in use.
    pub fn variant(&self) -> ArmVariant {
        self.variant
    }

    /// Local write successor: `lws ≜ po|loc ; [W]` restricted to accesses —
    /// any access is ordered before a po-later same-location write.
    pub fn lws(x: &Execution) -> Relation {
        x.po_loc().restrict_codomain(x.writes())
    }

    /// Dependency-ordered-before. Covers the dependency shapes our programs
    /// can produce: `addr ∪ data ∪ ctrl;[W] ∪ addr;po;[W] ∪ (addr ∪ data);rfi`.
    pub fn dob(x: &Execution) -> Relation {
        let w = x.writes();
        let ad = x.addr.union(&x.data);
        x.addr
            .union(&x.data)
            .union(&x.ctrl.restrict_codomain(w))
            .union(&x.addr.compose(&x.po).restrict_codomain(w))
            .union(&ad.compose(&x.rfi()))
    }

    /// Atomic-ordered-before: `aob ≜ rmw ∪ [codom(rmw)];rfi;[A ∪ Q]`.
    pub fn aob(x: &Execution) -> Relation {
        let rmw = x.rmw();
        let acq = x.reads_with_mode(|m| m.is_acquire() || m.is_acquire_pc());
        rmw.union(&x.rfi().restrict_domain(rmw.codomain()).restrict_codomain(acq))
    }

    /// Barrier-ordered-before for the chosen variant.
    pub fn bob(x: &Execution, variant: ArmVariant) -> Relation {
        let r = x.reads();
        let w = x.writes();
        let acq = x.reads_with_mode(|m| m.is_acquire());
        let acq_pc = x.reads_with_mode(|m| m.is_acquire_pc());
        let rel = x.writes_with_mode(|m| m.is_release());

        let full = x.fences(FenceKind::DmbFf);
        let ld = x.fences(FenceKind::DmbLd);
        let st = x.fences(FenceKind::DmbSt);

        // po;[F];po
        let mut bob = x.po.restrict_codomain(full).compose(&x.po.restrict_domain(full));
        // [R];po;[Fld];po
        bob = bob.union(
            &x.po.restrict_domain(r).restrict_codomain(ld).compose(&x.po.restrict_domain(ld)),
        );
        // [W];po;[Fst];po;[W]
        bob = bob.union(
            &x.po
                .restrict_domain(w)
                .restrict_codomain(st)
                .compose(&x.po.restrict_domain(st).restrict_codomain(w)),
        );
        // [A ∪ Q];po
        bob = bob.union(&x.po.restrict_domain(acq.union(acq_pc)));
        // po;[L]
        bob = bob.union(&x.po.restrict_codomain(rel));
        // [L];po;[A]
        bob = bob.union(&x.po.restrict_domain(rel).restrict_codomain(acq));

        // The amo clause: aal ≜ [A];amo;[L].
        let amo = x.rmw_tagged(RmwTag::Amo);
        let aal = aal_pairs(x, &amo);
        match variant {
            ArmVariant::Original => {
                // po;[A];amo;[L];po — ordering only *through* the RMW:
                // p → q whenever p po r, aal(r, w), w po q.
                let through = x.po.compose(&aal).compose(&x.po);
                bob = bob.union(&through);
            }
            ArmVariant::Corrected => {
                // po;[dom(aal)] ∪ [codom(aal)];po — the RMW's own events act
                // as the barrier end-points.
                bob = bob.union(&x.po.restrict_codomain(aal.domain()));
                bob = bob.union(&x.po.restrict_domain(aal.codomain()));
            }
        }
        bob
    }

    /// Locally-ordered-before: `(lws ∪ dob ∪ aob ∪ bob)⁺`.
    pub fn lob(x: &Execution, variant: ArmVariant) -> Relation {
        Self::lws(x)
            .union(&Self::dob(x))
            .union(&Self::aob(x))
            .union(&Self::bob(x, variant))
            .transitive_closure()
    }
}

/// `[A];amo;[L]`: successful single-instruction RMWs whose read is acquire
/// and whose write is release (e.g. `CASAL`).
fn aal_pairs(x: &Execution, amo: &Relation) -> Relation {
    let acq: EventSet = x.reads_with_mode(|m| m.is_acquire());
    let rel: EventSet = x.writes_with_mode(|m| m.is_release());
    amo.restrict_domain(acq).restrict_codomain(rel)
}

impl MemoryModel for Arm {
    fn name(&self) -> &str {
        match self.variant {
            ArmVariant::Original => "Arm (Armed-Cats, original)",
            ArmVariant::Corrected => "Arm (Armed-Cats, corrected)",
        }
    }

    fn is_consistent(&self, x: &Execution) -> bool {
        if !common_axioms(x) {
            return false;
        }
        let ob = Self::lob(x, self.variant).union(&x.rfe()).union(&x.coe()).union(&x.fre());
        ob.is_acyclic()
    }
}
