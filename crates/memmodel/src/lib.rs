//! # risotto-memmodel
//!
//! Axiomatic weak-memory-model framework for the Risotto reproduction.
//!
//! This crate provides the formal backbone of the project: event graphs
//! (`po`/`rf`/`co`/dependencies), the `cat`-style relational algebra, and
//! executable consistency checkers for the four models the paper reasons
//! about —
//!
//! * [`models::Sc`] — sequential consistency (reference),
//! * [`models::X86Tso`] — the x86-TSO model (GHB axiom),
//! * [`models::TcgIr`] — the paper's proposed TCG IR model (GOrd axiom,
//!   Fig. 6),
//! * [`models::Arm`] — Armed-Cats, in both the *original* form and the
//!   *corrected* form whose `casal` strengthening the paper contributed
//!   upstream (Fig. 5).
//!
//! Programs and candidate-execution enumeration live in `risotto-litmus`;
//! this crate only knows about finished executions.
//!
//! ## Example
//!
//! ```
//! use risotto_memmodel::{
//!     AccessMode, EventKind, ExecutionBuilder, Loc, MemoryModel, Sc, Tid, Val, X86Tso,
//! };
//!
//! // The store-buffering (SB) weak outcome: both threads read 0.
//! let mut b = ExecutionBuilder::new();
//! let ix = b.push_event(None, EventKind::Write { loc: Loc(0), val: Val(0), mode: AccessMode::Plain });
//! let iy = b.push_event(None, EventKind::Write { loc: Loc(1), val: Val(0), mode: AccessMode::Plain });
//! let wx = b.push_event(Some(Tid(0)), EventKind::Write { loc: Loc(0), val: Val(1), mode: AccessMode::Plain });
//! let ry = b.push_event(Some(Tid(0)), EventKind::Read { loc: Loc(1), val: Val(0), mode: AccessMode::Plain });
//! let wy = b.push_event(Some(Tid(1)), EventKind::Write { loc: Loc(1), val: Val(1), mode: AccessMode::Plain });
//! let rx = b.push_event(Some(Tid(1)), EventKind::Read { loc: Loc(0), val: Val(0), mode: AccessMode::Plain });
//! b.push_po(wx, ry);
//! b.push_po(wy, rx);
//! let mut x = b.build();
//! x.rf.insert(iy, ry);
//! x.rf.insert(ix, rx);
//! x.co.insert(ix, wx);
//! x.co.insert(iy, wy);
//!
//! assert!(x.is_well_formed());
//! assert!(X86Tso::new().is_consistent(&x)); // TSO allows SB
//! assert!(!Sc::new().is_consistent(&x));    // SC forbids it
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod execution;
pub mod models;
mod relation;

pub use event::{
    AccessClass, AccessMode, Event, EventId, EventKind, FenceKind, Loc, RmwTag, Tid, Val,
};
pub use execution::{Execution, ExecutionBuilder, RmwPair};
pub use models::{
    atomicity, common_axioms, sc_per_loc, Arm, ArmVariant, MemoryModel, Sc, TcgIr, X86Tso,
};
pub use relation::{EventSet, Relation, MAX_EVENTS};
