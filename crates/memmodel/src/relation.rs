//! Binary relations and sets over event ids.
//!
//! Axiomatic models are phrased in the relational `cat` style (paper, §5.1):
//! relations are composed (`;`), united (`∪`), inverted (`⁻¹`), restricted
//! by sets (`[A];r;[B]`) and closed transitively (`⁺`), and axioms demand
//! acyclicity or irreflexivity. This module implements that algebra with a
//! dense bit-matrix representation: executions in this crate hold at most 64
//! events, so each row is a single `u64`.

use crate::event::EventId;
use std::fmt;

/// The maximum number of events in an execution.
pub const MAX_EVENTS: usize = 64;

/// A set of events, represented as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventSet(pub u64);

impl EventSet {
    /// The empty set.
    pub const EMPTY: EventSet = EventSet(0);

    /// The set containing exactly `id`.
    pub fn singleton(id: EventId) -> EventSet {
        EventSet(1 << id.0)
    }

    /// Builds a set from an iterator of ids.
    pub fn from_ids<I: IntoIterator<Item = EventId>>(ids: I) -> EventSet {
        let mut s = EventSet::EMPTY;
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Inserts `id`.
    pub fn insert(&mut self, id: EventId) {
        debug_assert!(id.0 < MAX_EVENTS);
        self.0 |= 1 << id.0;
    }

    /// Membership test.
    pub fn contains(&self, id: EventId) -> bool {
        self.0 >> id.0 & 1 == 1
    }

    /// Set union.
    pub fn union(self, other: EventSet) -> EventSet {
        EventSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: EventSet) -> EventSet {
        EventSet(self.0 & other.0)
    }

    /// Set difference.
    pub fn minus(self, other: EventSet) -> EventSet {
        EventSet(self.0 & !other.0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over member ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(EventId(i))
            }
        })
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        EventSet::from_ids(iter)
    }
}

/// A binary relation over `n` events, stored as one `u64` bit-row per
/// source event: bit `j` of `rows[i]` means `(i, j) ∈ r`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    rows: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS`.
    pub fn empty(n: usize) -> Relation {
        assert!(n <= MAX_EVENTS, "execution too large: {n} > {MAX_EVENTS} events");
        Relation { n, rows: vec![0; n] }
    }

    /// Builds a relation from explicit pairs.
    pub fn from_pairs<I: IntoIterator<Item = (EventId, EventId)>>(n: usize, pairs: I) -> Relation {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// The identity relation restricted to `set` — the `[A]` of cat syntax.
    pub fn identity_on(n: usize, set: EventSet) -> Relation {
        let mut r = Relation::empty(n);
        for id in set.iter() {
            if id.0 < n {
                r.insert(id, id);
            }
        }
        r
    }

    /// The full cross product `a × b`.
    pub fn cross(n: usize, a: EventSet, b: EventSet) -> Relation {
        let mut r = Relation::empty(n);
        for i in a.iter() {
            if i.0 < n {
                r.rows[i.0] |= b.0 & mask(n);
            }
        }
        r
    }

    /// Number of events the relation ranges over.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Adds the pair `(a, b)`.
    pub fn insert(&mut self, a: EventId, b: EventId) {
        debug_assert!(a.0 < self.n && b.0 < self.n);
        self.rows[a.0] |= 1 << b.0;
    }

    /// Removes the pair `(a, b)`.
    pub fn remove(&mut self, a: EventId, b: EventId) {
        self.rows[a.0] &= !(1 << b.0);
    }

    /// Membership test.
    pub fn contains(&self, a: EventId, b: EventId) -> bool {
        a.0 < self.n && b.0 < self.n && self.rows[a.0] >> b.0 & 1 == 1
    }

    /// `true` if the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&r| r == 0)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Iterates over all pairs.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.rows.iter().enumerate().flat_map(|(i, &row)| {
            EventSet(row).iter().map(move |j| (EventId(i), j)).collect::<Vec<_>>()
        })
    }

    /// Relation union.
    pub fn union(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.n, other.n);
        Relation {
            n: self.n,
            rows: self.rows.iter().zip(&other.rows).map(|(a, b)| a | b).collect(),
        }
    }

    /// Relation intersection.
    pub fn intersect(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.n, other.n);
        Relation {
            n: self.n,
            rows: self.rows.iter().zip(&other.rows).map(|(a, b)| a & b).collect(),
        }
    }

    /// Relation difference (`r \ s`).
    pub fn minus(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.n, other.n);
        Relation {
            n: self.n,
            rows: self.rows.iter().zip(&other.rows).map(|(a, b)| a & !b).collect(),
        }
    }

    /// Relational composition `self ; other`.
    pub fn compose(&self, other: &Relation) -> Relation {
        debug_assert_eq!(self.n, other.n);
        let mut out = Relation::empty(self.n);
        for i in 0..self.n {
            let mut row = 0u64;
            let mut mids = self.rows[i];
            while mids != 0 {
                let k = mids.trailing_zeros() as usize;
                mids &= mids - 1;
                row |= other.rows[k];
            }
            out.rows[i] = row;
        }
        out
    }

    /// The inverse relation `r⁻¹`.
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter_pairs() {
            out.insert(b, a);
        }
        out
    }

    /// Domain restriction `[set] ; self`.
    pub fn restrict_domain(&self, set: EventSet) -> Relation {
        let mut out = self.clone();
        for i in 0..self.n {
            if !set.contains(EventId(i)) {
                out.rows[i] = 0;
            }
        }
        out
    }

    /// Codomain restriction `self ; [set]`.
    pub fn restrict_codomain(&self, set: EventSet) -> Relation {
        let m = set.0 & mask(self.n);
        Relation { n: self.n, rows: self.rows.iter().map(|r| r & m).collect() }
    }

    /// The domain of the relation (`dom(r)`).
    pub fn domain(&self) -> EventSet {
        let mut s = EventSet::EMPTY;
        for (i, &row) in self.rows.iter().enumerate() {
            if row != 0 {
                s.insert(EventId(i));
            }
        }
        s
    }

    /// The codomain of the relation (`codom(r)` / range).
    pub fn codomain(&self) -> EventSet {
        EventSet(self.rows.iter().fold(0, |acc, r| acc | r))
    }

    /// Transitive closure `r⁺`, computed by iterated squaring over bit rows.
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        loop {
            let next = out.union(&out.compose(&out));
            if next == out {
                return out;
            }
            out = next;
        }
    }

    /// Reflexive-transitive closure `r*`.
    pub fn reflexive_transitive_closure(&self) -> Relation {
        let mut out = self.transitive_closure();
        for i in 0..self.n {
            out.insert(EventId(i), EventId(i));
        }
        out
    }

    /// `true` if no pair `(e, e)` is in the relation.
    pub fn is_irreflexive(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, &row)| row >> i & 1 == 0)
    }

    /// `true` if the transitive closure is irreflexive — the `acyclic`
    /// predicate of cat models.
    pub fn is_acyclic(&self) -> bool {
        self.transitive_closure().is_irreflexive()
    }

    /// `true` if the relation, restricted to `set`, totally orders `set`
    /// (strict total order: irreflexive, transitive, and any two distinct
    /// members are related one way).
    pub fn is_strict_total_order_on(&self, set: EventSet) -> bool {
        let r = self.restrict_domain(set).restrict_codomain(set);
        if !r.is_irreflexive() || r != r.compose(&r).union(&r) {
            // not transitive (closure adds pairs) — recompute precisely:
            let tc = r.transitive_closure();
            if tc != r {
                return false;
            }
        }
        for a in set.iter() {
            for b in set.iter() {
                if a != b && !r.contains(a, b) && !r.contains(b, a) {
                    return false;
                }
            }
        }
        r.is_irreflexive()
    }
}

fn mask(n: usize) -> u64 {
    if n == MAX_EVENTS {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} events, {{", self.n)?;
        let mut first = true;
        for (a, b) in self.iter_pairs() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "({},{})", a.0, b.0)?;
        }
        write!(f, "}})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EventId {
        EventId(i)
    }

    #[test]
    fn set_basics() {
        let mut s = EventSet::EMPTY;
        assert!(s.is_empty());
        s.insert(e(3));
        s.insert(e(5));
        assert_eq!(s.len(), 2);
        assert!(s.contains(e(3)));
        assert!(!s.contains(e(4)));
        let t = EventSet::from_ids([e(5), e(7)]);
        assert_eq!(s.union(t).len(), 3);
        assert_eq!(s.intersect(t).len(), 1);
        assert_eq!(s.minus(t), EventSet::singleton(e(3)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![e(3), e(5)]);
    }

    #[test]
    fn compose_and_closure() {
        let r = Relation::from_pairs(4, [(e(0), e(1)), (e(1), e(2)), (e(2), e(3))]);
        let rr = r.compose(&r);
        assert!(rr.contains(e(0), e(2)));
        assert!(rr.contains(e(1), e(3)));
        assert!(!rr.contains(e(0), e(1)));
        let tc = r.transitive_closure();
        assert!(tc.contains(e(0), e(3)));
        assert_eq!(tc.len(), 6);
        assert!(tc.is_irreflexive());
        assert!(r.is_acyclic());
    }

    #[test]
    fn cycle_detection() {
        let r = Relation::from_pairs(3, [(e(0), e(1)), (e(1), e(2)), (e(2), e(0))]);
        assert!(!r.is_acyclic());
        assert!(r.is_irreflexive()); // no self-loop before closure
    }

    #[test]
    fn restriction_and_identity() {
        let r = Relation::from_pairs(4, [(e(0), e(1)), (e(1), e(2)), (e(2), e(3))]);
        let a = EventSet::from_ids([e(1), e(2)]);
        let restricted = r.restrict_domain(a).restrict_codomain(a);
        assert_eq!(restricted.iter_pairs().collect::<Vec<_>>(), vec![(e(1), e(2))]);
        // [A];r;[B] via identity composition agrees with direct restriction.
        let id_a = Relation::identity_on(4, a);
        let via_id = id_a.compose(&r).compose(&id_a);
        assert_eq!(via_id, restricted);
    }

    #[test]
    fn inverse_and_dom_codom() {
        let r = Relation::from_pairs(4, [(e(0), e(2)), (e(1), e(2))]);
        let inv = r.inverse();
        assert!(inv.contains(e(2), e(0)));
        assert_eq!(r.domain(), EventSet::from_ids([e(0), e(1)]));
        assert_eq!(r.codomain(), EventSet::singleton(e(2)));
        assert_eq!(inv.domain(), r.codomain());
    }

    #[test]
    fn total_order_check() {
        let set = EventSet::from_ids([e(0), e(1), e(2)]);
        let total = Relation::from_pairs(3, [(e(0), e(1)), (e(1), e(2)), (e(0), e(2))]);
        assert!(total.is_strict_total_order_on(set));
        let partial = Relation::from_pairs(3, [(e(0), e(1))]);
        assert!(!partial.is_strict_total_order_on(set));
        let cyclic = Relation::from_pairs(
            3,
            [(e(0), e(1)), (e(1), e(2)), (e(2), e(0)), (e(0), e(2)), (e(1), e(0)), (e(2), e(1))],
        );
        assert!(!cyclic.is_strict_total_order_on(set));
    }

    #[test]
    fn cross_product() {
        let r = Relation::cross(4, EventSet::from_ids([e(0), e(1)]), EventSet::from_ids([e(2)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(e(0), e(2)));
        assert!(r.contains(e(1), e(2)));
    }

    #[test]
    fn closure_is_idempotent() {
        let r = Relation::from_pairs(5, [(e(0), e(1)), (e(3), e(4)), (e(1), e(3))]);
        let tc = r.transitive_closure();
        assert_eq!(tc.transitive_closure(), tc);
    }
}
