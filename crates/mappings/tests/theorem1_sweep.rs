//! Theorem-1 sweeps over the corpus and the generated program family.
//!
//! The default run subsamples the generated family to keep CI fast; the
//! `verify_mappings` binary in `risotto-bench` runs the full sweep.

use risotto_litmus::corpus;
use risotto_mappings::check::{check_translation, verify_suite, BehaviorScope};
use risotto_mappings::gen::{generate_two_thread, x86_alphabet, x86_alphabet_small};
use risotto_mappings::scheme::{
    qemu_x86_to_arm, verified_x86_to_arm, verified_x86_to_tso, HelperStyle, MappingScheme,
    QemuX86ToTcg, RmwLowering, VerifiedTcgToArm, VerifiedTcgToTso, VerifiedX86ToTcg,
};
use risotto_mappings::transform::{
    eliminate_at, eliminate_false_deps, merge_fences_at, reorder_at, Elimination, FencePolicy,
};
use risotto_memmodel::{Arm, TcgIr, X86Tso};

/// x86-flavoured corpus programs (sources for x86→* mappings).
fn x86_corpus() -> Vec<risotto_litmus::Program> {
    vec![
        corpus::mp(),
        corpus::sb(),
        corpus::sb_fenced(),
        corpus::lb(),
        corpus::iriw(),
        corpus::two_plus_two_w(),
        corpus::s_test(),
        corpus::r_test(),
        corpus::mpq_x86(),
        corpus::sbq_x86(),
        corpus::sbal_x86(),
    ]
}

#[test]
fn verified_x86_to_tcg_passes_corpus() {
    let failures = verify_suite(&VerifiedX86ToTcg, &x86_corpus(), &X86Tso::new(), &TcgIr::new());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

#[test]
fn qemu_x86_to_tcg_already_loses_failed_rmw_ordering() {
    // Qemu's leading-fence x86→TCG step is *already* unsound under the TCG
    // model for programs with failed RMWs: a failed TCG RMW generates a
    // lone `Rsc`, which the GOrd axiom orders only with its successors
    // (`[Rsc];po`), so the `a=Y → RMW-read` ordering of MPQ is lost — the
    // verified scheme's *trailing* `Frm` restores it. On RMW-free programs
    // Qemu's (over-strong) fences are sound.
    let failures = verify_suite(&QemuX86ToTcg, &x86_corpus(), &X86Tso::new(), &TcgIr::new());
    let names: Vec<&str> = failures.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["MPQ(x86)"], "unexpected failure set: {failures:?}");
}

#[test]
fn verified_tcg_to_arm_passes_tcg_corpus() {
    let tcg_corpus: Vec<_> = x86_corpus().iter().map(|p| VerifiedX86ToTcg.map_program(p)).collect();
    for rmw in [RmwLowering::Rmw2Fenced, RmwLowering::Casal] {
        let failures =
            verify_suite(&VerifiedTcgToArm { rmw }, &tcg_corpus, &TcgIr::new(), &Arm::corrected());
        assert!(failures.is_empty(), "rmw={rmw:?}: {failures:?}");
    }
}

#[test]
fn verified_tcg_to_tso_passes_tcg_corpus() {
    // The TSO mirror of `verified_tcg_to_arm_passes_tcg_corpus`: the same
    // TCG-translated corpus, checked against the executable x86-TSO model
    // instead of the corrected Arm model. Theorem 1 requires
    // behaviors(target, X86Tso) ⊆ behaviors(source, TcgIr) even though the
    // scheme erases most fences.
    let tcg_corpus: Vec<_> = x86_corpus().iter().map(|p| VerifiedX86ToTcg.map_program(p)).collect();
    let failures = verify_suite(&VerifiedTcgToTso, &tcg_corpus, &TcgIr::new(), &X86Tso::new());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

#[test]
fn verified_tcg_to_tso_exhaustive_fence_patterns() {
    // Exhaustive Theorem-1 enumeration over every TCG-event/fence pattern:
    // for each TCG fence kind, a two-thread MP/SB-shaped skeleton with the
    // fence between the two accesses of each thread, in all four
    // load/store orientations. Every one of these programs must check
    // under the no-op/MFENCE lowering — this is the enumeration recorded
    // in DESIGN.md §14.
    use risotto_litmus::{Program, Reg};
    use risotto_memmodel::{FenceKind, Loc};
    let (x, y) = (Loc(0), Loc(1));
    let mut family = Vec::new();
    for &k in &FenceKind::TCG_ALL {
        for (t0_store_first, t1_store_first) in
            [(true, true), (true, false), (false, true), (false, false)]
        {
            let name = format!("tso-enum-{k:?}-{t0_store_first}-{t1_store_first}");
            let p = Program::builder(&name)
                .thread(|t| {
                    if t0_store_first {
                        t.store(x, 1).fence(k).load(Reg(0), y);
                    } else {
                        t.load(Reg(0), x).fence(k).store(y, 1);
                    }
                })
                .thread(|t| {
                    if t1_store_first {
                        t.store(y, 1).fence(k).load(Reg(1), x);
                    } else {
                        t.load(Reg(1), y).fence(k).store(x, 1);
                    }
                })
                .build();
            family.push(p);
        }
    }
    assert_eq!(family.len(), 48, "12 TCG fence kinds x 4 orientations");
    let failures = verify_suite(&VerifiedTcgToTso, &family, &TcgIr::new(), &X86Tso::new());
    assert!(failures.is_empty(), "TSO lowering violates Theorem 1: {failures:?}");
}

#[test]
fn verified_end_to_end_tso_passes_corpus() {
    let s = verified_x86_to_tso();
    let failures = verify_suite(&s, &x86_corpus(), &X86Tso::new(), &X86Tso::new());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

#[test]
fn generated_sweep_verified_tso_scheme_subsampled() {
    // The TSO mirror of `generated_sweep_verified_scheme_subsampled`.
    let family = generate_two_thread(&x86_alphabet(), 2, 24);
    let s = verified_x86_to_tso();
    let failures = verify_suite(&s, &family, &X86Tso::new(), &X86Tso::new());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

#[test]
fn generated_sweep_verified_tso_small_alphabet_exhaustive() {
    // All 325 programs over the fence-free alphabet, x86→TCG→TSO.
    let family = generate_two_thread(&x86_alphabet_small(), 2, 1);
    let s = verified_x86_to_tso();
    let failures = verify_suite(&s, &family, &X86Tso::new(), &X86Tso::new());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

#[test]
fn verified_end_to_end_passes_corpus_both_lowerings() {
    for rmw in [RmwLowering::Rmw2Fenced, RmwLowering::Casal] {
        let s = verified_x86_to_arm(rmw);
        let failures = verify_suite(&s, &x86_corpus(), &X86Tso::new(), &Arm::corrected());
        assert!(failures.is_empty(), "rmw={rmw:?}: {failures:?}");
    }
}

#[test]
fn qemu_end_to_end_fails_exactly_on_rmw_programs() {
    for helper in [HelperStyle::Gcc9Lxsx, HelperStyle::Gcc10Casal] {
        let s = qemu_x86_to_arm(helper);
        let failures = verify_suite(&s, &x86_corpus(), &X86Tso::new(), &Arm::corrected());
        let names: Vec<&str> = failures.iter().map(|(n, _)| n.as_str()).collect();
        assert!(!failures.is_empty(), "Qemu scheme must fail somewhere ({helper:?})");
        for name in &names {
            assert!(
                name.contains("MPQ") || name.contains("SBQ") || name.contains("SBAL"),
                "unexpected failure on fence-only program {name} ({helper:?})"
            );
        }
    }
}

#[test]
fn generated_sweep_verified_scheme_subsampled() {
    // ~66 programs from the full alphabet (stride 24).
    let family = generate_two_thread(&x86_alphabet(), 2, 24);
    let s = verified_x86_to_arm(RmwLowering::Casal);
    let failures = verify_suite(&s, &family, &X86Tso::new(), &Arm::corrected());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

#[test]
fn generated_sweep_verified_scheme_small_alphabet_exhaustive() {
    // All 325 programs over the fence-free alphabet.
    let family = generate_two_thread(&x86_alphabet_small(), 2, 1);
    let s = verified_x86_to_arm(RmwLowering::Rmw2Fenced);
    let failures = verify_suite(&s, &family, &X86Tso::new(), &Arm::corrected());
    assert!(failures.is_empty(), "failures: {failures:?}");
}

// ------------------------------------------------------------------------
// Transformations (Ms = Mt = TCG IR).
// ------------------------------------------------------------------------

/// Applies every applicable verified elimination/merge/reorder at every
/// site of every TCG-translated corpus program and Theorem-1-checks each.
#[test]
fn verified_transformations_never_introduce_behaviors() {
    let tcg = TcgIr::new();
    // Extra TCG programs with eliminable same-location pairs in every
    // flavour (adjacent and across sound fences).
    let eliminable = {
        use risotto_litmus::{Program, Reg};
        use risotto_memmodel::{FenceKind, Loc};
        let (x, y) = (Loc(0), Loc(1));
        vec![
            Program::builder("elim-rar")
                .thread(|t| {
                    t.load(Reg(0), x).load(Reg(1), x).fence(FenceKind::Frm).load(Reg(2), x);
                })
                .thread(|t| {
                    t.store(x, 1).fence(FenceKind::Fww).store(y, 1);
                })
                .build(),
            Program::builder("elim-raw-waw")
                .thread(|t| {
                    t.store(x, 1).load(Reg(0), x).store(x, 2).fence(FenceKind::Fww).store(x, 3);
                })
                .thread(|t| {
                    t.load(Reg(1), x).fence(FenceKind::Frm).load(Reg(2), y);
                })
                .build(),
            Program::builder("elim-f-raw")
                .thread(|t| {
                    t.store(x, 1).fence(FenceKind::Fsc).load(Reg(0), x);
                })
                .thread(|t| {
                    t.store(x, 2).fence(FenceKind::Fww).load(Reg(1), x).store(y, 1);
                })
                .build(),
        ]
    };
    let sources: Vec<_> = x86_corpus()
        .iter()
        .map(|p| VerifiedX86ToTcg.map_program(p))
        .chain([corpus::lb_ir(), corpus::mp_ir(), corpus::merge_example(), corpus::false_dep()])
        .chain(eliminable)
        .collect();
    let mut applied = 0;
    for src in &sources {
        for tid in 0..src.threads.len() {
            for idx in 0..src.threads[tid].instrs.len() {
                for elim in [Elimination::Rar, Elimination::Raw, Elimination::Waw] {
                    if let Some(tgt) = eliminate_at(src, tid, idx, elim, FencePolicy::Verified) {
                        applied += 1;
                        check_translation(src, &tcg, &tgt, &tcg, BehaviorScope::MemoryOnly)
                            .unwrap_or_else(|e| panic!("{elim:?} on {}: {e}", src.name));
                    }
                }
                if let Some(tgt) = merge_fences_at(src, tid, idx) {
                    applied += 1;
                    check_translation(src, &tcg, &tgt, &tcg, BehaviorScope::MemoryAndRegisters)
                        .unwrap_or_else(|e| panic!("merge on {}: {e}", src.name));
                }
                if let Some(tgt) = reorder_at(src, tid, idx) {
                    applied += 1;
                    check_translation(src, &tcg, &tgt, &tcg, BehaviorScope::MemoryAndRegisters)
                        .unwrap_or_else(|e| panic!("reorder on {}: {e}", src.name));
                }
            }
        }
        let nodeps = eliminate_false_deps(src);
        check_translation(src, &tcg, &nodeps, &tcg, BehaviorScope::MemoryAndRegisters)
            .unwrap_or_else(|e| panic!("false-dep elim on {}: {e}", src.name));
    }
    assert!(applied > 10, "sweep applied too few transformations ({applied})");
}

/// QEMU's any-fence RAW policy is unsound: the FMR program is a concrete
/// Theorem-1 counterexample.
#[test]
fn any_fence_raw_policy_fails_theorem1_on_fmr() {
    let tcg = TcgIr::new();
    let src = corpus::fmr_source();
    // Eliminate `a = Y` after `Y = 2` across the… the pair here is
    // W(Y,2) · R(Y) adjacent (no fence): plain RAW. The *unsoundness* comes
    // from the Fmr earlier in the thread. Apply RAW at the W Y=2 site.
    let idx = src.threads[0]
        .instrs
        .iter()
        .position(
            |i| matches!(i, risotto_litmus::Instr::Store { loc, .. } if loc.loc() == corpus::Y),
        )
        .unwrap();
    let tgt = eliminate_at(&src, 0, idx, Elimination::Raw, FencePolicy::AnyFence).unwrap();
    let res = check_translation(&src, &tcg, &tgt, &tcg, BehaviorScope::MemoryAndRegisters);
    assert!(res.is_err(), "RAW after an Fmr-bearing prefix must be unsound (FMR, §3.2)");
}
