//! Mapping schemes between the x86, TCG IR and Arm concurrency alphabets.
//!
//! Each scheme rewrites a litmus [`Program`] instruction-by-instruction,
//! inserting the leading/trailing fences its translation table prescribes.
//! The repertoire covers:
//!
//! * Qemu's erroneous schemes (Fig. 2), including both GCC helper flavours
//!   the paper discusses (§3.1),
//! * the paper's verified schemes (Fig. 7a/7b/7c),
//! * the "intended" Arm-Cats direct mapping (Fig. 3, §3.3), and
//! * the fence-free oracle used by the evaluation's `no-fences` setup.

use risotto_litmus::{Instr, Program, RmwKind};
use risotto_memmodel::{AccessMode, FenceKind};

/// A translation scheme from one ISA's concurrency alphabet to another's.
pub trait MappingScheme {
    /// Human-readable scheme name.
    fn name(&self) -> &str;

    /// Translates one instruction into a sequence of target instructions.
    ///
    /// `If` bodies are handled by [`MappingScheme::map_program`]; `map_instr`
    /// only sees the condition-free instructions.
    fn map_instr(&self, instr: &Instr) -> Vec<Instr>;

    /// Translates a whole program, recursing into conditionals.
    fn map_program(&self, prog: &Program) -> Program {
        fn map_list(scheme: &(impl MappingScheme + ?Sized), instrs: &[Instr]) -> Vec<Instr> {
            let mut out = Vec::new();
            for i in instrs {
                match i {
                    Instr::If { reg, eq, then, els } => out.push(Instr::If {
                        reg: *reg,
                        eq: *eq,
                        then: map_list(scheme, then),
                        els: map_list(scheme, els),
                    }),
                    other => out.extend(scheme.map_instr(other)),
                }
            }
            out
        }
        Program {
            name: format!("{}[{}]", prog.name, self.name()),
            init: prog.init.clone(),
            threads: prog
                .threads
                .iter()
                .map(|t| risotto_litmus::Thread { instrs: map_list(self, &t.instrs) })
                .collect(),
        }
    }
}

/// How RMW helper calls end up lowered on the Arm host (§3.1): the GCC
/// built-ins compile to different instruction sequences per GCC version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperStyle {
    /// GCC 9: `ldaxr`/`stlxr` loop — `RMW2_AL`.
    Gcc9Lxsx,
    /// GCC 10: `casal` — `RMW1_AL`.
    Gcc10Casal,
}

/// How the verified IR→Arm scheme lowers TCG RMWs (Fig. 7b): either the
/// exclusive pair bracketed by full fences, or a bare `casal` (which is
/// only sound under the corrected Arm model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwLowering {
    /// `DMBFF; RMW2; DMBFF`.
    Rmw2Fenced,
    /// `RMW1_AL` (`casal`).
    Casal,
}

// ---------------------------------------------------------------------
// x86 → TCG IR
// ---------------------------------------------------------------------

/// Qemu's x86→TCG mapping (Fig. 2): `RMOV → Fmr; ld`, `WMOV → Fmw; st`,
/// RMW → helper call (SC semantics at the IR level), `MFENCE → Fsc`.
///
/// Note the *leading* fences — the source of both the performance problem
/// (§3.4, unmergeable fences) and the `Fmr`/RAW unsoundness (§3.2, FMR).
#[derive(Debug, Clone, Copy, Default)]
pub struct QemuX86ToTcg;

impl MappingScheme for QemuX86ToTcg {
    fn name(&self) -> &str {
        "qemu-x86-to-tcg"
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { dst, loc, mode: AccessMode::Plain } => vec![
                Instr::Fence(FenceKind::Fmr),
                Instr::Load { dst: *dst, loc: *loc, mode: AccessMode::Plain },
            ],
            Instr::Store { loc, val, mode: AccessMode::Plain } => vec![
                Instr::Fence(FenceKind::Fmw),
                Instr::Store { loc: *loc, val: val.clone(), mode: AccessMode::Plain },
            ],
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::X86Lock } => {
                vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind: RmwKind::TcgSc,
                }]
            }
            Instr::Fence(FenceKind::MFence) => vec![Instr::Fence(FenceKind::Fsc)],
            Instr::Let { .. } => vec![instr.clone()],
            other => panic!("{}: not an x86 instruction: {other:?}", self.name()),
        }
    }
}

/// The verified x86→TCG mapping (Fig. 7a): `RMOV → ld; Frm`,
/// `WMOV → Fww; st`, `RMW → RMW`, `MFENCE → Fsc`.
///
/// The trailing `Frm` after loads and the leading `Fww` before stores are
/// proved minimal in §5.4 (LB-IR and MP-IR witnesses), and — unlike Qemu's
/// `Fmr`/`Fmw` — keep the RAW/WAW eliminations sound.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifiedX86ToTcg;

impl MappingScheme for VerifiedX86ToTcg {
    fn name(&self) -> &str {
        "verified-x86-to-tcg"
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { dst, loc, mode: AccessMode::Plain } => vec![
                Instr::Load { dst: *dst, loc: *loc, mode: AccessMode::Plain },
                Instr::Fence(FenceKind::Frm),
            ],
            Instr::Store { loc, val, mode: AccessMode::Plain } => vec![
                Instr::Fence(FenceKind::Fww),
                Instr::Store { loc: *loc, val: val.clone(), mode: AccessMode::Plain },
            ],
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::X86Lock } => {
                vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind: RmwKind::TcgSc,
                }]
            }
            Instr::Fence(FenceKind::MFence) => vec![Instr::Fence(FenceKind::Fsc)],
            Instr::Let { .. } => vec![instr.clone()],
            other => panic!("{}: not an x86 instruction: {other:?}", self.name()),
        }
    }
}

// ---------------------------------------------------------------------
// TCG IR → Arm
// ---------------------------------------------------------------------

/// The weakest single Arm `DMB` implementing a TCG fence's ordering:
/// `DMB LD` covers `R → M`, `DMB ST` covers `W → W`, everything else needs
/// the full `DMB FF`. (`Facq`/`Frel` need nothing.)
pub fn lower_tcg_fence(kind: FenceKind) -> Option<FenceKind> {
    kind.arm_dmb()
}

/// Qemu's TCG→Arm lowering: fences via [`lower_tcg_fence`], RMWs via a
/// helper call whose atomic sequence depends on the GCC version.
#[derive(Debug, Clone, Copy)]
pub struct QemuTcgToArm {
    /// Which GCC built-in expansion the helper uses.
    pub helper: HelperStyle,
}

impl MappingScheme for QemuTcgToArm {
    fn name(&self) -> &str {
        match self.helper {
            HelperStyle::Gcc9Lxsx => "qemu-tcg-to-arm(gcc9)",
            HelperStyle::Gcc10Casal => "qemu-tcg-to-arm(gcc10)",
        }
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { mode: AccessMode::Plain, .. }
            | Instr::Store { mode: AccessMode::Plain, .. }
            | Instr::Let { .. } => vec![instr.clone()],
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::TcgSc } => {
                let kind = match self.helper {
                    HelperStyle::Gcc9Lxsx => RmwKind::ArmLxsx { acq: true, rel: true },
                    HelperStyle::Gcc10Casal => RmwKind::ArmCasal,
                };
                vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind,
                }]
            }
            Instr::Fence(k) if k.is_tcg() => match lower_tcg_fence(*k) {
                Some(dmb) => vec![Instr::Fence(dmb)],
                None => vec![],
            },
            other => panic!("{}: not a TCG instruction: {other:?}", self.name()),
        }
    }
}

/// The verified TCG→Arm mapping (Fig. 7b): plain `ld`/`st` to `LDR`/`STR`,
/// fences via the same minimal lowering, and RMWs either as
/// `DMBFF; RMW2; DMBFF` or as `RMW1_AL`.
#[derive(Debug, Clone, Copy)]
pub struct VerifiedTcgToArm {
    /// RMW lowering choice.
    pub rmw: RmwLowering,
}

impl MappingScheme for VerifiedTcgToArm {
    fn name(&self) -> &str {
        match self.rmw {
            RmwLowering::Rmw2Fenced => "verified-tcg-to-arm(rmw2)",
            RmwLowering::Casal => "verified-tcg-to-arm(casal)",
        }
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { mode: AccessMode::Plain, .. }
            | Instr::Store { mode: AccessMode::Plain, .. }
            | Instr::Let { .. } => vec![instr.clone()],
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::TcgSc } => match self.rmw {
                RmwLowering::Rmw2Fenced => vec![
                    Instr::Fence(FenceKind::DmbFf),
                    Instr::Rmw {
                        dst: *dst,
                        loc: *loc,
                        expected: expected.clone(),
                        desired: desired.clone(),
                        kind: RmwKind::ArmLxsx { acq: false, rel: false },
                    },
                    Instr::Fence(FenceKind::DmbFf),
                ],
                RmwLowering::Casal => vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind: RmwKind::ArmCasal,
                }],
            },
            Instr::Fence(k) if k.is_tcg() => match lower_tcg_fence(*k) {
                Some(dmb) => vec![Instr::Fence(dmb)],
                None => vec![],
            },
            other => panic!("{}: not a TCG instruction: {other:?}", self.name()),
        }
    }
}

// ---------------------------------------------------------------------
// TCG IR → x86-TSO
// ---------------------------------------------------------------------

/// The weakest x86 fence implementing a TCG fence's ordering on a TSO
/// host: delegates to [`FenceKind::tso_fence`] — `MFENCE` exactly when
/// the fence's ordering covers write→read (the only reordering TSO
/// performs), nothing for every other TCG fence.
pub fn lower_tcg_fence_tso(kind: FenceKind) -> Option<FenceKind> {
    kind.tso_fence()
}

/// The verified TCG→x86-TSO mapping implemented by `risotto-host-tso`:
/// plain `ld`/`st` to plain `MOV`s, fences via [`lower_tcg_fence_tso`]
/// (most become no-ops), and TCG RMWs to a `LOCK`-prefixed `CMPXCHG`
/// ([`RmwKind::X86Lock`], whose TSO semantics are a full fence).
///
/// Unlike [`VerifiedTcgToArm`] there is no RMW-style choice: x86 has a
/// single atomic-RMW idiom, and `LOCK` already carries the bracketing
/// `MFENCE` semantics the `Rmw2Fenced` style reconstructs on Arm.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifiedTcgToTso;

impl MappingScheme for VerifiedTcgToTso {
    fn name(&self) -> &str {
        "verified-tcg-to-tso"
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { mode: AccessMode::Plain, .. }
            | Instr::Store { mode: AccessMode::Plain, .. }
            | Instr::Let { .. } => vec![instr.clone()],
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::TcgSc } => {
                vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind: RmwKind::X86Lock,
                }]
            }
            Instr::Fence(k) if k.is_tcg() => match lower_tcg_fence_tso(*k) {
                Some(mfence) => vec![Instr::Fence(mfence)],
                None => vec![],
            },
            other => panic!("{}: not a TCG instruction: {other:?}", self.name()),
        }
    }
}

// ---------------------------------------------------------------------
// x86 → Arm (direct)
// ---------------------------------------------------------------------

/// The "intended" Arm-Cats mapping of Fig. 3: `RMOV → LDRQ` (`LDAPR`),
/// `WMOV → STRL` (`STLR`), `RMW → RMW1_AL`, `MFENCE → DMBFF`.
///
/// §3.3 shows this mapping is erroneous under the *original* Arm model
/// (SBAL) and sound under the corrected one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmCatsIntended;

impl MappingScheme for ArmCatsIntended {
    fn name(&self) -> &str {
        "arm-cats-intended"
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { dst, loc, mode: AccessMode::Plain } => {
                vec![Instr::Load { dst: *dst, loc: *loc, mode: AccessMode::AcquirePc }]
            }
            Instr::Store { loc, val, mode: AccessMode::Plain } => {
                vec![Instr::Store { loc: *loc, val: val.clone(), mode: AccessMode::Release }]
            }
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::X86Lock } => {
                vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind: RmwKind::ArmCasal,
                }]
            }
            Instr::Fence(FenceKind::MFence) => vec![Instr::Fence(FenceKind::DmbFf)],
            Instr::Let { .. } => vec![instr.clone()],
            other => panic!("{}: not an x86 instruction: {other:?}", self.name()),
        }
    }
}

/// The fence-free oracle (§7.1's `no-fences` setup): plain loads/stores,
/// `casal` RMWs, and **no** fences at all — knowingly incorrect, used only
/// as a performance upper bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFencesX86ToArm;

impl MappingScheme for NoFencesX86ToArm {
    fn name(&self) -> &str {
        "no-fences-x86-to-arm"
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Load { dst, loc, mode: AccessMode::Plain } => {
                vec![Instr::Load { dst: *dst, loc: *loc, mode: AccessMode::Plain }]
            }
            Instr::Store { loc, val, mode: AccessMode::Plain } => {
                vec![Instr::Store { loc: *loc, val: val.clone(), mode: AccessMode::Plain }]
            }
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::X86Lock } => {
                vec![Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind: RmwKind::ArmCasal,
                }]
            }
            Instr::Fence(FenceKind::MFence) => vec![],
            Instr::Let { .. } => vec![instr.clone()],
            other => panic!("{}: not an x86 instruction: {other:?}", self.name()),
        }
    }
}

/// Composition of two schemes: `second ∘ first`.
#[derive(Debug, Clone, Copy)]
pub struct Composed<F, S> {
    first: F,
    second: S,
    name: &'static str,
}

impl<F: MappingScheme, S: MappingScheme> Composed<F, S> {
    /// Composes `first` then `second` under a display name.
    pub fn new(first: F, second: S, name: &'static str) -> Self {
        Composed { first, second, name }
    }
}

impl<F: MappingScheme, S: MappingScheme> MappingScheme for Composed<F, S> {
    fn name(&self) -> &str {
        self.name
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        self.first.map_instr(instr).iter().flat_map(|i| self.second.map_instr(i)).collect()
    }

    fn map_program(&self, prog: &Program) -> Program {
        let mut p = self.second.map_program(&self.first.map_program(prog));
        p.name = format!("{}[{}]", prog.name, self.name);
        p
    }
}

/// The end-to-end verified x86→Arm scheme of Fig. 7c.
pub fn verified_x86_to_arm(rmw: RmwLowering) -> impl MappingScheme {
    Composed::new(VerifiedX86ToTcg, VerifiedTcgToArm { rmw }, "verified-x86-to-arm")
}

/// The end-to-end verified x86→x86 scheme through TCG IR and back onto a
/// TSO host: the round trip the `risotto-host-tso` backend performs.
pub fn verified_x86_to_tso() -> impl MappingScheme {
    Composed::new(VerifiedX86ToTcg, VerifiedTcgToTso, "verified-x86-to-tso")
}

/// Qemu's end-to-end x86→Arm scheme (Fig. 2), with the `Fmr → Frr` demotion
/// Qemu applies for x86 guests (§3.1) expressed in the fence lowering: the
/// leading `Fmr`/`Fmw` become `DMB LD`/`DMB FF` as in Fig. 2.
pub fn qemu_x86_to_arm(helper: HelperStyle) -> impl MappingScheme {
    Composed::new(
        Composed::new(QemuX86ToTcg, QemuDemoteFences, "qemu-x86-to-tcg+demote"),
        QemuTcgToArm { helper },
        "qemu-x86-to-arm",
    )
}

/// Qemu's fence demotion for x86 guests: since x86 permits store→load
/// reordering, the `Fmr` before loads is weakened to `Frr` (§3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct QemuDemoteFences;

impl MappingScheme for QemuDemoteFences {
    fn name(&self) -> &str {
        "qemu-demote-fences"
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        match instr {
            Instr::Fence(FenceKind::Fmr) => vec![Instr::Fence(FenceKind::Frr)],
            other => vec![other.clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_litmus::corpus;

    #[test]
    fn verified_mapping_of_mp_matches_fig7c() {
        let p = VerifiedX86ToTcg.map_program(&corpus::mp());
        // T0: Fww; st X; Fww; st Y
        let t0 = &p.threads[0].instrs;
        assert!(matches!(t0[0], Instr::Fence(FenceKind::Fww)));
        assert!(matches!(t0[1], Instr::Store { .. }));
        assert!(matches!(t0[2], Instr::Fence(FenceKind::Fww)));
        // T1: ld Y; Frm; ld X; Frm
        let t1 = &p.threads[1].instrs;
        assert!(matches!(t1[0], Instr::Load { .. }));
        assert!(matches!(t1[1], Instr::Fence(FenceKind::Frm)));
    }

    #[test]
    fn qemu_mapping_inserts_leading_fences() {
        let p = QemuX86ToTcg.map_program(&corpus::mp());
        let t1 = &p.threads[1].instrs;
        assert!(matches!(t1[0], Instr::Fence(FenceKind::Fmr)));
        assert!(matches!(t1[1], Instr::Load { .. }));
    }

    #[test]
    fn fence_lowering_matches_fig7b() {
        assert_eq!(lower_tcg_fence(FenceKind::Frr), Some(FenceKind::DmbLd));
        assert_eq!(lower_tcg_fence(FenceKind::Frw), Some(FenceKind::DmbLd));
        assert_eq!(lower_tcg_fence(FenceKind::Frm), Some(FenceKind::DmbLd));
        assert_eq!(lower_tcg_fence(FenceKind::Fww), Some(FenceKind::DmbSt));
        assert_eq!(lower_tcg_fence(FenceKind::Fwr), Some(FenceKind::DmbFf));
        assert_eq!(lower_tcg_fence(FenceKind::Fmm), Some(FenceKind::DmbFf));
        assert_eq!(lower_tcg_fence(FenceKind::Fsc), Some(FenceKind::DmbFf));
        assert_eq!(lower_tcg_fence(FenceKind::Fmw), Some(FenceKind::DmbFf));
        assert_eq!(lower_tcg_fence(FenceKind::Facq), None);
        assert_eq!(lower_tcg_fence(FenceKind::Frel), None);
    }

    #[test]
    fn tso_fence_lowering_is_mfence_iff_store_load() {
        // MFENCE exactly for the five W→R-covering kinds…
        for k in [FenceKind::Fwr, FenceKind::Fwm, FenceKind::Fmr, FenceKind::Fmm, FenceKind::Fsc] {
            assert_eq!(lower_tcg_fence_tso(k), Some(FenceKind::MFence), "{k:?}");
        }
        // …and a no-op for every other TCG fence.
        for k in [
            FenceKind::Frr,
            FenceKind::Frw,
            FenceKind::Frm,
            FenceKind::Fww,
            FenceKind::Fmw,
            FenceKind::Facq,
            FenceKind::Frel,
        ] {
            assert_eq!(lower_tcg_fence_tso(k), None, "{k:?}");
        }
    }

    #[test]
    fn tso_mapping_erases_free_fences_and_locks_rmws() {
        // The verified x86→TCG→TSO round trip: the trailing Frm / leading
        // Fww that protect the Arm lowering vanish on a TSO host, so MP
        // maps back to plain MOVs with no fences at all.
        let p = verified_x86_to_tso().map_program(&corpus::mp());
        for t in &p.threads {
            assert!(t.instrs.iter().all(|i| !matches!(i, Instr::Fence(_))), "{:?}", t.instrs);
        }
        // SB's programmer MFENCE (→ Fsc) survives as MFENCE.
        let sb = verified_x86_to_tso().map_program(&corpus::sb_fenced());
        for t in &sb.threads {
            assert!(t.instrs.iter().any(|i| matches!(i, Instr::Fence(FenceKind::MFence))));
        }
        // TCG RMWs come back as LOCK-prefixed x86 RMWs.
        let al = verified_x86_to_tso().map_program(&corpus::sbal_x86());
        assert!(matches!(al.threads[0].instrs[0], Instr::Rmw { kind: RmwKind::X86Lock, .. }));
    }

    #[test]
    fn qemu_end_to_end_reproduces_fig2() {
        // RMOV → DMBLD; LDR and WMOV → DMBFF; STR.
        let p = qemu_x86_to_arm(HelperStyle::Gcc10Casal).map_program(&corpus::mp());
        let t0 = &p.threads[0].instrs;
        assert!(matches!(t0[0], Instr::Fence(FenceKind::DmbFf)));
        assert!(matches!(t0[1], Instr::Store { mode: AccessMode::Plain, .. }));
        let t1 = &p.threads[1].instrs;
        assert!(matches!(t1[0], Instr::Fence(FenceKind::DmbLd)));
        assert!(matches!(t1[1], Instr::Load { mode: AccessMode::Plain, .. }));
    }

    #[test]
    fn verified_end_to_end_reproduces_fig7c() {
        // RMOV → LDR; DMBLD and WMOV → DMBST; STR.
        let p = verified_x86_to_arm(RmwLowering::Casal).map_program(&corpus::mp());
        let t0 = &p.threads[0].instrs;
        assert!(matches!(t0[0], Instr::Fence(FenceKind::DmbSt)));
        assert!(matches!(t0[1], Instr::Store { .. }));
        let t1 = &p.threads[1].instrs;
        assert!(matches!(t1[0], Instr::Load { .. }));
        assert!(matches!(t1[1], Instr::Fence(FenceKind::DmbLd)));
    }

    #[test]
    fn intended_mapping_uses_synchronizing_accesses() {
        let p = ArmCatsIntended.map_program(&corpus::sbal_x86());
        let t0 = &p.threads[0].instrs;
        assert!(matches!(t0[0], Instr::Rmw { kind: RmwKind::ArmCasal, .. }));
        assert!(matches!(t0[1], Instr::Load { mode: AccessMode::AcquirePc, .. }));
    }

    #[test]
    fn no_fences_drops_everything() {
        let p = NoFencesX86ToArm.map_program(&corpus::sb_fenced());
        for t in &p.threads {
            assert!(t.instrs.iter().all(|i| !matches!(i, Instr::Fence(_))));
        }
    }
}
