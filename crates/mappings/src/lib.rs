//! # risotto-mappings
//!
//! Executable mapping schemes and the Theorem-1 translation-correctness
//! checker — the systems counterpart of the paper's Agda development.
//!
//! * [`scheme`] — the x86→TCG-IR, TCG-IR→Arm and direct x86→Arm mapping
//!   schemes (both QEMU's erroneous ones, Fig. 2, and the paper's verified
//!   ones, Fig. 7), plus the Fig. 3 "intended" Arm-Cats mapping and the
//!   fence-free oracle.
//! * [`check`] — Theorem 1 as a decision procedure on litmus-sized
//!   programs: `behaviors(target, Mt) ⊆ behaviors(source, Ms)`.
//! * [`transform`] — the Fig. 10 eliminations with their fence side
//!   conditions, fence merging/strengthening, reordering, and
//!   false-dependency elimination.
//! * [`gen`] — exhaustive two-thread program generation for sweeps.
//!
//! ## Example
//!
//! ```
//! use risotto_mappings::check::check_mapping;
//! use risotto_mappings::scheme::{qemu_x86_to_arm, verified_x86_to_arm, HelperStyle, RmwLowering};
//! use risotto_litmus::corpus;
//! use risotto_memmodel::{Arm, X86Tso};
//!
//! let src = corpus::mpq_x86();
//! // Qemu's scheme mistranslates MPQ…
//! assert!(check_mapping(&qemu_x86_to_arm(HelperStyle::Gcc10Casal),
//!                       &src, &X86Tso::new(), &Arm::corrected()).is_err());
//! // …the verified scheme does not.
//! assert!(check_mapping(&verified_x86_to_arm(RmwLowering::Casal),
//!                       &src, &X86Tso::new(), &Arm::corrected()).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod gen;
pub mod scheme;
pub mod transform;
