//! The executable Theorem 1 (§5.4): *transformation correctness*.
//!
//! > Suppose a source program `Ps` in model `Ms` is transformed to the
//! > target program `Pt` in model `Mt`. The transformation is correct if
//! > for each consistent target execution `Xt ∈ [[Pt]]Mt` there exists a
//! > consistent source execution `Xs ∈ [[Ps]]Ms` such that
//! > `Behav(Xt) = Behav(Xs)`.
//!
//! On litmus-sized programs both behavior sets are computed exhaustively,
//! so the check is a decision procedure: `behaviors(Pt, Mt) ⊆
//! behaviors(Ps, Ms)`. The paper proves the statement for *all* programs in
//! Agda; we verify it over the corpus plus a systematically generated
//! program family (see [`crate::gen`]), which in particular contains every
//! counterexample the paper reports.

use crate::scheme::MappingScheme;
use risotto_litmus::{behaviors, Behavior, Program};
use risotto_memmodel::MemoryModel;
use std::collections::BTreeMap;
use std::fmt;

/// How behaviors are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BehaviorScope {
    /// Final memory and final registers — the strongest observation. Valid
    /// whenever the transformation preserves the register file, which all
    /// our schemes and transformations do.
    MemoryAndRegisters,
    /// Final memory only — the paper's literal `Behav(X)`.
    MemoryOnly,
}

/// A Theorem-1 violation: a target behavior with no matching source
/// behavior.
#[derive(Debug, Clone)]
pub struct TranslationError {
    /// Source program name.
    pub source: String,
    /// Target program name.
    pub target: String,
    /// The behaviors of the target that the source cannot produce.
    pub new_behaviors: Vec<Behavior>,
}

impl fmt::Display for TranslationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "translation {} → {} introduces {} new behavior(s), e.g. {:?}",
            self.source,
            self.target,
            self.new_behaviors.len(),
            self.new_behaviors.first()
        )
    }
}

impl std::error::Error for TranslationError {}

/// Checks Theorem 1 for an explicit source/target program pair.
///
/// # Errors
///
/// Returns a [`TranslationError`] listing every target behavior the source
/// cannot exhibit.
pub fn check_translation<Ms, Mt>(
    src: &Program,
    src_model: &Ms,
    tgt: &Program,
    tgt_model: &Mt,
    scope: BehaviorScope,
) -> Result<(), TranslationError>
where
    Ms: MemoryModel + ?Sized,
    Mt: MemoryModel + ?Sized,
{
    let src_b = behaviors(src, src_model);
    let tgt_b = behaviors(tgt, tgt_model);
    let project = |b: &Behavior| -> (BTreeMap<_, _>, Option<Vec<BTreeMap<_, _>>>) {
        match scope {
            BehaviorScope::MemoryAndRegisters => (b.mem.clone(), Some(b.regs.clone())),
            BehaviorScope::MemoryOnly => (b.mem.clone(), None),
        }
    };
    let src_proj: std::collections::BTreeSet<_> = src_b.iter().map(&project).collect();
    let new: Vec<Behavior> =
        tgt_b.into_iter().filter(|b| !src_proj.contains(&project(b))).collect();
    if new.is_empty() {
        Ok(())
    } else {
        Err(TranslationError {
            source: src.name.clone(),
            target: tgt.name.clone(),
            new_behaviors: new,
        })
    }
}

/// Checks Theorem 1 for a mapping scheme applied to a source program.
///
/// # Errors
///
/// Propagates the [`TranslationError`] of [`check_translation`].
pub fn check_mapping<Ms, Mt, S>(
    scheme: &S,
    src: &Program,
    src_model: &Ms,
    tgt_model: &Mt,
) -> Result<(), TranslationError>
where
    Ms: MemoryModel + ?Sized,
    Mt: MemoryModel + ?Sized,
    S: MappingScheme + ?Sized,
{
    let tgt = scheme.map_program(src);
    check_translation(src, src_model, &tgt, tgt_model, BehaviorScope::MemoryAndRegisters)
}

/// Sweeps a scheme over a suite of programs; returns the list of failing
/// program names with their errors.
pub fn verify_suite<Ms, Mt, S>(
    scheme: &S,
    suite: &[Program],
    src_model: &Ms,
    tgt_model: &Mt,
) -> Vec<(String, TranslationError)>
where
    Ms: MemoryModel + ?Sized,
    Mt: MemoryModel + ?Sized,
    S: MappingScheme + ?Sized,
{
    let mut failures = Vec::new();
    for p in suite {
        if let Err(e) = check_mapping(scheme, p, src_model, tgt_model) {
            failures.push((p.name.clone(), e));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{
        qemu_x86_to_arm, verified_x86_to_arm, ArmCatsIntended, HelperStyle, NoFencesX86ToArm,
        RmwLowering,
    };
    use risotto_litmus::corpus;
    use risotto_memmodel::{Arm, X86Tso};

    #[test]
    fn verified_scheme_passes_on_paper_counterexamples() {
        let x86 = X86Tso::new();
        let arm = Arm::corrected();
        for p in
            [corpus::mpq_x86(), corpus::sbq_x86(), corpus::sbal_x86(), corpus::mp(), corpus::sb()]
        {
            for rmw in [RmwLowering::Rmw2Fenced, RmwLowering::Casal] {
                let s = verified_x86_to_arm(rmw);
                check_mapping(&s, &p, &x86, &arm)
                    .unwrap_or_else(|e| panic!("verified scheme failed on {}: {e}", p.name));
            }
        }
    }

    #[test]
    fn qemu_scheme_fails_on_mpq_with_gcc10() {
        let s = qemu_x86_to_arm(HelperStyle::Gcc10Casal);
        let err = check_mapping(&s, &corpus::mpq_x86(), &X86Tso::new(), &Arm::corrected());
        assert!(err.is_err(), "Qemu's translation of MPQ must introduce behaviors");
    }

    #[test]
    fn qemu_scheme_fails_on_sbq_with_gcc9() {
        let s = qemu_x86_to_arm(HelperStyle::Gcc9Lxsx);
        let err = check_mapping(&s, &corpus::sbq_x86(), &X86Tso::new(), &Arm::corrected());
        assert!(err.is_err(), "Qemu's translation of SBQ must introduce behaviors");
    }

    #[test]
    fn qemu_scheme_is_fine_on_fence_free_mp() {
        // Qemu's errors are RMW-related; on plain MP its (over-strong)
        // fences are correct.
        let s = qemu_x86_to_arm(HelperStyle::Gcc10Casal);
        check_mapping(&s, &corpus::mp(), &X86Tso::new(), &Arm::corrected()).unwrap();
        check_mapping(&s, &corpus::sb(), &X86Tso::new(), &Arm::corrected()).unwrap();
    }

    #[test]
    fn intended_mapping_fails_under_original_model_only() {
        let p = corpus::sbal_x86();
        let s = ArmCatsIntended;
        assert!(check_mapping(&s, &p, &X86Tso::new(), &Arm::original()).is_err());
        check_mapping(&s, &p, &X86Tso::new(), &Arm::corrected()).unwrap();
    }

    #[test]
    fn no_fences_oracle_is_incorrect() {
        let s = NoFencesX86ToArm;
        assert!(check_mapping(&s, &corpus::mp(), &X86Tso::new(), &Arm::corrected()).is_err());
    }

    #[test]
    fn memory_only_scope_is_weaker() {
        // On MP, the no-fences scheme's new behaviors are register-visible
        // only (final memory is always X=Y=1), so the MemoryOnly scope
        // passes while MemoryAndRegisters fails.
        let s = NoFencesX86ToArm;
        let tgt = s.map_program(&corpus::mp());
        assert!(check_translation(
            &corpus::mp(),
            &X86Tso::new(),
            &tgt,
            &Arm::corrected(),
            BehaviorScope::MemoryOnly
        )
        .is_ok());
        assert!(check_translation(
            &corpus::mp(),
            &X86Tso::new(),
            &tgt,
            &Arm::corrected(),
            BehaviorScope::MemoryAndRegisters
        )
        .is_err());
    }
}
