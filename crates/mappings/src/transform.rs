//! IR-level program transformations (§5.4, Fig. 10) at the litmus level.
//!
//! Each transformation rewrites a thread's instruction list the way TCG's
//! optimizer rewrites a basic block. The soundness side conditions of
//! Fig. 10 are encoded in [`fence_allows_elimination`]; passing
//! [`FencePolicy::AnyFence`] reproduces QEMU's *unsound* behavior (the FMR
//! bug), which the test-suite demonstrates via Theorem 1.
//!
//! ```text
//! R(X,v) · R(X,v')      ↝ R(X,v)            (RAR)
//! W(X,v) · R(X,v)       ↝ W(X,v)            (RAW)
//! W(X,v) · W(X,v')      ↝ W(X,v')           (WAW)
//! R(X,v) · F_o · R(X,v') ↝ R(X,v) · F_o     (F-RAR, o ∈ {rm, ww})
//! W(X,v) · F_τ · R(X,v)  ↝ W(X,v) · F_τ     (F-RAW, τ ∈ {sc, ww})
//! W(X,v) · F_o · W(X,v') ↝ F_o · W(X,v')    (F-WAW, o ∈ {rm, ww})
//! ```

use risotto_litmus::{Expr, Instr, LocSpec, Program, RmwKind};
use risotto_memmodel::{AccessMode, FenceKind};

/// Which elimination of Fig. 10 to attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elimination {
    /// Read-after-read.
    Rar,
    /// Read-after-write (store-to-load forwarding).
    Raw,
    /// Write-after-write (dead store).
    Waw,
}

/// Which intermediate fences an elimination may cross.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FencePolicy {
    /// Only the fences Fig. 10 proves sound (`F_o` / `F_τ` per rule).
    Verified,
    /// Any fence — QEMU's historical behavior; unsound (see FMR, §3.2).
    AnyFence,
}

/// `true` if `fence` may sit between the pair for `elim` under `policy`.
pub fn fence_allows_elimination(elim: Elimination, fence: FenceKind, policy: FencePolicy) -> bool {
    if policy == FencePolicy::AnyFence {
        return fence.is_tcg();
    }
    match elim {
        // F-RAR / F-WAW: o ∈ {rm, ww}.
        Elimination::Rar | Elimination::Waw => {
            matches!(fence, FenceKind::Frm | FenceKind::Fww)
        }
        // F-RAW: τ ∈ {sc, ww}.
        Elimination::Raw => matches!(fence, FenceKind::Fsc | FenceKind::Fww),
    }
}

/// Attempts the elimination whose *first* access sits at `idx` in thread
/// `tid`, optionally across one intermediate fence. Returns the rewritten
/// program, or `None` if the pattern does not match there.
pub fn eliminate_at(
    prog: &Program,
    tid: usize,
    idx: usize,
    elim: Elimination,
    policy: FencePolicy,
) -> Option<Program> {
    let instrs = &prog.threads.get(tid)?.instrs;
    let first = instrs.get(idx)?;
    // Find the second access: either adjacent, or separated by one fence
    // that the policy admits.
    let (second_idx, fence_between) = match instrs.get(idx + 1)? {
        Instr::Fence(k) => {
            if !fence_allows_elimination(elim, *k, policy) {
                return None;
            }
            (idx + 2, true)
        }
        _ => (idx + 1, false),
    };
    let second = instrs.get(second_idx)?;

    let replacement: Vec<Instr> = match (elim, first, second) {
        // R(X,v) · R(X,v') ↝ R(X,v); the second register becomes an alias.
        (
            Elimination::Rar,
            Instr::Load { dst: d1, loc: l1, mode: AccessMode::Plain },
            Instr::Load { dst: d2, loc: l2, mode: AccessMode::Plain },
        ) if l1.loc() == l2.loc() => {
            let mut out = vec![Instr::Load { dst: *d1, loc: *l1, mode: AccessMode::Plain }];
            if fence_between {
                out.push(instrs[idx + 1].clone());
            }
            out.push(Instr::Let { dst: *d2, val: Expr::Reg(*d1) });
            out
        }
        // W(X,v) · R(X,v) ↝ W(X,v); the read's register takes the stored value.
        (
            Elimination::Raw,
            Instr::Store { loc: l1, val, mode: AccessMode::Plain },
            Instr::Load { dst, loc: l2, mode: AccessMode::Plain },
        ) if l1.loc() == l2.loc() => {
            let mut out =
                vec![Instr::Store { loc: *l1, val: val.clone(), mode: AccessMode::Plain }];
            if fence_between {
                out.push(instrs[idx + 1].clone());
            }
            out.push(Instr::Let { dst: *dst, val: val.clone() });
            out
        }
        // W(X,v) · W(X,v') ↝ W(X,v') (fence, if any, moves before: F_o · W).
        (
            Elimination::Waw,
            Instr::Store { loc: l1, mode: AccessMode::Plain, .. },
            Instr::Store { loc: l2, val: v2, mode: AccessMode::Plain },
        ) if l1.loc() == l2.loc() => {
            let mut out = Vec::new();
            if fence_between {
                out.push(instrs[idx + 1].clone());
            }
            out.push(Instr::Store { loc: *l2, val: v2.clone(), mode: AccessMode::Plain });
            out
        }
        _ => return None,
    };

    let mut out = prog.clone();
    out.name = format!("{}·{:?}@{}:{}", prog.name, elim, tid, idx);
    out.threads[tid].instrs.splice(idx..=second_idx, replacement);
    Some(out)
}

/// Merges two adjacent TCG fences at `idx`/`idx+1` into their join
/// (§6.1): the merged fence is at least as strong as both, placed where
/// the earlier fence was. `Fsc` absorbs everything.
pub fn merge_fences_at(prog: &Program, tid: usize, idx: usize) -> Option<Program> {
    let instrs = &prog.threads.get(tid)?.instrs;
    let (a, b) = match (instrs.get(idx)?, instrs.get(idx + 1)?) {
        (Instr::Fence(a), Instr::Fence(b)) if a.is_tcg() && b.is_tcg() => (*a, *b),
        _ => return None,
    };
    let merged = a.tcg_join(b);
    let mut out = prog.clone();
    out.name = format!("{}·merge@{}:{}", prog.name, tid, idx);
    out.threads[tid].instrs.splice(idx..=idx + 1, [Instr::Fence(merged)]);
    Some(out)
}

/// Strengthens the fence at `idx` to `stronger` (must dominate the current
/// fence in the TCG lattice). Always sound: more ordering, fewer behaviors.
pub fn strengthen_fence_at(
    prog: &Program,
    tid: usize,
    idx: usize,
    stronger: FenceKind,
) -> Option<Program> {
    let instrs = &prog.threads.get(tid)?.instrs;
    match instrs.get(idx)? {
        Instr::Fence(k) if k.is_tcg() && stronger.tcg_at_least(*k) => {
            let mut out = prog.clone();
            out.name = format!("{}·strengthen@{}:{}", prog.name, tid, idx);
            out.threads[tid].instrs[idx] = Instr::Fence(stronger);
            Some(out)
        }
        _ => None,
    }
}

/// Reorders the two adjacent accesses at `idx`/`idx+1` if they are
/// independent plain accesses on *different* locations with no register
/// dependency (§5.4: the TCG model orders nothing between such pairs).
pub fn reorder_at(prog: &Program, tid: usize, idx: usize) -> Option<Program> {
    let instrs = &prog.threads.get(tid)?.instrs;
    let a = instrs.get(idx)?;
    let b = instrs.get(idx + 1)?;
    if !independent_accesses(a, b) {
        return None;
    }
    let mut out = prog.clone();
    out.name = format!("{}·reorder@{}:{}", prog.name, tid, idx);
    out.threads[tid].instrs.swap(idx, idx + 1);
    Some(out)
}

fn independent_accesses(a: &Instr, b: &Instr) -> bool {
    fn parts(
        i: &Instr,
    ) -> Option<(risotto_memmodel::Loc, Vec<risotto_litmus::Reg>, Vec<risotto_litmus::Reg>)> {
        // (location, regs read, regs written) — plain non-RMW accesses only.
        match i {
            Instr::Load { dst, loc, mode: AccessMode::Plain } => {
                let mut reads = Vec::new();
                if let LocSpec::Dep { via, .. } = loc {
                    reads.push(*via);
                }
                Some((loc.loc(), reads, vec![*dst]))
            }
            Instr::Store { loc, val, mode: AccessMode::Plain } => {
                let mut reads = val.regs();
                if let LocSpec::Dep { via, .. } = loc {
                    reads.push(*via);
                }
                Some((loc.loc(), reads, Vec::new()))
            }
            _ => None,
        }
    }
    let (la, ra, wa) = match parts(a) {
        Some(p) => p,
        None => return false,
    };
    let (lb, rb, wb) = match parts(b) {
        Some(p) => p,
        None => return false,
    };
    la != lb
        && wa.iter().all(|r| !rb.contains(r) && !wb.contains(r))
        && wb.iter().all(|r| !ra.contains(r))
}

/// Eliminates *false* dependencies (§6.1): `e * 0 ↝ 0`, `r ⊕ r ↝ 0`, and
/// artificial address dependencies `X[r⊕r] ↝ X`. Trivially sound in the
/// TCG model, which derives no ordering from dependencies.
pub fn eliminate_false_deps(prog: &Program) -> Program {
    fn fix_expr(e: &Expr) -> Expr {
        match e {
            Expr::Mul(a, b) => {
                let (fa, fb) = (fix_expr(a), fix_expr(b));
                if fa == Expr::Const(0) || fb == Expr::Const(0) {
                    Expr::Const(0)
                } else {
                    Expr::Mul(Box::new(fa), Box::new(fb))
                }
            }
            Expr::Xor(a, b) => {
                let (fa, fb) = (fix_expr(a), fix_expr(b));
                if fa == fb {
                    Expr::Const(0)
                } else {
                    Expr::Xor(Box::new(fa), Box::new(fb))
                }
            }
            Expr::Add(a, b) => {
                let (fa, fb) = (fix_expr(a), fix_expr(b));
                match (&fa, &fb) {
                    (Expr::Const(0), _) => fb.clone(),
                    (_, Expr::Const(0)) => fa,
                    _ => Expr::Add(Box::new(fa), Box::new(fb)),
                }
            }
            other => other.clone(),
        }
    }
    fn fix_instrs(instrs: &[Instr]) -> Vec<Instr> {
        instrs
            .iter()
            .map(|i| match i {
                Instr::Store { loc, val, mode } => {
                    Instr::Store { loc: fix_loc(loc), val: fix_expr(val), mode: *mode }
                }
                Instr::Load { dst, loc, mode } => {
                    Instr::Load { dst: *dst, loc: fix_loc(loc), mode: *mode }
                }
                Instr::Rmw { dst, loc, expected, desired, kind } => Instr::Rmw {
                    dst: *dst,
                    loc: fix_loc(loc),
                    expected: fix_expr(expected),
                    desired: fix_expr(desired),
                    kind: *kind,
                },
                Instr::Let { dst, val } => Instr::Let { dst: *dst, val: fix_expr(val) },
                Instr::If { reg, eq, then, els } => {
                    Instr::If { reg: *reg, eq: *eq, then: fix_instrs(then), els: fix_instrs(els) }
                }
                Instr::Fence(k) => Instr::Fence(*k),
            })
            .collect()
    }
    fn fix_loc(l: &LocSpec) -> LocSpec {
        // Dropping the artificial address dependency.
        LocSpec::Direct(l.loc())
    }
    Program {
        name: format!("{}·nofalsedeps", prog.name),
        init: prog.init.clone(),
        threads: prog
            .threads
            .iter()
            .map(|t| risotto_litmus::Thread { instrs: fix_instrs(&t.instrs) })
            .collect(),
    }
}

/// `true` if the instruction is an RMW (eliminations never touch RMWs).
pub fn is_rmw(i: &Instr) -> bool {
    matches!(i, Instr::Rmw { .. })
}

/// The RMW kinds a TCG-level program may contain.
pub const TCG_RMW: RmwKind = RmwKind::TcgSc;

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_litmus::{corpus, Program, Reg};
    use risotto_memmodel::Loc;

    const X: Loc = Loc(0);
    const Y: Loc = Loc(1);
    const A: Reg = Reg(0);
    const B: Reg = Reg(1);

    #[test]
    fn raw_elimination_rewrites_to_let() {
        let p = Program::builder("raw")
            .thread(|t| {
                t.store(X, 2).load(A, X);
            })
            .build();
        let q = eliminate_at(&p, 0, 0, Elimination::Raw, FencePolicy::Verified).unwrap();
        assert_eq!(q.threads[0].instrs.len(), 2);
        assert!(matches!(q.threads[0].instrs[1], Instr::Let { .. }));
    }

    #[test]
    fn raw_across_fmr_rejected_by_verified_policy() {
        let p = Program::builder("raw+fmr")
            .thread(|t| {
                t.store(X, 2).fence(FenceKind::Fmr).load(A, X);
            })
            .build();
        assert!(eliminate_at(&p, 0, 0, Elimination::Raw, FencePolicy::Verified).is_none());
        assert!(eliminate_at(&p, 0, 0, Elimination::Raw, FencePolicy::AnyFence).is_some());
    }

    #[test]
    fn raw_across_fww_allowed() {
        let p = Program::builder("raw+fww")
            .thread(|t| {
                t.store(X, 2).fence(FenceKind::Fww).load(A, X);
            })
            .build();
        let q = eliminate_at(&p, 0, 0, Elimination::Raw, FencePolicy::Verified).unwrap();
        assert!(matches!(q.threads[0].instrs[1], Instr::Fence(FenceKind::Fww)));
    }

    #[test]
    fn waw_keeps_last_store_and_moves_fence_before() {
        let p = Program::builder("waw")
            .thread(|t| {
                t.store(X, 1).fence(FenceKind::Fww).store(X, 2);
            })
            .build();
        let q = eliminate_at(&p, 0, 0, Elimination::Waw, FencePolicy::Verified).unwrap();
        assert!(matches!(q.threads[0].instrs[0], Instr::Fence(FenceKind::Fww)));
        assert!(matches!(q.threads[0].instrs[1], Instr::Store { val: Expr::Const(2), .. }));
    }

    #[test]
    fn rar_aliases_second_register() {
        let p = Program::builder("rar")
            .thread(|t| {
                t.load(A, X).load(B, X);
            })
            .build();
        let q = eliminate_at(&p, 0, 0, Elimination::Rar, FencePolicy::Verified).unwrap();
        assert!(matches!(q.threads[0].instrs[1], Instr::Let { dst: B, val: Expr::Reg(A) }));
    }

    #[test]
    fn elimination_respects_location_mismatch() {
        let p = Program::builder("diff-locs")
            .thread(|t| {
                t.store(X, 1).load(A, Y);
            })
            .build();
        assert!(eliminate_at(&p, 0, 0, Elimination::Raw, FencePolicy::Verified).is_none());
    }

    #[test]
    fn merge_produces_join_and_absorbs_fsc() {
        let p = corpus::merge_example();
        let q = merge_fences_at(&p, 0, 1).unwrap();
        // Frm · Fww → Fmm (which lowers to DMB FF, like the paper's Fsc).
        assert!(matches!(q.threads[0].instrs[1], Instr::Fence(FenceKind::Fmm)));
        let r = Program::builder("fsc")
            .thread(|t| {
                t.fence(FenceKind::Frr).fence(FenceKind::Fsc);
            })
            .build();
        let s = merge_fences_at(&r, 0, 0).unwrap();
        assert!(matches!(s.threads[0].instrs[0], Instr::Fence(FenceKind::Fsc)));
    }

    #[test]
    fn strengthen_only_upwards() {
        let p = Program::builder("st")
            .thread(|t| {
                t.fence(FenceKind::Frr);
            })
            .build();
        assert!(strengthen_fence_at(&p, 0, 0, FenceKind::Fsc).is_some());
        assert!(strengthen_fence_at(&p, 0, 0, FenceKind::Fww).is_none());
    }

    #[test]
    fn reorder_requires_independence() {
        let p = Program::builder("re")
            .thread(|t| {
                t.load(A, X).store(Y, 7);
            })
            .build();
        assert!(reorder_at(&p, 0, 0).is_some());
        // Dependent pair: store uses the loaded register.
        let q = Program::builder("re2")
            .thread(|t| {
                t.load(A, X).store(Y, Expr::Reg(A));
            })
            .build();
        assert!(reorder_at(&q, 0, 0).is_none());
        // Same location: never reordered.
        let r = Program::builder("re3")
            .thread(|t| {
                t.load(A, X).store(X, 1);
            })
            .build();
        assert!(reorder_at(&r, 0, 0).is_none());
    }

    #[test]
    fn false_dep_elimination_simplifies() {
        let p = corpus::false_dep();
        let q = eliminate_false_deps(&p);
        match &q.threads[0].instrs[1] {
            Instr::Store { val, .. } => assert_eq!(*val, Expr::Const(0)),
            other => panic!("unexpected: {other:?}"),
        }
        let d = eliminate_false_deps(&corpus::mp_addr_dep());
        assert!(matches!(d.threads[1].instrs[1], Instr::Load { loc: LocSpec::Direct(_), .. }));
    }
}
