//! Systematic litmus-program generation for the verification sweep.
//!
//! The paper's Agda development quantifies over all programs; we
//! approximate the ∀ by exhaustively generating every two-thread program
//! over a representative instruction alphabet and checking Theorem 1 on
//! each. The family contains (modulo renaming) all the shapes the paper's
//! proofs case-split on: MP, SB, LB, R, S, 2+2W and their RMW/fence
//! variants — in particular every counterexample of §3.2/§3.3.

use risotto_litmus::{Instr, Program, Reg, RmwKind, Thread};
use risotto_memmodel::{AccessMode, FenceKind, Loc};

/// The two locations the generated programs use.
pub const GX: Loc = Loc(0);
/// Second location.
pub const GY: Loc = Loc(1);

/// Abstract instruction template; registers are assigned at instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// Store 1 to the location.
    W(Loc),
    /// Load into a fresh register.
    R(Loc),
    /// `MFENCE`.
    MFence,
    /// `LOCK CMPXCHG(loc, 0, 1)` with a fresh old-value register.
    Rmw(Loc),
}

/// The default x86 alphabet over `{X, Y}`.
pub fn x86_alphabet() -> Vec<Template> {
    vec![
        Template::W(GX),
        Template::W(GY),
        Template::R(GX),
        Template::R(GY),
        Template::MFence,
        Template::Rmw(GX),
        Template::Rmw(GY),
    ]
}

/// A reduced alphabet (no fences) for quicker sweeps.
pub fn x86_alphabet_small() -> Vec<Template> {
    vec![Template::W(GX), Template::W(GY), Template::R(GX), Template::R(GY), Template::Rmw(GX)]
}

fn instantiate(seq: &[Template], reg_base: u32) -> Vec<Instr> {
    let mut out = Vec::new();
    let mut next_reg = reg_base;
    for t in seq {
        match t {
            Template::W(l) => out.push(Instr::Store {
                loc: (*l).into(),
                val: risotto_litmus::Expr::Const(1),
                mode: AccessMode::Plain,
            }),
            Template::R(l) => {
                out.push(Instr::Load {
                    dst: Reg(next_reg),
                    loc: (*l).into(),
                    mode: AccessMode::Plain,
                });
                next_reg += 1;
            }
            Template::MFence => out.push(Instr::Fence(FenceKind::MFence)),
            Template::Rmw(l) => {
                out.push(Instr::Rmw {
                    dst: Some(Reg(next_reg)),
                    loc: (*l).into(),
                    expected: risotto_litmus::Expr::Const(0),
                    desired: risotto_litmus::Expr::Const(1),
                    kind: RmwKind::X86Lock,
                });
                next_reg += 1;
            }
        }
    }
    out
}

fn sequences(alphabet: &[Template], len: usize) -> Vec<Vec<Template>> {
    if len == 0 {
        return vec![Vec::new()];
    }
    let shorter = sequences(alphabet, len - 1);
    let mut out = Vec::new();
    for s in &shorter {
        for &t in alphabet {
            let mut s2 = s.clone();
            s2.push(t);
            out.push(s2);
        }
    }
    out
}

/// Generates every two-thread program whose threads are length-`len`
/// sequences over `alphabet`, deduplicated under thread swap. `stride`
/// subsamples the family (1 = all).
///
/// # Panics
///
/// Panics if `stride` is 0.
pub fn generate_two_thread(alphabet: &[Template], len: usize, stride: usize) -> Vec<Program> {
    assert!(stride > 0, "stride must be positive");
    let seqs = sequences(alphabet, len);
    let mut out = Vec::new();
    let mut n = 0usize;
    for (i, t0) in seqs.iter().enumerate() {
        for t1 in seqs.iter().skip(i) {
            n += 1;
            if !(n - 1).is_multiple_of(stride) {
                continue;
            }
            out.push(Program {
                name: format!("gen-{n}"),
                init: Default::default(),
                threads: vec![
                    Thread { instrs: instantiate(t0, 0) },
                    Thread { instrs: instantiate(t1, 8) },
                ],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_counts() {
        let a = x86_alphabet_small();
        let seqs = sequences(&a, 2);
        assert_eq!(seqs.len(), 25);
        // Unordered pairs with repetition: n(n+1)/2 = 325.
        let all = generate_two_thread(&a, 2, 1);
        assert_eq!(all.len(), 325);
        let sampled = generate_two_thread(&a, 2, 10);
        assert_eq!(sampled.len(), 33);
    }

    #[test]
    fn generated_programs_have_fresh_registers() {
        let p = &generate_two_thread(&[Template::R(GX)], 2, 1)[0];
        match (&p.threads[0].instrs[0], &p.threads[0].instrs[1]) {
            (Instr::Load { dst: a, .. }, Instr::Load { dst: b, .. }) => assert_ne!(a, b),
            _ => panic!("expected loads"),
        }
    }
}
