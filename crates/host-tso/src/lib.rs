//! # risotto-host-tso
//!
//! The MiniTSO (x86-TSO) host backend: a second [`HostBackend`]
//! implementation behind the trait introduced for the Arm backend,
//! exercising the *other* direction of the architecture-to-architecture
//! mapping question (Chakraborty 2020): translating onto a host whose
//! memory model is **stronger** than the TCG IR's ordering vocabulary.
//!
//! Under x86-TSO every ld→ld, st→st and ld→st ordering is free — the
//! only reordering the hardware performs is store→load through the
//! store buffer. The TCG fence lowering therefore collapses (see
//! [`FenceKind::tso_fence`], verified exhaustively against
//! `risotto-memmodel::models::x86::X86Tso` in the Theorem-1 sweep):
//!
//! * fences whose ordering covers **write→read** (`Fwr`, `Fwm`, `Fmr`,
//!   `Fmm`, `Fsc`) lower to `MFENCE`;
//! * every other TCG fence (`Frr`, `Frw`, `Frm`, `Fww`, `Fmw`, `Facq`,
//!   `Frel`) lowers to **nothing**;
//! * acquire loads and release stores lower to plain `MOV`s;
//! * RMWs use `LOCK`-prefixed forms (`LOCK CMPXCHG`, `LOCK XADD`),
//!   which carry full-fence semantics on both sides.
//!
//! ## The container encoding
//!
//! MiniTSO code is expressed in the shared [`HostInsn`] container ISA
//! (the simulated machine executes one instruction vocabulary), using a
//! restricted dialect with a fixed x86 reading:
//!
//! | dialect instruction | x86 meaning |
//! |---|---|
//! | `Ldr`/`Str` (`MemOrder::Plain`) | `MOV` load/store |
//! | `Barrier(Dmb::Ff)` | `MFENCE` |
//! | `Cas { acq_rel: true }` | `LOCK CMPXCHG` |
//! | `LdaddAl` | `LOCK XADD` |
//!
//! Exclusive pairs (`Ldxr`/`Stxr`), partial barriers (`Dmb::Ld`/`St`)
//! and acquire/release access orderings have no x86 equivalent and are
//! **forbidden**; the TSO Pass 3 dialect check rejects them, and a
//! `Cas { acq_rel: false }` (a dropped `LOCK` prefix) is likewise
//! rejected. The simulated machine is operationally exact for this
//! dialect: its only weakness is FIFO store buffering with own-store
//! forwarding — precisely x86-TSO — and `Barrier(Dmb::Ff)` drains the
//! buffer exactly as `MFENCE` does.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use risotto_host_arm::{
    check_encoding_with, encoding_err, fp_op_of, helper_index, lower_block_with_dialect,
    BackendConfig, BackendError, CostModel, Dmb, EncodingDialect, HostAsm, HostBackend, HostInsn,
    LowerOutput, MemOrder, OrderingLowering, Point, Xreg,
};
use risotto_memmodel::FenceKind;
use risotto_tcg::{TcgBlock, TcgOp, VerifyError};

/// The container instruction implementing a TCG fence on MiniTSO:
/// `Barrier(Dmb::Ff)` (≙ `MFENCE`) iff the fence's ordering covers
/// write→read, `None` otherwise. Thin wrapper over the shared
/// [`FenceKind::tso_fence`] table so the lowering and the verifier
/// consult one source of truth.
pub fn tso_fence_insn(k: FenceKind) -> Option<HostInsn> {
    k.tso_fence().map(|_| HostInsn::Barrier(Dmb::Ff))
}

/// The TSO ordering dialect: `MFENCE` only for store→load obligations,
/// `LOCK`-prefixed RMWs.
///
/// Unlike Arm's [`risotto_host_arm::RmwStyle`] choice, x86 has a single
/// RMW idiom — `BackendConfig::rmw` is ignored (`LOCK` already carries
/// the bracketing-fence semantics `Rmw2Fenced` emulates on Arm).
#[derive(Debug, Clone, Copy, Default)]
pub struct TsoOrdering;

impl OrderingLowering for TsoOrdering {
    fn fence(&self, k: FenceKind) -> Option<HostInsn> {
        tso_fence_insn(k)
    }

    fn cas(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        expect: Xreg,
        new: Xreg,
        _cfg: BackendConfig,
    ) {
        // LOCK CMPXCHG: dst preloaded with the expected value, the
        // acq_rel flag is the dialect's LOCK prefix (full-fence RMW).
        asm.push(HostInsn::MovReg { dst, src: expect });
        asm.push(HostInsn::Cas { cmp_old: dst, new, addr, acq_rel: true });
    }

    fn atomic_add(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        addend: Xreg,
        _cfg: BackendConfig,
    ) {
        // LOCK XADD.
        asm.push(HostInsn::LdaddAl { old: dst, addend, addr });
    }
}

/// Lowers an (optimized) TCG block through the TSO dialect.
///
/// Convenience wrapper over the shared
/// [`lower_block_with_dialect`] skeleton with [`TsoOrdering`].
pub fn lower_block_tso(block: &TcgBlock, cfg: BackendConfig) -> Result<LowerOutput, BackendError> {
    lower_block_with_dialect(block, cfg, &TsoOrdering)
}

/// The TSO encoding dialect for Pass 3 of the translation validator.
///
/// Re-derives the expected ordering points from the IR through
/// [`FenceKind::tso_fence`] — independently of the lowering — and
/// restricts the decoded stream to the MiniTSO instruction subset.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsoEncodingDialect;

impl EncodingDialect for TsoEncodingDialect {
    fn expected_points(&self, op: &TcgOp, cfg: BackendConfig, out: &mut Vec<Point>) {
        let plain = MemOrder::Plain;
        match op {
            TcgOp::Ld { .. } => out.push(Point::Access { load: true, byte: false, order: plain }),
            TcgOp::Ld8 { .. } => out.push(Point::Access { load: true, byte: true, order: plain }),
            TcgOp::St { .. } => out.push(Point::Access { load: false, byte: false, order: plain }),
            TcgOp::St8 { .. } => out.push(Point::Access { load: false, byte: true, order: plain }),
            TcgOp::Fence(k) if k.tso_fence().is_some() => out.push(Point::Dmb(Dmb::Ff)), // MFENCE
            TcgOp::Fence(_) => {}
            // One RMW idiom regardless of `cfg.rmw`: the LOCK forms.
            TcgOp::Cas { .. } => out.push(Point::Cas { acq_rel: true }),
            TcgOp::AtomicAdd { .. } => out.push(Point::Ldadd),
            TcgOp::CallHelper { helper, .. }
                if !(cfg.hardware_fp && fp_op_of(*helper).is_some()) =>
            {
                out.push(Point::Helper(helper_index(*helper)));
            }
            TcgOp::SideExit { .. } => out.push(Point::Exit),
            _ => {}
        }
    }

    fn check_dialect(&self, block: &TcgBlock, decoded: &[HostInsn]) -> Result<(), VerifyError> {
        for (pos, insn) in decoded.iter().enumerate() {
            let violation = match insn {
                HostInsn::Ldxr { .. } | HostInsn::Stxr { .. } => {
                    Some("exclusive-pair instruction (no x86 equivalent)")
                }
                HostInsn::Barrier(Dmb::Ld) | HostInsn::Barrier(Dmb::St) => {
                    Some("partial barrier (x86 has only MFENCE)")
                }
                HostInsn::Ldr { order, .. } | HostInsn::Str { order, .. }
                    if !matches!(order, MemOrder::Plain) =>
                {
                    Some("acquire/release access ordering (TSO uses plain MOVs)")
                }
                HostInsn::Cas { acq_rel: false, .. } => {
                    Some("CAS without the LOCK-equivalent acq_rel flag")
                }
                _ => None,
            };
            if let Some(what) = violation {
                return Err(encoding_err(
                    block,
                    None,
                    format!("TSO dialect violation at host instruction {pos}: {what}"),
                ));
            }
        }
        Ok(())
    }
}

/// Pass 3 for MiniTSO code: the shared encoding checks under the
/// [`TsoEncodingDialect`].
pub fn check_encoding_tso(
    block: &TcgBlock,
    insns: &[HostInsn],
    bytes: &[u8],
    cfg: BackendConfig,
) -> Result<(), VerifyError> {
    check_encoding_with(block, insns, bytes, cfg, &TsoEncodingDialect)
}

/// The calibrated cycle model of the simulated x86 server host.
///
/// Shape constraints mirrored from the Arm calibration where the class
/// exists, with the TSO-specific differences: `MFENCE` (`dmb_ff`) is
/// cheaper than an Arm `DMB FF` (store-buffer drain only, no remote
/// invalidation wait), the partial-barrier classes are unreachable
/// (this backend never emits them — kept at the full-fence cost so a
/// dialect bug would surface in cycle counts, not vanish), and `LOCK`
/// RMWs are slightly cheaper than Arm's `casal` path.
pub fn x86_server_like() -> CostModel {
    CostModel {
        dmb_ff: 33,
        dmb_ld: 33,
        dmb_st: 33,
        atomic: 20,
        acq_rel_extra: 0,
        ..CostModel::thunderx2_like()
    }
}

/// The MiniTSO host backend: [`TsoOrdering`] dialect, the x86-server
/// cost calibration, and the TSO Pass 3 read-back.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsoBackend;

impl OrderingLowering for TsoBackend {
    fn fence(&self, k: FenceKind) -> Option<HostInsn> {
        TsoOrdering.fence(k)
    }

    fn cas(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        expect: Xreg,
        new: Xreg,
        cfg: BackendConfig,
    ) {
        TsoOrdering.cas(asm, dst, addr, expect, new, cfg);
    }

    fn atomic_add(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        addend: Xreg,
        cfg: BackendConfig,
    ) {
        TsoOrdering.atomic_add(asm, dst, addr, addend, cfg);
    }
}

impl HostBackend for TsoBackend {
    fn name(&self) -> &'static str {
        "tso"
    }

    fn cost_model(&self) -> CostModel {
        x86_server_like()
    }

    fn check_encoding(
        &self,
        block: &TcgBlock,
        insns: &[HostInsn],
        bytes: &[u8],
        cfg: BackendConfig,
    ) -> Result<(), VerifyError> {
        check_encoding_tso(block, insns, bytes, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_host_arm::RmwStyle;
    use risotto_tcg::{FrontendConfig, OptPolicy, VerifyPass};

    fn tso_cfg() -> BackendConfig {
        BackendConfig::dbt(RmwStyle::Casal)
    }

    fn translate(
        f: impl FnOnce(&mut risotto_guest_x86::Assembler),
        fe: FrontendConfig,
        opt: bool,
    ) -> TcgBlock {
        let mut a = risotto_guest_x86::Assembler::new(0x1000);
        f(&mut a);
        let (bytes, _) = a.finish().expect("assembles");
        let fetch = move |addr: u64| {
            let mut w = [0u8; 16];
            let off = (addr - 0x1000) as usize;
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = bytes.get(off + i).copied().unwrap_or(0);
            }
            w
        };
        let mut block = risotto_tcg::translate_block(0x1000, fe, fetch).expect("translates");
        if opt {
            risotto_tcg::optimize(&mut block, OptPolicy::Verified);
        }
        block
    }

    fn lower_snippet(
        f: impl FnOnce(&mut risotto_guest_x86::Assembler),
        fe: FrontendConfig,
    ) -> (TcgBlock, Vec<HostInsn>) {
        let block = translate(f, fe, true);
        let insns = lower_block_tso(&block, tso_cfg()).expect("tso lowering").insns;
        (block, insns)
    }

    fn encode(insns: &[HostInsn]) -> Vec<u8> {
        let mut enc = Vec::new();
        for i in insns {
            i.encode(&mut enc);
        }
        enc
    }

    #[test]
    fn fence_hook_matches_shared_tso_table() {
        for k in FenceKind::TCG_ALL {
            let lowered = TsoOrdering.fence(k);
            match k.tso_fence() {
                Some(FenceKind::MFence) => {
                    assert_eq!(lowered, Some(HostInsn::Barrier(Dmb::Ff)), "{k:?}");
                }
                Some(other) => unreachable!("tso_fence returned {other:?}"),
                None => assert_eq!(lowered, None, "{k:?}"),
            }
        }
    }

    #[test]
    fn message_passing_lowers_fence_free() {
        use risotto_guest_x86::Gpr;
        // The Arm backend turns this verified-frontend snippet into
        // LDR; DMBLD … DMBST; STR. On TSO both fences (Frm, Fww) are
        // free. Unoptimized on purpose: the §6.1 fence-merging pass
        // combines the adjacent Frm·Fww into one Fmm, which covers
        // write→read and so *does* cost an MFENCE — Arm-profitable,
        // TSO-pessimal (see the companion test below).
        let block = translate(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.store(Gpr::RSI, 0, Gpr::RAX);
                a.hlt();
            },
            FrontendConfig::tcg_ver(),
            false,
        );
        let code = lower_block_tso(&block, tso_cfg()).unwrap().insns;
        assert!(
            !code.iter().any(|i| matches!(i, HostInsn::Barrier(_))),
            "ld→ld/st→st orderings must cost nothing on TSO"
        );
    }

    #[test]
    fn fence_merging_is_sound_but_pessimal_on_tso() {
        use risotto_guest_x86::Gpr;
        // The merged Fmm strengthens Frm·Fww (sound per Theorem 1), and
        // its write→read coverage makes the TSO lowering emit an MFENCE
        // where the unmerged fences were both free.
        let (_, code) = lower_snippet(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.store(Gpr::RSI, 0, Gpr::RAX);
                a.hlt();
            },
            FrontendConfig::tcg_ver(),
        );
        let ff = code.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::Ff))).count();
        assert_eq!(ff, 1, "the merged Fmm costs exactly one MFENCE");
    }

    #[test]
    fn store_load_fence_becomes_mfence() {
        use risotto_guest_x86::Gpr;
        let (_, code) = lower_snippet(
            |a| {
                a.store(Gpr::RDI, 0, Gpr::RAX);
                a.mfence();
                a.load(Gpr::RAX, Gpr::RSI, 0);
                a.hlt();
            },
            FrontendConfig::tcg_ver(),
        );
        let ff = code.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::Ff))).count();
        assert_eq!(ff, 1, "the programmer's MFENCE must survive as one full barrier");
        assert!(!code.iter().any(|i| matches!(i, HostInsn::Barrier(Dmb::Ld | Dmb::St))));
    }

    #[test]
    fn rmws_lower_to_lock_forms_regardless_of_rmw_style() {
        use risotto_guest_x86::Gpr;
        for rmw in [RmwStyle::Casal, RmwStyle::Rmw2Fenced] {
            let mut a = risotto_guest_x86::Assembler::new(0x1000);
            a.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
            a.hlt();
            let (bytes, _) = a.finish().unwrap();
            let fetch = move |addr: u64| {
                let mut w = [0u8; 16];
                let off = (addr - 0x1000) as usize;
                for (i, slot) in w.iter_mut().enumerate() {
                    *slot = bytes.get(off + i).copied().unwrap_or(0);
                }
                w
            };
            let block =
                risotto_tcg::translate_block(0x1000, FrontendConfig::risotto(), fetch).unwrap();
            let code = lower_block_tso(&block, BackendConfig::dbt(rmw)).unwrap().insns;
            assert!(
                code.iter().any(|i| matches!(i, HostInsn::Cas { acq_rel: true, .. })),
                "LOCK CMPXCHG under {rmw:?}"
            );
            assert!(
                !code.iter().any(|i| matches!(i, HostInsn::Ldxr { .. } | HostInsn::Stxr { .. })),
                "no exclusive pairs on x86 under {rmw:?}"
            );
        }
    }

    #[test]
    fn clean_tso_encoding_verifies() {
        use risotto_guest_x86::Gpr;
        let (block, insns) = lower_snippet(
            |a| {
                a.store(Gpr::RDI, 0, Gpr::RAX);
                a.mfence();
                a.cmpxchg(Gpr::RDI, 8, Gpr::RSI);
                a.load(Gpr::RAX, Gpr::RSI, 0);
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        check_encoding_tso(&block, &insns, &encode(&insns), tso_cfg()).unwrap();
    }

    #[test]
    fn dropped_mfence_is_flagged() {
        use risotto_guest_x86::Gpr;
        let (block, mut insns) = lower_snippet(
            |a| {
                a.store(Gpr::RDI, 0, Gpr::RAX);
                a.mfence();
                a.load(Gpr::RAX, Gpr::RSI, 0);
                a.hlt();
            },
            FrontendConfig::tcg_ver(),
        );
        let at = insns.iter().position(|i| matches!(i, HostInsn::Barrier(_))).unwrap();
        insns.remove(at);
        let e = check_encoding_tso(&block, &insns, &encode(&insns), tso_cfg()).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Encoding);
    }

    #[test]
    fn dropped_lock_prefix_is_flagged() {
        use risotto_guest_x86::Gpr;
        let (block, mut insns) = lower_snippet(
            |a| {
                a.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let at = insns.iter().position(|i| matches!(i, HostInsn::Cas { .. })).unwrap();
        if let HostInsn::Cas { acq_rel, .. } = &mut insns[at] {
            *acq_rel = false; // strip the LOCK prefix
        }
        let e = check_encoding_tso(&block, &insns, &encode(&insns), tso_cfg()).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Encoding);
    }

    #[test]
    fn arm_dialect_instructions_are_rejected() {
        use risotto_guest_x86::Gpr;
        // Lower the same verified block with the *Arm* dialect under
        // Rmw2Fenced (exclusive pairs + partial barriers) and present
        // it to the TSO checker: every foreign instruction must fail
        // the dialect restriction.
        let mut a = risotto_guest_x86::Assembler::new(0x1000);
        a.load(Gpr::RAX, Gpr::RDI, 0);
        a.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
        a.hlt();
        let (bytes, _) = a.finish().unwrap();
        let fetch = move |addr: u64| {
            let mut w = [0u8; 16];
            let off = (addr - 0x1000) as usize;
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = bytes.get(off + i).copied().unwrap_or(0);
            }
            w
        };
        let mut block =
            risotto_tcg::translate_block(0x1000, FrontendConfig::risotto(), fetch).unwrap();
        risotto_tcg::optimize(&mut block, OptPolicy::Verified);
        let cfg = BackendConfig::dbt(RmwStyle::Rmw2Fenced);
        let arm = risotto_host_arm::lower_block(&block, cfg).unwrap();
        let e = check_encoding_tso(&block, &arm, &encode(&arm), cfg).unwrap_err();
        assert!(e.obligation.contains("TSO dialect violation"), "{}", e.obligation);
    }

    #[test]
    fn corrupted_byte_is_flagged() {
        use risotto_guest_x86::Gpr;
        let (block, insns) = lower_snippet(
            |a| {
                a.store(Gpr::RDI, 0, Gpr::RAX);
                a.mfence();
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let enc = encode(&insns);
        for off in 0..enc.len() {
            let mut bad = enc.clone();
            bad[off] ^= 0xff;
            assert!(
                check_encoding_tso(&block, &insns, &bad, tso_cfg()).is_err(),
                "corruption at byte {off} not flagged"
            );
        }
    }

    #[test]
    fn cost_calibration_orderings_hold() {
        let tso = x86_server_like();
        let arm = CostModel::thunderx2_like();
        assert!(tso.dmb_ff < arm.dmb_ff, "MFENCE drains locally, no remote wait");
        assert!(tso.atomic < arm.atomic, "LOCK RMW beats casal on its home ISA");
        assert_eq!(tso.acq_rel_extra, 0, "acquire/release are plain MOVs on TSO");
        assert_eq!(TsoBackend.cost_model(), tso);
        assert_eq!(TsoBackend.name(), "tso");
    }
}
