//! The multi-core weak-memory host machine simulator.
//!
//! Cores execute MiniArm code from a shared code cache against shared
//! memory, with per-core FIFO *store buffers* (stores become globally
//! visible when drained; loads forward from the own buffer), per-core
//! exclusive monitors for `LDXR`/`STXR`, and a calibrated cycle-cost
//! model. Scheduling is discrete-event: the core with the smallest local
//! clock runs next, so the reported runtime is the maximum core clock —
//! a parallel-execution time.
//!
//! Operationally the machine is TSO-like (store buffering only). The
//! *additional* Arm weakness (load-load reordering etc.) is covered
//! exactly by the axiomatic layer (`risotto-memmodel`/`risotto-litmus`);
//! see DESIGN.md §10. Fences, acquire/release and atomics still have
//! their architectural *costs* and their buffer-drain semantics here.

use crate::cost::CostModel;
#[cfg(test)]
use crate::insn::ACond;
use crate::insn::{AOp, Dmb, HostInsn, MemOrder, Nzcv, TbExitKind, Xreg, JUMP_CHAIN_OFFSET};
use risotto_guest_x86::{softfloat, SparseMem};
use std::collections::{HashMap, HashSet, VecDeque};

/// Base address where translated host code lives (outside guest ranges).
pub const CODE_BASE: u64 = 0x4000_0000;

/// Entries in each core's direct-mapped indirect-branch lookup cache
/// (guest pc → host pc; the QEMU `tb_jmp_cache` analogue).
const JCACHE_SIZE: usize = 64;

/// Store-buffer capacity per core.
const STORE_BUFFER_CAP: usize = 16;
/// Age (cycles) after which a buffered store drains on its own.
const DRAIN_AGE: u64 = 96;

/// A result returned by a registered native host function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeResult {
    /// Return value (goes to X0).
    pub ret: u64,
    /// Cycles charged for the native execution.
    pub cost: u64,
}

/// A native host library function: receives shared memory and the six
/// argument registers.
pub type NativeFn = Box<dyn FnMut(&mut SparseMem, &[u64; 6]) -> NativeResult>;

/// Events that suspend the machine back to the DBT engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Every started core has halted.
    AllHalted,
    /// A TB exit targeted a guest pc with no installed translation; the
    /// engine must translate and [`Machine::map_tb`] it, then resume.
    TranslationMiss {
        /// Core that missed.
        core: usize,
        /// Guest pc needing translation.
        guest_pc: u64,
    },
    /// A guest syscall; the engine services it and redirects the core.
    GuestSyscall {
        /// Core performing the syscall.
        core: usize,
        /// Guest pc following the syscall.
        next: u64,
    },
    /// The global step budget was exhausted (runaway guest).
    OutOfFuel,
    /// A profiled block's execution count crossed the hotness threshold
    /// (see [`Machine::set_hot_threshold`]); the engine may promote it
    /// to a tier-2 superblock. The triggering transfer has already
    /// completed — the core continues from its (tier-1) target when the
    /// machine resumes, so this event never perturbs execution.
    HotTb {
        /// Core whose transfer crossed the threshold.
        core: usize,
        /// Guest pc of the hot block (candidate superblock head).
        guest_pc: u64,
    },
    /// A core hit unexecutable host state (undecodable code bytes, an
    /// unknown helper index, an out-of-range native function index).
    /// The faulting core is left un-advanced at `host_pc`; the engine
    /// decides whether to re-translate, fall back, or abort.
    HostFault {
        /// The faulting core.
        core: usize,
        /// Host pc of the faulting instruction.
        host_pc: u64,
        /// What kind of fault occurred.
        kind: HostFaultKind,
    },
}

/// Classification of a [`Event::HostFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFaultKind {
    /// The bytes at `host_pc` did not decode as a MiniArm instruction
    /// (or lay outside the installed code cache).
    Decode,
    /// A `Hcall` named a helper index the machine does not implement.
    UnknownHelper(u8),
    /// A `NativeCall` named an unregistered native function index.
    UnknownNative(u16),
}

/// How [`Machine::run`] picks the next core to step.
///
/// All three policies are deterministic (the random policy is seeded),
/// so any schedule-dependent failure reproduces exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Discrete-event order: the runnable core with the smallest local
    /// clock runs next (the default; reported runtime = max core clock).
    Deterministic,
    /// Seeded pseudo-random choice among runnable cores.
    Random(u64),
    /// Adversarial: always run the *most advanced* runnable core,
    /// maximizing clock skew between cores (worst case for code that
    /// polls cross-core state).
    Adversarial,
}

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions executed.
    pub insns: u64,
    /// `DMB` barriers executed, by kind (LD, ST, FF).
    pub dmb: [u64; 3],
    /// Atomic RMW instructions executed.
    pub atomics: u64,
    /// Helper calls.
    pub helper_calls: u64,
    /// Native library calls.
    pub native_calls: u64,
    /// Cycles attributed to barriers.
    pub fence_cycles: u64,
}

/// One atomic read-modify-write recorded by the machine's atomic-access
/// log (see [`Machine::set_atomic_log`]). Every successful or failed
/// hardware RMW — `casal`, `ldaddal`, a winning `stxr`, and the
/// sequentially-consistent helper atomics — appends one event in
/// execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicEvent {
    /// Core that executed the access.
    pub core: usize,
    /// Target memory address.
    pub addr: u64,
    /// Value the RMW read from memory.
    pub old: u64,
    /// Value the RMW left in memory (equals `old` for a failed
    /// compare-exchange).
    pub new: u64,
}

/// Counters for the translation-block code cache (machine-wide totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Code regions installed (one per translation, thunk included).
    pub installs: u64,
    /// Installs that reused a freed region instead of growing the cache.
    pub region_reuses: u64,
    /// Mappings removed by [`Machine::unmap_tb`] (evictions,
    /// invalidations, and link-library rebinds).
    pub evictions: u64,
    /// Superblocks installed via [`Machine::install_superblock`].
    pub sb_installs: u64,
    /// Tier-1 translations evicted because a superblock subsumed them
    /// (a subset of `evictions`).
    pub sb_subsumed: u64,
}

/// Per-translation-block execution profile entry (see
/// [`Machine::set_profiling`]). Keyed by guest pc in
/// [`Machine::tb_profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TbProf {
    /// Times the block was entered via a machine-resolved transfer
    /// (patched chain, jump cache, or dispatcher lookup).
    pub execs: u64,
    /// Entries that missed the fast path (dispatcher lookup after an
    /// unpatched chain slot or a jump-cache miss).
    pub chain_misses: u64,
}

/// Counters for the TB-chaining machinery (machine-wide totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Direct-jump exits that followed an already-patched chain slot
    /// (no map lookup; charged `cost.tb_chain`).
    pub chain_hits: u64,
    /// Direct-jump exits resolved through the dispatcher and then patched
    /// (first traversal of a chain site; charged `cost.tb_dispatch`).
    pub chain_links: u64,
    /// Chain slots un-patched and jump-cache entries dropped because the
    /// block they pointed to was unmapped or replaced.
    pub chain_flushes: u64,
    /// Indirect (`JumpReg`) exits that hit the per-core jump cache.
    pub dispatch_hits: u64,
    /// Indirect exits that went through the full dispatcher lookup.
    pub dispatch_misses: u64,
    /// Machine-resolved transfers that entered a superblock head
    /// (tier-2 body executions; counted on every entry path).
    pub sb_entries: u64,
}

#[derive(Debug, Clone)]
struct Core {
    regs: [u64; Xreg::COUNT],
    nzcv: Nzcv,
    pc: u64,
    cycles: u64,
    halted: bool,
    started: bool,
    store_buffer: VecDeque<(u64, u64, u64)>, // (addr, value, insert_cycle)
    monitor: Option<u64>,
    stats: CoreStats,
    /// Direct-mapped guest-pc → host-pc cache for `JumpReg` exits.
    /// `(u64::MAX, _)` marks an empty slot (never a valid guest pc here).
    jcache: Vec<(u64, u64)>,
    /// Per-core deterministic jitter stream: real machines have timing
    /// noise that breaks the phase-lock a discrete-event simulator
    /// otherwise falls into on contended atomics.
    jitter: u64,
}

impl Core {
    fn new() -> Core {
        Core {
            regs: [0; Xreg::COUNT],
            nzcv: Nzcv::default(),
            pc: 0,
            cycles: 0,
            halted: true,
            started: false,
            store_buffer: VecDeque::new(),
            monitor: None,
            stats: CoreStats::default(),
            jcache: vec![(u64::MAX, 0); JCACHE_SIZE],
            jitter: 0x9E3779B97F4A7C15,
        }
    }

    /// Next jitter value in 0..16 (xorshift, seeded per construction and
    /// perturbed by the core's own execution history).
    fn next_jitter(&mut self) -> u64 {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        self.jitter & 15
    }

    fn get(&self, r: Xreg) -> u64 {
        if r.0 == 31 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn set(&mut self, r: Xreg, v: u64) {
        if r.0 != 31 {
            self.regs[r.index()] = v;
        }
    }
}

/// The host machine.
pub struct Machine {
    /// Shared memory (guest address space + runtime areas).
    pub mem: SparseMem,
    cores: Vec<Core>,
    code: Vec<u8>,
    decode_cache: HashMap<u64, (HostInsn, u16)>,
    tb_map: HashMap<u64, u64>,
    natives: Vec<NativeFn>,
    cost: CostModel,
    /// Recent RMW sites for the contention model: addr → (cycle, core).
    rmw_history: HashMap<u64, Vec<(u64, usize)>>,
    total_steps: u64,
    sched: SchedPolicy,
    sched_state: u64,
    /// TB chaining on/off. Off = every exit takes the dispatcher path
    /// (the reference configuration for differential checks).
    chaining: bool,
    chain_stats: ChainStats,
    cache_stats: CacheStats,
    /// Per-TB execution profile (guest pc → counts), `None` unless
    /// enabled — the common case pays only this `Option` check.
    profile: Option<HashMap<u64, TbProf>>,
    /// Reverse chain index: target guest pc → host pcs of the
    /// `ExitTb(Jump)` sites currently patched to point at its translation.
    /// Consulted on unmap so every chain into a dead TB is unlinked
    /// *before* the mapping (and the code bytes) go away.
    incoming: HashMap<u64, Vec<u64>>,
    /// Install regions: host start address → encoded byte length.
    regions: HashMap<u64, usize>,
    /// Reusable holes in `code`: (byte offset, length), unordered.
    free_list: Vec<(usize, usize)>,
    /// Regions whose free is deferred because a core was parked inside
    /// them when they were unmapped; retried on later installs/unmaps.
    pending_free: Vec<(u64, usize)>,
    /// Hotness threshold for [`Event::HotTb`]; `None` disables tier-2
    /// promotion signalling entirely (the default).
    hot_threshold: Option<u64>,
    /// Guest pcs whose current translation is a superblock. Suppresses
    /// re-promotion signals and feeds `ChainStats::sb_entries`.
    sb_heads: HashSet<u64>,
    /// Ordered atomic RMW event log; `None` (the default) disables
    /// recording entirely. See [`Machine::set_atomic_log`].
    atomic_log: Option<Vec<AtomicEvent>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("code_bytes", &self.code.len())
            .field("tbs", &self.tb_map.len())
            .field("natives", &self.natives.len())
            .finish()
    }
}

impl Machine {
    /// Creates a machine with `n_cores` (all idle) and a cost model.
    pub fn new(n_cores: usize, cost: CostModel) -> Machine {
        Machine {
            mem: SparseMem::new(),
            cores: (0..n_cores)
                .map(|i| {
                    let mut c = Core::new();
                    c.jitter = c.jitter.wrapping_mul(i as u64 * 2 + 1);
                    c
                })
                .collect(),
            code: Vec::new(),
            decode_cache: HashMap::new(),
            tb_map: HashMap::new(),
            natives: Vec::new(),
            cost,
            rmw_history: HashMap::new(),
            total_steps: 0,
            sched: SchedPolicy::Deterministic,
            sched_state: 0x243F_6A88_85A3_08D3,
            chaining: true,
            chain_stats: ChainStats::default(),
            cache_stats: CacheStats::default(),
            profile: None,
            incoming: HashMap::new(),
            regions: HashMap::new(),
            free_list: Vec::new(),
            pending_free: Vec::new(),
            hot_threshold: None,
            sb_heads: HashSet::new(),
            atomic_log: None,
        }
    }

    /// Enables or disables the ordered atomic-access event log (off by
    /// default; purely observational — never affects cycles, memory or
    /// scheduling). Differential harnesses use the per-core sequence of
    /// [`AtomicEvent`]s as an ordering oracle across translation
    /// configurations. Toggling in either direction clears the log.
    pub fn set_atomic_log(&mut self, on: bool) {
        self.atomic_log = if on { Some(Vec::new()) } else { None };
    }

    /// Drains and returns the recorded atomic events (empty when the log
    /// is disabled). Recording continues afterwards if enabled.
    pub fn take_atomic_log(&mut self) -> Vec<AtomicEvent> {
        self.atomic_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn log_atomic(&mut self, core: usize, addr: u64, old: u64, new: u64) {
        if let Some(log) = &mut self.atomic_log {
            log.push(AtomicEvent { core, addr, old, new });
        }
    }

    /// Enables or disables TB chaining and the indirect jump cache.
    ///
    /// Disabled, every exit resolves through the `tb_map` dispatcher
    /// (charged `cost.tb_dispatch`) — the reference configuration that
    /// chained runs are differentially checked against. Chain slots
    /// already patched keep being maintained (unmapping still unlinks
    /// them) but are ignored, so the flag can be toggled at any point.
    pub fn set_chaining(&mut self, on: bool) {
        self.chaining = on;
    }

    /// Machine-wide chaining/dispatch counters.
    pub fn chain_stats(&self) -> ChainStats {
        self.chain_stats
    }

    /// Machine-wide code-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Enables or disables the per-TB execution profile (off by default;
    /// purely observational — never affects cycles or scheduling).
    /// Disabling discards any collected profile; re-enabling an already
    /// active profile keeps its counts.
    pub fn set_profiling(&mut self, on: bool) {
        if on {
            if self.profile.is_none() {
                self.profile = Some(HashMap::new());
            }
        } else {
            self.profile = None;
        }
    }

    /// The collected per-TB execution profile (guest pc → counts), or
    /// `None` if profiling was never enabled.
    pub fn tb_profile(&self) -> Option<&HashMap<u64, TbProf>> {
        self.profile.as_ref()
    }

    /// Records a block entry in the profile, if enabled. Returns `true`
    /// when the entry crossed the hotness threshold and the block is not
    /// already a superblock head — the caller turns that into
    /// [`Event::HotTb`] *after* completing the transfer.
    fn profile_entry(&mut self, guest_pc: u64, miss: bool) -> bool {
        if !self.sb_heads.is_empty() && self.sb_heads.contains(&guest_pc) {
            self.chain_stats.sb_entries += 1;
        }
        if let Some(p) = &mut self.profile {
            let e = p.entry(guest_pc).or_default();
            e.execs += 1;
            e.chain_misses += miss as u64;
            if let Some(t) = self.hot_threshold {
                return e.execs % t == 0 && !self.sb_heads.contains(&guest_pc);
            }
        }
        false
    }

    /// Sets the execution-count threshold at which a profiled block
    /// raises [`Event::HotTb`] (every `t` entries, so a declined
    /// promotion retriggers later). Requires profiling
    /// ([`Machine::set_profiling`]) to be on to have any effect;
    /// `None` (the default) never raises the event. Values are clamped
    /// to at least 1.
    pub fn set_hot_threshold(&mut self, threshold: Option<u64>) {
        self.hot_threshold = threshold.map(|t| t.max(1));
    }

    /// `true` if `guest_pc`'s current translation is a superblock.
    pub fn is_sb_head(&self, guest_pc: u64) -> bool {
        self.sb_heads.contains(&guest_pc)
    }

    /// Selects the scheduling policy (see [`SchedPolicy`]).
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched = policy;
        if let SchedPolicy::Random(seed) = policy {
            // Never let the xorshift state be zero.
            self.sched_state = seed | 1;
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Installs encoded host instructions; returns their start address.
    ///
    /// Freed regions (from [`Machine::unmap_tb`]) are reused first-fit, so
    /// retranslation churn does not grow the code buffer without bound.
    pub fn install_code(&mut self, insns: &[HostInsn]) -> u64 {
        let mut bytes = Vec::new();
        for i in insns {
            i.encode(&mut bytes);
        }
        self.retry_pending_frees();
        self.cache_stats.installs += 1;
        let addr = match self.free_list.iter().position(|&(_, len)| len >= bytes.len()) {
            Some(slot) => {
                self.cache_stats.region_reuses += 1;
                let (off, len) = self.free_list.swap_remove(slot);
                self.code[off..off + bytes.len()].copy_from_slice(&bytes);
                if len > bytes.len() {
                    self.free_list.push((off + bytes.len(), len - bytes.len()));
                }
                CODE_BASE + off as u64
            }
            None => {
                let off = self.code.len();
                self.code.extend_from_slice(&bytes);
                CODE_BASE + off as u64
            }
        };
        self.regions.insert(addr, bytes.len());
        addr
    }

    /// Total bytes of installed host code (code-cache footprint,
    /// including holes awaiting reuse).
    pub fn code_size(&self) -> usize {
        self.code.len()
    }

    /// Registers a translation: guest pc → host code address.
    ///
    /// Remapping a guest pc to a *different* host address first unlinks
    /// every chain and jump-cache entry into the old translation and
    /// releases its region (the engine's `link_library` rebinding path).
    pub fn map_tb(&mut self, guest_pc: u64, host_pc: u64) {
        if let Some(old) = self.tb_map.insert(guest_pc, host_pc) {
            if old != host_pc {
                self.unlink_incoming(guest_pc);
                self.flush_jcache(guest_pc);
                self.free_region(old);
                // A rebound pc is a fresh tier-1 body; demote it so the
                // profiler may promote the new translation later.
                self.sb_heads.remove(&guest_pc);
            }
        }
    }

    /// Looks up a translation.
    pub fn lookup_tb(&self, guest_pc: u64) -> Option<u64> {
        self.tb_map.get(&guest_pc).copied()
    }

    /// Removes a translation mapping (cache eviction / invalidation).
    ///
    /// Ordering is the safety argument (DESIGN.md §11): first every chain
    /// slot and jump-cache entry pointing into the dead translation is
    /// unlinked — so no core can reach the stale body without going
    /// through the dispatcher, which no longer finds it — and only then
    /// is the mapping dropped and the code region released for reuse.
    /// Returns `true` if a mapping existed.
    pub fn unmap_tb(&mut self, guest_pc: u64) -> bool {
        let Some(host) = self.tb_map.remove(&guest_pc) else {
            return false;
        };
        self.cache_stats.evictions += 1;
        self.sb_heads.remove(&guest_pc);
        self.unlink_incoming(guest_pc);
        self.flush_jcache(guest_pc);
        self.free_region(host);
        self.retry_pending_frees();
        true
    }

    /// Installs a tier-2 superblock: `code` replaces `head`'s tier-1
    /// translation, and every other trace member in `subsumed` is
    /// evicted so future transfers to those pcs dispatch into fresh
    /// tier-1 bodies (retranslated on miss) rather than stale copies.
    ///
    /// Uses only the existing [`Machine::unmap_tb`] / [`Machine::map_tb`]
    /// paths, so the chain-unlink ordering, jump-cache flushes, and
    /// deferred-free discipline all hold unchanged. Returns the host
    /// address of the installed superblock.
    pub fn install_superblock(&mut self, head: u64, code: &[HostInsn], subsumed: &[u64]) -> u64 {
        let host = self.install_code(code);
        self.cache_stats.sb_installs += 1;
        for &pc in subsumed {
            if pc != head && self.unmap_tb(pc) {
                self.cache_stats.sb_subsumed += 1;
            }
        }
        self.map_tb(head, host);
        // After map_tb: the remap branch demotes, then we promote.
        self.sb_heads.insert(head);
        host
    }

    /// Audits the chain graph: every recorded incoming site must hold a
    /// chain word that is either 0 (unlinked) or the current host address
    /// of its target translation. Returns `(target_guest_pc, site,
    /// stale_word)` for each violation — empty means no dangling chains.
    pub fn validate_chains(&self) -> Vec<(u64, u64, u64)> {
        let mut bad = Vec::new();
        for (&target, sites) in &self.incoming {
            let expect = self.tb_map.get(&target).copied();
            for &site in sites {
                let off = (site - CODE_BASE) as usize + JUMP_CHAIN_OFFSET;
                let word = u64::from_le_bytes(self.code[off..off + 8].try_into().unwrap());
                if word != 0 && Some(word) != expect {
                    bad.push((target, site, word));
                }
            }
        }
        bad
    }

    /// Writes `target` into the chain word of the `ExitTb(Jump)` encoded
    /// at host pc `site` and drops the now-stale decode-cache entry.
    fn patch_chain(&mut self, site: u64, target: u64) {
        let off = (site - CODE_BASE) as usize + JUMP_CHAIN_OFFSET;
        debug_assert!(off + 8 <= self.code.len(), "chain site outside code");
        self.code[off..off + 8].copy_from_slice(&target.to_le_bytes());
        self.decode_cache.remove(&site);
    }

    /// Un-patches every chain slot currently pointing at `guest_pc`'s
    /// translation (writes 0 = unresolved back into each site).
    fn unlink_incoming(&mut self, guest_pc: u64) {
        if let Some(sites) = self.incoming.remove(&guest_pc) {
            for site in sites {
                self.patch_chain(site, 0);
                self.chain_stats.chain_flushes += 1;
            }
        }
    }

    /// Drops `guest_pc` from every core's indirect jump cache.
    fn flush_jcache(&mut self, guest_pc: u64) {
        let idx = Self::jcache_idx(guest_pc);
        for c in &mut self.cores {
            if c.jcache[idx].0 == guest_pc {
                c.jcache[idx] = (u64::MAX, 0);
                self.chain_stats.chain_flushes += 1;
            }
        }
    }

    fn jcache_idx(guest_pc: u64) -> usize {
        ((guest_pc ^ (guest_pc >> 6)) as usize) & (JCACHE_SIZE - 1)
    }

    /// Releases the install region starting at `host_start`, deferring if
    /// a live core is still parked inside it.
    fn free_region(&mut self, host_start: u64) {
        let Some(len) = self.regions.remove(&host_start) else {
            return;
        };
        // Defensive: never free a region another mapping still targets.
        if self.tb_map.values().any(|&h| h == host_start) {
            self.regions.insert(host_start, len);
            return;
        }
        if self.core_in_range(host_start, len) {
            self.pending_free.push((host_start, len));
        } else {
            self.do_free(host_start, len);
        }
    }

    fn core_in_range(&self, start: u64, len: usize) -> bool {
        let end = start + len as u64;
        self.cores.iter().any(|c| c.started && !c.halted && c.pc >= start && c.pc < end)
    }

    /// Actually reclaims a region: purges decode-cache entries and
    /// recorded chain sites inside it, then adds it to the free list.
    fn do_free(&mut self, start: u64, len: usize) {
        let end = start + len as u64;
        self.decode_cache.retain(|&pc, _| pc < start || pc >= end);
        // Chain sites *inside* the dead body must be forgotten, or a later
        // unmap of their target would patch bytes that now belong to a
        // different translation.
        for sites in self.incoming.values_mut() {
            sites.retain(|&s| s < start || s >= end);
        }
        self.incoming.retain(|_, v| !v.is_empty());
        self.free_list.push(((start - CODE_BASE) as usize, len));
    }

    fn retry_pending_frees(&mut self) {
        if self.pending_free.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_free);
        for (start, len) in pending {
            if self.core_in_range(start, len) {
                self.pending_free.push((start, len));
            } else {
                self.do_free(start, len);
            }
        }
    }

    /// Guest pcs with an installed translation, in unspecified order.
    pub fn mapped_tbs(&self) -> Vec<u64> {
        self.tb_map.keys().copied().collect()
    }

    /// The encoded bytes of the install region starting at `host_start`
    /// (as returned by [`Machine::install_code`]), or `None` if no such
    /// region exists. Used by the install-time encoding verifier to
    /// read back what actually landed in the code cache.
    pub fn code_bytes(&self, host_start: u64) -> Option<&[u8]> {
        let len = *self.regions.get(&host_start)?;
        let off = host_start.checked_sub(CODE_BASE)? as usize;
        self.code.get(off..off + len)
    }

    /// Releases an install region that was never mapped (or already
    /// unmapped) — the install-time verifier's rejection path, so a
    /// quarantined translation doesn't leak code-cache space.
    pub fn discard_region(&mut self, host_start: u64) {
        self.free_region(host_start);
    }

    /// Flips one byte (xor `0xff`) inside the install region at
    /// `host_start`, returning `true` if the offset was in bounds.
    /// This is the fault-injection hook modelling code-cache corruption
    /// *at install time* (bit flips between encoding and mapping);
    /// `VerifyLevel::Install` must catch it before dispatch.
    pub fn corrupt_code_byte(&mut self, host_start: u64, offset: usize) -> bool {
        let Some(&len) = self.regions.get(&host_start) else {
            return false;
        };
        if offset >= len {
            return false;
        }
        let off = (host_start - CODE_BASE) as usize + offset;
        self.code[off] ^= 0xff;
        let end = host_start + len as u64;
        self.decode_cache.retain(|&pc, _| pc < host_start || pc >= end);
        true
    }

    /// Registers a native host function; returns its index for
    /// [`HostInsn::NativeCall`].
    pub fn register_native(&mut self, f: NativeFn) -> u16 {
        self.natives.push(f);
        (self.natives.len() - 1) as u16
    }

    /// Starts (or restarts) a core at a host code address.
    pub fn start_core(&mut self, core: usize, host_pc: u64) {
        let c = &mut self.cores[core];
        c.pc = host_pc;
        c.halted = false;
        c.started = true;
    }

    /// Sets a core register (engine use: env pointers, arguments).
    pub fn set_reg(&mut self, core: usize, r: Xreg, v: u64) {
        self.cores[core].set(r, v);
    }

    /// Reads a core register.
    pub fn reg(&self, core: usize, r: Xreg) -> u64 {
        self.cores[core].get(r)
    }

    /// Redirects a core to another host pc (engine use after servicing an
    /// event).
    pub fn set_pc(&mut self, core: usize, host_pc: u64) {
        self.cores[core].pc = host_pc;
    }

    /// Halts a core (engine use: guest thread exit).
    pub fn halt_core(&mut self, core: usize) {
        let c = &mut self.cores[core];
        Self::drain_all_of(&mut c.store_buffer, &mut self.mem);
        c.halted = true;
    }

    /// `true` if the core has halted.
    pub fn core_halted(&self, core: usize) -> bool {
        self.cores[core].halted
    }

    /// The core's current host pc (diagnostics / state dumps).
    pub fn core_pc(&self, core: usize) -> u64 {
        self.cores[core].pc
    }

    /// Drains the core's store buffer to shared memory, invalidating
    /// foreign exclusive monitors — the same synchronization a helper or
    /// native call performs at its ABI boundary. The engine uses this
    /// before interpreting a guest block on the core's behalf.
    pub fn drain_store_buffer(&mut self, core: usize) {
        self.drain_all(core);
    }

    /// An idle core index (never started), if any.
    pub fn idle_core(&self) -> Option<usize> {
        self.cores.iter().position(|c| !c.started)
    }

    /// The core's local clock.
    pub fn core_cycles(&self, core: usize) -> u64 {
        self.cores[core].cycles
    }

    /// Advances a core's clock without executing (engine use: model a
    /// blocked wait, e.g. a guest `join` retry).
    pub fn add_cycles(&mut self, core: usize, cycles: u64) {
        self.cores[core].cycles += cycles;
    }

    /// Total executed machine steps across all cores.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// The machine clock: max over started cores (parallel runtime).
    pub fn clock(&self) -> u64 {
        self.cores.iter().filter(|c| c.started).map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Per-core statistics.
    pub fn stats(&self, core: usize) -> CoreStats {
        self.cores[core].stats
    }

    /// Aggregated statistics over all cores.
    pub fn total_stats(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.cores {
            t.insns += c.stats.insns;
            for i in 0..3 {
                t.dmb[i] += c.stats.dmb[i];
            }
            t.atomics += c.stats.atomics;
            t.helper_calls += c.stats.helper_calls;
            t.native_calls += c.stats.native_calls;
            t.fence_cycles += c.stats.fence_cycles;
        }
        t
    }

    fn drain_all_of(buf: &mut VecDeque<(u64, u64, u64)>, mem: &mut SparseMem) {
        while let Some((a, v, _)) = buf.pop_front() {
            mem.write_u64(a, v);
        }
    }

    fn drain_all(&mut self, core: usize) {
        while let Some((a, v, _)) = self.cores[core].store_buffer.pop_front() {
            self.mem.write_u64(a, v);
            Self::invalidate_monitors(&mut self.cores, core, a);
        }
    }

    fn drain_aged(&mut self, core: usize) {
        let now = self.cores[core].cycles;
        while let Some(&(a, v, t)) = self.cores[core].store_buffer.front() {
            if now.saturating_sub(t) < DRAIN_AGE
                && self.cores[core].store_buffer.len() <= STORE_BUFFER_CAP
            {
                break;
            }
            self.cores[core].store_buffer.pop_front();
            self.mem.write_u64(a, v);
            Self::invalidate_monitors(&mut self.cores, core, a);
        }
    }

    fn invalidate_monitors(cores: &mut [Core], writer: usize, addr: u64) {
        for (i, c) in cores.iter_mut().enumerate() {
            if i != writer && c.monitor == Some(addr) {
                c.monitor = None;
            }
        }
    }

    /// Reads for core `core`: forwards from its own store buffer, else
    /// global memory.
    fn read_for(&self, core: usize, addr: u64) -> u64 {
        let c = &self.cores[core];
        for &(a, v, _) in c.store_buffer.iter().rev() {
            if a == addr {
                return v;
            }
            // Overlapping-but-unequal: conservative callers drain first.
        }
        self.mem.read_u64(addr)
    }

    fn buffered_overlap(&self, core: usize, addr: u64) -> bool {
        self.cores[core].store_buffer.iter().any(|&(a, _, _)| a != addr && a.abs_diff(addr) < 8)
    }

    /// Cycle cost of an exclusive/atomic access to `addr`: `base` plus the
    /// cache-line ping-pong penalty per recently contending core plus a
    /// little seeded jitter. The penalty is physical (line ownership), so
    /// it applies to `casal`/`ldaddal`, helper atomics *and* `ldxr`.
    fn atomic_cost(&mut self, core: usize, addr: u64, base: u64) -> u64 {
        let now = self.cores[core].cycles;
        let window = self.cost.contend_window;
        let hist = self.rmw_history.entry(addr & !7).or_default();
        hist.retain(|&(t, _)| now.saturating_sub(t) <= window);
        let others: std::collections::HashSet<usize> =
            hist.iter().filter(|&&(_, c)| c != core).map(|&(_, c)| c).collect();
        hist.push((now, core));
        let jitter = self.cores[core].next_jitter();
        base + self.cost.atomic_contend * others.len() as u64 + jitter
    }

    /// Runs until an [`Event`] occurs, executing at most `fuel` steps.
    pub fn run(&mut self, fuel: u64) -> Event {
        let mut budget = fuel;
        loop {
            let core = match self.pick_core() {
                Some(c) => c,
                None => return Event::AllHalted,
            };
            if budget == 0 {
                return Event::OutOfFuel;
            }
            budget -= 1;
            if let Some(ev) = self.step(core) {
                return ev;
            }
        }
    }

    /// Picks the next runnable core per the scheduling policy.
    fn pick_core(&mut self) -> Option<usize> {
        let runnable = |c: &Core| c.started && !c.halted;
        match self.sched {
            SchedPolicy::Deterministic => {
                let mut pick: Option<usize> = None;
                for (i, c) in self.cores.iter().enumerate() {
                    if runnable(c) && pick.is_none_or(|p| c.cycles < self.cores[p].cycles) {
                        pick = Some(i);
                    }
                }
                pick
            }
            SchedPolicy::Adversarial => {
                let mut pick: Option<usize> = None;
                for (i, c) in self.cores.iter().enumerate() {
                    if runnable(c) && pick.is_none_or(|p| c.cycles > self.cores[p].cycles) {
                        pick = Some(i);
                    }
                }
                pick
            }
            SchedPolicy::Random(_) => {
                let ids: Vec<usize> = self
                    .cores
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| runnable(c))
                    .map(|(i, _)| i)
                    .collect();
                if ids.is_empty() {
                    return None;
                }
                let mut x = self.sched_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.sched_state = x;
                Some(ids[(x % ids.len() as u64) as usize])
            }
        }
    }

    /// Decodes (with caching) at a host pc. `None` on undecodable bytes
    /// or a pc outside the installed code cache.
    fn fetch(&mut self, pc: u64) -> Option<(HostInsn, u16)> {
        if let Some(&hit) = self.decode_cache.get(&pc) {
            return Some(hit);
        }
        let off = usize::try_from(pc.checked_sub(CODE_BASE)?).ok()?;
        if off >= self.code.len() {
            return None;
        }
        let (insn, len) = HostInsn::decode(&self.code[off..]).ok()?;
        let entry = (insn, len as u16);
        self.decode_cache.insert(pc, entry);
        Some(entry)
    }

    /// Executes one instruction on `core`; returns an event if the machine
    /// must suspend.
    fn step(&mut self, core: usize) -> Option<Event> {
        self.total_steps += 1;
        self.drain_aged(core);
        let pc = self.cores[core].pc;
        let Some((insn, len)) = self.fetch(pc) else {
            // Leave the core parked on the faulting pc; the engine owns
            // the recovery decision.
            return Some(Event::HostFault { core, host_pc: pc, kind: HostFaultKind::Decode });
        };
        let next = pc + len as u64;
        let cost = &{ self.cost };
        {
            let c = &mut self.cores[core];
            c.pc = next;
            c.stats.insns += 1;
        }
        use HostInsn::*;
        match insn {
            MovImm { dst, imm } => {
                self.cores[core].set(dst, imm);
                self.cores[core].cycles += cost.alu;
            }
            MovReg { dst, src } => {
                let v = self.cores[core].get(src);
                self.cores[core].set(dst, v);
                self.cores[core].cycles += cost.alu;
            }
            Ldr { dst, base, off, order } => {
                let addr = self.cores[core].get(base).wrapping_add(off as i64 as u64);
                if self.buffered_overlap(core, addr) {
                    self.drain_all(core);
                }
                let v = self.read_for(core, addr);
                self.cores[core].set(dst, v);
                self.cores[core].cycles +=
                    cost.load + if order == MemOrder::Plain { 0 } else { cost.acq_rel_extra };
            }
            Str { src, base, off, order } => {
                let addr = self.cores[core].get(base).wrapping_add(off as i64 as u64);
                let v = self.cores[core].get(src);
                if self.buffered_overlap(core, addr) {
                    self.drain_all(core);
                }
                // All stores go through the FIFO buffer; its order already
                // gives release stores their prior-store ordering (the
                // machine never delays loads), so `stlr` needs no drain —
                // only its extra latency.
                if order != MemOrder::Plain {
                    self.cores[core].cycles += cost.acq_rel_extra;
                }
                let cyc = self.cores[core].cycles;
                self.cores[core].store_buffer.push_back((addr, v, cyc));
                self.cores[core].cycles += cost.store;
            }
            LdrB { dst, base, off } => {
                let addr = self.cores[core].get(base).wrapping_add(off as i64 as u64);
                // Byte loads bypass the (u64-granular) store buffer: drain
                // any overlapping entries first.
                if self.cores[core].store_buffer.iter().any(|&(a, _, _)| a.abs_diff(addr) < 8) {
                    self.drain_all(core);
                }
                let v = self.mem.read_u8(addr) as u64;
                self.cores[core].set(dst, v);
                self.cores[core].cycles += cost.load;
            }
            StrB { src, base, off } => {
                let addr = self.cores[core].get(base).wrapping_add(off as i64 as u64);
                let v = self.cores[core].get(src) as u8;
                self.drain_all(core);
                self.mem.write_u8(addr, v);
                Self::invalidate_monitors(&mut self.cores, core, addr & !7);
                self.cores[core].cycles += cost.store;
            }
            Ldxr { dst, addr, acquire } => {
                let a = self.cores[core].get(addr);
                self.drain_all(core);
                let v = self.mem.read_u64(a);
                self.cores[core].set(dst, v);
                self.cores[core].monitor = Some(a);
                // Taking the line exclusively pays the same ping-pong
                // penalty as a single-instruction atomic.
                let ac = self.atomic_cost(core, a, cost.exclusive);
                self.cores[core].cycles += ac + if acquire { cost.acq_rel_extra } else { 0 };
            }
            Stxr { status, src, addr, release } => {
                let a = self.cores[core].get(addr);
                let v = self.cores[core].get(src);
                self.drain_all(core);
                let ok = self.cores[core].monitor == Some(a);
                self.cores[core].monitor = None;
                if ok {
                    if self.atomic_log.is_some() {
                        let prev = self.mem.read_u64(a);
                        self.log_atomic(core, a, prev, v);
                    }
                    self.mem.write_u64(a, v);
                    Self::invalidate_monitors(&mut self.cores, core, a);
                }
                self.cores[core].set(status, if ok { 0 } else { 1 });
                self.cores[core].stats.atomics += 1;
                self.cores[core].cycles +=
                    cost.exclusive + if release { cost.acq_rel_extra } else { 0 };
            }
            Cas { cmp_old, new, addr, acq_rel } => {
                let a = self.cores[core].get(addr);
                self.drain_all(core);
                let expected = self.cores[core].get(cmp_old);
                let newv = self.cores[core].get(new);
                let old = self.mem.read_u64(a);
                if old == expected {
                    self.mem.write_u64(a, newv);
                    Self::invalidate_monitors(&mut self.cores, core, a);
                }
                self.log_atomic(core, a, old, if old == expected { newv } else { old });
                self.cores[core].set(cmp_old, old);
                self.cores[core].stats.atomics += 1;
                let extra = if acq_rel { cost.acq_rel_extra } else { 0 };
                let ac = self.atomic_cost(core, a, cost.atomic);
                self.cores[core].cycles += ac + extra;
            }
            LdaddAl { old, addend, addr } => {
                let a = self.cores[core].get(addr);
                self.drain_all(core);
                let add = self.cores[core].get(addend);
                let prev = self.mem.read_u64(a);
                self.mem.write_u64(a, prev.wrapping_add(add));
                Self::invalidate_monitors(&mut self.cores, core, a);
                self.log_atomic(core, a, prev, prev.wrapping_add(add));
                self.cores[core].set(old, prev);
                self.cores[core].stats.atomics += 1;
                let ac = self.atomic_cost(core, a, cost.atomic);
                self.cores[core].cycles += ac;
            }
            Barrier(d) => {
                // Only the full barrier needs a drain: it orders prior
                // writes against later *reads*. `DMB ST` (write→write) is
                // free ordering under a FIFO buffer, and `DMB LD` orders
                // loads, which this machine never delays.
                match d {
                    Dmb::Ff => self.drain_all(core),
                    Dmb::Ld | Dmb::St => {}
                }
                let c = &mut self.cores[core];
                let cyc = match d {
                    Dmb::Ld => cost.dmb_ld,
                    Dmb::St => cost.dmb_st,
                    Dmb::Ff => cost.dmb_ff,
                };
                c.stats.dmb[d as usize] += 1;
                c.stats.fence_cycles += cyc;
                c.cycles += cyc;
            }
            Alu { op, dst, a, b } => {
                let c = &mut self.cores[core];
                let r = op.apply(c.get(a), c.get(b));
                c.set(dst, r);
                c.cycles += match op {
                    AOp::Mul => cost.mul,
                    AOp::Udiv | AOp::Urem => cost.div,
                    _ => cost.alu,
                };
            }
            AluImm { op, dst, a, imm } => {
                let c = &mut self.cores[core];
                let r = op.apply(c.get(a), imm);
                c.set(dst, r);
                c.cycles += match op {
                    AOp::Mul => cost.mul,
                    AOp::Udiv | AOp::Urem => cost.div,
                    _ => cost.alu,
                };
            }
            Cmp { a, b } => {
                let c = &mut self.cores[core];
                c.nzcv = Nzcv::from_cmp(c.get(a), c.get(b));
                c.cycles += cost.alu;
            }
            CmpImm { a, imm } => {
                let c = &mut self.cores[core];
                c.nzcv = Nzcv::from_cmp(c.get(a), imm);
                c.cycles += cost.alu;
            }
            Cset { dst, cond } => {
                let c = &mut self.cores[core];
                let v = cond.eval(c.nzcv) as u64;
                c.set(dst, v);
                c.cycles += cost.alu;
            }
            Fp { op, dst, a, b } => {
                let c = &mut self.cores[core];
                let r = op.apply(c.get(a), c.get(b));
                c.set(dst, r);
                c.cycles += cost.hardfloat;
            }
            BCond { cond, rel } => {
                let c = &mut self.cores[core];
                if cond.eval(c.nzcv) {
                    c.pc = next.wrapping_add(rel as i64 as u64);
                }
                c.cycles += cost.branch;
            }
            B { rel } => {
                let c = &mut self.cores[core];
                c.pc = next.wrapping_add(rel as i64 as u64);
                c.cycles += cost.branch;
            }
            Br { reg } => {
                let c = &mut self.cores[core];
                c.pc = c.get(reg);
                c.cycles += cost.branch;
            }
            Bl { rel } => {
                let c = &mut self.cores[core];
                c.set(Xreg::LR, next);
                c.pc = next.wrapping_add(rel as i64 as u64);
                c.cycles += cost.call;
            }
            Blr { reg } => {
                let c = &mut self.cores[core];
                c.set(Xreg::LR, next);
                c.pc = c.get(reg);
                c.cycles += cost.call;
            }
            Ret => {
                let c = &mut self.cores[core];
                c.pc = c.get(Xreg::LR);
                c.cycles += cost.call;
            }
            Hcall { helper } => {
                if let Some(ev) = self.exec_helper(core, pc, helper) {
                    return Some(ev);
                }
            }
            NativeCall { func } => {
                if self.natives.get(func as usize).is_none() {
                    self.cores[core].pc = pc;
                    return Some(Event::HostFault {
                        core,
                        host_pc: pc,
                        kind: HostFaultKind::UnknownNative(func),
                    });
                }
                let args = [
                    self.cores[core].get(Xreg(0)),
                    self.cores[core].get(Xreg(1)),
                    self.cores[core].get(Xreg(2)),
                    self.cores[core].get(Xreg(3)),
                    self.cores[core].get(Xreg(4)),
                    self.cores[core].get(Xreg(5)),
                ];
                // Native code runs with the host's own ordering; it
                // synchronizes through its ABI boundary — drain first.
                self.drain_all(core);
                let f = &mut self.natives[func as usize];
                let res = f(&mut self.mem, &args);
                self.cores[core].set(Xreg(0), res.ret);
                self.cores[core].stats.native_calls += 1;
                self.cores[core].cycles += res.cost + cost.call;
            }
            ExitTb(kind) => {
                return self.exit_tb(core, pc, kind);
            }
            Hlt => {
                self.drain_all(core);
                self.cores[core].halted = true;
            }
            Nop => self.cores[core].cycles += cost.alu,
        }
        None
    }

    fn exec_helper(&mut self, core: usize, pc: u64, helper: u8) -> Option<Event> {
        // Helper indices mirror risotto_tcg::Helper declaration order.
        let cost = self.cost;
        if helper > 8 {
            // Park the core on the Hcall itself, as for other host faults.
            self.cores[core].pc = pc;
            return Some(Event::HostFault {
                core,
                host_pc: pc,
                kind: HostFaultKind::UnknownHelper(helper),
            });
        }
        self.cores[core].stats.helper_calls += 1;
        self.cores[core].cycles += cost.helper_overhead;
        let a0 = self.cores[core].get(Xreg(0));
        let a1 = self.cores[core].get(Xreg(1));
        let a2 = self.cores[core].get(Xreg(2));
        let ret = match helper {
            0 => {
                // CmpxchgSc(addr, expected, new) — GCC builtin: casal.
                self.drain_all(core);
                let old = self.mem.read_u64(a0);
                if old == a1 {
                    self.mem.write_u64(a0, a2);
                    Self::invalidate_monitors(&mut self.cores, core, a0);
                }
                self.log_atomic(core, a0, old, if old == a1 { a2 } else { old });
                self.cores[core].stats.atomics += 1;
                let ac = self.atomic_cost(core, a0, cost.atomic);
                self.cores[core].cycles += ac;
                old
            }
            1 => {
                // XaddSc(addr, addend).
                self.drain_all(core);
                let old = self.mem.read_u64(a0);
                self.mem.write_u64(a0, old.wrapping_add(a1));
                Self::invalidate_monitors(&mut self.cores, core, a0);
                self.log_atomic(core, a0, old, old.wrapping_add(a1));
                self.cores[core].stats.atomics += 1;
                let ac = self.atomic_cost(core, a0, cost.atomic);
                self.cores[core].cycles += ac;
                old
            }
            // Soft-float helpers: the shared deterministic f64
            // semantics (risotto_guest_x86::softfloat), bit-identical
            // to the interpreter and the hardware-FP path.
            2 => {
                self.cores[core].cycles += cost.softfloat;
                softfloat::add(a0, a1)
            }
            3 => {
                self.cores[core].cycles += cost.softfloat;
                softfloat::sub(a0, a1)
            }
            4 => {
                self.cores[core].cycles += cost.softfloat;
                softfloat::mul(a0, a1)
            }
            5 => {
                self.cores[core].cycles += cost.softfloat;
                softfloat::div(a0, a1)
            }
            6 => {
                self.cores[core].cycles += cost.softfloat * 2;
                softfloat::sqrt(a1)
            }
            7 => {
                self.cores[core].cycles += cost.softfloat;
                softfloat::cvt_if(a1)
            }
            8 => {
                self.cores[core].cycles += cost.softfloat;
                softfloat::cvt_fi(a1)
            }
            // invariant: helper > 8 returned HostFault above.
            _ => unreachable!(),
        };
        self.cores[core].set(Xreg(0), ret);
        None
    }

    fn exit_tb(&mut self, core: usize, pc: u64, kind: TbExitKind) -> Option<Event> {
        let cost = self.cost;
        match kind {
            TbExitKind::Halt => {
                self.drain_all(core);
                self.cores[core].halted = true;
                None
            }
            TbExitKind::Syscall { next } => {
                self.drain_all(core);
                // Stay on this instruction; the engine redirects the pc.
                self.cores[core].pc = pc;
                Some(Event::GuestSyscall { core, next })
            }
            TbExitKind::Jump { guest_pc, chain } => {
                if self.chaining && chain != 0 {
                    // Patched chain slot: straight-line branch, no lookup.
                    self.chain_stats.chain_hits += 1;
                    let hot = self.profile_entry(guest_pc, false);
                    self.cores[core].pc = chain;
                    self.cores[core].cycles += cost.tb_chain;
                    if hot {
                        return Some(Event::HotTb { core, guest_pc });
                    }
                    return None;
                }
                match self.tb_map.get(&guest_pc).copied() {
                    Some(host) => {
                        self.cores[core].cycles += cost.tb_dispatch;
                        if self.chaining {
                            // Resolve once: patch the in-code chain word
                            // and record the site for later unlinking.
                            self.patch_chain(pc, host);
                            self.incoming.entry(guest_pc).or_default().push(pc);
                            self.chain_stats.chain_links += 1;
                        }
                        let hot = self.profile_entry(guest_pc, true);
                        self.cores[core].pc = host;
                        if hot {
                            return Some(Event::HotTb { core, guest_pc });
                        }
                        None
                    }
                    None => {
                        self.cores[core].pc = pc;
                        Some(Event::TranslationMiss { core, guest_pc })
                    }
                }
            }
            TbExitKind::JumpReg { reg } => {
                let guest_pc = self.cores[core].get(reg);
                let idx = Self::jcache_idx(guest_pc);
                if self.chaining {
                    let (g, h) = self.cores[core].jcache[idx];
                    if g == guest_pc {
                        self.chain_stats.dispatch_hits += 1;
                        let hot = self.profile_entry(guest_pc, false);
                        self.cores[core].pc = h;
                        self.cores[core].cycles += cost.tb_chain;
                        if hot {
                            return Some(Event::HotTb { core, guest_pc });
                        }
                        return None;
                    }
                }
                match self.tb_map.get(&guest_pc).copied() {
                    Some(host) => {
                        self.chain_stats.dispatch_misses += 1;
                        if self.chaining {
                            self.cores[core].jcache[idx] = (guest_pc, host);
                        }
                        let hot = self.profile_entry(guest_pc, true);
                        self.cores[core].pc = host;
                        self.cores[core].cycles += cost.tb_dispatch;
                        if hot {
                            return Some(Event::HotTb { core, guest_pc });
                        }
                        None
                    }
                    None => {
                        self.cores[core].pc = pc;
                        Some(Event::TranslationMiss { core, guest_pc })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with(insns: &[HostInsn]) -> (Machine, u64) {
        let mut m = Machine::new(2, CostModel::uniform());
        let addr = m.install_code(insns);
        (m, addr)
    }

    #[test]
    fn straight_line_execution() {
        use HostInsn::*;
        let (mut m, a) = machine_with(&[
            MovImm { dst: Xreg(0), imm: 6 },
            MovImm { dst: Xreg(1), imm: 7 },
            Alu { op: AOp::Mul, dst: Xreg(2), a: Xreg(0), b: Xreg(1) },
            Hlt,
        ]);
        m.start_core(0, a);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(2)), 42);
        assert_eq!(m.stats(0).insns, 4);
    }

    #[test]
    fn store_buffer_forwards_and_drains_on_dmb() {
        use HostInsn::*;
        let (mut m, a) = machine_with(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(2), imm: 99 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            // Own load sees the buffered store (forwarding).
            Ldr { dst: Xreg(3), base: Xreg(1), off: 0, order: MemOrder::Plain },
            Barrier(Dmb::Ff),
            Hlt,
        ]);
        m.start_core(0, a);
        m.run(100);
        assert_eq!(m.reg(0, Xreg(3)), 99);
        assert_eq!(m.mem.read_u64(0x5000), 99, "DMB FF drained the buffer");
        assert_eq!(m.stats(0).dmb[Dmb::Ff as usize], 1);
    }

    #[test]
    fn store_buffering_is_visible_across_cores() {
        // Core 0 buffers a store; before any drain, core 1 still reads 0.
        use HostInsn::*;
        let mut m = Machine::new(2, CostModel::uniform());
        let w = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(2), imm: 1 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            // Read the *other* location immediately: SB-style.
            MovImm { dst: Xreg(3), imm: 0x6000 },
            Ldr { dst: Xreg(4), base: Xreg(3), off: 0, order: MemOrder::Plain },
            Hlt,
        ]);
        let r = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x6000 },
            MovImm { dst: Xreg(2), imm: 1 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            MovImm { dst: Xreg(3), imm: 0x5000 },
            Ldr { dst: Xreg(4), base: Xreg(3), off: 0, order: MemOrder::Plain },
            Hlt,
        ]);
        m.start_core(0, w);
        m.start_core(1, r);
        assert_eq!(m.run(1000), Event::AllHalted);
        // With unit costs and interleaved clocks both loads run before the
        // buffered stores age out: the classic a=b=0.
        assert_eq!(m.reg(0, Xreg(4)), 0);
        assert_eq!(m.reg(1, Xreg(4)), 0);
    }

    #[test]
    fn casal_is_atomic_and_clears_monitors() {
        use HostInsn::*;
        let (mut m, a) = machine_with(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(0), imm: 0 },  // expected
            MovImm { dst: Xreg(2), imm: 42 }, // new
            Cas { cmp_old: Xreg(0), new: Xreg(2), addr: Xreg(1), acq_rel: true },
            Hlt,
        ]);
        m.start_core(0, a);
        m.run(100);
        assert_eq!(m.reg(0, Xreg(0)), 0, "old value returned");
        assert_eq!(m.mem.read_u64(0x5000), 42);
        assert_eq!(m.stats(0).atomics, 1);
    }

    #[test]
    fn exclusive_pair_success_and_interference() {
        use HostInsn::*;
        let (mut m, a) = machine_with(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            Ldxr { dst: Xreg(2), addr: Xreg(1), acquire: true },
            AluImm { op: AOp::Add, dst: Xreg(2), a: Xreg(2), imm: 1 },
            Stxr { status: Xreg(3), src: Xreg(2), addr: Xreg(1), release: true },
            Hlt,
        ]);
        m.start_core(0, a);
        m.run(100);
        assert_eq!(m.reg(0, Xreg(3)), 0, "stxr succeeded");
        assert_eq!(m.mem.read_u64(0x5000), 1);
    }

    #[test]
    fn tb_exit_miss_and_resume() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let b1 = m.install_code(&[
            MovImm { dst: Xreg(0), imm: 5 },
            ExitTb(TbExitKind::Jump { guest_pc: 0x2000, chain: 0 }),
        ]);
        m.start_core(0, b1);
        match m.run(100) {
            Event::TranslationMiss { core: 0, guest_pc: 0x2000 } => {}
            other => panic!("unexpected event {other:?}"),
        }
        // Engine translates 0x2000 and resumes.
        let b2 = m.install_code(&[
            AluImm { op: AOp::Add, dst: Xreg(0), a: Xreg(0), imm: 1 },
            ExitTb(TbExitKind::Halt),
        ]);
        m.map_tb(0x2000, b2);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(0)), 6);
    }

    #[test]
    fn hot_tb_event_fires_at_threshold_and_after_transfer() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        m.set_profiling(true);
        m.set_hot_threshold(Some(4));
        // Self-loop: every iteration re-enters 0x2000 through the chain.
        let body = m.install_code(&[
            AluImm { op: AOp::Add, dst: Xreg(0), a: Xreg(0), imm: 1 },
            ExitTb(TbExitKind::Jump { guest_pc: 0x2000, chain: 0 }),
        ]);
        m.map_tb(0x2000, body);
        m.start_core(0, body);
        match m.run(10_000) {
            Event::HotTb { core: 0, guest_pc: 0x2000 } => {}
            other => panic!("expected HotTb, got {other:?}"),
        }
        assert_eq!(m.tb_profile().unwrap()[&0x2000].execs, 4, "fired at the threshold");
        // The transfer completed before the event: the core is parked at
        // the start of 0x2000's body with the iteration's work done, so
        // promotion never perturbs execution.
        assert_eq!(m.cores[0].pc, body);
        assert_eq!(m.reg(0, Xreg(0)), 4);
        // A declined promotion retriggers at the next threshold multiple.
        match m.run(10_000) {
            Event::HotTb { core: 0, guest_pc: 0x2000 } => {}
            other => panic!("expected second HotTb, got {other:?}"),
        }
        assert_eq!(m.tb_profile().unwrap()[&0x2000].execs, 8);
        // Once the pc is a superblock head, the event stops firing and
        // entries are counted instead.
        m.sb_heads.insert(0x2000);
        assert_eq!(m.run(50), Event::OutOfFuel);
        assert!(m.chain_stats().sb_entries > 0);
    }

    #[test]
    fn install_superblock_evicts_subsumed_and_keeps_chains_clean() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        // Two chained tier-1 blocks: A(0x2000) -> B(0x2008) -> halt.
        let a = m.install_code(&[
            MovImm { dst: Xreg(0), imm: 1 },
            ExitTb(TbExitKind::Jump { guest_pc: 0x2008, chain: 0 }),
        ]);
        let b = m.install_code(&[
            AluImm { op: AOp::Add, dst: Xreg(0), a: Xreg(0), imm: 2 },
            ExitTb(TbExitKind::Halt),
        ]);
        m.map_tb(0x2000, a);
        m.map_tb(0x2008, b);
        m.start_core(0, a);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(0)), 3);
        assert_eq!(m.chain_stats().chain_links, 1, "A chained into B");

        // Promote: a fused body replaces A, B is subsumed.
        let sb = m.install_superblock(
            0x2000,
            &[
                MovImm { dst: Xreg(0), imm: 1 },
                AluImm { op: AOp::Add, dst: Xreg(0), a: Xreg(0), imm: 2 },
                ExitTb(TbExitKind::Halt),
            ],
            &[0x2000, 0x2008],
        );
        assert!(m.is_sb_head(0x2000));
        assert_eq!(m.lookup_tb(0x2000), Some(sb));
        assert_eq!(m.lookup_tb(0x2008), None, "subsumed TB evicted");
        assert_eq!(m.cache_stats().sb_installs, 1);
        assert_eq!(m.cache_stats().sb_subsumed, 1, "head not double-counted");
        assert!(m.validate_chains().is_empty(), "no dangling chain words");

        // The superblock still produces the architectural result, and the
        // machine counts entries into it.
        m.start_core(0, sb);
        m.cores[0].halted = false;
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(0)), 3);

        // Demotion: evicting the head clears sb status.
        assert!(m.unmap_tb(0x2000));
        assert!(!m.is_sb_head(0x2000));
    }

    #[test]
    fn native_call_invokes_registered_function() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let id = m.register_native(Box::new(|mem, args| {
            mem.write_u64(0x7000, args[0] + args[1]);
            NativeResult { ret: args[0] * args[1], cost: 10 }
        }));
        let a = m.install_code(&[
            MovImm { dst: Xreg(0), imm: 6 },
            MovImm { dst: Xreg(1), imm: 7 },
            NativeCall { func: id },
            Hlt,
        ]);
        m.start_core(0, a);
        m.run(100);
        assert_eq!(m.reg(0, Xreg(0)), 42);
        assert_eq!(m.mem.read_u64(0x7000), 13);
        assert_eq!(m.stats(0).native_calls, 1);
    }

    #[test]
    fn dmb_st_does_not_drain_but_dmb_ff_does() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let a = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(2), imm: 7 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            Barrier(Dmb::St),
            Hlt,
        ]);
        m.start_core(0, a);
        // Step up to (but not through) the Hlt: after the DMB ST the store
        // must still be invisible globally (FIFO gives W→W for free).
        // We detect it by checking memory before the halt drains: run with
        // tiny fuel so the Hlt hasn't executed yet.
        let ev = m.run(4); // 4 instructions: movs, str, barrier
        assert_eq!(ev, Event::OutOfFuel);
        assert_eq!(m.mem.read_u64(0x5000), 0, "DMB ST must not drain the buffer");
        assert_eq!(m.run(10), Event::AllHalted);
        assert_eq!(m.mem.read_u64(0x5000), 7, "halt drains");
    }

    #[test]
    fn release_store_keeps_fifo_order() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let a = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(2), imm: 1 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            MovImm { dst: Xreg(3), imm: 2 },
            Str { src: Xreg(3), base: Xreg(1), off: 8, order: MemOrder::AcqRel }, // stlr
            // Own reads forward from the buffer in order.
            Ldr { dst: Xreg(4), base: Xreg(1), off: 0, order: MemOrder::Plain },
            Ldr { dst: Xreg(5), base: Xreg(1), off: 8, order: MemOrder::Plain },
            Hlt,
        ]);
        m.start_core(0, a);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(4)), 1);
        assert_eq!(m.reg(0, Xreg(5)), 2);
        assert_eq!(m.mem.read_u64(0x5000), 1);
        assert_eq!(m.mem.read_u64(0x5008), 2);
    }

    #[test]
    fn aged_stores_drain_without_fences() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        // Store, then spin long enough for the age-based drain.
        let a = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(2), imm: 9 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            MovImm { dst: Xreg(3), imm: 300 },
            AluImm { op: AOp::Sub, dst: Xreg(3), a: Xreg(3), imm: 1 },
            CmpImm { a: Xreg(3), imm: 0 },
            BCond { cond: ACond::Ne, rel: -28 },
            Nop, // memory must be visible before the halt-drain
            Hlt,
        ]);
        m.start_core(0, a);
        // Run until just before Hlt: 4 + 3*300 + 1 = 905 instructions.
        assert_eq!(m.run(905), Event::OutOfFuel);
        assert_eq!(m.mem.read_u64(0x5000), 9, "the store must age out of the buffer");
    }

    #[test]
    fn exclusive_monitor_cleared_by_foreign_drain() {
        use HostInsn::*;
        // Core 0 takes a monitor; core 1's buffered store to the same
        // address drains and must clear it, failing core 0's stxr.
        let mut m = Machine::new(2, CostModel::uniform());
        let c0 = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            Ldxr { dst: Xreg(2), addr: Xreg(1), acquire: false },
            // Spin to give core 1 time to write + drain.
            MovImm { dst: Xreg(3), imm: 400 },
            AluImm { op: AOp::Sub, dst: Xreg(3), a: Xreg(3), imm: 1 },
            CmpImm { a: Xreg(3), imm: 0 },
            BCond { cond: ACond::Ne, rel: -28 },
            MovImm { dst: Xreg(4), imm: 42 },
            Stxr { status: Xreg(5), src: Xreg(4), addr: Xreg(1), release: false },
            Hlt,
        ]);
        let c1 = m.install_code(&[
            MovImm { dst: Xreg(1), imm: 0x5000 },
            MovImm { dst: Xreg(2), imm: 7 },
            Str { src: Xreg(2), base: Xreg(1), off: 0, order: MemOrder::Plain },
            Barrier(Dmb::Ff),
            Hlt,
        ]);
        m.start_core(0, c0);
        m.start_core(1, c1);
        assert_eq!(m.run(10_000), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(5)), 1, "stxr must fail after foreign write");
        assert_eq!(m.mem.read_u64(0x5000), 7, "the foreign write survives");
    }

    #[test]
    fn contention_costs_more() {
        use HostInsn::*;
        let model = CostModel::thunderx2_like();
        // Two cores CAS the same address repeatedly vs different addresses.
        let build = |m: &mut Machine, addr: u64| {
            m.install_code(&[
                MovImm { dst: Xreg(1), imm: addr },
                MovImm { dst: Xreg(4), imm: 200 },
                // loop:
                Ldr { dst: Xreg(0), base: Xreg(1), off: 0, order: MemOrder::Plain },
                MovReg { dst: Xreg(2), src: Xreg(0) },
                AluImm { op: AOp::Add, dst: Xreg(2), a: Xreg(2), imm: 1 },
                Cas { cmp_old: Xreg(0), new: Xreg(2), addr: Xreg(1), acq_rel: true },
                AluImm { op: AOp::Sub, dst: Xreg(4), a: Xreg(4), imm: 1 },
                CmpImm { a: Xreg(4), imm: 0 },
                // Loop body size: 8+3+12+5+12+10+6 = 56 bytes back to the Ldr.
                BCond { cond: ACond::Ne, rel: -56 },
                Hlt,
            ])
        };
        let mut same = Machine::new(2, model);
        let c0 = build(&mut same, 0x5000);
        let c1 = build(&mut same, 0x5000);
        same.start_core(0, c0);
        same.start_core(1, c1);
        same.run(1_000_000);

        let mut diff = Machine::new(2, model);
        let d0 = build(&mut diff, 0x5000);
        let d1 = build(&mut diff, 0x9000);
        diff.start_core(0, d0);
        diff.start_core(1, d1);
        diff.run(1_000_000);

        assert!(
            same.clock() > diff.clock() + 1000,
            "contended CAS ({}) must be slower than uncontended ({})",
            same.clock(),
            diff.clock()
        );
    }

    /// A self-looping TB that decrements to a halt: 4 direct-jump exits
    /// (x0 = 1..=4 jump back, x0 = 5 halts).
    fn looping_tb(m: &mut Machine) -> u64 {
        use HostInsn::*;
        let a = m.install_code(&[
            AluImm { op: AOp::Add, dst: Xreg(0), a: Xreg(0), imm: 1 },
            CmpImm { a: Xreg(0), imm: 5 },
            BCond { cond: ACond::Eq, rel: 18 }, // over the 18-byte Jump exit
            ExitTb(TbExitKind::Jump { guest_pc: 0x1000, chain: 0 }),
            ExitTb(TbExitKind::Halt),
        ]);
        m.map_tb(0x1000, a);
        a
    }

    #[test]
    fn direct_jump_chains_after_first_dispatch() {
        let mut m = Machine::new(1, CostModel::uniform());
        let a = looping_tb(&mut m);
        m.start_core(0, a);
        assert_eq!(m.run(1000), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(0)), 5);
        let s = m.chain_stats();
        assert_eq!(s.chain_links, 1, "the exit is resolved exactly once");
        assert_eq!(s.chain_hits, 3, "every later traversal follows the patched slot");
    }

    #[test]
    fn chaining_disabled_is_pure_dispatch_with_identical_state() {
        let run = |chaining: bool| {
            let mut m = Machine::new(1, CostModel::uniform());
            m.set_chaining(chaining);
            let a = looping_tb(&mut m);
            m.start_core(0, a);
            assert_eq!(m.run(1000), Event::AllHalted);
            (m.reg(0, Xreg(0)), m.chain_stats())
        };
        let (on, s_on) = run(true);
        let (off, s_off) = run(false);
        assert_eq!(on, off, "architectural state must not depend on chaining");
        assert!(s_on.chain_hits > 0);
        assert_eq!(s_off.chain_hits + s_off.chain_links, 0);
    }

    #[test]
    fn jumpreg_exits_use_the_jump_cache() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let a = m.install_code(&[
            AluImm { op: AOp::Add, dst: Xreg(0), a: Xreg(0), imm: 1 },
            CmpImm { a: Xreg(0), imm: 5 },
            BCond { cond: ACond::Eq, rel: 3 }, // over the 3-byte JumpReg exit
            ExitTb(TbExitKind::JumpReg { reg: Xreg(9) }),
            ExitTb(TbExitKind::Halt),
        ]);
        m.map_tb(0x1000, a);
        m.set_reg(0, Xreg(9), 0x1000);
        m.start_core(0, a);
        assert_eq!(m.run(1000), Event::AllHalted);
        let s = m.chain_stats();
        assert_eq!(s.dispatch_misses, 1, "first indirect exit fills the cache");
        assert_eq!(s.dispatch_hits, 3);
    }

    #[test]
    fn unmap_unlinks_chains_and_stale_body_never_runs() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let a = m.install_code(&[ExitTb(TbExitKind::Jump { guest_pc: 0x2000, chain: 0 })]);
        let b = m.install_code(&[MovImm { dst: Xreg(1), imm: 42 }, ExitTb(TbExitKind::Halt)]);
        m.map_tb(0x1000, a);
        m.map_tb(0x2000, b);
        m.start_core(0, a);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(1)), 42);
        assert_eq!(m.chain_stats().chain_links, 1);

        // Evict the chained-into TB. The chain slot in `a` must be
        // un-patched before the mapping disappears.
        assert!(m.unmap_tb(0x2000));
        assert!(m.chain_stats().chain_flushes >= 1);
        m.set_reg(0, Xreg(1), 0);
        m.start_core(0, a);
        match m.run(100) {
            Event::TranslationMiss { core: 0, guest_pc: 0x2000 } => {}
            other => panic!("stale chain was followed: {other:?}"),
        }
        assert_eq!(m.reg(0, Xreg(1)), 0, "the stale body must never execute");

        // The engine retranslates; possibly into the reclaimed region.
        let b2 = m.install_code(&[MovImm { dst: Xreg(1), imm: 43 }, ExitTb(TbExitKind::Halt)]);
        m.map_tb(0x2000, b2);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(1)), 43, "the new body executes after relink");
    }

    #[test]
    fn jcache_is_flushed_on_unmap() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let a = m.install_code(&[ExitTb(TbExitKind::JumpReg { reg: Xreg(9) })]);
        let b = m.install_code(&[MovImm { dst: Xreg(1), imm: 42 }, ExitTb(TbExitKind::Halt)]);
        m.map_tb(0x2000, b);
        m.set_reg(0, Xreg(9), 0x2000);
        m.start_core(0, a);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(1)), 42);

        assert!(m.unmap_tb(0x2000));
        m.set_reg(0, Xreg(1), 0);
        m.start_core(0, a);
        match m.run(100) {
            Event::TranslationMiss { core: 0, guest_pc: 0x2000 } => {}
            other => panic!("stale jump-cache entry was served: {other:?}"),
        }
        assert_eq!(m.reg(0, Xreg(1)), 0);
    }

    #[test]
    fn code_buffer_is_reclaimed_on_unmap() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let body = [MovImm { dst: Xreg(1), imm: 7 }, ExitTb(TbExitKind::Halt)];
        let a = m.install_code(&body);
        m.map_tb(0x1000, a);
        let size = m.code_size();
        for _ in 0..50 {
            assert!(m.unmap_tb(0x1000));
            let b = m.install_code(&body);
            assert_eq!(b, a, "same-size retranslation reuses the freed region");
            m.map_tb(0x1000, b);
        }
        assert_eq!(m.code_size(), size, "churn must not grow the code buffer");
    }

    #[test]
    fn parked_in_region_free_is_deferred() {
        use HostInsn::*;
        let mut m = Machine::new(1, CostModel::uniform());
        let a = m.install_code(&[ExitTb(TbExitKind::Jump { guest_pc: 0x2000, chain: 0 })]);
        m.map_tb(0x1000, a);
        m.start_core(0, a);
        assert!(matches!(m.run(100), Event::TranslationMiss { .. }));
        // Evict the TB the core is parked *inside*. Its 18-byte region
        // must not be handed to the next (12-byte) install while the core
        // still sits there.
        assert!(m.unmap_tb(0x1000));
        let b = m.install_code(&[MovImm { dst: Xreg(1), imm: 7 }, ExitTb(TbExitKind::Halt)]);
        assert_ne!(b, a, "a parked-in region must not be reused");
        m.map_tb(0x2000, b);
        assert_eq!(m.run(100), Event::AllHalted);
        assert_eq!(m.reg(0, Xreg(1)), 7);
        // Once the core has left, the deferred free is honoured.
        let c = m.install_code(&[ExitTb(TbExitKind::Jump { guest_pc: 0x3000, chain: 0 })]);
        assert_eq!(c, a, "deferred region is reclaimed after the core moves on");
    }
}
