//! # risotto-host-arm
//!
//! The Arm host substrate: the MiniArm ISA, the TCG→Arm backend, a
//! multi-core weak-memory machine simulator, and the calibrated cycle
//! cost model that drives the evaluation figures.
//!
//! The machine stands in for the paper's ThunderX2 testbed (see DESIGN.md
//! for the substitution rationale): translated code really executes —
//! store buffers, exclusive monitors, `casal` contention and `DMB` costs
//! included — and the engine in `risotto-core` drives it through
//! translation-miss and syscall events.
//!
//! ## Example
//!
//! ```
//! use risotto_host_arm::{CostModel, Event, HostInsn, Machine, Xreg};
//!
//! let mut m = Machine::new(1, CostModel::thunderx2_like());
//! let code = m.install_code(&[
//!     HostInsn::MovImm { dst: Xreg::X0, imm: 40 },
//!     HostInsn::AluImm { op: risotto_host_arm::AOp::Add, dst: Xreg::X0, a: Xreg::X0, imm: 2 },
//!     HostInsn::Hlt,
//! ]);
//! m.start_core(0, code);
//! assert_eq!(m.run(100), Event::AllHalted);
//! assert_eq!(m.reg(0, Xreg::X0), 42);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod cost;
mod insn;
mod machine;
mod regalloc;
mod verify;

pub use backend::{
    arm_dmb_of, fp_op_of, helper_index, lower_block, lower_block_with_dialect,
    lower_block_with_stats, ArmBackend, ArmOrdering, BackendConfig, BackendError, HostAsm,
    HostBackend, LowerOutput, OrderingLowering, RmwStyle, ENV_BASE, SPILL_BASE,
};
pub use cost::CostModel;
pub use insn::{
    ACond, AFpOp, AOp, Dmb, HostInsn, MemOrder, Nzcv, TbExitKind, Xreg, JUMP_CHAIN_OFFSET,
};
pub use machine::{
    AtomicEvent, CacheStats, ChainStats, CoreStats, Event, HostFaultKind, Machine, NativeFn,
    NativeResult, SchedPolicy, TbProf, CODE_BASE,
};
pub use regalloc::AllocStats;
pub use verify::{
    check_encoding, check_encoding_with, encoding_err, ArmEncodingDialect, EncodingDialect, Point,
};
