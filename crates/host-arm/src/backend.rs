//! The TCG→MiniArm backend.
//!
//! Lowers optimized [`TcgBlock`]s to host code per the TCG→Arm mapping
//! scheme (Fig. 7b): plain `ld`/`st` → `LDR`/`STR`, fences via the minimal
//! `DMB` lowering, TCG `Cas` either as `casal` (Risotto's §6.3 fast path)
//! or as a `DMBFF`-bracketed `LDXR`/`STXR` loop, helper calls as `Hcall`.
//!
//! Register convention (normal mode):
//!
//! * `X27` — guest env base (GPRs + flags, 8 bytes each),
//! * `X28` — per-core spill area base,
//! * `X9`–`X26` — allocatable temps (linear scan, spill on pressure),
//! * `X0`–`X5` — helper/native call arguments.
//!
//! The *native oracle* mode (`BackendConfig::native()`) models natively
//! compiled code for the evaluation's `native` bars: guest registers map
//! directly onto host registers (`X6`–`X21`, flags `X22`–`X25`) with no
//! env traffic, floating point uses hardware instructions, no guest-
//! ordering fences are present (the native frontend never inserts them;
//! the programmer's own `MFENCE`s still lower to `DMB FF`), and RMWs use
//! `casal`.

use crate::cost::CostModel;
use crate::insn::{ACond, AFpOp, AOp, Dmb, HostInsn, MemOrder, TbExitKind, Xreg};
use crate::regalloc::{AllocStats, Allocator};
use risotto_memmodel::FenceKind;
use risotto_tcg::{BinOp, CondOp, Helper, TbExit, TcgBlock, TcgOp, VerifyError};
use std::collections::HashMap;

/// Errors surfaced by the TCG→MiniArm backend.
///
/// Historically these conditions aborted the process; they are surfaced
/// as typed errors so the engine can fall back to interpretation (or
/// report a diagnostic) instead of crashing the whole emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendError {
    /// A branch referenced a label that was never bound.
    UnboundLabel {
        /// The unresolved label id.
        label: u32,
    },
    /// Register allocation found no usable register: every pool register
    /// was forbidden for the current operand combination.
    RegisterPressure {
        /// Index of the TCG op being lowered when allocation failed.
        at_op: usize,
    },
    /// A temp was read before any op defined it. The verifier's Pass 1
    /// lint rejects such IR, but the backend must not depend on the lint
    /// having run: without this error a never-defined temp would
    /// silently reload garbage from its uninitialized spill slot.
    UndefinedTemp {
        /// The temp index that was read before definition.
        temp: u32,
        /// Index of the TCG op doing the read (`ops.len()` means the
        /// block exit).
        at_op: usize,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnboundLabel { label } => {
                write!(f, "backend: branch to unbound label L{label}")
            }
            BackendError::RegisterPressure { at_op } => {
                write!(f, "backend: register pool exhausted at op #{at_op}")
            }
            BackendError::UndefinedTemp { temp, at_op } => {
                write!(f, "backend: temp t{temp} read before definition at op #{at_op}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Env base register.
pub const ENV_BASE: Xreg = Xreg(27);
/// Spill area base register.
pub const SPILL_BASE: Xreg = Xreg(28);

/// How TCG `Cas`/`AtomicAdd` ops are lowered (Fig. 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwStyle {
    /// `RMW1_AL`: single `casal` / `ldaddal` (needs the corrected Arm
    /// model, §3.3/§6.3).
    Casal,
    /// `DMBFF; RMW2; DMBFF`: exclusive-pair loop bracketed by full fences.
    Rmw2Fenced,
}

/// Backend configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendConfig {
    /// RMW lowering for TCG `Cas`/`AtomicAdd` ops.
    pub rmw: RmwStyle,
    /// Lower FP helpers to hardware FP instead of `Hcall` soft-float.
    pub hardware_fp: bool,
    /// Native-oracle register mapping (no env traffic, no fences).
    pub direct_regs: bool,
}

impl BackendConfig {
    /// The DBT backend used by the `qemu`, `tcg-ver` and `no-fences`
    /// setups (helper-based RMWs arrive as `CallHelper`, so `rmw` is
    /// irrelevant there) and by `risotto` (whose frontend emits `Cas`).
    pub fn dbt(rmw: RmwStyle) -> BackendConfig {
        BackendConfig { rmw, hardware_fp: false, direct_regs: false }
    }

    /// The native-oracle backend (see module docs).
    pub fn native() -> BackendConfig {
        BackendConfig { rmw: RmwStyle::Casal, hardware_fp: true, direct_regs: true }
    }
}

// ---------------------------------------------------------------------
// Host mini-assembler with labels.
// ---------------------------------------------------------------------

/// A small label-resolving assembler over [`HostInsn`].
#[derive(Debug, Default)]
pub struct HostAsm {
    items: Vec<Item>,
    next_label: u32,
}

#[derive(Debug, Clone, Copy)]
enum Item {
    Insn(HostInsn),
    Label(u32),
    BCondTo(ACond, u32),
    BTo(u32),
}

impl HostAsm {
    /// Creates an empty assembler.
    pub fn new() -> HostAsm {
        HostAsm::default()
    }

    /// Allocates a fresh label id.
    pub fn fresh_label(&mut self) -> u32 {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Reserves room for `n` more items (instructions, labels or
    /// branches) ahead of a burst of pushes.
    pub fn reserve(&mut self, n: usize) {
        self.items.reserve(n);
    }

    /// Emits an instruction.
    pub fn push(&mut self, i: HostInsn) {
        self.items.push(Item::Insn(i));
    }

    /// Binds a label here.
    pub fn bind(&mut self, label: u32) {
        self.items.push(Item::Label(label));
    }

    /// Conditional branch to a label.
    pub fn bcond_to(&mut self, cond: ACond, label: u32) {
        self.items.push(Item::BCondTo(cond, label));
    }

    /// Unconditional branch to a label.
    pub fn b_to(&mut self, label: u32) {
        self.items.push(Item::BTo(label));
    }

    /// Resolves labels into relative branches.
    ///
    /// Returns [`BackendError::UnboundLabel`] if a branch targets a
    /// label that was never [`bind`](Self::bind)-ed.
    pub fn finish(self) -> Result<Vec<HostInsn>, BackendError> {
        // Pass 1: byte offsets. One scratch buffer serves every sizing
        // encode — a fresh `Vec` per item made `finish` the hottest
        // part of tier-0 template translation.
        let mut scratch = Vec::with_capacity(16);
        let mut size_of = |i: &Item| -> usize {
            scratch.clear();
            match i {
                Item::Insn(insn) => insn.encode(&mut scratch),
                Item::Label(_) => 0,
                Item::BCondTo(..) => {
                    HostInsn::BCond { cond: ACond::Eq, rel: 0 }.encode(&mut scratch)
                }
                Item::BTo(_) => HostInsn::B { rel: 0 }.encode(&mut scratch),
            }
        };
        let mut offsets = Vec::with_capacity(self.items.len() + 1);
        let mut labels: HashMap<u32, usize> = HashMap::new();
        let mut off = 0usize;
        for item in &self.items {
            offsets.push(off);
            if let Item::Label(l) = item {
                labels.insert(*l, off);
            }
            off += size_of(item);
        }
        offsets.push(off);
        // Pass 2: materialize. `offsets[idx + 1]` is the end of this
        // item, so nothing needs re-sizing.
        let mut out = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let next = offsets[idx + 1];
            match item {
                Item::Insn(i) => out.push(*i),
                Item::Label(_) => {}
                Item::BCondTo(c, l) => {
                    let target = *labels.get(l).ok_or(BackendError::UnboundLabel { label: *l })?;
                    out.push(HostInsn::BCond { cond: *c, rel: target as i32 - next as i32 });
                }
                Item::BTo(l) => {
                    let target = *labels.get(l).ok_or(BackendError::UnboundLabel { label: *l })?;
                    out.push(HostInsn::B { rel: target as i32 - next as i32 });
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------
//
// Register allocation lives in `crate::regalloc`: a liveness prepass
// plus a deterministic block-scoped allocator that pins guest env
// registers in host registers (loads once on first use, write-back
// deferred to the flush points below) and spills temps Belady-style.

/// The stable runtime-helper table index of a TCG [`Helper`], shared by
/// every backend's `Hcall` lowering and the verifier's read-back.
pub fn helper_index(h: Helper) -> u8 {
    match h {
        Helper::CmpxchgSc => 0,
        Helper::XaddSc => 1,
        Helper::FpAdd => 2,
        Helper::FpSub => 3,
        Helper::FpMul => 4,
        Helper::FpDiv => 5,
        Helper::FpSqrt => 6,
        Helper::FpCvtIF => 7,
        Helper::FpCvtFI => 8,
    }
}

/// The hardware-FP instruction behind a float [`Helper`], or `None` for
/// the helpers that always stay out-of-line (`CmpxchgSc`/`XaddSc`).
pub fn fp_op_of(h: Helper) -> Option<AFpOp> {
    Some(match h {
        Helper::FpAdd => AFpOp::Add,
        Helper::FpSub => AFpOp::Sub,
        Helper::FpMul => AFpOp::Mul,
        Helper::FpDiv => AFpOp::Div,
        Helper::FpSqrt => AFpOp::Sqrt,
        Helper::FpCvtIF => AFpOp::CvtIF,
        Helper::FpCvtFI => AFpOp::CvtFI,
        _ => return None,
    })
}

fn bin_op_of(b: BinOp) -> AOp {
    match b {
        BinOp::Add => AOp::Add,
        BinOp::Sub => AOp::Sub,
        BinOp::And => AOp::And,
        BinOp::Or => AOp::Orr,
        BinOp::Xor => AOp::Eor,
        BinOp::Shl => AOp::Lsl,
        BinOp::Shr => AOp::Lsr,
        BinOp::Sar => AOp::Asr,
        BinOp::Mul => AOp::Mul,
        BinOp::MulHi => AOp::Umulh,
        BinOp::Divu => AOp::Udiv,
        BinOp::Remu => AOp::Urem,
    }
}

fn cond_of(c: CondOp) -> ACond {
    match c {
        CondOp::Eq => ACond::Eq,
        CondOp::Ne => ACond::Ne,
        CondOp::LtU => ACond::Lo,
        CondOp::LtS => ACond::Lt,
    }
}

/// Env register location in native (direct-mapped) mode.
fn direct_reg(env_reg: u8) -> Xreg {
    if env_reg < 16 {
        Xreg(6 + env_reg) // guest GPRs → X6..X21
    } else {
        Xreg(22 + (env_reg - 16)) // flags → X22..X25
    }
}

/// The MiniArm `Barrier` operand implementing a TCG fence, through the
/// shared [`FenceKind::arm_dmb`] table: `None` for the no-op fences
/// (`Facq`/`Frel`). This is the *single* FenceKind→[`Dmb`] conversion —
/// the lowering and the Pass 3 read-back both call it, instead of each
/// keeping a private copy of the match.
pub fn arm_dmb_of(k: FenceKind) -> Option<Dmb> {
    Some(match k.arm_dmb()? {
        FenceKind::DmbLd => Dmb::Ld,
        FenceKind::DmbSt => Dmb::St,
        _ => Dmb::Ff,
    })
}

// ---------------------------------------------------------------------
// The pluggable backend abstraction.
// ---------------------------------------------------------------------

/// The ordering-sensitive lowering hooks that differ per host ISA.
///
/// [`HostInsn`] is the shared ISA-neutral *container*: ALU work, moves,
/// env pinning, helper calls, spills and TB exits lower identically on
/// every backend and live in [`lower_block_with_dialect`]. What
/// distinguishes a host architecture is exactly how TCG **fences** and
/// **atomic RMWs** materialize — those three decisions are this trait.
///
/// The Arm dialect ([`ArmOrdering`]) emits `DMB`s per the Fig. 7b table
/// and `casal`/exclusive-pair RMWs; the MiniTSO dialect in
/// `risotto-host-tso` emits `MFENCE` (a full [`HostInsn::Barrier`]) only
/// for store→load obligations and `LOCK`-prefixed RMW forms.
pub trait OrderingLowering {
    /// The host instruction implementing a TCG fence, or `None` when the
    /// fence is a no-op on this host. This is the per-backend
    /// fence-lowering table documented in docs/BACKENDS.md.
    fn fence(&self, k: FenceKind) -> Option<HostInsn>;

    /// Lowers a TCG `Cas`: `dst` receives the old value, `addr` the
    /// location, `expect`/`new` the comparands. Dirty env registers are
    /// already flushed; the emitted sequence must be atomic on this host.
    fn cas(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        expect: Xreg,
        new: Xreg,
        cfg: BackendConfig,
    );

    /// Lowers a TCG `AtomicAdd`: `dst` receives the old value.
    fn atomic_add(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        addend: Xreg,
        cfg: BackendConfig,
    );

    /// Register-allocation hook: the allocatable host-register pool under
    /// `cfg`. The default is the shared convention (X9–X26 for DBT mode,
    /// the scratch set in native direct-mapped mode); backends may shrink
    /// it to model ISAs with fewer registers.
    fn alloc_pool(&self, cfg: BackendConfig) -> Vec<Xreg> {
        if cfg.direct_regs {
            [0, 1, 2, 3, 4, 5, 26, 29].iter().map(|&r| Xreg(r)).collect()
        } else {
            (9..=26).map(Xreg).collect()
        }
    }
}

/// The Arm ordering dialect (Fig. 7b): minimal `DMB`s via
/// [`arm_dmb_of`], RMWs as `casal`/`ldaddal` or the `DMBFF`-bracketed
/// exclusive-pair loop per [`BackendConfig::rmw`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmOrdering;

impl OrderingLowering for ArmOrdering {
    fn fence(&self, k: FenceKind) -> Option<HostInsn> {
        arm_dmb_of(k).map(HostInsn::Barrier)
    }

    fn cas(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        expect: Xreg,
        new: Xreg,
        cfg: BackendConfig,
    ) {
        match cfg.rmw {
            RmwStyle::Casal => {
                // casal dst, new, [addr] with dst preloaded with expect.
                asm.push(HostInsn::MovReg { dst, src: expect });
                asm.push(HostInsn::Cas { cmp_old: dst, new, addr, acq_rel: true });
            }
            RmwStyle::Rmw2Fenced => {
                // DMBFF; loop: ldxr dst; cmp dst, expect; b.ne done;
                // stxr status, new; cbnz loop; done: DMBFF.
                let status = Xreg(8); // outside the allocatable pool
                let l_loop = asm.fresh_label();
                let l_done = asm.fresh_label();
                asm.push(HostInsn::Barrier(Dmb::Ff));
                asm.bind(l_loop);
                asm.push(HostInsn::Ldxr { dst, addr, acquire: false });
                asm.push(HostInsn::Cmp { a: dst, b: expect });
                asm.bcond_to(ACond::Ne, l_done);
                asm.push(HostInsn::Stxr { status, src: new, addr, release: false });
                asm.push(HostInsn::CmpImm { a: status, imm: 0 });
                asm.bcond_to(ACond::Ne, l_loop);
                asm.bind(l_done);
                asm.push(HostInsn::Barrier(Dmb::Ff));
            }
        }
    }

    fn atomic_add(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        addend: Xreg,
        cfg: BackendConfig,
    ) {
        match cfg.rmw {
            RmwStyle::Casal => {
                asm.push(HostInsn::LdaddAl { old: dst, addend, addr });
            }
            RmwStyle::Rmw2Fenced => {
                let status = Xreg(8);
                let tmp = Xreg(7);
                let l_loop = asm.fresh_label();
                asm.push(HostInsn::Barrier(Dmb::Ff));
                asm.bind(l_loop);
                asm.push(HostInsn::Ldxr { dst, addr, acquire: false });
                asm.push(HostInsn::Alu { op: AOp::Add, dst: tmp, a: dst, b: addend });
                asm.push(HostInsn::Stxr { status, src: tmp, addr, release: false });
                asm.push(HostInsn::CmpImm { a: status, imm: 0 });
                asm.bcond_to(ACond::Ne, l_loop);
                asm.push(HostInsn::Barrier(Dmb::Ff));
            }
        }
    }
}

/// A pluggable host backend: the ordering dialect plus everything the
/// engine needs to drive a translation target end to end.
///
/// Implementations exist for the MiniArm host ([`ArmBackend`], this
/// crate) and the MiniTSO host (`TsoBackend` in `risotto-host-tso`).
/// The engine holds a `&'static dyn HostBackend` and routes every
/// lowering, cost and Pass 3 decision through it; Passes 1–2 of the
/// translation validator stay backend-independent in `risotto-tcg`.
pub trait HostBackend: OrderingLowering + std::fmt::Debug + Sync {
    /// Short stable name (`"arm"`, `"tso"`), used by `--backend` flags
    /// and artifact keys.
    fn name(&self) -> &'static str;

    /// Lowers an optimized TCG block to host instructions with
    /// allocation statistics. The default routes through the shared
    /// container lowering with this backend's ordering dialect.
    fn lower_block_with_stats(
        &self,
        block: &TcgBlock,
        cfg: BackendConfig,
    ) -> Result<LowerOutput, BackendError> {
        lower_block_with_dialect(block, cfg, self)
    }

    /// The backend's calibrated cycle cost model (what
    /// `Machine::new` should be fed when simulating this host).
    fn cost_model(&self) -> CostModel;

    /// Pass 3 of the translation validator: this backend's encoding
    /// read-back. Must independently re-derive the expected ordering
    /// points from the IR (not from the lowering) so a buggy shared
    /// table cannot vouch for itself.
    fn check_encoding(
        &self,
        block: &TcgBlock,
        insns: &[HostInsn],
        bytes: &[u8],
        cfg: BackendConfig,
    ) -> Result<(), VerifyError>;
}

/// The MiniArm host backend: [`ArmOrdering`] dialect, the ThunderX2
/// cost calibration, and the Arm Pass 3 read-back.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmBackend;

impl OrderingLowering for ArmBackend {
    fn fence(&self, k: FenceKind) -> Option<HostInsn> {
        ArmOrdering.fence(k)
    }

    fn cas(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        expect: Xreg,
        new: Xreg,
        cfg: BackendConfig,
    ) {
        ArmOrdering.cas(asm, dst, addr, expect, new, cfg);
    }

    fn atomic_add(
        &self,
        asm: &mut HostAsm,
        dst: Xreg,
        addr: Xreg,
        addend: Xreg,
        cfg: BackendConfig,
    ) {
        ArmOrdering.atomic_add(asm, dst, addr, addend, cfg);
    }
}

impl HostBackend for ArmBackend {
    fn name(&self) -> &'static str {
        "arm"
    }

    fn cost_model(&self) -> CostModel {
        CostModel::thunderx2_like()
    }

    fn check_encoding(
        &self,
        block: &TcgBlock,
        insns: &[HostInsn],
        bytes: &[u8],
        cfg: BackendConfig,
    ) -> Result<(), VerifyError> {
        crate::verify::check_encoding(block, insns, bytes, cfg)
    }
}

/// The backend's lowering product: the host instruction stream plus the
/// register-allocation statistics behind it (mirrored into the
/// `regalloc.*` registry metrics by the engine).
#[derive(Debug, Clone)]
pub struct LowerOutput {
    /// Lowered host instructions, labels resolved.
    pub insns: Vec<HostInsn>,
    /// Allocation statistics for this block.
    pub alloc: AllocStats,
}

/// Lowers an (optimized) TCG block to host instructions.
///
/// Returns a [`BackendError`] instead of panicking when lowering cannot
/// proceed (unbound label, unallocatable register combination, temp
/// read before definition). Convenience wrapper over
/// [`lower_block_with_stats`] for callers that do not consume the
/// allocation statistics.
pub fn lower_block(block: &TcgBlock, cfg: BackendConfig) -> Result<Vec<HostInsn>, BackendError> {
    lower_block_with_stats(block, cfg).map(|out| out.insns)
}

/// Lowers an (optimized) TCG block and reports the allocation
/// statistics ([`AllocStats`]) alongside the instruction stream.
///
/// Guest env registers are pinned in host registers for the whole block
/// (loaded once on first use, including across `TbBoundary` seams in
/// superblocks); dirty env registers are written back at every point
/// where execution can leave the block or an external observer could
/// look at the env: all block exits, `SideExit` deopt paths, helper
/// calls, and `Cas`/`AtomicAdd` sequences.
pub fn lower_block_with_stats(
    block: &TcgBlock,
    cfg: BackendConfig,
) -> Result<LowerOutput, BackendError> {
    lower_block_with_dialect(block, cfg, &ArmOrdering)
}

/// Lowers an (optimized) TCG block through an explicit ordering dialect.
///
/// This is the shared backend skeleton: register allocation, env
/// pinning/write-back, ALU/branch/helper lowering and TB-exit shapes are
/// identical for every host; the dialect (`ord`) decides what fences and
/// atomic RMWs become. [`lower_block_with_stats`] is this function with
/// [`ArmOrdering`]; the MiniTSO backend calls it with its own dialect.
pub fn lower_block_with_dialect<O: OrderingLowering + ?Sized>(
    block: &TcgBlock,
    cfg: BackendConfig,
    ord: &O,
) -> Result<LowerOutput, BackendError> {
    let pool = ord.alloc_pool(cfg);
    let mut alloc = Allocator::new(block, pool, !cfg.direct_regs);
    let mut asm = HostAsm::new();
    let (mut get_regs, mut set_regs) = (0u64, 0u64);

    for (idx, op) in block.ops.iter().enumerate() {
        alloc.free_dead(idx);
        match op {
            TcgOp::MovI { dst, val } => {
                // Zero-cost: the constant is recorded and materialized
                // (`MovImm`) only at the first read; equal constants in
                // one block share a single host register.
                alloc.def_const(*dst, *val);
            }
            TcgOp::Mov { dst, src } => {
                if let Some(c) = alloc.const_of(*src) {
                    alloc.def_const(*dst, c);
                } else {
                    let rs = alloc.read_temp(&mut asm, idx, idx, *src, &[])?;
                    let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[rs])?;
                    asm.push(HostInsn::MovReg { dst: rd, src: rs });
                }
            }
            TcgOp::GetReg { dst, reg } => {
                if cfg.direct_regs {
                    let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[])?;
                    asm.push(HostInsn::MovReg { dst: rd, src: direct_reg(*reg) });
                } else {
                    // Zero-cost alias: the env value is pinned (loaded
                    // lazily at its first read) and `dst` reads from it.
                    get_regs += 1;
                    alloc.alias_env(*dst, *reg);
                }
            }
            TcgOp::SetReg { reg, src } => {
                let rs = alloc.read_temp(&mut asm, idx, idx, *src, &[])?;
                if cfg.direct_regs {
                    asm.push(HostInsn::MovReg { dst: direct_reg(*reg), src: rs });
                } else {
                    set_regs += 1;
                    alloc.write_env(&mut asm, idx, idx, *reg, *src, rs)?;
                }
            }
            TcgOp::Ld { dst, addr } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *addr, &[])?;
                let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[ra])?;
                asm.push(HostInsn::Ldr { dst: rd, base: ra, off: 0, order: MemOrder::Plain });
            }
            TcgOp::St { addr, src } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *addr, &[])?;
                let rs = alloc.read_temp(&mut asm, idx, idx, *src, &[ra])?;
                asm.push(HostInsn::Str { src: rs, base: ra, off: 0, order: MemOrder::Plain });
            }
            TcgOp::Ld8 { dst, addr } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *addr, &[])?;
                let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[ra])?;
                asm.push(HostInsn::LdrB { dst: rd, base: ra, off: 0 });
            }
            TcgOp::St8 { addr, src } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *addr, &[])?;
                let rs = alloc.read_temp(&mut asm, idx, idx, *src, &[ra])?;
                asm.push(HostInsn::StrB { src: rs, base: ra, off: 0 });
            }
            TcgOp::Bin { op, dst, a, b } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *a, &[])?;
                let rb = alloc.read_temp(&mut asm, idx, idx, *b, &[ra])?;
                let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[ra, rb])?;
                asm.push(HostInsn::Alu { op: bin_op_of(*op), dst: rd, a: ra, b: rb });
            }
            TcgOp::Setcond { cond, dst, a, b } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *a, &[])?;
                let rb = alloc.read_temp(&mut asm, idx, idx, *b, &[ra])?;
                let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[ra, rb])?;
                asm.push(HostInsn::Cmp { a: ra, b: rb });
                asm.push(HostInsn::Cset { dst: rd, cond: cond_of(*cond) });
            }
            TcgOp::Fence(k) => {
                // Note: the native oracle reaches here too — its frontend
                // emits no guest-*ordering* fences, so any fence left in
                // the IR is the programmer's own (MFENCE → Fsc) and must
                // be honoured.
                if let Some(barrier) = ord.fence(*k) {
                    asm.push(barrier);
                }
            }
            TcgOp::Cas { dst, addr, expect, new } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *addr, &[])?;
                let re = alloc.read_temp(&mut asm, idx, idx, *expect, &[ra])?;
                let rn = alloc.read_temp(&mut asm, idx, idx, *new, &[ra, re])?;
                let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[ra, re, rn])?;
                // Atomic sequences are env flush points: an exclusive
                // monitor/contention path must never race a stale env.
                // The stores land before the sequence begins, so nothing
                // intrudes between LDXR and STXR.
                alloc.flush_env(&mut asm, true);
                ord.cas(&mut asm, rd, ra, re, rn, cfg);
            }
            TcgOp::AtomicAdd { dst, addr, val } => {
                let ra = alloc.read_temp(&mut asm, idx, idx, *addr, &[])?;
                let rv = alloc.read_temp(&mut asm, idx, idx, *val, &[ra])?;
                let rd = alloc.def_temp(&mut asm, idx, idx, *dst, &[ra, rv])?;
                alloc.flush_env(&mut asm, true);
                ord.atomic_add(&mut asm, rd, ra, rv, cfg);
            }
            TcgOp::SideExit { flag, stay_if, target } => {
                // Guarded off-trace exit: fall through (stay on the
                // trace) when the flag's truth matches the profiled
                // direction, otherwise leave via a chainable direct
                // jump — side exits dispatch and chain exactly like a
                // tier-1 `Jump` exit. The dirty-env write-back sits on
                // the leave path only (stores do not touch nzcv, so they
                // are safe between the compare and the exit): the hot
                // stay path pays nothing, and the dirty bits survive for
                // the next flush point.
                let r = alloc.read_temp(&mut asm, idx, idx, *flag, &[])?;
                let l_stay = asm.fresh_label();
                asm.push(HostInsn::CmpImm { a: r, imm: 0 });
                asm.bcond_to(if *stay_if { ACond::Ne } else { ACond::Eq }, l_stay);
                alloc.flush_env(&mut asm, false);
                asm.push(HostInsn::ExitTb(TbExitKind::Jump { guest_pc: *target, chain: 0 }));
                asm.bind(l_stay);
            }
            TcgOp::TbBoundary { .. } => {
                // Pure metadata: the seam generates no host code, and
                // the allocation state (pinned env registers included)
                // deliberately survives it — this is where superblock
                // residency compounds.
            }
            TcgOp::CallHelper { helper, args, ret } => {
                if cfg.hardware_fp {
                    if let Some(fp) = fp_op_of(*helper) {
                        let ra = alloc.read_temp(&mut asm, idx, idx, args[0], &[])?;
                        let rb = alloc.read_temp(&mut asm, idx, idx, args[1], &[ra])?;
                        if let Some(r) = ret {
                            let rd = alloc.def_temp(&mut asm, idx, idx, *r, &[ra, rb])?;
                            asm.push(HostInsn::Fp { op: fp, dst: rd, a: ra, b: rb });
                        }
                        continue;
                    }
                }
                // Out-of-line call: flush the env first (helpers model
                // runtime code that may inspect guest state), then
                // marshal args into X0.. and move the result out.
                alloc.flush_env(&mut asm, true);
                for (i, a) in args.iter().enumerate() {
                    let ra = alloc.read_temp(&mut asm, idx, idx, *a, &[])?;
                    asm.push(HostInsn::MovReg { dst: Xreg(i as u8), src: ra });
                }
                asm.push(HostInsn::Hcall { helper: helper_index(*helper) });
                if let Some(r) = ret {
                    let rd = alloc.def_temp(&mut asm, idx, idx, *r, &[])?;
                    asm.push(HostInsn::MovReg { dst: rd, src: Xreg(0) });
                }
            }
        }
    }

    // Exit: every path out of the block writes the dirty env back
    // first, so the engine (dispatch, syscalls, interpreter fallback,
    // final register read-out) always sees a coherent env.
    let exit_idx = block.ops.len();
    alloc.free_dead(exit_idx);
    match &block.exit {
        TbExit::Jump(pc) => {
            alloc.flush_env(&mut asm, true);
            asm.push(HostInsn::ExitTb(TbExitKind::Jump { guest_pc: *pc, chain: 0 }));
        }
        TbExit::JumpReg(t) => {
            let r = alloc.read_temp(&mut asm, exit_idx, exit_idx, *t, &[])?;
            alloc.flush_env(&mut asm, true);
            asm.push(HostInsn::ExitTb(TbExitKind::JumpReg { reg: r }));
        }
        TbExit::CondJump { flag, taken, fallthrough } => {
            let r = alloc.read_temp(&mut asm, exit_idx, exit_idx, *flag, &[])?;
            // Both arms leave the block, so one flush before the compare
            // serves them both.
            alloc.flush_env(&mut asm, true);
            let l_taken = asm.fresh_label();
            asm.push(HostInsn::CmpImm { a: r, imm: 0 });
            asm.bcond_to(ACond::Ne, l_taken);
            asm.push(HostInsn::ExitTb(TbExitKind::Jump { guest_pc: *fallthrough, chain: 0 }));
            asm.bind(l_taken);
            asm.push(HostInsn::ExitTb(TbExitKind::Jump { guest_pc: *taken, chain: 0 }));
        }
        TbExit::Halt => {
            alloc.flush_env(&mut asm, true);
            asm.push(HostInsn::ExitTb(TbExitKind::Halt));
        }
        TbExit::Syscall { next } => {
            alloc.flush_env(&mut asm, true);
            asm.push(HostInsn::ExitTb(TbExitKind::Syscall { next: *next }));
        }
    }
    let insns = asm.finish()?;
    let mut stats = alloc.into_stats();
    stats.env_loads_eliminated = get_regs.saturating_sub(stats.env_loads);
    stats.env_stores_eliminated = set_regs.saturating_sub(stats.env_stores);
    Ok(LowerOutput { insns, alloc: stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_tcg::{FrontendConfig, OptPolicy};

    fn lower_snippet(
        f: impl FnOnce(&mut risotto_guest_x86::Assembler),
        fe: FrontendConfig,
        be: BackendConfig,
        opt: bool,
    ) -> Vec<HostInsn> {
        let mut a = risotto_guest_x86::Assembler::new(0x1000);
        f(&mut a);
        let (bytes, _) = a.finish().expect("assembles");
        let fetch = move |addr: u64| {
            let mut w = [0u8; 16];
            let off = (addr - 0x1000) as usize;
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = bytes.get(off + i).copied().unwrap_or(0);
            }
            w
        };
        let mut block = risotto_tcg::translate_block(0x1000, fe, fetch).expect("translates");
        if opt {
            risotto_tcg::optimize(&mut block, OptPolicy::Verified);
        }
        lower_block(&block, be).expect("lowering the snippet")
    }

    #[test]
    fn load_store_lowering_matches_fig7c() {
        use risotto_guest_x86::Gpr;
        // Verified: LDR; DMBLD … DMBST; STR.
        let code = lower_snippet(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.store(Gpr::RSI, 0, Gpr::RAX);
                a.hlt();
            },
            FrontendConfig::tcg_ver(),
            BackendConfig::dbt(RmwStyle::Rmw2Fenced),
            false,
        );
        let dmb_ld = code.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::Ld))).count();
        let dmb_st = code.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::St))).count();
        assert_eq!(dmb_ld, 1);
        assert_eq!(dmb_st, 1);
    }

    #[test]
    fn qemu_lowering_matches_fig2() {
        use risotto_guest_x86::Gpr;
        // Qemu (Fig. 2): RMOV → DMBLD; LDR and WMOV → DMBFF; STR.
        let code = lower_snippet(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.store(Gpr::RSI, 0, Gpr::RAX);
                a.hlt();
            },
            FrontendConfig::qemu(),
            BackendConfig::dbt(RmwStyle::Rmw2Fenced),
            false,
        );
        let dmb_ff = code.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::Ff))).count();
        let dmb_ld = code.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::Ld))).count();
        assert_eq!(dmb_ff, 1);
        assert_eq!(dmb_ld, 1);
    }

    #[test]
    fn cas_lowers_to_casal_or_fenced_loop() {
        use risotto_guest_x86::Gpr;
        let snippet = |a: &mut risotto_guest_x86::Assembler| {
            a.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
            a.hlt();
        };
        let casal = lower_snippet(
            snippet,
            FrontendConfig::risotto(),
            BackendConfig::dbt(RmwStyle::Casal),
            false,
        );
        assert!(casal.iter().any(|i| matches!(i, HostInsn::Cas { acq_rel: true, .. })));
        assert!(!casal.iter().any(|i| matches!(i, HostInsn::Ldxr { .. })));

        let loop_ = lower_snippet(
            snippet,
            FrontendConfig::risotto(),
            BackendConfig::dbt(RmwStyle::Rmw2Fenced),
            false,
        );
        assert!(loop_.iter().any(|i| matches!(i, HostInsn::Ldxr { .. })));
        let ffs = loop_.iter().filter(|i| matches!(i, HostInsn::Barrier(Dmb::Ff))).count();
        assert!(ffs >= 2, "RMW2 lowering needs bracketing DMBFFs");
    }

    #[test]
    fn helper_cas_becomes_hcall() {
        use risotto_guest_x86::Gpr;
        let code = lower_snippet(
            |a| {
                a.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
                a.hlt();
            },
            FrontendConfig::qemu(),
            BackendConfig::dbt(RmwStyle::Casal),
            false,
        );
        assert!(code.iter().any(|i| matches!(i, HostInsn::Hcall { helper: 0 })));
        assert!(!code.iter().any(|i| matches!(i, HostInsn::Cas { .. })));
    }

    #[test]
    fn native_mode_uses_hardware_fp_and_no_fences() {
        use risotto_guest_x86::{FpOp, Gpr};
        let code = lower_snippet(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX);
                a.store(Gpr::RDI, 0, Gpr::RAX);
                a.hlt();
            },
            // The engine pairs the native backend with the fence-free
            // frontend: ordering comes from the programmer's own fences.
            FrontendConfig::no_fences(),
            BackendConfig::native(),
            false,
        );
        assert!(code.iter().any(|i| matches!(i, HostInsn::Fp { .. })));
        assert!(!code.iter().any(|i| matches!(i, HostInsn::Hcall { .. })));
        assert!(
            !code.iter().any(|i| matches!(i, HostInsn::Barrier(_))),
            "no mapping-inserted fences in native mode"
        );
        // No env traffic either: loads/stores only for guest data.
        assert!(!code.iter().any(|i| matches!(i, HostInsn::Ldr { base, .. } if *base == ENV_BASE)));
    }

    #[test]
    fn label_fixups_resolve() {
        let mut asm = HostAsm::new();
        let l = asm.fresh_label();
        asm.push(HostInsn::MovImm { dst: Xreg(0), imm: 1 });
        asm.bcond_to(ACond::Eq, l);
        asm.push(HostInsn::Nop);
        asm.push(HostInsn::Nop);
        asm.bind(l);
        asm.push(HostInsn::Hlt);
        let code = asm.finish().expect("all labels bound");
        match code[1] {
            HostInsn::BCond { rel, .. } => assert_eq!(rel, 2, "skip two 1-byte nops"),
            ref other => unreachable!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_pressure_spills_and_reloads() {
        // A block with >18 simultaneously live *computed* temps: force
        // spilling (MovI temps alone are rematerializable constants and
        // never spill).
        let mut block =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        let seed = block.new_temp();
        block.ops.push(TcgOp::MovI { dst: seed, val: 3 });
        let mut temps = Vec::new();
        let mut prev = seed;
        for _ in 0..24 {
            let t = block.new_temp();
            block.ops.push(TcgOp::Bin { op: BinOp::Mul, dst: t, a: prev, b: seed });
            temps.push(t);
            prev = t;
        }
        // Use them all afterwards so they stay live.
        for pair in temps.chunks(2) {
            if let [a, b] = pair {
                let d = block.new_temp();
                block.ops.push(TcgOp::Bin { op: BinOp::Add, dst: d, a: *a, b: *b });
                block.ops.push(TcgOp::SetReg { reg: 0, src: d });
            }
        }
        let code =
            lower_block(&block, BackendConfig::dbt(RmwStyle::Casal)).expect("spilling lowering");
        let spls = code
            .iter()
            .filter(|i| matches!(i, HostInsn::Str { base, .. } if *base == SPILL_BASE))
            .count();
        let rlds = code
            .iter()
            .filter(|i| matches!(i, HostInsn::Ldr { base, .. } if *base == SPILL_BASE))
            .count();
        assert!(spls > 0 && rlds > 0, "expected spill traffic ({spls} spills, {rlds} reloads)");
    }
}
