//! The cycle-cost model of the simulated Arm host.
//!
//! Constants are calibrated once (`thunderx2_like`) so the *shape* of the
//! paper's Figures 12–15 reproduces: full barriers are an order of
//! magnitude costlier than plain ALU work, `DMB LD`/`DMB ST` are several
//! times cheaper than `DMB FF`, helper calls carry a fixed runtime
//! round-trip, soft-float is several times hardware FP, and contended
//! atomics are dominated by cache-line ping-pong. Absolute numbers are
//! simulator artifacts; EXPERIMENTS.md reports shape comparisons only.

/// Cycle costs per instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Plain ALU / move / compare.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide.
    pub div: u64,
    /// Plain load.
    pub load: u64,
    /// Plain store (into the store buffer).
    pub store: u64,
    /// Acquire load / release store extra cost.
    pub acq_rel_extra: u64,
    /// `DMB FF`.
    pub dmb_ff: u64,
    /// `DMB LD`.
    pub dmb_ld: u64,
    /// `DMB ST`.
    pub dmb_st: u64,
    /// Branch (taken or not).
    pub branch: u64,
    /// `BL`/`BLR`/`RET`.
    pub call: u64,
    /// Single-instruction atomic (`cas`/`casal`/`ldaddal`), uncontended.
    pub atomic: u64,
    /// Extra atomic cycles per *other* core recently hitting the same line.
    pub atomic_contend: u64,
    /// Exclusive load/store (`ldxr`/`stxr`), each.
    pub exclusive: u64,
    /// Fixed overhead of a helper call (jump out of the code cache, spill,
    /// run runtime code, return).
    pub helper_overhead: u64,
    /// Soft-float operation (executed inside a helper, on top of
    /// `helper_overhead`).
    pub softfloat: u64,
    /// Hardware floating-point operation.
    pub hardfloat: u64,
    /// Guest→host argument marshaling per native-library call (§6.2).
    pub marshal: u64,
    /// Following an already-patched chain slot (or a jump-cache hit) at a
    /// TB exit: effectively a direct branch inside the code cache.
    pub tb_chain: u64,
    /// Falling back to the dispatcher at a TB exit: spill, hash the guest
    /// pc into the translation map, reload, and branch. Charged on the
    /// first traversal of a direct exit (before it is chained) and on
    /// every indirect-branch jump-cache miss.
    pub tb_dispatch: u64,
    /// Window (in cycles) in which another core's RMW on the same address
    /// counts as contention.
    pub contend_window: u64,
}

impl CostModel {
    /// The calibrated model used by all experiments.
    pub fn thunderx2_like() -> CostModel {
        CostModel {
            alu: 1,
            mul: 4,
            div: 16,
            load: 4,
            store: 2,
            acq_rel_extra: 4,
            dmb_ff: 50,
            dmb_ld: 38,
            dmb_st: 18,
            branch: 1,
            call: 2,
            atomic: 24,
            atomic_contend: 260,
            exclusive: 12,
            helper_overhead: 65,
            softfloat: 26,
            hardfloat: 4,
            marshal: 22,
            tb_chain: 2,
            tb_dispatch: 14,
            contend_window: 600,
        }
    }

    /// A flat unit-cost model (useful in functional tests).
    pub fn uniform() -> CostModel {
        CostModel {
            alu: 1,
            mul: 1,
            div: 1,
            load: 1,
            store: 1,
            acq_rel_extra: 0,
            dmb_ff: 1,
            dmb_ld: 1,
            dmb_st: 1,
            branch: 1,
            call: 1,
            atomic: 1,
            atomic_contend: 0,
            exclusive: 1,
            helper_overhead: 1,
            softfloat: 1,
            hardfloat: 1,
            marshal: 1,
            tb_chain: 1,
            tb_dispatch: 1,
            contend_window: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::thunderx2_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_orderings_hold() {
        let c = CostModel::thunderx2_like();
        // The relationships the paper's analysis depends on.
        assert!(c.dmb_ff > c.dmb_ld, "the full fence beats DMB LD");
        assert!(c.dmb_ff > 2 * c.dmb_st, "the full fence dwarfs DMB ST");
        assert!(
            c.dmb_ff < c.dmb_ld + c.dmb_st,
            "fence merging (Frm·Fww → one full fence, §6.1) must be profitable"
        );
        assert!(c.dmb_ld > c.load, "even light fences beat plain loads");
        assert!(c.helper_overhead > c.atomic, "helper round-trip dominates an uncontended CAS");
        assert!(c.softfloat > 4 * c.hardfloat, "QEMU soft-float penalty");
        assert!(c.atomic_contend > c.atomic, "contention dominates the CAS itself");
        assert!(
            c.tb_dispatch > c.tb_chain,
            "the dispatcher map lookup must cost more than a patched chain"
        );
    }
}
