//! Liveness analysis and the deterministic block-scoped register
//! allocator behind the TCG→MiniArm backend.
//!
//! The allocator manages one unified *value* space per block: TCG temps
//! (`0..n_temps`) and — in DBT mode — the guest env registers
//! (`n_temps..n_temps + env::COUNT`). A liveness prepass records, for
//! every value, the sorted list of read positions (op index, with
//! `ops.len()` standing for the block exit) and the last position that
//! references the value at all. During lowering the allocator keeps
//! values in the host register pool and:
//!
//! * serves `GetReg` by *aliasing* the destination temp to the pinned
//!   env value — no code at all; the env slot is `LDR`-ed once on the
//!   first actual read and the value stays resident across the whole TB
//!   (and across `TbBoundary` seams inside superblocks, where the
//!   residency compounds). Aliases are broken — materialized into their
//!   own register — only when the env register is overwritten while the
//!   alias is still live, which real frontend IR almost never does;
//! * turns `SetReg` into a *dirty* bit: when the source temp dies at
//!   the write (the common compute-into-fresh-temp pattern) its
//!   register is transferred to the env value outright, otherwise one
//!   register move remains. The env `STR` is deferred to the next flush
//!   point (block exits, `CallHelper`, `Cas`/exclusive sequences,
//!   `SideExit` deopt paths), so the interpreter and fault-fallback
//!   paths always observe a coherent env while straight-line code pays
//!   no store traffic. The *final* write to an env register in a block
//!   stores the source directly instead — deferring it would only
//!   prepend a register copy to the same `STR`;
//! * treats `MovI` as a zero-cost constant definition: the `MOV`
//!   immediate is emitted at the first read, equal constants in one
//!   block share a single host register (flag materialization makes
//!   duplicate 0/1 immediates ubiquitous), and constants are
//!   rematerialized under pressure rather than spilled;
//! * spills under pressure with a true Belady (furthest *next use*)
//!   policy over the precomputed read positions, preferring store-free
//!   victims among equals and breaking remaining ties on the lowest
//!   value id — every decision is over dense arrays in a fixed order,
//!   so the same IR always lowers to bit-identical host code.
//!
//! Temps spill to `SPILL_BASE + 8·temp`; env values write back to their
//! home slot `ENV_BASE + 8·reg`. Both regions are host-private: the
//! encoding verifier (Pass 3) filters them out of the ordering-point
//! stream and separately checks that every deferred env write-back lands
//! before the exit anchor that could observe it.

use crate::backend::{BackendError, HostAsm, ENV_BASE, SPILL_BASE};
use crate::insn::{HostInsn, MemOrder, Xreg};
use risotto_tcg::{env, TbExit, TcgBlock, TcgOp, Temp};

/// Per-block register-allocation statistics, summed by the engine into
/// the `regalloc.*` registry metrics (docs/METRICS.md).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Env-area `LDR`s emitted (first-use fills and post-eviction
    /// refills). Naive per-op codegen emits one per `GetReg`.
    pub env_loads: u64,
    /// Env-area `STR`s emitted (deferred write-backs at flush points
    /// plus dirty evictions). Naive codegen emits one per `SetReg`.
    pub env_stores: u64,
    /// `GetReg` ops served from an already-pinned host register — each
    /// one is an env `LDR` the allocator eliminated.
    pub env_loads_eliminated: u64,
    /// `SetReg` ops whose write-back was coalesced into a deferred
    /// flush — each one is an env `STR` the allocator eliminated.
    pub env_stores_eliminated: u64,
    /// Temp values stored to the spill area under register pressure.
    pub spills: u64,
    /// Temp values reloaded from the spill area.
    pub reloads: u64,
    /// Distinct guest env registers pinned in host registers for at
    /// least part of the block.
    pub pinned_regs: u64,
}

impl std::ops::AddAssign for AllocStats {
    fn add_assign(&mut self, rhs: AllocStats) {
        self.env_loads += rhs.env_loads;
        self.env_stores += rhs.env_stores;
        self.env_loads_eliminated += rhs.env_loads_eliminated;
        self.env_stores_eliminated += rhs.env_stores_eliminated;
        self.spills += rhs.spills;
        self.reloads += rhs.reloads;
        self.pinned_regs += rhs.pinned_regs;
    }
}

/// The read positions and live ranges of every value in a block.
#[derive(Debug)]
struct Liveness {
    /// Number of temp values (`>= block.n_temps`, robust against blocks
    /// whose `n_temps` under-reports — the backend must not rely on the
    /// IR lint having run).
    n_temps: usize,
    /// value id → sorted op positions where the value is *read*
    /// (`ops.len()` is the block exit).
    reads: Vec<Vec<usize>>,
    /// value id → last position referencing the value (read or write).
    last_ref: Vec<usize>,
}

impl Liveness {
    fn of(block: &TcgBlock, manage_env: bool) -> Liveness {
        let mut max_temp = block.n_temps as usize;
        let mut note = |t: Temp| max_temp = max_temp.max(t.0 as usize + 1);
        for op in &block.ops {
            for u in op.uses() {
                note(u);
            }
            if let Some(d) = op.def() {
                note(d);
            }
        }
        match &block.exit {
            TbExit::JumpReg(t) => note(*t),
            TbExit::CondJump { flag, .. } => note(*flag),
            _ => {}
        }
        let n_values = max_temp + if manage_env { env::COUNT } else { 0 };
        let mut l = Liveness {
            n_temps: max_temp,
            reads: vec![Vec::new(); n_values],
            last_ref: vec![0; n_values],
        };
        // `alias` mirrors the allocator's GetReg aliasing: while a temp
        // aliases an env value, its reads are the env value's reads (the
        // deferred pin fill happens at the first such read). The chain
        // breaks when the temp is redefined or the env register is
        // overwritten — exactly as it will during lowering, so the
        // next-use information the Belady policy sees is exact.
        let mut alias: Vec<Option<usize>> = vec![None; max_temp];
        for (i, op) in block.ops.iter().enumerate() {
            for u in op.uses() {
                let t = u.0 as usize;
                l.reads[t].push(i);
                l.last_ref[t] = i;
                if let Some(v) = alias[t] {
                    l.reads[v].push(i);
                    l.last_ref[v] = i;
                }
            }
            if manage_env {
                match op {
                    TcgOp::GetReg { dst, reg } => {
                        alias[dst.0 as usize] = Some(max_temp + *reg as usize);
                        l.last_ref[dst.0 as usize] = i;
                        continue;
                    }
                    TcgOp::SetReg { reg, src } => {
                        let v = max_temp + *reg as usize;
                        // A self-copy (`src` aliases this very register)
                        // leaves the value unchanged: aliases survive.
                        if alias[src.0 as usize] != Some(v) {
                            for a in alias.iter_mut().filter(|a| **a == Some(v)) {
                                *a = None;
                            }
                        }
                        l.last_ref[v] = i;
                    }
                    _ => {}
                }
            }
            if let Some(d) = op.def() {
                let t = d.0 as usize;
                l.last_ref[t] = i;
                alias[t] = None;
            }
        }
        let exit_pos = block.ops.len();
        match &block.exit {
            TbExit::JumpReg(t) | TbExit::CondJump { flag: t, .. } => {
                let t = t.0 as usize;
                l.reads[t].push(exit_pos);
                l.last_ref[t] = exit_pos;
                if let Some(v) = alias[t] {
                    l.reads[v].push(exit_pos);
                    l.last_ref[v] = exit_pos;
                }
            }
            _ => {}
        }
        l
    }
}

/// The deterministic block-scoped allocator (see the module docs).
#[derive(Debug)]
pub(crate) struct Allocator {
    live: Liveness,
    pool: Vec<Xreg>,
    /// Whether env registers participate (false in native/direct mode).
    manage_env: bool,
    /// value id → currently assigned host register.
    loc: Vec<Option<Xreg>>,
    /// host register number → value id held.
    holder: [Option<usize>; 32],
    /// value id → register copy is newer than the value's memory home.
    dirty: Vec<bool>,
    /// temp id → the temp has been defined (in a register or its slot).
    defined: Vec<bool>,
    /// temp id → the spill slot holds the current value.
    in_slot: Vec<bool>,
    /// temp id → env value the temp currently aliases (set by `GetReg`,
    /// broken by redefinition of either side).
    alias: Vec<Option<usize>>,
    /// value id → the value is a known constant (`MovI`, possibly
    /// propagated through `Mov`). Constant temps are rematerialized
    /// with a 1-cycle `MovImm` instead of being spilled/reloaded, and
    /// equal constants share one host register.
    const_val: Vec<Option<u64>>,
    /// host register number → constant the register is known to hold
    /// right now. Maintained at every instruction that writes a pool
    /// register; rebinding alone never changes register contents, so
    /// the knowledge survives ownership transfers and evictions.
    reg_const: [Option<u64>; 32],
    /// value id → monotone cursor into `live.reads` (next-use scan).
    cursor: Vec<usize>,
    /// env index → was ever pinned in a host register.
    pinned: Vec<bool>,
    stats: AllocStats,
}

impl Allocator {
    pub(crate) fn new(block: &TcgBlock, pool: Vec<Xreg>, manage_env: bool) -> Allocator {
        let live = Liveness::of(block, manage_env);
        let n_values = live.reads.len();
        let n_temps = live.n_temps;
        Allocator {
            live,
            pool,
            manage_env,
            loc: vec![None; n_values],
            holder: [None; 32],
            dirty: vec![false; n_values],
            defined: vec![false; n_temps],
            in_slot: vec![false; n_temps],
            alias: vec![None; n_temps],
            const_val: vec![None; n_values],
            reg_const: [None; 32],
            cursor: vec![0; n_values],
            pinned: vec![false; env::COUNT],
            stats: AllocStats::default(),
        }
    }

    fn is_env(&self, v: usize) -> bool {
        v >= self.live.n_temps
    }

    /// First read position of `v` at or after `idx` (`usize::MAX` when
    /// the value is never read again).
    fn next_use(&mut self, v: usize, idx: usize) -> usize {
        let c = &mut self.cursor[v];
        let reads = &self.live.reads[v];
        while *c < reads.len() && reads[*c] < idx {
            *c += 1;
        }
        reads.get(*c).copied().unwrap_or(usize::MAX)
    }

    fn bind(&mut self, r: Xreg, v: usize) {
        self.loc[v] = Some(r);
        self.holder[r.0 as usize] = Some(v);
    }

    /// Frees registers whose value is dead (past its last reference).
    /// Dirty env values survive — their deferred write-back is still
    /// owed at the next flush point.
    pub(crate) fn free_dead(&mut self, idx: usize) {
        for i in 0..self.pool.len() {
            let r = self.pool[i];
            if let Some(v) = self.holder[r.0 as usize] {
                if self.live.last_ref[v] < idx && !(self.is_env(v) && self.dirty[v]) {
                    self.loc[v] = None;
                    self.dirty[v] = false;
                    self.holder[r.0 as usize] = None;
                }
            }
        }
    }

    /// Evicts `v` from `r`, storing it to its memory home if that home
    /// is stale (env: dirty write-back; temp: spill).
    fn evict(&mut self, asm: &mut HostAsm, r: Xreg, v: usize) {
        if self.is_env(v) {
            if self.dirty[v] {
                let reg = (v - self.live.n_temps) as i32;
                asm.push(HostInsn::Str {
                    src: r,
                    base: ENV_BASE,
                    off: reg * 8,
                    order: MemOrder::Plain,
                });
                self.stats.env_stores += 1;
                self.dirty[v] = false;
            }
        } else if !self.in_slot[v] && self.const_val[v].is_none() {
            // Known constants are rematerialized by `MovImm` on the
            // next read — cheaper than a spill/reload round trip.
            asm.push(HostInsn::Str {
                src: r,
                base: SPILL_BASE,
                off: v as i32 * 8,
                order: MemOrder::Plain,
            });
            self.stats.spills += 1;
            self.in_slot[v] = true;
            self.dirty[v] = false;
        }
        self.loc[v] = None;
        self.holder[r.0 as usize] = None;
    }

    /// Claims a register: the first free pool register in pool order,
    /// else the Belady victim — furthest next use, store-free preferred
    /// among equals, lowest value id as the final (deterministic)
    /// tie-break.
    fn take_reg(
        &mut self,
        asm: &mut HostAsm,
        idx: usize,
        at_op: usize,
        forbid: &[Xreg],
    ) -> Result<Xreg, BackendError> {
        for i in 0..self.pool.len() {
            let r = self.pool[i];
            if self.holder[r.0 as usize].is_none() && !forbid.contains(&r) {
                return Ok(r);
            }
        }
        let mut best: Option<(Xreg, usize, usize, bool)> = None;
        for i in 0..self.pool.len() {
            let r = self.pool[i];
            if forbid.contains(&r) {
                continue;
            }
            let Some(v) = self.holder[r.0 as usize] else { continue };
            let nu = self.next_use(v, idx);
            let store_free = if self.is_env(v) {
                !self.dirty[v]
            } else {
                self.in_slot[v] || self.const_val[v].is_some()
            };
            let better = match best {
                None => true,
                Some((_, bv, bnu, bfree)) => {
                    nu > bnu
                        || (nu == bnu
                            && ((store_free && !bfree) || (store_free == bfree && v < bv)))
                }
            };
            if better {
                best = Some((r, v, nu, store_free));
            }
        }
        let (r, v, _, _) = best.ok_or(BackendError::RegisterPressure { at_op })?;
        self.evict(asm, r, v);
        Ok(r)
    }

    /// Register holding temp `t`: the aliased env value's register for
    /// `GetReg` results, a spill-slot reload otherwise. A temp that was
    /// never defined is a typed error — the backend must not silently
    /// reload garbage even when the IR lint did not run.
    pub(crate) fn read_temp(
        &mut self,
        asm: &mut HostAsm,
        idx: usize,
        at_op: usize,
        t: Temp,
        forbid: &[Xreg],
    ) -> Result<Xreg, BackendError> {
        let v = t.0 as usize;
        if let Some(ev) = self.alias[v] {
            // Aliased temps live in the env value's register; a missing
            // residence means the env value was evicted (its slot is
            // current — dirty values are never unbound) and refills here.
            let reg = (ev - self.live.n_temps) as u8;
            return self.read_env(asm, idx, at_op, reg, forbid);
        }
        if let Some(c) = self.const_val[v] {
            // Constants share registers: any pool register already known
            // to hold these bits serves the read (ownership unchanged —
            // register contents only change at writes, and the caller's
            // forbid list protects the register for the whole op).
            for i in 0..self.pool.len() {
                let r = self.pool[i];
                if self.reg_const[r.0 as usize] == Some(c) && !forbid.contains(&r) {
                    return Ok(r);
                }
            }
            let r = self.take_reg(asm, idx, at_op, forbid)?;
            asm.push(HostInsn::MovImm { dst: r, imm: c });
            self.reg_const[r.0 as usize] = Some(c);
            self.bind(r, v);
            return Ok(r);
        }
        if let Some(r) = self.loc[v] {
            return Ok(r);
        }
        if !self.defined[v] {
            return Err(BackendError::UndefinedTemp { temp: t.0, at_op });
        }
        let r = self.take_reg(asm, idx, at_op, forbid)?;
        asm.push(HostInsn::Ldr {
            dst: r,
            base: SPILL_BASE,
            off: v as i32 * 8,
            order: MemOrder::Plain,
        });
        self.stats.reloads += 1;
        self.dirty[v] = false;
        self.reg_const[r.0 as usize] = None;
        self.bind(r, v);
        Ok(r)
    }

    /// Register for (re)defining temp `t` — no reload, breaks any env
    /// alias (the redefinition overwrites the whole value).
    pub(crate) fn def_temp(
        &mut self,
        asm: &mut HostAsm,
        idx: usize,
        at_op: usize,
        t: Temp,
        forbid: &[Xreg],
    ) -> Result<Xreg, BackendError> {
        let v = t.0 as usize;
        self.alias[v] = None;
        self.const_val[v] = None;
        let r = match self.loc[v] {
            Some(r) => r,
            None => {
                let r = self.take_reg(asm, idx, at_op, forbid)?;
                self.bind(r, v);
                r
            }
        };
        self.defined[v] = true;
        self.dirty[v] = true;
        self.in_slot[v] = false;
        // The caller writes `r` next; whatever constant it held is gone.
        self.reg_const[r.0 as usize] = None;
        Ok(r)
    }

    /// Lowers `MovI { dst, val }`: records the constant and emits
    /// nothing. The value is materialized (`MovImm`) at its first read,
    /// shares a register with any other value holding the same bits,
    /// and is rematerialized rather than spilled under pressure.
    pub(crate) fn def_const(&mut self, dst: Temp, val: u64) {
        let v = dst.0 as usize;
        // MovI (re)defines dst: drop any register or alias it held (the
        // old register still holds its old bits — no write happened).
        if let Some(r) = self.loc[v] {
            self.holder[r.0 as usize] = None;
            self.loc[v] = None;
        }
        self.alias[v] = None;
        self.const_val[v] = Some(val);
        self.defined[v] = true;
        self.dirty[v] = false;
        self.in_slot[v] = false;
    }

    /// The constant a temp is currently known to hold, if any.
    pub(crate) fn const_of(&self, t: Temp) -> Option<u64> {
        self.const_val[t.0 as usize]
    }

    /// Register holding guest env register `reg`, `LDR`-ing its env
    /// slot on first use (the pin fill).
    pub(crate) fn read_env(
        &mut self,
        asm: &mut HostAsm,
        idx: usize,
        at_op: usize,
        reg: u8,
        forbid: &[Xreg],
    ) -> Result<Xreg, BackendError> {
        debug_assert!(self.manage_env);
        let v = self.live.n_temps + reg as usize;
        if let Some(r) = self.loc[v] {
            return Ok(r);
        }
        let r = self.take_reg(asm, idx, at_op, forbid)?;
        asm.push(HostInsn::Ldr {
            dst: r,
            base: ENV_BASE,
            off: reg as i32 * 8,
            order: MemOrder::Plain,
        });
        self.stats.env_loads += 1;
        self.pinned[reg as usize] = true;
        self.reg_const[r.0 as usize] = None;
        self.bind(r, v);
        Ok(r)
    }

    /// Lowers `GetReg { dst, reg }`: aliases `dst` to the env value.
    /// Emits nothing — the pin fill is deferred to the first read.
    pub(crate) fn alias_env(&mut self, dst: Temp, reg: u8) {
        debug_assert!(self.manage_env);
        let t = dst.0 as usize;
        // GetReg (re)defines dst: drop any register it held.
        if let Some(r) = self.loc[t] {
            self.holder[r.0 as usize] = None;
            self.loc[t] = None;
        }
        self.alias[t] = Some(self.live.n_temps + reg as usize);
        self.const_val[t] = None;
        self.defined[t] = true;
        self.dirty[t] = false;
        self.in_slot[t] = false;
    }

    /// Lowers `SetReg { reg, src }` given `rs = read_temp(src)`: marks
    /// the env value dirty for the next flush, transferring `rs` to it
    /// outright when `src` dies here, copying otherwise. Live aliases of
    /// the overwritten value are materialized into their own registers
    /// first.
    pub(crate) fn write_env(
        &mut self,
        asm: &mut HostAsm,
        idx: usize,
        at_op: usize,
        reg: u8,
        src: Temp,
        rs: Xreg,
    ) -> Result<(), BackendError> {
        debug_assert!(self.manage_env);
        let v = self.live.n_temps + reg as usize;
        let src_v = src.0 as usize;
        self.pinned[reg as usize] = true;
        // Self-copy: `src` aliases this very register, so the value is
        // unchanged and every alias stays valid. `read_temp` has just
        // made the env value resident (`rs` is its register).
        if self.alias[src_v] == Some(v) {
            debug_assert_eq!(self.loc[v], Some(rs));
            self.dirty[v] = true;
            return Ok(());
        }
        // The old value dies: materialize live aliases into their own
        // registers (ascending temp order — deterministic) and break
        // the dead ones. The first live alias inherits the dying
        // value's register outright (zero code); the rest copy from it.
        let mut home: Option<Xreg> = None;
        for t in 0..self.alias.len() {
            if self.alias[t] != Some(v) {
                continue;
            }
            self.alias[t] = None;
            if self.live.last_ref[t] <= idx {
                continue;
            }
            if home.is_none() {
                if let Some(rv) = self.loc[v] {
                    // Rebind: the env value is about to be overwritten,
                    // so its register simply becomes the alias's home.
                    self.loc[v] = None;
                    self.dirty[v] = false;
                    self.bind(rv, t);
                    self.in_slot[t] = false;
                    home = Some(rv);
                    continue;
                }
            }
            let forbid = [Some(rs), home];
            let forbid: Vec<Xreg> = forbid.into_iter().flatten().collect();
            let rt = self.take_reg(asm, idx, at_op, &forbid)?;
            match home {
                Some(rh) => {
                    asm.push(HostInsn::MovReg { dst: rt, src: rh });
                    self.reg_const[rt.0 as usize] = self.reg_const[rh.0 as usize];
                }
                None => {
                    // Non-resident env values always have a current
                    // slot (dirty ones are never unbound).
                    asm.push(HostInsn::Ldr {
                        dst: rt,
                        base: ENV_BASE,
                        off: reg as i32 * 8,
                        order: MemOrder::Plain,
                    });
                    self.stats.env_loads += 1;
                    self.reg_const[rt.0 as usize] = None;
                    home = Some(rt);
                }
            }
            self.bind(rt, t);
            self.in_slot[t] = false;
        }
        // Final write: nothing later reads or rewrites this register,
        // so deferring would only add a register copy ahead of the same
        // `STR`. Store the source directly — exactly what naive per-op
        // codegen does — and leave nothing for the flush to do.
        if self.live.last_ref[v] <= idx {
            if let Some(r_old) = self.loc[v] {
                self.holder[r_old.0 as usize] = None;
                self.loc[v] = None;
            }
            asm.push(HostInsn::Str {
                src: rs,
                base: ENV_BASE,
                off: reg as i32 * 8,
                order: MemOrder::Plain,
            });
            self.stats.env_stores += 1;
            self.dirty[v] = false;
            return Ok(());
        }
        // Transfer: `src` owns `rs` and dies at this op — the register
        // simply becomes the env value's home.
        if self.alias[src_v].is_none()
            && self.holder[rs.0 as usize] == Some(src_v)
            && self.live.last_ref[src_v] <= idx
        {
            if let Some(r_old) = self.loc[v] {
                self.holder[r_old.0 as usize] = None;
            }
            self.loc[src_v] = None;
            self.bind(rs, v);
            self.dirty[v] = true;
            return Ok(());
        }
        // Copy: ensure the env value has a register distinct from `rs`.
        let re = match self.loc[v] {
            Some(r) => r,
            None => {
                let r = self.take_reg(asm, idx, at_op, &[rs])?;
                self.bind(r, v);
                r
            }
        };
        if re != rs {
            asm.push(HostInsn::MovReg { dst: re, src: rs });
            self.reg_const[re.0 as usize] = self.reg_const[rs.0 as usize];
        }
        self.dirty[v] = true;
        Ok(())
    }

    /// Writes every dirty env register back to its env slot, in
    /// ascending env order (deterministic emission).
    ///
    /// `clear_dirty: true` is the in-line form (helper calls, atomic
    /// sequences, unconditional exits): the write-back happened on the
    /// continuing path, so the registers become clean. `clear_dirty:
    /// false` is the *off-path* form used on `SideExit` leave paths —
    /// the stores execute only when the exit is taken, so on the
    /// fall-through path the registers are still dirty and the next
    /// flush point owes them again.
    pub(crate) fn flush_env(&mut self, asm: &mut HostAsm, clear_dirty: bool) {
        if !self.manage_env {
            return;
        }
        for reg in 0..env::COUNT {
            let v = self.live.n_temps + reg;
            if self.dirty[v] {
                if let Some(r) = self.loc[v] {
                    asm.push(HostInsn::Str {
                        src: r,
                        base: ENV_BASE,
                        off: reg as i32 * 8,
                        order: MemOrder::Plain,
                    });
                    self.stats.env_stores += 1;
                    if clear_dirty {
                        self.dirty[v] = false;
                    }
                }
            }
        }
    }

    /// Final statistics; `pinned_regs` is the count of distinct env
    /// registers that were ever resident.
    pub(crate) fn into_stats(self) -> AllocStats {
        let mut s = self.stats;
        s.pinned_regs = self.pinned.iter().filter(|&&p| p).count() as u64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_tcg::BinOp;

    fn block_with(ops: Vec<TcgOp>, exit: TbExit, n_temps: u32) -> TcgBlock {
        TcgBlock { guest_pc: 0x1000, guest_len: 4, ops, exit, n_temps }
    }

    #[test]
    fn liveness_records_reads_and_exit_uses() {
        let t0 = Temp(0);
        let t1 = Temp(1);
        let b = block_with(
            vec![
                TcgOp::MovI { dst: t0, val: 1 },
                TcgOp::GetReg { dst: t1, reg: 3 },
                TcgOp::Bin { op: BinOp::Add, dst: t0, a: t0, b: t1 },
            ],
            TbExit::JumpReg(t0),
            2,
        );
        let l = Liveness::of(&b, true);
        assert_eq!(l.reads[0], vec![2, 3], "t0 read by the Bin op and the exit");
        assert_eq!(l.reads[1], vec![2]);
        // The GetReg defers the env read to t1's actual use (the Bin op
        // at position 2) via the alias chain.
        assert_eq!(l.reads[l.n_temps + 3], vec![2], "env 3 is read where its alias t1 is used");
        assert_eq!(l.last_ref[l.n_temps + 3], 2);
        assert_eq!(l.last_ref[0], 3);
    }

    #[test]
    fn liveness_is_robust_to_underreported_n_temps() {
        let b = block_with(vec![TcgOp::MovI { dst: Temp(7), val: 0 }], TbExit::Halt, 1);
        let l = Liveness::of(&b, true);
        assert!(l.n_temps >= 8, "temp ids beyond n_temps must still be representable");
    }
}
