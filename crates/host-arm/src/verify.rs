//! Pass 3 of the translation validator: the host-encoding checker.
//!
//! After the backend lowers a verified TCG block and the engine encodes
//! it, [`check_encoding`] decodes the Arm bytes back (via
//! [`HostInsn::decode`]) and proves three things:
//!
//! 1. **byte fidelity** — the bytes are exactly the canonical encoding
//!    of the lowered instructions, and they decode back to the same
//!    instruction sequence (any corrupted byte either changes a decoded
//!    field, changes the framing, or fails to decode);
//! 2. **ordering placement** — the interleaving of `DMB` barriers,
//!    `casal`/`ldaddal`/exclusive-pair atomics, helper calls and guest
//!    loads/stores in the decoded stream matches what the verified IR
//!    demands under the given [`BackendConfig`] (env and spill traffic
//!    through [`ENV_BASE`]/[`SPILL_BASE`] is host-private and ignored);
//! 3. **exit integrity** — every direct-jump exit carries a zeroed
//!    chain word at [`JUMP_CHAIN_OFFSET`] and the set of exit targets
//!    (side exits plus block exits) matches the IR.
//!
//! Violations are reported as [`VerifyError`]s with
//! [`VerifyPass::Encoding`], feeding the engine's quarantine path.

use crate::backend::{
    arm_dmb_of, fp_op_of, helper_index, BackendConfig, RmwStyle, ENV_BASE, SPILL_BASE,
};
use crate::insn::{Dmb, HostInsn, MemOrder, TbExitKind};
use risotto_tcg::{TbExit, TcgBlock, TcgOp, VerifyError, VerifyPass};

/// An ordering-relevant point in a host instruction stream.
///
/// Public so each backend's [`EncodingDialect`] can state its expected
/// ordering stream in these terms; the shared [`check_encoding_with`]
/// machinery matches them against the decoded bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Point {
    /// A `DMB` barrier.
    Dmb(Dmb),
    /// A guest memory access.
    Access {
        /// Load (`true`) or store (`false`).
        load: bool,
        /// Byte-sized `LdrB`/`StrB` rather than word-sized.
        byte: bool,
        /// Ordering annotation ([`MemOrder::Plain`] for byte accesses).
        order: MemOrder,
    },
    /// `CAS`/`CASAL`.
    Cas {
        /// Acquire-release (`casal`, ≙ `LOCK CMPXCHG` on TSO).
        acq_rel: bool,
    },
    /// `LDADDAL`.
    Ldadd,
    /// `LDXR`.
    ExclLoad {
        /// Load-acquire variant.
        acquire: bool,
    },
    /// `STXR`.
    ExclStore {
        /// Store-release variant.
        release: bool,
    },
    /// A runtime helper call (QEMU-style out-of-line memory op).
    Helper(u8),
    /// A TB exit (`ExitTb` of any kind — block exits and `SideExit`
    /// deopt points). Exits anchor the allocation-map check: every env
    /// register the IR wrote in the segment leading up to an exit must
    /// have its deferred write-back land before that exit.
    Exit,
}

impl Point {
    /// Human-readable name used in [`VerifyError`] obligations.
    pub fn name(self) -> String {
        match self {
            Point::Dmb(d) => format!("dmb {d:?}"),
            Point::Access { load: true, byte, .. } => {
                format!("{}load", if byte { "byte " } else { "" })
            }
            Point::Access { load: false, byte, .. } => {
                format!("{}store", if byte { "byte " } else { "" })
            }
            Point::Cas { acq_rel: true } => "casal".into(),
            Point::Cas { acq_rel: false } => "cas".into(),
            Point::Ldadd => "ldaddal".into(),
            Point::ExclLoad { .. } => "ldxr".into(),
            Point::ExclStore { .. } => "stxr".into(),
            Point::Helper(h) => format!("hcall {h}"),
            Point::Exit => "exit".into(),
        }
    }
}

/// Builds an Encoding-pass [`VerifyError`] anchored at `block`.
///
/// Public so backend [`EncodingDialect`]s report their own violations
/// (dialect-restriction failures, backend-specific obligations) in the
/// same shape the shared checks use.
pub fn encoding_err(block: &TcgBlock, op_index: Option<usize>, obligation: String) -> VerifyError {
    VerifyError { pass: VerifyPass::Encoding, guest_pc: block.guest_pc, op_index, obligation }
}

fn err(block: &TcgBlock, op_index: Option<usize>, obligation: String) -> VerifyError {
    encoding_err(block, op_index, obligation)
}

/// A backend's contribution to Pass 3: its expected-ordering-point
/// table plus any dialect restrictions on the decoded stream.
///
/// The expected points MUST be derived from the IR independently of the
/// lowering (re-consulting the shared fence tables, not the emitted
/// instructions), so a bug in the lowering cannot vouch for itself.
/// Byte fidelity, decode-back, point interleaving, env write-back
/// coverage and exit integrity stay shared in [`check_encoding_with`].
pub trait EncodingDialect {
    /// The ordering points this backend must have emitted for one IR op.
    fn expected_points(&self, op: &TcgOp, cfg: BackendConfig, out: &mut Vec<Point>);

    /// Extra dialect restriction over the decoded stream — e.g. the TSO
    /// backend rejects any instruction MiniTSO has no equivalent for
    /// (exclusive pairs, load/store-only barriers, acquire/release
    /// accesses, a CAS without its `LOCK`-equivalent `acq_rel` flag).
    /// The default imposes nothing beyond the shared checks.
    fn check_dialect(&self, _block: &TcgBlock, _decoded: &[HostInsn]) -> Result<(), VerifyError> {
        Ok(())
    }
}

/// The Arm encoding dialect: expected points per the Fig. 7b `DMB`
/// table ([`arm_dmb_of`]) and the [`RmwStyle`]-selected RMW shapes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmEncodingDialect;

impl EncodingDialect for ArmEncodingDialect {
    fn expected_points(&self, op: &TcgOp, cfg: BackendConfig, out: &mut Vec<Point>) {
        expected_points(op, cfg, out);
    }
}

/// The ordering points the Arm backend must have emitted for one IR op.
fn expected_points(op: &TcgOp, cfg: BackendConfig, out: &mut Vec<Point>) {
    let plain = MemOrder::Plain;
    match op {
        TcgOp::Ld { .. } => out.push(Point::Access { load: true, byte: false, order: plain }),
        TcgOp::Ld8 { .. } => out.push(Point::Access { load: true, byte: true, order: plain }),
        TcgOp::St { .. } => out.push(Point::Access { load: false, byte: false, order: plain }),
        TcgOp::St8 { .. } => out.push(Point::Access { load: false, byte: true, order: plain }),
        TcgOp::Fence(k) => {
            if let Some(d) = arm_dmb_of(*k) {
                out.push(Point::Dmb(d));
            }
        }
        TcgOp::Cas { .. } => match cfg.rmw {
            RmwStyle::Casal => out.push(Point::Cas { acq_rel: true }),
            RmwStyle::Rmw2Fenced => out.extend([
                Point::Dmb(Dmb::Ff),
                Point::ExclLoad { acquire: false },
                Point::ExclStore { release: false },
                Point::Dmb(Dmb::Ff),
            ]),
        },
        TcgOp::AtomicAdd { .. } => match cfg.rmw {
            RmwStyle::Casal => out.push(Point::Ldadd),
            RmwStyle::Rmw2Fenced => out.extend([
                Point::Dmb(Dmb::Ff),
                Point::ExclLoad { acquire: false },
                Point::ExclStore { release: false },
                Point::Dmb(Dmb::Ff),
            ]),
        },
        // Hardware-FP float helpers lower to an in-line `Fp` insn (or
        // nothing without a result); everything else is an out-of-line
        // `Hcall`.
        TcgOp::CallHelper { helper, .. } if !(cfg.hardware_fp && fp_op_of(*helper).is_some()) => {
            out.push(Point::Helper(helper_index(*helper)));
        }
        TcgOp::SideExit { .. } => out.push(Point::Exit),
        _ => {}
    }
}

/// The exit anchors the block's terminator must have produced.
fn exit_points(exit: &TbExit, out: &mut Vec<Point>) {
    match exit {
        TbExit::CondJump { .. } => out.extend([Point::Exit, Point::Exit]),
        _ => out.push(Point::Exit),
    }
}

/// The ordering points actually present in a decoded host stream.
/// `None` for host-private instructions (ALU, env/spill traffic,
/// branches, moves).
fn actual_point(insn: &HostInsn) -> Option<Point> {
    match insn {
        HostInsn::Barrier(d) => Some(Point::Dmb(*d)),
        HostInsn::Ldr { base, order, .. } if *base != ENV_BASE && *base != SPILL_BASE => {
            Some(Point::Access { load: true, byte: false, order: *order })
        }
        HostInsn::Str { base, order, .. } if *base != ENV_BASE && *base != SPILL_BASE => {
            Some(Point::Access { load: false, byte: false, order: *order })
        }
        HostInsn::LdrB { base, .. } if *base != ENV_BASE && *base != SPILL_BASE => {
            Some(Point::Access { load: true, byte: true, order: MemOrder::Plain })
        }
        HostInsn::StrB { base, .. } if *base != ENV_BASE && *base != SPILL_BASE => {
            Some(Point::Access { load: false, byte: true, order: MemOrder::Plain })
        }
        HostInsn::Cas { acq_rel, .. } => Some(Point::Cas { acq_rel: *acq_rel }),
        HostInsn::LdaddAl { .. } => Some(Point::Ldadd),
        HostInsn::Ldxr { acquire, .. } => Some(Point::ExclLoad { acquire: *acquire }),
        HostInsn::Stxr { release, .. } => Some(Point::ExclStore { release: *release }),
        HostInsn::Hcall { helper } => Some(Point::Helper(*helper)),
        HostInsn::ExitTb(_) => Some(Point::Exit),
        _ => None,
    }
}

/// Pass 3: verifies `bytes` against the lowered instructions `insns`
/// and the verified IR `block` they were lowered from, under the Arm
/// encoding dialect.
///
/// See the module docs for the three properties checked. `insns` must
/// be the direct output of `lower_block(block, cfg)`; `bytes` the
/// (possibly corrupted) encoding under test — freshly encoded at
/// translation time, read back from the code cache at install time.
pub fn check_encoding(
    block: &TcgBlock,
    insns: &[HostInsn],
    bytes: &[u8],
    cfg: BackendConfig,
) -> Result<(), VerifyError> {
    check_encoding_with(block, insns, bytes, cfg, &ArmEncodingDialect)
}

/// Pass 3 with an explicit backend [`EncodingDialect`].
///
/// Runs the shared checks (byte fidelity + decode-back, ordering-point
/// interleaving against `dialect.expected_points`, env write-back
/// coverage per exit segment, chain-word/exit-target integrity) and the
/// dialect's own `check_dialect` restriction. [`check_encoding`] is
/// this function with [`ArmEncodingDialect`]; `risotto-host-tso` calls
/// it with the TSO dialect.
pub fn check_encoding_with<D: EncodingDialect + ?Sized>(
    block: &TcgBlock,
    insns: &[HostInsn],
    bytes: &[u8],
    cfg: BackendConfig,
    dialect: &D,
) -> Result<(), VerifyError> {
    // 1. Byte fidelity: canonical re-encoding matches...
    let mut expect = Vec::with_capacity(bytes.len());
    for i in insns {
        i.encode(&mut expect);
    }
    if expect != bytes {
        let at = expect.iter().zip(bytes).position(|(a, b)| a != b);
        return Err(err(
            block,
            None,
            match at {
                Some(o) => format!(
                    "encoded bytes differ from canonical encoding at offset {o} (expected {:#04x}, found {:#04x})",
                    expect[o], bytes[o]
                ),
                None => format!(
                    "encoded length {} differs from canonical encoding length {}",
                    bytes.len(),
                    expect.len()
                ),
            },
        ));
    }
    // ...and the bytes decode back to the same instruction stream.
    let mut decoded: Vec<HostInsn> = Vec::with_capacity(insns.len());
    let mut off = 0usize;
    while off < bytes.len() {
        let (insn, len) = HostInsn::decode(&bytes[off..]).map_err(|e| {
            err(block, None, format!("decode-back failed at byte offset {off}: {e}"))
        })?;
        decoded.push(insn);
        off += len;
    }
    if decoded != insns {
        return Err(err(
            block,
            None,
            "decoded instruction stream differs from the lowered instructions".into(),
        ));
    }

    // 1b. Dialect restriction: the decoded stream must stay inside the
    // backend's instruction subset (a no-op for Arm, which owns the
    // whole container ISA).
    dialect.check_dialect(block, &decoded)?;

    // 2. Ordering placement: barrier/atomic/access/exit interleaving
    // matches the IR. Each expected point remembers the IR op it came
    // from (`None` for the block terminator) and each actual point its
    // host-instruction index, so the allocation-map check below can cut
    // the streams into per-exit segments.
    let mut expected: Vec<Point> = Vec::new();
    let mut expected_src: Vec<Option<usize>> = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        dialect.expected_points(op, cfg, &mut expected);
        expected_src.resize(expected.len(), Some(i));
    }
    exit_points(&block.exit, &mut expected);
    expected_src.resize(expected.len(), None);
    let actual: Vec<(Point, usize)> = decoded
        .iter()
        .enumerate()
        .filter_map(|(pos, insn)| actual_point(insn).map(|p| (p, pos)))
        .collect();
    if expected.len() != actual.len() || expected.iter().zip(&actual).any(|(e, (a, _))| e != a) {
        let at = expected
            .iter()
            .zip(&actual)
            .position(|(e, (a, _))| e != a)
            .unwrap_or_else(|| expected.len().min(actual.len()));
        let have = actual.get(at).map(|(p, _)| p.name()).unwrap_or_else(|| "nothing".into());
        let want = expected.get(at).map(|p| p.name()).unwrap_or_else(|| "nothing".into());
        return Err(err(
            block,
            None,
            format!(
                "host ordering point {at} mismatches the IR: expected {want}, encoded stream has {have}"
            ),
        ));
    }

    // 2b. Allocation map: deferred env write-backs cover every exit.
    // The backend pins guest env registers in host registers and defers
    // the env `STR` to flush points, so for each exit anchor the
    // verifier proves that every env register the IR wrote (`SetReg`)
    // since the previous anchor has a `STR` to its home slot somewhere
    // in the corresponding host segment (flush-point stores and
    // mid-segment dirty evictions both count). Skipped in direct-regs
    // (native-oracle) mode, where there is no env to write back.
    if !cfg.direct_regs {
        let mut prev_ir = 0usize;
        let mut prev_host = 0usize;
        for (k, pt) in expected.iter().enumerate() {
            if *pt != Point::Exit {
                continue;
            }
            let ir_end = expected_src[k].unwrap_or(block.ops.len());
            let host_end = actual[k].1;
            for (i, op) in block.ops[prev_ir..ir_end].iter().enumerate() {
                let TcgOp::SetReg { reg, .. } = op else { continue };
                let covered = decoded[prev_host..host_end].iter().any(|insn| {
                    matches!(insn, HostInsn::Str { base, off, .. }
                        if *base == ENV_BASE && *off == *reg as i32 * 8)
                });
                if !covered {
                    return Err(err(
                        block,
                        Some(prev_ir + i),
                        format!(
                            "env register {reg} is written by the IR but has no write-back to its env slot before the exit at host instruction {host_end}"
                        ),
                    ));
                }
            }
            prev_ir = ir_end;
            prev_host = host_end;
        }
    }

    // 3. Exit integrity: chain words are zeroed, exit targets match.
    let mut expected_jumps: Vec<u64> = block
        .ops
        .iter()
        .filter_map(|op| match op {
            TcgOp::SideExit { target, .. } => Some(*target),
            _ => None,
        })
        .collect();
    match &block.exit {
        TbExit::Jump(pc) => expected_jumps.push(*pc),
        TbExit::CondJump { taken, fallthrough, .. } => {
            expected_jumps.push(*fallthrough);
            expected_jumps.push(*taken);
        }
        _ => {}
    }
    let mut actual_jumps: Vec<u64> = Vec::new();
    for insn in &decoded {
        if let HostInsn::ExitTb(TbExitKind::Jump { guest_pc, chain }) = insn {
            if *chain != 0 {
                return Err(err(
                    block,
                    None,
                    format!(
                        "direct-jump exit to {guest_pc:#x} installed with a non-zero chain word"
                    ),
                ));
            }
            actual_jumps.push(*guest_pc);
        }
    }
    expected_jumps.sort_unstable();
    actual_jumps.sort_unstable();
    if expected_jumps != actual_jumps {
        return Err(err(
            block,
            None,
            format!(
                "direct-jump exit targets {actual_jumps:x?} do not match the IR's {expected_jumps:x?}"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::lower_block;
    use risotto_guest_x86::{Assembler, Gpr};
    use risotto_tcg::{optimize, FrontendConfig, OptPolicy};

    fn pipeline(cfg: FrontendConfig, be: BackendConfig) -> (TcgBlock, Vec<HostInsn>, Vec<u8>) {
        let mut a = Assembler::new(0x1000);
        a.load(Gpr::RAX, Gpr::RDI, 0);
        a.store(Gpr::RSI, 0, Gpr::RAX);
        a.hlt();
        let (bytes, _) = a.finish().unwrap();
        let fetch = move |addr: u64| {
            let mut w = [0u8; 16];
            let off = (addr - 0x1000) as usize;
            for (i, b) in w.iter_mut().enumerate() {
                *b = bytes.get(off + i).copied().unwrap_or(0);
            }
            w
        };
        let mut block = risotto_tcg::translate_block(0x1000, cfg, fetch).unwrap();
        optimize(&mut block, OptPolicy::Verified);
        let insns = lower_block(&block, be).unwrap();
        let mut enc = Vec::new();
        for i in &insns {
            i.encode(&mut enc);
        }
        (block, insns, enc)
    }

    #[test]
    fn clean_encoding_verifies() {
        for be in [BackendConfig::dbt(RmwStyle::Casal), BackendConfig::dbt(RmwStyle::Rmw2Fenced)] {
            let (block, insns, enc) = pipeline(FrontendConfig::risotto(), be);
            check_encoding(&block, &insns, &enc, be).unwrap();
        }
    }

    #[test]
    fn corrupted_byte_is_flagged() {
        let be = BackendConfig::dbt(RmwStyle::Casal);
        let (block, insns, enc) = pipeline(FrontendConfig::risotto(), be);
        for off in 0..enc.len() {
            let mut bad = enc.clone();
            bad[off] ^= 0xff;
            assert!(
                check_encoding(&block, &insns, &bad, be).is_err(),
                "corruption at byte {off} not flagged"
            );
        }
    }

    #[test]
    fn dropped_barrier_is_flagged() {
        let be = BackendConfig::dbt(RmwStyle::Casal);
        let (block, mut insns, _) = pipeline(FrontendConfig::risotto(), be);
        let at = insns.iter().position(|i| matches!(i, HostInsn::Barrier(_))).unwrap();
        insns.remove(at);
        let mut enc = Vec::new();
        for i in &insns {
            i.encode(&mut enc);
        }
        let e = check_encoding(&block, &insns, &enc, be).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Encoding);
    }

    #[test]
    fn weakened_barrier_is_flagged() {
        let be = BackendConfig::dbt(RmwStyle::Casal);
        let (block, mut insns, _) = pipeline(FrontendConfig::risotto(), be);
        let at = insns.iter().position(|i| matches!(i, HostInsn::Barrier(Dmb::Ff))).unwrap();
        insns[at] = HostInsn::Barrier(Dmb::St);
        let mut enc = Vec::new();
        for i in &insns {
            i.encode(&mut enc);
        }
        assert!(check_encoding(&block, &insns, &enc, be).is_err());
    }

    #[test]
    fn dropped_env_writeback_is_flagged() {
        // A store into a guest register whose deferred env write-back is
        // stripped from the host stream must fail the allocation-map
        // check even though no ordering point changes.
        let be = BackendConfig::dbt(RmwStyle::Casal);
        let (block, mut insns, _) = pipeline(FrontendConfig::risotto(), be);
        assert!(
            block.ops.iter().any(|op| matches!(op, TcgOp::SetReg { .. })),
            "pipeline block must write a guest register"
        );
        let at = insns
            .iter()
            .position(|i| matches!(i, HostInsn::Str { base, .. } if *base == ENV_BASE))
            .expect("lowered stream must contain an env write-back");
        insns.remove(at);
        let mut enc = Vec::new();
        for i in &insns {
            i.encode(&mut enc);
        }
        let e = check_encoding(&block, &insns, &enc, be).unwrap_err();
        assert_eq!(e.pass, VerifyPass::Encoding);
        assert!(e.obligation.contains("write-back"), "unexpected obligation: {}", e.obligation);
    }

    #[test]
    fn misplaced_env_writeback_is_flagged() {
        // Moving the write-back past its exit anchor (here: after the
        // final ExitTb) leaves the ordering stream intact but breaks the
        // per-segment coverage.
        let be = BackendConfig::dbt(RmwStyle::Casal);
        let (block, mut insns, _) = pipeline(FrontendConfig::risotto(), be);
        let at = insns
            .iter()
            .position(|i| matches!(i, HostInsn::Str { base, .. } if *base == ENV_BASE))
            .expect("lowered stream must contain an env write-back");
        let wb = insns.remove(at);
        insns.push(wb);
        let mut enc = Vec::new();
        for i in &insns {
            i.encode(&mut enc);
        }
        assert!(check_encoding(&block, &insns, &enc, be).is_err());
    }

    #[test]
    fn nonzero_chain_word_is_flagged() {
        let be = BackendConfig::dbt(RmwStyle::Casal);
        let (block, mut insns, _) = pipeline(FrontendConfig::risotto(), be);
        let at = insns
            .iter()
            .position(|i| matches!(i, HostInsn::ExitTb(TbExitKind::Jump { .. })))
            .unwrap_or_else(|| {
                insns.push(HostInsn::ExitTb(TbExitKind::Jump { guest_pc: 0, chain: 0 }));
                insns.len() - 1
            });
        if let HostInsn::ExitTb(TbExitKind::Jump { chain, .. }) = &mut insns[at] {
            *chain = 0xdead;
        }
        let mut enc = Vec::new();
        for i in &insns {
            i.encode(&mut enc);
        }
        assert!(check_encoding(&block, &insns, &enc, be).is_err());
    }
}
