//! MiniArm — the weakly-ordered host ISA.
//!
//! MiniArm stands in for AArch64 (ARMv8.1 with LSE atomics, like the
//! paper's ThunderX2 testbed): plain and synchronizing loads/stores
//! (`LDR`/`STR`, `LDAR`/`STLR`, `LDAPR`), exclusive pairs
//! (`LDXR`/`STXR` with acquire/release variants), single-instruction
//! atomics (`CAS`/`CASAL`, `LDADDAL`), the three `DMB` barriers, ALU and
//! branch instructions, and hardware floating point.
//!
//! Three simulator-specific instructions model the DBT runtime boundary:
//! `Hcall` (a QEMU-style helper call: leave JIT code, run a runtime
//! helper, return), `NativeCall` (invoke a registered native host library
//! function — Risotto's dynamic linker target, §6.2) and `ExitTb` (leave
//! the code cache back to the execution loop).

use std::fmt;

/// A MiniArm general-purpose register (64-bit). `X31` reads as zero and
/// ignores writes (`XZR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xreg(pub u8);

impl Xreg {
    /// First argument / return value.
    pub const X0: Xreg = Xreg(0);
    /// Second argument.
    pub const X1: Xreg = Xreg(1);
    /// Third argument.
    pub const X2: Xreg = Xreg(2);
    /// Fourth argument.
    pub const X3: Xreg = Xreg(3);
    /// Link register.
    pub const LR: Xreg = Xreg(30);
    /// Zero register.
    pub const XZR: Xreg = Xreg(31);
    /// Number of addressable registers (including XZR).
    pub const COUNT: usize = 32;

    /// Array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Xreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 31 {
            write!(f, "xzr")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Bitwise and.
    And = 2,
    /// Bitwise or.
    Orr = 3,
    /// Bitwise exclusive-or.
    Eor = 4,
    /// Logical shift left.
    Lsl = 5,
    /// Logical shift right.
    Lsr = 6,
    /// Arithmetic shift right.
    Asr = 7,
    /// Multiplication (low 64 bits).
    Mul = 8,
    /// High 64 bits of the unsigned product (`umulh`).
    Umulh = 11,
    /// Unsigned division (÷0 = 0, as on real AArch64).
    Udiv = 9,
    /// Unsigned remainder (simulator convenience for `msub`; mod 0 = x).
    Urem = 10,
}

impl AOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AOp::Add => a.wrapping_add(b),
            AOp::Sub => a.wrapping_sub(b),
            AOp::And => a & b,
            AOp::Orr => a | b,
            AOp::Eor => a ^ b,
            AOp::Lsl => a.wrapping_shl((b & 63) as u32),
            AOp::Lsr => a.wrapping_shr((b & 63) as u32),
            AOp::Asr => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AOp::Mul => a.wrapping_mul(b),
            AOp::Umulh => ((a as u128 * b as u128) >> 64) as u64,
            AOp::Udiv => a.checked_div(b).unwrap_or(0),
            AOp::Urem => a.checked_rem(b).unwrap_or(a),
        }
    }

    fn from_u8(v: u8) -> Option<AOp> {
        use AOp::*;
        Some(match v {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Orr,
            4 => Eor,
            5 => Lsl,
            6 => Lsr,
            7 => Asr,
            8 => Mul,
            9 => Udiv,
            10 => Urem,
            11 => Umulh,
            _ => return None,
        })
    }
}

/// Branch conditions over NZCV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ACond {
    /// Equal (Z).
    Eq = 0,
    /// Not equal (!Z).
    Ne = 1,
    /// Unsigned lower (!C).
    Lo = 2,
    /// Unsigned higher-or-same (C).
    Hs = 3,
    /// Signed less-than (N≠V).
    Lt = 4,
    /// Signed greater-or-equal (N=V).
    Ge = 5,
    /// Signed less-or-equal (Z ∨ N≠V).
    Le = 6,
    /// Signed greater-than (!Z ∧ N=V).
    Gt = 7,
    /// Unsigned lower-or-same (!C ∨ Z).
    Ls = 8,
    /// Unsigned higher (C ∧ !Z).
    Hi = 9,
    /// Negative (N).
    Mi = 10,
    /// Non-negative (!N).
    Pl = 11,
}

impl ACond {
    /// Evaluates against NZCV.
    pub fn eval(self, f: Nzcv) -> bool {
        match self {
            ACond::Eq => f.z,
            ACond::Ne => !f.z,
            ACond::Lo => !f.c,
            ACond::Hs => f.c,
            ACond::Lt => f.n != f.v,
            ACond::Ge => f.n == f.v,
            ACond::Le => f.z || f.n != f.v,
            ACond::Gt => !f.z && f.n == f.v,
            ACond::Ls => !f.c || f.z,
            ACond::Hi => f.c && !f.z,
            ACond::Mi => f.n,
            ACond::Pl => !f.n,
        }
    }

    fn from_u8(v: u8) -> Option<ACond> {
        use ACond::*;
        Some(match v {
            0 => Eq,
            1 => Ne,
            2 => Lo,
            3 => Hs,
            4 => Lt,
            5 => Ge,
            6 => Le,
            7 => Gt,
            8 => Ls,
            9 => Hi,
            10 => Mi,
            11 => Pl,
            _ => return None,
        })
    }
}

/// NZCV condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Nzcv {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry (AArch64 convention: subtraction sets C on *no* borrow).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Nzcv {
    /// Flags of `a - b` (the `CMP` semantics; C set when no borrow).
    pub fn from_cmp(a: u64, b: u64) -> Nzcv {
        let (res, borrow) = a.overflowing_sub(b);
        let (_, sover) = (a as i64).overflowing_sub(b as i64);
        Nzcv { n: (res as i64) < 0, z: res == 0, c: !borrow, v: sover }
    }
}

/// Barrier domains of `DMB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Dmb {
    /// `DMB ISHLD`: orders prior loads with all later accesses.
    Ld = 0,
    /// `DMB ISHST`: orders prior stores with later stores.
    St = 1,
    /// `DMB ISH`: full barrier.
    Ff = 2,
}

impl Dmb {
    fn from_u8(v: u8) -> Option<Dmb> {
        Some(match v {
            0 => Dmb::Ld,
            1 => Dmb::St,
            2 => Dmb::Ff,
            _ => return None,
        })
    }
}

/// Memory-access ordering annotations on loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MemOrder {
    /// Plain access.
    Plain = 0,
    /// Acquire (`LDAR`) / release (`STLR`).
    AcqRel = 1,
    /// Acquire-PC (`LDAPR`; loads only).
    AcqPc = 2,
}

impl MemOrder {
    fn from_u8(v: u8) -> Option<MemOrder> {
        Some(match v {
            0 => MemOrder::Plain,
            1 => MemOrder::AcqRel,
            2 => MemOrder::AcqPc,
            _ => return None,
        })
    }
}

/// Floating-point operations (hardware FP on f64 bit patterns in X regs —
/// the same register-file simplification as the guest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AFpOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Multiplication.
    Mul = 2,
    /// Division.
    Div = 3,
    /// Square root of the second operand.
    Sqrt = 4,
    /// Int → f64 of the second operand.
    CvtIF = 5,
    /// f64 → int of the second operand.
    CvtFI = 6,
}

impl AFpOp {
    /// Applies the operation on bit patterns. Delegates to the shared
    /// deterministic soft-float (`risotto_guest_x86::softfloat`) so the
    /// hardware-FP fast path, the soft-float helpers, the TCG constant
    /// evaluator, and the reference interpreter all agree bit-for-bit —
    /// NaN payload propagation included.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        use risotto_guest_x86::softfloat as sf;
        match self {
            AFpOp::Add => sf::add(a, b),
            AFpOp::Sub => sf::sub(a, b),
            AFpOp::Mul => sf::mul(a, b),
            AFpOp::Div => sf::div(a, b),
            AFpOp::Sqrt => sf::sqrt(b),
            AFpOp::CvtIF => sf::cvt_if(b),
            AFpOp::CvtFI => sf::cvt_fi(b),
        }
    }

    fn from_u8(v: u8) -> Option<AFpOp> {
        use AFpOp::*;
        Some(match v {
            0 => Add,
            1 => Sub,
            2 => Mul,
            3 => Div,
            4 => Sqrt,
            5 => CvtIF,
            6 => CvtFI,
            _ => return None,
        })
    }
}

/// Byte offset of the chain word inside an encoded `ExitTb(Jump)`
/// instruction: opcode (1) + exit kind (1) + guest pc (8).
pub const JUMP_CHAIN_OFFSET: usize = 10;

/// Why a translation block exited (payload of [`HostInsn::ExitTb`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TbExitKind {
    /// Continue at a known guest pc (the engine chains or translates).
    Jump {
        /// Guest target pc.
        guest_pc: u64,
        /// Patchable chain slot: the host pc of the target block once the
        /// exit has been chained, or 0 while unresolved (host code lives at
        /// [`crate::CODE_BASE`], so 0 is never a valid host pc). The word
        /// lives in the encoded instruction at byte offset
        /// [`JUMP_CHAIN_OFFSET`] and is patched in place by the machine.
        chain: u64,
    },
    /// Continue at the guest pc held in a register.
    JumpReg {
        /// Register holding the guest pc.
        reg: Xreg,
    },
    /// The guest halted.
    Halt,
    /// Guest syscall; the engine services it then resumes at `next`.
    Syscall {
        /// Guest pc after the syscall instruction.
        next: u64,
    },
}

/// A MiniArm instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostInsn {
    /// `mov dst, #imm64` (stands for a `MOVZ`/`MOVK` sequence).
    MovImm {
        /// Destination.
        dst: Xreg,
        /// Immediate.
        imm: u64,
    },
    /// `mov dst, src`.
    MovReg {
        /// Destination.
        dst: Xreg,
        /// Source.
        src: Xreg,
    },
    /// Load: `ldr dst, [base, #off]` (or `ldar`/`ldapr` per `order`).
    Ldr {
        /// Destination.
        dst: Xreg,
        /// Base register.
        base: Xreg,
        /// Byte offset.
        off: i32,
        /// Ordering annotation.
        order: MemOrder,
    },
    /// Store: `str src, [base, #off]` (or `stlr`).
    Str {
        /// Source.
        src: Xreg,
        /// Base register.
        base: Xreg,
        /// Byte offset.
        off: i32,
        /// Ordering annotation.
        order: MemOrder,
    },
    /// Byte load, zero-extended (`ldrb`).
    LdrB {
        /// Destination.
        dst: Xreg,
        /// Base register.
        base: Xreg,
        /// Byte offset.
        off: i32,
    },
    /// Byte store (`strb`, low 8 bits).
    StrB {
        /// Source.
        src: Xreg,
        /// Base register.
        base: Xreg,
        /// Byte offset.
        off: i32,
    },
    /// Load-exclusive (`ldxr`/`ldaxr` when `acquire`).
    Ldxr {
        /// Destination.
        dst: Xreg,
        /// Address register.
        addr: Xreg,
        /// `true` for `ldaxr`.
        acquire: bool,
    },
    /// Store-exclusive (`stxr`/`stlxr`): `status` gets 0 on success, 1 on
    /// failure.
    Stxr {
        /// Status destination.
        status: Xreg,
        /// Value to store.
        src: Xreg,
        /// Address register.
        addr: Xreg,
        /// `true` for `stlxr`.
        release: bool,
    },
    /// Compare-and-swap: `cmp_old` holds the comparison value and receives
    /// the old memory value; `new` is swapped in on match. `acq_rel`
    /// selects `casal` (full acquire-release) vs plain `cas`.
    Cas {
        /// Compare value in, old value out.
        cmp_old: Xreg,
        /// Replacement value.
        new: Xreg,
        /// Address register.
        addr: Xreg,
        /// `casal` when true.
        acq_rel: bool,
    },
    /// `ldaddal old, addend, [addr]` — atomic fetch-add (LSE).
    LdaddAl {
        /// Receives the old value.
        old: Xreg,
        /// Addend.
        addend: Xreg,
        /// Address register.
        addr: Xreg,
    },
    /// Memory barrier.
    Barrier(Dmb),
    /// `op dst, a, b`.
    Alu {
        /// Operation.
        op: AOp,
        /// Destination.
        dst: Xreg,
        /// Left operand.
        a: Xreg,
        /// Right operand.
        b: Xreg,
    },
    /// `op dst, a, #imm`.
    AluImm {
        /// Operation.
        op: AOp,
        /// Destination.
        dst: Xreg,
        /// Left operand.
        a: Xreg,
        /// Immediate right operand.
        imm: u64,
    },
    /// `cmp a, b` → NZCV.
    Cmp {
        /// Left operand.
        a: Xreg,
        /// Right operand.
        b: Xreg,
    },
    /// `cmp a, #imm`.
    CmpImm {
        /// Left operand.
        a: Xreg,
        /// Immediate.
        imm: u64,
    },
    /// `cset dst, cond`.
    Cset {
        /// Destination (1 if cond else 0).
        dst: Xreg,
        /// Condition.
        cond: ACond,
    },
    /// Hardware floating point.
    Fp {
        /// Operation.
        op: AFpOp,
        /// Destination.
        dst: Xreg,
        /// Left operand.
        a: Xreg,
        /// Right operand.
        b: Xreg,
    },
    /// `b.cond rel` (relative to the next instruction).
    BCond {
        /// Condition.
        cond: ACond,
        /// Relative target.
        rel: i32,
    },
    /// `b rel`.
    B {
        /// Relative target.
        rel: i32,
    },
    /// `br reg`.
    Br {
        /// Target register.
        reg: Xreg,
    },
    /// `bl rel` (link in X30).
    Bl {
        /// Relative target.
        rel: i32,
    },
    /// `blr reg`.
    Blr {
        /// Target register.
        reg: Xreg,
    },
    /// `ret` (to X30).
    Ret,
    /// Runtime helper call (QEMU-style out-of-line code): args in X0–X3,
    /// result in X0. Carries the DBT-runtime round-trip cost.
    Hcall {
        /// Helper index (mirrors `risotto_tcg::Helper`).
        helper: u8,
    },
    /// Native host library call through the dynamic linker's table: args
    /// in X0–X5, result in X0.
    NativeCall {
        /// Index into the machine's native-function registry.
        func: u16,
    },
    /// Leave the code cache back to the DBT execution loop.
    ExitTb(TbExitKind),
    /// Stop this core.
    Hlt,
    /// No operation.
    Nop,
}

impl HostInsn {
    /// Appends the encoding to `out`; returns the encoded length.
    pub fn encode(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        use HostInsn::*;
        match *self {
            MovImm { dst, imm } => {
                out.extend_from_slice(&[0x01, dst.0]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            MovReg { dst, src } => out.extend_from_slice(&[0x02, dst.0, src.0]),
            Ldr { dst, base, off, order } => {
                out.extend_from_slice(&[0x03, dst.0, base.0, order as u8]);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Str { src, base, off, order } => {
                out.extend_from_slice(&[0x04, src.0, base.0, order as u8]);
                out.extend_from_slice(&off.to_le_bytes());
            }
            LdrB { dst, base, off } => {
                out.extend_from_slice(&[0x1b, dst.0, base.0]);
                out.extend_from_slice(&off.to_le_bytes());
            }
            StrB { src, base, off } => {
                out.extend_from_slice(&[0x1c, src.0, base.0]);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Ldxr { dst, addr, acquire } => {
                out.extend_from_slice(&[0x05, dst.0, addr.0, acquire as u8]);
            }
            Stxr { status, src, addr, release } => {
                out.extend_from_slice(&[0x06, status.0, src.0, addr.0, release as u8]);
            }
            Cas { cmp_old, new, addr, acq_rel } => {
                out.extend_from_slice(&[0x07, cmp_old.0, new.0, addr.0, acq_rel as u8]);
            }
            LdaddAl { old, addend, addr } => {
                out.extend_from_slice(&[0x08, old.0, addend.0, addr.0]);
            }
            Barrier(d) => out.extend_from_slice(&[0x09, d as u8]),
            Alu { op, dst, a, b } => out.extend_from_slice(&[0x0a, op as u8, dst.0, a.0, b.0]),
            AluImm { op, dst, a, imm } => {
                out.extend_from_slice(&[0x0b, op as u8, dst.0, a.0]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Cmp { a, b } => out.extend_from_slice(&[0x0c, a.0, b.0]),
            CmpImm { a, imm } => {
                out.extend_from_slice(&[0x0d, a.0]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Cset { dst, cond } => out.extend_from_slice(&[0x0e, dst.0, cond as u8]),
            Fp { op, dst, a, b } => out.extend_from_slice(&[0x0f, op as u8, dst.0, a.0, b.0]),
            BCond { cond, rel } => {
                out.extend_from_slice(&[0x10, cond as u8]);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            B { rel } => {
                out.push(0x11);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Br { reg } => out.extend_from_slice(&[0x12, reg.0]),
            Bl { rel } => {
                out.push(0x13);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Blr { reg } => out.extend_from_slice(&[0x14, reg.0]),
            Ret => out.push(0x15),
            Hcall { helper } => out.extend_from_slice(&[0x16, helper]),
            NativeCall { func } => {
                out.push(0x17);
                out.extend_from_slice(&func.to_le_bytes());
            }
            ExitTb(kind) => {
                out.push(0x18);
                match kind {
                    TbExitKind::Jump { guest_pc, chain } => {
                        out.push(0);
                        out.extend_from_slice(&guest_pc.to_le_bytes());
                        out.extend_from_slice(&chain.to_le_bytes());
                    }
                    TbExitKind::JumpReg { reg } => out.extend_from_slice(&[1, reg.0]),
                    TbExitKind::Halt => out.push(2),
                    TbExitKind::Syscall { next } => {
                        out.push(3);
                        out.extend_from_slice(&next.to_le_bytes());
                    }
                }
            }
            Hlt => out.push(0x19),
            Nop => out.push(0x1a),
        }
        out.len() - start
    }

    /// Decodes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a message for truncated or malformed encodings.
    pub fn decode(bytes: &[u8]) -> Result<(HostInsn, usize), String> {
        use HostInsn::*;
        fn xr(b: &[u8], i: usize) -> Result<Xreg, String> {
            let v = *b.get(i).ok_or("truncated")?;
            if (v as usize) < Xreg::COUNT {
                Ok(Xreg(v))
            } else {
                Err(format!("bad register {v}"))
            }
        }
        fn u64_at(b: &[u8], i: usize) -> Result<u64, String> {
            Ok(u64::from_le_bytes(b.get(i..i + 8).ok_or("truncated")?.try_into().unwrap()))
        }
        fn i32_at(b: &[u8], i: usize) -> Result<i32, String> {
            Ok(i32::from_le_bytes(b.get(i..i + 4).ok_or("truncated")?.try_into().unwrap()))
        }
        let op = *bytes.first().ok_or("empty")?;
        let r = match op {
            0x01 => (MovImm { dst: xr(bytes, 1)?, imm: u64_at(bytes, 2)? }, 10),
            0x02 => (MovReg { dst: xr(bytes, 1)?, src: xr(bytes, 2)? }, 3),
            0x03 => (
                Ldr {
                    dst: xr(bytes, 1)?,
                    base: xr(bytes, 2)?,
                    order: MemOrder::from_u8(*bytes.get(3).ok_or("truncated")?)
                        .ok_or("bad order")?,
                    off: i32_at(bytes, 4)?,
                },
                8,
            ),
            0x04 => (
                Str {
                    src: xr(bytes, 1)?,
                    base: xr(bytes, 2)?,
                    order: MemOrder::from_u8(*bytes.get(3).ok_or("truncated")?)
                        .ok_or("bad order")?,
                    off: i32_at(bytes, 4)?,
                },
                8,
            ),
            0x05 => (
                Ldxr {
                    dst: xr(bytes, 1)?,
                    addr: xr(bytes, 2)?,
                    acquire: *bytes.get(3).ok_or("truncated")? != 0,
                },
                4,
            ),
            0x06 => (
                Stxr {
                    status: xr(bytes, 1)?,
                    src: xr(bytes, 2)?,
                    addr: xr(bytes, 3)?,
                    release: *bytes.get(4).ok_or("truncated")? != 0,
                },
                5,
            ),
            0x07 => (
                Cas {
                    cmp_old: xr(bytes, 1)?,
                    new: xr(bytes, 2)?,
                    addr: xr(bytes, 3)?,
                    acq_rel: *bytes.get(4).ok_or("truncated")? != 0,
                },
                5,
            ),
            0x08 => (LdaddAl { old: xr(bytes, 1)?, addend: xr(bytes, 2)?, addr: xr(bytes, 3)? }, 4),
            0x09 => (Barrier(Dmb::from_u8(*bytes.get(1).ok_or("truncated")?).ok_or("bad dmb")?), 2),
            0x0a => (
                Alu {
                    op: AOp::from_u8(*bytes.get(1).ok_or("truncated")?).ok_or("bad op")?,
                    dst: xr(bytes, 2)?,
                    a: xr(bytes, 3)?,
                    b: xr(bytes, 4)?,
                },
                5,
            ),
            0x0b => (
                AluImm {
                    op: AOp::from_u8(*bytes.get(1).ok_or("truncated")?).ok_or("bad op")?,
                    dst: xr(bytes, 2)?,
                    a: xr(bytes, 3)?,
                    imm: u64_at(bytes, 4)?,
                },
                12,
            ),
            0x0c => (Cmp { a: xr(bytes, 1)?, b: xr(bytes, 2)? }, 3),
            0x0d => (CmpImm { a: xr(bytes, 1)?, imm: u64_at(bytes, 2)? }, 10),
            0x0e => (
                Cset {
                    dst: xr(bytes, 1)?,
                    cond: ACond::from_u8(*bytes.get(2).ok_or("truncated")?).ok_or("bad cond")?,
                },
                3,
            ),
            0x0f => (
                Fp {
                    op: AFpOp::from_u8(*bytes.get(1).ok_or("truncated")?).ok_or("bad fp")?,
                    dst: xr(bytes, 2)?,
                    a: xr(bytes, 3)?,
                    b: xr(bytes, 4)?,
                },
                5,
            ),
            0x10 => (
                BCond {
                    cond: ACond::from_u8(*bytes.get(1).ok_or("truncated")?).ok_or("bad cond")?,
                    rel: i32_at(bytes, 2)?,
                },
                6,
            ),
            0x11 => (B { rel: i32_at(bytes, 1)? }, 5),
            0x12 => (Br { reg: xr(bytes, 1)? }, 2),
            0x13 => (Bl { rel: i32_at(bytes, 1)? }, 5),
            0x14 => (Blr { reg: xr(bytes, 1)? }, 2),
            0x15 => (Ret, 1),
            0x16 => (Hcall { helper: *bytes.get(1).ok_or("truncated")? }, 2),
            0x17 => (
                NativeCall {
                    func: u16::from_le_bytes(
                        bytes.get(1..3).ok_or("truncated")?.try_into().unwrap(),
                    ),
                },
                3,
            ),
            0x18 => {
                let kind = *bytes.get(1).ok_or("truncated")?;
                match kind {
                    0 => (
                        ExitTb(TbExitKind::Jump {
                            guest_pc: u64_at(bytes, 2)?,
                            chain: u64_at(bytes, JUMP_CHAIN_OFFSET)?,
                        }),
                        18,
                    ),
                    1 => (ExitTb(TbExitKind::JumpReg { reg: xr(bytes, 2)? }), 3),
                    2 => (ExitTb(TbExitKind::Halt), 2),
                    3 => (ExitTb(TbExitKind::Syscall { next: u64_at(bytes, 2)? }), 10),
                    other => return Err(format!("bad exittb kind {other}")),
                }
            }
            0x19 => (Hlt, 1),
            0x1a => (Nop, 1),
            0x1b => (LdrB { dst: xr(bytes, 1)?, base: xr(bytes, 2)?, off: i32_at(bytes, 3)? }, 7),
            0x1c => (StrB { src: xr(bytes, 1)?, base: xr(bytes, 2)?, off: i32_at(bytes, 3)? }, 7),
            other => return Err(format!("unknown host opcode {other:#x}")),
        };
        if bytes.len() < r.1 {
            return Err("truncated".into());
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_shapes() {
        use HostInsn::*;
        let x = Xreg;
        for i in [
            MovImm { dst: x(0), imm: u64::MAX },
            MovReg { dst: x(30), src: x(31) },
            Ldr { dst: x(1), base: x(2), off: -16, order: MemOrder::Plain },
            Ldr { dst: x(1), base: x(2), off: 0, order: MemOrder::AcqPc },
            Str { src: x(3), base: x(4), off: 8, order: MemOrder::AcqRel },
            LdrB { dst: x(2), base: x(3), off: 5 },
            StrB { src: x(2), base: x(3), off: -5 },
            Alu { op: AOp::Umulh, dst: x(0), a: x(1), b: x(2) },
            Ldxr { dst: x(5), addr: x(6), acquire: true },
            Stxr { status: x(7), src: x(8), addr: x(9), release: false },
            Cas { cmp_old: x(0), new: x(1), addr: x(2), acq_rel: true },
            LdaddAl { old: x(0), addend: x(1), addr: x(2) },
            Barrier(Dmb::Ld),
            Barrier(Dmb::Ff),
            Alu { op: AOp::Udiv, dst: x(0), a: x(1), b: x(2) },
            AluImm { op: AOp::Eor, dst: x(0), a: x(1), imm: 42 },
            Cmp { a: x(0), b: x(1) },
            CmpImm { a: x(0), imm: 7 },
            Cset { dst: x(0), cond: ACond::Hi },
            Fp { op: AFpOp::Sqrt, dst: x(0), a: x(1), b: x(2) },
            BCond { cond: ACond::Ne, rel: -40 },
            B { rel: 1000 },
            Br { reg: x(17) },
            Bl { rel: 12 },
            Blr { reg: x(9) },
            Ret,
            Hcall { helper: 3 },
            NativeCall { func: 258 },
            ExitTb(TbExitKind::Jump { guest_pc: 0xdead, chain: 0 }),
            ExitTb(TbExitKind::Jump { guest_pc: 0xdead, chain: 0x4000_1234 }),
            ExitTb(TbExitKind::JumpReg { reg: x(4) }),
            ExitTb(TbExitKind::Halt),
            ExitTb(TbExitKind::Syscall { next: 0x1234 }),
            Hlt,
            Nop,
        ] {
            let mut buf = Vec::new();
            let n = i.encode(&mut buf);
            let (d, len) = HostInsn::decode(&buf).unwrap();
            assert_eq!(d, i);
            assert_eq!(len, n);
        }
    }

    #[test]
    fn jump_chain_word_is_at_the_documented_offset() {
        let mut buf = Vec::new();
        HostInsn::ExitTb(TbExitKind::Jump { guest_pc: 0xaabb, chain: 0x4000_0042 })
            .encode(&mut buf);
        assert_eq!(buf.len(), JUMP_CHAIN_OFFSET + 8);
        let word = u64::from_le_bytes(buf[JUMP_CHAIN_OFFSET..].try_into().unwrap());
        assert_eq!(word, 0x4000_0042);
        // Patching the word in place must round-trip through decode.
        buf[JUMP_CHAIN_OFFSET..].copy_from_slice(&0u64.to_le_bytes());
        let (d, _) = HostInsn::decode(&buf).unwrap();
        assert_eq!(d, HostInsn::ExitTb(TbExitKind::Jump { guest_pc: 0xaabb, chain: 0 }));
    }

    #[test]
    fn nzcv_cmp_semantics() {
        let f = Nzcv::from_cmp(5, 5);
        assert!(f.z && f.c);
        assert!(ACond::Eq.eval(f) && ACond::Hs.eval(f) && ACond::Ge.eval(f));
        let f = Nzcv::from_cmp(3, 5);
        assert!(!f.c, "borrow clears C on AArch64");
        assert!(ACond::Lo.eval(f) && ACond::Lt.eval(f));
        let f = Nzcv::from_cmp(u64::MAX, 1);
        assert!(ACond::Hi.eval(f), "unsigned: MAX > 1");
        assert!(ACond::Lt.eval(f), "signed: -1 < 1");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(HostInsn::decode(&[]).is_err());
        assert!(HostInsn::decode(&[0xff]).is_err());
        assert!(HostInsn::decode(&[0x03, 1, 2]).is_err());
        assert!(HostInsn::decode(&[0x0a, 99, 0, 0, 0]).is_err());
    }

    #[test]
    fn udiv_matches_aarch64() {
        assert_eq!(AOp::Udiv.apply(10, 0), 0);
        assert_eq!(AOp::Urem.apply(10, 0), 10);
    }
}
