//! Dynamic-linker edge cases (§6.2): partial IDL coverage, missing
//! imports, unknown exports, and argument-count marshaling.

use risotto_core::{Emulator, HostLibrary, Idl, Setup};
use risotto_guest_x86::{AluOp, GelfBuilder, Gpr};
use risotto_host_arm::{CostModel, NativeResult};

fn lib_with(funcs: Vec<(&str, u64)>) -> HostLibrary {
    HostLibrary {
        name: "test".into(),
        funcs: funcs
            .into_iter()
            .map(|(name, mult)| {
                let f: risotto_host_arm::NativeFn = Box::new(move |_m, args: &[u64; 6]| {
                    NativeResult { ret: args.iter().sum::<u64>() * mult, cost: 3 }
                });
                (name.to_string(), f)
            })
            .collect(),
    }
}

/// Builds a binary importing `f` and `g`; guest impls return distinct
/// values so we can tell which path ran.
fn two_import_binary() -> risotto_guest_x86::GuestBinary {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RDI, 10);
    b.asm.mov_ri(Gpr::RSI, 1);
    b.call_plt("f");
    b.asm.mov_rr(Gpr::RBX, Gpr::RAX);
    b.asm.mov_ri(Gpr::RDI, 10);
    b.asm.mov_ri(Gpr::RSI, 1);
    b.call_plt("g");
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RBX);
    b.asm.hlt();
    b.plt_stub("f", "guest_f");
    b.plt_stub("g", "guest_g");
    b.asm.label("guest_f");
    b.asm.mov_ri(Gpr::RAX, 1000); // guest f: constant 1000
    b.asm.ret();
    b.asm.label("guest_g");
    b.asm.mov_ri(Gpr::RAX, 2000); // guest g: constant 2000
    b.asm.ret();
    b.finish().unwrap()
}

#[test]
fn idl_gates_which_imports_link() {
    let bin = two_import_binary();
    // IDL only describes `f`: `g` stays translated even though the library
    // exports both.
    let idl = Idl::parse("u64 f(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib_with(vec![("f", 7), ("g", 9)]));
    assert_eq!(linked, vec!["f".to_string()]);
    let r = emu.run(10_000_000).unwrap();
    // f native: (10+1)*7 = 77; g guest: 2000.
    assert_eq!(r.exit_vals[0], Some(77 + 2000));
    assert_eq!(r.stats.native_calls, 1);
}

#[test]
fn library_exports_not_imported_are_ignored() {
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64, u64);\nu64 g(u64, u64);\nu64 h(u64);").unwrap();
    // The library exports `h`, which the binary never imports: no link,
    // no crash.
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib_with(vec![("h", 3)]));
    assert!(linked.is_empty());
    let r = emu.run(10_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(3000), "all guest paths");
}

#[test]
fn marshaling_passes_exactly_the_declared_arity() {
    // Declare f with a single parameter: the second guest argument must
    // NOT reach the native function (it sees 0 there).
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64);\nu64 g(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib_with(vec![("f", 1), ("g", 1)]));
    assert_eq!(linked.len(), 2);
    let r = emu.run(10_000_000).unwrap();
    // f: only RDI=10 marshaled → 10; g: 10+1 → 11.
    assert_eq!(r.exit_vals[0], Some(10 + 11));
}

#[test]
fn linking_twice_is_idempotent_per_symbol() {
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64, u64);\nu64 g(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    emu.link_library(&bin, &idl, lib_with(vec![("f", 7)]));
    // Second library also exports f (and g): f is re-bound (last wins,
    // like LD_PRELOAD ordering), g links fresh.
    emu.link_library(&bin, &idl, lib_with(vec![("f", 5), ("g", 5)]));
    let r = emu.run(10_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(11 * 5 + 11 * 5));
}
