//! Dynamic-linker edge cases (§6.2): typed link errors (unknown exports,
//! duplicates, arity mismatches), link atomicity, missing imports, and
//! argument-count marshaling.

use risotto_core::{Emulator, HostLibrary, Idl, LinkError, Setup};
use risotto_guest_x86::{AluOp, GelfBuilder, Gpr};
use risotto_host_arm::{CostModel, NativeResult};

/// A library of `(name, arity, mult)` exports; each returns the sum of
/// its (marshaled) arguments times `mult`.
fn lib_with(funcs: Vec<(&str, usize, u64)>) -> HostLibrary {
    funcs.into_iter().fold(HostLibrary::new("test"), |lib, (name, arity, mult)| {
        lib.export(
            name,
            arity,
            Box::new(move |_m, args: &[u64; 6]| NativeResult {
                ret: args.iter().sum::<u64>() * mult,
                cost: 3,
            }),
        )
    })
}

/// Builds a binary importing `f` and `g`; guest impls return distinct
/// values so we can tell which path ran.
fn two_import_binary() -> risotto_guest_x86::GuestBinary {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RDI, 10);
    b.asm.mov_ri(Gpr::RSI, 1);
    b.call_plt("f");
    b.asm.mov_rr(Gpr::RBX, Gpr::RAX);
    b.asm.mov_ri(Gpr::RDI, 10);
    b.asm.mov_ri(Gpr::RSI, 1);
    b.call_plt("g");
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RBX);
    b.asm.hlt();
    b.plt_stub("f", "guest_f");
    b.plt_stub("g", "guest_g");
    b.asm.label("guest_f");
    b.asm.mov_ri(Gpr::RAX, 1000); // guest f: constant 1000
    b.asm.ret();
    b.asm.label("guest_g");
    b.asm.mov_ri(Gpr::RAX, 2000); // guest g: constant 2000
    b.asm.ret();
    b.finish().unwrap()
}

#[test]
fn export_outside_the_idl_is_a_typed_error_and_links_nothing() {
    let bin = two_import_binary();
    // IDL only describes `f`; the library also exports `g`, which the
    // linker cannot marshal without a signature. The whole library is
    // rejected atomically — even `f` stays on its guest implementation.
    let idl = Idl::parse("u64 f(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let err = emu.link_library(&bin, &idl, lib_with(vec![("f", 2, 7), ("g", 2, 9)])).unwrap_err();
    assert_eq!(err, LinkError::NotInIdl { library: "test".into(), symbol: "g".into() });
    let r = emu.run(10_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(3000), "all guest paths");
    assert_eq!(r.stats.native_calls, 0);
}

#[test]
fn duplicate_export_is_a_typed_error() {
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let err = emu.link_library(&bin, &idl, lib_with(vec![("f", 2, 7), ("f", 2, 9)])).unwrap_err();
    assert_eq!(err, LinkError::DuplicateExport { library: "test".into(), symbol: "f".into() });
}

#[test]
fn arity_mismatch_is_a_typed_error() {
    let bin = two_import_binary();
    // IDL says f takes two arguments; the export claims one.
    let idl = Idl::parse("u64 f(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let err = emu.link_library(&bin, &idl, lib_with(vec![("f", 1, 7)])).unwrap_err();
    assert_eq!(
        err,
        LinkError::ArityMismatch { library: "test".into(), symbol: "f".into(), idl: 2, export: 1 }
    );
}

#[test]
fn validation_applies_even_when_host_linking_is_disabled() {
    // The qemu setup never links, but a malformed library is still a
    // caller bug — it must be reported, not silently ignored.
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Qemu, 1, CostModel::thunderx2_like());
    assert!(matches!(
        emu.link_library(&bin, &idl, lib_with(vec![("nope", 1, 1)])),
        Err(LinkError::NotInIdl { .. })
    ));
    // A well-formed library under qemu: validated, then a no-op.
    let linked = emu.link_library(&bin, &idl, lib_with(vec![("f", 2, 7)])).unwrap();
    assert!(linked.is_empty());
}

#[test]
fn library_exports_not_imported_are_ignored() {
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64, u64);\nu64 g(u64, u64);\nu64 h(u64);").unwrap();
    // The library exports `h`, which the binary never imports: no link,
    // no crash.
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib_with(vec![("h", 1, 3)])).unwrap();
    assert!(linked.is_empty());
    let r = emu.run(10_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(3000), "all guest paths");
}

#[test]
fn marshaling_passes_exactly_the_declared_arity() {
    // Declare f with a single parameter: the second guest argument must
    // NOT reach the native function (it sees 0 there).
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64);\nu64 g(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib_with(vec![("f", 1, 1), ("g", 2, 1)])).unwrap();
    assert_eq!(linked.len(), 2);
    let r = emu.run(10_000_000).unwrap();
    // f: only RDI=10 marshaled → 10; g: 10+1 → 11.
    assert_eq!(r.exit_vals[0], Some(10 + 11));
}

#[test]
fn linking_twice_is_idempotent_per_symbol() {
    let bin = two_import_binary();
    let idl = Idl::parse("u64 f(u64, u64);\nu64 g(u64, u64);").unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    emu.link_library(&bin, &idl, lib_with(vec![("f", 2, 7)])).unwrap();
    // Second library also exports f (and g): f is re-bound (last wins,
    // like LD_PRELOAD ordering), g links fresh.
    emu.link_library(&bin, &idl, lib_with(vec![("f", 2, 5), ("g", 2, 5)])).unwrap();
    let r = emu.run(10_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(11 * 5 + 11 * 5));
}
