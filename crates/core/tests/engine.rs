//! End-to-end engine tests: every setup must agree with the reference
//! guest interpreter on data-race-free programs, threads must work, and
//! the dynamic host linker must transparently replace guest library code.

use risotto_core::{Emulator, HostLibrary, Idl, Setup};
use risotto_guest_x86::{syscalls, AluOp, Cond, GelfBuilder, Gpr, GuestBinary, Interp};
use risotto_host_arm::{CostModel, NativeResult};

fn run_all_setups(bin: &GuestBinary, cores: usize) -> Vec<(Setup, risotto_core::Report)> {
    Setup::ALL
        .iter()
        .map(|&s| {
            let mut emu = Emulator::new(bin, s, cores, CostModel::thunderx2_like());
            let r = emu.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            (s, r)
        })
        .collect()
}

/// Fibonacci via an iterative loop: exercises ALU, branches, flags.
fn fib_binary(n: u64) -> GuestBinary {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.mov_ri(Gpr::RBX, 1);
    b.asm.mov_ri(Gpr::RCX, n);
    b.asm.label("loop");
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::E, "done");
    b.asm.mov_rr(Gpr::RDX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::RDX, Gpr::RBX);
    b.asm.mov_rr(Gpr::RAX, Gpr::RBX);
    b.asm.mov_rr(Gpr::RBX, Gpr::RDX);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.jmp_to("loop");
    b.asm.label("done");
    b.asm.hlt();
    b.finish().unwrap()
}

#[test]
fn fib_agrees_with_interpreter_across_all_setups() {
    let bin = fib_binary(30);
    let mut interp = Interp::new(&bin);
    interp.run(10_000_000).unwrap();
    let expected = interp.exit_val(0);
    assert_eq!(expected, 832040);
    for (s, r) in run_all_setups(&bin, 1) {
        assert_eq!(r.exit_vals[0], Some(expected), "{} disagrees", s.name());
    }
}

/// Memory, call/ret, push/pop, recursion.
#[test]
fn recursive_function_and_stack() {
    // sum(n) = n + sum(n-1), sum(0) = 0, recursive through the guest stack.
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RDI, 100);
    b.asm.call_to("sum");
    b.asm.hlt();
    b.asm.label("sum");
    b.asm.cmp_ri(Gpr::RDI, 0);
    b.asm.jcc_to(Cond::Ne, "rec");
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.ret();
    b.asm.label("rec");
    b.asm.push(Gpr::RDI);
    b.asm.alu_ri(AluOp::Sub, Gpr::RDI, 1);
    b.asm.call_to("sum");
    b.asm.pop(Gpr::RDI);
    b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RDI);
    b.asm.ret();
    let bin = b.finish().unwrap();

    let mut interp = Interp::new(&bin);
    interp.run(10_000_000).unwrap();
    assert_eq!(interp.exit_val(0), 5050);
    for (s, r) in run_all_setups(&bin, 1) {
        assert_eq!(r.exit_vals[0], Some(5050), "{} disagrees", s.name());
    }
}

/// Multi-threaded atomic counter: 4 threads × 1000 `LOCK XADD`s each.
#[test]
fn threaded_counter() {
    let mut b = GelfBuilder::new("main");
    let counter = b.data_u64(&[0]);
    b.asm.label("main");
    for stash in [Gpr(3), Gpr(12), Gpr(13)] {
        b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
        b.asm.mov_label(Gpr::RDI, "worker");
        b.asm.mov_ri(Gpr::RSI, 0);
        b.asm.syscall();
        b.asm.mov_rr(stash, Gpr::RAX);
    }
    b.asm.call_to("body");
    for stash in [Gpr(3), Gpr(12), Gpr(13)] {
        b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
        b.asm.mov_rr(Gpr::RDI, stash);
        b.asm.syscall();
    }
    b.asm.mov_ri(Gpr::RDI, counter);
    b.asm.load(Gpr::RAX, Gpr::RDI, 0);
    b.asm.hlt();
    b.asm.label("worker");
    b.asm.call_to("body");
    b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
    b.asm.mov_ri(Gpr::RDI, 0);
    b.asm.syscall();
    b.asm.label("body");
    b.asm.mov_ri(Gpr::RDI, counter);
    b.asm.mov_ri(Gpr::RCX, 1000);
    b.asm.label("loop");
    b.asm.mov_ri(Gpr::RDX, 1);
    b.asm.xadd(Gpr::RDI, 0, Gpr::RDX);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::Ne, "loop");
    b.asm.ret();
    let bin = b.finish().unwrap();

    for (s, r) in run_all_setups(&bin, 4) {
        assert_eq!(r.exit_vals[0], Some(4000), "{}: lost updates", s.name());
    }
}

/// A spinlock built on LOCK CMPXCHG protecting a plain counter: the
/// translated code's fences/atomics must make this correct on the host.
#[test]
fn cmpxchg_spinlock_protects_counter() {
    let mut b = GelfBuilder::new("main");
    let lock = b.data_u64(&[0]);
    let counter = b.data_u64(&[0]);
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
    b.asm.mov_label(Gpr::RDI, "worker");
    b.asm.mov_ri(Gpr::RSI, 0);
    b.asm.syscall();
    b.asm.mov_rr(Gpr(3), Gpr::RAX);
    b.asm.call_to("body");
    b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
    b.asm.mov_rr(Gpr::RDI, Gpr(3));
    b.asm.syscall();
    b.asm.mov_ri(Gpr::RDI, counter);
    b.asm.load(Gpr::RAX, Gpr::RDI, 0);
    b.asm.hlt();

    b.asm.label("worker");
    b.asm.call_to("body");
    b.asm.mov_ri(Gpr::RAX, syscalls::EXIT);
    b.asm.mov_ri(Gpr::RDI, 0);
    b.asm.syscall();

    b.asm.label("body");
    b.asm.mov_ri(Gpr(12), 500); // iterations
    b.asm.label("iter");
    // acquire lock
    b.asm.mov_ri(Gpr::RSI, 1);
    b.asm.mov_ri(Gpr(13), lock);
    b.asm.label("spin");
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.cmpxchg(Gpr(13), 0, Gpr::RSI);
    b.asm.jcc_to(Cond::Ne, "spin");
    // critical section: plain read-modify-write
    b.asm.mov_ri(Gpr::RDI, counter);
    b.asm.load(Gpr::RDX, Gpr::RDI, 0);
    b.asm.alu_ri(AluOp::Add, Gpr::RDX, 1);
    b.asm.store(Gpr::RDI, 0, Gpr::RDX);
    // release lock (plain store; x86 TSO release)
    b.asm.mov_ri(Gpr::RDX, 0);
    b.asm.store(Gpr(13), 0, Gpr::RDX);
    b.asm.alu_ri(AluOp::Sub, Gpr(12), 1);
    b.asm.cmp_ri(Gpr(12), 0);
    b.asm.jcc_to(Cond::Ne, "iter");
    b.asm.ret();
    let bin = b.finish().unwrap();

    // The incorrect no-fences setup may or may not lose updates on our
    // TSO-operational host; the four *correct-on-this-host* setups must
    // never lose one.
    for s in [Setup::Qemu, Setup::TcgVer, Setup::Risotto, Setup::Native] {
        let mut emu = Emulator::new(&bin, s, 2, CostModel::thunderx2_like());
        let r = emu.run(50_000_000).unwrap();
        assert_eq!(r.exit_vals[0], Some(1000), "{}: spinlock failed", s.name());
    }
}

/// Host linking: a guest binary importing `triple` runs its guest
/// implementation under qemu/tcg-ver but the native one under risotto.
#[test]
fn dynamic_host_linker_redirects_plt_calls() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RDI, 14);
    b.call_plt("triple");
    b.asm.hlt();
    // Guest implementation: deliberately different from the host's
    // (computes x*3 + 1) so we can tell which ran.
    b.plt_stub("triple", "guest_triple");
    b.asm.label("guest_triple");
    b.asm.mov_rr(Gpr::RAX, Gpr::RDI);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 3);
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 1);
    b.asm.ret();
    let bin = b.finish().unwrap();

    let idl = Idl::parse("u64 triple(u64);").unwrap();
    let lib = || {
        HostLibrary::new("libtriple").export(
            "triple",
            1,
            Box::new(|_mem: &mut risotto_guest_x86::SparseMem, args: &[u64; 6]| NativeResult {
                ret: args[0] * 3,
                cost: 5,
            }),
        )
    };

    // Without linking (qemu): guest implementation runs (x*3+1).
    let mut emu = Emulator::new(&bin, Setup::Qemu, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib()).unwrap();
    assert!(linked.is_empty(), "qemu setup must not link");
    let r = emu.run(1_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(43));

    // With linking (risotto): the native library runs (x*3).
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let linked = emu.link_library(&bin, &idl, lib()).unwrap();
    assert_eq!(linked, vec!["triple".to_string()]);
    let r = emu.run(1_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(42));
    assert_eq!(r.stats.native_calls, 1);
}

/// Performance sanity: the setups must order as the paper's Fig. 12
/// (no-fences < tcg-ver = risotto < qemu, native fastest) on a
/// memory-heavy single-thread kernel.
#[test]
fn setup_performance_ordering_matches_fig12() {
    // Memory-heavy loop: load, add, store over an array.
    let mut b = GelfBuilder::new("main");
    let arr = b.data_zeroed(8 * 64);
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RCX, 2000);
    b.asm.label("outer");
    b.asm.mov_ri(Gpr::RDI, arr);
    b.asm.mov_ri(Gpr::RSI, 64);
    b.asm.label("inner");
    b.asm.load(Gpr::RAX, Gpr::RDI, 0);
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 1);
    b.asm.store(Gpr::RDI, 0, Gpr::RAX);
    b.asm.alu_ri(AluOp::Add, Gpr::RDI, 8);
    b.asm.alu_ri(AluOp::Sub, Gpr::RSI, 1);
    b.asm.cmp_ri(Gpr::RSI, 0);
    b.asm.jcc_to(Cond::Ne, "inner");
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::Ne, "outer");
    b.asm.hlt();
    let bin = b.finish().unwrap();

    let cycles: std::collections::HashMap<&str, u64> =
        run_all_setups(&bin, 1).into_iter().map(|(s, r)| (s.name(), r.cycles)).collect();
    assert!(cycles["no-fences"] < cycles["tcg-ver"], "{cycles:?}");
    assert!(cycles["tcg-ver"] < cycles["qemu"], "{cycles:?}");
    assert!(cycles["risotto"] <= cycles["tcg-ver"], "{cycles:?}");
    assert!(cycles["native"] < cycles["no-fences"], "{cycles:?}");
}
